// lddp_diagrams — regenerates the paper's schematic figures as SVG files,
// computed from the framework's own classification, layout and ownership
// logic (so the diagrams are *checked documentation*, not hand drawings):
//
//   fig1_conflicts.svg    neighbour/conflict structure (Fig 1a/1b)
//   fig2_patterns.svg     wavefront numbering of all six patterns (Fig 2)
//   fig3_antidiagonal.svg  } heterogeneous ownership (grey = CPU low-work,
//   fig4_horizontal.svg    } blue = CPU strip, white = GPU) for the four
//   fig5_invertedl.svg     } canonical patterns (Figs 3-6)
//   fig6_knightmove.svg    }
//   fig11_fs_weights.svg  Floyd-Steinberg error-diffusion weights (Fig 11)
//
// Usage: lddp_diagrams [output_directory]
#include <cstdio>
#include <string>

#include "core/pattern.h"
#include "tables/layout.h"
#include "util/svg.h"

namespace {

using namespace lddp;

constexpr double kCell = 34;
constexpr double kPad = 18;

template <typename FillFn, typename LabelFn>
void draw_grid(SvgWriter& svg, double x0, double y0, std::size_t rows,
               std::size_t cols, FillFn&& fill, LabelFn&& label) {
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const double x = x0 + static_cast<double>(j) * kCell;
      const double y = y0 + static_cast<double>(i) * kCell;
      svg.rect(x, y, kCell, kCell, fill(i, j));
      const std::string s = label(i, j);
      if (!s.empty())
        svg.text(x + kCell / 2, y + kCell / 2 + 4, s, 12);
    }
  }
}

void figure1(const std::string& dir) {
  // 3x3 neighbourhood: the centre cell, its 8 neighbours; conflicting
  // pairs (opposite cells) share a colour; the representative set is the
  // paper's set 'a' = {W, NW, N, NE}.
  SvgWriter svg(3 * kCell + 2 * kPad + 260, 3 * kCell + 2 * kPad + 30);
  const char* pair_color[3][3] = {
      {"#f4c7c3", "#c3d7f4", "#c9f4c3"},
      {"#f4eec3", "#333333", "#f4eec3"},
      {"#c9f4c3", "#c3d7f4", "#f4c7c3"},
  };
  draw_grid(
      svg, kPad, kPad, 3, 3,
      [&](std::size_t i, std::size_t j) -> std::string {
        return pair_color[i][j];
      },
      [&](std::size_t i, std::size_t j) -> std::string {
        if (i == 1 && j == 1) return "";
        const bool representative =
            (i == 0) || (i == 1 && j == 0);  // NW, N, NE row + W
        return representative ? "R" : "";
      });
  svg.text(kPad + 1.5 * kCell, kPad + 3 * kCell + 20,
           "same colour = conflicting pair; R = representative set", 11);
  svg.text(kPad + 3 * kCell + 16, kPad + 16,
           "Fig 1: the black cell's 8 neighbours;", 12, "#111", "start");
  svg.text(kPad + 3 * kCell + 16, kPad + 34,
           "a line through a conflicting pair", 12, "#111", "start");
  svg.text(kPad + 3 * kCell + 16, kPad + 52,
           "passes through the cell itself.", 12, "#111", "start");
  svg.save(dir + "/fig1_conflicts.svg");
}

template <typename Layout>
void pattern_panel(SvgWriter& svg, double x0, double y0, const char* title) {
  const Layout lay(6, 6);
  draw_grid(
      svg, x0, y0, 6, 6,
      [](std::size_t, std::size_t) -> std::string { return "#ffffff"; },
      [&](std::size_t i, std::size_t j) {
        return std::to_string(lay.front_of(i, j) + 1);
      });
  svg.text(x0 + 3 * kCell, y0 + 6 * kCell + 18, title, 13);
}

void figure2(const std::string& dir) {
  const double panel = 6 * kCell + kPad;
  SvgWriter svg(3 * panel + kPad, 2 * (panel + 30) + kPad);
  pattern_panel<AntiDiagonalLayout>(svg, kPad, kPad, "(a) Anti-Diagonal");
  pattern_panel<RowMajorLayout>(svg, kPad + panel, kPad, "(b) Horizontal");
  pattern_panel<ShellLayout>(svg, kPad + 2 * panel, kPad, "(c) Inverted-L");
  const double y2 = kPad + panel + 40;
  pattern_panel<KnightMoveLayout>(svg, kPad, y2, "(d) Knight-Move");
  pattern_panel<ColumnMajorLayout>(svg, kPad + panel, y2, "(e) Vertical");
  pattern_panel<MirrorShellLayout>(svg, kPad + 2 * panel, y2,
                                   "(f) mInverted-L");
  svg.save(dir + "/fig2_patterns.svg");
}

// Ownership colouring for the heterogeneous split diagrams. `front_of`
// gives the pattern's front index; `cpu_all` marks low-work fronts handled
// entirely by the CPU; `cpu_strip` marks the CPU's strip cells.
template <typename FrontOf, typename StripFn>
void hetero_figure(const std::string& path, const char* title,
                   std::size_t rows, std::size_t cols, std::size_t t_switch,
                   std::size_t num_fronts, FrontOf&& front_of,
                   StripFn&& cpu_strip) {
  SvgWriter svg(static_cast<double>(cols) * kCell + 2 * kPad,
                static_cast<double>(rows) * kCell + 2 * kPad + 40);
  draw_grid(
      svg, kPad, kPad, rows, cols,
      [&](std::size_t i, std::size_t j) -> std::string {
        const std::size_t f = front_of(i, j);
        if (f < t_switch || f >= num_fronts - t_switch)
          return "#cccccc";  // CPU, low-work region
        return cpu_strip(i, j) ? "#9db8e8" : "#ffffff";
      },
      [&](std::size_t i, std::size_t j) {
        return std::to_string(front_of(i, j) + 1);
      });
  svg.text(kPad + static_cast<double>(cols) * kCell / 2,
           kPad + static_cast<double>(rows) * kCell + 22, title, 13);
  svg.text(kPad + static_cast<double>(cols) * kCell / 2,
           kPad + static_cast<double>(rows) * kCell + 38,
           "grey = CPU (low work), blue = CPU strip, white = GPU", 11);
  svg.save(path);
}

void figures3to6(const std::string& dir) {
  constexpr std::size_t n = 10, m = 10, ts = 3, share = 3;
  const AntiDiagonalLayout ad(n, m);
  hetero_figure(
      dir + "/fig3_antidiagonal.svg", "Fig 3: anti-diagonal split", n, m, ts,
      ad.num_fronts(), [](std::size_t i, std::size_t j) { return i + j; },
      [](std::size_t i, std::size_t) { return i < share; });
  const RowMajorLayout h(n, m);
  hetero_figure(
      dir + "/fig4_horizontal.svg", "Fig 4: horizontal split", n, m, 0,
      h.num_fronts(), [](std::size_t i, std::size_t) { return i; },
      [](std::size_t, std::size_t j) { return j < share; });
  const ShellLayout il(n, m);
  hetero_figure(
      dir + "/fig5_invertedl.svg", "Fig 5: inverted-L split", n, m, ts,
      il.num_fronts(),
      [](std::size_t i, std::size_t j) { return std::min(i, j); },
      [](std::size_t, std::size_t j) { return j < share; });
  const KnightMoveLayout km(n, m);
  hetero_figure(
      dir + "/fig6_knightmove.svg", "Fig 6: knight-move split", n, m, 2 * ts,
      km.num_fronts(),
      [](std::size_t i, std::size_t j) { return 2 * i + j; },
      [](std::size_t, std::size_t j) { return j < share; });
}

void figure11(const std::string& dir) {
  // The error-diffusion stencil: cell (i,j) pushes scaled error to E, SW,
  // S, SE — equivalently pulls from W, NW, N, NE.
  SvgWriter svg(3 * kCell + 2 * kPad + 280, 2 * kCell + 2 * kPad + 40);
  const char* labels[2][3] = {{"", "*", "7/16"}, {"3/16", "5/16", "1/16"}};
  draw_grid(
      svg, kPad, kPad, 2, 3,
      [&](std::size_t i, std::size_t j) -> std::string {
        return (i == 0 && j == 1) ? "#333333" : "#ffffff";
      },
      [&](std::size_t i, std::size_t j) -> std::string {
        return labels[i][j];
      });
  const double cx = kPad + 1.5 * kCell, cy = kPad + 0.5 * kCell;
  svg.line(cx, cy, kPad + 2.5 * kCell, cy, "#c00", 1.5, true);
  svg.line(cx, cy, kPad + 0.5 * kCell, cy + kCell, "#c00", 1.5, true);
  svg.line(cx, cy, cx, cy + kCell, "#c00", 1.5, true);
  svg.line(cx, cy, kPad + 2.5 * kCell, cy + kCell, "#c00", 1.5, true);
  svg.text(kPad + 3 * kCell + 16, kPad + 20,
           "Fig 11: Floyd-Steinberg weights —", 12, "#111", "start");
  svg.text(kPad + 3 * kCell + 16, kPad + 38,
           "cell * cannot start before W, NW, N, NE", 12, "#111", "start");
  svg.text(kPad + 3 * kCell + 16, kPad + 56,
           "have forwarded their errors.", 12, "#111", "start");
  svg.save(dir + "/fig11_fs_weights.svg");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc >= 2 ? argv[1] : ".";
  figure1(dir);
  figure2(dir);
  figures3to6(dir);
  figure11(dir);
  std::printf("wrote fig1_conflicts, fig2_patterns, fig3..6 splits and "
              "fig11_fs_weights SVGs to %s/\n", dir.c_str());
  return 0;
}
