// lddp_cli — run any bundled LDDP-Plus problem from the command line:
// choose the problem, execution mode, platform, size, split parameters, or
// let the tuner pick them; optionally dump a chrome://tracing schedule.
//
//   lddp_cli --problem levenshtein --size 4096 --mode hetero
//   lddp_cli --problem checkerboard --size 2048 --platform low --tune
//   lddp_cli --problem dither --size 1024 --trace dither.trace.json
//   lddp_cli --problem gotoh --size 1000 --mode gpu
//   lddp_cli --list
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/batch_engine.h"
#include "core/framework.h"
#include "core/framework3.h"
#include "core/multi.h"
#include "core/tuner.h"
#include "problems/alignment.h"
#include "problems/checkerboard.h"
#include "problems/column_min.h"
#include "problems/dtw.h"
#include "problems/floyd_steinberg.h"
#include "problems/gotoh.h"
#include "problems/lcs.h"
#include "problems/lcs3.h"
#include "problems/levenshtein.h"
#include "problems/seam_carving.h"
#include "problems/synthetic.h"
#include "util/flags.h"

namespace {

using namespace lddp;

constexpr const char* kUsage = R"(usage: lddp_cli [flags]
  --problem NAME   levenshtein | lcs | lcs3 | nw | sw | gotoh | dtw
                   | checkerboard | columnmin | dither | seam | minnwn
                   | maxnw   (required)
  --size N         table side (default 1024)
  --mode M         serial | cpu | tiled | gpu | hetero | auto (default hetero)
  --platform P     high | low | phi (default high)
  --t-switch N     low-work fronts per end (default: model heuristic)
  --t-share N      CPU strip width in cells (default: model heuristic)
  --tile N         tile side: --mode tiled (default 64); gpu/hetero run
                   the tile-granular layer (0 = untiled default, -1 =
                   model-picked side)
  --seed N         workload seed (default 1)
  --band N         Sakoe-Chiba band for dtw (default 0 = off)
  --devices N      CPU + N copies of the platform's accelerator via the
                   multi-device strategy (horizontal problems only)
  --trace FILE     write the simulated schedule as chrome://tracing JSON
  --batch N        submit the request N times through the batch engine and
                   report merged-schedule throughput (default 1 = off)
  --sched S        batch scheduler: fifo | sjf | wfq (default fifo)
  --concurrency N  simulated in-flight solve slots for --batch (default 4)
  --batch-mix [SPEC]
                   rotate request configs across the batch. Bare flag keeps
                   the default cpu -> gpu -> hetero rotation; SPEC is a
                   comma list of per-request overrides MODE[:tile=N], e.g.
                   --batch-mix gpu:tile=8,hetero:tile=-1,cpu
  --batch-kernels on|off
                   vectorized batch-front cell kernels: compute interior
                   runs of each front in one SIMD call over packed
                   neighbour spans (default on; results are bit-identical,
                   off restores the scalar per-cell path exactly)
  --schedule S     CPU execution substrate: static | stealing | auto.
                   stealing routes host fronts through the process-wide
                   work-stealing executor (adaptive morsel chunking); for
                   --batch the engine then owns ONE shared executor across
                   all slots instead of per-solve pools. static keeps the
                   legacy fork/join pools; auto (default) = legacy solo,
                   stealing for --batch. Results are bit-identical
  --pack on|off    cross-solve packing for --batch: fuse co-ready GPU
                   fronts of in-flight solves into shared packed launches
                   and co-schedule their CPU strips on one cooperative
                   pool (default on; results are bit-identical)
  --lane-pack on|off|N
                   inter-solve SIMD lane packing for --batch: execute
                   cohorts of same-class small CPU solves in vector
                   lockstep, one lane per solve. on (default) caps
                   cohorts at the active ISA's lane width (8 with AVX2,
                   else 4); N caps at N lanes; off disables. Results are
                   bit-identical to solo solves
  --deadline-ms MS per-request *simulated-time* deadline for --batch
                   requests (deterministic: independent of host load;
                   default 0 = none)
  --retries N      per-request retry budget for --batch: each retry walks
                   one rung down the degradation ladder (fused -> unfused
                   -> untiled -> scalar -> serial reference) with
                   deterministic simulated backoff (default 0)
  --chaos SEED[:RATE]
                   arm deterministic fault injection for --batch: every
                   injection site fails with probability RATE (default
                   0.02) as a pure function of (SEED, site, solve,
                   attempt), so failures replay bit-identically
  --storage S      table storage tier: full | frontier | auto. frontier
                   keeps the live front window + checkpoint rows every K
                   fronts and rematerializes bands on demand for reads
                   (bit-identical answers, O(n*K) transient memory); auto
                   lets the model pick. Omitted = the classic full table
  --checkpoint-k N checkpoint interval for --storage frontier/auto
                   (default 0 = ~sqrt(rows), clamped [4, 512])
  --mem-budget B   admission budget (bytes) on co-running solves' table
                   memory for --batch (default 0 = unlimited)
  --mem-stats      print memory observability: per-solve peak table bytes
                   and remat counters; with --batch also the in-flight
                   high-water and shared-arena hit/miss counters
  --tune           run the Section V-A parameter sweeps first; with
                   --batch, tunes through the shared cross-solve cache
  --list           list problems and exit
)";

Mode parse_mode(const std::string& s) {
  if (s == "serial") return Mode::kCpuSerial;
  if (s == "cpu") return Mode::kCpuParallel;
  if (s == "tiled") return Mode::kCpuTiled;
  if (s == "gpu") return Mode::kGpu;
  if (s == "hetero") return Mode::kHeterogeneous;
  if (s == "auto") return Mode::kAuto;
  throw CheckError("unknown --mode '" + s + "'");
}

sim::PlatformSpec parse_platform(const std::string& s) {
  if (s == "high") return sim::PlatformSpec::hetero_high();
  if (s == "low") return sim::PlatformSpec::hetero_low();
  if (s == "phi") return sim::PlatformSpec::hetero_phi();
  throw CheckError("unknown --platform '" + s + "'");
}

BatchSched parse_sched(const std::string& s) {
  if (s == "fifo") return BatchSched::kFifo;
  if (s == "sjf") return BatchSched::kSjf;
  if (s == "wfq") return BatchSched::kWfq;
  throw CheckError("unknown --sched '" + s + "'");
}

struct Report {
  SolveStats stats;
  std::string answer;
};

int g_devices = 1;  // set from --devices before dispatch
int g_batch = 1;    // --batch: replicate the request through BatchEngine
BatchConfig g_batch_cfg;
bool g_use_frontier = false;  // --storage frontier|auto given
bool g_mem_stats = false;     // --mem-stats

Storage parse_storage(const std::string& s) {
  if (s == "full") return Storage::kFull;
  if (s == "frontier") return Storage::kFrontier;
  if (s == "auto") return Storage::kAuto;
  throw CheckError("unknown --storage '" + s + "'");
}

/// --mem-stats footprint line for one frontier-capable table. Printed
/// after the answer is computed so remat counters include its reads.
template <typename V>
void print_table_mem(const FrontierTable<V>& t, const SolveStats& s) {
  std::printf("memory: peak table %.2f MiB (resident %.2f MiB)",
              static_cast<double>(s.peak_table_bytes) / (1 << 20),
              static_cast<double>(t.resident_bytes()) / (1 << 20));
  if (t.frontier()) {
    const auto& rs = t.remat_stats();
    std::printf(" | K=%zu (%zu checkpoint rows) | remat: %zu band(s), "
                "%zu rows, %zu cells",
                t.checkpoint_interval(), t.checkpoint_row_count(), rs.bands,
                rs.rows, rs.cells);
  }
  std::printf("\n");
}

/// Full-table fallback: the solve already recorded the host grid (plus
/// any wavefront-contiguous device copy) high-water in stats.
template <typename T>
void print_table_mem(const T&, const SolveStats& s) {
  std::printf("memory: peak table %.2f MiB (full storage)\n",
              static_cast<double>(s.peak_table_bytes) / (1 << 20));
}

/// One --batch-mix entry: per-request mode plus optional tile override.
struct MixEntry {
  Mode mode = Mode::kAuto;
  bool has_tile = false;
  long long tile = 0;
};
std::vector<MixEntry> g_batch_mix;  // empty = no mixing

/// Parses a --batch-mix value: a comma list of MODE[:tile=N] specs. The
/// bare flag (empty value) keeps the legacy cpu -> gpu -> hetero rotation.
std::vector<MixEntry> parse_batch_mix(const std::string& spec) {
  std::vector<MixEntry> mix;
  if (spec.empty()) {
    for (Mode m : {Mode::kCpuParallel, Mode::kGpu, Mode::kHeterogeneous})
      mix.push_back(MixEntry{m, false, 0});
    return mix;
  }
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    MixEntry entry;
    const std::size_t colon = item.find(':');
    if (colon != std::string::npos) {
      const std::string opt = item.substr(colon + 1);
      item.erase(colon);
      LDDP_CHECK_MSG(opt.rfind("tile=", 0) == 0,
                     "--batch-mix: unknown option '" << opt
                         << "' (expected tile=N)");
      try {
        entry.tile = std::stoll(opt.substr(5));
      } catch (const std::logic_error&) {
        throw CheckError("--batch-mix: bad tile in '" + opt + "'");
      }
      entry.has_tile = true;
    }
    LDDP_CHECK_MSG(!item.empty(), "--batch-mix: empty mode entry");
    entry.mode = parse_mode(item);
    mix.push_back(entry);
    if (comma == std::string::npos) break;
  }
  return mix;
}

/// Submits the request `g_batch` times through the BatchEngine and prints
/// the merged-schedule throughput report. With --batch-mix the replicas
/// rotate through the per-request specs so CPU-only and accelerator-heavy
/// solves overlap on the shared platform.
void print_batch_report(const BatchReport& rep, const BatchConfig& bc) {
  std::printf("batch: %zu solves, sched=%s, concurrency=%zu, pack=%s%s\n",
              rep.solves, to_string(bc.sched).c_str(), bc.concurrency,
              bc.pack_solves ? "on" : "off",
              g_batch_mix.empty() ? "" : ", mixed modes");
  std::printf("batch sim makespan=%.3f ms | serial %.3f ms | speedup "
              "%.2fx\n",
              rep.sim_makespan * 1e3, rep.serial_sim_seconds * 1e3,
              rep.speedup);
  std::printf("batch throughput=%.1f solves/s (serial %.1f) | latency "
              "p50=%.3f ms p99=%.3f ms\n",
              rep.solves_per_sec, rep.serial_solves_per_sec,
              rep.p50_latency * 1e3, rep.p99_latency * 1e3);
  std::printf("batch packing: %zu packs fused %zu rider op(s), saved "
              "%.3f ms\n",
              rep.packs, rep.packed_ops, rep.pack_saved_seconds * 1e3);
  if (rep.lane_eligible_solves > 0) {
    std::printf("batch lane packing: %zu/%zu solves in %zu cohort(s), "
                "occupancy %.0f%%, hit rate %.0f%% [%s]\n",
                rep.lane_packed_solves, rep.lane_eligible_solves,
                rep.lane_cohorts, rep.lane_occupancy * 100.0,
                rep.lane_hit_rate * 100.0, lanes::active_isa());
  }
  if (rep.tuner_lookups > 0) {
    std::printf("batch tuner cache: %zu/%zu hits (%.0f%%)\n",
                rep.tuner_hits, rep.tuner_lookups,
                rep.tuner_hit_rate * 100.0);
  }
  if (rep.ok_solves != rep.solves || rep.retry_attempts > 0) {
    std::printf("batch lifecycle: %zu ok, %zu retried, %zu degraded, "
                "%zu deadline, %zu cancelled, %zu failed | %zu retry "
                "attempt(s)\n",
                rep.ok_solves, rep.retried_solves, rep.degraded_solves,
                rep.deadline_solves, rep.cancelled_solves,
                rep.failed_solves, rep.retry_attempts);
  }
  if (g_mem_stats) {
    std::printf("batch memory: in-flight tables peak %.2f MiB",
                static_cast<double>(rep.peak_inflight_table_bytes) /
                    (1 << 20));
    if (rep.memory_budget_bytes > 0)
      std::printf(" of %.2f MiB budget (%zu deferral(s))",
                  static_cast<double>(rep.memory_budget_bytes) / (1 << 20),
                  rep.budget_deferrals);
    std::printf(" | arena: %zu hit(s), %zu miss(es), live peak %.2f MiB\n",
                rep.arena.hits, rep.arena.misses,
                static_cast<double>(rep.arena.peak_live_bytes) / (1 << 20));
  }
}

/// Submits the request `g_batch` times (rotating --batch-mix specs),
/// prints the merged report, and answers from the first success. Shared
/// by the full-table and frontier storage tiers via `submit_fn`.
template <typename P, typename SubmitFn, typename AnswerFn>
Report run_batch_generic(const P& problem, const RunConfig& cfg,
                         SubmitFn&& submit_fn, AnswerFn&& answer) {
  BatchConfig bc = g_batch_cfg;
  bc.platform = cfg.platform;
  bc.trace_path = cfg.trace_path;
  BatchEngine engine(bc);
  using Future = decltype(*submit_fn(engine, problem, cfg));
  std::vector<std::decay_t<Future>> futures;
  futures.reserve(static_cast<std::size_t>(g_batch));
  for (int k = 0; k < g_batch; ++k) {
    RunConfig rk = cfg;
    if (!g_batch_mix.empty()) {
      const MixEntry& e = g_batch_mix[static_cast<std::size_t>(k) %
                                      g_batch_mix.size()];
      rk.mode = e.mode;
      if (e.has_tile) rk.tile = e.tile;
    }
    auto f = submit_fn(engine, problem, rk);
    LDDP_CHECK_MSG(f.has_value(), "batch queue rejected a request");
    futures.push_back(std::move(*f));
  }
  const BatchReport rep = engine.wait();
  print_batch_report(rep, bc);
  // Under chaos / deadlines some futures legitimately carry structured
  // errors; answer from the first successful request.
  Report r;
  bool answered = false;
  for (auto& f : futures) {
    try {
      auto result = f.get();
      if (!answered) {
        r.stats = result.stats;
        r.answer = answer(result.table);
        answered = true;
        if (g_mem_stats) print_table_mem(result.table, result.stats);
      }
    } catch (const std::exception& e) {
      if (!answered && r.answer.empty())
        r.answer = std::string("(first request failed: ") + e.what() + ")";
    }
  }
  LDDP_CHECK_MSG(answered || rep.ok_solves + rep.retried_solves +
                                 rep.degraded_solves == 0,
                 "report counted successes but every future threw");
  return r;
}

template <typename P, typename AnswerFn>
Report run_batch(const P& problem, const RunConfig& cfg, AnswerFn&& answer) {
  if (g_use_frontier) {
    return run_batch_generic(
        problem, cfg,
        [](BatchEngine& e, const P& p, const RunConfig& rc) {
          return e.submit_frontier(p, rc);
        },
        answer);
  }
  return run_batch_generic(
      problem, cfg,
      [](BatchEngine& e, const P& p, const RunConfig& rc) {
        return e.submit(p, rc);
      },
      answer);
}

template <typename P, typename AnswerFn>
Report run(const P& problem, RunConfig cfg, bool tune_first,
           AnswerFn&& answer) {
  if (g_batch > 1) {
    LDDP_CHECK_MSG(g_devices == 1, "--batch and --devices are exclusive");
    return run_batch(problem, cfg, answer);
  }
  if (g_devices > 1) {
    LDDP_CHECK_MSG(!g_use_frontier, "--storage and --devices are exclusive");
    LDDP_CHECK_MSG(canonical(classify(problem.deps())) ==
                       Pattern::kHorizontal,
                   "--devices needs a horizontal-pattern problem");
    sim::Platform platform(
        cfg.platform.cpu,
        std::vector<sim::GpuSpec>(static_cast<std::size_t>(g_devices),
                                  cfg.platform.gpu));
    Report r;
    const auto table =
        solve_multi_horizontal(problem, platform, MultiSplit{}, &r.stats);
    r.answer = answer(table);
    return r;
  }
  if (tune_first) {
    RunConfig tune_cfg = cfg;
    const TuneResult t = tune(problem, tune_cfg);
    std::printf("tuned: t_switch=%lld t_share=%lld\n", t.best.t_switch,
                t.best.t_share);
    cfg.hetero = t.best;
  }
  Report r;
  if (g_use_frontier) {
    auto result = solve_frontier(problem, cfg);
    r.stats = result.stats;
    r.answer = answer(result.table);
    if (g_mem_stats) print_table_mem(result.table, result.stats);
    return r;
  }
  auto result = solve(problem, cfg);
  r.stats = result.stats;
  r.answer = answer(result.table);
  if (g_mem_stats) print_table_mem(result.table, r.stats);
  return r;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace lddp::problems;
  Flags flags(argc, argv);

  if (flags.get_bool("list")) {
    std::printf("levenshtein lcs lcs3 nw sw gotoh dtw checkerboard "
                "columnmin dither seam minnwn maxnw\n");
    return 0;
  }
  const std::string name = flags.get("problem", "");
  if (name.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  const auto n = static_cast<std::size_t>(flags.get_int("size", 1024));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  RunConfig cfg;
  cfg.mode = parse_mode(flags.get("mode", "hetero"));
  cfg.platform = parse_platform(flags.get("platform", "high"));
  cfg.hetero.t_switch = flags.get_int("t-switch", -1);
  cfg.hetero.t_share = flags.get_int("t-share", -1);
  if (cfg.mode == Mode::kCpuTiled) {
    cfg.cpu_tile = static_cast<std::size_t>(flags.get_int("tile", 64));
  } else {
    cfg.tile = flags.get_int("tile", 0);
  }
  cfg.trace_path = flags.get("trace", "");
  {
    const std::string bk = flags.get("batch-kernels", "");
    if (!bk.empty()) {
      LDDP_CHECK_MSG(bk == "on" || bk == "off",
                     "--batch-kernels must be on or off, got '" << bk << "'");
      cfg.batch_kernels = bk == "on";
    }
  }
  {
    const std::string sch = flags.get("schedule", "");
    if (!sch.empty()) {
      LDDP_CHECK_MSG(sch == "static" || sch == "stealing" || sch == "auto",
                     "--schedule must be static, stealing or auto, got '"
                         << sch << "'");
      const cpu::Schedule s = sch == "static"     ? cpu::Schedule::kStatic
                              : sch == "stealing" ? cpu::Schedule::kStealing
                                                  : cpu::Schedule::kAuto;
      cfg.schedule = s;
      g_batch_cfg.schedule = s;
    }
  }
  const bool tune_first = flags.get_bool("tune");
  g_devices = static_cast<int>(flags.get_int("devices", 1));
  LDDP_CHECK_MSG(g_devices >= 1, "--devices must be >= 1");
  g_batch = static_cast<int>(flags.get_int("batch", 1));
  LDDP_CHECK_MSG(g_batch >= 1, "--batch must be >= 1");
  g_batch_cfg.sched = parse_sched(flags.get("sched", "fifo"));
  g_batch_cfg.concurrency =
      static_cast<std::size_t>(flags.get_int("concurrency", 4));
  if (flags.has("batch-mix"))
    g_batch_mix = parse_batch_mix(flags.get("batch-mix", ""));
  {
    const std::string pack = flags.get("pack", "");
    if (!pack.empty()) {
      LDDP_CHECK_MSG(pack == "on" || pack == "off",
                     "--pack must be on or off, got '" << pack << "'");
      g_batch_cfg.pack_solves = pack == "on";
    }
  }
  {
    const std::string lp = flags.get("lane-pack", "");
    if (!lp.empty()) {
      if (lp == "on") {
        g_batch_cfg.lane_pack = -1;
      } else if (lp == "off") {
        g_batch_cfg.lane_pack = 0;
      } else {
        char* end = nullptr;
        const long long v = std::strtoll(lp.c_str(), &end, 10);
        LDDP_CHECK_MSG(end != nullptr && *end == '\0' && v >= 0,
                       "--lane-pack must be on, off or a lane count, got '"
                           << lp << "'");
        g_batch_cfg.lane_pack = v;
      }
    }
  }
  // Request lifecycle: simulated-time deadline, retry/degradation budget
  // and the deterministic chaos plan (batch mode only — a solo solve has
  // no lifecycle loop around it).
  g_batch_cfg.deadline_ms = flags.get_double("deadline-ms", 0.0);
  LDDP_CHECK_MSG(g_batch_cfg.deadline_ms >= 0.0,
                 "--deadline-ms must be >= 0");
  const long long retries = flags.get_int("retries", 0);
  LDDP_CHECK_MSG(retries >= 0, "--retries must be >= 0");
  g_batch_cfg.max_retries = static_cast<std::size_t>(retries);
  {
    const std::string chaos_spec = flags.get("chaos", "");
    if (!chaos_spec.empty())
      g_batch_cfg.chaos = chaos::ChaosSpec::parse(chaos_spec).plan();
  }
  // Storage tier: any --storage value routes through the frontier-capable
  // facade (full is the classic table behind it, so --mem-stats works
  // uniformly); omitted keeps the untouched full-table path.
  {
    const std::string st = flags.get("storage", "");
    if (!st.empty()) {
      cfg.storage = parse_storage(st);
      g_use_frontier = true;
    }
  }
  const long long ck = flags.get_int("checkpoint-k", 0);
  LDDP_CHECK_MSG(ck >= 0, "--checkpoint-k must be >= 0");
  cfg.checkpoint_interval = static_cast<std::size_t>(ck);
  const long long mem_budget = flags.get_int("mem-budget", 0);
  LDDP_CHECK_MSG(mem_budget >= 0, "--mem-budget must be >= 0");
  g_batch_cfg.memory_budget_bytes = static_cast<std::size_t>(mem_budget);
  g_mem_stats = flags.get_bool("mem-stats");
  // With --batch, --tune opts the engine's cross-solve tuning cache in
  // instead of running a solo pre-sweep: each auto-parameter request
  // tunes once per (problem, shape, mode) class and later ones reuse it.
  g_batch_cfg.tune_auto = tune_first && g_batch > 1;
  const auto band = static_cast<std::size_t>(flags.get_int("band", 0));

  Report r;
  if (name == "levenshtein") {
    LevenshteinProblem p(random_sequence(n, seed), random_sequence(n, seed + 1));
    r = run(p, cfg, tune_first, [n](const auto& t) {
      return "distance = " + std::to_string(t.at(n, n));
    });
  } else if (name == "lcs") {
    LcsProblem p(random_sequence(n, seed), random_sequence(n, seed + 1));
    r = run(p, cfg, tune_first, [n](const auto& t) {
      return "lcs length = " + std::to_string(t.at(n, n));
    });
  } else if (name == "lcs3") {
    // 3-D path: the k = 3 LDDP-Plus extension.
    Lcs3Problem p(random_sequence(n, seed), random_sequence(n, seed + 1),
                  random_sequence(n, seed + 2));
    SolveStats stats;
    const auto t = solve3(p, cfg, &stats);
    r.stats = stats;
    r.answer =
        "3-way lcs length = " + std::to_string(t.at(n, n, n));
  } else if (name == "nw") {
    NeedlemanWunschProblem p(random_sequence(n, seed),
                             random_sequence(n, seed + 1));
    r = run(p, cfg, tune_first, [n](const auto& t) {
      return "alignment score = " + std::to_string(t.at(n, n));
    });
  } else if (name == "sw") {
    SmithWatermanProblem p(random_sequence(n, seed),
                           random_sequence(n, seed + 1));
    r = run(p, cfg, tune_first, [](const auto& t) {
      return "best local score = " + std::to_string(sw_best_score(t));
    });
  } else if (name == "gotoh") {
    GotohProblem p(random_sequence(n, seed), random_sequence(n, seed + 1));
    r = run(p, cfg, tune_first, [](const auto& t) {
      return "affine score = " + std::to_string(gotoh_score(t));
    });
  } else if (name == "dtw") {
    DtwProblem p(random_walk_series(n, seed), random_walk_series(n, seed + 1),
                 band);
    r = run(p, cfg, tune_first, [n](const auto& t) {
      return "warp cost = " + std::to_string(t.at(n, n));
    });
  } else if (name == "checkerboard") {
    CheckerboardProblem p(random_cost_board(n, n, seed));
    r = run(p, cfg, tune_first, [](const auto& t) {
      return "cheapest path = " + std::to_string(checkerboard_best(t));
    });
  } else if (name == "columnmin") {
    ColumnMinPathProblem p(random_cost_board(n, n, seed));
    r = run(p, cfg, tune_first, [n](const auto& t) {
      auto best = t.at(0, n - 1);
      for (std::size_t i = 1; i < n; ++i)
        best = std::min(best, t.at(i, n - 1));
      return "cheapest path = " + std::to_string(best);
    });
  } else if (name == "dither") {
    FloydSteinbergProblem p(plasma_image(n, n, seed));
    r = run(p, cfg, tune_first, [](const auto& t) {
      std::size_t white = 0;
      for (std::size_t i = 0; i < t.rows(); ++i)
        for (std::size_t j = 0; j < t.cols(); ++j)
          white += t.at(i, j).out == 255;
      return std::to_string(white) + " white pixels";
    });
  } else if (name == "seam") {
    SeamCarveProblem p(dual_gradient_energy(plasma_image(n, n, seed)));
    r = run(p, cfg, tune_first, [&](const auto& t) {
      return "min seam energy = " +
             std::to_string(seam_energy(p.energy(), extract_seam(t)));
    });
  } else if (name == "minnwn") {
    MinNwNProblem p(n, n, 1);
    r = run(p, cfg, tune_first, [n](const auto& t) {
      return "corner = " + std::to_string(t.at(n - 1, n - 1));
    });
  } else if (name == "maxnw") {
    MaxNwProblem p(random_input_grid(n, n, seed), 3);
    r = run(p, cfg, tune_first, [n](const auto& t) {
      return "corner = " + std::to_string(t.at(n - 1, n - 1));
    });
  } else {
    std::fprintf(stderr, "unknown problem '%s'\n%s", name.c_str(), kUsage);
    return 2;
  }

  for (const auto& bad : flags.unknown())
    std::fprintf(stderr, "warning: unused flag --%s\n", bad.c_str());

  std::printf("%s\n", r.answer.c_str());
  std::printf("pattern=%s transfers=%s mode=%s platform=%s\n",
              to_string(r.stats.pattern).c_str(),
              to_string(r.stats.transfer).c_str(),
              to_string(r.stats.mode_used).c_str(),
              cfg.platform.name.c_str());
  std::printf("sim=%.3f ms (cpu busy %.3f, gpu busy %.3f, dma %.3f) | "
              "real=%.3f ms\n",
              r.stats.sim_seconds * 1e3, r.stats.cpu_busy_seconds * 1e3,
              r.stats.gpu_busy_seconds * 1e3,
              r.stats.copy_busy_seconds * 1e3, r.stats.real_seconds * 1e3);
  std::printf("fronts=%zu t_switch=%lld t_share=%lld pcie: %zu B up / %zu B "
              "down\n",
              r.stats.fronts, r.stats.t_switch, r.stats.t_share,
              r.stats.h2d_bytes, r.stats.d2h_bytes);
  if (!cfg.trace_path.empty())
    std::printf("trace written to %s\n", cfg.trace_path.c_str());
  return 0;
} catch (const lddp::CheckError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
