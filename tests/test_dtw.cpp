#include <gtest/gtest.h>

#include "core/framework.h"
#include "problems/dtw.h"

namespace lddp::problems {
namespace {

TEST(DtwTest, IdenticalSeriesCostZero) {
  const auto s = random_walk_series(50, 1);
  EXPECT_DOUBLE_EQ(dtw_reference(s, s), 0.0);
}

TEST(DtwTest, KnownSmallCase) {
  // a = [0, 1, 2], b = [0, 2]: optimal warp aligns 0-0, 1-2?, 2-2.
  const std::vector<double> a{0, 1, 2}, b{0, 2};
  EXPECT_DOUBLE_EQ(dtw_reference(a, b), 1.0);
}

TEST(DtwTest, SymmetricInArguments) {
  const auto a = random_walk_series(40, 2);
  const auto b = random_walk_series(35, 3);
  EXPECT_DOUBLE_EQ(dtw_reference(a, b), dtw_reference(b, a));
}

TEST(DtwTest, ShiftInvarianceUpperBound) {
  // DTW of a series against a constant-shifted copy is at most len * shift.
  auto a = random_walk_series(60, 4);
  auto b = a;
  for (auto& x : b) x += 0.25;
  EXPECT_LE(dtw_reference(a, b), 60 * 0.25 + 1e-9);
}

TEST(DtwTest, AllModesMatchReference) {
  const auto a = random_walk_series(120, 5);
  const auto b = random_walk_series(140, 6);
  DtwProblem p(a, b);
  EXPECT_EQ(classify(p.deps()), Pattern::kAntiDiagonal);
  const double expected = dtw_reference(a, b);
  for (Mode mode : {Mode::kCpuSerial, Mode::kCpuParallel, Mode::kGpu,
                    Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    EXPECT_DOUBLE_EQ(solve(p, cfg).table.at(a.size(), b.size()), expected)
        << to_string(mode);
  }
}

TEST(DtwTest, EmptySeriesRejected) {
  EXPECT_THROW(DtwProblem({}, {1.0}), CheckError);
  EXPECT_THROW(DtwProblem({1.0}, {}), CheckError);
}

TEST(DtwTest, WideBandEqualsUnbanded) {
  const auto a = random_walk_series(60, 7);
  const auto b = random_walk_series(70, 8);
  DtwProblem unbanded(a, b);
  DtwProblem banded(a, b, /*band=*/200);  // wider than the table
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  EXPECT_EQ(solve(unbanded, cfg).table, solve(banded, cfg).table);
}

TEST(DtwTest, BandConstrainsAndNeverImproves) {
  const auto a = random_walk_series(80, 9);
  const auto b = random_walk_series(80, 10);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  double prev = std::numeric_limits<double>::infinity();
  // Widening the Sakoe-Chiba band can only lower (or keep) the warp cost.
  for (std::size_t band : {2u, 5u, 10u, 40u, 80u}) {
    DtwProblem p(a, b, band);
    const double cost = solve(p, cfg).table.at(80, 80);
    EXPECT_LE(cost, prev) << "band " << band;
    prev = cost;
  }
  EXPECT_DOUBLE_EQ(prev, dtw_reference(a, b));  // full band == unbanded
}

TEST(DtwTest, BandedCellsOutsideBandAreInfinite) {
  const auto a = random_walk_series(30, 11);
  const auto b = random_walk_series(30, 12);
  DtwProblem p(a, b, /*band=*/3);
  RunConfig cfg;
  cfg.mode = Mode::kGpu;
  const auto t = solve(p, cfg).table;
  for (std::size_t i = 1; i <= 30; ++i)
    for (std::size_t j = 1; j <= 30; ++j) {
      const std::size_t d = i > j ? i - j : j - i;
      if (d > 3) {
        EXPECT_TRUE(std::isinf(t.at(i, j))) << i << "," << j;
      }
    }
}

}  // namespace
}  // namespace lddp::problems
