// API-level tests of lddp::solve: mode resolution, platform selection,
// stats consistency, and input validation.
#include <gtest/gtest.h>

#include "core/framework.h"
#include "problems/alignment.h"
#include "problems/levenshtein.h"
#include "problems/synthetic.h"

namespace lddp {
namespace {

TEST(FrameworkTest, AutoPicksCpuForSmallTables) {
  problems::LevenshteinProblem p("kitten", "sitting");
  const auto r = solve(p);
  EXPECT_EQ(r.stats.mode_used, Mode::kCpuParallel);
  EXPECT_EQ(r.table.at(6, 7), 3);  // the classic answer
}

TEST(FrameworkTest, AutoPicksHeteroForLargeTables) {
  problems::LevenshteinProblem p(problems::random_sequence(700, 1),
                                 problems::random_sequence(700, 2));
  const auto r = solve(p);
  EXPECT_EQ(r.stats.mode_used, Mode::kHeterogeneous);
}

TEST(FrameworkTest, ExplicitModesAreHonoured) {
  problems::LevenshteinProblem p("abcdefgh", "aXcdeYgh");
  for (Mode mode : {Mode::kCpuSerial, Mode::kCpuParallel, Mode::kGpu,
                    Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    const auto r = solve(p, cfg);
    EXPECT_EQ(r.stats.mode_used, mode);
    EXPECT_EQ(r.table.at(8, 8), 2);
  }
}

TEST(FrameworkTest, PlatformsProduceDifferentSimTimes) {
  problems::LevenshteinProblem p(problems::random_sequence(600, 3),
                                 problems::random_sequence(600, 4));
  RunConfig high;
  high.mode = Mode::kGpu;
  high.platform = sim::PlatformSpec::hetero_high();
  RunConfig low = high;
  low.platform = sim::PlatformSpec::hetero_low();
  const double t_high = solve(p, high).stats.sim_seconds;
  const double t_low = solve(p, low).stats.sim_seconds;
  EXPECT_LT(t_high, t_low);  // K20 beats GT650M
}

TEST(FrameworkTest, SimTimesAreDeterministic) {
  problems::LevenshteinProblem p(problems::random_sequence(300, 5),
                                 problems::random_sequence(300, 6));
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  const auto a = solve(p, cfg);
  const auto b = solve(p, cfg);
  EXPECT_DOUBLE_EQ(a.stats.sim_seconds, b.stats.sim_seconds);
  EXPECT_EQ(a.table, b.table);
}

TEST(FrameworkTest, StatsClassificationFields) {
  problems::LevenshteinProblem p("hello", "world");
  RunConfig cfg;
  cfg.mode = Mode::kGpu;
  const auto r = solve(p, cfg);
  EXPECT_EQ(r.stats.pattern, Pattern::kAntiDiagonal);
  EXPECT_EQ(r.stats.cells, 6u * 6u);
  EXPECT_EQ(r.stats.fronts, 11u);
}

TEST(FrameworkTest, GpuModeTransfersInputAndResult) {
  problems::LevenshteinProblem p(problems::random_sequence(100, 7),
                                 problems::random_sequence(100, 8));
  RunConfig cfg;
  cfg.mode = Mode::kGpu;
  const auto r = solve(p, cfg);
  EXPECT_EQ(r.stats.h2d_bytes, 200u);  // both sequences
  // The distance consumer downloads the last row (result_bytes hook).
  EXPECT_EQ(r.stats.d2h_bytes, 101u * sizeof(std::int32_t));
}

TEST(FrameworkTest, CpuModesTouchNoPcie) {
  problems::LevenshteinProblem p(problems::random_sequence(64, 9),
                                 problems::random_sequence(64, 10));
  for (Mode mode : {Mode::kCpuSerial, Mode::kCpuParallel}) {
    RunConfig cfg;
    cfg.mode = mode;
    const auto r = solve(p, cfg);
    EXPECT_EQ(r.stats.h2d_bytes, 0u) << to_string(mode);
    EXPECT_EQ(r.stats.d2h_bytes, 0u) << to_string(mode);
    EXPECT_DOUBLE_EQ(r.stats.gpu_busy_seconds, 0.0) << to_string(mode);
  }
}

TEST(FrameworkTest, RealSecondsArePopulated) {
  problems::LevenshteinProblem p(problems::random_sequence(128, 11),
                                 problems::random_sequence(128, 12));
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  EXPECT_GT(solve(p, cfg).stats.real_seconds, 0.0);
}

TEST(FrameworkTest, ModeToString) {
  EXPECT_EQ(to_string(Mode::kCpuSerial), "cpu-serial");
  EXPECT_EQ(to_string(Mode::kHeterogeneous), "heterogeneous");
  EXPECT_EQ(to_string(Mode::kAuto), "auto");
}

TEST(FrameworkTest, WorkProfileHookIsOptional) {
  // A minimal problem without work()/input_bytes() still solves.
  struct Minimal {
    using Value = int;
    std::size_t rows() const { return 5; }
    std::size_t cols() const { return 5; }
    ContributingSet deps() const { return ContributingSet{Dep::kN}; }
    Value boundary() const { return 0; }
    Value compute(std::size_t i, std::size_t j,
                  const Neighbors<int>& nb) const {
      return static_cast<int>(i + j) + nb.n;
    }
  };
  static_assert(LddpProblem<Minimal>);
  Minimal p;
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  const auto r = solve(p, cfg);
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  EXPECT_EQ(r.table, solve(p, serial).table);
}

}  // namespace
}  // namespace lddp
