// Differential stress for the batch engine: ~200 random seeded cases —
// every contributing set, ragged and degenerate shapes, all modes, tiled
// and untiled, fused and unfused — pushed through the BatchEngine at
// concurrency 1, 4 and 16 with real worker threads, every result compared
// bit-for-bit against a solo serial scan.
//
// The master seed comes from LDDP_STRESS_SEED (decimal) when set, so a CI
// failure can be replayed locally:  LDDP_STRESS_SEED=12345 ./test_batch_differential
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/batch_engine.h"
#include "core/framework.h"
#include "problems/synthetic.h"
#include "util/rng.h"

namespace lddp {
namespace {

std::uint64_t master_seed() {
  if (const char* env = std::getenv("LDDP_STRESS_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 0x1ddbba7c;
}

struct Case {
  std::size_t rows = 1, cols = 1;
  ContributingSet deps{0b0001};
  std::uint64_t salt = 0;
  RunConfig cfg;
  std::string describe() const {
    return "deps=" + deps.to_string() + " " + std::to_string(rows) + "x" +
           std::to_string(cols) + " mode=" + to_string(cfg.mode) +
           " tile=" + std::to_string(cfg.tile) +
           " fused=" + std::to_string(cfg.fused_launches) +
           " pack=" + std::to_string(cfg.pack_solves);
  }
};

/// Draws one random case. The first 15 draws of a level pin the
/// contributing set so all 15 rows of Table I are always covered; shapes
/// are ragged and occasionally degenerate (single row/column/cell).
Case draw_case(Rng& rng, std::size_t k) {
  Case c;
  const int shape = static_cast<int>(rng.uniform_int(0, 9));
  if (shape == 0) {  // degenerate strip
    c.rows = 1;
    c.cols = static_cast<std::size_t>(rng.uniform_int(1, 80));
  } else if (shape == 1) {
    c.rows = static_cast<std::size_t>(rng.uniform_int(1, 80));
    c.cols = 1;
  } else {  // ragged rectangle
    c.rows = static_cast<std::size_t>(rng.uniform_int(2, 96));
    c.cols = static_cast<std::size_t>(rng.uniform_int(2, 96));
  }
  c.deps = ContributingSet(static_cast<std::uint8_t>(
      k < 15 ? k + 1 : rng.uniform_int(1, 15)));
  c.salt = rng();

  const int mode = static_cast<int>(rng.uniform_int(0, 3));
  c.cfg.mode = mode == 0   ? Mode::kCpuParallel
               : mode == 1 ? Mode::kGpu
               : mode == 2 ? Mode::kHeterogeneous
                           : Mode::kAuto;
  const int tile = static_cast<int>(rng.uniform_int(0, 2));
  c.cfg.tile = tile == 0 ? 0 : tile == 1 ? -1 : 8;
  c.cfg.fused_launches = rng.uniform_int(0, 1) == 1;
  // Per-request packing stance: defer to the engine, opt out, or opt in.
  c.cfg.pack_solves = static_cast<int>(rng.uniform_int(0, 2)) - 1;
  if (rng.uniform_int(0, 1)) {
    c.cfg.hetero.t_switch = rng.uniform_int(0, 100);
    c.cfg.hetero.t_share = rng.uniform_int(0, 100);
  }
  return c;
}

auto make_problem(const Case& c) {
  const ContributingSet deps = c.deps;
  const std::uint64_t salt = c.salt;
  return problems::make_function_problem<std::uint64_t>(
      c.rows, c.cols, deps, salt ^ 0xabcdef,
      [deps, salt](std::size_t i, std::size_t j,
                   const Neighbors<std::uint64_t>& nb) {
        std::uint64_t r = salt + i * 1000003 + j * 10007;
        if (deps.has_w()) r = (r << 1) ^ nb.w;
        if (deps.has_nw()) r = (r >> 1) + nb.nw;
        if (deps.has_n()) r = r * 31 + nb.n;
        if (deps.has_ne()) r ^= nb.ne + 0x517cc1b727220a95ULL;
        return r;
      });
}

/// Pushes `cases` random cases through one engine (reused across several
/// wait() rounds) and checks every table against the solo serial scan.
void run_level(std::size_t concurrency, std::size_t cases,
               BatchSched sched, const sim::PlatformSpec& platform,
               std::size_t threads_per_solve, std::uint64_t seed_stream,
               bool pack_solves = true) {
  const std::uint64_t seed = master_seed();
  std::printf("LDDP_STRESS_SEED=%llu (stream %llu, concurrency %zu, "
              "pack %d)\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed_stream), concurrency,
              pack_solves ? 1 : 0);
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + seed_stream);

  BatchConfig bc;
  bc.platform = platform;
  bc.concurrency = concurrency;
  bc.worker_threads = static_cast<long long>(concurrency);
  bc.threads_per_solve = threads_per_solve;
  bc.queue_capacity = 8;  // smaller than a round: exercises backpressure
  bc.sched = sched;
  bc.pack_solves = pack_solves;
  BatchEngine engine(bc);

  constexpr std::size_t kRound = 24;
  std::size_t done = 0;
  while (done < cases) {
    const std::size_t n = std::min(kRound, cases - done);
    std::vector<Case> batch;
    std::vector<Grid<std::uint64_t>> expected;
    using Problem = decltype(make_problem(std::declval<Case&>()));
    std::vector<std::future<SolveResult<Problem>>> futures;
    for (std::size_t k = 0; k < n; ++k) {
      Case c = draw_case(rng, done + k);
      c.cfg.platform = platform;
      RunConfig serial;
      serial.mode = Mode::kCpuSerial;
      const auto problem = make_problem(c);
      expected.push_back(solve(problem, serial).table);
      auto f = engine.submit(problem, c.cfg,
                             1.0 + static_cast<double>(k % 3));
      ASSERT_TRUE(f.has_value()) << c.describe();
      futures.push_back(std::move(*f));
      batch.push_back(std::move(c));
    }
    const BatchReport rep = engine.wait();
    ASSERT_EQ(rep.solves, n);
    for (std::size_t k = 0; k < n; ++k) {
      SolveResult<Problem> got;
      ASSERT_NO_THROW(got = futures[k].get())
          << "seed=" << seed << " case " << done + k << ": "
          << batch[k].describe();
      ASSERT_EQ(got.table, expected[k])
          << "seed=" << seed << " case " << done + k << ": "
          << batch[k].describe();
      EXPECT_FALSE(rep.items[k].failed);
      EXPECT_GE(rep.items[k].sim_end, rep.items[k].sim_start);
    }
    EXPECT_NEAR(rep.sim_makespan, rep.p99_latency,
                rep.sim_makespan * 0.5 + 1e-9);  // sanity, not a perf gate
    done += n;
  }
}

TEST(BatchDifferential, Concurrency1) {
  run_level(1, 72, BatchSched::kFifo, sim::PlatformSpec::hetero_high(),
            /*threads_per_solve=*/1, /*seed_stream=*/1);
}

TEST(BatchDifferential, Concurrency4) {
  // threads_per_solve 2 with packing on: every slot's strip sessions
  // time-share the one cooperative pool.
  run_level(4, 72, BatchSched::kSjf, sim::PlatformSpec::hetero_low(),
            /*threads_per_solve=*/2, /*seed_stream=*/2);
}

TEST(BatchDifferential, Concurrency16) {
  run_level(16, 72, BatchSched::kWfq, sim::PlatformSpec::hetero_phi(),
            /*threads_per_solve=*/1, /*seed_stream=*/3);
}

TEST(BatchDifferential, Concurrency1Unpacked) {
  run_level(1, 48, BatchSched::kFifo, sim::PlatformSpec::hetero_high(),
            /*threads_per_solve=*/1, /*seed_stream=*/4,
            /*pack_solves=*/false);
}

TEST(BatchDifferential, Concurrency4Unpacked) {
  // Packing off restores the per-slot private pools.
  run_level(4, 48, BatchSched::kSjf, sim::PlatformSpec::hetero_high(),
            /*threads_per_solve=*/2, /*seed_stream=*/5,
            /*pack_solves=*/false);
}

TEST(BatchDifferential, Concurrency16Unpacked) {
  run_level(16, 48, BatchSched::kWfq, sim::PlatformSpec::hetero_low(),
            /*threads_per_solve=*/1, /*seed_stream=*/6,
            /*pack_solves=*/false);
}

}  // namespace
}  // namespace lddp
