// Cross-solve wavefront packing: PackedKernel segment pricing, pack-window
// formation and dependency preservation in the TimelineMerger, completion
// draining, deterministic replay across real worker counts, the
// cooperative strip pool, and the cross-solve tuner cache.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/batch_engine.h"
#include "core/framework.h"
#include "core/tuner.h"
#include "problems/alignment.h"
#include "problems/levenshtein.h"
#include "sim/device_spec.h"
#include "sim/kernel.h"
#include "sim/timeline.h"
#include "sim/timeline_merge.h"

namespace lddp {
namespace {

constexpr double kTol = 1e-12;

TEST(PackedKernel, HeadPaysFullRidersAmortize) {
  const sim::GpuSpec spec = sim::GpuSpec::tesla_k20();
  const double issue = spec.packed_segment_issue_us * 1e-6;
  sim::PackedKernel pack(spec);

  // The head segment carries the launch: full recorded price, no savings.
  EXPECT_DOUBLE_EQ(pack.add_segment(100e-6, 40e-6), 100e-6);
  EXPECT_EQ(pack.segments(), 1u);
  EXPECT_DOUBLE_EQ(pack.saved_seconds(), 0.0);

  // A rider swaps its 40us amortizable share for the segment-issue cost.
  const double priced = pack.add_segment(100e-6, 40e-6);
  EXPECT_NEAR(priced, 60e-6 + issue, kTol);
  EXPECT_NEAR(pack.saved_seconds(), 40e-6 - issue, kTol);
  EXPECT_EQ(pack.segments(), 2u);

  // Clamp: a rider with nothing to amortize never prices above solo.
  EXPECT_DOUBLE_EQ(pack.add_segment(0.3e-6, 0.0), 0.3e-6);

  // Clamp: annotation larger than the op leaves only the issue cost.
  EXPECT_NEAR(pack.add_segment(1e-6, 50e-6), issue, kTol);

  EXPECT_NEAR(pack.total_seconds(),
              100e-6 + (60e-6 + issue) + 0.3e-6 + issue, kTol);
}

TEST(PackedKernel, ExecPricingIsFloorFree) {
  const sim::GpuSpec spec = sim::GpuSpec::tesla_k20();
  sim::KernelInfo info;

  // A tiny front is dominated by the pipeline-fill floor; the packed price
  // drops it (the pack's head already filled the pipeline).
  const double tiny_exec = sim::kernel_exec_seconds(spec, info, 4);
  const double tiny_packed = sim::kernel_packed_exec_seconds(spec, info, 4);
  EXPECT_LT(tiny_packed, tiny_exec);
  EXPECT_GT(tiny_packed, 0.0);

  // A saturating front is throughput-bound: floor removal changes nothing.
  const std::size_t big = 1u << 22;
  EXPECT_NEAR(sim::kernel_packed_exec_seconds(spec, info, big),
              sim::kernel_exec_seconds(spec, info, big), kTol);

  // The packed price never exceeds the solo exec price.
  for (std::size_t n : {1u, 64u, 4096u, 262144u}) {
    EXPECT_LE(sim::kernel_packed_exec_seconds(spec, info, n),
              sim::kernel_exec_seconds(spec, info, n) + kTol);
  }
}

/// One recorded single-op schedule on resource `res` with `dur` seconds and
/// `overhead` annotated as amortizable.
sim::Timeline one_op(const char* res, double dur, double overhead) {
  sim::Timeline tl;
  const auto r = tl.add_resource(res);
  const sim::OpId op = tl.record(r, dur);
  if (overhead > 0.0) tl.annotate_pack(op, overhead);
  return tl;
}

TEST(PackScheduler, CoReadyFrontsFormOnePack) {
  const sim::GpuSpec spec = sim::GpuSpec::tesla_k20();
  const double issue = spec.packed_segment_issue_us * 1e-6;
  const sim::Timeline a = one_op("gpu", 100e-6, 40e-6);
  const sim::Timeline b = one_op("gpu", 100e-6, 40e-6);

  sim::Timeline shared;
  shared.add_resource("gpu");
  sim::TimelineMerger merger(shared);
  merger.enable_packing(spec);
  merger.add(a, 0.0);
  merger.add(b, 0.0);
  while (merger.busy()) merger.step();

  EXPECT_EQ(merger.pack_count(), 1u);
  EXPECT_EQ(merger.packed_ops(), 1u);
  EXPECT_NEAR(merger.pack_saved_seconds(), 40e-6 - issue, kTol);
  // Head at full price, rider appended floor-free: 100 + 60 + issue us.
  EXPECT_NEAR(shared.makespan(), 160e-6 + issue, kTol);
  EXPECT_NEAR(merger.job_end(0), 100e-6, kTol);
  EXPECT_NEAR(merger.job_end(1), 160e-6 + issue, kTol);
}

TEST(PackScheduler, PackingOffReproducesSerialQueueing) {
  const sim::Timeline a = one_op("gpu", 100e-6, 40e-6);
  const sim::Timeline b = one_op("gpu", 100e-6, 40e-6);

  sim::Timeline shared;
  shared.add_resource("gpu");
  sim::TimelineMerger merger(shared);  // enable_packing not called
  merger.add(a, 0.0);
  merger.add(b, 0.0);
  while (merger.busy()) merger.step();

  EXPECT_EQ(merger.pack_count(), 0u);
  EXPECT_NEAR(shared.makespan(), 200e-6, kTol);
}

TEST(PackScheduler, NonPackableJobNeverRides) {
  const sim::GpuSpec spec = sim::GpuSpec::tesla_k20();
  const sim::Timeline a = one_op("gpu", 100e-6, 40e-6);
  const sim::Timeline b = one_op("gpu", 100e-6, 40e-6);

  sim::Timeline shared;
  shared.add_resource("gpu");
  sim::TimelineMerger merger(shared);
  merger.enable_packing(spec);
  merger.add(a, 0.0);
  merger.add(b, 0.0, sim::kNoOp, /*packable=*/false);
  while (merger.busy()) merger.step();

  EXPECT_EQ(merger.pack_count(), 0u);
  EXPECT_NEAR(shared.makespan(), 200e-6, kTol);
}

TEST(PackScheduler, UnannotatedOpsDoNotPack) {
  const sim::GpuSpec spec = sim::GpuSpec::tesla_k20();
  // No annotate_pack: nothing is amortizable, so there is nothing to fuse.
  const sim::Timeline a = one_op("gpu", 100e-6, 0.0);
  const sim::Timeline b = one_op("gpu", 100e-6, 0.0);

  sim::Timeline shared;
  shared.add_resource("gpu");
  sim::TimelineMerger merger(shared);
  merger.enable_packing(spec);
  merger.add(a, 0.0);
  merger.add(b, 0.0);
  while (merger.busy()) merger.step();

  EXPECT_EQ(merger.pack_count(), 0u);
  EXPECT_NEAR(shared.makespan(), 200e-6, kTol);
}

TEST(PackScheduler, PackCompletionsDrainOnePerStep) {
  const sim::GpuSpec spec = sim::GpuSpec::tesla_k20();
  const sim::Timeline a = one_op("gpu", 100e-6, 40e-6);
  const sim::Timeline b = one_op("gpu", 100e-6, 40e-6);
  const sim::Timeline c = one_op("gpu", 100e-6, 40e-6);

  sim::Timeline shared;
  shared.add_resource("gpu");
  sim::TimelineMerger merger(shared);
  merger.enable_packing(spec);
  merger.add(a, 0.0);
  merger.add(b, 0.0);
  merger.add(c, 0.0);

  // One pack finishes all three jobs; step() surfaces them one at a time,
  // in admission-rank order, and busy() holds until the queue is drained.
  std::vector<std::size_t> completions;
  while (merger.busy()) {
    const std::size_t done = merger.step();
    if (done != sim::TimelineMerger::kNone) completions.push_back(done);
  }
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], 0u);
  EXPECT_EQ(completions[1], 1u);
  EXPECT_EQ(completions[2], 2u);
  EXPECT_EQ(merger.pack_count(), 1u);
  EXPECT_EQ(merger.packed_ops(), 2u);
}

TEST(PackScheduler, PacksRespectRecordedDependencies) {
  const sim::GpuSpec spec = sim::GpuSpec::tesla_k20();
  const double issue = spec.packed_segment_issue_us * 1e-6;

  // Each job: a 10us staging copy (private DMA lanes) gating a 100us
  // kernel on the shared compute engine.
  auto chain = [](const char* copy_res) {
    sim::Timeline tl;
    const auto rc = tl.add_resource(copy_res);
    const auto rg = tl.add_resource("gpu");
    const sim::OpId h2d = tl.record(rc, 10e-6);
    const sim::OpId k = tl.record(rg, 100e-6, h2d);
    tl.annotate_pack(k, 40e-6);
    return tl;
  };
  const sim::Timeline a = chain("copy.a");
  const sim::Timeline b = chain("copy.b");

  sim::Timeline shared;
  shared.add_resource("copy.a");
  shared.add_resource("copy.b");
  shared.add_resource("gpu");
  sim::TimelineMerger merger(shared);
  merger.enable_packing(spec);
  merger.add(a, 0.0);
  merger.add(b, 0.0);
  while (merger.busy()) merger.step();

  // Both kernels become co-ready at t = 10us — after their own copies —
  // and only then fuse: the pack must not start before the dependency.
  EXPECT_EQ(merger.pack_count(), 1u);
  EXPECT_NEAR(merger.job_start(0), 0.0, kTol);
  EXPECT_NEAR(merger.job_end(0), 110e-6, kTol);
  EXPECT_NEAR(merger.job_end(1), 170e-6 + issue, kTol);
  EXPECT_NEAR(shared.makespan(), 170e-6 + issue, kTol);
}

TEST(PackScheduler, StaggeredReleasesDoNotPack) {
  const sim::GpuSpec spec = sim::GpuSpec::tesla_k20();
  const sim::Timeline a = one_op("gpu", 100e-6, 40e-6);
  const sim::Timeline b = one_op("gpu", 30e-6, 20e-6);

  sim::Timeline shared;
  shared.add_resource("gpu");
  sim::TimelineMerger merger(shared);
  merger.enable_packing(spec);
  merger.add(a, 0.0);
  merger.add(b, 50e-6);  // released mid-flight: feasible starts differ
  while (merger.busy()) merger.step();

  EXPECT_EQ(merger.pack_count(), 0u);
  EXPECT_NEAR(shared.makespan(), 130e-6, kTol);  // FIFO on the engine
}

// ---------------------------------------------------------------------------
// Batch-engine integration.

using Problem = problems::LevenshteinProblem;

Problem make_problem(std::size_t n, std::uint64_t seed) {
  return Problem(problems::random_sequence(n, seed),
                 problems::random_sequence(n, seed + 1));
}

struct EngineRun {
  BatchReport report;
  std::vector<Grid<std::int32_t>> tables;
};

/// Submits the same deterministic request mix and returns report + tables.
EngineRun run_mix(BatchConfig bc, std::size_t requests, int pack_override,
                  Mode force_mode = Mode::kAuto) {
  BatchEngine engine(bc);
  std::vector<std::future<SolveResult<Problem>>> futures;
  for (std::size_t k = 0; k < requests; ++k) {
    RunConfig rc;
    constexpr Mode kMix[] = {Mode::kGpu, Mode::kHeterogeneous,
                             Mode::kCpuParallel};
    rc.mode = force_mode == Mode::kAuto ? kMix[k % 3] : force_mode;
    rc.hetero.t_switch = 8;
    rc.hetero.t_share = 16;
    rc.pack_solves = pack_override;
    rc.tile = k % 2 ? 8 : 0;
    auto f = engine.submit(make_problem(64 + 8 * (k % 4), 7 + k), rc);
    EXPECT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  EngineRun out;
  out.report = engine.wait();
  for (auto& f : futures) out.tables.push_back(f.get().table);
  return out;
}

TEST(PackScheduler, DeterministicAcrossWorkerCounts) {
  BatchConfig bc;
  bc.concurrency = 4;
  bc.threads_per_solve = 2;
  auto with_workers = [&](long long w) {
    BatchConfig c = bc;
    c.worker_threads = w;
    return run_mix(c, 12, /*pack_override=*/-1);
  };
  const EngineRun inline_run = with_workers(0);
  const EngineRun two = with_workers(2);
  const EngineRun eight = with_workers(8);

  EXPECT_GT(inline_run.report.packs, 0u);
  for (const EngineRun* other : {&two, &eight}) {
    // The merged schedule is a pure function of the recorded schedules and
    // the policy: real executor parallelism must not perturb one number.
    EXPECT_DOUBLE_EQ(other->report.sim_makespan,
                     inline_run.report.sim_makespan);
    EXPECT_EQ(other->report.packs, inline_run.report.packs);
    EXPECT_EQ(other->report.packed_ops, inline_run.report.packed_ops);
    EXPECT_DOUBLE_EQ(other->report.pack_saved_seconds,
                     inline_run.report.pack_saved_seconds);
    ASSERT_EQ(other->report.items.size(), inline_run.report.items.size());
    for (std::size_t k = 0; k < inline_run.report.items.size(); ++k) {
      EXPECT_DOUBLE_EQ(other->report.items[k].sim_start,
                       inline_run.report.items[k].sim_start);
      EXPECT_DOUBLE_EQ(other->report.items[k].sim_end,
                       inline_run.report.items[k].sim_end);
      EXPECT_EQ(other->report.items[k].completion_rank,
                inline_run.report.items[k].completion_rank);
    }
    ASSERT_EQ(other->tables.size(), inline_run.tables.size());
    for (std::size_t k = 0; k < inline_run.tables.size(); ++k)
      EXPECT_EQ(other->tables[k], inline_run.tables[k]);
  }
}

TEST(PackScheduler, PackedResultsBitIdenticalToSerial) {
  BatchConfig bc;
  bc.concurrency = 4;
  bc.worker_threads = 4;
  bc.threads_per_solve = 4;  // coop pool: slots share one strip master
  const EngineRun run = run_mix(bc, 12, /*pack_override=*/-1);
  EXPECT_GT(run.report.packs, 0u);
  for (std::size_t k = 0; k < run.tables.size(); ++k) {
    RunConfig serial;
    serial.mode = Mode::kCpuSerial;
    const auto expected = solve(make_problem(64 + 8 * (k % 4), 7 + k),
                                serial).table;
    EXPECT_EQ(run.tables[k], expected) << "request " << k;
  }
}

TEST(PackScheduler, PackingOnlyImprovesMakespan) {
  BatchConfig bc;
  bc.concurrency = 8;
  bc.worker_threads = 0;
  BatchConfig off = bc;
  off.pack_solves = false;
  const EngineRun packed = run_mix(bc, 16, -1, Mode::kGpu);
  const EngineRun unpacked = run_mix(off, 16, -1, Mode::kGpu);
  EXPECT_GT(packed.report.packs, 0u);
  EXPECT_EQ(unpacked.report.packs, 0u);
  // Rider pricing is clamped at solo cost, so the packed merge can only
  // tighten the schedule.
  EXPECT_LE(packed.report.sim_makespan,
            unpacked.report.sim_makespan + kTol);
  ASSERT_EQ(packed.tables.size(), unpacked.tables.size());
  for (std::size_t k = 0; k < packed.tables.size(); ++k)
    EXPECT_EQ(packed.tables[k], unpacked.tables[k]);
}

TEST(PackScheduler, RunConfigOptOutSuppressesPacking) {
  BatchConfig bc;
  bc.concurrency = 8;
  bc.worker_threads = 0;
  const EngineRun run = run_mix(bc, 12, /*pack_override=*/0, Mode::kGpu);
  EXPECT_EQ(run.report.packs, 0u);
  EXPECT_EQ(run.report.packed_ops, 0u);
  EXPECT_DOUBLE_EQ(run.report.pack_saved_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Cross-solve tuner cache.

TEST(TunerCache, BucketsShapesAndReusesSweeps) {
  TunerCache cache;
  cache.samples_per_sweep = 5;  // keep the test sweep cheap
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;

  bool hit = true;
  const auto first = cache.lookup_or_tune(make_problem(128, 1), cfg, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.entries(), 1u);

  // Same problem again: answered from the cache, identical optimum.
  const auto again = cache.lookup_or_tune(make_problem(128, 1), cfg, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(again.params.t_switch, first.params.t_switch);
  EXPECT_EQ(again.params.t_share, first.params.t_share);
  EXPECT_EQ(again.tile, first.tile);

  // 192 shares 128's floor-log2 bucket: cache hit, no new sweep.
  cache.lookup_or_tune(make_problem(192, 2), cfg, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.entries(), 1u);

  // 256 crosses into the next bucket: a fresh sweep.
  cache.lookup_or_tune(make_problem(256, 3), cfg, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.entries(), 2u);

  EXPECT_EQ(cache.lookups(), 4u);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(TunerCache, BatchTuneAutoSharesSweeps) {
  BatchConfig bc;
  bc.concurrency = 4;
  bc.worker_threads = 0;
  bc.tune_auto = true;
  BatchEngine engine(bc);
  std::vector<std::future<SolveResult<Problem>>> futures;
  constexpr std::size_t kRequests = 6;
  for (std::size_t k = 0; k < kRequests; ++k) {
    RunConfig rc;
    rc.mode = Mode::kHeterogeneous;  // auto params: t_switch/t_share unset
    auto f = engine.submit(make_problem(96, 11 + k), rc);
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  const BatchReport rep = engine.wait();
  EXPECT_EQ(rep.tuner_lookups, kRequests);
  EXPECT_EQ(rep.tuner_hits, kRequests - 1);  // one sweep, five reuses
  EXPECT_NEAR(rep.tuner_hit_rate,
              static_cast<double>(kRequests - 1) / kRequests, kTol);
  for (std::size_t k = 0; k < kRequests; ++k) {
    RunConfig serial;
    serial.mode = Mode::kCpuSerial;
    EXPECT_EQ(futures[k].get().table,
              solve(make_problem(96, 11 + k), serial).table);
  }
}

}  // namespace
}  // namespace lddp
