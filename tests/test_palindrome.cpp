#include <gtest/gtest.h>

#include "core/framework.h"
#include "problems/alignment.h"
#include "problems/lcs.h"
#include "problems/palindrome.h"

namespace lddp::problems {
namespace {

TEST(PalindromeTest, KnownCases) {
  EXPECT_EQ(palindrome_reference("a"), 1);
  EXPECT_EQ(palindrome_reference("ab"), 1);
  EXPECT_EQ(palindrome_reference("aa"), 2);
  EXPECT_EQ(palindrome_reference("bbbab"), 4);    // "bbbb"
  EXPECT_EQ(palindrome_reference("character"), 5);  // "carac"
  EXPECT_EQ(palindrome_reference("racecar"), 7);
}

TEST(PalindromeTest, ClassifiesAntiDiagonal) {
  PalindromeProblem p("abc");
  EXPECT_EQ(classify(p.deps()), Pattern::kAntiDiagonal);
  EXPECT_THROW(PalindromeProblem(""), CheckError);
}

TEST(PalindromeTest, AllModesMatchReference) {
  const std::string s = random_sequence(180, 77, "abcd");
  PalindromeProblem p(s);
  const auto expected = palindrome_reference(s);
  for (Mode mode : {Mode::kCpuSerial, Mode::kCpuParallel, Mode::kCpuTiled,
                    Mode::kGpu, Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    EXPECT_EQ(PalindromeProblem::answer(solve(p, cfg).table), expected)
        << to_string(mode);
  }
}

TEST(PalindromeTest, EqualsLcsWithReversedSelf) {
  // Classic identity: LPS(s) == LCS(s, reverse(s)).
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const std::string s = random_sequence(40 + seed * 13, seed + 5, "abc");
    std::string rev(s.rbegin(), s.rend());
    EXPECT_EQ(palindrome_reference(s), lcs_reference(s, rev)) << s;
  }
}

TEST(PalindromeTest, PalindromeInputIsItsOwnAnswer) {
  const std::string half = random_sequence(30, 99);
  const std::string pal = half + std::string(half.rbegin(), half.rend());
  PalindromeProblem p(pal);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  EXPECT_EQ(PalindromeProblem::answer(solve(p, cfg).table),
            static_cast<std::int32_t>(pal.size()));
}

}  // namespace
}  // namespace lddp::problems
