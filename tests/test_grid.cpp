#include <gtest/gtest.h>

#include "tables/grid.h"

namespace lddp {
namespace {

TEST(GridTest, FillAndAccess) {
  Grid<int> g(3, 4, 7);
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.cols(), 4u);
  EXPECT_EQ(g.size(), 12u);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(g.at(i, j), 7);
  g.at(1, 2) = 42;
  EXPECT_EQ(g.at(1, 2), 42);
}

TEST(GridTest, RowMajorStorageOrder) {
  Grid<int> g(2, 3);
  int v = 0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) g.at(i, j) = v++;
  for (int k = 0; k < 6; ++k) EXPECT_EQ(g.data()[k], k);
}

TEST(GridTest, Equality) {
  Grid<int> a(2, 2, 1), b(2, 2, 1);
  EXPECT_EQ(a, b);
  b.at(0, 1) = 9;
  EXPECT_NE(a, b);
}

TEST(GridTest, DefaultConstructedIsEmpty) {
  Grid<int> g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.size(), 0u);
}

TEST(GridTest, ZeroDimensionThrows) {
  EXPECT_THROW(Grid<int>(0, 3), CheckError);
  EXPECT_THROW(Grid<int>(3, 0), CheckError);
}

}  // namespace
}  // namespace lddp
