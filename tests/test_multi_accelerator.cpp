// Multi-accelerator (CPU + N devices) horizontal execution.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/framework.h"
#include "core/multi.h"
#include "problems/checkerboard.h"
#include "problems/synthetic.h"

namespace lddp {
namespace {

std::vector<sim::GpuSpec> two_gpus() {
  return {sim::GpuSpec::tesla_k20(), sim::GpuSpec::gt650m()};
}

TEST(MultiAcceleratorTest, PlatformHoldsSeveralDevices) {
  sim::Platform platform(cpu::CpuSpec::i7_980(), two_gpus());
  EXPECT_EQ(platform.num_gpus(), 2u);
  EXPECT_EQ(platform.gpu(0).spec().sm_count, 13);
  EXPECT_EQ(platform.gpu(1).spec().sm_count, 2);
  EXPECT_THROW(platform.gpu(2), CheckError);
}

TEST(MultiAcceleratorTest, DevicesGetDistinctTimelineResources) {
  sim::Platform platform(cpu::CpuSpec::i7_980(), two_gpus());
  auto& tl = platform.timeline();
  std::set<std::string> names;
  for (sim::Timeline::ResourceId r = 0; r < tl.resource_count(); ++r)
    names.insert(tl.resource_name(r));
  EXPECT_TRUE(names.count("cpu"));
  EXPECT_TRUE(names.count("gpu0.compute"));
  EXPECT_TRUE(names.count("gpu1.compute"));
  EXPECT_TRUE(names.count("gpu0.copy.h2d"));
  EXPECT_TRUE(names.count("gpu0.copy.d2h"));  // K20: two engines
  EXPECT_TRUE(names.count("gpu1.copy.h2d"));
  EXPECT_FALSE(names.count("gpu1.copy.d2h"));  // GT650M: one engine
}

TEST(MultiAcceleratorTest, Case1MatchesReference) {
  problems::MinNwNProblem p(130, 170, 1);
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);
  sim::Platform platform(cpu::CpuSpec::i7_980(), two_gpus());
  SolveStats stats;
  const auto table = solve_multi_horizontal(p, platform, MultiSplit{}, &stats);
  EXPECT_EQ(table, ref.table);
  EXPECT_GT(stats.gpu_busy_seconds, 0.0);
}

TEST(MultiAcceleratorTest, Case2MatchesReference) {
  const auto costs = problems::random_cost_board(120, 150, 3);
  problems::CheckerboardProblem p(costs);
  sim::Platform platform(cpu::CpuSpec::i7_980(), two_gpus());
  SolveStats stats;
  const auto table = solve_multi_horizontal(p, platform, MultiSplit{}, &stats);
  EXPECT_EQ(table, problems::checkerboard_reference(costs));
  EXPECT_EQ(stats.transfer, TransferNeed::kTwoWay);
}

TEST(MultiAcceleratorTest, ExplicitSplitsStayCorrect) {
  const auto costs = problems::random_cost_board(60, 90, 4);
  problems::CheckerboardProblem p(costs);
  const auto ref = problems::checkerboard_reference(costs);
  const std::vector<std::vector<std::size_t>> splits = {
      {0, 45, 45},   // no CPU strip
      {88, 1, 1},    // almost everything on the CPU
      {30, 30, 30},  // even thirds
  };
  for (const auto& widths : splits) {
    sim::Platform platform(cpu::CpuSpec::i7_980(), two_gpus());
    const auto table =
        solve_multi_horizontal(p, platform, MultiSplit{widths}, nullptr);
    EXPECT_EQ(table, ref) << widths[0] << "/" << widths[1] << "/" << widths[2];
  }
}

TEST(MultiAcceleratorTest, ThreeDevices) {
  problems::MinNwNProblem p(100, 240, 2);
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);
  sim::Platform platform(
      cpu::CpuSpec::i7_980(),
      {sim::GpuSpec::tesla_k20(), sim::GpuSpec::gt650m(),
       sim::GpuSpec::xeon_phi_5110p()});
  const auto table = solve_multi_horizontal(p, platform, MultiSplit{}, nullptr);
  EXPECT_EQ(table, ref.table);
}

TEST(MultiAcceleratorTest, SecondDeviceHelpsOneWayPatternsAtScale) {
  // One-way boundary traffic (case-1) pipelines: the second device trails
  // by a constant transfer lag, so doubling devices nearly halves time.
  problems::MinNwNProblem p(4096, 16384, 1);
  SolveStats one, two;
  {
    sim::Platform platform(cpu::CpuSpec::i7_980(),
                           {sim::GpuSpec::tesla_k20()});
    solve_multi_horizontal(p, platform, MultiSplit{}, &one);
  }
  {
    sim::Platform platform(
        cpu::CpuSpec::i7_980(),
        {sim::GpuSpec::tesla_k20(), sim::GpuSpec::tesla_k20()});
    solve_multi_horizontal(p, platform, MultiSplit{}, &two);
  }
  EXPECT_LT(two.sim_seconds, one.sim_seconds);
}

TEST(MultiAcceleratorTest, TwoWayPingPongEatsTheSecondDevicesGain) {
  // Case-2 needs boundary cells in both directions every row; the staged
  // device<->device round trip lands on the critical path and (at widths
  // where one device is already efficient) makes two devices *slower* —
  // the honest flip side of fine-grained multi-accelerator splitting.
  problems::CheckerboardProblem p(problems::random_cost_board(2048, 2048, 5));
  SolveStats one, two;
  {
    sim::Platform platform(cpu::CpuSpec::i7_980(),
                           {sim::GpuSpec::tesla_k20()});
    solve_multi_horizontal(p, platform, MultiSplit{}, &one);
  }
  {
    sim::Platform platform(
        cpu::CpuSpec::i7_980(),
        {sim::GpuSpec::tesla_k20(), sim::GpuSpec::tesla_k20()});
    solve_multi_horizontal(p, platform, MultiSplit{}, &two);
  }
  EXPECT_GT(two.sim_seconds, one.sim_seconds);
}

TEST(MultiAcceleratorTest, InvalidSplitsRejected) {
  problems::MinNwNProblem p(20, 30, 1);
  sim::Platform platform(cpu::CpuSpec::i7_980(), two_gpus());
  EXPECT_THROW(
      solve_multi_horizontal(p, platform, MultiSplit{{30}}, nullptr),
      CheckError);  // wrong arity
  EXPECT_THROW(
      solve_multi_horizontal(p, platform, MultiSplit{{10, 10, 5}}, nullptr),
      CheckError);  // doesn't sum to the width
}

TEST(MultiAcceleratorTest, RejectsNonHorizontalPattern) {
  const auto probe = problems::make_function_problem<std::uint64_t>(
      8, 8, ContributingSet{Dep::kW, Dep::kN}, 0ULL,
      [](std::size_t, std::size_t, const Neighbors<std::uint64_t>& nb) {
        return nb.w + nb.n;
      });
  sim::Platform platform(cpu::CpuSpec::i7_980(), two_gpus());
  EXPECT_THROW(solve_multi_horizontal(probe, platform, MultiSplit{}, nullptr),
               CheckError);
}

TEST(MultiAcceleratorTest, EmptyDeviceListRejected) {
  EXPECT_THROW(sim::Platform(cpu::CpuSpec::i7_980(), {}), CheckError);
}

}  // namespace
}  // namespace lddp
