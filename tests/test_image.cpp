#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "problems/image.h"

namespace lddp::problems {
namespace {

TEST(ImageTest, GradientCoversFullRange) {
  const GrayImage img = gradient_image(64, 64);
  EXPECT_EQ(img.at(0, 0), 0);
  EXPECT_EQ(img.at(63, 63), 255);
}

TEST(ImageTest, PlasmaIsDeterministic) {
  EXPECT_EQ(plasma_image(32, 32, 5), plasma_image(32, 32, 5));
  EXPECT_NE(plasma_image(32, 32, 5), plasma_image(32, 32, 6));
}

TEST(ImageTest, NoiseIsDeterministic) {
  EXPECT_EQ(noise_image(16, 16, 1), noise_image(16, 16, 1));
}

TEST(ImageTest, PgmRoundTrip) {
  const std::string path = ::testing::TempDir() + "/lddp_img_test.pgm";
  const GrayImage img = plasma_image(20, 33, 7);
  write_pgm(img, path);
  const GrayImage back = read_pgm(path);
  EXPECT_EQ(back, img);
  std::remove(path.c_str());
}

TEST(ImageTest, ReadsAsciiP2WithComments) {
  const std::string path = ::testing::TempDir() + "/lddp_img_p2.pgm";
  {
    std::ofstream out(path);
    out << "P2\n# a comment line\n3 2\n255\n0 128 255\n10 20 30\n";
  }
  const GrayImage img = read_pgm(path);
  EXPECT_EQ(img.rows(), 2u);
  EXPECT_EQ(img.cols(), 3u);
  EXPECT_EQ(img.at(0, 1), 128);
  EXPECT_EQ(img.at(1, 2), 30);
  std::remove(path.c_str());
}

TEST(ImageTest, RejectsMissingFileAndBadMagic) {
  EXPECT_THROW(read_pgm("/nonexistent/definitely_not_here.pgm"), CheckError);
  const std::string path = ::testing::TempDir() + "/lddp_img_bad.pgm";
  {
    std::ofstream out(path);
    out << "P6\n1 1\n255\nxxx";
  }
  EXPECT_THROW(read_pgm(path), CheckError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lddp::problems
