// CUDA-semantics tests for the simulated device: stream FIFO order,
// cross-stream events, copy/compute overlap, pinned vs pageable pricing,
// and the eager-execution correctness of memcpy/launch.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sim/device.h"
#include "sim/platform.h"

namespace lddp::sim {
namespace {

class DeviceTest : public ::testing::Test {
 protected:
  Timeline tl_;
  Device dev_{GpuSpec::tesla_k20(), tl_};
};

TEST_F(DeviceTest, MemcpyMovesRealBytes) {
  auto buf = dev_.alloc<int>(8);
  std::vector<int> host{1, 2, 3, 4, 5, 6, 7, 8};
  dev_.memcpy_h2d(dev_.default_stream(), buf.device_ptr(), host.data(), 8,
                  MemoryKind::kPageable);
  std::vector<int> back(8, 0);
  dev_.memcpy_d2h(dev_.default_stream(), back.data(), buf.device_ptr(), 8,
                  MemoryKind::kPageable);
  EXPECT_EQ(back, host);
  EXPECT_EQ(dev_.stats().h2d_bytes, 32u);
  EXPECT_EQ(dev_.stats().d2h_bytes, 32u);
  EXPECT_EQ(dev_.stats().h2d_copies, 1u);
  EXPECT_EQ(dev_.stats().d2h_copies, 1u);
}

TEST_F(DeviceTest, LaunchExecutesBodyOverAllCells) {
  auto buf = dev_.alloc<int>(1000);
  int* p = buf.device_ptr();
  dev_.launch(dev_.default_stream(), KernelInfo{}, 1000,
              [p](std::size_t c) { p[c] = static_cast<int>(c) * 3; });
  for (int c = 0; c < 1000; ++c) EXPECT_EQ(p[c], c * 3);
}

TEST_F(DeviceTest, StreamFifoSerializes) {
  const auto s = dev_.default_stream();
  const OpId a = dev_.launch(s, KernelInfo{}, 64, [](std::size_t) {});
  const OpId b = dev_.launch(s, KernelInfo{}, 64, [](std::size_t) {});
  EXPECT_GE(tl_.start_time(b), tl_.end_time(a));
}

TEST_F(DeviceTest, SeparateStreamsOverlapComputeAndCopy) {
  const auto compute = dev_.default_stream();
  const auto copy = dev_.create_stream();
  auto buf = dev_.alloc<int>(1 << 20);
  std::vector<int> host(1 << 20, 7);
  const OpId k = dev_.launch(compute, KernelInfo{}, 1 << 20,
                             [](std::size_t) {});
  const OpId x = dev_.memcpy_h2d(copy, buf.device_ptr(), host.data(),
                                 1 << 20, MemoryKind::kPageable);
  // Copy engine and compute are distinct resources: both start at 0.
  EXPECT_DOUBLE_EQ(tl_.start_time(k), 0.0);
  EXPECT_DOUBLE_EQ(tl_.start_time(x), 0.0);
}

TEST_F(DeviceTest, StreamWaitEventOrdersAcrossStreams) {
  const auto compute = dev_.default_stream();
  const auto copy = dev_.create_stream();
  auto buf = dev_.alloc<int>(256);
  std::vector<int> host(256, 1);
  const OpId x = dev_.memcpy_h2d(copy, buf.device_ptr(), host.data(), 256,
                                 MemoryKind::kPageable);
  dev_.stream_wait(compute, x);
  const OpId k = dev_.launch(compute, KernelInfo{}, 256, [](std::size_t) {});
  EXPECT_GE(tl_.start_time(k), tl_.end_time(x));
  // The wait is consumed: the next op does not wait again.
  const OpId k2 = dev_.launch(compute, KernelInfo{}, 256, [](std::size_t) {});
  EXPECT_GE(tl_.start_time(k2), tl_.end_time(k));
}

TEST_F(DeviceTest, MultipleStreamWaitsAccumulate) {
  const auto compute = dev_.default_stream();
  const auto c1 = dev_.create_stream();
  const auto c2 = dev_.create_stream();
  // Two copies of very different lengths on independent streams.
  const OpId short_copy = dev_.record_h2d(c1, 64, MemoryKind::kPinned);
  const OpId long_copy = dev_.record_h2d(c2, 1 << 22, MemoryKind::kPageable);
  dev_.stream_wait(compute, short_copy);
  dev_.stream_wait(compute, long_copy);  // must not erase the first wait
  const OpId k = dev_.launch(compute, KernelInfo{}, 16, [](std::size_t) {});
  EXPECT_GE(tl_.start_time(k), tl_.end_time(short_copy));
  EXPECT_GE(tl_.start_time(k), tl_.end_time(long_copy));
}

TEST_F(DeviceTest, ExtraDepOrdersOps) {
  const auto s1 = dev_.default_stream();
  const auto s2 = dev_.create_stream();
  const OpId a = dev_.launch(s1, KernelInfo{}, 1 << 20, [](std::size_t) {});
  const OpId b = dev_.launch(s2, KernelInfo{}, 16, [](std::size_t) {}, a);
  EXPECT_GE(tl_.start_time(b), tl_.end_time(a));
}

TEST_F(DeviceTest, TwoCopyEnginesOverlapH2dAndD2h) {
  ASSERT_GE(dev_.spec().copy_engines, 2);
  const auto up = dev_.create_stream();
  const auto down = dev_.create_stream();
  const OpId a = dev_.record_h2d(up, 1 << 20, MemoryKind::kPageable);
  const OpId b = dev_.record_d2h(down, 1 << 20, MemoryKind::kPageable);
  EXPECT_DOUBLE_EQ(tl_.start_time(a), 0.0);
  EXPECT_DOUBLE_EQ(tl_.start_time(b), 0.0);
}

TEST(DeviceSingleEngineTest, SingleCopyEngineSerializesDirections) {
  Timeline tl;
  Device dev(GpuSpec::gt650m(), tl);  // 1 copy engine
  const auto up = dev.create_stream();
  const auto down = dev.create_stream();
  const OpId a = dev.record_h2d(up, 1 << 20, MemoryKind::kPageable);
  const OpId b = dev.record_d2h(down, 1 << 20, MemoryKind::kPageable);
  EXPECT_GE(tl.start_time(b), tl.end_time(a));
}

TEST_F(DeviceTest, RecordTransfersPricePinnedCheaper) {
  const auto s = dev_.create_stream();
  const OpId a = dev_.record_h2d(s, 64, MemoryKind::kPageable);
  const double pageable = tl_.end_time(a) - tl_.start_time(a);
  const OpId b = dev_.record_h2d(s, 64, MemoryKind::kPinned);
  const double pinned = tl_.end_time(b) - tl_.start_time(b);
  EXPECT_LT(pinned, pageable);
}

TEST_F(DeviceTest, BusyAccountingSumsKernelsAndCopies) {
  const auto s = dev_.default_stream();
  dev_.launch(s, KernelInfo{}, 1 << 18, [](std::size_t) {});
  dev_.record_h2d(s, 1 << 18, MemoryKind::kPageable);
  EXPECT_GT(dev_.compute_busy(), 0.0);
  EXPECT_GT(dev_.copy_busy(), 0.0);
  EXPECT_NEAR(dev_.compute_busy() + dev_.copy_busy(), dev_.synchronize(),
              1e-12);  // same stream: no overlap
}

TEST(PlatformTest, CpuFrontExecutesAndCharges) {
  Platform platform(PlatformSpec::hetero_high());
  std::vector<int> v(1000, 0);
  const OpId op = platform.cpu_front(
      1000, cpu::WorkProfile{}, [&](std::size_t i) { v[i] = 1; });
  EXPECT_NE(op, kNoOp);
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 1000);
  EXPECT_GT(platform.elapsed(), 0.0);
  EXPECT_DOUBLE_EQ(platform.cpu_busy(), platform.elapsed());
}

TEST(PlatformTest, CpuChargeRecordsWithoutExecuting) {
  Platform platform(PlatformSpec::hetero_high());
  const OpId op = platform.cpu_charge(1 << 20, cpu::WorkProfile{}, false);
  EXPECT_NE(op, kNoOp);
  EXPECT_GT(platform.elapsed(), 0.0);
}

TEST(PlatformTest, CpuAndGpuShareOneTimeline) {
  Platform platform(PlatformSpec::hetero_low());
  const OpId c = platform.cpu_front(100, cpu::WorkProfile{},
                                    [](std::size_t) {});
  const OpId k = platform.gpu().launch(platform.gpu().default_stream(),
                                       KernelInfo{}, 100, [](std::size_t) {},
                                       c);
  EXPECT_GE(platform.timeline().start_time(k), platform.timeline().end_time(c));
}

}  // namespace
}  // namespace lddp::sim
