#include <gtest/gtest.h>

#include "core/strategies/heuristics.h"

namespace lddp::detail {
namespace {

sim::KernelInfo default_kernel() { return sim::KernelInfo{}; }

TEST(HeuristicsTest, CrossoverIsInteriorForRealisticPlatforms) {
  const auto platform = sim::PlatformSpec::hetero_high();
  const std::size_t fc =
      gpu_crossover_front_cells(platform, default_kernel(), 1 << 20);
  // Launch overhead must make the GPU lose tiny fronts, and its throughput
  // must win huge ones — the crossover is strictly interior.
  EXPECT_GT(fc, 1u);
  EXPECT_LT(fc, 1u << 20);
}

TEST(HeuristicsTest, CrossoverRespectsMaxFront) {
  const auto platform = sim::PlatformSpec::hetero_high();
  const std::size_t full =
      gpu_crossover_front_cells(platform, default_kernel(), 1 << 20);
  const std::size_t capped =
      gpu_crossover_front_cells(platform, default_kernel(), 16);
  EXPECT_LE(capped, 16u);
  EXPECT_LE(capped, full);
}

TEST(HeuristicsTest, WeakerGpuHasLargerCrossover) {
  const std::size_t high = gpu_crossover_front_cells(
      sim::PlatformSpec::hetero_high(), default_kernel(), 1 << 22);
  // Hetero-Low pairs a weaker GPU with a weaker CPU; compare a platform
  // that mixes the strong CPU with the weak GPU to isolate the GPU effect.
  sim::PlatformSpec mixed = sim::PlatformSpec::hetero_high();
  mixed.gpu = sim::GpuSpec::gt650m();
  const std::size_t low =
      gpu_crossover_front_cells(mixed, default_kernel(), 1 << 22);
  EXPECT_GT(low, high);
}

TEST(HeuristicsTest, BalancedShareWithinRange) {
  const auto platform = sim::PlatformSpec::hetero_high();
  for (std::size_t f : {64u, 4096u, 1u << 20}) {
    const long long s = balanced_t_share(platform, default_kernel(), f);
    EXPECT_GE(s, 0);
    EXPECT_LE(s, static_cast<long long>(f));
  }
}

TEST(HeuristicsTest, ResolveFillsNegativeFields) {
  const auto platform = sim::PlatformSpec::hetero_high();
  const HeteroParams out = resolve_hetero_params(
      HeteroParams{-1, -1}, Pattern::kAntiDiagonal, 4096, 4096, platform,
      default_kernel());
  EXPECT_GE(out.t_switch, 0);
  EXPECT_GE(out.t_share, 0);
  EXPECT_LE(out.t_switch, 4096 + 4096 - 1);
  EXPECT_LE(out.t_share, 4096);
}

TEST(HeuristicsTest, ResolveClampsUserValues) {
  const auto platform = sim::PlatformSpec::hetero_high();
  const HeteroParams out = resolve_hetero_params(
      HeteroParams{1000000, 1000000}, Pattern::kAntiDiagonal, 100, 100,
      platform, default_kernel());
  EXPECT_LE(out.t_switch, (100 + 100 - 1) / 2);
  EXPECT_LE(out.t_share, 100);
}

TEST(HeuristicsTest, ResolveKeepsValidUserValues) {
  const auto platform = sim::PlatformSpec::hetero_high();
  const HeteroParams out =
      resolve_hetero_params(HeteroParams{7, 13}, Pattern::kKnightMove, 512,
                            512, platform, default_kernel());
  EXPECT_EQ(out.t_switch, 7);
  EXPECT_EQ(out.t_share, 13);
}

TEST(HeuristicsTest, HorizontalHasNoSwitchPhase) {
  const auto platform = sim::PlatformSpec::hetero_high();
  const HeteroParams out = resolve_hetero_params(
      HeteroParams{-1, -1}, Pattern::kHorizontal, 2048, 2048, platform,
      default_kernel());
  EXPECT_EQ(out.t_switch, 0);
}

TEST(HeuristicsTest, ParamRangesPerPattern) {
  long long sw = 0, sh = 0;
  hetero_param_ranges(Pattern::kAntiDiagonal, 100, 60, &sw, &sh);
  EXPECT_EQ(sw, (100 + 60 - 1) / 2);
  EXPECT_EQ(sh, 100);
  hetero_param_ranges(Pattern::kHorizontal, 100, 60, &sw, &sh);
  EXPECT_EQ(sw, 100);
  EXPECT_EQ(sh, 60);
  hetero_param_ranges(Pattern::kKnightMove, 100, 60, &sw, &sh);
  EXPECT_EQ(sw, (2 * 99 + 60) / 2);
  EXPECT_EQ(sh, 60);
  hetero_param_ranges(Pattern::kInvertedL, 100, 60, &sw, &sh);
  EXPECT_EQ(sw, 60);
  EXPECT_EQ(sh, 60);
  hetero_param_ranges(Pattern::kVertical, 100, 60, &sw, &sh);
  EXPECT_EQ(sw, 60);
  EXPECT_EQ(sh, 100);
}

}  // namespace
}  // namespace lddp::detail
