#include <gtest/gtest.h>

#include "sim/timeline.h"

namespace lddp::sim {
namespace {

TEST(TimelineTest, SequentialOpsOnOneResource) {
  Timeline tl;
  const auto r = tl.add_resource("cpu");
  const OpId a = tl.record(r, 1.0);
  const OpId b = tl.record(r, 2.0);
  EXPECT_DOUBLE_EQ(tl.start_time(a), 0.0);
  EXPECT_DOUBLE_EQ(tl.end_time(a), 1.0);
  EXPECT_DOUBLE_EQ(tl.start_time(b), 1.0);  // resource is busy until then
  EXPECT_DOUBLE_EQ(tl.end_time(b), 3.0);
  EXPECT_DOUBLE_EQ(tl.makespan(), 3.0);
}

TEST(TimelineTest, IndependentResourcesOverlap) {
  Timeline tl;
  const auto cpu = tl.add_resource("cpu");
  const auto gpu = tl.add_resource("gpu");
  tl.record(cpu, 2.0);
  tl.record(gpu, 3.0);
  EXPECT_DOUBLE_EQ(tl.makespan(), 3.0);  // not 5.0: they overlap
}

TEST(TimelineTest, DependencyDelaysStart) {
  Timeline tl;
  const auto cpu = tl.add_resource("cpu");
  const auto gpu = tl.add_resource("gpu");
  const OpId produce = tl.record(cpu, 2.0);
  const OpId consume = tl.record(gpu, 1.0, produce);
  EXPECT_DOUBLE_EQ(tl.start_time(consume), 2.0);
  EXPECT_DOUBLE_EQ(tl.makespan(), 3.0);
}

TEST(TimelineTest, MaxOfResourceAndDeps) {
  Timeline tl;
  const auto cpu = tl.add_resource("cpu");
  const auto gpu = tl.add_resource("gpu");
  tl.record(gpu, 5.0);                       // keeps gpu busy to t=5
  const OpId p = tl.record(cpu, 1.0);        // ends at 1
  const OpId c = tl.record(gpu, 1.0, p);     // dep ready at 1, gpu free at 5
  EXPECT_DOUBLE_EQ(tl.start_time(c), 5.0);
  EXPECT_DOUBLE_EQ(tl.end_time(c), 6.0);
}

TEST(TimelineTest, TwoDependencies) {
  Timeline tl;
  const auto a = tl.add_resource("a");
  const auto b = tl.add_resource("b");
  const auto c = tl.add_resource("c");
  const OpId x = tl.record(a, 4.0);
  const OpId y = tl.record(b, 2.0);
  const OpId z = tl.record(c, 1.0, x, y);
  EXPECT_DOUBLE_EQ(tl.start_time(z), 4.0);
}

TEST(TimelineTest, NoOpDependencyIgnored) {
  Timeline tl;
  const auto r = tl.add_resource("r");
  const OpId a = tl.record(r, 1.0, kNoOp, kNoOp);
  EXPECT_DOUBLE_EQ(tl.start_time(a), 0.0);
}

TEST(TimelineTest, BusyTimeAccumulates) {
  Timeline tl;
  const auto r = tl.add_resource("r");
  tl.record(r, 1.5);
  tl.record(r, 2.5);
  EXPECT_DOUBLE_EQ(tl.busy_time(r), 4.0);
}

TEST(TimelineTest, PipelineOverlapsLikeCudaStreams) {
  // CPU produces rows; copies overlap next row's production; GPU consumes.
  Timeline tl;
  const auto cpu = tl.add_resource("cpu");
  const auto copy = tl.add_resource("copy");
  const auto gpu = tl.add_resource("gpu");
  OpId prev_copy = kNoOp;
  double cpu_total = 0;
  constexpr int kRows = 10;
  for (int i = 0; i < kRows; ++i) {
    const OpId c = tl.record(cpu, 1.0);
    cpu_total += 1.0;
    const OpId x = tl.record(copy, 0.1, c);
    if (prev_copy != kNoOp) tl.record(gpu, 0.5, prev_copy);
    prev_copy = x;
  }
  tl.record(gpu, 0.5, prev_copy);
  // Steady state is CPU-bound: makespan ~ cpu_total + pipeline drain.
  EXPECT_GE(tl.makespan(), cpu_total);
  EXPECT_LE(tl.makespan(), cpu_total + 0.1 + 0.5 + 1e-9);
}

TEST(TimelineTest, ResetKeepsResources) {
  Timeline tl;
  const auto r = tl.add_resource("r");
  tl.record(r, 3.0);
  tl.reset();
  EXPECT_DOUBLE_EQ(tl.makespan(), 0.0);
  EXPECT_DOUBLE_EQ(tl.busy_time(r), 0.0);
  EXPECT_EQ(tl.op_count(), 0u);
  const OpId a = tl.record(r, 1.0);
  EXPECT_DOUBLE_EQ(tl.start_time(a), 0.0);
}

TEST(TimelineTest, InvalidInputsThrow) {
  Timeline tl;
  const auto r = tl.add_resource("r");
  EXPECT_THROW(tl.record(99, 1.0), CheckError);
  EXPECT_THROW(tl.record(r, -1.0), CheckError);
  const OpId ok = tl.record(r, 1.0);
  EXPECT_THROW(tl.record(r, 1.0, static_cast<OpId>(ok + 57)), CheckError);
  EXPECT_THROW(tl.start_time(1234), CheckError);
}

TEST(TimelineTest, ResourceNames) {
  Timeline tl;
  const auto r = tl.add_resource("gpu.compute");
  EXPECT_EQ(tl.resource_name(r), "gpu.compute");
  EXPECT_EQ(tl.resource_count(), 1u);
}

}  // namespace
}  // namespace lddp::sim
