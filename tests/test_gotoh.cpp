#include <gtest/gtest.h>

#include "core/framework.h"
#include "problems/alignment.h"
#include "problems/gotoh.h"

namespace lddp::problems {
namespace {

TEST(GotohTest, IdenticalSequences) {
  EXPECT_EQ(gotoh_reference("ACGT", "ACGT"), 8);  // 4 matches
}

TEST(GotohTest, SingleLongGapBeatsScatteredGaps) {
  // Affine costs prefer one contiguous gap: deleting "XYZ" as one gap
  // costs open + 2*extend = -6, versus three separate gaps at -12.
  const AffineScores s;
  const std::int32_t with_gap = gotoh_reference("ABCXYZDEF", "ABCDEF", s);
  EXPECT_EQ(with_gap, 6 * s.match + s.gap_open + 2 * s.gap_extend);
}

TEST(GotohTest, EmptyAgainstNonEmpty) {
  const AffineScores s;
  EXPECT_EQ(gotoh_reference("", "AAAA", s), s.gap_open + 3 * s.gap_extend);
  EXPECT_EQ(gotoh_reference("AAAA", "", s), s.gap_open + 3 * s.gap_extend);
}

TEST(GotohTest, ReducesToLinearGapWhenOpenEqualsExtend) {
  // With gap_open == gap_extend, affine scoring equals NW linear scoring.
  AffineScores affine;
  affine.gap_open = affine.gap_extend = -2;
  AlignmentScores linear;  // gap = -2 by default
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const std::string a = random_sequence(40 + 5 * seed, seed * 2 + 1);
    const std::string b = random_sequence(50 + 3 * seed, seed * 2 + 2);
    NeedlemanWunschProblem nw(a, b, linear);
    RunConfig cfg;
    cfg.mode = Mode::kCpuSerial;
    const auto nw_table = solve(nw, cfg).table;
    EXPECT_EQ(gotoh_reference(a, b, affine),
              nw_table.at(a.size(), b.size()))
        << "seed " << seed;
  }
}

TEST(GotohTest, FrameworkMatchesReferenceAllModes) {
  const std::string a = random_sequence(120, 81);
  const std::string b = random_sequence(140, 82);
  GotohProblem p(a, b);
  EXPECT_EQ(classify(p.deps()), Pattern::kAntiDiagonal);
  const std::int32_t expected = gotoh_reference(a, b);
  for (Mode mode : {Mode::kCpuSerial, Mode::kCpuParallel, Mode::kCpuTiled,
                    Mode::kGpu, Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    EXPECT_EQ(gotoh_score(solve(p, cfg).table), expected) << to_string(mode);
  }
}

TEST(GotohTest, FullTableAgreesAcrossModes) {
  GotohProblem p(random_sequence(70, 83), random_sequence(90, 84));
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);
  for (Mode mode : {Mode::kCpuParallel, Mode::kGpu, Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    const auto r = solve(p, cfg);
    for (std::size_t i = 0; i < p.rows(); ++i)
      for (std::size_t j = 0; j < p.cols(); ++j)
        ASSERT_EQ(r.table.at(i, j), ref.table.at(i, j))
            << to_string(mode) << " @" << i << "," << j;
  }
}

TEST(GotohTest, TracebackReconstructsConsistentAlignment) {
  const std::string a = random_sequence(50, 91);
  const std::string b = random_sequence(60, 92);
  GotohProblem p(a, b);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  const auto table = solve(p, cfg).table;
  const GotohAlignment al = gotoh_traceback(p, table);
  ASSERT_EQ(al.a.size(), al.b.size());
  // Strip gaps -> the inputs; rescore with affine accounting -> the score.
  std::string sa, sb;
  std::int32_t score = 0;
  char prev = 'M';
  for (std::size_t k = 0; k < al.a.size(); ++k) {
    ASSERT_FALSE(al.a[k] == '-' && al.b[k] == '-');
    if (al.a[k] == '-') {
      score += prev == 'X' ? p.scores().gap_extend : p.scores().gap_open;
      prev = 'X';
      sb += al.b[k];
    } else if (al.b[k] == '-') {
      score += prev == 'Y' ? p.scores().gap_extend : p.scores().gap_open;
      prev = 'Y';
      sa += al.a[k];
    } else {
      score += al.a[k] == al.b[k] ? p.scores().match : p.scores().mismatch;
      prev = 'M';
      sa += al.a[k];
      sb += al.b[k];
    }
  }
  EXPECT_EQ(sa, a);
  EXPECT_EQ(sb, b);
  EXPECT_EQ(score, gotoh_score(table));
  EXPECT_EQ(al.score, gotoh_score(table));
}

TEST(GotohTest, TracebackPrefersOneLongGap) {
  GotohProblem p("ABCXYZDEF", "ABCDEF");
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto al = gotoh_traceback(p, solve(p, cfg).table);
  EXPECT_EQ(al.b.find("---"), 3u);  // one contiguous 3-gap, not scattered
}

TEST(GotohTest, ScoreBoundedByAllMatches) {
  const AffineScores s;
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    const std::string a = random_sequence(30, seed);
    const std::string b = random_sequence(45, seed + 100);
    EXPECT_LE(gotoh_reference(a, b, s),
              static_cast<std::int32_t>(std::min(a.size(), b.size())) *
                  s.match);
  }
}

}  // namespace
}  // namespace lddp::problems
