// Exhaustive verification of Table I (contributing set -> pattern), the
// symmetry reduction, and Table II (pattern -> transfer need).
#include <gtest/gtest.h>

#include "core/pattern.h"

namespace lddp {
namespace {

struct TableRow {
  bool w, nw, n, ne;
  Pattern pattern;
};

// The paper's Table I, row for row (columns: W=cell(i,j-1),
// NW=cell(i-1,j-1), N=cell(i-1,j), NE=cell(i-1,j+1)).
constexpr TableRow kTableI[] = {
    {false, false, false, true, Pattern::kMirroredInvertedL},
    {false, false, true, false, Pattern::kHorizontal},
    {false, false, true, true, Pattern::kHorizontal},
    {false, true, false, false, Pattern::kInvertedL},
    {false, true, false, true, Pattern::kHorizontal},
    {false, true, true, false, Pattern::kHorizontal},
    {false, true, true, true, Pattern::kHorizontal},
    {true, false, false, false, Pattern::kVertical},
    {true, false, false, true, Pattern::kKnightMove},
    {true, false, true, false, Pattern::kAntiDiagonal},
    {true, false, true, true, Pattern::kKnightMove},
    {true, true, false, false, Pattern::kVertical},
    {true, true, false, true, Pattern::kKnightMove},
    {true, true, true, false, Pattern::kAntiDiagonal},
    {true, true, true, true, Pattern::kKnightMove},
};

ContributingSet make_set(const TableRow& r) {
  std::uint8_t mask = 0;
  if (r.w) mask |= static_cast<std::uint8_t>(Dep::kW);
  if (r.nw) mask |= static_cast<std::uint8_t>(Dep::kNW);
  if (r.n) mask |= static_cast<std::uint8_t>(Dep::kN);
  if (r.ne) mask |= static_cast<std::uint8_t>(Dep::kNE);
  return ContributingSet(mask);
}

TEST(PatternTest, TableIAllFifteenRows) {
  ASSERT_EQ(std::size(kTableI), 15u);
  for (const TableRow& row : kTableI) {
    const ContributingSet cs = make_set(row);
    EXPECT_EQ(classify(cs), row.pattern)
        << "contributing set " << cs.to_string();
  }
}

TEST(PatternTest, ClassificationCoversAllMasks) {
  // Every valid mask classifies without throwing and appears in Table I.
  for (int idx = 0; idx < kNumContributingSets; ++idx) {
    const ContributingSet cs = contributing_set_by_index(idx);
    const Pattern p = classify(cs);
    bool found = false;
    for (const TableRow& row : kTableI)
      if (make_set(row) == cs && row.pattern == p) found = true;
    EXPECT_TRUE(found) << cs.to_string();
  }
}

TEST(PatternTest, SymmetryReduction) {
  EXPECT_EQ(canonical(Pattern::kVertical), Pattern::kHorizontal);
  EXPECT_EQ(canonical(Pattern::kMirroredInvertedL), Pattern::kInvertedL);
  EXPECT_EQ(canonical(Pattern::kAntiDiagonal), Pattern::kAntiDiagonal);
  EXPECT_EQ(canonical(Pattern::kHorizontal), Pattern::kHorizontal);
  EXPECT_EQ(canonical(Pattern::kInvertedL), Pattern::kInvertedL);
  EXPECT_EQ(canonical(Pattern::kKnightMove), Pattern::kKnightMove);

  EXPECT_TRUE(is_symmetric_alias(Pattern::kVertical));
  EXPECT_TRUE(is_symmetric_alias(Pattern::kMirroredInvertedL));
  EXPECT_FALSE(is_symmetric_alias(Pattern::kAntiDiagonal));
  EXPECT_FALSE(is_symmetric_alias(Pattern::kHorizontal));

  // Exactly four canonical patterns remain across all 15 sets.
  int seen_mask = 0;
  for (int idx = 0; idx < kNumContributingSets; ++idx) {
    const Pattern canon = canonical(classify(contributing_set_by_index(idx)));
    EXPECT_FALSE(is_symmetric_alias(canon));
    seen_mask |= 1 << static_cast<int>(canon);
  }
  const int expected = (1 << static_cast<int>(Pattern::kAntiDiagonal)) |
                       (1 << static_cast<int>(Pattern::kHorizontal)) |
                       (1 << static_cast<int>(Pattern::kInvertedL)) |
                       (1 << static_cast<int>(Pattern::kKnightMove));
  EXPECT_EQ(seen_mask, expected);
}

TEST(PatternTest, TableIITransferNeeds) {
  // Anti-diagonal rows of Table II: 1-way.
  EXPECT_EQ(transfer_need(ContributingSet{Dep::kW, Dep::kN}),
            TransferNeed::kOneWay);
  EXPECT_EQ(transfer_need(ContributingSet{Dep::kW, Dep::kNW, Dep::kN}),
            TransferNeed::kOneWay);
  // Horizontal case-1: 1-way; the lone {N} set needs none at all.
  EXPECT_EQ(transfer_need(ContributingSet{Dep::kN}), TransferNeed::kNone);
  EXPECT_EQ(transfer_need(ContributingSet{Dep::kNW, Dep::kN}),
            TransferNeed::kOneWay);
  EXPECT_EQ(transfer_need(ContributingSet{Dep::kN, Dep::kNE}),
            TransferNeed::kOneWay);
  // Horizontal case-2: 2-way.
  EXPECT_EQ(transfer_need(ContributingSet{Dep::kNW, Dep::kN, Dep::kNE}),
            TransferNeed::kTwoWay);
  EXPECT_EQ(transfer_need(ContributingSet{Dep::kNW, Dep::kNE}),
            TransferNeed::kTwoWay);
  // Inverted-L (and mirror): 1-way.
  EXPECT_EQ(transfer_need(ContributingSet{Dep::kNW}), TransferNeed::kOneWay);
  EXPECT_EQ(transfer_need(ContributingSet{Dep::kNE}), TransferNeed::kOneWay);
  // Knight-move: 2-way, all four variants.
  EXPECT_EQ(transfer_need(ContributingSet{Dep::kW, Dep::kNE}),
            TransferNeed::kTwoWay);
  EXPECT_EQ(transfer_need(ContributingSet{Dep::kW, Dep::kN, Dep::kNE}),
            TransferNeed::kTwoWay);
  EXPECT_EQ(transfer_need(ContributingSet{Dep::kW, Dep::kNW, Dep::kNE}),
            TransferNeed::kTwoWay);
  EXPECT_EQ(
      transfer_need(ContributingSet{Dep::kW, Dep::kNW, Dep::kN, Dep::kNE}),
      TransferNeed::kTwoWay);
  // Vertical: {W} decouples entirely, {W, NW} is 1-way.
  EXPECT_EQ(transfer_need(ContributingSet{Dep::kW}), TransferNeed::kNone);
  EXPECT_EQ(transfer_need(ContributingSet{Dep::kW, Dep::kNW}),
            TransferNeed::kOneWay);
}

TEST(PatternTest, HorizontalCase2Detection) {
  EXPECT_TRUE(is_horizontal_case2(ContributingSet{Dep::kNW, Dep::kN, Dep::kNE}));
  EXPECT_TRUE(is_horizontal_case2(ContributingSet{Dep::kNW, Dep::kNE}));
  EXPECT_FALSE(is_horizontal_case2(ContributingSet{Dep::kNW, Dep::kN}));
  EXPECT_FALSE(is_horizontal_case2(ContributingSet{Dep::kN, Dep::kNE}));
  EXPECT_FALSE(is_horizontal_case2(ContributingSet{Dep::kN}));
}

TEST(PatternTest, ToStringIsStable) {
  EXPECT_EQ(to_string(Pattern::kAntiDiagonal), "Anti-diagonal");
  EXPECT_EQ(to_string(Pattern::kMirroredInvertedL), "mInverted-L");
  EXPECT_EQ(to_string(TransferNeed::kOneWay), "1 way");
  EXPECT_EQ(to_string(TransferNeed::kTwoWay), "2 way");
  EXPECT_EQ(to_string(TransferNeed::kNone), "none");
}

}  // namespace
}  // namespace lddp
