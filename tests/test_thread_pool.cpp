#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "cpu/thread_pool.h"

namespace lddp::cpu {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> hits(100, 0);
  pool.parallel_for(0, 100, [&](std::size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, NonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 145);  // 10 + ... + 19
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool touched = false;
  pool.parallel_for(5, 5, [&](std::size_t) { touched = true; });
  pool.parallel_for(7, 3, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, ChunkedCoversRangeWithoutOverlap) {
  ThreadPool pool(5);
  constexpr std::size_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for_chunked(0, kN, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LT(lo, hi);
    for (std::size_t i = lo; i < hi; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyRegions) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(0, 100, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 20000);
}

TEST(ThreadPoolTest, WorkerExceptionPropagatesToMaster) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000,
                        [](std::size_t i) {
                          if (i == 777) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool remains usable after an exception.
  std::atomic<int> n{0};
  pool.parallel_for(0, 10, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPoolTest, ZeroThreadsRejected) {
  EXPECT_THROW(ThreadPool(std::size_t{0}), CheckError);
}

TEST(ThreadPoolTest, MoreThreadsThanWork) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(0, 3, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace lddp::cpu
