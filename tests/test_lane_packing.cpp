// Inter-solve SIMD lane packing: cohorts of same-class batched solves run
// in vector lockstep, one lane per solve. These tests pin the contract —
// lane-packed tables are bit-identical to solo serial solves across every
// contributing set, ragged and degenerate shapes, cohort sizes, and ISA
// dispatch tiers — and check cohort formation, eligibility gating, and the
// BatchReport lane counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/batch_engine.h"
#include "core/framework.h"
#include "core/lane_kernels.h"
#include "core/pattern.h"
#include "problems/checkerboard.h"
#include "problems/lcs.h"
#include "problems/levenshtein.h"
#include "problems/max_square.h"
#include "problems/seam_carving.h"
#include "problems/synthetic.h"
#include "util/rng.h"

namespace lddp {
namespace {

std::string rand_str(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::string s(n, 'a');
  for (auto& c : s) c = static_cast<char>('a' + rng.uniform_int(0, 3));
  return s;
}

BatchConfig lane_config(long long lane_pack = -1, std::size_t workers = 0) {
  BatchConfig bc;
  bc.worker_threads = workers;
  bc.concurrency = 8;
  bc.queue_capacity = 64;
  bc.lane_pack = lane_pack;
  return bc;
}

/// Submits every problem as a serial-CPU request, drains the batch, and
/// checks each table against the solo solver bit for bit. Returns the
/// report for counter assertions.
template <typename P>
BatchReport expect_lane_identical(const std::vector<P>& probs,
                                  long long lane_pack = -1,
                                  std::size_t workers = 0) {
  BatchEngine engine(lane_config(lane_pack, workers));
  std::vector<std::future<SolveResult<P>>> futs;
  for (const P& p : probs) {
    RunConfig rc;
    rc.mode = Mode::kCpuSerial;
    auto f = engine.submit(P(p), rc);
    EXPECT_TRUE(f.has_value());
    futs.push_back(std::move(*f));
  }
  const BatchReport rep = engine.wait();
  for (std::size_t k = 0; k < probs.size(); ++k) {
    RunConfig rc;
    rc.mode = Mode::kCpuSerial;
    const auto want = solve(probs[k], rc);
    EXPECT_EQ(futs[k].get().table, want.table)
        << "lane " << k << " of " << probs.size() << " diverged";
  }
  return rep;
}

// Every contributing set, cohort sizes 2/3/4/8, ragged shapes. Function
// problems carry no LaneTraits, so cohorts form in the engine but execute
// on the per-lane fallback — this pins the grouping/retire machinery
// independently of the vector kernels.
TEST(LanePacking, AllContributingSetsAllCohortSizes) {
  for (int set = 0; set < kNumContributingSets; ++set) {
    const ContributingSet deps = contributing_set_by_index(set);
    // Single call site so every cohort member shares one problem type (the
    // engine keys cohorts on the concrete type plus deps/shape/mode).
    const auto make = [deps](std::size_t rows, std::size_t cols) {
      return problems::make_function_problem(
          rows, cols, deps, std::int64_t{0},
          [deps](std::size_t i, std::size_t j,
                 const Neighbors<std::int64_t>& nb) {
            std::int64_t r = static_cast<std::int64_t>(i * 31 + j);
            if (deps.has_w()) r ^= nb.w;
            if (deps.has_nw()) r += nb.nw + 1;
            if (deps.has_n()) r ^= nb.n << 1;
            if (deps.has_ne()) r -= nb.ne;
            return r;
          });
    };
    for (std::size_t cohort : {2u, 3u, 4u, 8u}) {
      std::vector<decltype(make(1, 1))> probs;
      for (std::size_t k = 0; k < cohort; ++k)
        probs.push_back(make(18 + 3 * k, 27 - 2 * k));
      const BatchReport rep = expect_lane_identical(probs);
      EXPECT_EQ(rep.lane_eligible_solves, cohort)
          << "set " << set << " cohort " << cohort;
    }
  }
}

// The vector-kernel problem families, ragged cohorts: same shape bucket,
// distinct sides, so shorter lanes retire early and per-lane remainders
// finish rows and trailing columns.
TEST(LanePacking, KernelFamiliesRaggedBitIdentical) {
  {
    std::vector<problems::LevenshteinProblem> v;
    for (std::size_t k = 0; k < 8; ++k)
      v.emplace_back(rand_str(60 + 5 * k, 2 * k + 1),
                     rand_str(90 - 4 * k, 2 * k + 2));
    expect_lane_identical(v);
  }
  {
    std::vector<problems::LcsProblem> v;
    for (std::size_t k = 0; k < 8; ++k)
      v.emplace_back(rand_str(45 + k, 30 + k), rand_str(70 - 3 * k, 40 + k));
    expect_lane_identical(v);
  }
  {
    std::vector<problems::CheckerboardProblem> v;
    v.emplace_back(problems::random_cost_board(24, 31, 1));
    v.emplace_back(problems::random_cost_board(31, 24, 2));
    v.emplace_back(problems::random_cost_board(27, 27, 3));
    expect_lane_identical(v);
  }
  {
    std::vector<problems::SeamCarveProblem> v;
    v.emplace_back(problems::random_input_grid(20, 26, 4, 0, 255));
    v.emplace_back(problems::random_input_grid(26, 20, 5, 0, 255));
    v.emplace_back(problems::random_input_grid(23, 23, 6, 0, 255));
    v.emplace_back(problems::random_input_grid(21, 25, 7, 0, 255));
    expect_lane_identical(v);
  }
  {
    std::vector<problems::MaxSquareProblem> v;
    for (std::size_t k = 0; k < 8; ++k)
      v.emplace_back(problems::random_bit_grid(25 + k, 35 - k, 10 + k));
    expect_lane_identical(v);
  }
  {
    std::vector<problems::MinNwNProblem> v;
    v.emplace_back(29, 35, 3);
    v.emplace_back(35, 29, 5);
    v.emplace_back(31, 31, 7);
    expect_lane_identical(v);
  }
  {
    std::vector<problems::MaxNwProblem> v;
    v.emplace_back(problems::random_input_grid(22, 24, 8), 2);
    v.emplace_back(problems::random_input_grid(24, 22, 9), 4);
    expect_lane_identical(v);
  }
}

// Larger ragged cohort in one shape bucket (rows/cols in [257, 511]):
// lanes retire across many rows, and the lockstep region is bounded by the
// smallest table while the longest keeps running per-lane.
TEST(LanePacking, EarlyRetiringLanesSameBucket) {
  std::vector<problems::LevenshteinProblem> v;
  for (std::size_t k = 0; k < 8; ++k)
    v.emplace_back(rand_str(257 + 28 * k, 70 + k),
                   rand_str(480 - 25 * k, 80 + k));
  expect_lane_identical(v);
}

// Degenerate shapes (single-row, single-column, 2x2 tables) fail the
// lockstep minimums and must fall back per-lane, still bit-identical.
TEST(LanePacking, DegenerateShapesFallBack) {
  {
    std::vector<problems::LevenshteinProblem> v;
    v.emplace_back(rand_str(1, 1), rand_str(40, 2));
    v.emplace_back(rand_str(40, 3), rand_str(1, 4));
    v.emplace_back(rand_str(1, 5), rand_str(1, 6));
    expect_lane_identical(v);
  }
  {
    std::vector<problems::LcsProblem> v;
    v.emplace_back(rand_str(1, 7), rand_str(30, 8));
    v.emplace_back(rand_str(30, 9), rand_str(1, 10));
    expect_lane_identical(v);
  }
}

// Forcing the baseline tier must drop dispatch off the AVX2 table and
// still produce identical results.
TEST(LanePacking, ForcedBaselineDispatch) {
  lanes::force_baseline_kernels(true);
  EXPECT_STRNE(lanes::active_isa(), "avx2");
  std::vector<problems::LevenshteinProblem> v;
  for (std::size_t k = 0; k < 8; ++k)
    v.emplace_back(rand_str(50 + k, 100 + k), rand_str(64 - k, 200 + k));
  expect_lane_identical(v);
  lanes::force_baseline_kernels(false);
  EXPECT_GE(lanes::preferred_lane_width(), 4u);
}

// lane_pack = 0 disables the path entirely: nothing is even eligible.
TEST(LanePacking, LanePackOffDisablesEligibility) {
  std::vector<problems::LevenshteinProblem> v;
  for (std::size_t k = 0; k < 4; ++k)
    v.emplace_back(rand_str(40 + k, k), rand_str(40 + k, k + 50));
  const BatchReport rep = expect_lane_identical(v, /*lane_pack=*/0);
  EXPECT_EQ(rep.lane_eligible_solves, 0u);
  EXPECT_EQ(rep.lane_packed_solves, 0u);
  EXPECT_EQ(rep.lane_cohorts, 0u);
}

// lane_pack = N caps cohort width: 10 identical-class jobs drained inline
// with a cap of 3 form cohorts 3+3+3+1 deterministically.
TEST(LanePacking, CohortCapAndReportCounters) {
  std::vector<problems::LevenshteinProblem> v;
  for (std::size_t k = 0; k < 10; ++k)
    v.emplace_back(rand_str(100 + k, 2 * k), rand_str(120 - k, 2 * k + 1));
  const BatchReport rep = expect_lane_identical(v, /*lane_pack=*/3);
  EXPECT_EQ(rep.lane_eligible_solves, 10u);
  EXPECT_EQ(rep.lane_packed_solves, 9u);
  EXPECT_EQ(rep.lane_cohorts, 3u);
  EXPECT_NEAR(rep.lane_hit_rate, 0.9, 1e-12);
  EXPECT_GT(rep.lane_occupancy, 0.0);
  EXPECT_LE(rep.lane_occupancy, 1.0);
}

// Large tables and non-CPU modes are not lane-eligible.
TEST(LanePacking, EligibilityRespectsModeAndCells) {
  {
    // 1501x1501 > the lane cell ceiling.
    std::vector<problems::LevenshteinProblem> v;
    v.emplace_back(rand_str(1500, 1), rand_str(1500, 2));
    v.emplace_back(rand_str(1500, 3), rand_str(1500, 4));
    const BatchReport rep = expect_lane_identical(v);
    EXPECT_EQ(rep.lane_eligible_solves, 0u);
  }
  {
    BatchEngine engine(lane_config());
    RunConfig rc;
    rc.mode = Mode::kGpu;
    auto f = engine.submit(
        problems::LevenshteinProblem(rand_str(64, 1), rand_str(64, 2)), rc);
    ASSERT_TRUE(f.has_value());
    const BatchReport rep = engine.wait();
    f->get();
    EXPECT_EQ(rep.lane_eligible_solves, 0u);
  }
}

// Worker threads racing over the queue (the TSan target): cohorts form
// nondeterministically but results and recorded sim times must not change
// — the lane path prices every eligible solve as the same serial scan
// regardless of cohort size, so the makespan matches the lane-off run.
TEST(LanePacking, ConcurrentWorkersDeterministicTimeline) {
  std::vector<problems::LevenshteinProblem> v;
  for (std::size_t k = 0; k < 12; ++k)
    v.emplace_back(rand_str(80 + k, 3 * k), rand_str(96 - k, 3 * k + 1));
  const BatchReport packed =
      expect_lane_identical(v, /*lane_pack=*/-1, /*workers=*/2);
  const BatchReport off =
      expect_lane_identical(v, /*lane_pack=*/0, /*workers=*/0);
  EXPECT_LE(packed.lane_packed_solves, packed.lane_eligible_solves);
  EXPECT_GE(packed.lane_hit_rate, 0.0);
  EXPECT_LE(packed.lane_hit_rate, 1.0);
  EXPECT_NEAR(packed.sim_makespan, off.sim_makespan,
              1e-12 + off.sim_makespan * 1e-9);
}

}  // namespace
}  // namespace lddp
