#include <gtest/gtest.h>

#include "core/framework.h"
#include "problems/synthetic.h"

namespace lddp::problems {
namespace {

TEST(SyntheticTest, MaxNwClassifiesInvertedL) {
  MaxNwProblem p(random_input_grid(8, 8, 1), 5);
  EXPECT_EQ(classify(p.deps()), Pattern::kInvertedL);
}

TEST(SyntheticTest, MinNwNClassifiesHorizontalCase1) {
  MinNwNProblem p(8, 8, 3);
  EXPECT_EQ(classify(p.deps()), Pattern::kHorizontal);
  EXPECT_FALSE(is_horizontal_case2(p.deps()));
  EXPECT_EQ(transfer_need(p.deps()), TransferNeed::kOneWay);
}

TEST(SyntheticTest, MaxNwAllModesAgree) {
  MaxNwProblem p(random_input_grid(70, 90, 2), 7);
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);
  for (Mode mode : {Mode::kCpuParallel, Mode::kGpu, Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    EXPECT_EQ(solve(p, cfg).table, ref.table) << to_string(mode);
  }
}

TEST(SyntheticTest, MinNwNAllModesAgree) {
  MinNwNProblem p(80, 100, 2);
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);
  for (Mode mode : {Mode::kCpuParallel, Mode::kGpu, Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    EXPECT_EQ(solve(p, cfg).table, ref.table) << to_string(mode);
  }
}

TEST(SyntheticTest, MaxNwDiagonalMonotone) {
  // Along any diagonal, values are non-decreasing: each cell takes the max
  // of its input and the previous diagonal value, plus positive c.
  MaxNwProblem p(random_input_grid(30, 30, 3), 1);
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto r = solve(p, cfg);
  for (std::size_t i = 1; i < 30; ++i)
    for (std::size_t j = 1; j < 30; ++j)
      EXPECT_GE(r.table.at(i, j), r.table.at(i - 1, j - 1));
}

TEST(SyntheticTest, FunctionProblemSatisfiesConcept) {
  const auto p = make_function_problem<int>(
      3, 3, ContributingSet{Dep::kN}, 0,
      [](std::size_t, std::size_t, const Neighbors<int>& nb) {
        return nb.n + 1;
      });
  static_assert(LddpProblem<decltype(p)>);
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto r = solve(p, cfg);
  EXPECT_EQ(r.table.at(2, 1), 3);  // three rows of +1 over boundary 0
}

TEST(SyntheticTest, RandomInputGridRespectsBounds) {
  const auto g = random_input_grid(20, 20, 4, -5, 5);
  for (std::size_t i = 0; i < 20; ++i)
    for (std::size_t j = 0; j < 20; ++j) {
      EXPECT_GE(g.at(i, j), -5);
      EXPECT_LE(g.at(i, j), 5);
    }
}

}  // namespace
}  // namespace lddp::problems
