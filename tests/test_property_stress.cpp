// Randomized end-to-end stress: random shapes, contributing sets, modes,
// platforms and split parameters, always compared against the serial scan.
// Complements the exhaustive-but-structured sweeps in
// test_strategies_correctness with irregular combinations.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/framework.h"
#include "problems/synthetic.h"
#include "util/rng.h"

namespace lddp {
namespace {

class StressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressTest, RandomConfigurationMatchesSerial) {
  Rng rng(GetParam() * 0x9e37 + 17);
  const auto rows = static_cast<std::size_t>(rng.uniform_int(1, 120));
  const auto cols = static_cast<std::size_t>(rng.uniform_int(1, 120));
  const ContributingSet deps(
      static_cast<std::uint8_t>(rng.uniform_int(1, 15)));
  const std::uint64_t salt = rng();

  const auto p = problems::make_function_problem<std::uint64_t>(
      rows, cols, deps, salt ^ 0xabcdef,
      [deps, salt](std::size_t i, std::size_t j,
                   const Neighbors<std::uint64_t>& nb) {
        std::uint64_t r = salt + i * 1000003 + j * 10007;
        if (deps.has_w()) r = (r << 1) ^ nb.w;
        if (deps.has_nw()) r = (r >> 1) + nb.nw;
        if (deps.has_n()) r = r * 31 + nb.n;
        if (deps.has_ne()) r ^= nb.ne + 0x517cc1b727220a95ULL;
        return r;
      });

  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);

  RunConfig cfg;
  const int mode_pick = static_cast<int>(rng.uniform_int(0, 3));
  cfg.mode = mode_pick == 0   ? Mode::kCpuParallel
             : mode_pick == 1 ? Mode::kGpu
             : mode_pick == 2 ? Mode::kHeterogeneous
                              : Mode::kAuto;
  cfg.platform = rng.uniform_int(0, 2) == 0
                     ? sim::PlatformSpec::hetero_low()
                     : (rng.uniform_int(0, 1) ? sim::PlatformSpec::hetero_high()
                                              : sim::PlatformSpec::hetero_phi());
  if (rng.uniform_int(0, 1)) {
    cfg.hetero.t_switch = rng.uniform_int(0, 200);
    cfg.hetero.t_share = rng.uniform_int(0, 200);
  }
  const auto got = solve(p, cfg);
  EXPECT_EQ(got.table, ref.table)
      << "deps=" << deps.to_string() << " " << rows << "x" << cols
      << " mode=" << to_string(cfg.mode)
      << " ts=" << cfg.hetero.t_switch << " sh=" << cfg.hetero.t_share;

  // Stats invariants that hold for every run.
  EXPECT_EQ(got.stats.cells, rows * cols);
  EXPECT_GE(got.stats.sim_seconds, 0.0);
  EXPECT_LE(got.stats.cpu_busy_seconds, got.stats.sim_seconds + 1e-12);
  EXPECT_LE(got.stats.gpu_busy_seconds, got.stats.sim_seconds + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         ::testing::Range<std::uint64_t>(0, 48));

}  // namespace
}  // namespace lddp
