#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/svg.h"

namespace lddp {
namespace {

TEST(SvgTest, EmitsShapesAndText) {
  SvgWriter svg(100, 80);
  svg.rect(1, 2, 30, 20, "#abcdef");
  svg.text(50, 40, "hello");
  svg.line(0, 0, 10, 10);
  const std::string body = svg.str();
  EXPECT_NE(body.find("<rect"), std::string::npos);
  EXPECT_NE(body.find("#abcdef"), std::string::npos);
  EXPECT_NE(body.find(">hello</text>"), std::string::npos);
  EXPECT_NE(body.find("<line"), std::string::npos);
}

TEST(SvgTest, EscapesMarkup) {
  SvgWriter svg(10, 10);
  svg.text(1, 1, "a<b & c>d");
  EXPECT_NE(svg.str().find("a&lt;b &amp; c&gt;d"), std::string::npos);
}

TEST(SvgTest, ArrowMarkerOnlyWhenUsed) {
  const std::string p1 = ::testing::TempDir() + "/svg_noarrow.svg";
  const std::string p2 = ::testing::TempDir() + "/svg_arrow.svg";
  {
    SvgWriter svg(10, 10);
    svg.line(0, 0, 5, 5);
    svg.save(p1);
  }
  {
    SvgWriter svg(10, 10);
    svg.line(0, 0, 5, 5, "#c00", 1.0, /*arrow=*/true);
    svg.save(p2);
  }
  auto slurp = [](const std::string& p) {
    std::ifstream in(p);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  };
  EXPECT_EQ(slurp(p1).find("marker"), std::string::npos);
  EXPECT_NE(slurp(p2).find("marker-end"), std::string::npos);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(SvgTest, SavedFileIsWellFormedEnvelope) {
  const std::string path = ::testing::TempDir() + "/svg_envelope.svg";
  SvgWriter svg(42, 24);
  svg.rect(0, 0, 10, 10, "#fff");
  svg.save(path);
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  const std::string body = os.str();
  EXPECT_EQ(body.rfind("<svg", 0), 0u);
  EXPECT_NE(body.find("viewBox=\"0 0 42 24\""), std::string::npos);
  EXPECT_NE(body.find("</svg>"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SvgTest, InvalidDimensionsRejected) {
  EXPECT_THROW(SvgWriter(0, 10), CheckError);
  EXPECT_THROW(SvgWriter(10, -1), CheckError);
}

}  // namespace
}  // namespace lddp
