// Behavioural tests of the knight-move heterogeneous strategy: three-phase
// structure, two-way mapped-pinned boundaries, Floyd-Steinberg end-to-end.
#include <gtest/gtest.h>

#include "core/framework.h"
#include "problems/floyd_steinberg.h"

namespace lddp {
namespace {

problems::FloydSteinbergProblem make_problem(std::size_t n, std::size_t m,
                                             std::uint64_t seed) {
  return problems::FloydSteinbergProblem(problems::plasma_image(n, m, seed));
}

Grid<problems::FsCell> serial_solution(
    const problems::FloydSteinbergProblem& p) {
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  return solve(p, cfg).table;
}

bool tables_equal(const Grid<problems::FsCell>& a,
                  const Grid<problems::FsCell>& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (a.at(i, j).err != b.at(i, j).err ||
          a.at(i, j).out != b.at(i, j).out)
        return false;
  return true;
}

TEST(HeteroKnightMoveTest, MatchesSerialAcrossSplits) {
  const auto p = make_problem(64, 96, 1);
  const auto ref = serial_solution(p);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  for (HeteroParams hp :
       {HeteroParams{-1, -1}, HeteroParams{0, 0}, HeteroParams{0, 32},
        HeteroParams{17, 13}, HeteroParams{50, 96}, HeteroParams{9999, 9999}}) {
    cfg.hetero = hp;
    EXPECT_TRUE(tables_equal(solve(p, cfg).table, ref))
        << hp.t_switch << "/" << hp.t_share;
  }
}

TEST(HeteroKnightMoveTest, TwoWayMappedBoundaryUsesNoPerFrontCopies) {
  const auto p = make_problem(48, 48, 2);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {10, 16};
  const auto r = solve(p, cfg);
  EXPECT_EQ(r.stats.transfer, TransferNeed::kTwoWay);
  // One bulk upload at phase-2 entry plus the input upload; one bulk
  // download at phase-3 entry plus the final download. No per-front ops.
  EXPECT_LE(r.stats.h2d_copies, 2u);
  EXPECT_LE(r.stats.d2h_copies, 2u);
}

TEST(HeteroKnightMoveTest, StatsShape) {
  const auto p = make_problem(40, 56, 3);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {8, 20};
  const auto r = solve(p, cfg);
  EXPECT_EQ(r.stats.pattern, Pattern::kKnightMove);
  EXPECT_EQ(r.stats.fronts, 2 * (40 - 1) + 56);
  EXPECT_EQ(r.stats.t_switch, 8);
  EXPECT_EQ(r.stats.t_share, 20);
  EXPECT_GT(r.stats.cpu_busy_seconds, 0.0);
  EXPECT_GT(r.stats.gpu_busy_seconds, 0.0);
}

TEST(HeteroKnightMoveTest, DitherOutputIsBinary) {
  const auto p = make_problem(32, 32, 4);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  const auto r = solve(p, cfg);
  const auto img = problems::dithered_image(r.table);
  for (std::size_t i = 0; i < img.rows(); ++i)
    for (std::size_t j = 0; j < img.cols(); ++j)
      EXPECT_TRUE(img.at(i, j) == 0 || img.at(i, j) == 255);
}

TEST(HeteroKnightMoveTest, TinyAndSkinnyImages) {
  for (auto [n, m] : {std::pair<std::size_t, std::size_t>{1, 1},
                      {1, 40},
                      {40, 1},
                      {2, 3},
                      {3, 2}}) {
    const auto p = make_problem(n, m, n * 100 + m);
    const auto ref = serial_solution(p);
    RunConfig cfg;
    cfg.mode = Mode::kHeterogeneous;
    EXPECT_TRUE(tables_equal(solve(p, cfg).table, ref)) << n << "x" << m;
  }
}

}  // namespace
}  // namespace lddp
