#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "problems/synthetic.h"
#include "tables/grid_io.h"

namespace lddp {
namespace {

TEST(GridIoTest, RoundTripInt) {
  const auto g = problems::random_input_grid(17, 23, 5, -100, 100);
  const std::string path = ::testing::TempDir() + "/grid_int.lddp";
  save_grid(g, path);
  EXPECT_EQ(load_grid<std::int32_t>(path), g);
  std::remove(path.c_str());
}

TEST(GridIoTest, RoundTripDouble) {
  Grid<double> g(3, 4);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      g.at(i, j) = static_cast<double>(i) * 0.5 - static_cast<double>(j);
  const std::string path = ::testing::TempDir() + "/grid_double.lddp";
  save_grid(g, path);
  EXPECT_EQ(load_grid<double>(path), g);
  std::remove(path.c_str());
}

TEST(GridIoTest, ElementSizeMismatchRejected) {
  const auto g = problems::random_input_grid(4, 4, 1);
  const std::string path = ::testing::TempDir() + "/grid_mismatch.lddp";
  save_grid(g, path);
  EXPECT_THROW(load_grid<std::int64_t>(path), CheckError);
  std::remove(path.c_str());
}

TEST(GridIoTest, BadMagicRejected) {
  const std::string path = ::testing::TempDir() + "/grid_bad.lddp";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTAGRID and some bytes";
  }
  EXPECT_THROW(load_grid<std::int32_t>(path), CheckError);
  std::remove(path.c_str());
}

TEST(GridIoTest, TruncatedPayloadRejected) {
  const auto g = problems::random_input_grid(8, 8, 2);
  const std::string path = ::testing::TempDir() + "/grid_trunc.lddp";
  save_grid(g, path);
  // Chop the file short.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() - 17);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  out.close();
  EXPECT_THROW(load_grid<std::int32_t>(path), CheckError);
  std::remove(path.c_str());
}

TEST(GridIoTest, MissingFileRejected) {
  EXPECT_THROW(load_grid<std::int32_t>("/no/such/grid.lddp"), CheckError);
}

}  // namespace
}  // namespace lddp
