#include <gtest/gtest.h>

#include <numeric>

#include "core/parallelism_profile.h"

namespace lddp {
namespace {

TEST(ProfileTest, EveryPatternCoversAllCells) {
  for (Pattern p : {Pattern::kAntiDiagonal, Pattern::kHorizontal,
                    Pattern::kVertical, Pattern::kInvertedL,
                    Pattern::kMirroredInvertedL, Pattern::kKnightMove}) {
    const auto prof = parallelism_profile(p, 9, 13);
    EXPECT_EQ(std::accumulate(prof.begin(), prof.end(), std::size_t{0}),
              9u * 13u)
        << to_string(p);
  }
}

TEST(ProfileTest, ShapesMatchThePaperTaxonomy) {
  EXPECT_EQ(profile_shape(Pattern::kHorizontal), ProfileShape::kConstant);
  EXPECT_EQ(profile_shape(Pattern::kVertical), ProfileShape::kConstant);
  EXPECT_EQ(profile_shape(Pattern::kAntiDiagonal),
            ProfileShape::kRiseAndFall);
  EXPECT_EQ(profile_shape(Pattern::kKnightMove), ProfileShape::kRiseAndFall);
  EXPECT_EQ(profile_shape(Pattern::kInvertedL),
            ProfileShape::kMonotoneFalling);
  EXPECT_EQ(profile_shape(Pattern::kMirroredInvertedL),
            ProfileShape::kMonotoneFalling);
}

TEST(ProfileTest, MeasuredProfilesClassifyToTheirShapes) {
  for (Pattern p : {Pattern::kAntiDiagonal, Pattern::kHorizontal,
                    Pattern::kVertical, Pattern::kInvertedL,
                    Pattern::kMirroredInvertedL, Pattern::kKnightMove}) {
    const auto prof = parallelism_profile(p, 16, 24);
    EXPECT_EQ(classify_profile(prof), profile_shape(p)) << to_string(p);
  }
}

TEST(ProfileTest, AntiDiagonalPeaksAtMinDimension) {
  const auto prof = parallelism_profile(Pattern::kAntiDiagonal, 8, 20);
  EXPECT_EQ(*std::max_element(prof.begin(), prof.end()), 8u);
  EXPECT_EQ(prof.front(), 1u);
  EXPECT_EQ(prof.back(), 1u);
}

TEST(ProfileTest, KnightMoveGapsAreIgnored) {
  // Single-column tables have empty 2i+j lines; they are scheduling gaps,
  // not rises.
  const auto prof = parallelism_profile(Pattern::kKnightMove, 7, 1);
  EXPECT_EQ(classify_profile(prof), ProfileShape::kConstant);
}

TEST(ProfileTest, NonLddpShapeRejected) {
  EXPECT_THROW(classify_profile({3, 1, 4}), CheckError);  // falls then rises
  EXPECT_THROW(classify_profile({}), CheckError);
}

TEST(ProfileTest, ToStringIsStable) {
  EXPECT_EQ(to_string(ProfileShape::kConstant), "constant");
  EXPECT_EQ(to_string(ProfileShape::kRiseAndFall), "rise-and-fall");
  EXPECT_EQ(to_string(ProfileShape::kMonotoneFalling), "monotone-falling");
}

}  // namespace
}  // namespace lddp
