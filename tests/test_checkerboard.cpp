#include <gtest/gtest.h>

#include "core/framework.h"
#include "problems/checkerboard.h"

namespace lddp::problems {
namespace {

TEST(CheckerboardTest, ClassifiesHorizontalCase2) {
  CheckerboardProblem p(random_cost_board(8, 8, 1));
  EXPECT_EQ(classify(p.deps()), Pattern::kHorizontal);
  EXPECT_TRUE(is_horizontal_case2(p.deps()));
  EXPECT_EQ(transfer_need(p.deps()), TransferNeed::kTwoWay);
}

TEST(CheckerboardTest, HandComputedBoard) {
  // 3x3 board:
  //   1 9 9      row 0 costs
  //   9 1 9      best path: (0,0) -> (1,1) -> (2,2)? costs 1+1+1 = 3
  //   9 9 1
  Grid<std::int32_t> costs(3, 3, 9);
  costs.at(0, 0) = 1;
  costs.at(1, 1) = 1;
  costs.at(2, 2) = 1;
  const auto t = checkerboard_reference(costs);
  EXPECT_EQ(t.at(2, 2), 3);
  EXPECT_EQ(checkerboard_best(t), 3);
}

TEST(CheckerboardTest, FirstRowIsItsOwnCost) {
  const auto costs = random_cost_board(6, 7, 2);
  const auto t = checkerboard_reference(costs);
  for (std::size_t j = 0; j < 7; ++j) EXPECT_EQ(t.at(0, j), costs.at(0, j));
}

TEST(CheckerboardTest, AllModesMatchReference) {
  const auto costs = random_cost_board(90, 110, 3);
  CheckerboardProblem p(costs);
  const auto ref = checkerboard_reference(costs);
  for (Mode mode : {Mode::kCpuSerial, Mode::kCpuParallel, Mode::kGpu,
                    Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    EXPECT_EQ(solve(p, cfg).table, ref) << to_string(mode);
  }
}

TEST(CheckerboardTest, BestCostBoundedByColumnWalk) {
  // Any straight-down walk is a valid path, so the optimum can't exceed
  // the cheapest straight column.
  const auto costs = random_cost_board(30, 30, 4);
  const auto t = checkerboard_reference(costs);
  std::int64_t cheapest_column = std::numeric_limits<std::int64_t>::max();
  for (std::size_t j = 0; j < 30; ++j) {
    std::int64_t col = 0;
    for (std::size_t i = 0; i < 30; ++i) col += costs.at(i, j);
    cheapest_column = std::min(cheapest_column, col);
  }
  EXPECT_LE(checkerboard_best(t), cheapest_column);
}

TEST(CheckerboardTest, MonotoneUnderCostIncrease) {
  auto costs = random_cost_board(20, 20, 5);
  const auto before = checkerboard_best(checkerboard_reference(costs));
  for (std::size_t i = 0; i < 20; ++i)
    for (std::size_t j = 0; j < 20; ++j) costs.at(i, j) += 1;
  const auto after = checkerboard_best(checkerboard_reference(costs));
  EXPECT_EQ(after, before + 20);  // every path crosses exactly 20 rows
}

}  // namespace
}  // namespace lddp::problems
