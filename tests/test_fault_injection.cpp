// Unit tests for the deterministic fault-injection & request-lifecycle
// layer: decision purity and replay determinism, every named injection
// site, exception safety of the touched subsystems (quota rollback,
// LaunchGraph unwinding), Timeline cancellation/deadline enforcement, and
// the batch engine's full degradation ladder across all 15 contributing
// sets.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/batch_engine.h"
#include "core/chaos.h"
#include "core/framework.h"
#include "problems/synthetic.h"
#include "sim/device.h"
#include "sim/launch_graph.h"
#include "sim/memory.h"
#include "sim/platform.h"
#include "sim/timeline.h"
#include "util/fault_injection.h"

namespace lddp {
namespace {

using fault::FaultPlan;
using fault::FaultScope;
using fault::Site;

// ---------------------------------------------------------------------------
// FaultPlan decision function

TEST(FaultPlan, DecisionsArePure) {
  const FaultPlan plan = FaultPlan::uniform(42, 0.3);
  for (std::uint64_t solve = 0; solve < 16; ++solve) {
    for (std::uint64_t attempt = 0; attempt < 3; ++attempt) {
      for (std::uint64_t salt = 0; salt < 8; ++salt) {
        const bool a =
            plan.should_fail(Site::kKernelLaunch, solve, attempt, salt);
        const bool b =
            plan.should_fail(Site::kKernelLaunch, solve, attempt, salt);
        EXPECT_EQ(a, b);
      }
    }
  }
}

TEST(FaultPlan, RateZeroNeverFailsRateOneAlwaysFails) {
  FaultPlan never = FaultPlan::uniform(7, 0.0);
  FaultPlan always = FaultPlan::uniform(7, 1.0);
  EXPECT_FALSE(never.armed());
  EXPECT_TRUE(always.armed());
  for (std::uint64_t s = 0; s < 100; ++s) {
    EXPECT_FALSE(never.should_fail(Site::kPoolAcquire, s, 0));
    EXPECT_TRUE(always.should_fail(Site::kPoolAcquire, s, 0));
  }
}

TEST(FaultPlan, ObservedFrequencyTracksRate) {
  const FaultPlan plan = FaultPlan::uniform(123, 0.25);
  std::size_t fails = 0;
  constexpr std::size_t kDraws = 20000;
  for (std::uint64_t s = 0; s < kDraws; ++s)
    if (plan.should_fail(Site::kTransferH2D, s, 0)) ++fails;
  const double freq = static_cast<double>(fails) / kDraws;
  EXPECT_NEAR(freq, 0.25, 0.02);
}

TEST(FaultPlan, DistinctSitesAndSeedsDecideIndependently) {
  const FaultPlan a = FaultPlan::uniform(1, 0.5);
  const FaultPlan b = FaultPlan::uniform(2, 0.5);
  std::size_t site_diff = 0, seed_diff = 0;
  for (std::uint64_t s = 0; s < 1000; ++s) {
    if (a.should_fail(Site::kTransferH2D, s, 0) !=
        a.should_fail(Site::kTransferD2H, s, 0))
      ++site_diff;
    if (a.should_fail(Site::kTransferH2D, s, 0) !=
        b.should_fail(Site::kTransferH2D, s, 0))
      ++seed_diff;
  }
  EXPECT_GT(site_diff, 300u);  // ~half should differ
  EXPECT_GT(seed_diff, 300u);
}

TEST(FaultPlan, PerSiteRates) {
  FaultPlan plan;
  plan.seed = 9;
  plan.set_rate(Site::kGraphReplay, 1.0);
  EXPECT_TRUE(plan.armed());
  EXPECT_DOUBLE_EQ(plan.rate(Site::kGraphReplay), 1.0);
  EXPECT_DOUBLE_EQ(plan.rate(Site::kKernelLaunch), 0.0);
  EXPECT_TRUE(plan.should_fail(Site::kGraphReplay, 0, 0));
  EXPECT_FALSE(plan.should_fail(Site::kKernelLaunch, 0, 0));
}

// ---------------------------------------------------------------------------
// FaultScope / maybe_throw

TEST(FaultScope, MaybeThrowIsNoopOutsideScope) {
  EXPECT_EQ(fault::current(), nullptr);
  EXPECT_NO_THROW(fault::maybe_throw(Site::kPoolAcquire));
}

TEST(FaultScope, ThrowsInsideArmedScopeAndCarriesIdentity) {
  const FaultPlan plan = FaultPlan::uniform(5, 1.0);
  FaultScope scope(&plan, /*solve=*/3, /*attempt=*/2);
  try {
    fault::maybe_throw(Site::kQuotaAcquire, /*salt=*/11);
    FAIL() << "expected InjectedFault";
  } catch (const fault::InjectedFault& e) {
    EXPECT_EQ(e.site(), Site::kQuotaAcquire);
    EXPECT_EQ(e.solve(), 3u);
    EXPECT_EQ(e.attempt(), 2u);
  }
}

TEST(FaultScope, NestsAndRestores) {
  const FaultPlan outer = FaultPlan::uniform(1, 1.0);
  const FaultPlan inner = FaultPlan::uniform(2, 0.0);
  EXPECT_EQ(fault::current(), nullptr);
  {
    FaultScope a(&outer, 1, 0);
    ASSERT_NE(fault::current(), nullptr);
    EXPECT_EQ(fault::current()->plan, &outer);
    {
      FaultScope b(&inner, 2, 1);
      EXPECT_EQ(fault::current()->plan, &inner);
      EXPECT_NO_THROW(fault::maybe_throw(Site::kPoolAcquire));
    }
    EXPECT_EQ(fault::current()->plan, &outer);
    EXPECT_THROW(fault::maybe_throw(Site::kPoolAcquire),
                 fault::InjectedFault);
  }
  EXPECT_EQ(fault::current(), nullptr);
}

// ---------------------------------------------------------------------------
// Injection sites in the simulated platform

TEST(FaultSites, BufferPoolAcquire) {
  sim::BufferPool pool;
  FaultPlan plan;
  plan.set_rate(Site::kPoolAcquire, 1.0);
  {
    FaultScope scope(&plan, 0, 0);
    EXPECT_THROW(pool.acquire(1024, /*pinned=*/false),
                 fault::InjectedFault);
  }
  // Outside the scope the same acquire succeeds and the pool is intact.
  void* p = pool.acquire(1024, false);
  ASSERT_NE(p, nullptr);
  pool.release(p, 1024, false);
}

TEST(FaultSites, QuotaAcquireAndRollback) {
  sim::BufferPool parent;
  sim::QuotaBufferPool quota(&parent, /*quota_bytes=*/1 << 20);
  FaultPlan plan;
  plan.set_rate(Site::kQuotaAcquire, 1.0);
  {
    FaultScope scope(&plan, 0, 0);
    EXPECT_THROW(quota.acquire(4096, false), fault::InjectedFault);
  }
  // The failed acquire must not leak outstanding quota bytes (the dtor
  // LDDP_CHECKs outstanding_ == 0 — a leak would std::terminate there).
  EXPECT_EQ(quota.outstanding_bytes(), 0u);
  void* p = quota.acquire(4096, false);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(quota.outstanding_bytes(), 4096u);
  quota.release(p, 4096, false);
  EXPECT_EQ(quota.outstanding_bytes(), 0u);
}

TEST(FaultSites, QuotaRollsBackWhenParentThrows) {
  // The parent's own site fires inside QuotaBufferPool::acquire after the
  // quota was committed; the quota must roll back on the way out.
  sim::BufferPool parent;
  sim::QuotaBufferPool quota(&parent, /*quota_bytes=*/1 << 20);
  FaultPlan plan;
  plan.set_rate(Site::kPoolAcquire, 1.0);
  {
    FaultScope scope(&plan, 0, 0);
    EXPECT_THROW(quota.acquire(4096, false), fault::InjectedFault);
  }
  EXPECT_EQ(quota.outstanding_bytes(), 0u);
}

TEST(FaultSites, DeviceTransfersAndLaunch) {
  sim::Timeline tl;
  sim::Device dev(sim::GpuSpec::tesla_k20(), tl);
  auto buf = dev.alloc<int>(16);
  std::vector<int> host(16, 1);
  FaultPlan plan;
  const auto stream = dev.default_stream();

  plan = FaultPlan{};
  plan.set_rate(Site::kTransferH2D, 1.0);
  {
    FaultScope scope(&plan, 0, 0);
    EXPECT_THROW(dev.memcpy_h2d(stream, buf.device_ptr(), host.data(), 16,
                                sim::MemoryKind::kPageable),
                 fault::InjectedFault);
    EXPECT_THROW(dev.record_h2d(stream, 64, sim::MemoryKind::kPageable),
                 fault::InjectedFault);
  }
  plan = FaultPlan{};
  plan.set_rate(Site::kTransferD2H, 1.0);
  {
    FaultScope scope(&plan, 0, 0);
    EXPECT_THROW(dev.memcpy_d2h(stream, host.data(), buf.device_ptr(), 16,
                                sim::MemoryKind::kPageable),
                 fault::InjectedFault);
    EXPECT_THROW(dev.record_d2h(stream, 64, sim::MemoryKind::kPageable),
                 fault::InjectedFault);
  }
  plan = FaultPlan{};
  plan.set_rate(Site::kKernelLaunch, 1.0);
  {
    FaultScope scope(&plan, 0, 0);
    EXPECT_THROW(
        dev.launch(stream, sim::KernelInfo{}, 16, [](std::size_t) {}),
        fault::InjectedFault);
  }
  // Disarmed again: the device still works.
  EXPECT_NO_THROW(dev.memcpy_h2d(stream, buf.device_ptr(), host.data(), 16,
                                 sim::MemoryKind::kPageable));
}

TEST(FaultSites, LaunchGraphReplayAndNodes) {
  sim::Timeline tl;
  sim::Device dev(sim::GpuSpec::tesla_k20(), tl);
  FaultPlan plan;
  plan.set_rate(Site::kGraphReplay, 1.0);
  {
    sim::LaunchGraph graph(dev, /*fused=*/true);
    graph.launch(dev.default_stream(), sim::KernelInfo{}, 8,
                 [](std::size_t) {});
    FaultScope scope(&plan, 0, 0);
    EXPECT_THROW(graph.replay(), fault::InjectedFault);
    // The failed replay left the nodes pending; the graph destructor runs
    // outside the scope here and must submit them cleanly.
  }
  EXPECT_GT(tl.op_count(), 0u);

  plan = FaultPlan{};
  plan.set_rate(Site::kKernelLaunch, 1.0);
  sim::LaunchGraph graph(dev, /*fused=*/true);
  FaultScope scope(&plan, 0, 0);
  EXPECT_THROW(graph.launch(dev.default_stream(), sim::KernelInfo{}, 8,
                            [](std::size_t) {}),
               fault::InjectedFault);
}

TEST(FaultSites, LaunchGraphAbandonsDuringUnwinding) {
  // A pending fused graph destroyed while another exception unwinds must
  // abandon its nodes, not replay (replay can throw => std::terminate).
  sim::Timeline tl;
  sim::Device dev(sim::GpuSpec::tesla_k20(), tl);
  const std::size_t before = tl.op_count();
  try {
    sim::LaunchGraph graph(dev, /*fused=*/true);
    graph.launch(dev.default_stream(), sim::KernelInfo{}, 8,
                 [](std::size_t) {});
    throw std::runtime_error("strategy failure mid-phase");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(tl.op_count(), before);  // nothing was replayed
}

// ---------------------------------------------------------------------------
// Timeline cancellation / deadline enforcement

TEST(TimelineControl, CancellationObservedAtRecord) {
  sim::Timeline tl;
  const auto res = tl.add_resource("cpu");
  std::atomic<bool> cancel{false};
  fault::RequestControl control;
  control.cancel = &cancel;
  tl.set_request_control(&control);
  EXPECT_NO_THROW(tl.record(res, 1e-6, {}, "op"));
  cancel.store(true);
  EXPECT_THROW(tl.record(res, 1e-6, {}, "op"), fault::CancelledError);
}

TEST(TimelineControl, DeadlineInSimulatedTime) {
  sim::Timeline tl;
  const auto res = tl.add_resource("cpu");
  fault::RequestControl control;
  control.deadline_s = 1.0;
  tl.set_request_control(&control);
  EXPECT_NO_THROW(tl.record(res, 0.4, {}, "op"));
  EXPECT_NO_THROW(tl.record(res, 0.4, {}, "op"));
  // The op that pushes the simulated makespan past 1.0 s throws.
  EXPECT_THROW(tl.record(res, 0.4, {}, "op"), fault::DeadlineExceededError);
}

TEST(TimelineControl, CopyDropsControl) {
  sim::Timeline tl;
  const auto res = tl.add_resource("cpu");
  fault::RequestControl control;
  control.deadline_s = 0.5;
  tl.set_request_control(&control);
  tl.record(res, 0.1, {}, "op");
  sim::Timeline copy(tl);  // recorded schedules outlive the attempt
  EXPECT_EQ(copy.op_count(), tl.op_count());
  EXPECT_NO_THROW(copy.record(res, 10.0, {}, "op"));  // control not copied
}

// ---------------------------------------------------------------------------
// Batch-engine lifecycle: ladder, replay determinism, structured outcomes

auto make_deps_problem(ContributingSet deps, std::size_t rows,
                       std::size_t cols, std::uint64_t salt) {
  return problems::make_function_problem<std::uint64_t>(
      rows, cols, deps, salt,
      [deps, salt](std::size_t i, std::size_t j,
                   const Neighbors<std::uint64_t>& nb) {
        std::uint64_t r = salt + i * 1000003 + j * 10007;
        if (deps.has_w()) r = (r << 1) ^ nb.w;
        if (deps.has_nw()) r = (r >> 1) + nb.nw;
        if (deps.has_n()) r = r * 31 + nb.n;
        if (deps.has_ne()) r ^= nb.ne + 0x517cc1b727220a95ULL;
        return r;
      });
}

/// All 15 contributing sets through the full ladder: heavy uniform chaos
/// with a retry budget whose final rung is the injection-free reference —
/// every request must end in a structured success, bit-identical to solo.
TEST(BatchLifecycle, LadderCoversAllContributingSets) {
  BatchConfig bc;
  bc.worker_threads = 0;  // inline => deterministic
  bc.max_retries = 4;
  bc.chaos = FaultPlan::uniform(0xc0ffee, 0.9);
  bc.lane_pack = 0;  // per-solve path; the lane path has its own test
  BatchEngine engine(bc);

  using Problem = decltype(make_deps_problem(ContributingSet(1), 1, 1, 0));
  std::vector<std::future<SolveResult<Problem>>> futures;
  std::vector<Grid<std::uint64_t>> expected;
  for (std::uint8_t bits = 1; bits <= 15; ++bits) {
    const auto p = make_deps_problem(ContributingSet(bits), 40, 40, bits);
    RunConfig rc;
    rc.mode = Mode::kHeterogeneous;  // exercises transfers + launches
    rc.tile = 8;
    RunConfig serial;
    serial.mode = Mode::kCpuSerial;
    expected.push_back(solve(p, serial).table);
    auto f = engine.submit(p, rc);
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  const BatchReport rep = engine.wait();
  ASSERT_EQ(rep.solves, 15u);
  EXPECT_EQ(rep.failed_solves, 0u);
  EXPECT_EQ(rep.cancelled_solves, 0u);
  EXPECT_EQ(rep.deadline_solves, 0u);
  std::size_t retried_or_degraded = 0;
  for (std::size_t k = 0; k < 15; ++k) {
    SolveResult<Problem> got;
    ASSERT_NO_THROW(got = futures[k].get()) << "deps bits " << k + 1;
    EXPECT_EQ(got.table, expected[k]) << "deps bits " << k + 1;
    const auto outcome = rep.items[k].outcome;
    EXPECT_TRUE(outcome == chaos::RequestOutcome::kOk ||
                outcome == chaos::RequestOutcome::kRetried ||
                outcome == chaos::RequestOutcome::kDegraded)
        << chaos::to_string(outcome);
    if (outcome != chaos::RequestOutcome::kOk) ++retried_or_degraded;
    EXPECT_EQ(rep.items[k].retries > 0,
              outcome != chaos::RequestOutcome::kOk);
  }
  // Rate 0.9 on every site: it is (overwhelmingly) certain some request
  // exercised the ladder; the assertion is deterministic given the seed.
  EXPECT_GT(retried_or_degraded, 0u);
  EXPECT_EQ(rep.retry_attempts > 0, retried_or_degraded > 0);
}

/// The same seeded batch run twice produces identical outcomes, retry
/// counts, backoff charges and merged timings — replay determinism.
TEST(BatchLifecycle, ChaosReplaysBitIdentically) {
  auto run_once = [] {
    BatchConfig bc;
    bc.worker_threads = 0;
    bc.max_retries = 3;
    bc.chaos = FaultPlan::uniform(0xfeedface, 0.5);
    BatchEngine engine(bc);
    using Problem =
        decltype(make_deps_problem(ContributingSet(1), 1, 1, 0));
    std::vector<std::future<SolveResult<Problem>>> futures;
    for (std::size_t k = 0; k < 12; ++k) {
      const auto p = make_deps_problem(
          ContributingSet(static_cast<std::uint8_t>(1 + k % 15)), 32, 24,
          k);
      RunConfig rc;
      rc.mode = k % 2 == 0 ? Mode::kGpu : Mode::kHeterogeneous;
      auto f = engine.submit(p, rc);
      EXPECT_TRUE(f.has_value());
      futures.push_back(std::move(*f));
    }
    return engine.wait();
  };
  const BatchReport a = run_once();
  const BatchReport b = run_once();
  ASSERT_EQ(a.solves, b.solves);
  EXPECT_EQ(a.retry_attempts, b.retry_attempts);
  EXPECT_DOUBLE_EQ(a.sim_makespan, b.sim_makespan);
  for (std::size_t k = 0; k < a.items.size(); ++k) {
    EXPECT_EQ(a.items[k].outcome, b.items[k].outcome) << k;
    EXPECT_EQ(a.items[k].retries, b.items[k].retries) << k;
    EXPECT_EQ(a.items[k].degraded, b.items[k].degraded) << k;
    EXPECT_DOUBLE_EQ(a.items[k].backoff_seconds,
                     b.items[k].backoff_seconds)
        << k;
    EXPECT_DOUBLE_EQ(a.items[k].sim_end, b.items[k].sim_end) << k;
  }
}

/// Zero retry budget: injected faults surface as kFailed with the
/// structured InjectedFault on the future; the engine stays usable.
TEST(BatchLifecycle, NoRetriesMeansStructuredFailure) {
  BatchConfig bc;
  bc.worker_threads = 0;
  bc.max_retries = 0;
  bc.chaos = FaultPlan::uniform(3, 1.0);  // every site always fails
  bc.lane_pack = 0;
  BatchEngine engine(bc);
  const auto p = make_deps_problem(ContributingSet(0b0110), 32, 32, 1);
  RunConfig rc;
  rc.mode = Mode::kGpu;
  auto f = engine.submit(p, rc);
  ASSERT_TRUE(f.has_value());
  const BatchReport rep = engine.wait();
  ASSERT_EQ(rep.solves, 1u);
  EXPECT_EQ(rep.failed_solves, 1u);
  EXPECT_EQ(rep.items[0].outcome, chaos::RequestOutcome::kFailed);
  EXPECT_TRUE(rep.items[0].failed);
  EXPECT_THROW(f->get(), fault::InjectedFault);

  // The engine stays usable: the next batch runs and reports normally
  // (chaos is still armed at rate 1 and the GPU path probes transfer and
  // launch sites, so it fails structurally again; a plain serial-CPU
  // solve would touch no site and legitimately succeed).
  auto f2 = engine.submit(p, rc);
  ASSERT_TRUE(f2.has_value());
  const BatchReport rep2 = engine.wait();
  EXPECT_EQ(rep2.failed_solves, 1u);
  EXPECT_THROW(f2->get(), fault::InjectedFault);
}

/// Strip-worker injection: a multi-threaded CPU solve whose strip chunks
/// fault must propagate the worker exception, retry down the ladder, and
/// still produce bit-identical results.
TEST(BatchLifecycle, StripWorkerFaultsRetryCleanly) {
  BatchConfig bc;
  bc.worker_threads = 0;
  bc.threads_per_solve = 4;
  bc.pack_solves = false;  // private per-slot pool => strip sessions
  bc.max_retries = 2;
  bc.chaos = FaultPlan{};
  bc.chaos.seed = 77;
  bc.chaos.set_rate(Site::kStripWorker, 0.6);
  bc.lane_pack = 0;
  BatchEngine engine(bc);
  const auto p = make_deps_problem(ContributingSet(0b0111), 64, 64, 9);
  RunConfig rc;
  rc.mode = Mode::kCpuParallel;
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto expected = solve(p, serial).table;
  auto f = engine.submit(p, rc);
  ASSERT_TRUE(f.has_value());
  const BatchReport rep = engine.wait();
  ASSERT_EQ(rep.solves, 1u);
  EXPECT_EQ(rep.failed_solves, 0u);
  SolveResult<decltype(make_deps_problem(ContributingSet(1), 1, 1, 0))> got;
  ASSERT_NO_THROW(got = f->get());
  EXPECT_EQ(got.table, expected);
}

/// Lane-cohort injection: a kLaneKernel fault degrades the cohort to
/// per-lane solo execution ("lane->solo") with bit-identical results.
TEST(BatchLifecycle, LaneCohortFaultDegradesToSolo) {
  BatchConfig bc;
  bc.worker_threads = 0;
  bc.chaos = FaultPlan{};
  bc.chaos.seed = 5;
  bc.chaos.set_rate(Site::kLaneKernel, 1.0);
  BatchEngine engine(bc);
  using Problem = decltype(make_deps_problem(ContributingSet(1), 1, 1, 0));
  std::vector<std::future<SolveResult<Problem>>> futures;
  std::vector<Grid<std::uint64_t>> expected;
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  for (std::size_t k = 0; k < 6; ++k) {
    const auto p = make_deps_problem(ContributingSet(0b0110), 48, 48, k);
    expected.push_back(solve(p, serial).table);
    RunConfig rc;
    rc.mode = Mode::kCpuSerial;
    auto f = engine.submit(p, rc);
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  const BatchReport rep = engine.wait();
  ASSERT_EQ(rep.solves, 6u);
  EXPECT_EQ(rep.failed_solves, 0u);
  bool any_lane_degrade = false;
  for (std::size_t k = 0; k < 6; ++k) {
    SolveResult<Problem> got;
    ASSERT_NO_THROW(got = futures[k].get()) << k;
    EXPECT_EQ(got.table, expected[k]) << k;
    if (rep.items[k].degraded == "lane->solo") any_lane_degrade = true;
  }
  // Lane eligibility needs SIMD lanes; when the host ISA disables lane
  // packing the cohort never forms and nothing degrades — either way the
  // results above are bit-identical.
  if (rep.lane_cohorts > 0 || rep.lane_packed_solves > 0)
    EXPECT_TRUE(any_lane_degrade);
}

/// Per-request deadlines in simulated time: an impossible budget times
/// out deterministically with kDeadlineExceeded; a generous one passes.
TEST(BatchLifecycle, SimulatedDeadlines) {
  BatchConfig bc;
  bc.worker_threads = 0;
  bc.lane_pack = 0;
  BatchEngine engine(bc);
  const auto p = make_deps_problem(ContributingSet(0b0011), 256, 256, 2);
  RunConfig rc;
  rc.mode = Mode::kHeterogeneous;

  chaos::RequestOptions tight;
  tight.deadline_ms = 1e-6;  // far below any 256x256 service time
  auto f1 = engine.submit(p, rc, tight);
  ASSERT_TRUE(f1.has_value());
  chaos::RequestOptions loose;
  loose.deadline_ms = 1e9;
  auto f2 = engine.submit(p, rc, loose);
  ASSERT_TRUE(f2.has_value());
  const BatchReport rep = engine.wait();
  ASSERT_EQ(rep.solves, 2u);
  EXPECT_EQ(rep.items[0].outcome, chaos::RequestOutcome::kDeadlineExceeded);
  EXPECT_EQ(rep.deadline_solves, 1u);
  EXPECT_THROW(f1->get(), fault::DeadlineExceededError);
  EXPECT_EQ(rep.items[1].outcome, chaos::RequestOutcome::kOk);
  EXPECT_NO_THROW(f2->get());
}

/// Retry backoff eats the simulated deadline budget: with chaos forcing
/// retries and a deadline smaller than the accumulated backoff, the
/// request ends kDeadlineExceeded instead of retrying forever.
TEST(BatchLifecycle, BackoffCountsAgainstDeadline) {
  BatchConfig bc;
  bc.worker_threads = 0;
  bc.max_retries = 8;
  bc.retry_backoff_ms = 10.0;
  bc.chaos = FaultPlan::uniform(11, 1.0);
  bc.lane_pack = 0;
  BatchEngine engine(bc);
  const auto p = make_deps_problem(ContributingSet(0b0001), 32, 32, 3);
  RunConfig rc;
  rc.mode = Mode::kGpu;
  chaos::RequestOptions opts;
  opts.deadline_ms = 15.0;  // first backoff (10ms) fits, second (30ms) not
  auto f = engine.submit(p, rc, opts);
  ASSERT_TRUE(f.has_value());
  const BatchReport rep = engine.wait();
  EXPECT_EQ(rep.items[0].outcome, chaos::RequestOutcome::kDeadlineExceeded);
  EXPECT_GT(rep.items[0].backoff_seconds, 0.0);
  EXPECT_THROW(f->get(), fault::DeadlineExceededError);
}

/// Pre-submission cancellation is observed before the first attempt runs.
TEST(BatchLifecycle, CancelBeforeRun) {
  BatchConfig bc;
  bc.worker_threads = 0;
  bc.lane_pack = 0;
  BatchEngine engine(bc);
  const auto p = make_deps_problem(ContributingSet(0b0001), 64, 64, 4);
  chaos::CancelSource source;
  source.request_cancel();
  chaos::RequestOptions opts;
  opts.cancel = source.token();
  auto f = engine.submit(p, RunConfig{}, opts);
  ASSERT_TRUE(f.has_value());
  const BatchReport rep = engine.wait();
  EXPECT_EQ(rep.items[0].outcome, chaos::RequestOutcome::kCancelled);
  EXPECT_EQ(rep.cancelled_solves, 1u);
  EXPECT_THROW(f->get(), fault::CancelledError);
}

/// BatchConfig defaults flow into requests; per-request options override.
TEST(BatchLifecycle, OptionInheritanceAndOverride) {
  BatchConfig bc;
  bc.worker_threads = 0;
  bc.deadline_ms = 1e-6;  // default: impossibly tight
  bc.lane_pack = 0;
  BatchEngine engine(bc);
  const auto p = make_deps_problem(ContributingSet(0b0011), 128, 128, 5);
  auto f1 = engine.submit(p, RunConfig{});  // inherits the tight default
  chaos::RequestOptions loose;
  loose.deadline_ms = 0.0;  // 0 overrides to "no deadline"
  auto f2 = engine.submit(p, RunConfig{}, loose);
  ASSERT_TRUE(f1.has_value() && f2.has_value());
  const BatchReport rep = engine.wait();
  EXPECT_EQ(rep.items[0].outcome, chaos::RequestOutcome::kDeadlineExceeded);
  EXPECT_EQ(rep.items[1].outcome, chaos::RequestOutcome::kOk);
}

TEST(ChaosSpecParse, SeedAndRate) {
  const chaos::ChaosSpec a = chaos::ChaosSpec::parse("42");
  EXPECT_EQ(a.seed, 42u);
  EXPECT_DOUBLE_EQ(a.rate, 0.02);
  const chaos::ChaosSpec b = chaos::ChaosSpec::parse("7:0.5");
  EXPECT_EQ(b.seed, 7u);
  EXPECT_DOUBLE_EQ(b.rate, 0.5);
  EXPECT_THROW(chaos::ChaosSpec::parse("nope"), CheckError);
  EXPECT_THROW(chaos::ChaosSpec::parse("1:2.0"), CheckError);
}

}  // namespace
}  // namespace lddp
