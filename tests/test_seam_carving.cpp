#include <gtest/gtest.h>

#include "core/framework.h"
#include "problems/seam_carving.h"

namespace lddp::problems {
namespace {

TEST(SeamCarvingTest, EnergyOfFlatImageIsZero) {
  const GrayImage img(8, 8, 100);
  const auto e = dual_gradient_energy(img);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j) EXPECT_EQ(e.at(i, j), 0);
}

TEST(SeamCarvingTest, EnergyPeaksOnEdges) {
  GrayImage img(4, 8, 0);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 4; j < 8; ++j) img.at(i, j) = 255;
  const auto e = dual_gradient_energy(img);
  EXPECT_GT(e.at(2, 4), e.at(2, 1));  // the step edge carries the energy
}

TEST(SeamCarvingTest, ClassifiesHorizontalCase2) {
  SeamCarveProblem p(Grid<std::int32_t>(4, 4, 1));
  EXPECT_EQ(classify(p.deps()), Pattern::kHorizontal);
  EXPECT_TRUE(is_horizontal_case2(p.deps()));
}

TEST(SeamCarvingTest, SeamFollowsZeroEnergyValley) {
  // Energy 9 everywhere except a zero-cost straight column at j = 3.
  Grid<std::int32_t> e(10, 7, 9);
  for (std::size_t i = 0; i < 10; ++i) e.at(i, 3) = 0;
  SeamCarveProblem p(e);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  const auto r = solve(p, cfg);
  const auto seam = extract_seam(r.table);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(seam[i], 3u) << i;
  EXPECT_EQ(seam_energy(e, seam), 0);
}

TEST(SeamCarvingTest, SeamIsConnected) {
  const GrayImage img = plasma_image(40, 60, 77);
  SeamCarveProblem p(dual_gradient_energy(img));
  RunConfig cfg;
  cfg.mode = Mode::kGpu;
  const auto seam = extract_seam(solve(p, cfg).table);
  ASSERT_EQ(seam.size(), 40u);
  for (std::size_t i = 1; i < seam.size(); ++i) {
    const auto d = seam[i] > seam[i - 1] ? seam[i] - seam[i - 1]
                                         : seam[i - 1] - seam[i];
    EXPECT_LE(d, 1u) << "row " << i;
  }
}

TEST(SeamCarvingTest, ExtractedSeamIsOptimal) {
  // Brute-force all connected seams on a small grid and compare.
  Rng rng(5);
  Grid<std::int32_t> e(5, 4);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      e.at(i, j) = static_cast<std::int32_t>(rng.uniform_int(0, 50));
  SeamCarveProblem p(e);
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto table = solve(p, cfg).table;
  const auto seam = extract_seam(table);

  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  // Enumerate seams as base-3 step sequences from every starting column.
  for (std::size_t start = 0; start < 4; ++start) {
    for (int steps = 0; steps < 81; ++steps) {  // 3^4 step choices
      std::int64_t total = e.at(0, start);
      std::size_t j = start;
      int code = steps;
      bool valid = true;
      for (std::size_t i = 1; i < 5; ++i) {
        const int move = code % 3 - 1;  // -1, 0, +1
        code /= 3;
        if ((move < 0 && j == 0) || (move > 0 && j == 3)) {
          valid = false;
          break;
        }
        j = static_cast<std::size_t>(static_cast<long>(j) + move);
        total += e.at(i, j);
      }
      if (valid) best = std::min(best, total);
    }
  }
  EXPECT_EQ(seam_energy(e, seam), best);
}

TEST(SeamCarvingTest, RemoveSeamShrinksWidthAndKeepsOtherPixels) {
  GrayImage img(3, 5);
  std::uint8_t v = 0;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j) img.at(i, j) = v++;
  const std::vector<std::size_t> seam{1, 2, 1};
  const GrayImage out = remove_seam(img, seam);
  ASSERT_EQ(out.cols(), 4u);
  EXPECT_EQ(out.at(0, 0), img.at(0, 0));
  EXPECT_EQ(out.at(0, 1), img.at(0, 2));  // pixel after removed column
  EXPECT_EQ(out.at(1, 2), img.at(1, 3));
  EXPECT_EQ(out.at(2, 3), img.at(2, 4));
}

TEST(SeamCarvingTest, RepeatedCarvingMatchesAcrossModes) {
  GrayImage a = plasma_image(24, 32, 9);
  GrayImage b = a;
  for (int round = 0; round < 4; ++round) {
    RunConfig gpu_cfg;
    gpu_cfg.mode = Mode::kGpu;
    RunConfig het_cfg;
    het_cfg.mode = Mode::kHeterogeneous;
    SeamCarveProblem pa((dual_gradient_energy(a)));
    SeamCarveProblem pb((dual_gradient_energy(b)));
    a = remove_seam(a, extract_seam(solve(pa, gpu_cfg).table));
    b = remove_seam(b, extract_seam(solve(pb, het_cfg).table));
    ASSERT_EQ(a, b) << "round " << round;
  }
  EXPECT_EQ(a.cols(), 28u);
}

TEST(SeamCarvingTest, RemoveSeamValidatesInput) {
  GrayImage img(3, 1, 0);
  EXPECT_THROW(remove_seam(img, {0, 0, 0}), CheckError);
  GrayImage wide(3, 4, 0);
  EXPECT_THROW(remove_seam(wide, {0, 0}), CheckError);  // wrong seam length
}

}  // namespace
}  // namespace lddp::problems
