#include <gtest/gtest.h>

#include "core/framework.h"
#include "problems/alignment.h"
#include "problems/levenshtein.h"

namespace lddp::problems {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(levenshtein_reference("kitten", "sitting"), 3);
  EXPECT_EQ(levenshtein_reference("", ""), 0);
  EXPECT_EQ(levenshtein_reference("abc", ""), 3);
  EXPECT_EQ(levenshtein_reference("", "abcd"), 4);
  EXPECT_EQ(levenshtein_reference("same", "same"), 0);
  EXPECT_EQ(levenshtein_reference("flaw", "lawn"), 2);
}

TEST(LevenshteinTest, ProblemClassifiesAntiDiagonal) {
  LevenshteinProblem p("abc", "de");
  EXPECT_EQ(classify(p.deps()), Pattern::kAntiDiagonal);
  EXPECT_EQ(p.rows(), 4u);
  EXPECT_EQ(p.cols(), 3u);
  EXPECT_EQ(p.input_bytes(), 5u);
}

TEST(LevenshteinTest, FrameworkMatchesReferenceAllModes) {
  const std::string a = random_sequence(160, 21, "abcdef");
  const std::string b = random_sequence(190, 22, "abcdef");
  LevenshteinProblem p(a, b);
  const auto expected = levenshtein_reference(a, b);
  for (Mode mode : {Mode::kCpuSerial, Mode::kCpuParallel, Mode::kGpu,
                    Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    EXPECT_EQ(solve(p, cfg).table.at(a.size(), b.size()), expected)
        << to_string(mode);
  }
}

TEST(LevenshteinTest, DistancePropertiesHold) {
  // Metric sanity on random pairs: symmetry and triangle inequality.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const std::string a = random_sequence(30 + seed * 7, seed * 3 + 1, "ab");
    const std::string b = random_sequence(25 + seed * 5, seed * 3 + 2, "ab");
    const std::string c = random_sequence(28 + seed * 3, seed * 3 + 3, "ab");
    const auto ab = levenshtein_reference(a, b);
    const auto ba = levenshtein_reference(b, a);
    const auto ac = levenshtein_reference(a, c);
    const auto cb = levenshtein_reference(c, b);
    EXPECT_EQ(ab, ba);
    EXPECT_LE(ab, ac + cb);
    EXPECT_GE(ab, std::abs(static_cast<long>(a.size()) -
                           static_cast<long>(b.size())));
  }
}

TEST(LevenshteinTest, FullTableMatchesSerialScan) {
  LevenshteinProblem p(random_sequence(90, 31), random_sequence(70, 32));
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);
  RunConfig hetero;
  hetero.mode = Mode::kHeterogeneous;
  hetero.hetero = {9, 17};
  EXPECT_EQ(solve(p, hetero).table, ref.table);
}

}  // namespace
}  // namespace lddp::problems
