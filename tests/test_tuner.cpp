// The empirical tuner (Section V-A / Fig 7): sweep shapes and optima.
#include <gtest/gtest.h>

#include "core/tuner.h"
#include "problems/alignment.h"
#include "problems/lcs.h"
#include "util/stats.h"

namespace lddp {
namespace {

TEST(TunerTest, SweepsCoverRangesAndPickMinima) {
  problems::LcsProblem p(problems::random_sequence(384, 1),
                         problems::random_sequence(384, 2));
  RunConfig cfg;
  const TuneResult r = tune(p, cfg, 9);

  ASSERT_GE(r.switch_values.size(), 2u);
  ASSERT_EQ(r.switch_values.size(), r.switch_seconds.size());
  EXPECT_EQ(r.switch_values.front(), 0);
  // The sweep's minimum is the returned optimum.
  const std::size_t k = argmin(r.switch_seconds);
  EXPECT_EQ(r.best.t_switch, r.switch_values[k]);
  const std::size_t k2 = argmin(r.share_seconds);
  EXPECT_EQ(r.best.t_share, r.share_values[k2]);
}

TEST(TunerTest, TSwitchCurveIsValleyShaped) {
  // Fig 7's qualitative claim: the t_switch sweep (t_share = 0) descends
  // to an interior minimum and rises again.
  problems::LcsProblem p(problems::random_sequence(512, 3),
                         problems::random_sequence(512, 4));
  RunConfig cfg;
  const TuneResult r = tune(p, cfg, 9);
  EXPECT_TRUE(is_valley_shaped(r.switch_seconds, 0.10));
}

TEST(TunerTest, TunedBeatsExtremes) {
  problems::LcsProblem p(problems::random_sequence(512, 5),
                         problems::random_sequence(512, 6));
  RunConfig cfg;
  const TuneResult r = tune(p, cfg, 9);
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = r.best;
  const double tuned = solve(p, cfg).stats.sim_seconds;
  EXPECT_LE(tuned, r.switch_seconds.front() + 1e-12);  // beats t_switch = 0
  EXPECT_LE(tuned, r.switch_seconds.back() + 1e-12);   // beats the far end
}

TEST(TunerTest, GoldenSectionMatchesFineSweep) {
  // The early-exit + golden-section sweep must land on (the value of) the
  // same optimum a brute-force sweep over every t_switch finds.
  problems::LcsProblem p(problems::random_sequence(192, 7),
                         problems::random_sequence(192, 8));
  RunConfig cfg;
  const TuneResult r = tune(p, cfg, 9);

  long long switch_max = 0, share_max = 0;
  detail::hetero_param_ranges(canonical(classify(p.deps())), p.rows(),
                              p.cols(), &switch_max, &share_max);
  cfg.mode = Mode::kHeterogeneous;
  double fine_min = 0.0;
  for (long long v = 0; v <= switch_max; ++v) {
    cfg.hetero = HeteroParams{v, 0};
    const double t = solve(p, cfg).stats.sim_seconds;
    if (v == 0 || t < fine_min) fine_min = t;
  }
  cfg.hetero = HeteroParams{r.best.t_switch, 0};
  const double tuned = solve(p, cfg).stats.sim_seconds;
  EXPECT_LE(tuned, fine_min * 1.01);
  // Far fewer evaluations than the brute-force sweep.
  EXPECT_LT(r.switch_values.size(),
            static_cast<std::size_t>(switch_max) / 2);
}

TEST(TunerTest, TileSweepPicksNoWorseThanUntiled) {
  problems::LcsProblem p(problems::random_sequence(256, 9),
                         problems::random_sequence(256, 10));
  RunConfig cfg;
  const TuneResult r = tune(p, cfg, 5);
  ASSERT_GE(r.tile_values.size(), 2u);
  EXPECT_EQ(r.tile_values.front(), 0);  // untiled baseline is sampled
  const std::size_t k = argmin(r.tile_seconds);
  EXPECT_EQ(r.best_tile, r.tile_values[k]);
  EXPECT_LE(r.tile_seconds[k], r.tile_seconds.front() + 1e-12);
}

TEST(TunerTest, RejectsDegenerateSampleCount) {
  problems::LcsProblem p("ab", "cd");
  RunConfig cfg;
  EXPECT_THROW(tune(p, cfg, 1), CheckError);
}

}  // namespace
}  // namespace lddp
