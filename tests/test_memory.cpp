#include <gtest/gtest.h>

#include <utility>

#include "sim/memory.h"

namespace lddp::sim {
namespace {

TEST(MemoryTest, DeviceBufferTracksAllocation) {
  MemoryStats stats;
  {
    DeviceBuffer<int> buf(100, &stats);
    EXPECT_EQ(buf.size(), 100u);
    EXPECT_EQ(buf.bytes(), 400u);
    EXPECT_EQ(stats.device_bytes_allocated, 400u);
    EXPECT_EQ(stats.device_bytes_peak, 400u);
  }
  EXPECT_EQ(stats.device_bytes_allocated, 0u);
  EXPECT_EQ(stats.device_bytes_peak, 400u);  // peak persists
}

TEST(MemoryTest, DeviceBufferZeroInitialized) {
  MemoryStats stats;
  DeviceBuffer<int> buf(16, &stats);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(buf.device_ptr()[i], 0);
}

TEST(MemoryTest, DeviceBufferMoveTransfersOwnership) {
  MemoryStats stats;
  DeviceBuffer<int> a(10, &stats);
  a.device_ptr()[3] = 42;
  DeviceBuffer<int> b = std::move(a);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(b.device_ptr()[3], 42);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): deliberate
  EXPECT_EQ(stats.device_bytes_allocated, 40u);
  DeviceBuffer<int> c;
  c = std::move(b);
  EXPECT_EQ(c.size(), 10u);
  EXPECT_EQ(stats.device_bytes_allocated, 40u);
}

TEST(MemoryTest, PeakTracksHighWaterMark) {
  MemoryStats stats;
  {
    DeviceBuffer<char> a(1000, &stats);
    DeviceBuffer<char> b(500, &stats);
    EXPECT_EQ(stats.device_bytes_peak, 1500u);
  }
  DeviceBuffer<char> c(100, &stats);
  EXPECT_EQ(stats.device_bytes_peak, 1500u);
  EXPECT_EQ(stats.device_bytes_allocated, 100u);
}

TEST(MemoryTest, PinnedBufferBasics) {
  MemoryStats stats;
  PinnedBuffer<double> buf(8, &stats);
  EXPECT_EQ(stats.pinned_bytes_allocated, 64u);
  buf[2] = 1.5;
  EXPECT_DOUBLE_EQ(buf[2], 1.5);
  EXPECT_EQ(PinnedBuffer<double>::kind(), MemoryKind::kPinned);
  PinnedBuffer<double> moved = std::move(buf);
  EXPECT_DOUBLE_EQ(moved[2], 1.5);
  EXPECT_EQ(stats.pinned_bytes_allocated, 64u);
}

TEST(MemoryTest, EmptyBuffersAreFine) {
  MemoryStats stats;
  DeviceBuffer<int> a(0, &stats);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.device_ptr(), nullptr);
  EXPECT_EQ(stats.device_bytes_allocated, 0u);
}

}  // namespace
}  // namespace lddp::sim
