// Chaos/differential harness for the batch engine's robustness layer:
// hundreds of seeded FaultPlans — random per-site rates, random retry
// budgets, deadlines, cancellations, every scheduler and worker
// configuration — each pushed through a real BatchEngine. The contract
// under chaos, for every request, is bits-or-error:
//
//   * a fulfilled future is bit-identical to a solo serial solve, no
//     matter how many injected faults, retries or degradations happened;
//   * a failed future carries a *structured* error (InjectedFault,
//     CancelledError, DeadlineExceededError) — never a crash, hang,
//     deadlock or leak;
//   * with any retry budget >= 1 and no deadline/cancel, injected faults
//     NEVER surface: the ladder's final rung is injection-free.
//
// The master seed comes from LDDP_STRESS_SEED (decimal) when set, so a CI
// failure replays locally:  LDDP_STRESS_SEED=12345 ./test_chaos_differential
// When LDDP_CHAOS_FAILURE_FILE is set, the seed of every failing plan is
// appended there (one per line) — CI uploads the file as an artifact.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "core/batch_engine.h"
#include "core/chaos.h"
#include "core/framework.h"
#include "problems/synthetic.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace lddp {
namespace {

std::uint64_t master_seed() {
  if (const char* env = std::getenv("LDDP_STRESS_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 0xc4a05u;
}

/// Appends one failing plan seed to $LDDP_CHAOS_FAILURE_FILE (no-op when
/// unset). CI's chaos job uploads the file so a red run ships its repro.
void record_failing_seed(std::uint64_t plan_seed) {
  const char* path = std::getenv("LDDP_CHAOS_FAILURE_FILE");
  if (path == nullptr || *path == '\0') return;
  if (std::FILE* f = std::fopen(path, "a")) {
    std::fprintf(f, "%llu\n", static_cast<unsigned long long>(plan_seed));
    std::fclose(f);
  }
}

auto make_problem(ContributingSet deps, std::size_t rows, std::size_t cols,
                  std::uint64_t salt) {
  return problems::make_function_problem<std::uint64_t>(
      rows, cols, deps, salt,
      [deps, salt](std::size_t i, std::size_t j,
                   const Neighbors<std::uint64_t>& nb) {
        std::uint64_t r = salt + i * 1000003 + j * 10007;
        if (deps.has_w()) r = (r << 1) ^ nb.w;
        if (deps.has_nw()) r = (r >> 1) + nb.nw;
        if (deps.has_n()) r = r * 31 + nb.n;
        if (deps.has_ne()) r ^= nb.ne + 0x517cc1b727220a95ULL;
        return r;
      });
}

using Problem = decltype(make_problem(ContributingSet(1), 1, 1, 0));

struct Request {
  ContributingSet deps{0b0001};
  std::size_t rows = 1, cols = 1;
  std::uint64_t salt = 0;
  RunConfig cfg;
  bool cancel_upfront = false;  // token cancelled before submission
  double deadline_ms = -1.0;    // -1 inherits the engine default (none)
};

/// One chaos plan: an engine configuration + a handful of requests, all
/// derived from `plan_seed`. Returns false if any expectation failed (the
/// caller records the seed).
void run_plan(std::uint64_t plan_seed, bool inline_workers) {
  Rng rng(plan_seed);

  BatchConfig bc;
  bc.worker_threads =
      inline_workers ? 0 : static_cast<long long>(rng.uniform_int(1, 4));
  bc.concurrency = static_cast<std::size_t>(rng.uniform_int(1, 8));
  bc.threads_per_solve = static_cast<std::size_t>(rng.uniform_int(1, 2));
  bc.sched = rng.uniform_int(0, 2) == 0   ? BatchSched::kFifo
             : rng.uniform_int(0, 1) == 0 ? BatchSched::kSjf
                                          : BatchSched::kWfq;
  bc.pack_solves = rng.uniform_int(0, 1) == 1;
  bc.lane_pack = rng.uniform_int(0, 1) == 1 ? -1 : 0;
  bc.max_retries = static_cast<std::size_t>(rng.uniform_int(0, 3));
  bc.queue_capacity = 16;
  // Per-site rates: a few sites hot, the rest cold — exercises single-site
  // failure paths as often as uniform storms.
  bc.chaos.seed = plan_seed ^ 0x5eedULL;
  for (std::size_t s = 0; s < fault::kSiteCount; ++s) {
    const int dice = static_cast<int>(rng.uniform_int(0, 3));
    bc.chaos.rates[s] = dice == 0   ? 0.0
                        : dice == 1 ? 0.05
                        : dice == 2 ? 0.3
                                    : 0.9;
  }
  BatchEngine engine(bc);

  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(4, 8));
  std::vector<Request> requests;
  std::vector<Grid<std::uint64_t>> expected;
  std::vector<std::future<SolveResult<Problem>>> futures;
  std::vector<chaos::CancelSource> sources(n);
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  for (std::size_t k = 0; k < n; ++k) {
    Request r;
    r.deps = ContributingSet(
        static_cast<std::uint8_t>(rng.uniform_int(1, 15)));
    r.rows = static_cast<std::size_t>(rng.uniform_int(1, 48));
    r.cols = static_cast<std::size_t>(rng.uniform_int(1, 48));
    r.salt = rng();
    const int mode = static_cast<int>(rng.uniform_int(0, 3));
    r.cfg.mode = mode == 0   ? Mode::kCpuSerial
                 : mode == 1 ? Mode::kCpuParallel
                 : mode == 2 ? Mode::kGpu
                             : Mode::kHeterogeneous;
    r.cfg.tile = rng.uniform_int(0, 1) == 1 ? 8 : 0;
    r.cfg.fused_launches = rng.uniform_int(0, 1) == 1;
    r.cancel_upfront = rng.uniform_int(0, 9) == 0;  // 10 % of requests
    if (rng.uniform_int(0, 4) == 0)                 // 20 %: a deadline
      r.deadline_ms = rng.uniform_int(0, 1) == 0 ? 1e-6 : 1e6;

    const auto problem = make_problem(r.deps, r.rows, r.cols, r.salt);
    expected.push_back(solve(problem, serial).table);
    chaos::RequestOptions opts;
    if (r.cancel_upfront) {
      sources[k].request_cancel();
      opts.cancel = sources[k].token();
    }
    opts.deadline_ms = r.deadline_ms;
    auto f = engine.submit(problem, r.cfg, opts);
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
    requests.push_back(r);
  }

  const BatchReport rep = engine.wait();
  ASSERT_EQ(rep.solves, n);
  EXPECT_EQ(rep.ok_solves + rep.retried_solves + rep.degraded_solves +
                rep.deadline_solves + rep.cancelled_solves +
                rep.failed_solves,
            n);

  for (std::size_t k = 0; k < n; ++k) {
    const auto outcome = rep.items[k].outcome;
    SCOPED_TRACE("plan " + std::to_string(plan_seed) + " request " +
                 std::to_string(k) + " outcome " +
                 chaos::to_string(outcome));
    try {
      SolveResult<Problem> got = futures[k].get();
      // Bits: any fulfilled future — however many faults, retries and
      // degradations — is identical to the solo serial scan.
      EXPECT_EQ(got.table, expected[k]);
      EXPECT_TRUE(outcome == chaos::RequestOutcome::kOk ||
                  outcome == chaos::RequestOutcome::kRetried ||
                  outcome == chaos::RequestOutcome::kDegraded);
      EXPECT_FALSE(rep.items[k].failed);
    } catch (const fault::CancelledError&) {
      EXPECT_EQ(outcome, chaos::RequestOutcome::kCancelled);
    } catch (const fault::DeadlineExceededError&) {
      EXPECT_EQ(outcome, chaos::RequestOutcome::kDeadlineExceeded);
    } catch (const fault::InjectedFault&) {
      // Structured injected failure: only legal with a zero retry budget
      // (any budget ends on the injection-free reference rung).
      EXPECT_EQ(outcome, chaos::RequestOutcome::kFailed);
      EXPECT_EQ(bc.max_retries, 0u);
    } catch (const std::exception& e) {
      ADD_FAILURE() << "unstructured error escaped: " << e.what();
    }
    // A request cancelled before submission must never report success.
    if (requests[k].cancel_upfront)
      EXPECT_EQ(outcome, chaos::RequestOutcome::kCancelled);
  }
}

/// Runs `plans` chaos plans derived from the master seed; failing plan
/// seeds are appended to $LDDP_CHAOS_FAILURE_FILE.
void run_plans(std::uint64_t stream, std::size_t plans,
               bool inline_workers) {
  const std::uint64_t seed = master_seed();
  std::printf("LDDP_STRESS_SEED=%llu (chaos stream %llu, %zu plans, "
              "workers %s)\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(stream), plans,
              inline_workers ? "inline" : "real");
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + stream);
  for (std::size_t i = 0; i < plans; ++i) {
    const std::uint64_t plan_seed = rng();
    const bool failed_before = ::testing::Test::HasFailure();
    run_plan(plan_seed, inline_workers);
    if (!failed_before && ::testing::Test::HasFailure())
      record_failing_seed(plan_seed);
  }
}

// 520 plans across the streams (>= 500 per the harness contract), split
// so inline-deterministic and real-worker regimes both get coverage.
TEST(ChaosDifferential, InlinePlans) { run_plans(1, 200, true); }
TEST(ChaosDifferential, RealWorkerPlans) { run_plans(2, 200, false); }
TEST(ChaosDifferential, RealWorkerPlansHighConcurrency) {
  run_plans(3, 120, false);
}

/// Inline chaos plans replay bit-identically: same plan seed, same
/// outcomes, same retry counts, same merged timings.
TEST(ChaosDifferential, InlineReplayIsDeterministic) {
  const std::uint64_t seed = master_seed();
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 4);
  auto run_once = [](std::uint64_t plan_seed) {
    Rng prng(plan_seed);
    BatchConfig bc;
    bc.worker_threads = 0;
    bc.max_retries = static_cast<std::size_t>(prng.uniform_int(0, 3));
    bc.chaos = fault::FaultPlan::uniform(plan_seed ^ 0xabcdULL, 0.4);
    BatchEngine engine(bc);
    std::vector<std::future<SolveResult<Problem>>> futures;
    for (std::size_t k = 0; k < 8; ++k) {
      const auto p = make_problem(
          ContributingSet(static_cast<std::uint8_t>(prng.uniform_int(1, 15))),
          static_cast<std::size_t>(prng.uniform_int(4, 40)),
          static_cast<std::size_t>(prng.uniform_int(4, 40)), prng());
      RunConfig rc;
      rc.mode = k % 2 == 0 ? Mode::kGpu : Mode::kHeterogeneous;
      auto f = engine.submit(p, rc);
      EXPECT_TRUE(f.has_value());
      futures.push_back(std::move(*f));
    }
    const BatchReport rep = engine.wait();  // inline: drains everything
    for (auto& f : futures) {
      try {
        (void)f.get();
      } catch (const std::exception&) {
      }
    }
    return rep;
  };
  for (std::size_t i = 0; i < 20; ++i) {
    const std::uint64_t plan_seed = rng();
    const BatchReport a = run_once(plan_seed);
    const BatchReport b = run_once(plan_seed);
    ASSERT_EQ(a.solves, b.solves) << plan_seed;
    EXPECT_EQ(a.retry_attempts, b.retry_attempts) << plan_seed;
    EXPECT_DOUBLE_EQ(a.sim_makespan, b.sim_makespan) << plan_seed;
    for (std::size_t k = 0; k < a.items.size(); ++k) {
      EXPECT_EQ(a.items[k].outcome, b.items[k].outcome)
          << plan_seed << " item " << k;
      EXPECT_EQ(a.items[k].retries, b.items[k].retries)
          << plan_seed << " item " << k;
      EXPECT_DOUBLE_EQ(a.items[k].sim_end, b.items[k].sim_end)
          << plan_seed << " item " << k;
    }
  }
}

}  // namespace
}  // namespace lddp
