#include <gtest/gtest.h>

#include "cpu/cost_model.h"

namespace lddp::cpu {
namespace {

TEST(CpuCostModelTest, PresetsMatchPaperSpecs) {
  const CpuSpec high = CpuSpec::i7_980();
  EXPECT_EQ(high.cores, 6);
  EXPECT_EQ(high.logical_threads, 12);
  EXPECT_NEAR(high.clock_ghz, 3.33, 1e-9);
  const CpuSpec low = CpuSpec::i7_3632qm();
  EXPECT_EQ(low.cores, 4);
  EXPECT_EQ(low.logical_threads, 8);
  EXPECT_NEAR(low.clock_ghz, 2.2, 1e-9);
}

TEST(CpuCostModelTest, ZeroCellsIsFree) {
  const CpuSpec s = CpuSpec::i7_980();
  EXPECT_DOUBLE_EQ(cpu_front_seconds(s, WorkProfile{}, 0), 0.0);
}

TEST(CpuCostModelTest, MonotonicInCells) {
  const CpuSpec s = CpuSpec::i7_980();
  const WorkProfile w{};
  double prev = 0;
  for (std::size_t cells : {1u, 10u, 100u, 1000u, 100000u, 10000000u}) {
    const double t = cpu_front_seconds(s, w, cells);
    EXPECT_GT(t, 0.0);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(CpuCostModelTest, ParallelHasHigherFixedCostLowerSlope) {
  const CpuSpec s = CpuSpec::i7_980();
  const WorkProfile w{};
  // Tiny fronts: serial wins (no fork/join).
  EXPECT_LT(cpu_front_seconds(s, w, 4, false), cpu_front_seconds(s, w, 4, true));
  // Huge fronts: parallel wins.
  EXPECT_GT(cpu_front_seconds(s, w, 10000000, false),
            cpu_front_seconds(s, w, 10000000, true));
}

TEST(CpuCostModelTest, ParallelBeatsSerialSwitchesOnce) {
  const CpuSpec s = CpuSpec::i7_980();
  const WorkProfile w{};
  EXPECT_FALSE(parallel_beats_serial(s, w, 2));
  EXPECT_TRUE(parallel_beats_serial(s, w, 1 << 22));
}

TEST(CpuCostModelTest, FasterCpuIsFaster) {
  const WorkProfile w{};
  const double high = cpu_front_seconds(CpuSpec::i7_980(), w, 1 << 20);
  const double low = cpu_front_seconds(CpuSpec::i7_3632qm(), w, 1 << 20);
  EXPECT_LT(high, low);
}

TEST(CpuCostModelTest, MemoryAmplificationSlowsLargeFronts) {
  const CpuSpec s = CpuSpec::i7_980();
  const WorkProfile w{};
  const double base = cpu_front_seconds(s, w, 1 << 20, true, 1.0);
  const double amp = cpu_front_seconds(s, w, 1 << 20, true, 16.0);
  EXPECT_GT(amp, base * 4);  // memory-bound regime: ~16x traffic
}

TEST(CpuCostModelTest, PeakThroughputBoundedByMemoryAndCompute) {
  const CpuSpec s = CpuSpec::i7_980();
  WorkProfile w{};
  const double peak = cpu_peak_throughput(s, w);
  const double compute_bound =
      s.cores * (1.0 + s.smt_boost) * s.clock_ghz * 1e9 / w.cpu_cycles_per_cell;
  const double mem_bound = s.mem_bandwidth_gbs * 1e9 / w.bytes_per_cell;
  EXPECT_DOUBLE_EQ(peak, std::min(compute_bound, mem_bound));
}

TEST(CpuCostModelTest, InvalidAmplificationThrows) {
  const CpuSpec s = CpuSpec::i7_980();
  EXPECT_THROW(cpu_front_seconds(s, WorkProfile{}, 10, true, 0.5), CheckError);
}

}  // namespace
}  // namespace lddp::cpu
