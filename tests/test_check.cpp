#include <gtest/gtest.h>

#include "util/check.h"

namespace lddp {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(LDDP_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(LDDP_CHECK_MSG(true, "never shown"));
}

TEST(CheckTest, FailingCheckThrowsWithLocation) {
  try {
    LDDP_CHECK(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
  }
}

TEST(CheckTest, MessageIsIncluded) {
  try {
    LDDP_CHECK_MSG(false, "ctx " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

TEST(CheckTest, DcheckActsLikeCheckInDebug) {
#ifdef NDEBUG
  EXPECT_NO_THROW(LDDP_DCHECK(false));
#else
  EXPECT_THROW(LDDP_DCHECK(false), CheckError);
#endif
}

}  // namespace
}  // namespace lddp
