// Frontier storage tier: checkpointed linear-space tables must be
// bit-identical to the full-table solve — for every contributing set,
// every execution mode, ragged and degenerate shapes, and every
// checkpoint interval including the K = 1 and K >= rows extremes. The
// probe problem mixes i, j and the declared neighbours with
// multiplicative hashing (same construction as the strategies suite), so
// a single wrong rematerialized cell anywhere changes the values read.
//
// Also covered: traceback identity on the real alignment problems,
// memory accounting (peak_table_bytes, BufferPool high-water), a chaos
// fault mid-rematerialization retrying cleanly, and the batch engine's
// frontier submission path (solo, lane-cohort, and memory-budget
// admission).
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "core/batch_engine.h"
#include "core/framework.h"
#include "core/lane_kernels.h"
#include "problems/alignment.h"
#include "problems/gotoh.h"
#include "problems/image.h"
#include "problems/levenshtein.h"
#include "problems/seam_carving.h"
#include "problems/synthetic.h"
#include "util/fault_injection.h"

namespace lddp {
namespace {

using V = std::uint64_t;

struct Case {
  int mask;  // contributing set (1..15)
  std::size_t rows, cols;
};

auto make_probe(const Case& c) {
  const ContributingSet deps(static_cast<std::uint8_t>(c.mask));
  return problems::make_function_problem<V>(
      c.rows, c.cols, deps, /*bound=*/0x9e3779b97f4a7c15ULL,
      [deps](std::size_t i, std::size_t j, const Neighbors<V>& nb) {
        V r = 0xcbf29ce484222325ULL;
        r = (r ^ (static_cast<V>(i) + 1)) * 0x100000001b3ULL;
        r = (r ^ (static_cast<V>(j) + 3)) * 0x100000001b3ULL;
        if (deps.has_w()) r = (r ^ nb.w) * 0x100000001b3ULL;
        if (deps.has_nw()) r = (r ^ nb.nw) * 0x100000001b3ULL;
        if (deps.has_n()) r = (r ^ nb.n) * 0x100000001b3ULL;
        if (deps.has_ne()) r = (r ^ nb.ne) * 0x100000001b3ULL;
        return r;
      });
}

/// Every cell of the frontier table against the reference grid — a full
/// forward scan is the adversarial read order for the band cache (each
/// row of a band is read before the walk moves below the checkpoint).
template <typename Table>
void expect_all_cells_equal(const Table& got, const Grid<V>& ref,
                            const std::string& what) {
  ASSERT_EQ(got.rows(), ref.rows()) << what;
  ASSERT_EQ(got.cols(), ref.cols()) << what;
  for (std::size_t i = 0; i < ref.rows(); ++i)
    for (std::size_t j = 0; j < ref.cols(); ++j)
      ASSERT_EQ(got.at(i, j), ref.at(i, j))
          << what << " cell (" << i << ", " << j << ")";
}

class FrontierAllSetsTest : public ::testing::TestWithParam<Case> {};

TEST_P(FrontierAllSetsTest, AllModesMatchFullTable) {
  const Case c = GetParam();
  const auto probe = make_probe(c);

  RunConfig ref_cfg;
  ref_cfg.mode = Mode::kCpuSerial;
  const auto ref = solve(probe, ref_cfg);

  const Mode modes[] = {Mode::kCpuSerial, Mode::kCpuParallel, Mode::kGpu,
                        Mode::kHeterogeneous, Mode::kAuto};
  for (const Mode mode : modes) {
    // K = 0 is the ~sqrt(rows) model default; K = 3 forces many short
    // bands even on the smallest shapes.
    for (const std::size_t k : {std::size_t{0}, std::size_t{3}}) {
      RunConfig cfg;
      cfg.mode = mode;
      cfg.storage = Storage::kFrontier;
      cfg.checkpoint_interval = k;
      const auto got = solve_frontier(probe, cfg);
      expect_all_cells_equal(got.table, ref.table,
                             "mode=" + to_string(mode) +
                                 " K=" + std::to_string(k));
    }
  }
}

// Storage::kFull routes through the classic solve behind the facade and
// must also be bit-identical; kAuto currently resolves to the frontier
// tier for every canonical pattern.
TEST_P(FrontierAllSetsTest, FullTierFacadeMatches) {
  const Case c = GetParam();
  const auto probe = make_probe(c);

  RunConfig ref_cfg;
  ref_cfg.mode = Mode::kCpuSerial;
  const auto ref = solve(probe, ref_cfg);

  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  cfg.storage = Storage::kFull;
  const auto full = solve_frontier(probe, cfg);
  EXPECT_FALSE(full.table.frontier());
  expect_all_cells_equal(full.table, ref.table, "full facade");

  cfg.storage = Storage::kAuto;
  const auto aut = solve_frontier(probe, cfg);
  expect_all_cells_equal(aut.table, ref.table, "auto tier");
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const std::size_t shapes[][2] = {{1, 1},  {1, 9},  {9, 1},  {2, 2},
                                   {6, 6},  {5, 11}, {11, 5}, {17, 17},
                                   {23, 8}, {8, 23}};
  for (int mask = 1; mask <= 15; ++mask)
    for (const auto& s : shapes) cases.push_back(Case{mask, s[0], s[1]});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Exhaustive, FrontierAllSetsTest, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      const ContributingSet cs(static_cast<std::uint8_t>(info.param.mask));
      std::string name = cs.to_string() + "_" +
                         std::to_string(info.param.rows) + "x" +
                         std::to_string(info.param.cols);
      for (char& ch : name)
        if (ch == '+') ch = '_';
      return name;
    });

// K = 1 keeps every row resident (no rematerialization should ever run);
// K >= rows keeps only row 0 and the last row (every interior read
// rematerializes from the single top checkpoint).
TEST(FrontierStorage, CheckpointIntervalExtremes) {
  const Case c{0b1111, 33, 29};
  const auto probe = make_probe(c);
  RunConfig ref_cfg;
  ref_cfg.mode = Mode::kCpuSerial;
  const auto ref = solve(probe, ref_cfg);

  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  cfg.storage = Storage::kFrontier;

  cfg.checkpoint_interval = 1;
  const auto dense = solve_frontier(probe, cfg);
  EXPECT_EQ(dense.stats.checkpoint_interval, 1u);
  EXPECT_EQ(dense.stats.checkpoint_rows, 33u);
  expect_all_cells_equal(dense.table, ref.table, "K=1");
  EXPECT_EQ(dense.table.remat_stats().bands, 0u)
      << "K=1 keeps every row; nothing should rematerialize";

  cfg.checkpoint_interval = 1000;  // >= rows: only row 0 is a checkpoint
  const auto sparse = solve_frontier(probe, cfg);
  EXPECT_EQ(sparse.stats.checkpoint_rows, 1u);
  expect_all_cells_equal(sparse.table, ref.table, "K>=rows");
  EXPECT_GT(sparse.table.remat_stats().bands, 0u);
}

// The model default resolves to ~sqrt(rows) clamped to [4, 512], and the
// frontier tier's resident + transient high-water stays far below the
// full grid.
TEST(FrontierStorage, MemoryAccounting) {
  const std::size_t n = 1024;
  problems::LevenshteinProblem p(problems::random_sequence(n, 1),
                                 problems::random_sequence(n, 2));
  const std::size_t full_bytes =
      p.rows() * p.cols() * sizeof(std::int32_t);

  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  cfg.storage = Storage::kFrontier;
  const auto r = solve_frontier(p, cfg);

  EXPECT_GE(r.stats.checkpoint_interval, 4u);
  EXPECT_LE(r.stats.checkpoint_interval, 512u);
  EXPECT_EQ(r.stats.checkpoint_rows,
            (p.rows() - 1) / r.stats.checkpoint_interval + 1);
  EXPECT_GT(r.stats.peak_table_bytes, 0u);
  EXPECT_LT(r.stats.peak_table_bytes, full_bytes / 4)
      << "frontier high-water should be a small fraction of the grid";
  EXPECT_EQ(r.table.resident_bytes(),
            (r.stats.checkpoint_rows + 1) * p.cols() * sizeof(std::int32_t));

  // Reads drive remat scratch; peak_bytes tracks the largest band.
  EXPECT_EQ(r.table.at(n, n), solve(p, RunConfig{}).table.at(n, n));
  const auto mid = r.table.at(n / 2 + 1, n / 2);
  (void)mid;
  EXPECT_GT(r.table.remat_stats().bands, 0u);
  EXPECT_GE(r.table.peak_bytes(), r.table.resident_bytes());
}

// A shared BufferPool serving frontier solves reports live/peak bytes
// and reuse: the second identical solve should hit the arena cache.
TEST(FrontierStorage, BufferPoolHighWater) {
  const auto probe = make_probe(Case{0b0111, 64, 64});
  sim::BufferPool pool;
  RunConfig cfg;
  cfg.mode = Mode::kGpu;
  cfg.storage = Storage::kFrontier;
  cfg.buffer_pool = &pool;

  const auto first = solve_frontier(probe, cfg);
  const auto s1 = pool.stats();
  EXPECT_GT(s1.misses, 0u);
  EXPECT_GT(s1.peak_live_bytes, 0u);

  const auto second = solve_frontier(probe, cfg);
  const auto s2 = pool.stats();
  EXPECT_GT(s2.hits, s1.hits) << "second solve should reuse the arena";
  EXPECT_GE(s2.peak_live_bytes, s1.peak_live_bytes);
  expect_all_cells_equal(second.table, solve(probe, RunConfig{}).table,
                         "pooled frontier");
}

// Tracebacks on the real problems: identical alignments/seams whether
// the cells come from the full grid or on-demand rematerialization.
TEST(FrontierStorage, TracebacksMatchFullTable) {
  const std::size_t n = 160;
  RunConfig full_cfg;  // default: classic full-table solve()
  RunConfig fr_cfg;
  fr_cfg.storage = Storage::kFrontier;
  fr_cfg.checkpoint_interval = 7;  // force many band walks

  {
    problems::NeedlemanWunschProblem p(problems::random_sequence(n, 3),
                                       problems::random_sequence(n, 4));
    const auto ref = nw_traceback(p, solve(p, full_cfg).table);
    const auto got = nw_traceback(p, solve_frontier(p, fr_cfg).table);
    EXPECT_EQ(got.a, ref.a);
    EXPECT_EQ(got.b, ref.b);
    EXPECT_EQ(got.score, ref.score);
  }
  {
    problems::SmithWatermanProblem p(problems::random_sequence(n, 5),
                                     problems::random_sequence(n, 6));
    const auto full = solve(p, full_cfg).table;
    const auto fr = solve_frontier(p, fr_cfg).table;
    EXPECT_EQ(problems::sw_best_score(fr), problems::sw_best_score(full));
    const auto ref = sw_traceback(p, full);
    const auto got = sw_traceback(p, fr);
    EXPECT_EQ(got.a, ref.a);
    EXPECT_EQ(got.b, ref.b);
    EXPECT_EQ(got.score, ref.score);
  }
  {
    problems::GotohProblem p(problems::random_sequence(n, 7),
                             problems::random_sequence(n, 8));
    const auto full = solve(p, full_cfg).table;
    const auto fr = solve_frontier(p, fr_cfg).table;
    EXPECT_EQ(problems::gotoh_score(fr), problems::gotoh_score(full));
    const auto ref = gotoh_traceback(p, full);
    const auto got = gotoh_traceback(p, fr);
    EXPECT_EQ(got.a, ref.a);
    EXPECT_EQ(got.b, ref.b);
    EXPECT_EQ(got.score, ref.score);
  }
  {
    problems::SeamCarveProblem p(problems::dual_gradient_energy(
        problems::plasma_image(n, n, 9)));
    const auto ref = problems::extract_seam(solve(p, full_cfg).table);
    const auto got =
        problems::extract_seam(solve_frontier(p, fr_cfg).table);
    EXPECT_EQ(got, ref);
    EXPECT_EQ(problems::seam_energy(p.energy(), got),
              problems::seam_energy(p.energy(), ref));
  }
}

// An injected fault mid-rematerialization must leave the table clean: the
// same read retried after the chaos scope closes serves the correct
// value, and no partially-built band is ever consulted.
TEST(FrontierStorage, ChaosFaultMidRematRetriesCleanly) {
  const auto probe = make_probe(Case{0b1111, 40, 24});
  RunConfig ref_cfg;
  const auto ref = solve(probe, ref_cfg);

  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  cfg.storage = Storage::kFrontier;
  cfg.checkpoint_interval = 8;
  const auto r = solve_frontier(probe, cfg);

  fault::FaultPlan plan;
  plan.seed = 42;
  plan.set_rate(fault::Site::kRematerialize, 1.0);
  {
    fault::FaultScope scope(&plan, /*solve=*/1, /*attempt=*/0);
    EXPECT_THROW((void)r.table.at(9, 9), fault::InjectedFault);
    EXPECT_THROW((void)r.table.at(17, 3), fault::InjectedFault);
  }
  // Scope closed: the same reads succeed and every cell is still exact.
  EXPECT_EQ(r.table.at(9, 9), ref.table.at(9, 9));
  EXPECT_EQ(r.table.at(17, 3), ref.table.at(17, 3));
  expect_all_cells_equal(r.table, ref.table, "post-fault");
}

/// A lane-eligible frontier request: small, serial, batch kernels on.
auto make_lane_case(std::uint64_t salt) {
  return problems::make_function_problem<std::uint64_t>(
      40, 40, ContributingSet(0b0111), salt,
      [salt](std::size_t i, std::size_t j,
             const Neighbors<std::uint64_t>& nb) {
        return (nb.w << 1) ^ (nb.nw + salt) ^ (nb.n * 31) ^
               (i * 1000003 + j);
      });
}

TEST(FrontierBatch, SubmitFrontierMatchesSolo) {
  const auto p = make_lane_case(7);
  RunConfig rc;
  rc.mode = Mode::kHeterogeneous;
  rc.storage = Storage::kFrontier;
  const auto solo = solve_frontier(p, rc);

  BatchConfig bc;
  bc.worker_threads = 0;
  BatchEngine engine(bc);
  auto f = engine.submit_frontier(p, rc);
  ASSERT_TRUE(f.has_value());
  const BatchReport rep = engine.wait();
  auto got = f->get();

  ASSERT_EQ(rep.solves, 1u);
  EXPECT_TRUE(got.table.frontier());
  EXPECT_EQ(got.stats.checkpoint_interval, solo.stats.checkpoint_interval);
  for (std::size_t i = 0; i < p.rows(); ++i)
    for (std::size_t j = 0; j < p.cols(); ++j)
      ASSERT_EQ(got.table.at(i, j), solo.table.at(i, j))
          << "(" << i << ", " << j << ")";
}

// Same-class small serial frontier requests ride the inter-solve lane
// cohort; the harvested checkpoint tables must still serve exact cells.
TEST(FrontierBatch, LaneCohortFrontierIdentity) {
  BatchConfig bc;
  bc.worker_threads = 0;
  BatchEngine engine(bc);

  RunConfig rc;
  rc.mode = Mode::kCpuSerial;
  rc.storage = Storage::kFrontier;
  rc.checkpoint_interval = 5;

  using P = decltype(make_lane_case(0));
  std::vector<std::future<FrontierSolveResult<P>>> futures;
  std::vector<P> probs;
  for (std::uint64_t s = 0; s < 6; ++s) probs.push_back(make_lane_case(s));
  for (const auto& p : probs) {
    auto f = engine.submit_frontier(p, rc);
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  const BatchReport rep = engine.wait();
  ASSERT_EQ(rep.solves, 6u);
  if (lanes::preferred_lane_width() > 1)
    EXPECT_GT(rep.lane_packed_solves, 0u)
        << "same-class serial frontier requests should cohort";

  for (std::size_t k = 0; k < probs.size(); ++k) {
    const auto ref = solve(probs[k], RunConfig{});
    auto got = futures[k].get();
    for (std::size_t i = 0; i < probs[k].rows(); ++i)
      for (std::size_t j = 0; j < probs[k].cols(); ++j)
        ASSERT_EQ(got.table.at(i, j), ref.table.at(i, j))
            << "lane " << k << " cell (" << i << ", " << j << ")";
  }
}

// Admission by table-memory budget: with a budget that fits one request,
// in-flight table bytes never exceed it, everything still completes, and
// an over-budget request force-admits alone instead of starving.
TEST(FrontierBatch, MemoryBudgetAdmission) {
  const auto p = make_lane_case(3);
  RunConfig rc;
  rc.mode = Mode::kCpuSerial;
  rc.storage = Storage::kFrontier;

  // Estimate one request's charge by running an unbudgeted engine first.
  BatchConfig probe_bc;
  probe_bc.worker_threads = 0;
  BatchEngine probe_engine(probe_bc);
  auto pf = probe_engine.submit_frontier(p, rc);
  ASSERT_TRUE(pf.has_value());
  const std::size_t one = probe_engine.wait().peak_inflight_table_bytes;
  ASSERT_GT(one, 0u);
  (void)pf->get();

  BatchConfig bc;
  bc.worker_threads = 2;
  bc.memory_budget_bytes = one + one / 2;  // fits one, not two
  BatchEngine engine(bc);
  std::vector<std::future<FrontierSolveResult<decltype(make_lane_case(0))>>>
      futures;
  for (int k = 0; k < 5; ++k) {
    auto f = engine.submit_frontier(p, rc);
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  const BatchReport rep = engine.wait();
  EXPECT_EQ(rep.solves, 5u);
  EXPECT_EQ(rep.ok_solves, 5u);
  EXPECT_EQ(rep.memory_budget_bytes, bc.memory_budget_bytes);
  EXPECT_LE(rep.peak_inflight_table_bytes, bc.memory_budget_bytes);
  for (auto& f : futures) EXPECT_NO_THROW((void)f.get());

  // A budget smaller than any single request: the idle-engine force-admit
  // runs them one at a time rather than deadlocking.
  BatchConfig tiny;
  tiny.worker_threads = 2;
  tiny.memory_budget_bytes = 1;
  BatchEngine starved(tiny);
  std::vector<std::future<FrontierSolveResult<decltype(make_lane_case(0))>>>
      fs;
  for (int k = 0; k < 3; ++k) {
    auto f = starved.submit_frontier(p, rc);
    ASSERT_TRUE(f.has_value());
    fs.push_back(std::move(*f));
  }
  const BatchReport srep = starved.wait();
  EXPECT_EQ(srep.ok_solves, 3u);
  for (auto& f : fs) EXPECT_NO_THROW((void)f.get());
}

}  // namespace
}  // namespace lddp
