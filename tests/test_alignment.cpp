#include <gtest/gtest.h>

#include "core/framework.h"
#include "problems/alignment.h"

namespace lddp::problems {
namespace {

TEST(NeedlemanWunschTest, IdenticalSequencesScorePerfectly) {
  NeedlemanWunschProblem p("ACGT", "ACGT");
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto r = solve(p, cfg);
  EXPECT_EQ(r.table.at(4, 4), 8);  // 4 matches x +2
}

TEST(NeedlemanWunschTest, AllGapsBaseline) {
  NeedlemanWunschProblem p("AAAA", "");
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto r = solve(p, cfg);
  EXPECT_EQ(r.table.at(4, 0), -8);  // 4 gaps x -2
}

TEST(NeedlemanWunschTest, TracebackReconstructsValidAlignment) {
  const std::string a = random_sequence(60, 51);
  const std::string b = random_sequence(70, 52);
  NeedlemanWunschProblem p(a, b);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  const auto r = solve(p, cfg);
  const Alignment al = nw_traceback(p, r.table);
  // Same length, gaps never aligned to gaps, stripped strings recover the
  // inputs, and the recomputed score equals the table's corner.
  ASSERT_EQ(al.a.size(), al.b.size());
  std::string sa, sb;
  std::int32_t score = 0;
  for (std::size_t k = 0; k < al.a.size(); ++k) {
    ASSERT_FALSE(al.a[k] == '-' && al.b[k] == '-');
    if (al.a[k] != '-') sa += al.a[k];
    if (al.b[k] != '-') sb += al.b[k];
    if (al.a[k] == '-' || al.b[k] == '-')
      score += p.scores().gap;
    else
      score += al.a[k] == al.b[k] ? p.scores().match : p.scores().mismatch;
  }
  EXPECT_EQ(sa, a);
  EXPECT_EQ(sb, b);
  EXPECT_EQ(score, r.table.at(a.size(), b.size()));
  EXPECT_EQ(al.score, r.table.at(a.size(), b.size()));
}

TEST(NeedlemanWunschTest, AllModesAgree) {
  NeedlemanWunschProblem p(random_sequence(100, 53),
                           random_sequence(120, 54));
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);
  for (Mode mode : {Mode::kCpuParallel, Mode::kGpu, Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    EXPECT_EQ(solve(p, cfg).table, ref.table) << to_string(mode);
  }
}

TEST(SmithWatermanTest, NonNegativeEverywhere) {
  SmithWatermanProblem p(random_sequence(80, 61), random_sequence(90, 62));
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  const auto r = solve(p, cfg);
  for (std::size_t i = 0; i < r.table.rows(); ++i)
    for (std::size_t j = 0; j < r.table.cols(); ++j)
      EXPECT_GE(r.table.at(i, j), 0);
}

TEST(SmithWatermanTest, FindsEmbeddedMotif) {
  // Plant a strong common substring inside two otherwise-random sequences.
  const std::string motif = "ACGTACGTACGTACGT";
  const std::string a = random_sequence(40, 63) + motif +
                        random_sequence(40, 64);
  const std::string b = random_sequence(30, 65) + motif +
                        random_sequence(30, 66);
  SmithWatermanProblem p(a, b);
  RunConfig cfg;
  cfg.mode = Mode::kGpu;
  const auto r = solve(p, cfg);
  EXPECT_GE(sw_best_score(r.table),
            static_cast<std::int32_t>(motif.size()) * p.scores().match);
}

TEST(SmithWatermanTest, LocalScoreAtLeastZeroForDisjointAlphabets) {
  SmithWatermanProblem p(random_sequence(50, 67, "AC"),
                         random_sequence(50, 68, "GT"));
  RunConfig cfg;
  cfg.mode = Mode::kCpuParallel;
  const auto r = solve(p, cfg);
  EXPECT_EQ(sw_best_score(r.table), 0);
}

TEST(SmithWatermanTest, TracebackRecoversPlantedMotif) {
  const std::string motif = "ACGTACGTACGTACGT";
  const std::string a = random_sequence(30, 91, "AC") + motif +
                        random_sequence(30, 92, "AC");
  const std::string b = random_sequence(25, 93, "GT") + motif +
                        random_sequence(25, 94, "GT");
  SmithWatermanProblem p(a, b);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  const auto table = solve(p, cfg).table;
  const Alignment al = sw_traceback(p, table);
  EXPECT_EQ(al.score, sw_best_score(table));
  // The local alignment must contain the planted motif.
  EXPECT_NE(al.a.find(motif), std::string::npos);
  EXPECT_NE(al.b.find(motif), std::string::npos);
  // And rescoring the path reproduces the score.
  std::int32_t score = 0;
  for (std::size_t k = 0; k < al.a.size(); ++k) {
    if (al.a[k] == '-' || al.b[k] == '-')
      score += p.scores().gap;
    else
      score += al.a[k] == al.b[k] ? p.scores().match : p.scores().mismatch;
  }
  EXPECT_EQ(score, al.score);
}

TEST(SmithWatermanTest, AllModesAgree) {
  SmithWatermanProblem p(random_sequence(90, 71), random_sequence(85, 72));
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);
  for (Mode mode : {Mode::kCpuParallel, Mode::kGpu, Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    EXPECT_EQ(solve(p, cfg).table, ref.table) << to_string(mode);
  }
}

TEST(RandomSequenceTest, DeterministicAndAlphabetBound) {
  const std::string a = random_sequence(100, 7);
  const std::string b = random_sequence(100, 7);
  EXPECT_EQ(a, b);
  for (char c : a) EXPECT_NE(std::string("ACGT").find(c), std::string::npos);
  EXPECT_NE(a, random_sequence(100, 8));
}

}  // namespace
}  // namespace lddp::problems
