// Parameterized monotonicity and consistency sweeps over the analytic cost
// models — the properties the scheduling heuristics rely on.
#include <gtest/gtest.h>

#include "cpu/cost_model.h"
#include "core/strategies/heuristics.h"
#include "sim/kernel.h"

namespace lddp {
namespace {

class SizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SizeSweep, KernelMonotonicInCells) {
  const auto g = sim::GpuSpec::tesla_k20();
  const std::size_t n = GetParam();
  EXPECT_LE(sim::kernel_seconds(g, sim::KernelInfo{}, n),
            sim::kernel_seconds(g, sim::KernelInfo{}, n * 2) + 1e-15);
}

TEST_P(SizeSweep, KernelMonotonicInAmplification) {
  const auto g = sim::GpuSpec::tesla_k20();
  const std::size_t n = GetParam();
  sim::KernelInfo a, b;
  a.mem_amplification = 1.0;
  b.mem_amplification = 2.0;
  EXPECT_LE(sim::kernel_seconds(g, a, n), sim::kernel_seconds(g, b, n));
}

TEST_P(SizeSweep, TransferMonotonicInBytes) {
  const auto g = sim::GpuSpec::gt650m();
  const std::size_t n = GetParam();
  for (auto kind : {sim::MemoryKind::kPinned, sim::MemoryKind::kPageable})
    EXPECT_LT(sim::transfer_seconds(g, n, kind),
              sim::transfer_seconds(g, n * 4, kind));
}

TEST_P(SizeSweep, CpuFrontMonotonicInCells) {
  const auto c = cpu::CpuSpec::i7_980();
  const std::size_t n = GetParam();
  for (bool parallel : {false, true}) {
    EXPECT_LE(cpu::cpu_front_seconds(c, cpu::WorkProfile{}, n, parallel),
              cpu::cpu_front_seconds(c, cpu::WorkProfile{}, 2 * n, parallel) +
                  1e-15);
  }
}

TEST_P(SizeSweep, StreamedNeverSlowerThanForkJoin) {
  const auto c = cpu::CpuSpec::i7_980();
  const std::size_t n = GetParam();
  EXPECT_LE(cpu::cpu_front_seconds(c, cpu::WorkProfile{}, n, true, 1.0, true),
            cpu::cpu_front_seconds(c, cpu::WorkProfile{}, n, true, 1.0,
                                   false));
}

TEST_P(SizeSweep, TiledFrontMonotonicInTiles) {
  const auto c = cpu::CpuSpec::i7_3632qm();
  const std::size_t n = GetParam();
  EXPECT_LE(cpu::cpu_tiled_front_seconds(c, cpu::WorkProfile{}, n, 1024),
            cpu::cpu_tiled_front_seconds(c, cpu::WorkProfile{}, 2 * n, 1024) +
                1e-15);
}

TEST_P(SizeSweep, HeavierWorkCostsMore) {
  const std::size_t n = GetParam();
  cpu::WorkProfile light, heavy;
  heavy.cpu_cycles_per_cell = light.cpu_cycles_per_cell * 3;
  heavy.gpu_cycles_per_cell = light.gpu_cycles_per_cell * 3;
  heavy.bytes_per_cell = light.bytes_per_cell * 3;
  const auto c = cpu::CpuSpec::i7_980();
  const auto g = sim::GpuSpec::tesla_k20();
  EXPECT_LE(cpu::cpu_front_seconds(c, light, n),
            cpu::cpu_front_seconds(c, heavy, n));
  sim::KernelInfo li, hi;
  li.work = light;
  hi.work = heavy;
  EXPECT_LE(sim::kernel_seconds(g, li, n), sim::kernel_seconds(g, hi, n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(1u, 7u, 64u, 500u, 4096u, 65536u,
                                           1u << 20));

TEST(HeuristicConsistencyTest, CrossoverSeparatesWinners) {
  // Below the crossover the CPU's best front price wins; above, the GPU's.
  const auto platform = sim::PlatformSpec::hetero_high();
  const sim::KernelInfo kernel;
  const std::size_t fc =
      detail::gpu_crossover_front_cells(platform, kernel, 1 << 22);
  ASSERT_GT(fc, 2u);
  ASSERT_LT(fc, 1u << 22);
  auto cpu_best = [&](std::size_t f) {
    return std::min(
        cpu::cpu_front_seconds(platform.cpu, kernel.work, f, true, 1.0, true),
        cpu::cpu_front_seconds(platform.cpu, kernel.work, f, false));
  };
  auto gpu_cost = [&](std::size_t f) {
    return sim::kernel_seconds(platform.gpu, kernel, f) +
           sim::transfer_seconds(platform.gpu, sizeof(double),
                                 sim::MemoryKind::kPinned);
  };
  EXPECT_LE(cpu_best(fc / 2), gpu_cost(fc / 2));
  EXPECT_LE(gpu_cost(fc * 2), cpu_best(fc * 2));
}

TEST(HeuristicConsistencyTest, BalancedShareNeverWorseThanEndpoints) {
  // The scanned split must beat (or tie) both all-CPU and all-GPU at its
  // own objective.
  const auto platform = sim::PlatformSpec::hetero_high();
  const sim::KernelInfo kernel;
  for (std::size_t f : {512u, 4096u, 65536u}) {
    const long long s =
        detail::balanced_t_share(platform, kernel, f, 1.0, 0.0, 0.0);
    auto objective = [&](std::size_t share) {
      const double cpu =
          share == 0 ? 0.0
                     : cpu::cpu_front_seconds(platform.cpu, kernel.work,
                                              share, true, 1.0, true);
      const double gpu =
          sim::kernel_seconds(platform.gpu, kernel, f - share);
      return std::max(cpu, gpu);
    };
    const double at_best = objective(static_cast<std::size_t>(s));
    EXPECT_LE(at_best, objective(0) + 1e-15) << f;
    EXPECT_LE(at_best, objective(f) + 1e-15) << f;
  }
}

}  // namespace
}  // namespace lddp
