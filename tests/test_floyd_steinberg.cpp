#include <gtest/gtest.h>

#include <cmath>

#include "core/framework.h"
#include "problems/floyd_steinberg.h"

namespace lddp::problems {
namespace {

TEST(FloydSteinbergTest, ClassifiesKnightMove) {
  FloydSteinbergProblem p(gradient_image(4, 4));
  EXPECT_EQ(classify(p.deps()), Pattern::kKnightMove);
  EXPECT_EQ(transfer_need(p.deps()), TransferNeed::kTwoWay);
}

TEST(FloydSteinbergTest, UniformBlackAndWhiteAreFixedPoints) {
  for (int level : {0, 255}) {
    GrayImage img(8, 8, static_cast<std::uint8_t>(level));
    FloydSteinbergProblem p(img);
    RunConfig cfg;
    cfg.mode = Mode::kCpuSerial;
    const auto r = solve(p, cfg);
    for (std::size_t i = 0; i < 8; ++i)
      for (std::size_t j = 0; j < 8; ++j) {
        EXPECT_EQ(r.table.at(i, j).out, level);
        EXPECT_DOUBLE_EQ(r.table.at(i, j).err, 0.0);
      }
  }
}

TEST(FloydSteinbergTest, PullMatchesPushUpToTies) {
  // The pull (gather) formulation reassociates the floating-point error
  // sums of the classic push algorithm. Accumulated intensities must agree
  // tightly; output pixels may differ only on near-threshold ties.
  const GrayImage img = plasma_image(64, 64, 9);
  FloydSteinbergProblem p(img);
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto pull = solve(p, cfg);
  const FsPushResult push = floyd_steinberg_push_reference(img);
  int flips = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 64; ++j) {
      const double acc_pull = static_cast<double>(pull.table.at(i, j).out) +
                              pull.table.at(i, j).err;
      EXPECT_NEAR(acc_pull, push.acc.at(i, j), 1e-6);
      if (pull.table.at(i, j).out != push.out.at(i, j)) {
        ++flips;
        EXPECT_NEAR(push.acc.at(i, j), 128.0, 1e-6);
      }
    }
  }
  EXPECT_EQ(flips, 0);  // ties at exactly 128.0 are vanishingly unlikely
}

TEST(FloydSteinbergTest, AverageIntensityPreserved) {
  // Error diffusion conserves total intensity up to the residual carried
  // off the image edges: means should agree within a couple of levels.
  const GrayImage img = gradient_image(128, 128);
  FloydSteinbergProblem p(img);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  const auto r = solve(p, cfg);
  double in_sum = 0, out_sum = 0;
  for (std::size_t i = 0; i < 128; ++i)
    for (std::size_t j = 0; j < 128; ++j) {
      in_sum += img.at(i, j);
      out_sum += r.table.at(i, j).out;
    }
  EXPECT_NEAR(in_sum / (128 * 128), out_sum / (128 * 128), 2.0);
}

TEST(FloydSteinbergTest, AllModesBitwiseAgree) {
  const GrayImage img = plasma_image(56, 72, 10);
  FloydSteinbergProblem p(img);
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);
  for (Mode mode : {Mode::kCpuParallel, Mode::kGpu, Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    const auto r = solve(p, cfg);
    for (std::size_t i = 0; i < 56; ++i)
      for (std::size_t j = 0; j < 72; ++j) {
        ASSERT_EQ(r.table.at(i, j).out, ref.table.at(i, j).out)
            << to_string(mode) << " @" << i << "," << j;
        ASSERT_DOUBLE_EQ(r.table.at(i, j).err, ref.table.at(i, j).err)
            << to_string(mode) << " @" << i << "," << j;
      }
  }
}

TEST(FloydSteinbergTest, ErrorsAreBounded) {
  // |err| <= 128: the quantizer always picks the nearer level... with
  // diffusion overshoot the residual stays within one quantization step.
  const GrayImage img = noise_image(64, 64, 11);
  FloydSteinbergProblem p(img);
  RunConfig cfg;
  cfg.mode = Mode::kGpu;
  const auto r = solve(p, cfg);
  for (std::size_t i = 0; i < 64; ++i)
    for (std::size_t j = 0; j < 64; ++j)
      EXPECT_LE(std::abs(r.table.at(i, j).err), 255.0);
}

TEST(FloydSteinbergTest, DitheredImageExtraction) {
  const GrayImage img = gradient_image(16, 16);
  FloydSteinbergProblem p(img);
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto r = solve(p, cfg);
  const GrayImage out = dithered_image(r.table);
  EXPECT_EQ(out.rows(), 16u);
  EXPECT_EQ(out.cols(), 16u);
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t j = 0; j < 16; ++j)
      EXPECT_EQ(out.at(i, j), r.table.at(i, j).out);
}

}  // namespace
}  // namespace lddp::problems
