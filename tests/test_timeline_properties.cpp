// Property tests on the discrete-event timeline with randomized operation
// DAGs: schedule legality (no resource overlap, dependencies respected),
// conservation (makespan vs busy time), and determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/timeline.h"
#include "util/rng.h"

namespace lddp::sim {
namespace {

struct RandomSchedule {
  Timeline tl;
  std::vector<Timeline::ResourceId> resources;
  std::vector<OpId> ops;
  std::vector<double> durations;
  std::vector<std::vector<OpId>> deps;
};

RandomSchedule build(std::uint64_t seed, int num_resources, int num_ops) {
  RandomSchedule s;
  Rng rng(seed);
  for (int r = 0; r < num_resources; ++r)
    s.resources.push_back(s.tl.add_resource("r" + std::to_string(r)));
  for (int k = 0; k < num_ops; ++k) {
    const auto res = s.resources[static_cast<std::size_t>(
        rng.uniform_int(0, num_resources - 1))];
    const double dur = rng.uniform_double(0.0, 2.0);
    std::vector<OpId> deps;
    const int ndeps = static_cast<int>(rng.uniform_int(0, 3));
    for (int d = 0; d < ndeps && !s.ops.empty(); ++d)
      deps.push_back(s.ops[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<long long>(s.ops.size()) - 1))]);
    const OpId op = s.tl.record(res, dur, std::span<const OpId>(deps));
    s.ops.push_back(op);
    s.durations.push_back(dur);
    s.deps.push_back(std::move(deps));
  }
  return s;
}

class TimelinePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimelinePropertyTest, DurationsAreExact) {
  const auto s = build(GetParam(), 4, 200);
  for (std::size_t k = 0; k < s.ops.size(); ++k)
    EXPECT_NEAR(s.tl.end_time(s.ops[k]) - s.tl.start_time(s.ops[k]),
                s.durations[k], 1e-12);
}

TEST_P(TimelinePropertyTest, DependenciesRespected) {
  const auto s = build(GetParam(), 4, 200);
  for (std::size_t k = 0; k < s.ops.size(); ++k)
    for (OpId d : s.deps[k])
      EXPECT_GE(s.tl.start_time(s.ops[k]), s.tl.end_time(d) - 1e-12);
}

TEST_P(TimelinePropertyTest, NoOverlapWithinResource) {
  const auto s = build(GetParam(), 3, 150);
  for (std::size_t a = 0; a < s.ops.size(); ++a) {
    for (std::size_t b = a + 1; b < s.ops.size(); ++b) {
      if (s.tl.op_resource(s.ops[a]) != s.tl.op_resource(s.ops[b])) continue;
      const bool disjoint =
          s.tl.end_time(s.ops[a]) <= s.tl.start_time(s.ops[b]) + 1e-12 ||
          s.tl.end_time(s.ops[b]) <= s.tl.start_time(s.ops[a]) + 1e-12;
      EXPECT_TRUE(disjoint) << a << " vs " << b;
    }
  }
}

TEST_P(TimelinePropertyTest, MakespanIsMaxEnd) {
  const auto s = build(GetParam(), 5, 120);
  double max_end = 0;
  for (OpId op : s.ops) max_end = std::max(max_end, s.tl.end_time(op));
  EXPECT_DOUBLE_EQ(s.tl.makespan(), max_end);
}

TEST_P(TimelinePropertyTest, BusyBoundedByMakespanAndSums) {
  const auto s = build(GetParam(), 4, 150);
  double busy_total = 0;
  for (auto r : s.resources) {
    EXPECT_LE(s.tl.busy_time(r), s.tl.makespan() + 1e-12);
    busy_total += s.tl.busy_time(r);
  }
  double duration_total = 0;
  for (double d : s.durations) duration_total += d;
  EXPECT_NEAR(busy_total, duration_total, 1e-9);
}

TEST_P(TimelinePropertyTest, ReplayIsDeterministic) {
  const auto a = build(GetParam(), 4, 100);
  const auto b = build(GetParam(), 4, 100);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t k = 0; k < a.ops.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.tl.start_time(a.ops[k]), b.tl.start_time(b.ops[k]));
    EXPECT_DOUBLE_EQ(a.tl.end_time(a.ops[k]), b.tl.end_time(b.ops[k]));
  }
}

TEST_P(TimelinePropertyTest, SerialLowerBoundHolds) {
  // Makespan >= the busiest single resource (it can never beat its own
  // serialized work).
  const auto s = build(GetParam(), 3, 180);
  for (auto r : s.resources)
    EXPECT_GE(s.tl.makespan() + 1e-12, s.tl.busy_time(r));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelinePropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace lddp::sim
