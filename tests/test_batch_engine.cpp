// Unit tests for the batched multi-solve engine: admission control,
// scheduler policy ordering, buffer quotas, deterministic replay, and the
// ThreadPool master arbitration that makes concurrent solves safe.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/batch_engine.h"
#include "core/framework.h"
#include "cpu/thread_pool.h"
#include "problems/synthetic.h"
#include "sim/memory.h"

namespace lddp {
namespace {

/// A small deterministic problem whose value mixes all four neighbours.
auto make_case(std::size_t side, std::uint64_t salt = 7) {
  return problems::make_function_problem<std::uint64_t>(
      side, side, ContributingSet(0b1111), salt,
      [salt](std::size_t i, std::size_t j,
             const Neighbors<std::uint64_t>& nb) {
        return (nb.w << 1) ^ (nb.nw + salt) ^ (nb.n * 31) ^ nb.ne ^
               (i * 1000003 + j);
      });
}

/// Inline-execution config: no worker threads, so real execution order is
/// fully deterministic (tests drive everything from this thread).
BatchConfig inline_config() {
  BatchConfig bc;
  bc.worker_threads = 0;
  return bc;
}

TEST(BatchEngine, BitIdenticalToSolo) {
  const auto p = make_case(48);
  RunConfig rc;
  rc.mode = Mode::kHeterogeneous;
  const auto solo = solve(p, rc);

  BatchEngine engine(inline_config());
  auto f = engine.submit(p, rc);
  ASSERT_TRUE(f.has_value());
  const BatchReport rep = engine.wait();
  const auto got = f->get();

  EXPECT_EQ(got.table, solo.table);
  ASSERT_EQ(rep.solves, 1u);
  // The request's solo makespan is preserved in the report, and a batch of
  // one has nothing to overlap with: makespan == solo makespan.
  EXPECT_DOUBLE_EQ(rep.items[0].solve.sim_seconds, solo.stats.sim_seconds);
  EXPECT_NEAR(rep.sim_makespan, solo.stats.sim_seconds,
              1e-12 + solo.stats.sim_seconds * 1e-9);
}

TEST(BatchEngine, RejectWhenQueueFull) {
  BatchConfig bc = inline_config();
  bc.queue_capacity = 1;
  bc.admission = BatchAdmission::kReject;
  BatchEngine engine(bc);

  auto f1 = engine.submit(make_case(8), RunConfig{});
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(engine.pending(), 1u);
  auto f2 = engine.submit(make_case(8), RunConfig{});
  EXPECT_FALSE(f2.has_value());  // shed, not queued

  const BatchReport rep = engine.wait();
  EXPECT_EQ(rep.solves, 1u);
  EXPECT_NO_THROW(f1->get());

  // The engine is reusable after wait().
  auto f3 = engine.submit(make_case(8), RunConfig{});
  ASSERT_TRUE(f3.has_value());
  EXPECT_EQ(engine.wait().solves, 1u);
}

TEST(BatchEngine, WaitAdmissionAppliesBackpressure) {
  BatchConfig bc = inline_config();
  bc.queue_capacity = 1;
  bc.admission = BatchAdmission::kWait;
  BatchEngine engine(bc);

  // With no worker threads the blocked submitter drains the queue itself,
  // so every request is eventually admitted.
  std::vector<std::future<SolveResult<decltype(make_case(8))>>> futures;
  for (int k = 0; k < 4; ++k) {
    auto f = engine.submit(make_case(8, 100 + k), RunConfig{});
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  const BatchReport rep = engine.wait();
  EXPECT_EQ(rep.solves, 4u);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

TEST(BatchEngine, FifoDispatchesInSubmissionOrder) {
  BatchConfig bc = inline_config();
  bc.sched = BatchSched::kFifo;
  bc.concurrency = 1;
  BatchEngine engine(bc);
  engine.submit(make_case(40), RunConfig{});  // big first
  engine.submit(make_case(8), RunConfig{});   // small second
  const BatchReport rep = engine.wait();
  ASSERT_EQ(rep.solves, 2u);
  EXPECT_EQ(rep.items[0].dispatch_rank, 0u);
  EXPECT_EQ(rep.items[1].dispatch_rank, 1u);
  EXPECT_EQ(rep.items[0].completion_rank, 0u);
  EXPECT_EQ(rep.items[1].completion_rank, 1u);
}

TEST(BatchEngine, SjfDispatchesCheaperFirst) {
  BatchConfig bc = inline_config();
  bc.sched = BatchSched::kSjf;
  bc.concurrency = 1;
  BatchEngine engine(bc);
  engine.submit(make_case(40), RunConfig{});  // big first
  engine.submit(make_case(8), RunConfig{});   // small second
  const BatchReport rep = engine.wait();
  ASSERT_EQ(rep.solves, 2u);
  EXPECT_GT(rep.items[0].est_seconds, rep.items[1].est_seconds);
  EXPECT_EQ(rep.items[1].dispatch_rank, 0u);  // cheaper one goes first
  EXPECT_EQ(rep.items[0].dispatch_rank, 1u);
  EXPECT_EQ(rep.items[1].completion_rank, 0u);
  EXPECT_LT(rep.items[1].sim_end, rep.items[0].sim_end);
}

TEST(BatchEngine, WfqRespectsWeights) {
  BatchConfig bc = inline_config();
  bc.sched = BatchSched::kWfq;
  bc.concurrency = 1;
  BatchEngine engine(bc);
  // Same size, so est/weight is decided purely by the weights.
  engine.submit(make_case(16, 1), RunConfig{}, /*weight=*/1.0);
  engine.submit(make_case(16, 2), RunConfig{}, /*weight=*/8.0);
  const BatchReport rep = engine.wait();
  ASSERT_EQ(rep.solves, 2u);
  EXPECT_EQ(rep.items[1].dispatch_rank, 0u);  // heavier weight first
  EXPECT_EQ(rep.items[0].dispatch_rank, 1u);

  // Equal weights fall back to submission order.
  engine.submit(make_case(16, 3), RunConfig{}, 2.0);
  engine.submit(make_case(16, 4), RunConfig{}, 2.0);
  const BatchReport tie = engine.wait();
  EXPECT_EQ(tie.items[0].dispatch_rank, 0u);
  EXPECT_EQ(tie.items[1].dispatch_rank, 1u);
}

TEST(BatchEngine, QuotaPoolFallsBackToHeapOverQuota) {
  sim::BufferPool parent;
  {
    sim::QuotaBufferPool quota(&parent, 100);
    void* a = quota.acquire(64, /*pinned=*/false);
    EXPECT_EQ(quota.outstanding_bytes(), 64u);
    EXPECT_EQ(quota.over_quota_count(), 0u);
    void* b = quota.acquire(64, /*pinned=*/false);  // 128 > 100: heap
    EXPECT_EQ(quota.outstanding_bytes(), 64u);
    EXPECT_EQ(quota.over_quota_count(), 1u);
    quota.release(b, 64, false);
    quota.release(a, 64, false);
    EXPECT_EQ(quota.outstanding_bytes(), 0u);
  }
  // Only the in-quota arena was borrowed from (and returned to) the parent.
  EXPECT_EQ(parent.cached_arenas(), 1u);
}

TEST(BatchEngine, ZeroQuotaIsUnlimitedPassThrough) {
  sim::BufferPool parent;
  sim::QuotaBufferPool quota(&parent, 0);
  void* a = quota.acquire(1 << 20, false);
  EXPECT_EQ(quota.over_quota_count(), 0u);
  quota.release(a, 1 << 20, false);
  EXPECT_EQ(parent.cached_arenas(), 1u);
}

TEST(BatchEngine, TinyBufferQuotaKeepsResultsIdentical) {
  const auto p = make_case(32);
  RunConfig rc;
  rc.mode = Mode::kGpu;  // exercises device/pinned buffer acquisition
  const auto solo = solve(p, rc);

  BatchConfig bc = inline_config();
  bc.buffer_quota_bytes = 1;  // everything over-quota -> plain heap
  BatchEngine engine(bc);
  auto f = engine.submit(p, rc);
  ASSERT_TRUE(f.has_value());
  engine.wait();
  EXPECT_EQ(f->get().table, solo.table);
}

TEST(BatchEngine, ConcurrencyOneMatchesSerialSum) {
  BatchConfig bc = inline_config();
  bc.concurrency = 1;
  BatchEngine engine(bc);
  for (int k = 0; k < 3; ++k) {
    RunConfig rc;
    rc.mode = k == 0 ? Mode::kCpuParallel
              : k == 1 ? Mode::kGpu
                       : Mode::kHeterogeneous;
    engine.submit(make_case(24, 50 + k), rc);
  }
  const BatchReport rep = engine.wait();
  ASSERT_EQ(rep.solves, 3u);
  // One slot: solves run back to back — the merged makespan reproduces the
  // one-at-a-time regime.
  EXPECT_NEAR(rep.sim_makespan, rep.serial_sim_seconds,
              rep.serial_sim_seconds * 1e-9);
  EXPECT_NEAR(rep.speedup, 1.0, 1e-6);
}

TEST(BatchEngine, OverlapBeatsSerialWithMixedModes) {
  BatchConfig bc = inline_config();
  bc.concurrency = 4;
  BatchEngine engine(bc);
  // CPU-only and GPU-heavy solves use disjoint simulated resources, so
  // four slots must overlap them: makespan strictly below the serial sum.
  for (int k = 0; k < 4; ++k) {
    RunConfig rc;
    rc.mode = (k % 2 == 0) ? Mode::kCpuParallel : Mode::kGpu;
    engine.submit(make_case(32, 80 + k), rc);
  }
  const BatchReport rep = engine.wait();
  EXPECT_LT(rep.sim_makespan, rep.serial_sim_seconds);
  EXPECT_GT(rep.speedup, 1.0);
}

/// Runs one fixed mixed batch and returns its report.
BatchReport run_replay_batch(long long worker_threads) {
  BatchConfig bc;
  bc.worker_threads = worker_threads;
  bc.concurrency = 2;
  bc.sched = BatchSched::kSjf;
  BatchEngine engine(bc);
  const std::size_t sides[] = {40, 12, 28, 20};
  for (int k = 0; k < 4; ++k) {
    RunConfig rc;
    rc.mode = (k % 2 == 0) ? Mode::kHeterogeneous : Mode::kGpu;
    engine.submit(make_case(sides[k], 900 + k), rc, 1.0 + k % 2);
  }
  return engine.wait();
}

TEST(BatchEngine, DeterministicReplayAcrossWorkerCounts) {
  // The merged schedule is a pure function of the recorded schedules and
  // the policy: real-thread interleaving (0 vs 3 workers) must not change
  // makespan, latencies, or ordering. Bitwise equality is intentional.
  const BatchReport a = run_replay_batch(/*worker_threads=*/0);
  const BatchReport b = run_replay_batch(/*worker_threads=*/3);
  const BatchReport c = run_replay_batch(/*worker_threads=*/3);
  ASSERT_EQ(a.solves, b.solves);
  EXPECT_EQ(a.sim_makespan, b.sim_makespan);
  EXPECT_EQ(b.sim_makespan, c.sim_makespan);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  for (std::size_t j = 0; j < a.items.size(); ++j) {
    EXPECT_EQ(a.items[j].dispatch_rank, b.items[j].dispatch_rank) << j;
    EXPECT_EQ(a.items[j].completion_rank, b.items[j].completion_rank) << j;
    EXPECT_EQ(a.items[j].sim_start, b.items[j].sim_start) << j;
    EXPECT_EQ(a.items[j].sim_end, b.items[j].sim_end) << j;
  }
}

TEST(BatchEngine, FailedSolveSurfacesOnFutureOnly) {
  const auto good = make_case(16);
  const auto bad = problems::make_function_problem<std::uint64_t>(
      12, 12, ContributingSet(0b0001), std::uint64_t{0},
      [](std::size_t i, std::size_t j, const Neighbors<std::uint64_t>&)
          -> std::uint64_t {
        if (i == 5 && j == 5) throw std::runtime_error("injected failure");
        return i + j;
      });

  BatchEngine engine(inline_config());
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  auto fg = engine.submit(good, RunConfig{});
  auto fb = engine.submit(bad, serial);
  const BatchReport rep = engine.wait();
  ASSERT_EQ(rep.solves, 2u);
  EXPECT_FALSE(rep.items[0].failed);
  EXPECT_TRUE(rep.items[1].failed);
  EXPECT_NO_THROW(fg->get());
  EXPECT_THROW(fb->get(), std::runtime_error);
  // A failed solve recorded no schedule; the good one still defines the
  // makespan.
  EXPECT_GT(rep.sim_makespan, 0.0);
}

TEST(BatchEngine, EmptyBatchReportsZero) {
  BatchEngine engine(inline_config());
  const BatchReport rep = engine.wait();
  EXPECT_EQ(rep.solves, 0u);
  EXPECT_EQ(rep.sim_makespan, 0.0);
}

TEST(BatchEngine, ConcurrentMastersOnOnePoolSerialize) {
  // Two threads drive strip sessions on the *same* pool: the master
  // arbitration must serialize them (not crash or interleave regions).
  cpu::ThreadPool pool(3);
  constexpr std::size_t kN = 512;
  std::vector<std::uint64_t> out_a(kN, 0), out_b(kN, 0);
  auto drive = [&pool](std::vector<std::uint64_t>& out) {
    for (int round = 0; round < 20; ++round) {
      pool.run_strips(4, [&](std::size_t front) {
        pool.parallel_for_chunked(0, out.size(),
                                  [&](std::size_t lo, std::size_t hi) {
                                    for (std::size_t i = lo; i < hi; ++i)
                                      out[i] += front + 1;
                                  });
      });
    }
  };
  std::thread ta(drive, std::ref(out_a));
  std::thread tb(drive, std::ref(out_b));
  ta.join();
  tb.join();
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out_a[i], 20u * (1 + 2 + 3 + 4)) << i;
    ASSERT_EQ(out_b[i], 20u * (1 + 2 + 3 + 4)) << i;
  }
}

TEST(BatchEngine, ConcurrentForkJoinOnOnePoolSerializes) {
  cpu::ThreadPool pool(2);
  std::vector<std::uint64_t> out_a(256, 0), out_b(256, 0);
  auto drive = [&pool](std::vector<std::uint64_t>& out) {
    for (int round = 0; round < 50; ++round)
      pool.parallel_for(0, out.size(), [&](std::size_t i) { out[i] += 1; });
  };
  std::thread ta(drive, std::ref(out_a));
  std::thread tb(drive, std::ref(out_b));
  ta.join();
  tb.join();
  for (std::size_t i = 0; i < 256; ++i) {
    ASSERT_EQ(out_a[i], 50u) << i;
    ASSERT_EQ(out_b[i], 50u) << i;
  }
}

}  // namespace
}  // namespace lddp
