// Tiled CPU execution: correctness across tile sizes, shapes and patterns,
// support predicate, and the modeled benefit over the per-cell baseline.
#include <gtest/gtest.h>

#include "core/framework.h"
#include "problems/alignment.h"
#include "problems/column_min.h"
#include "problems/checkerboard.h"
#include "problems/levenshtein.h"
#include "problems/synthetic.h"

namespace lddp {
namespace {

TEST(CpuTiledTest, SupportPredicate) {
  // The skewed-tile scheduler removed the NE restriction: every
  // contributing set is supported.
  EXPECT_TRUE(cpu_tiled_supports(ContributingSet{Dep::kW, Dep::kNW, Dep::kN}));
  EXPECT_TRUE(cpu_tiled_supports(ContributingSet{Dep::kNW}));
  EXPECT_TRUE(cpu_tiled_supports(ContributingSet{Dep::kN}));
  EXPECT_TRUE(cpu_tiled_supports(ContributingSet{Dep::kNE}));
  EXPECT_TRUE(
      cpu_tiled_supports(ContributingSet{Dep::kW, Dep::kN, Dep::kNE}));
}

TEST(CpuTiledTest, MatchesSerialAcrossTileSizes) {
  problems::LevenshteinProblem p(problems::random_sequence(150, 1),
                                 problems::random_sequence(190, 2));
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);
  for (std::size_t tile : {1u, 2u, 7u, 16u, 64u, 1000u}) {
    RunConfig cfg;
    cfg.mode = Mode::kCpuTiled;
    cfg.cpu_tile = tile;
    const auto r = solve(p, cfg);
    EXPECT_EQ(r.table, ref.table) << "tile " << tile;
    EXPECT_EQ(r.stats.mode_used, Mode::kCpuTiled);
  }
}

TEST(CpuTiledTest, WorksForEveryContributingSet) {
  // Including NE-bearing sets, which get skewed parallelogram tiles.
  for (int mask = 1; mask <= 15; ++mask) {
    const ContributingSet deps(static_cast<std::uint8_t>(mask));
    const auto p = problems::make_function_problem<std::uint64_t>(
        37, 53, deps, 5ULL,
        [deps](std::size_t i, std::size_t j, const Neighbors<std::uint64_t>& nb) {
          std::uint64_t r = i * 131 + j * 17 + 1;
          if (deps.has_w()) r = r * 31 + nb.w;
          if (deps.has_nw()) r = r * 37 + nb.nw;
          if (deps.has_n()) r = r * 41 + nb.n;
          if (deps.has_ne()) r = r * 43 + nb.ne;
          return r;
        });
    RunConfig serial;
    serial.mode = Mode::kCpuSerial;
    const auto ref = solve(p, serial);
    RunConfig cfg;
    cfg.mode = Mode::kCpuTiled;
    cfg.cpu_tile = 8;
    EXPECT_EQ(solve(p, cfg).table, ref.table) << deps.to_string();
  }
}

TEST(CpuTiledTest, VerticalAndMirroredGoThroughAdapters) {
  const auto costs = problems::random_cost_board(60, 45, 3);
  problems::ColumnMinPathProblem p(costs);
  RunConfig cfg;
  cfg.mode = Mode::kCpuTiled;
  cfg.cpu_tile = 16;
  EXPECT_EQ(solve(p, cfg).table, problems::column_min_reference(costs));
}

TEST(CpuTiledTest, SolvesKnightMove) {
  // Horizontal case-2 has NE; skewed tiles handle it bit-identically.
  problems::CheckerboardProblem cb(problems::random_cost_board(16, 16, 1));
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(cb, serial);
  RunConfig cfg;
  cfg.mode = Mode::kCpuTiled;
  const auto r = solve(cb, cfg);
  EXPECT_EQ(r.table, ref.table);
  EXPECT_EQ(r.stats.mode_used, Mode::kCpuTiled);
}

TEST(CpuTiledTest, RejectsZeroTile) {
  problems::LevenshteinProblem p("ab", "cd");
  RunConfig cfg;
  cfg.mode = Mode::kCpuTiled;
  cfg.cpu_tile = 0;
  EXPECT_THROW(solve(p, cfg), CheckError);
}

TEST(CpuTiledTest, FasterThanPerCellBaselineAtScale) {
  // Fewer, fatter synchronization points and cache-resident tiles: the
  // tiled mapping must beat the per-front fork/join baseline on a large
  // anti-diagonal table (in simulated time).
  problems::LevenshteinProblem p(problems::random_sequence(2048, 5),
                                 problems::random_sequence(2048, 6));
  RunConfig tiled;
  tiled.mode = Mode::kCpuTiled;
  tiled.cpu_tile = 64;
  RunConfig baseline;
  baseline.mode = Mode::kCpuParallel;
  EXPECT_LT(solve(p, tiled).stats.sim_seconds,
            solve(p, baseline).stats.sim_seconds);
}

TEST(CpuTiledTest, FrontCountShrinksWithTileSize) {
  problems::LevenshteinProblem p(problems::random_sequence(256, 7),
                                 problems::random_sequence(256, 8));
  RunConfig cfg;
  cfg.mode = Mode::kCpuTiled;
  cfg.cpu_tile = 32;
  const auto r32 = solve(p, cfg);
  cfg.cpu_tile = 64;
  const auto r64 = solve(p, cfg);
  EXPECT_GT(r32.stats.fronts, r64.stats.fronts);
  // ceil(257/32) = 9 tiles per side -> 17 tile-fronts.
  EXPECT_EQ(r32.stats.fronts, 17u);
}

TEST(CpuTiledCostModelTest, TiledBeatsAmplifiedFrontsOnBigFronts) {
  const cpu::CpuSpec spec = cpu::CpuSpec::i7_980();
  const cpu::WorkProfile work{};
  // One 4096-cell anti-diagonal front, amplified walk...
  const double per_cell =
      cpu::cpu_front_seconds(spec, work, 4096, true, 4.0);
  // ...vs 64 tiles of 64x64 handled tile-per-thread (same cell count is
  // 64 * 4096; compare per-cell throughput instead).
  const double tiled = cpu::cpu_tiled_front_seconds(spec, work, 64, 64 * 64);
  EXPECT_LT(tiled / (64.0 * 64 * 64), per_cell / 4096.0);
}

}  // namespace
}  // namespace lddp
