#include <gtest/gtest.h>

#include "core/framework.h"
#include "problems/alignment.h"
#include "problems/lcs.h"

namespace lddp::problems {
namespace {

TEST(LcsTest, KnownLengths) {
  EXPECT_EQ(lcs_reference("ABCBDAB", "BDCABA"), 4);  // classic CLRS example
  EXPECT_EQ(lcs_reference("", "xyz"), 0);
  EXPECT_EQ(lcs_reference("abc", "abc"), 3);
  EXPECT_EQ(lcs_reference("abc", "cba"), 1);
  EXPECT_EQ(lcs_reference("AGGTAB", "GXTXAYB"), 4);  // GTAB
}

TEST(LcsTest, ClassifiesAntiDiagonal) {
  LcsProblem p("abc", "abd");
  EXPECT_EQ(classify(p.deps()), Pattern::kAntiDiagonal);
}

TEST(LcsTest, AllModesMatchReference) {
  const std::string a = random_sequence(140, 41);
  const std::string b = random_sequence(170, 42);
  LcsProblem p(a, b);
  const auto expected = lcs_reference(a, b);
  for (Mode mode : {Mode::kCpuSerial, Mode::kCpuParallel, Mode::kGpu,
                    Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    EXPECT_EQ(solve(p, cfg).table.at(a.size(), b.size()), expected)
        << to_string(mode);
  }
}

TEST(LcsTest, TracebackProducesAValidCommonSubsequence) {
  const std::string a = random_sequence(120, 43);
  const std::string b = random_sequence(150, 44);
  LcsProblem p(a, b);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  const auto table = solve(p, cfg).table;
  const std::string lcs = lcs_traceback(p, table);
  EXPECT_EQ(lcs.size(),
            static_cast<std::size_t>(table.at(a.size(), b.size())));
  EXPECT_TRUE(is_subsequence(lcs, a));
  EXPECT_TRUE(is_subsequence(lcs, b));
}

TEST(LcsTest, IsSubsequenceHelper) {
  EXPECT_TRUE(is_subsequence("", "abc"));
  EXPECT_TRUE(is_subsequence("ac", "abc"));
  EXPECT_TRUE(is_subsequence("abc", "abc"));
  EXPECT_FALSE(is_subsequence("ca", "abc"));
  EXPECT_FALSE(is_subsequence("abcd", "abc"));
}

TEST(LcsTest, LcsBoundsAndMonotonicity) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const std::string a = random_sequence(40, seed * 2 + 1);
    const std::string b = random_sequence(55, seed * 2 + 2);
    const auto len = lcs_reference(a, b);
    EXPECT_GE(len, 0);
    EXPECT_LE(len, static_cast<std::int32_t>(std::min(a.size(), b.size())));
    // Appending a shared character extends the LCS by exactly one.
    EXPECT_EQ(lcs_reference(a + "Z", b + "Z"), len + 1);
  }
}

}  // namespace
}  // namespace lddp::problems
