// Persistent-strip execution: while a StripSession is active, parallel
// regions dispatch through the resident-worker barrier instead of condvar
// fork/join. Correctness properties: exact coverage per front, sequencing
// across many fronts, exception propagation, session re-entry, and
// graceful degradation on single-threaded / null pools.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "cpu/thread_pool.h"

namespace lddp::cpu {
namespace {

TEST(StripSessionTest, RunStripsVisitsEveryFrontInOrder) {
  ThreadPool pool(4);
  std::vector<std::size_t> order;
  pool.run_strips(50, [&](std::size_t f) { order.push_back(f); });
  ASSERT_EQ(order.size(), 50u);
  for (std::size_t f = 0; f < 50; ++f) EXPECT_EQ(order[f], f);
}

TEST(StripSessionTest, ParallelForInsideSessionCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 40000;
  std::vector<std::atomic<int>> hits(kN);
  pool.run_strips(8, [&](std::size_t) {
    pool.parallel_for(0, kN / 8, [&](std::size_t) {});
  });
  StripSession session(&pool);
  pool.parallel_for(0, kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(StripSessionTest, ManySmallFrontsSumCorrectly) {
  ThreadPool pool(6);
  std::atomic<long> total{0};
  pool.run_strips(500, [&](std::size_t) {
    pool.parallel_for(0, 64, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 500 * 64);
}

TEST(StripSessionTest, WavefrontDependenciesSeePreviousFront) {
  // Each front reads the previous front's results — the strip barrier must
  // fully join every front before the next one starts.
  ThreadPool pool(4);
  constexpr std::size_t kWidth = 10000;
  std::vector<long> prev(kWidth, 1), cur(kWidth, 0);
  pool.run_strips(20, [&](std::size_t) {
    pool.parallel_for(0, kWidth, [&](std::size_t i) {
      const long left = i > 0 ? prev[i - 1] : 0;
      cur[i] = prev[i] + left;
    });
    std::swap(prev, cur);
  });
  // Row f of Pascal-like recurrence: value at i is C(20+i choose i)-ish
  // growth — just verify against a serial recomputation.
  std::vector<long> sprev(kWidth, 1), scur(kWidth, 0);
  for (int f = 0; f < 20; ++f) {
    for (std::size_t i = 0; i < kWidth; ++i)
      scur[i] = sprev[i] + (i > 0 ? sprev[i - 1] : 0);
    std::swap(sprev, scur);
  }
  EXPECT_EQ(prev, sprev);
}

TEST(StripSessionTest, ExceptionInsideFrontPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run_strips(10, [&](std::size_t f) {
        pool.parallel_for(0, 1000, [&](std::size_t i) {
          if (f == 3 && i == 777) throw std::runtime_error("boom");
        });
      }),
      std::runtime_error);
  // Fork/join mode still works after the session unwound.
  std::atomic<int> n{0};
  pool.parallel_for(0, 10, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 10);
  // And a fresh session works too.
  std::atomic<int> m{0};
  pool.run_strips(5, [&](std::size_t) {
    pool.parallel_for(0, 100, [&](std::size_t) { m++; });
  });
  EXPECT_EQ(m.load(), 500);
}

TEST(StripSessionTest, SessionsAreReenterable) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 30; ++round) {
    StripSession session(&pool);
    pool.parallel_for(0, 100, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 3000);
}

TEST(StripSessionTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.run_strips(4, [&](std::size_t) {
    pool.parallel_for(0, 25, [&](std::size_t i) { hits[i]++; });
  });
  for (int i = 0; i < 25; ++i) EXPECT_EQ(hits[i], 4);
}

TEST(StripSessionTest, NullPoolSessionIsNoop) {
  StripSession session(nullptr);  // must not crash
  SUCCEED();
}

TEST(StripSessionTest, EmptyRangeInsideSessionIsNoop) {
  ThreadPool pool(4);
  StripSession session(&pool);
  bool touched = false;
  pool.parallel_for(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(StripSessionTest, ThrowingBeginReleasesMastership) {
  // Regression: begin_strips() acquires pool mastership before its
  // lifecycle checks. When a check throws (here: nested sessions on one
  // thread), mastership must be released on the way out — otherwise the
  // pool's master slot is stranded and every later region or session on
  // any thread deadlocks waiting for an owner that no longer exists.
  ThreadPool pool(4);
  {
    StripSession outer(&pool);
    EXPECT_THROW(StripSession inner(&pool), CheckError);
    // The outer session must still be fully functional after the failed
    // nested construction.
    std::atomic<int> hits{0};
    pool.parallel_for(0, 64, [&](std::size_t) {
      hits.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(hits.load(), 64);
  }
  // And the pool itself: a fresh session and a fork/join region both
  // acquire mastership normally — nothing was stranded.
  {
    StripSession session(&pool);
    std::atomic<int> hits{0};
    pool.parallel_for(0, 32, [&](std::size_t) {
      hits.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(hits.load(), 32);
  }
  std::atomic<int> hits{0};
  pool.parallel_for(0, 16, [&](std::size_t) {
    hits.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(hits.load(), 16);
}

TEST(StripSessionTest, ChunkedDispatchMatchesForkJoinChunking) {
  // Same static chunking as fork/join: every index exactly once, chunks
  // non-overlapping.
  ThreadPool pool(5);
  constexpr std::size_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  StripSession session(&pool);
  pool.parallel_for_chunked(3, kN, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LT(lo, hi);
    for (std::size_t i = lo; i < hi; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 3; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
  EXPECT_EQ(hits[0].load(), 0);
}

}  // namespace
}  // namespace lddp::cpu
