#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace lddp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int k = 0; k < 64; ++k)
    if (a() == b()) ++same;
  EXPECT_LE(same, 1);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int k = 0; k < 10000; ++k) {
    const auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int k = 0; k < 2000; ++k) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntSinglePoint) {
  Rng rng(3);
  for (int k = 0; k < 10; ++k) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(RngTest, UniformIntRejectsEmptyRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(5, 4), CheckError);
}

TEST(RngTest, Uniform01Bounds) {
  Rng rng(11);
  double sum = 0;
  for (int k = 0; k < 10000; ++k) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);
}

TEST(RngTest, SplitMixAdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace lddp
