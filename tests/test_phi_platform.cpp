// The Xeon Phi accelerator preset — the paper's conclusion asks "how does
// a heterogeneous approach impact the implementation if the system has
// some other accelerators like Intel Xeon-Phi"; the framework answers by
// treating the Phi as another simulated device.
#include <gtest/gtest.h>

#include "core/framework.h"
#include "problems/alignment.h"
#include "problems/checkerboard.h"
#include "problems/levenshtein.h"

namespace lddp {
namespace {

TEST(PhiPlatformTest, PresetSanity) {
  const sim::GpuSpec phi = sim::GpuSpec::xeon_phi_5110p();
  EXPECT_EQ(phi.sm_count, 60);
  EXPECT_EQ(phi.cores_per_sm, 16);
  EXPECT_EQ(phi.warp_size, 16);
  EXPECT_GT(phi.launch_overhead_us,
            sim::GpuSpec::tesla_k20().launch_overhead_us);
  const sim::PlatformSpec p = sim::PlatformSpec::hetero_phi();
  EXPECT_EQ(p.name, "Hetero-Phi");
  EXPECT_EQ(p.cpu.cores, 6);  // same host as Hetero-High
}

TEST(PhiPlatformTest, ResultsAreIdenticalAcrossAccelerators) {
  problems::LevenshteinProblem p(problems::random_sequence(150, 3),
                                 problems::random_sequence(170, 4));
  RunConfig k20;
  k20.mode = Mode::kHeterogeneous;
  k20.platform = sim::PlatformSpec::hetero_high();
  RunConfig phi = k20;
  phi.platform = sim::PlatformSpec::hetero_phi();
  EXPECT_EQ(solve(p, k20).table, solve(p, phi).table);
}

TEST(PhiPlatformTest, PhiSitsBetweenTheTwoGpusAtScale) {
  // The Phi's offload latency makes it launch-bound (and slower than even
  // the GT 650M) on small fronts; its memory bandwidth wins once every
  // front moves real traffic. The checkerboard's constant full-width
  // fronts at 6k are past that crossover: K20 < Phi < GT 650M.
  problems::CheckerboardProblem p(problems::random_cost_board(6144, 6144, 9));
  auto time_with = [&](sim::PlatformSpec spec) {
    RunConfig cfg;
    cfg.mode = Mode::kGpu;
    cfg.platform = std::move(spec);
    return solve(p, cfg).stats.sim_seconds;
  };
  const double k20 = time_with(sim::PlatformSpec::hetero_high());
  const double phi = time_with(sim::PlatformSpec::hetero_phi());
  const double gt = time_with(sim::PlatformSpec::hetero_low());
  EXPECT_LT(k20, phi);
  EXPECT_LT(phi, gt);
}

TEST(PhiPlatformTest, OffloadLatencyHurtsSmallTables) {
  // The flip side: on a small table the GT 650M's cheaper launches win.
  problems::LevenshteinProblem p(problems::random_sequence(600, 9),
                                 problems::random_sequence(600, 10));
  RunConfig phi_cfg;
  phi_cfg.mode = Mode::kGpu;
  phi_cfg.platform = sim::PlatformSpec::hetero_phi();
  RunConfig gt_cfg = phi_cfg;
  gt_cfg.platform = sim::PlatformSpec::hetero_low();
  EXPECT_GT(solve(p, phi_cfg).stats.sim_seconds,
            solve(p, gt_cfg).stats.sim_seconds);
}

TEST(PhiPlatformTest, HeterogeneousStillBeatsPureModesOnPhi) {
  problems::LevenshteinProblem p(problems::random_sequence(2048, 7),
                                 problems::random_sequence(2048, 8));
  RunConfig cfg;
  cfg.platform = sim::PlatformSpec::hetero_phi();
  cfg.mode = Mode::kHeterogeneous;
  const double het = solve(p, cfg).stats.sim_seconds;
  cfg.mode = Mode::kGpu;
  const double acc = solve(p, cfg).stats.sim_seconds;
  EXPECT_LT(het, acc);
}

}  // namespace
}  // namespace lddp
