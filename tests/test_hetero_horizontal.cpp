// Behavioural tests of the horizontal heterogeneous strategy: case-1
// pipelining (one-way), case-2 mapped-pinned (two-way), and the
// no-transfer {N} case (Table II).
#include <gtest/gtest.h>

#include "core/framework.h"
#include "problems/checkerboard.h"
#include "problems/synthetic.h"

namespace lddp {
namespace {

using V = std::uint64_t;

auto horizontal_probe(int mask, std::size_t n, std::size_t m) {
  const ContributingSet deps(static_cast<std::uint8_t>(mask));
  return problems::make_function_problem<V>(
      n, m, deps, 7ULL,
      [deps](std::size_t i, std::size_t j, const Neighbors<V>& nb) {
        V r = 1469598103934665603ULL + i * 31 + j;
        if (deps.has_nw()) r = r * 1099511628211ULL + nb.nw;
        if (deps.has_n()) r = r * 1099511628211ULL + nb.n;
        if (deps.has_ne()) r = r * 1099511628211ULL + nb.ne;
        return r;
      });
}

constexpr int kN = static_cast<int>(Dep::kN);
constexpr int kNW = static_cast<int>(Dep::kNW);
constexpr int kNE = static_cast<int>(Dep::kNE);

TEST(HeteroHorizontalTest, NoTransfersForLoneN) {
  const auto p = horizontal_probe(kN, 64, 64);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {0, 20};
  const auto r = solve(p, cfg);
  EXPECT_EQ(r.stats.transfer, TransferNeed::kNone);
  // Only the final result download (input_bytes() is 0 for the probe).
  EXPECT_EQ(r.stats.h2d_copies, 0u);
  EXPECT_EQ(r.stats.d2h_copies, 1u);
}

TEST(HeteroHorizontalTest, Case1NwPipelinesOneWay) {
  const auto p = horizontal_probe(kNW | kN, 64, 64);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {0, 20};
  const auto r = solve(p, cfg);
  EXPECT_EQ(r.stats.transfer, TransferNeed::kOneWay);
  EXPECT_EQ(r.stats.h2d_copies, 64u);  // one boundary cell per row
  EXPECT_EQ(r.stats.d2h_copies, 1u);   // final download only
}

TEST(HeteroHorizontalTest, Case1NePipelinesOtherWay) {
  const auto p = horizontal_probe(kN | kNE, 64, 64);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {0, 20};
  const auto r = solve(p, cfg);
  EXPECT_EQ(r.stats.transfer, TransferNeed::kOneWay);
  EXPECT_EQ(r.stats.h2d_copies, 0u);
  EXPECT_EQ(r.stats.d2h_copies, 64u + 1u);  // per-row boundary + final
}

TEST(HeteroHorizontalTest, Case2UsesMappedPinnedNotCopies) {
  const auto p = horizontal_probe(kNW | kN | kNE, 64, 64);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {0, 20};
  const auto r = solve(p, cfg);
  EXPECT_EQ(r.stats.transfer, TransferNeed::kTwoWay);
  // Zero-copy boundary: no per-row copy-engine operations.
  EXPECT_EQ(r.stats.h2d_copies, 0u);
  EXPECT_EQ(r.stats.d2h_copies, 1u);
}

TEST(HeteroHorizontalTest, Case2SlowerThanCase1PerRowOverhead) {
  // Same shape, same split: the two-way variant pays the mapped-access
  // surcharge and the per-row cross serialization (Fig 13's observation).
  const std::size_t n = 256, m = 256;
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {0, 64};
  const auto case1 = solve(horizontal_probe(kNW | kN, n, m), cfg);
  const auto case2 = solve(horizontal_probe(kNW | kN | kNE, n, m), cfg);
  EXPECT_GT(case2.stats.sim_seconds, case1.stats.sim_seconds);
}

TEST(HeteroHorizontalTest, CheckerboardEndToEnd) {
  const auto costs = problems::random_cost_board(128, 128, 5);
  problems::CheckerboardProblem p(costs);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  const auto r = solve(p, cfg);
  EXPECT_EQ(r.table, problems::checkerboard_reference(costs));
  EXPECT_EQ(r.stats.pattern, Pattern::kHorizontal);
  EXPECT_EQ(r.stats.transfer, TransferNeed::kTwoWay);
}

TEST(HeteroHorizontalTest, ExtremeSharesStayCorrect) {
  const auto costs = problems::random_cost_board(40, 60, 6);
  problems::CheckerboardProblem p(costs);
  const auto ref = problems::checkerboard_reference(costs);
  for (long long share : {0LL, 1LL, 59LL, 60LL, 1000LL}) {
    RunConfig cfg;
    cfg.mode = Mode::kHeterogeneous;
    cfg.hetero = {0, share};
    EXPECT_EQ(solve(p, cfg).table, ref) << "share " << share;
  }
}

TEST(HeteroHorizontalTest, Case1CpuOpsRunBackToBackOnTheTimeline) {
  // The pipelining claim, checked on the schedule itself: with one-way
  // CPU->GPU traffic the CPU never waits, so its ops on the timeline are
  // gap-free (each front starts exactly when the previous one ends).
  const auto p = horizontal_probe(kNW | kN, 200, 200);
  sim::Platform platform(sim::PlatformSpec::hetero_high());
  SolveStats stats;
  solve_hetero_horizontal(p, platform, HeteroParams{0, 50}, &stats);
  const sim::Timeline& tl = platform.timeline();
  double prev_end = -1.0;
  std::size_t cpu_ops = 0;
  for (sim::OpId op = 0; op < tl.op_count(); ++op) {
    if (tl.resource_name(tl.op_resource(op)) != "cpu") continue;
    if (tl.end_time(op) == tl.start_time(op)) continue;  // sync points
    if (prev_end >= 0.0) {
      EXPECT_NEAR(tl.start_time(op), prev_end, 1e-12) << "cpu op " << op;
    }
    prev_end = tl.end_time(op);
    ++cpu_ops;
  }
  EXPECT_EQ(cpu_ops, 200u);  // one per row

  // Two-way (case-2) must NOT be gap-free: the CPU waits for the GPU's
  // boundary each row.
  const auto p2 = horizontal_probe(kNW | kN | kNE, 200, 200);
  sim::Platform platform2(sim::PlatformSpec::hetero_high());
  solve_hetero_horizontal(p2, platform2, HeteroParams{0, 50}, &stats);
  const sim::Timeline& tl2 = platform2.timeline();
  prev_end = -1.0;
  int gaps = 0;
  for (sim::OpId op = 0; op < tl2.op_count(); ++op) {
    if (tl2.resource_name(tl2.op_resource(op)) != "cpu") continue;
    if (tl2.end_time(op) == tl2.start_time(op)) continue;
    if (prev_end >= 0.0 && tl2.start_time(op) > prev_end + 1e-12) ++gaps;
    prev_end = tl2.end_time(op);
  }
  EXPECT_GT(gaps, 100);
}

TEST(HeteroHorizontalTest, CpuPipelinesAheadInCase1) {
  // In case-1 the CPU never waits for the GPU: its busy time should pack
  // tightly at the start of the timeline rather than interleave. We check
  // the weaker, robust property that total time is close to the maximum of
  // the two units' busy times (pipeline overlap), not their sum. The probe
  // declares result_bytes() == 0 so the assertion targets the per-row
  // pipeline, not the fixed final-download tail (which dwarfs the fused
  // kernel chain on this problem and says nothing about overlap).
  struct NoDownloadProbe {
    decltype(horizontal_probe(0, 0, 0)) inner;
    using Value = V;
    std::size_t rows() const { return inner.rows(); }
    std::size_t cols() const { return inner.cols(); }
    ContributingSet deps() const { return inner.deps(); }
    Value boundary() const { return inner.boundary(); }
    Value compute(std::size_t i, std::size_t j,
                  const Neighbors<Value>& nb) const {
      return inner.compute(i, j, nb);
    }
    std::size_t result_bytes() const { return 0; }
  };
  const NoDownloadProbe p{horizontal_probe(kNW | kN, 512, 512)};
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {0, 128};
  const auto r = solve(p, cfg);
  const double busiest =
      std::max(r.stats.cpu_busy_seconds, r.stats.gpu_busy_seconds);
  EXPECT_LT(r.stats.sim_seconds, busiest * 1.5);
  EXPECT_LT(busiest * 0.9,
            r.stats.cpu_busy_seconds + r.stats.gpu_busy_seconds);
}

}  // namespace
}  // namespace lddp
