// LaunchGraph semantics: pass-through parity in immediate mode, eager body
// execution and deferred recording in fused mode, graph pricing (one full
// launch overhead per replay + per-node issue cost), handle resolution,
// cross-stream dependencies, and Timeline group tagging.
#include <gtest/gtest.h>

#include <vector>

#include "sim/device.h"
#include "sim/kernel.h"
#include "sim/launch_graph.h"

namespace lddp::sim {
namespace {

class LaunchGraphTest : public ::testing::Test {
 protected:
  Timeline tl_;
  Device dev_{GpuSpec::tesla_k20(), tl_};
};

TEST_F(LaunchGraphTest, ImmediateModeMatchesDevicePricing) {
  // fused=false must behave exactly like calling the Device directly.
  Timeline ref_tl;
  Device ref_dev(GpuSpec::tesla_k20(), ref_tl);
  const auto s = ref_dev.default_stream();
  ref_dev.record_h2d(s, 4096, MemoryKind::kPageable);
  for (int i = 0; i < 10; ++i)
    ref_dev.launch(s, KernelInfo{}, 256, [](std::size_t) {});
  ref_dev.record_d2h(s, 4096, MemoryKind::kPageable);

  LaunchGraph graph(dev_, /*fused=*/false);
  const auto t = dev_.default_stream();
  graph.record_h2d(t, 4096, MemoryKind::kPageable);
  for (int i = 0; i < 10; ++i)
    graph.launch(t, KernelInfo{}, 256, [](std::size_t) {});
  graph.record_d2h(t, 4096, MemoryKind::kPageable);

  EXPECT_DOUBLE_EQ(tl_.makespan(), ref_tl.makespan());
  EXPECT_EQ(tl_.op_count(), ref_tl.op_count());
  EXPECT_EQ(graph.node_count(), 0u);  // nothing deferred
}

TEST_F(LaunchGraphTest, FusedBodiesExecuteEagerlyBeforeReplay) {
  LaunchGraph graph(dev_, /*fused=*/true);
  std::vector<int> data(64, 0);
  int* p = data.data();
  graph.launch(dev_.default_stream(), KernelInfo{}, 64,
               [p](std::size_t c) { p[c] = static_cast<int>(c) + 1; });
  // Real execution happened at add-time; nothing recorded yet.
  for (int c = 0; c < 64; ++c) EXPECT_EQ(data[c], c + 1);
  EXPECT_EQ(tl_.op_count(), 0u);
  EXPECT_EQ(graph.node_count(), 1u);
  graph.replay();
  EXPECT_EQ(tl_.op_count(), 1u);
}

TEST_F(LaunchGraphTest, FusedPaysOneLaunchOverheadPlusPerNodeIssue) {
  const GpuSpec& spec = dev_.spec();
  const KernelInfo info{};
  constexpr std::size_t kCells = 32;
  constexpr int kKernels = 50;

  LaunchGraph graph(dev_, /*fused=*/true);
  const auto s = dev_.default_stream();
  for (int i = 0; i < kKernels; ++i)
    graph.launch(s, info, kCells, [](std::size_t) {});
  graph.replay();

  const double exec = kernel_exec_seconds(spec, info, kCells);
  const double expected =
      spec.launch_overhead_us * 1e-6 +
      kKernels * (spec.graph_node_issue_us * 1e-6 + exec);
  EXPECT_NEAR(tl_.makespan(), expected, 1e-12);

  // The same sequence unfused pays the full overhead per kernel.
  const double unfused = kKernels * kernel_seconds(spec, info, kCells);
  EXPECT_LT(tl_.makespan(), unfused);
}

TEST_F(LaunchGraphTest, ResolveMapsHandlesToTimelineOps) {
  LaunchGraph graph(dev_, /*fused=*/true);
  const auto s = dev_.default_stream();
  const OpId h1 = graph.launch(s, KernelInfo{}, 8, [](std::size_t) {});
  const OpId h2 = graph.launch(s, KernelInfo{}, 8, [](std::size_t) {});
  EXPECT_NE(h1 & LaunchGraph::kNodeFlag, 0u);
  EXPECT_NE(h2 & LaunchGraph::kNodeFlag, 0u);
  EXPECT_EQ(graph.last_op(s), h2);
  graph.replay();
  const OpId o1 = graph.resolve(h1);
  const OpId o2 = graph.resolve(h2);
  ASSERT_LT(o1, tl_.op_count());
  ASSERT_LT(o2, tl_.op_count());
  EXPECT_GE(tl_.start_time(o2), tl_.end_time(o1));  // stream FIFO preserved
  // Real OpIds and kNoOp pass through untouched.
  EXPECT_EQ(graph.resolve(o1), o1);
  EXPECT_EQ(graph.resolve(kNoOp), kNoOp);
  // After replay the device stream tail is the replayed op.
  EXPECT_EQ(dev_.last_op(s), o2);
}

TEST_F(LaunchGraphTest, StreamWaitOrdersAcrossStreamsInsideGraph) {
  LaunchGraph graph(dev_, /*fused=*/true);
  const auto compute = dev_.default_stream();
  const auto copy = dev_.create_stream();
  const OpId x = graph.record_h2d(copy, 1 << 20, MemoryKind::kPageable);
  graph.stream_wait(compute, x);
  const OpId k = graph.launch(compute, KernelInfo{}, 8, [](std::size_t) {});
  graph.replay();
  EXPECT_GE(tl_.start_time(graph.resolve(k)), tl_.end_time(graph.resolve(x)));
}

TEST_F(LaunchGraphTest, ExternalOpDependencyIsHonored) {
  // An op recorded on the Timeline before replay (e.g. a CPU front) is a
  // valid dependency of a graph node.
  const auto cpu_res = tl_.add_resource("cpu");
  const OpId cpu_op = tl_.record(cpu_res, 1e-3, kNoOp, kNoOp, "cpu");
  LaunchGraph graph(dev_, /*fused=*/true);
  const OpId k = graph.launch(dev_.default_stream(), KernelInfo{}, 8,
                              [](std::size_t) {}, cpu_op);
  graph.replay();
  EXPECT_GE(tl_.start_time(graph.resolve(k)), tl_.end_time(cpu_op));
}

TEST_F(LaunchGraphTest, ReplayTagsOpsAsOneGroup) {
  const auto s = dev_.default_stream();
  const OpId before = dev_.launch(s, KernelInfo{}, 8, [](std::size_t) {});
  LaunchGraph graph(dev_, /*fused=*/true);
  const OpId h1 = graph.record_h2d(s, 64, MemoryKind::kPageable);
  const OpId h2 = graph.launch(s, KernelInfo{}, 8, [](std::size_t) {});
  graph.replay();
  const OpId after = dev_.launch(s, KernelInfo{}, 8, [](std::size_t) {});
  EXPECT_EQ(tl_.op_group(before), kNoGroup);
  EXPECT_EQ(tl_.op_group(after), kNoGroup);
  const GroupId g = tl_.op_group(graph.resolve(h1));
  EXPECT_NE(g, kNoGroup);
  EXPECT_EQ(tl_.op_group(graph.resolve(h2)), g);
}

TEST_F(LaunchGraphTest, EmptyOperationsAddNoNodes) {
  LaunchGraph graph(dev_, /*fused=*/true);
  const auto s = dev_.default_stream();
  graph.launch(s, KernelInfo{}, 0, [](std::size_t) {});
  graph.record_h2d(s, 0, MemoryKind::kPageable);
  graph.record_d2h(s, 0, MemoryKind::kPinned);
  EXPECT_EQ(graph.node_count(), 0u);
  graph.replay();
  EXPECT_EQ(tl_.op_count(), 0u);
  EXPECT_EQ(graph.replay_count(), 0u);  // empty replay is a no-op
}

TEST_F(LaunchGraphTest, DestructorReplaysPendingNodes) {
  {
    LaunchGraph graph(dev_, /*fused=*/true);
    graph.launch(dev_.default_stream(), KernelInfo{}, 8, [](std::size_t) {});
    EXPECT_EQ(tl_.op_count(), 0u);
  }
  EXPECT_EQ(tl_.op_count(), 1u);
}

TEST_F(LaunchGraphTest, CopyStatsAccumulateAtAddTime) {
  LaunchGraph graph(dev_, /*fused=*/true);
  const auto s = dev_.default_stream();
  graph.record_h2d(s, 128, MemoryKind::kPageable);
  graph.record_d2h(s, 256, MemoryKind::kPinned);
  EXPECT_EQ(dev_.stats().h2d_bytes, 128u);
  EXPECT_EQ(dev_.stats().d2h_bytes, 256u);
  EXPECT_EQ(dev_.stats().h2d_copies, 1u);
  EXPECT_EQ(dev_.stats().d2h_copies, 1u);
}

TEST_F(LaunchGraphTest, MultipleReplaysEachPayFullOverheadOnce) {
  const GpuSpec& spec = dev_.spec();
  const KernelInfo info{};
  const auto s = dev_.default_stream();
  LaunchGraph graph(dev_, /*fused=*/true);
  graph.launch(s, info, 16, [](std::size_t) {});
  graph.replay();
  graph.launch(s, info, 16, [](std::size_t) {});
  graph.replay();
  EXPECT_EQ(graph.replay_count(), 2u);
  const double exec = kernel_exec_seconds(spec, info, 16);
  const double expected =
      2 * (spec.launch_overhead_us * 1e-6 + spec.graph_node_issue_us * 1e-6 +
           exec);
  EXPECT_NEAR(tl_.makespan(), expected, 1e-12);
}

}  // namespace
}  // namespace lddp::sim
