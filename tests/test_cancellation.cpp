// Cancellation & deadline lifecycle tests, built to run under TSan: real
// engine workers at counts 1 / 4 / 16 with cancellations raised from
// concurrent threads mid-flight, plus the deterministic inline-execution
// contracts (worker_threads = 0) for pre-cancelled requests and
// simulated-time deadlines.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "core/batch_engine.h"
#include "core/chaos.h"
#include "core/framework.h"
#include "problems/synthetic.h"
#include "util/fault_injection.h"

namespace lddp {
namespace {

auto make_case(std::size_t side, std::uint64_t salt) {
  return problems::make_function_problem<std::uint64_t>(
      side, side, ContributingSet(0b1111), salt,
      [salt](std::size_t i, std::size_t j,
             const Neighbors<std::uint64_t>& nb) {
        return (nb.w << 1) ^ (nb.nw + salt) ^ (nb.n * 31) ^ nb.ne ^
               (i * 1000003 + j);
      });
}

using Problem = decltype(make_case(1, 0));

/// Real workers + a racing canceller thread: every request must end in a
/// bit-exact success or a structured kCancelled — never a crash, a torn
/// result, or a stuck wait(). The cancel flag is an atomic read at every
/// recorded op, which is exactly what TSan patrols here.
void cancel_race_level(long long workers) {
  BatchConfig bc;
  bc.worker_threads = workers;
  bc.concurrency = static_cast<std::size_t>(workers);
  bc.threads_per_solve = workers <= 4 ? 2 : 1;
  BatchEngine engine(bc);

  constexpr std::size_t kRequests = 24;
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  std::vector<Grid<std::uint64_t>> expected;
  std::vector<chaos::CancelSource> sources(kRequests);
  std::vector<std::future<SolveResult<Problem>>> futures;
  for (std::size_t k = 0; k < kRequests; ++k) {
    const auto p = make_case(64, k);
    expected.push_back(solve(p, serial).table);
    RunConfig rc;
    rc.mode = k % 2 == 0 ? Mode::kHeterogeneous : Mode::kCpuParallel;
    chaos::RequestOptions opts;
    opts.cancel = sources[k].token();
    auto f = engine.submit(p, rc, opts);
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  // Two concurrent cancellers race the in-flight solves: odd requests are
  // cancelled as soon as possible, a few even ones a moment later.
  std::thread canceller_a([&] {
    for (std::size_t k = 1; k < kRequests; k += 2)
      sources[k].request_cancel();
  });
  std::thread canceller_b([&] {
    for (std::size_t k = 0; k < kRequests; k += 6)
      sources[k].request_cancel();
  });
  canceller_a.join();
  canceller_b.join();
  const BatchReport rep = engine.wait();
  ASSERT_EQ(rep.solves, kRequests);
  for (std::size_t k = 0; k < kRequests; ++k) {
    try {
      SolveResult<Problem> got = futures[k].get();
      EXPECT_EQ(got.table, expected[k]) << k;
      EXPECT_NE(rep.items[k].outcome, chaos::RequestOutcome::kCancelled)
          << k;
    } catch (const fault::CancelledError&) {
      EXPECT_EQ(rep.items[k].outcome, chaos::RequestOutcome::kCancelled)
          << k;
    }
    // A request whose flag was never raised must have succeeded.
    if (!sources[k].cancel_requested())
      EXPECT_EQ(rep.items[k].outcome, chaos::RequestOutcome::kOk) << k;
  }
}

TEST(Cancellation, RaceWorkers1) { cancel_race_level(1); }
TEST(Cancellation, RaceWorkers4) { cancel_race_level(4); }
TEST(Cancellation, RaceWorkers16) { cancel_race_level(16); }

/// Inline execution (worker_threads = 0): a token cancelled before the
/// batch drains is observed deterministically — identical outcomes and
/// merged timings on every run.
TEST(Cancellation, InlineCancellationIsDeterministic) {
  auto run_once = [] {
    BatchConfig bc;
    bc.worker_threads = 0;
    // Per-solve path: a cancelled lane would degrade cohort-mates, which
    // is covered by the lane tests; here the contract is plain kOk vs
    // kCancelled per request.
    bc.lane_pack = 0;
    BatchEngine engine(bc);
    std::vector<chaos::CancelSource> sources(8);
    std::vector<std::future<SolveResult<Problem>>> futures;
    for (std::size_t k = 0; k < 8; ++k) {
      const auto p = make_case(40, k);
      chaos::RequestOptions opts;
      opts.cancel = sources[k].token();
      if (k % 2 == 1) sources[k].request_cancel();
      auto f = engine.submit(p, RunConfig{}, opts);
      EXPECT_TRUE(f.has_value());
      futures.push_back(std::move(*f));
    }
    const BatchReport rep = engine.wait();  // inline: drains everything
    for (auto& f : futures) {
      try {
        (void)f.get();
      } catch (const fault::CancelledError&) {
      }
    }
    return rep;
  };
  const BatchReport a = run_once();
  const BatchReport b = run_once();
  ASSERT_EQ(a.solves, b.solves);
  for (std::size_t k = 0; k < a.items.size(); ++k) {
    EXPECT_EQ(a.items[k].outcome, b.items[k].outcome) << k;
    EXPECT_EQ(a.items[k].outcome, k % 2 == 1
                                      ? chaos::RequestOutcome::kCancelled
                                      : chaos::RequestOutcome::kOk)
        << k;
    EXPECT_DOUBLE_EQ(a.items[k].sim_end, b.items[k].sim_end) << k;
  }
  EXPECT_DOUBLE_EQ(a.sim_makespan, b.sim_makespan);
}

/// Deadlines are enforced against the simulated clock, so the verdict is
/// a pure function of the request — identical across worker counts and
/// runs, even with real threads.
TEST(Cancellation, DeadlineVerdictIndependentOfWorkers) {
  auto verdicts = [](long long workers) {
    BatchConfig bc;
    bc.worker_threads = workers;
    BatchEngine engine(bc);
    std::vector<std::future<SolveResult<Problem>>> futures;
    for (std::size_t k = 0; k < 12; ++k) {
      const auto p = make_case(48, k);
      RunConfig rc;
      rc.mode = Mode::kHeterogeneous;
      chaos::RequestOptions opts;
      // Alternate impossible / generous simulated budgets.
      opts.deadline_ms = k % 2 == 0 ? 1e-6 : 1e9;
      auto f = engine.submit(p, rc, opts);
      EXPECT_TRUE(f.has_value());
      futures.push_back(std::move(*f));
    }
    const BatchReport rep = engine.wait();
    std::vector<chaos::RequestOutcome> out;
    for (const auto& item : rep.items) out.push_back(item.outcome);
    for (auto& f : futures) {
      try {
        (void)f.get();
      } catch (const fault::DeadlineExceededError&) {
      }
    }
    return out;
  };
  const auto inline_verdicts = verdicts(0);
  const auto w4 = verdicts(4);
  const auto w16 = verdicts(16);
  ASSERT_EQ(inline_verdicts.size(), 12u);
  for (std::size_t k = 0; k < 12; ++k) {
    EXPECT_EQ(inline_verdicts[k], k % 2 == 0
                                      ? chaos::RequestOutcome::kDeadlineExceeded
                                      : chaos::RequestOutcome::kOk)
        << k;
    EXPECT_EQ(w4[k], inline_verdicts[k]) << k;
    EXPECT_EQ(w16[k], inline_verdicts[k]) << k;
  }
}

/// Cancelling after completion is a harmless no-op; dropping a source
/// while its token is still referenced by a queued request is safe
/// (shared ownership), and tokens can be shared across requests.
TEST(Cancellation, TokenLifetimeAndSharing) {
  BatchConfig bc;
  bc.worker_threads = 0;
  BatchEngine engine(bc);
  chaos::CancelToken shared;
  {
    chaos::CancelSource source;
    shared = source.token();
    source.request_cancel();
  }  // source destroyed; the token keeps the flag alive
  EXPECT_TRUE(shared.cancelled());
  chaos::RequestOptions opts;
  opts.cancel = shared;
  auto f1 = engine.submit(make_case(16, 1), RunConfig{}, opts);
  auto f2 = engine.submit(make_case(16, 2), RunConfig{}, opts);
  ASSERT_TRUE(f1.has_value() && f2.has_value());
  const BatchReport rep = engine.wait();
  EXPECT_EQ(rep.cancelled_solves, 2u);
  EXPECT_THROW(f1->get(), fault::CancelledError);
  EXPECT_THROW(f2->get(), fault::CancelledError);
}

}  // namespace
}  // namespace lddp
