// 3-D framework: every execution mode against the serial scan, for every
// one of the 127 contributing subsets (sampled) and the 3-way LCS problem.
#include <gtest/gtest.h>

#include "core/framework3.h"
#include "problems/alignment.h"
#include "problems/lcs3.h"

namespace lddp {
namespace {

/// Probe problem that mixes coordinates with exactly its declared offsets.
class Probe3 {
 public:
  using Value = std::uint64_t;
  Probe3(std::size_t ni, std::size_t nj, std::size_t nk, std::uint8_t mask)
      : ni_(ni), nj_(nj), nk_(nk), deps_(mask) {}

  std::size_t ni() const { return ni_; }
  std::size_t nj() const { return nj_; }
  std::size_t nk() const { return nk_; }
  ContributingSet3 deps() const { return deps_; }
  Value boundary() const { return 0x9e3779b97f4a7c15ULL; }
  Value compute(std::size_t i, std::size_t j, std::size_t k,
                const Neighbors3<Value>& nb) const {
    Value r = 0xcbf29ce484222325ULL + i * 131 + j * 17 + k * 3;
    if (deps_.has(Dep3::kD100)) r = r * 0x100000001b3ULL ^ nb.d100;
    if (deps_.has(Dep3::kD010)) r = r * 0x100000001b3ULL ^ nb.d010;
    if (deps_.has(Dep3::kD001)) r = r * 0x100000001b3ULL ^ nb.d001;
    if (deps_.has(Dep3::kD110)) r = r * 0x100000001b3ULL ^ nb.d110;
    if (deps_.has(Dep3::kD101)) r = r * 0x100000001b3ULL ^ nb.d101;
    if (deps_.has(Dep3::kD011)) r = r * 0x100000001b3ULL ^ nb.d011;
    if (deps_.has(Dep3::kD111)) r = r * 0x100000001b3ULL ^ nb.d111;
    return r;
  }

 private:
  std::size_t ni_, nj_, nk_;
  ContributingSet3 deps_;
};
static_assert(LddpProblem3<Probe3>);

class AllSets3Test : public ::testing::TestWithParam<int> {};

TEST_P(AllSets3Test, AllModesMatchSerial) {
  const Probe3 p(9, 11, 7, static_cast<std::uint8_t>(GetParam()));
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto ref = solve3(p, cfg);
  for (Mode mode : {Mode::kCpuParallel, Mode::kGpu, Mode::kHeterogeneous}) {
    cfg.mode = mode;
    EXPECT_EQ(solve3(p, cfg), ref) << to_string(mode);
  }
}

// All 127 subsets is overkill per-commit; cover every single-offset set,
// every pair involving d111, and a spread of larger masks.
INSTANTIATE_TEST_SUITE_P(Masks, AllSets3Test,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 65, 66,
                                           68, 72, 80, 96, 3, 7, 15, 31, 63,
                                           127, 85, 106));

TEST(Framework3Test, HeteroSplitSweepsStayCorrect) {
  const Probe3 p(14, 10, 12, 0b1001011);
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto ref = solve3(p, cfg);
  cfg.mode = Mode::kHeterogeneous;
  for (HeteroParams hp : {HeteroParams{-1, -1}, HeteroParams{0, 0},
                          HeteroParams{0, 100}, HeteroParams{5, 3},
                          HeteroParams{100, 100}, HeteroParams{2, 14}}) {
    cfg.hetero = hp;
    EXPECT_EQ(solve3(p, cfg), ref) << hp.t_switch << "/" << hp.t_share;
  }
}

TEST(Framework3Test, DegenerateShapesReduceTo2D) {
  // ni == 1 collapses to a 2-D table; results must still match serial.
  const Probe3 p(1, 20, 17, 0b0000111);
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto ref = solve3(p, cfg);
  cfg.mode = Mode::kHeterogeneous;
  EXPECT_EQ(solve3(p, cfg), ref);
}

TEST(Lcs3Test, KnownCases) {
  EXPECT_EQ(problems::lcs3_reference("abcd", "bcd", "cbd"), 2);  // "bd"
  EXPECT_EQ(problems::lcs3_reference("abc", "abc", "abc"), 3);
  EXPECT_EQ(problems::lcs3_reference("abc", "def", "ghi"), 0);
  EXPECT_EQ(problems::lcs3_reference("", "abc", "abc"), 0);
  EXPECT_EQ(problems::lcs3_reference("xayb", "ayxb", "aybx"), 3);  // "ayb"
}

TEST(Lcs3Test, PairwiseLcsIsUpperBound) {
  const std::string a = problems::random_sequence(18, 1);
  const std::string b = problems::random_sequence(20, 2);
  const std::string c = problems::random_sequence(16, 3);
  const auto three = problems::lcs3_reference(a, b, c);
  EXPECT_LE(three, problems::lcs3_reference(a, b, b));  // = LCS(a, b)
  EXPECT_GE(three, 0);
}

TEST(Lcs3Test, FrameworkMatchesReferenceAllModes) {
  const std::string a = problems::random_sequence(24, 11);
  const std::string b = problems::random_sequence(28, 12);
  const std::string c = problems::random_sequence(22, 13);
  problems::Lcs3Problem p(a, b, c);
  const auto expected = problems::lcs3_reference(a, b, c);
  for (Mode mode : {Mode::kCpuSerial, Mode::kCpuParallel, Mode::kGpu,
                    Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    const auto t = solve3(p, cfg);
    EXPECT_EQ(t.at(a.size(), b.size(), c.size()), expected)
        << to_string(mode);
  }
}

TEST(Framework3Test, StatsArePopulated) {
  problems::Lcs3Problem p(problems::random_sequence(20, 5),
                          problems::random_sequence(20, 6),
                          problems::random_sequence(20, 7));
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  SolveStats stats;
  solve3(p, cfg, &stats);
  EXPECT_EQ(stats.cells, 21u * 21u * 21u);
  EXPECT_EQ(stats.fronts, 21u + 21u + 21u - 2u);
  EXPECT_GT(stats.sim_seconds, 0.0);
  EXPECT_GT(stats.cpu_busy_seconds + stats.gpu_busy_seconds, 0.0);
}

TEST(Framework3Test, HeteroBeatsPureGpuAtScale) {
  problems::Lcs3Problem p(problems::random_sequence(96, 8),
                          problems::random_sequence(96, 9),
                          problems::random_sequence(96, 10));
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  SolveStats het;
  solve3(p, cfg, &het);
  cfg.mode = Mode::kGpu;
  SolveStats gpu;
  solve3(p, cfg, &gpu);
  EXPECT_LT(het.sim_seconds, gpu.sim_seconds);
}

}  // namespace
}  // namespace lddp
