// Grid3 and the 3-D anti-diagonal plane layout: bijection, plane
// contiguity, dependency ordering, slab prefixes.
#include <gtest/gtest.h>

#include <vector>

#include "core/problem3.h"
#include "tables/grid3.h"

namespace lddp {
namespace {

TEST(Grid3Test, FillAndAccess) {
  Grid3<int> g(2, 3, 4, 9);
  EXPECT_EQ(g.size(), 24u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      for (std::size_t k = 0; k < 4; ++k) EXPECT_EQ(g.at(i, j, k), 9);
  g.at(1, 2, 3) = 42;
  EXPECT_EQ(g.at(1, 2, 3), 42);
  EXPECT_THROW(Grid3<int>(0, 1, 1), CheckError);
}

struct Dims3 {
  std::size_t ni, nj, nk;
};

class Layout3Test : public ::testing::TestWithParam<Dims3> {};

TEST_P(Layout3Test, BijectionAndPlaneContiguity) {
  const auto [ni, nj, nk] = GetParam();
  const AntiDiagonalLayout3 lay(ni, nj, nk);
  ASSERT_EQ(lay.size(), ni * nj * nk);
  ASSERT_EQ(lay.num_fronts(), ni + nj + nk - 2);
  std::vector<char> seen(lay.size(), 0);
  std::size_t total = 0;
  for (std::size_t d = 0; d < lay.num_fronts(); ++d) {
    for (std::size_t p = 0; p < lay.front_size(d); ++p) {
      const CellIndex3 c = lay.cell(d, p);
      ASSERT_LT(c.i, ni);
      ASSERT_LT(c.j, nj);
      ASSERT_LT(c.k, nk);
      EXPECT_EQ(c.i + c.j + c.k, d);
      EXPECT_EQ(lay.flat(c.i, c.j, c.k), lay.front_offset(d) + p);
      char& mark = seen[lay.flat(c.i, c.j, c.k)];
      EXPECT_EQ(mark, 0);
      mark = 1;
      ++total;
    }
  }
  EXPECT_EQ(total, lay.size());
}

TEST_P(Layout3Test, AllSevenOffsetsPointToEarlierPlanes) {
  const auto [ni, nj, nk] = GetParam();
  const AntiDiagonalLayout3 lay(ni, nj, nk);
  for (std::size_t i = 0; i < ni; ++i)
    for (std::size_t j = 0; j < nj; ++j)
      for (std::size_t k = 0; k < nk; ++k)
        for (int di = 0; di <= 1; ++di)
          for (int dj = 0; dj <= 1; ++dj)
            for (int dk = 0; dk <= 1; ++dk) {
              if (di + dj + dk == 0) continue;
              if (i < static_cast<std::size_t>(di) ||
                  j < static_cast<std::size_t>(dj) ||
                  k < static_cast<std::size_t>(dk))
                continue;
              EXPECT_LT(lay.front_of(i - di, j - dj, k - dk),
                        lay.front_of(i, j, k));
            }
}

TEST_P(Layout3Test, SlabPrefixMatchesEnumeration) {
  const auto [ni, nj, nk] = GetParam();
  const AntiDiagonalLayout3 lay(ni, nj, nk);
  for (std::size_t d = 0; d < lay.num_fronts(); ++d) {
    for (std::size_t s = 0; s <= ni + 1; ++s) {
      std::size_t expected = 0;
      for (std::size_t p = 0; p < lay.front_size(d); ++p)
        if (lay.cell(d, p).i < s) ++expected;
      EXPECT_EQ(lay.slab_prefix(d, s), expected) << "d=" << d << " s=" << s;
      // The slab is a prefix: cells are ordered by i ascending.
      for (std::size_t p = 1; p < lay.front_size(d); ++p)
        EXPECT_GE(lay.cell(d, p).i, lay.cell(d, p - 1).i);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Layout3Test,
    ::testing::Values(Dims3{1, 1, 1}, Dims3{1, 5, 3}, Dims3{4, 1, 6},
                      Dims3{5, 4, 1}, Dims3{3, 3, 3}, Dims3{7, 5, 3},
                      Dims3{2, 9, 4}, Dims3{6, 6, 6}),
    [](const ::testing::TestParamInfo<Dims3>& info) {
      return std::to_string(info.param.ni) + "x" +
             std::to_string(info.param.nj) + "x" +
             std::to_string(info.param.nk);
    });

TEST(ContributingSet3Test, MaskValidation) {
  EXPECT_THROW(ContributingSet3(std::uint8_t{0}), CheckError);
  EXPECT_THROW(ContributingSet3(std::uint8_t{128}), CheckError);
  const ContributingSet3 cs{Dep3::kD111, Dep3::kD100};
  EXPECT_TRUE(cs.has(Dep3::kD111));
  EXPECT_TRUE(cs.has(Dep3::kD100));
  EXPECT_FALSE(cs.has(Dep3::kD011));
}

}  // namespace
}  // namespace lddp
