#include <gtest/gtest.h>

#include "core/framework.h"
#include "problems/max_square.h"

namespace lddp::problems {
namespace {

TEST(MaxSquareTest, AllOnesAndAllZeros) {
  {
    MaxSquareProblem p(Grid<std::uint8_t>(5, 7, 1));
    RunConfig cfg;
    cfg.mode = Mode::kCpuSerial;
    EXPECT_EQ(max_square_side(solve(p, cfg).table), 5);
  }
  {
    MaxSquareProblem p(Grid<std::uint8_t>(5, 7, 0));
    RunConfig cfg;
    cfg.mode = Mode::kCpuSerial;
    EXPECT_EQ(max_square_side(solve(p, cfg).table), 0);
  }
}

TEST(MaxSquareTest, MatchesBruteForceOnRandomGrids) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto bits = random_bit_grid(12 + seed, 15 - seed % 4, seed, 0.75);
    MaxSquareProblem p(bits);
    RunConfig cfg;
    cfg.mode = Mode::kHeterogeneous;
    EXPECT_EQ(max_square_side(solve(p, cfg).table),
              max_square_brute_force(bits))
        << "seed " << seed;
  }
}

TEST(MaxSquareTest, ClassifiesAntiDiagonal) {
  MaxSquareProblem p(random_bit_grid(4, 4, 1));
  EXPECT_EQ(classify(p.deps()), Pattern::kAntiDiagonal);
}

TEST(MaxSquareTest, AllModesAgree) {
  const auto bits = random_bit_grid(90, 120, 9, 0.8);
  MaxSquareProblem p(bits);
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);
  for (Mode mode : {Mode::kCpuParallel, Mode::kCpuTiled, Mode::kGpu,
                    Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    EXPECT_EQ(solve(p, cfg).table, ref.table) << to_string(mode);
  }
}

TEST(MaxSquareTest, PlantedSquareIsFound) {
  auto bits = random_bit_grid(40, 40, 10, 0.3);  // sparse background
  for (std::size_t i = 12; i < 12 + 9; ++i)
    for (std::size_t j = 20; j < 20 + 9; ++j) bits.at(i, j) = 1;
  MaxSquareProblem p(bits);
  RunConfig cfg;
  cfg.mode = Mode::kGpu;
  EXPECT_GE(max_square_side(solve(p, cfg).table), 9);
}

}  // namespace
}  // namespace lddp::problems
