// Tile-granular execution layer: bit-identity of the tiled GPU and tiled
// heterogeneous strategies against the serial reference across all 15
// contributing sets, ragged shapes, degenerate tables and tile sizes
// (including tile = 1 and tile >= table), plus TileScheduler geometry
// invariants.
#include <gtest/gtest.h>

#include <string>

#include "core/framework.h"
#include "core/tile_scheduler.h"
#include "problems/alignment.h"
#include "problems/checkerboard.h"
#include "problems/image.h"
#include "problems/floyd_steinberg.h"
#include "problems/levenshtein.h"
#include "problems/synthetic.h"

namespace lddp {
namespace {

auto hash_problem(std::size_t rows, std::size_t cols, ContributingSet deps) {
  return problems::make_function_problem<std::uint64_t>(
      rows, cols, deps, 5ULL,
      [deps](std::size_t i, std::size_t j,
             const Neighbors<std::uint64_t>& nb) {
        std::uint64_t r = i * 131 + j * 17 + 1;
        if (deps.has_w()) r = r * 31 + nb.w;
        if (deps.has_nw()) r = r * 37 + nb.nw;
        if (deps.has_n()) r = r * 41 + nb.n;
        if (deps.has_ne()) r = r * 43 + nb.ne;
        return r;
      });
}

bool cell_equal(const problems::FsCell& a, const problems::FsCell& b) {
  return a.err == b.err && a.out == b.out;
}
template <typename T>
bool cell_equal(const T& a, const T& b) {
  return a == b;
}

template <typename T>
void expect_tables_equal(const Grid<T>& got, const Grid<T>& want,
                         const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t i = 0; i < got.rows(); ++i)
    for (std::size_t j = 0; j < got.cols(); ++j)
      ASSERT_TRUE(cell_equal(got.at(i, j), want.at(i, j)))
          << what << " at (" << i << ", " << j << ")";
}

template <typename P>
void expect_tiled_matches_serial(const P& p, const char* what) {
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);
  for (const Mode mode : {Mode::kGpu, Mode::kHeterogeneous}) {
    for (const bool fused : {true, false}) {
      RunConfig cfg;
      cfg.mode = mode;
      cfg.tile = 8;
      cfg.fused_launches = fused;
      const auto r = solve(p, cfg);
      expect_tables_equal(r.table, ref.table,
                          std::string(what) + " mode=" + to_string(mode) +
                              " fused=" + (fused ? "1" : "0"));
      EXPECT_EQ(r.stats.mode_used, mode);
    }
  }
}

TEST(TiledCorrectnessTest, AllContributingSetsRaggedTable) {
  for (int mask = 1; mask <= 15; ++mask) {
    const ContributingSet deps(static_cast<std::uint8_t>(mask));
    const auto p = hash_problem(37, 53, deps);
    expect_tiled_matches_serial(p, deps.to_string().c_str());
  }
}

TEST(TiledCorrectnessTest, TileSizeSweep) {
  // tile = 1 (every cell its own tile), a ragged odd size, a typical size,
  // and tiles at least as large as the table (single-tile degenerate case).
  const ContributingSet deps{Dep::kW, Dep::kN, Dep::kNE};
  const auto p = hash_problem(41, 29, deps);
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);
  for (const long long tile : {1LL, 7LL, 64LL, 4096LL}) {
    for (const Mode mode : {Mode::kGpu, Mode::kHeterogeneous}) {
      RunConfig cfg;
      cfg.mode = mode;
      cfg.tile = tile;
      const auto r = solve(p, cfg);
      EXPECT_EQ(r.table, ref.table)
          << "tile=" << tile << " mode=" << to_string(mode);
    }
  }
}

TEST(TiledCorrectnessTest, DegenerateShapes) {
  for (const auto [rows, cols] :
       {std::pair<std::size_t, std::size_t>{1, 64},
        std::pair<std::size_t, std::size_t>{64, 1},
        std::pair<std::size_t, std::size_t>{1, 1},
        std::pair<std::size_t, std::size_t>{3, 200},
        std::pair<std::size_t, std::size_t>{200, 3}}) {
    for (const std::uint8_t mask : {0b1111, 0b1000, 0b0001}) {
      const ContributingSet deps(mask);
      const auto p = hash_problem(rows, cols, deps);
      expect_tiled_matches_serial(
          p, (std::to_string(rows) + "x" + std::to_string(cols)).c_str());
    }
  }
}

TEST(TiledCorrectnessTest, ExplicitHeteroParams) {
  const auto p = hash_problem(96, 80, ContributingSet{Dep::kW, Dep::kNW});
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);
  for (const long long t_switch : {0LL, 16LL, 48LL}) {
    for (const long long t_share : {0LL, 24LL, 96LL}) {
      RunConfig cfg;
      cfg.mode = Mode::kHeterogeneous;
      cfg.tile = 16;
      cfg.hetero.t_switch = t_switch;
      cfg.hetero.t_share = t_share;
      const auto r = solve(p, cfg);
      EXPECT_EQ(r.table, ref.table)
          << "t_switch=" << t_switch << " t_share=" << t_share;
    }
  }
}

TEST(TiledCorrectnessTest, AutoTileMatchesSerial) {
  const auto p = hash_problem(120, 77, ContributingSet{Dep::kW, Dep::kNE});
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);
  for (const Mode mode : {Mode::kGpu, Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    cfg.tile = -1;  // model-based default
    EXPECT_EQ(solve(p, cfg).table, ref.table) << to_string(mode);
  }
}

TEST(TiledCorrectnessTest, RealProblems) {
  problems::LevenshteinProblem lev(problems::random_sequence(150, 11),
                                   problems::random_sequence(190, 12));
  expect_tiled_matches_serial(lev, "levenshtein");

  problems::FloydSteinbergProblem fs(problems::plasma_image(96, 128, 3));
  expect_tiled_matches_serial(fs, "floyd-steinberg");

  problems::CheckerboardProblem cb(problems::random_cost_board(48, 64, 9));
  expect_tiled_matches_serial(cb, "checkerboard");
}

TEST(TiledCorrectnessTest, TiledFasterThanUntiledAtScale) {
  // The acceptance bar of the tile layer: on a large anti-diagonal table
  // the tiled GPU path (fewer launches, shared-memory staging) must beat
  // the fused untiled baseline in simulated time.
  problems::LevenshteinProblem p(problems::random_sequence(2048, 21),
                                 problems::random_sequence(2048, 22));
  RunConfig untiled;
  untiled.mode = Mode::kGpu;
  RunConfig tiled = untiled;
  tiled.tile = 64;
  EXPECT_LT(solve(p, tiled).stats.sim_seconds,
            solve(p, untiled).stats.sim_seconds);
}

TEST(TileSchedulerTest, GeometryInvariants) {
  for (const std::uint8_t mask : {0b0111, 0b1111, 0b1000}) {
    const ContributingSet deps(mask);
    const TileScheduler sched(37, 53, 8, deps);
    // Every cell is visited exactly once across all tiles.
    Grid<int> seen(37, 53);
    std::size_t cells = 0;
    for (std::size_t g = 0; g < sched.num_fronts(); ++g) {
      for (std::size_t k = 0; k < sched.front_tiles(g); ++k) {
        const TileScheduler::TileCoord t = sched.front_tile(g, k);
        sched.for_each_cell(t.tu, t.tv, [&](std::size_t i, std::size_t j) {
          ++seen.at(i, j);
          ++cells;
        });
      }
    }
    EXPECT_EQ(cells, 37u * 53u) << deps.to_string();
    for (std::size_t i = 0; i < 37; ++i)
      for (std::size_t j = 0; j < 53; ++j)
        ASSERT_EQ(seen.at(i, j), 1) << deps.to_string();
    EXPECT_EQ(sched.skewed(), deps.has_ne());
  }
}

TEST(TileSchedulerTest, CrossTileDependenciesPointToEarlierFronts) {
  // The scheduling invariant behind bit-identity: every dependency of a
  // cell in tile front g lives in a tile of front <= g (same tile or an
  // earlier front).
  for (int mask = 1; mask <= 15; ++mask) {
    const ContributingSet deps(static_cast<std::uint8_t>(mask));
    const TileScheduler sched(23, 31, 4, deps);
    // Map each cell to its tile front.
    Grid<std::size_t> front_of(23, 31);
    for (std::size_t g = 0; g < sched.num_fronts(); ++g)
      for (std::size_t k = 0; k < sched.front_tiles(g); ++k) {
        const TileScheduler::TileCoord t = sched.front_tile(g, k);
        sched.for_each_cell(t.tu, t.tv,
                            [&](std::size_t i, std::size_t j) {
                              front_of.at(i, j) = g;
                            });
      }
    for (std::size_t i = 0; i < 23; ++i)
      for (std::size_t j = 0; j < 31; ++j) {
        const std::size_t g = front_of.at(i, j);
        if (deps.has_w() && j > 0) ASSERT_LE(front_of.at(i, j - 1), g);
        if (i > 0) {
          if (deps.has_nw() && j > 0) ASSERT_LE(front_of.at(i - 1, j - 1), g);
          if (deps.has_n()) ASSERT_LE(front_of.at(i - 1, j), g);
          if (deps.has_ne() && j + 1 < 31)
            ASSERT_LE(front_of.at(i - 1, j + 1), g);
        }
      }
  }
}

}  // namespace
}  // namespace lddp
