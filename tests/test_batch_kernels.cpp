// Differential and property tests for the batch-front (SIMD) cell
// kernels: RunConfig::batch_kernels = true must produce bit-identical
// tables to the scalar per-cell path across every contributing set,
// execution mode, tiling setting and table shape — and the front runner
// must hand every interior cell to the hook exactly once with a valid
// span, covering the rest through the scalar fallback.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/framework.h"
#include "core/front_runner.h"
#include "cpu/thread_pool.h"
#include "problems/checkerboard.h"
#include "problems/gotoh.h"
#include "problems/lcs.h"
#include "problems/levenshtein.h"
#include "problems/max_square.h"
#include "problems/seam_carving.h"
#include "problems/synthetic.h"
#include "tables/layout.h"
#include "util/rng.h"

namespace lddp {
namespace {

// ---------------------------------------------------------------------
// A configurable-deps problem whose batch hook accepts *any* span shape
// with a scalar lane loop — so every layout's packing path (unit-stride
// rows, strided anti-diagonal gathers, two-run shells) is exercised.
class SyntheticBatchProblem {
 public:
  using Value = std::int32_t;

  SyntheticBatchProblem(std::size_t rows, std::size_t cols,
                        ContributingSet deps)
      : rows_(rows), cols_(cols), deps_(deps) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  ContributingSet deps() const { return deps_; }
  Value boundary() const { return 12345; }

  Value combine(std::size_t i, std::size_t j, Value w, Value nw, Value n,
                Value ne) const {
    Value v = static_cast<Value>((i * 31 + j * 17) % 257);
    if (deps_.has_w()) v += 3 * (w & 0xffff);
    if (deps_.has_nw()) v += 5 * (nw & 0xffff);
    if (deps_.has_n()) v += 7 * (n & 0xffff);
    if (deps_.has_ne()) v += 9 * (ne & 0xffff);
    return v;
  }

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    return combine(i, j, nb.w, nb.nw, nb.n, nb.ne);
  }

  bool compute_front(const FrontSpan<Value>& s) const {
    for (std::size_t k = 0; k < s.len; ++k) {
      const auto i = static_cast<std::size_t>(
          static_cast<std::int64_t>(s.i0) +
          static_cast<std::int64_t>(k) * s.di);
      const auto j = static_cast<std::size_t>(
          static_cast<std::int64_t>(s.j0) +
          static_cast<std::int64_t>(k) * s.dj);
      s.out[k] = combine(i, j, deps_.has_w() ? s.w[k] : 0,
                         deps_.has_nw() ? s.nw[k] : 0,
                         deps_.has_n() ? s.n[k] : 0,
                         deps_.has_ne() ? s.ne[k] : 0);
    }
    return true;
  }

 private:
  std::size_t rows_, cols_;
  ContributingSet deps_;
};
static_assert(has_batch_front_v<SyntheticBatchProblem>);

// gtest's ASSERT_* only works in void functions; emulate for bool.
#define ASSERT_LT_OR_RETURN(a, b)  \
  if (!((a) < (b))) {              \
    ADD_FAILURE() << #a " >= " #b; \
    return false;                  \
  }

// Wraps SyntheticBatchProblem with per-cell bookkeeping: which cells the
// hook computed, which the scalar fallback computed, and whether every
// span handed to the hook was interior and in-range.
class RecordingProblem {
 public:
  using Value = std::int32_t;

  RecordingProblem(const SyntheticBatchProblem& base, Grid<std::int32_t>* hook,
                   Grid<std::int32_t>* scalar)
      : base_(base), hook_(hook), scalar_(scalar) {}

  std::size_t rows() const { return base_.rows(); }
  std::size_t cols() const { return base_.cols(); }
  ContributingSet deps() const { return base_.deps(); }
  Value boundary() const { return base_.boundary(); }

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    ++scalar_->at(i, j);
    return base_.compute(i, j, nb);
  }

  bool compute_front(const FrontSpan<Value>& s) const {
    EXPECT_GE(s.len, detail::kMinBatchRun);
    const ContributingSet d = base_.deps();
    for (std::size_t k = 0; k < s.len; ++k) {
      const auto i = static_cast<std::size_t>(
          static_cast<std::int64_t>(s.i0) +
          static_cast<std::int64_t>(k) * s.di);
      const auto j = static_cast<std::size_t>(
          static_cast<std::int64_t>(s.j0) +
          static_cast<std::int64_t>(k) * s.dj);
      ASSERT_LT_OR_RETURN(i, rows());
      ASSERT_LT_OR_RETURN(j, cols());
      EXPECT_GE(i, 1u) << "span reaches the top boundary row";
      EXPECT_GE(j, 1u) << "span reaches the left boundary column";
      if (d.has_ne())
        EXPECT_LT(j + 1, cols()) << "NE span reaches the right edge";
      ++hook_->at(i, j);
    }
    return base_.compute_front(s);
  }

 private:
  const SyntheticBatchProblem& base_;
  Grid<std::int32_t>* hook_;
  Grid<std::int32_t>* scalar_;
};

// ---------------------------------------------------------------------
// Differential: batch on == batch off, bit for bit.

template <typename P>
void expect_batch_identical(const P& p, RunConfig cfg,
                            const std::string& what) {
  cfg.batch_kernels = false;
  const auto off = solve(p, cfg);
  cfg.batch_kernels = true;
  const auto on = solve(p, cfg);
  ASSERT_EQ(on.table.rows(), off.table.rows());
  ASSERT_EQ(on.table.cols(), off.table.cols());
  std::size_t bad = 0;
  for (std::size_t i = 0; i < on.table.rows() && bad < 5; ++i)
    for (std::size_t j = 0; j < on.table.cols() && bad < 5; ++j)
      if (!(on.table.at(i, j) == off.table.at(i, j))) {
        ADD_FAILURE() << what << ": mismatch at (" << i << ", " << j << ")";
        ++bad;
      }
  // The knob must not change anything the stats derive from the table.
  EXPECT_EQ(on.stats.cells, off.stats.cells) << what;
}

struct Shape {
  std::size_t rows, cols;
};
constexpr Shape kShapes[] = {{1, 1},   {1, 64},  {64, 1},
                             {64, 64}, {33, 77}, {128, 5}};

TEST(BatchKernels, DifferentialAllContributingSets) {
  for (std::uint8_t mask = 1; mask <= 15; ++mask) {
    const ContributingSet deps{mask};
    for (const Mode mode : {Mode::kCpuSerial, Mode::kCpuParallel, Mode::kGpu,
                            Mode::kHeterogeneous}) {
      for (const long long tile : {0LL, 32LL}) {
        for (const Shape& sh : kShapes) {
          SyntheticBatchProblem p(sh.rows, sh.cols, deps);
          RunConfig cfg;
          cfg.mode = mode;
          cfg.tile = tile;
          expect_batch_identical(
              p, cfg,
              "deps=" + deps.to_string() + " mode=" + to_string(mode) +
                  " tile=" + std::to_string(tile) + " " +
                  std::to_string(sh.rows) + "x" + std::to_string(sh.cols));
        }
      }
    }
    // CPU tiling handles NE-free sets only.
    if (!deps.has_ne()) {
      for (const Shape& sh : kShapes) {
        SyntheticBatchProblem p(sh.rows, sh.cols, deps);
        RunConfig cfg;
        cfg.mode = Mode::kCpuTiled;
        cfg.cpu_tile = 16;
        expect_batch_identical(p, cfg,
                               "deps=" + deps.to_string() + " cpu_tiled " +
                                   std::to_string(sh.rows) + "x" +
                                   std::to_string(sh.cols));
      }
    }
  }
}

TEST(BatchKernels, DifferentialWithThreadPool) {
  cpu::ThreadPool pool(4);
  for (const std::uint8_t mask :
       {std::uint8_t{0b0111}, std::uint8_t{0b1110}, std::uint8_t{0b0010}}) {
    const ContributingSet deps{mask};
    SyntheticBatchProblem p(128, 128, deps);
    for (const Mode mode : {Mode::kCpuParallel, Mode::kHeterogeneous}) {
      RunConfig cfg;
      cfg.mode = mode;
      cfg.pool = &pool;
      expect_batch_identical(p, cfg,
                             "pooled deps=" + deps.to_string() +
                                 " mode=" + to_string(mode));
    }
  }
}

std::string random_seq(std::size_t n, std::uint64_t seed) {
  static constexpr char kAlpha[] = {'A', 'C', 'G', 'T'};
  std::string s(n, 'A');
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) s[i] = kAlpha[rng.uniform_int(0, 3)];
  return s;
}

TEST(BatchKernels, DifferentialRealProblems) {
  const std::string a = random_seq(91, 7), b = random_seq(57, 9);
  const problems::LevenshteinProblem lev(a, b);
  const problems::LcsProblem lcs(a, b);
  const problems::GotohProblem gotoh(a, b);
  const problems::MaxSquareProblem sq(problems::random_bit_grid(80, 70, 21));
  const problems::CheckerboardProblem chk(
      problems::random_cost_board(60, 90, 22));
  const problems::SeamCarveProblem seam(
      problems::random_cost_board(90, 60, 23));
  const problems::MaxNwProblem maxnw(problems::random_input_grid(70, 70, 24),
                                     3);
  problems::MinNwNProblem minnwn(64, 96, 1);

  for (const Mode mode : {Mode::kCpuSerial, Mode::kCpuParallel, Mode::kGpu,
                          Mode::kHeterogeneous}) {
    for (const long long tile : {0LL, 32LL}) {
      RunConfig cfg;
      cfg.mode = mode;
      cfg.tile = tile;
      const std::string tag =
          " mode=" + to_string(mode) + " tile=" + std::to_string(tile);
      expect_batch_identical(lev, cfg, "levenshtein" + tag);
      expect_batch_identical(lcs, cfg, "lcs" + tag);
      expect_batch_identical(gotoh, cfg, "gotoh" + tag);
      expect_batch_identical(sq, cfg, "max_square" + tag);
      expect_batch_identical(chk, cfg, "checkerboard" + tag);
      expect_batch_identical(seam, cfg, "seam" + tag);
      expect_batch_identical(maxnw, cfg, "maxnw" + tag);
      expect_batch_identical(minnwn, cfg, "minnwn" + tag);
    }
  }
}

// ---------------------------------------------------------------------
// Property: over every layout, running fronts through run_front_range in
// arbitrary [lo, hi) chunks computes each cell exactly once (hook or
// scalar, never both), hands the hook only valid interior spans, and
// reproduces the plain row-major reference table.

template <typename Layout>
void run_layout_property(const Layout& layout, ContributingSet deps,
                         std::uint64_t seed) {
  const std::size_t rows = layout.rows(), cols = layout.cols();
  SyntheticBatchProblem base(rows, cols, deps);
  Grid<std::int32_t> hook_counts(rows, cols, 0);
  Grid<std::int32_t> scalar_counts(rows, cols, 0);
  RecordingProblem p(base, &hook_counts, &scalar_counts);

  std::vector<std::int32_t> storage(layout.size(), 0);
  auto addr = [&](std::size_t i, std::size_t j) {
    return storage.data() + layout.flat(i, j);
  };
  Rng rng(seed);
  for (std::size_t f = 0; f < layout.num_fronts(); ++f) {
    const std::size_t fs = layout.front_size(f);
    std::size_t lo = 0;
    while (lo < fs) {
      const std::size_t hi = std::min<std::size_t>(
          fs, lo + static_cast<std::size_t>(rng.uniform_int(
                      1, static_cast<std::int64_t>(fs))));
      detail::run_front_range(p, deps, p.boundary(), layout, f, lo, hi, addr,
                              /*batch=*/true);
      lo = hi;
    }
  }

  // Reference: plain row-major scalar sweep (valid for every set here —
  // all four offsets point to earlier rows or earlier columns).
  Grid<std::int32_t> ref(rows, cols, 0);
  auto read_ref = [&](std::size_t i, std::size_t j) { return ref.at(i, j); };
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      ref.at(i, j) = detail::compute_cell(base, deps, base.boundary(), i, j,
                                          cols, read_ref);

  std::size_t bad = 0;
  for (std::size_t i = 0; i < rows && bad < 5; ++i) {
    for (std::size_t j = 0; j < cols && bad < 5; ++j) {
      const std::int32_t times =
          hook_counts.at(i, j) + scalar_counts.at(i, j);
      if (times != 1) {
        ADD_FAILURE() << "cell (" << i << ", " << j << ") computed "
                      << times << " times";
        ++bad;
      }
      if (storage[layout.flat(i, j)] != ref.at(i, j)) {
        ADD_FAILURE() << "value mismatch at (" << i << ", " << j << ")";
        ++bad;
      }
    }
  }
}

TEST(BatchKernels, FrontRunTilingProperty) {
  constexpr Shape kPropShapes[] = {{1, 1},   {1, 37},  {37, 1}, {17, 23},
                                   {40, 9},  {9, 40},  {64, 64}};
  std::uint64_t seed = 1000;
  for (const Shape& sh : kPropShapes) {
    const std::size_t n = sh.rows, m = sh.cols;
    run_layout_property(RowMajorLayout(n, m),
                        ContributingSet{Dep::kNW, Dep::kN, Dep::kNE},
                        ++seed);
    run_layout_property(ColumnMajorLayout(n, m),
                        ContributingSet{Dep::kW, Dep::kNW}, ++seed);
    run_layout_property(AntiDiagonalLayout(n, m),
                        ContributingSet{Dep::kW, Dep::kNW, Dep::kN}, ++seed);
    run_layout_property(
        KnightMoveLayout(n, m),
        ContributingSet{Dep::kW, Dep::kNW, Dep::kN, Dep::kNE}, ++seed);
    run_layout_property(ShellLayout(n, m), ContributingSet{Dep::kNW},
                        ++seed);
    run_layout_property(MirrorShellLayout(n, m), ContributingSet{Dep::kNE},
                        ++seed);
  }
}

}  // namespace
}  // namespace lddp
