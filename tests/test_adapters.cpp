#include <gtest/gtest.h>

#include "core/adapters.h"
#include "core/framework.h"
#include "problems/checkerboard.h"
#include "problems/column_min.h"
#include "problems/synthetic.h"

namespace lddp {
namespace {

TEST(AdaptersTest, TransposeMapsVerticalDepsToHorizontal) {
  const auto probe = problems::make_function_problem<std::uint64_t>(
      4, 6, ContributingSet{Dep::kW, Dep::kNW}, 0ULL,
      [](std::size_t, std::size_t, const Neighbors<std::uint64_t>&) {
        return 1ULL;
      });
  TransposedProblem t(probe);
  EXPECT_EQ(t.rows(), 6u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(classify(t.deps()), Pattern::kHorizontal);
  EXPECT_TRUE(t.deps().has_n());
  EXPECT_TRUE(t.deps().has_nw());
  EXPECT_FALSE(t.deps().has_w());
}

TEST(AdaptersTest, TransposeRejectsNe) {
  const auto probe = problems::make_function_problem<std::uint64_t>(
      4, 6, ContributingSet{Dep::kNE}, 0ULL,
      [](std::size_t, std::size_t, const Neighbors<std::uint64_t>&) {
        return 1ULL;
      });
  EXPECT_THROW(TransposedProblem{probe}, CheckError);
}

TEST(AdaptersTest, MirrorMapsNeToNw) {
  const auto probe = problems::make_function_problem<std::uint64_t>(
      4, 6, ContributingSet{Dep::kNE}, 0ULL,
      [](std::size_t, std::size_t, const Neighbors<std::uint64_t>&) {
        return 1ULL;
      });
  MirroredProblem m(probe);
  EXPECT_EQ(classify(m.deps()), Pattern::kInvertedL);
}

TEST(AdaptersTest, MirrorRejectsW) {
  const auto probe = problems::make_function_problem<std::uint64_t>(
      4, 6, ContributingSet{Dep::kW}, 0ULL,
      [](std::size_t, std::size_t, const Neighbors<std::uint64_t>&) {
        return 1ULL;
      });
  EXPECT_THROW(MirroredProblem{probe}, CheckError);
}

TEST(AdaptersTest, TransposeGridRoundTrip) {
  Grid<int> g(2, 3);
  int v = 0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) g.at(i, j) = v++;
  const Grid<int> t = transpose_grid(g);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(t.at(j, i), g.at(i, j));
  EXPECT_EQ(transpose_grid(t), g);
}

TEST(AdaptersTest, MirrorGridRoundTrip) {
  Grid<int> g(2, 4);
  int v = 0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 4; ++j) g.at(i, j) = v++;
  const Grid<int> m = mirror_grid(g);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(m.at(i, 3 - j), g.at(i, j));
  EXPECT_EQ(mirror_grid(m), g);
}

TEST(AdaptersTest, VerticalProblemSolvesThroughTranspose) {
  const auto costs = problems::random_cost_board(9, 13, 99);
  problems::ColumnMinPathProblem p(costs);
  ASSERT_EQ(classify(p.deps()), Pattern::kVertical);
  for (Mode mode : {Mode::kCpuParallel, Mode::kGpu, Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    const auto r = solve(p, cfg);
    EXPECT_EQ(r.stats.pattern, Pattern::kVertical);
    EXPECT_EQ(r.table, problems::column_min_reference(costs))
        << to_string(mode);
  }
}

}  // namespace
}  // namespace lddp
