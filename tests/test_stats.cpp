#include <gtest/gtest.h>

#include <vector>

#include "util/stats.h"

namespace lddp {
namespace {

TEST(StatsTest, MeanMedianStddev) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.0), 1e-12);
}

TEST(StatsTest, MedianEvenCount) {
  const std::vector<double> xs{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(StatsTest, MinMaxArgmin) {
  const std::vector<double> xs{3, 1, 4, 1.5, 5};
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 5.0);
  EXPECT_EQ(argmin(xs), 1u);
}

TEST(StatsTest, EmptyInputThrows) {
  const std::vector<double> xs;
  EXPECT_THROW(mean(xs), CheckError);
  EXPECT_THROW(median(xs), CheckError);
  EXPECT_THROW(argmin(xs), CheckError);
}

TEST(StatsTest, ValleyShapeAccepted) {
  const std::vector<double> valley{9, 6, 4, 3, 3.1, 5, 8};
  EXPECT_TRUE(is_valley_shaped(valley));
}

TEST(StatsTest, ValleyShapeToleratesNoise) {
  const std::vector<double> noisy{9, 6.1, 6.2, 4, 3, 3.05, 5, 8.1, 8.0};
  EXPECT_TRUE(is_valley_shaped(noisy, 0.05));
}

TEST(StatsTest, NonValleyRejected) {
  const std::vector<double> wavy{3, 9, 2, 9, 3};
  EXPECT_FALSE(is_valley_shaped(wavy, 0.01));
}

TEST(StatsTest, ShortSeriesAreTriviallyValley) {
  const std::vector<double> two{5, 1};
  EXPECT_TRUE(is_valley_shaped(two));
}

}  // namespace
}  // namespace lddp
