#include <gtest/gtest.h>

#include <vector>

#include "sim/coalescing.h"

namespace lddp::sim {
namespace {

TEST(CoalescingTest, ContiguousFourByteAccessesUseOneTransaction) {
  // 32 lanes x 4 B consecutive = 128 B = exactly one segment.
  EXPECT_EQ(strided_warp_transactions(4, 1, 32, 128), 1u);
}

TEST(CoalescingTest, ContiguousEightByteAccessesUseTwoTransactions) {
  EXPECT_EQ(strided_warp_transactions(8, 1, 32, 128), 2u);
}

TEST(CoalescingTest, HugeStrideGivesOneTransactionPerLane) {
  EXPECT_EQ(strided_warp_transactions(4, 4096, 32, 128), 32u);
}

TEST(CoalescingTest, IntermediateStride) {
  // Stride 8 elements x 4 B = 32 B apart: 4 lanes share one 128 B segment.
  EXPECT_EQ(strided_warp_transactions(4, 8, 32, 128), 8u);
}

TEST(CoalescingTest, AmplificationRatios) {
  EXPECT_DOUBLE_EQ(coalescing_amplification(4, 1, 32, 128), 1.0);
  EXPECT_DOUBLE_EQ(coalescing_amplification(4, 4096, 32, 128), 32.0);
  EXPECT_DOUBLE_EQ(coalescing_amplification(8, 4096, 32, 128), 16.0);
}

TEST(CoalescingTest, ExplicitOffsetsDeduplicateSegments) {
  // All lanes hitting the same word: one transaction.
  std::vector<std::size_t> same(32, 64);
  EXPECT_EQ(warp_transactions(same, 128), 1u);
  // Two clusters in different segments.
  std::vector<std::size_t> two{0, 4, 8, 300, 304};
  EXPECT_EQ(warp_transactions(two, 128), 2u);
}

TEST(CoalescingTest, UnsortedOffsetsHandled) {
  std::vector<std::size_t> shuffled{900, 4, 260, 0, 132};
  EXPECT_EQ(warp_transactions(shuffled, 128), 4u);  // segs 0, 1, 2, 7
}

TEST(CoalescingTest, EmptyWarpNeedsNothing) {
  EXPECT_EQ(warp_transactions({}, 128), 0u);
}

TEST(CoalescingTest, MisalignedClusterSpansTwoSegments) {
  // 32 x 4 B starting at byte 64: bytes [64, 192) covers two segments.
  std::vector<std::size_t> offs;
  for (int lane = 0; lane < 32; ++lane) offs.push_back(64 + 4 * lane);
  EXPECT_EQ(warp_transactions(offs, 128), 2u);
}

}  // namespace
}  // namespace lddp::sim
