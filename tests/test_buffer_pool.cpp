// BufferPool: arena reuse across acquisitions, zero-fill on reuse, the
// device/pinned cache separation, and end-to-end reuse across repeated
// framework solve() calls.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/framework.h"
#include "problems/levenshtein.h"
#include "sim/memory.h"

namespace lddp {
namespace {

TEST(BufferPoolTest, ReleasedArenaIsReused) {
  sim::BufferPool pool;
  void* a = pool.acquire(1024, /*pinned=*/false);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(pool.stats().misses, 1u);
  pool.release(a, 1024, /*pinned=*/false);
  EXPECT_EQ(pool.cached_arenas(), 1u);
  void* b = pool.acquire(1024, /*pinned=*/false);
  EXPECT_EQ(b, a);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().bytes_reused, 1024u);
  pool.release(b, 1024, /*pinned=*/false);
}

TEST(BufferPoolTest, ReusedStorageIsZeroFilled) {
  sim::BufferPool pool;
  auto* a = static_cast<unsigned char*>(pool.acquire(256, false));
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(a[i], 0u) << i;  // fresh arenas are zeroed too
    a[i] = 0xAB;
  }
  pool.release(a, 256, false);
  auto* b = static_cast<unsigned char*>(pool.acquire(256, false));
  for (int i = 0; i < 256; ++i) EXPECT_EQ(b[i], 0u) << i;
  pool.release(b, 256, false);
}

TEST(BufferPoolTest, PinnedAndDeviceCachesDoNotMix) {
  sim::BufferPool pool;
  void* d = pool.acquire(512, /*pinned=*/false);
  pool.release(d, 512, /*pinned=*/false);
  void* p = pool.acquire(512, /*pinned=*/true);
  EXPECT_NE(p, d);  // device arena must not satisfy a pinned request
  EXPECT_EQ(pool.stats().misses, 2u);
  pool.release(p, 512, /*pinned=*/true);
}

TEST(BufferPoolTest, BestFitPrefersSmallestSufficientArena) {
  sim::BufferPool pool;
  void* big = pool.acquire(4096, false);
  void* small = pool.acquire(1024, false);
  pool.release(big, 4096, false);
  pool.release(small, 1024, false);
  // A 512-byte request fits both; best-fit must pick the 1024-byte arena.
  void* got = pool.acquire(512, false);
  EXPECT_EQ(got, small);
  pool.release(got, 512, false);
}

TEST(BufferPoolTest, TrimFreesCachedArenas) {
  sim::BufferPool pool;
  pool.release(pool.acquire(2048, false), 2048, false);
  pool.release(pool.acquire(64, true), 64, true);
  EXPECT_EQ(pool.cached_arenas(), 2u);
  pool.trim();
  EXPECT_EQ(pool.cached_arenas(), 0u);
}

TEST(BufferPoolTest, DeviceBufferRoundTripsThroughPool) {
  sim::BufferPool pool;
  sim::MemoryStats stats;
  {
    sim::DeviceBuffer<int> buf(100, &stats, &pool);
    EXPECT_TRUE(buf.pooled());
    for (int i = 0; i < 100; ++i) EXPECT_EQ(buf.device_ptr()[i], 0);
    EXPECT_EQ(stats.device_bytes_allocated, 100 * sizeof(int));
  }
  EXPECT_EQ(stats.device_bytes_allocated, 0u);
  EXPECT_EQ(pool.cached_arenas(), 1u);
  sim::DeviceBuffer<int> again(50, &stats, &pool);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, RepeatedSolvesReuseArenasAndStayCorrect) {
  const std::string a = "heterogeneous", b = "framework";
  problems::LevenshteinProblem p(a, b);

  RunConfig base;
  base.mode = Mode::kCpuSerial;
  const auto ref = solve(p, base);

  sim::BufferPool pool;
  RunConfig cfg;
  cfg.mode = Mode::kGpu;
  cfg.buffer_pool = &pool;
  const auto first = solve(p, cfg);
  EXPECT_EQ(first.table, ref.table);
  EXPECT_EQ(pool.stats().hits, 0u);  // cold pool

  const auto second = solve(p, cfg);
  EXPECT_EQ(second.table, ref.table);
  EXPECT_GT(pool.stats().hits, 0u);  // arenas came back from the cache
  EXPECT_DOUBLE_EQ(second.stats.sim_seconds, first.stats.sim_seconds);
}

TEST(BufferPoolTest, HeteroSolvesShareOnePool) {
  const std::string a = "abcdefghij", b = "jihgfedcba";
  problems::LevenshteinProblem p(a, b);
  RunConfig base;
  base.mode = Mode::kCpuSerial;
  const auto ref = solve(p, base);

  sim::BufferPool pool;
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {2, 3};
  cfg.buffer_pool = &pool;
  EXPECT_EQ(solve(p, cfg).table, ref.table);
  EXPECT_EQ(solve(p, cfg).table, ref.table);
  EXPECT_GT(pool.stats().hits, 0u);
}

}  // namespace
}  // namespace lddp
