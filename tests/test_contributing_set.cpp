#include <gtest/gtest.h>

#include "core/contributing_set.h"

namespace lddp {
namespace {

TEST(ContributingSetTest, InitializerListAndMaskAgree) {
  const ContributingSet a{Dep::kW, Dep::kN};
  const ContributingSet b(static_cast<std::uint8_t>(
      static_cast<int>(Dep::kW) | static_cast<int>(Dep::kN)));
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.has_w());
  EXPECT_FALSE(a.has_nw());
  EXPECT_TRUE(a.has_n());
  EXPECT_FALSE(a.has_ne());
}

TEST(ContributingSetTest, CountsBits) {
  EXPECT_EQ(ContributingSet{Dep::kW}.count(), 1);
  EXPECT_EQ((ContributingSet{Dep::kW, Dep::kNE}.count()), 2);
  EXPECT_EQ((ContributingSet{Dep::kW, Dep::kNW, Dep::kN, Dep::kNE}.count()),
            4);
}

TEST(ContributingSetTest, ToStringOrder) {
  EXPECT_EQ((ContributingSet{Dep::kW, Dep::kNW, Dep::kN, Dep::kNE}).to_string(),
            "W+NW+N+NE");
  EXPECT_EQ(ContributingSet{Dep::kNE}.to_string(), "NE");
}

TEST(ContributingSetTest, RejectsEmptyAndOverflow) {
  EXPECT_THROW(ContributingSet(std::uint8_t{0}), CheckError);
  EXPECT_THROW(ContributingSet(std::uint8_t{16}), CheckError);
  EXPECT_THROW(ContributingSet(std::uint8_t{255}), CheckError);
}

TEST(ContributingSetTest, ByIndexEnumeratesAllFifteen) {
  for (int k = 0; k < kNumContributingSets; ++k) {
    const ContributingSet cs = contributing_set_by_index(k);
    EXPECT_EQ(cs.mask(), k + 1);
    EXPECT_GE(cs.count(), 1);
  }
  EXPECT_THROW(contributing_set_by_index(15), CheckError);
  EXPECT_THROW(contributing_set_by_index(-1), CheckError);
}

}  // namespace
}  // namespace lddp
