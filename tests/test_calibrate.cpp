#include <gtest/gtest.h>

#include "cpu/calibrate.h"
#include "problems/alignment.h"
#include "problems/levenshtein.h"

namespace lddp::cpu {
namespace {

TEST(CalibrateTest, ProducesPositiveSaneCosts) {
  problems::LevenshteinProblem p(problems::random_sequence(400, 1),
                                 problems::random_sequence(400, 2));
  const CalibrationResult r =
      calibrate_work_profile(p, CpuSpec::i7_980(), 2);
  EXPECT_GT(r.ns_per_cell, 0.0);
  EXPECT_LT(r.ns_per_cell, 10000.0);  // < 10 us/cell on any machine
  EXPECT_NEAR(r.cycles_per_cell, r.ns_per_cell * 3.33, 1e-9);
  EXPECT_GE(r.suggested.cpu_cycles_per_cell, 1.0);
  // Non-calibrated fields come from the problem's own profile.
  EXPECT_DOUBLE_EQ(r.suggested.gpu_cycles_per_cell, p.work().gpu_cycles_per_cell);
  EXPECT_DOUBLE_EQ(r.suggested.bytes_per_cell, p.work().bytes_per_cell);
}

TEST(CalibrateTest, HeavierFunctionsMeasureSlower) {
  struct Light {
    using Value = std::int64_t;
    std::size_t rows() const { return 256; }
    std::size_t cols() const { return 256; }
    ContributingSet deps() const { return ContributingSet{Dep::kN}; }
    Value boundary() const { return 0; }
    Value compute(std::size_t i, std::size_t j,
                  const Neighbors<Value>& nb) const {
      return nb.n + static_cast<Value>(i + j);
    }
  };
  struct Heavy : Light {
    Value compute(std::size_t i, std::size_t j,
                  const Neighbors<Value>& nb) const {
      Value v = nb.n;
      for (int k = 0; k < 64; ++k) v = v * 6364136223846793005LL + 1442695040888963407LL;
      return v + static_cast<Value>(i * j);
    }
  };
  const auto spec = CpuSpec::i7_980();
  const double light =
      calibrate_work_profile(Light{}, spec, 3).ns_per_cell;
  const double heavy =
      calibrate_work_profile(Heavy{}, spec, 3).ns_per_cell;
  EXPECT_GT(heavy, light * 2);
}

TEST(CalibrateTest, SampleCapKeepsCalibrationCheap) {
  problems::LevenshteinProblem p(problems::random_sequence(20000, 3),
                                 problems::random_sequence(2000, 4));
  Stopwatch sw;
  calibrate_work_profile(p, CpuSpec::i7_980(), 1, /*max_cells=*/1 << 18);
  EXPECT_LT(sw.seconds(), 2.0);  // sampled, not the full 40M-cell table
}

}  // namespace
}  // namespace lddp::cpu
