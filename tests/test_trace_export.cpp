// Chrome-trace export of the simulated schedule.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/framework.h"
#include "problems/alignment.h"
#include "problems/levenshtein.h"
#include "sim/platform.h"

namespace lddp {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(TraceExportTest, TimelineWritesLabelledEvents) {
  sim::Timeline tl;
  const auto cpu = tl.add_resource("cpu");
  const auto gpu = tl.add_resource("gpu.compute");
  const auto a = tl.record(cpu, 1e-3, sim::kNoOp, sim::kNoOp, "cpu.front");
  tl.record(gpu, 2e-3, a, sim::kNoOp, "kernel");
  EXPECT_EQ(tl.op_resource(a), cpu);
  EXPECT_STREQ(tl.op_label(a), "cpu.front");

  const std::string path = ::testing::TempDir() + "/lddp_trace_unit.json";
  tl.export_chrome_trace(path);
  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"cpu.front\""), std::string::npos);
  EXPECT_NE(body.find("\"kernel\""), std::string::npos);
  EXPECT_NE(body.find("\"gpu.compute\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(body.front(), '[');
  std::remove(path.c_str());
}

TEST(TraceExportTest, UnlabelledOpsGetPlaceholder) {
  sim::Timeline tl;
  const auto r = tl.add_resource("r");
  tl.record(r, 1e-3);
  const std::string path = ::testing::TempDir() + "/lddp_trace_unnamed.json";
  tl.export_chrome_trace(path);
  EXPECT_NE(slurp(path).find("\"op\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceExportTest, SolveHonoursTracePath) {
  problems::LevenshteinProblem p(problems::random_sequence(64, 1),
                                 problems::random_sequence(64, 2));
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.trace_path = ::testing::TempDir() + "/lddp_trace_solve.json";
  solve(p, cfg);
  const std::string body = slurp(cfg.trace_path);
  EXPECT_NE(body.find("\"cpu\""), std::string::npos);
  EXPECT_NE(body.find("\"kernel\""), std::string::npos);
  EXPECT_NE(body.find("\"h2d\""), std::string::npos);
  std::remove(cfg.trace_path.c_str());
}

TEST(TraceExportTest, BadPathThrows) {
  sim::Timeline tl;
  tl.add_resource("r");
  EXPECT_THROW(tl.export_chrome_trace("/nonexistent_dir/trace.json"),
               CheckError);
}

}  // namespace
}  // namespace lddp
