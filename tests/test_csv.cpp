#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/csv.h"

namespace lddp {
namespace {

TEST(CsvTest, BuildsRowsInMemory) {
  CsvWriter csv;
  csv.header({"size", "mode", "seconds"});
  csv.row(1024, "gpu", 0.25);
  csv.row(2048, "hetero", 0.125);
  EXPECT_EQ(csv.str(),
            "size,mode,seconds\n1024,gpu,0.25\n2048,hetero,0.125\n");
}

TEST(CsvTest, QuotesCellsWithCommas) {
  CsvWriter csv;
  csv.row("a,b", 1);
  EXPECT_EQ(csv.str(), "\"a,b\",1\n");
}

TEST(CsvTest, HeaderAfterRowsThrows) {
  CsvWriter csv;
  csv.row(1);
  EXPECT_THROW(csv.header({"x"}), CheckError);
}

TEST(CsvTest, SavesToDisk) {
  const std::string path = ::testing::TempDir() + "/lddp_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.header({"a"});
    csv.row(7);
    csv.save();
  }
  std::ifstream in(path);
  std::string l1, l2;
  std::getline(in, l1);
  std::getline(in, l2);
  EXPECT_EQ(l1, "a");
  EXPECT_EQ(l2, "7");
  std::remove(path.c_str());
}

TEST(CsvTest, SaveWithoutPathThrows) {
  CsvWriter csv;
  csv.row(1);
  EXPECT_THROW(csv.save(), CheckError);
}

}  // namespace
}  // namespace lddp
