#include <gtest/gtest.h>

#include "core/framework.h"
#include "problems/checkerboard.h"
#include "problems/column_min.h"

namespace lddp::problems {
namespace {

TEST(ColumnMinTest, ClassifiesVertical) {
  ColumnMinPathProblem p(random_cost_board(5, 5, 1));
  EXPECT_EQ(classify(p.deps()), Pattern::kVertical);
  EXPECT_EQ(transfer_need(p.deps()), TransferNeed::kOneWay);
}

TEST(ColumnMinTest, FirstColumnIsItsOwnCost) {
  const auto costs = random_cost_board(7, 6, 2);
  const auto t = column_min_reference(costs);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(t.at(i, 0), costs.at(i, 0));
}

TEST(ColumnMinTest, MatchesTransposedCheckerboardVariant) {
  // column-min path uses moves {W, NW}; on the transposed board that is a
  // 2-choice checkerboard: recompute directly to cross-check.
  const auto costs = random_cost_board(12, 15, 3);
  const auto t = column_min_reference(costs);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 1; j < 15; ++j) {
      std::int64_t best = t.at(i, j - 1);
      if (i > 0) best = std::min(best, t.at(i - 1, j - 1));
      EXPECT_EQ(t.at(i, j), best + costs.at(i, j));
    }
  }
}

TEST(ColumnMinTest, AllModesMatchReference) {
  const auto costs = random_cost_board(80, 95, 4);
  ColumnMinPathProblem p(costs);
  const auto ref = column_min_reference(costs);
  for (Mode mode : {Mode::kCpuSerial, Mode::kCpuParallel, Mode::kGpu,
                    Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    EXPECT_EQ(solve(p, cfg).table, ref) << to_string(mode);
  }
}

}  // namespace
}  // namespace lddp::problems
