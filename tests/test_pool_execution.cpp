// Real multi-threaded execution: every strategy runs its host-side loops
// through a genuine ThreadPool here, so data races between cells of one
// front (or between the framework's bookkeeping and the workers) would
// surface as wrong tables or TSan reports.
#include <gtest/gtest.h>

#include "core/framework.h"
#include "problems/alignment.h"
#include "problems/checkerboard.h"
#include "problems/floyd_steinberg.h"
#include "problems/levenshtein.h"
#include "problems/synthetic.h"

namespace lddp {
namespace {

class PoolExecutionTest : public ::testing::Test {
 protected:
  cpu::ThreadPool pool_{4};
};

TEST_F(PoolExecutionTest, LevenshteinAllModes) {
  problems::LevenshteinProblem p(problems::random_sequence(300, 1),
                                 problems::random_sequence(340, 2));
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);
  for (Mode mode : {Mode::kCpuParallel, Mode::kCpuTiled, Mode::kGpu,
                    Mode::kHeterogeneous}) {
    RunConfig cfg;
    cfg.mode = mode;
    cfg.pool = &pool_;
    EXPECT_EQ(solve(p, cfg).table, ref.table) << to_string(mode);
  }
}

TEST_F(PoolExecutionTest, KnightMoveWithPool) {
  problems::FloydSteinbergProblem p(problems::plasma_image(96, 128, 3));
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.pool = &pool_;
  cfg.hetero = {13, 40};
  const auto r = solve(p, cfg);
  for (std::size_t i = 0; i < p.rows(); ++i)
    for (std::size_t j = 0; j < p.cols(); ++j) {
      ASSERT_EQ(r.table.at(i, j).out, ref.table.at(i, j).out);
      ASSERT_DOUBLE_EQ(r.table.at(i, j).err, ref.table.at(i, j).err);
    }
}

TEST_F(PoolExecutionTest, TwoWayHorizontalWithPool) {
  const auto costs = problems::random_cost_board(200, 260, 4);
  problems::CheckerboardProblem p(costs);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.pool = &pool_;
  EXPECT_EQ(solve(p, cfg).table, problems::checkerboard_reference(costs));
}

TEST_F(PoolExecutionTest, SimulatedTimeIndependentOfPool) {
  // The pool only affects real execution; the simulated schedule must be
  // bit-identical with and without it.
  problems::LevenshteinProblem p(problems::random_sequence(256, 5),
                                 problems::random_sequence(256, 6));
  RunConfig with_pool;
  with_pool.mode = Mode::kHeterogeneous;
  with_pool.pool = &pool_;
  RunConfig without = with_pool;
  without.pool = nullptr;
  EXPECT_DOUBLE_EQ(solve(p, with_pool).stats.sim_seconds,
                   solve(p, without).stats.sim_seconds);
}

TEST_F(PoolExecutionTest, PoolReusedAcrossManySolves) {
  problems::MinNwNProblem p(128, 128, 1);
  RunConfig cfg;
  cfg.pool = &pool_;
  cfg.mode = Mode::kHeterogeneous;
  RunConfig serial;
  serial.mode = Mode::kCpuSerial;
  const auto ref = solve(p, serial);
  for (int round = 0; round < 20; ++round)
    ASSERT_EQ(solve(p, cfg).table, ref.table) << round;
}

TEST_F(PoolExecutionTest, AllContributingSetsWithPool) {
  for (int mask = 1; mask <= 15; ++mask) {
    const ContributingSet deps(static_cast<std::uint8_t>(mask));
    const auto p = problems::make_function_problem<std::uint64_t>(
        64, 80, deps, 3ULL,
        [deps](std::size_t i, std::size_t j,
               const Neighbors<std::uint64_t>& nb) {
          std::uint64_t r = i * 73 + j * 7 + 11;
          if (deps.has_w()) r = r * 131 ^ nb.w;
          if (deps.has_nw()) r = r * 137 ^ nb.nw;
          if (deps.has_n()) r = r * 139 ^ nb.n;
          if (deps.has_ne()) r = r * 149 ^ nb.ne;
          return r;
        });
    RunConfig serial;
    serial.mode = Mode::kCpuSerial;
    const auto ref = solve(p, serial);
    RunConfig cfg;
    cfg.mode = Mode::kHeterogeneous;
    cfg.pool = &pool_;
    EXPECT_EQ(solve(p, cfg).table, ref.table) << deps.to_string();
  }
}

}  // namespace
}  // namespace lddp
