// Unit + differential tests for the work-stealing executor
// (cpu/stealing_executor.h): Chase–Lev deque properties under concurrent
// theft, exact-coverage and exception routing of parallel_region, the
// determinism contract (bit-identity to the static substrate across all
// 15 contributing sets, simulated makespans invariant across worker
// counts, per-morsel chaos draws invariant across worker counts and
// steal interleavings), and the batch engine running whole suites on the
// shared executor (schedule = kStealing).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/batch_engine.h"
#include "core/framework.h"
#include "cpu/stealing_executor.h"
#include "cpu/thread_pool.h"
#include "problems/synthetic.h"
#include "util/fault_injection.h"

namespace lddp {
namespace {

using cpu::StealingExecutor;
using cpu::steal_detail::Task;
using cpu::steal_detail::WorkDeque;
using fault::FaultPlan;
using fault::FaultScope;
using fault::Site;

// ---------------------------------------------------------------------
// WorkDeque unit properties.

TEST(WorkDeque, OwnerPopIsLifo) {
  WorkDeque d;
  for (std::size_t k = 0; k < 5; ++k)
    ASSERT_TRUE(d.push(Task{nullptr, k, k + 1}));
  Task t;
  for (std::size_t k = 5; k-- > 0;) {
    ASSERT_TRUE(d.pop(&t));
    EXPECT_EQ(t.lo, k);
  }
  EXPECT_FALSE(d.pop(&t));
}

TEST(WorkDeque, StealIsFifo) {
  WorkDeque d;
  for (std::size_t k = 0; k < 5; ++k)
    ASSERT_TRUE(d.push(Task{nullptr, k, k + 1}));
  Task t;
  for (std::size_t k = 0; k < 5; ++k) {
    ASSERT_TRUE(d.steal(&t));
    EXPECT_EQ(t.lo, k);
  }
  EXPECT_FALSE(d.steal(&t));
}

TEST(WorkDeque, PushReportsFullInsteadOfGrowing) {
  WorkDeque d(/*log2_capacity=*/2);  // capacity 4
  for (std::size_t k = 0; k < 4; ++k)
    ASSERT_TRUE(d.push(Task{nullptr, k, k + 1}));
  EXPECT_FALSE(d.push(Task{nullptr, 4, 5}));
  Task t;
  ASSERT_TRUE(d.pop(&t));
  EXPECT_TRUE(d.push(Task{nullptr, 4, 5}));
}

TEST(WorkDeque, MixedPopStealDrainsExactly) {
  WorkDeque d;
  Task t;
  // Interleave pushes with pops and steals from the owner side; every
  // pushed task must come out exactly once.
  std::vector<int> seen(100, 0);
  std::size_t pushed = 0, claimed = 0;
  for (int round = 0; round < 10; ++round) {
    for (int k = 0; k < 10; ++k)
      ASSERT_TRUE(d.push(Task{nullptr, pushed++, pushed}));
    if (round % 2 == 0) {
      ASSERT_TRUE(d.pop(&t));
    } else {
      ASSERT_TRUE(d.steal(&t));
    }
    ++seen[t.lo];
    ++claimed;
  }
  while (d.pop(&t)) {
    ++seen[t.lo];
    ++claimed;
  }
  EXPECT_EQ(claimed, pushed);
  for (std::size_t k = 0; k < pushed; ++k) EXPECT_EQ(seen[k], 1) << k;
}

/// Owner pushes (popping on overflow) while thieves hammer steal: every
/// task is claimed exactly once across all participants, and nothing is
/// lost or duplicated — the single-element pop/steal CAS race included.
TEST(WorkDeque, ConcurrentStealStress) {
  constexpr std::size_t kTasks = 200000;
  constexpr int kThieves = 3;
  WorkDeque d;
  std::vector<std::atomic<std::uint8_t>> claims(kTasks);
  for (auto& c : claims) c.store(0);
  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  for (int w = 0; w < kThieves; ++w) {
    thieves.emplace_back([&] {
      Task t;
      while (!done.load(std::memory_order_acquire)) {
        if (d.steal(&t)) claims[t.lo].fetch_add(1);
      }
      while (d.steal(&t)) claims[t.lo].fetch_add(1);
    });
  }
  Task t;
  for (std::size_t k = 0; k < kTasks; ++k) {
    while (!d.push(Task{nullptr, k, k + 1})) {
      if (d.pop(&t)) claims[t.lo].fetch_add(1);
    }
    if (k % 7 == 0 && d.pop(&t)) claims[t.lo].fetch_add(1);
  }
  while (d.pop(&t)) claims[t.lo].fetch_add(1);
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();
  for (std::size_t k = 0; k < kTasks; ++k)
    ASSERT_EQ(claims[k].load(), 1u) << "task " << k;
}

// ---------------------------------------------------------------------
// parallel_region execution properties.

TEST(StealingExecutor, CoversRangeExactlyOnce) {
  StealingExecutor exec(3);
  constexpr std::size_t kN = 300000;
  std::vector<std::atomic<std::uint8_t>> counts(kN);
  for (auto& c : counts) c.store(0);
  exec.parallel_region(0, kN, 1024, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) counts[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(counts[i].load(), 1u) << "cell " << i;
}

TEST(StealingExecutor, WorkerlessExecutorRunsInlineAsOneCall) {
  StealingExecutor exec(0);
  EXPECT_EQ(exec.size(), 1u);
  std::vector<std::pair<std::size_t, std::size_t>> calls;
  exec.parallel_region(5, 100000, 0, [&](std::size_t lo, std::size_t hi) {
    calls.emplace_back(lo, hi);
  });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].first, 5u);
  EXPECT_EQ(calls[0].second, 100000u);
}

TEST(StealingExecutor, ShortRegionStaysSingleTask) {
  StealingExecutor exec(2);
  std::atomic<int> calls{0};
  // Range no larger than one (clamped) grain: one inline body call.
  exec.parallel_region(0, StealingExecutor::kMinGrain, 0,
                       [&](std::size_t lo, std::size_t hi) {
                         EXPECT_EQ(lo, 0u);
                         EXPECT_EQ(hi, StealingExecutor::kMinGrain);
                         calls.fetch_add(1);
                       });
  EXPECT_EQ(calls.load(), 1);
}

TEST(StealingExecutor, RethrowsFirstBodyException) {
  StealingExecutor exec(2);
  constexpr std::size_t kN = 100000;
  EXPECT_THROW(
      exec.parallel_region(0, kN, 1024,
                           [&](std::size_t lo, std::size_t hi) {
                             if (lo <= 54321 && 54321 < hi)
                               throw std::runtime_error("boom");
                           }),
      std::runtime_error);
  // The executor survives an exceptional region and runs the next one.
  std::atomic<std::size_t> cells{0};
  exec.parallel_region(0, kN, 1024, [&](std::size_t lo, std::size_t hi) {
    cells.fetch_add(hi - lo);
  });
  EXPECT_EQ(cells.load(), kN);
}

/// Several masters submit concurrently to one executor — the shared-
/// substrate regime of the batch engine. Every region must cover its own
/// range exactly once even while workers drain foreign regions.
TEST(StealingExecutor, ConcurrentMastersShareOneExecutor) {
  StealingExecutor exec(2);
  constexpr std::size_t kMasters = 4;
  constexpr std::size_t kN = 150000;
  std::vector<std::vector<std::atomic<std::uint8_t>>> counts(kMasters);
  for (auto& v : counts) {
    std::vector<std::atomic<std::uint8_t>> fresh(kN);
    for (auto& c : fresh) c.store(0);
    v.swap(fresh);
  }
  std::vector<std::thread> masters;
  for (std::size_t m = 0; m < kMasters; ++m) {
    masters.emplace_back([&, m] {
      for (int rep = 0; rep < 3; ++rep) {
        exec.parallel_region(0, kN, 2048,
                             [&](std::size_t lo, std::size_t hi) {
                               for (std::size_t i = lo; i < hi; ++i)
                                 counts[m][i].fetch_add(1);
                             });
      }
    });
  }
  for (auto& t : masters) t.join();
  for (std::size_t m = 0; m < kMasters; ++m)
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(counts[m][i].load(), 3u) << "master " << m << " cell " << i;
}

// ---------------------------------------------------------------------
// Chaos determinism: the per-morsel kStripWorker draw is a pure function
// of (plan, solve, attempt, region ordinal, morsel offset) — never of
// worker count or steal interleaving.

/// Whether one armed region throws, under a fresh FaultScope (region
/// ordinals reset, as the batch engine does per attempt).
bool armed_region_throws(StealingExecutor& exec, const FaultPlan& plan,
                         std::uint64_t attempt) {
  FaultScope scope(&plan, /*solve=*/7, attempt);
  try {
    exec.parallel_region(0, 100000, 1024, [](std::size_t, std::size_t) {});
  } catch (const fault::InjectedFault&) {
    return true;
  }
  return false;
}

TEST(StealingChaos, MorselFaultsIndependentOfWorkerCount) {
  FaultPlan plan;
  plan.seed = 99;
  // ~98 morsels per region: a 1% rate makes throw-vs-complete genuinely
  // vary across attempts instead of saturating at "always throws".
  plan.set_rate(Site::kStripWorker, 0.01);
  // Fixed grain => identical morsel sets => identical fault schedules on
  // every executor with at least one worker, on every repetition.
  StealingExecutor one(1), four(4), sixteen(16);
  for (std::uint64_t attempt = 0; attempt < 8; ++attempt) {
    const bool expected = armed_region_throws(one, plan, attempt);
    for (int rep = 0; rep < 3; ++rep) {
      EXPECT_EQ(armed_region_throws(four, plan, attempt), expected)
          << "attempt " << attempt;
      EXPECT_EQ(armed_region_throws(sixteen, plan, attempt), expected)
          << "attempt " << attempt;
    }
  }
}

TEST(StealingChaos, RateEndpointsAreCertainties) {
  StealingExecutor exec(2);
  FaultPlan always;
  always.seed = 3;
  always.set_rate(Site::kStripWorker, 1.0);
  EXPECT_TRUE(armed_region_throws(exec, always, 0));
  FaultPlan never;
  never.seed = 3;  // rate stays 0
  EXPECT_FALSE(armed_region_throws(exec, never, 0));
}

/// A faulted attempt retries cleanly: disarm (the ladder's reference
/// rung) and the same region completes with full coverage — no cell lost
/// to the aborted attempt's partial execution.
TEST(StealingChaos, FaultedRegionRetriesCleanly) {
  StealingExecutor exec(4);
  constexpr std::size_t kN = 200000;
  FaultPlan plan;
  plan.seed = 41;
  plan.set_rate(Site::kStripWorker, 0.7);
  std::vector<std::atomic<std::uint8_t>> counts(kN);
  auto attempt_once = [&](const FaultPlan* p, std::uint64_t attempt) {
    for (auto& c : counts) c.store(0);
    FaultScope scope(p, /*solve=*/1, attempt);
    exec.parallel_region(0, kN, 1024, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) counts[i].fetch_add(1);
    });
  };
  bool threw = false;
  try {
    attempt_once(&plan, 0);
  } catch (const fault::InjectedFault&) {
    threw = true;
  }
  EXPECT_TRUE(threw);  // rate 0.7 over ~200 morsels: certain in practice
  attempt_once(nullptr, 1);
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(counts[i].load(), 1u) << "cell " << i;
}

// ---------------------------------------------------------------------
// Determinism contract at the framework level.

auto make_deps_problem(ContributingSet deps, std::size_t rows,
                       std::size_t cols, std::uint64_t salt) {
  return problems::make_function_problem<std::uint64_t>(
      rows, cols, deps, salt,
      [deps, salt](std::size_t i, std::size_t j,
                   const Neighbors<std::uint64_t>& nb) {
        std::uint64_t r = salt + i * 1000003 + j * 10007;
        if (deps.has_w()) r = (r << 1) ^ nb.w;
        if (deps.has_nw()) r = (r >> 1) + nb.nw;
        if (deps.has_n()) r = r * 31 + nb.n;
        if (deps.has_ne()) r ^= nb.ne + 0x517cc1b727220a95ULL;
        return r;
      });
}

/// All 15 contributing sets, ragged and degenerate shapes included, must
/// be bit-identical between the stealing substrate and the serial
/// reference. The 48 x 8192 shape matters: rows wide enough that
/// horizontal-pattern fronts actually cross the parallel-dispatch
/// threshold and reach the executor.
TEST(StealingDifferential, BitIdenticalAcrossAllContributingSets) {
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {40, 40}, {1, 300}, {300, 1}, {48, 8192}};
  for (std::uint8_t bits = 1; bits <= 15; ++bits) {
    for (const auto& [rows, cols] : shapes) {
      const auto p =
          make_deps_problem(ContributingSet(bits), rows, cols, bits);
      RunConfig serial;
      serial.mode = Mode::kCpuSerial;
      const auto expected = solve(p, serial).table;
      RunConfig stealing;
      stealing.mode = Mode::kCpuParallel;
      stealing.schedule = cpu::Schedule::kStealing;
      EXPECT_EQ(solve(p, stealing).table, expected)
          << "deps bits " << int(bits) << " shape " << rows << "x" << cols;
    }
  }
}

/// The heterogeneous mode (transfers, tiles, launches) through the
/// stealing substrate: same bits as serial.
TEST(StealingDifferential, HeterogeneousModeBitIdentical) {
  for (std::uint8_t bits : {0b0001, 0b0111, 0b1111}) {
    const auto p = make_deps_problem(ContributingSet(bits), 96, 96, bits);
    RunConfig serial;
    serial.mode = Mode::kCpuSerial;
    const auto expected = solve(p, serial).table;
    RunConfig stealing;
    stealing.mode = Mode::kHeterogeneous;
    stealing.tile = 8;
    stealing.schedule = cpu::Schedule::kStealing;
    EXPECT_EQ(solve(p, stealing).table, expected) << "deps bits "
                                                  << int(bits);
  }
}

/// Simulated makespans come from the cost models on the master, never
/// from real execution: the same solve must report the same sim_seconds
/// on executors with 0, 3 and 15 workers — and on no pool at all.
TEST(StealingDifferential, MakespanInvariantAcrossWorkerCounts) {
  const auto p =
      make_deps_problem(ContributingSet({Dep::kN}), 48, 8192, 5);
  RunConfig inline_cfg;
  inline_cfg.mode = Mode::kCpuParallel;
  const SolveStats base = solve(p, inline_cfg).stats;
  ASSERT_GT(base.sim_seconds, 0.0);
  for (const std::size_t workers : {0u, 3u, 15u}) {
    StealingExecutor exec(workers);
    cpu::ThreadPool facade(&exec);
    RunConfig cfg;
    cfg.mode = Mode::kCpuParallel;
    cfg.schedule = cpu::Schedule::kStatic;  // use the facade verbatim
    cfg.pool = &facade;
    const SolveStats stats = solve(p, cfg).stats;
    EXPECT_EQ(stats.sim_seconds, base.sim_seconds) << workers << " workers";
    EXPECT_EQ(stats.fronts, base.fronts) << workers << " workers";
  }
}

/// The batch engine on the stealing substrate (schedule = kStealing, the
/// kAuto default resolves to the same): all 15 sets bit-identical to
/// solo serial, plus one big-front solve that actually dispatches.
TEST(StealingBatch, DifferentialAcrossAllContributingSets) {
  BatchConfig bc;
  bc.schedule = cpu::Schedule::kStealing;
  bc.threads_per_solve = 2;
  bc.worker_threads = 2;
  BatchEngine engine(bc);
  using Problem = decltype(make_deps_problem(ContributingSet(1), 1, 1, 0));
  std::vector<std::future<SolveResult<Problem>>> futures;
  std::vector<Grid<std::uint64_t>> expected;
  for (std::uint8_t bits = 1; bits <= 15; ++bits) {
    const std::size_t rows = bits == 4 ? 48 : 64;
    const std::size_t cols = bits == 4 ? 8192 : 64;
    const auto p = make_deps_problem(ContributingSet(bits), rows, cols, bits);
    RunConfig serial;
    serial.mode = Mode::kCpuSerial;
    expected.push_back(solve(p, serial).table);
    RunConfig rc;
    rc.mode = Mode::kCpuParallel;
    auto f = engine.submit(p, rc);
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  const BatchReport rep = engine.wait();
  ASSERT_EQ(rep.solves, 15u);
  EXPECT_EQ(rep.failed_solves, 0u);
  for (std::size_t k = 0; k < 15; ++k) {
    SolveResult<Problem> got;
    ASSERT_NO_THROW(got = futures[k].get()) << "deps bits " << k + 1;
    EXPECT_EQ(got.table, expected[k]) << "deps bits " << k + 1;
  }
}

TEST(StealingConfig, IdleSpinBudgetIsPositive) {
  // LDDP_SPIN_US is read once per process; unset (the test environment)
  // must resolve to the historical 4096-iteration constant.
  EXPECT_GT(cpu::idle_spin_iters(), 0);
}

TEST(StealingConfig, ScheduleNamesRoundTrip) {
  EXPECT_EQ(cpu::to_string(cpu::Schedule::kStatic), "static");
  EXPECT_EQ(cpu::to_string(cpu::Schedule::kStealing), "stealing");
  EXPECT_EQ(cpu::to_string(cpu::Schedule::kAuto), "auto");
  EXPECT_EQ(cpu::resolve_schedule(cpu::Schedule::kAuto),
            cpu::Schedule::kStealing);
  EXPECT_EQ(cpu::resolve_schedule(cpu::Schedule::kStatic),
            cpu::Schedule::kStatic);
}

}  // namespace
}  // namespace lddp
