// The framework's central correctness property: for EVERY one of the 15
// contributing sets, every execution mode (multicore wavefronts, simulated
// GPU, heterogeneous with assorted t_switch/t_share splits) produces a
// table bit-identical to the serial row-major reference scan.
//
// The probe problem mixes i, j and exactly the declared neighbour values
// with multiplicative hashing, so any misrouted, stale, or skipped cell
// anywhere in the table changes downstream values and is detected.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/framework.h"
#include "problems/synthetic.h"

namespace lddp {
namespace {

using V = std::uint64_t;

struct Case {
  int mask;           // contributing set (1..15)
  std::size_t rows, cols;
};

class AllSetsTest : public ::testing::TestWithParam<Case> {};

auto make_probe(const Case& c) {
  const ContributingSet deps(static_cast<std::uint8_t>(c.mask));
  return problems::make_function_problem<V>(
      c.rows, c.cols, deps, /*bound=*/0x9e3779b97f4a7c15ULL,
      [deps](std::size_t i, std::size_t j, const Neighbors<V>& nb) {
        V r = 0xcbf29ce484222325ULL;
        r = (r ^ (static_cast<V>(i) + 1)) * 0x100000001b3ULL;
        r = (r ^ (static_cast<V>(j) + 3)) * 0x100000001b3ULL;
        if (deps.has_w()) r = (r ^ nb.w) * 0x100000001b3ULL;
        if (deps.has_nw()) r = (r ^ nb.nw) * 0x100000001b3ULL;
        if (deps.has_n()) r = (r ^ nb.n) * 0x100000001b3ULL;
        if (deps.has_ne()) r = (r ^ nb.ne) * 0x100000001b3ULL;
        return r;
      });
}

TEST_P(AllSetsTest, AllModesMatchSerialReference) {
  const Case c = GetParam();
  const auto probe = make_probe(c);

  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto ref = solve(probe, cfg);

  cfg.mode = Mode::kCpuParallel;
  EXPECT_EQ(solve(probe, cfg).table, ref.table) << "cpu-parallel";

  cfg.mode = Mode::kGpu;
  EXPECT_EQ(solve(probe, cfg).table, ref.table) << "gpu";

  const HeteroParams sweeps[] = {
      {-1, -1},       // model defaults
      {0, 0},         // pure-GPU high-work path
      {0, 1000000},   // clamped: everything on the CPU strip
      {1000000, 0},   // clamped: maximal low-work region
      {1, 1},  {2, 3}, {3, 2}, {5, 5}, {7, 2},
  };
  for (const HeteroParams& hp : sweeps) {
    cfg.mode = Mode::kHeterogeneous;
    cfg.hetero = hp;
    EXPECT_EQ(solve(probe, cfg).table, ref.table)
        << "hetero t_switch=" << hp.t_switch << " t_share=" << hp.t_share;
  }

  cfg.mode = Mode::kAuto;
  cfg.hetero = HeteroParams{};
  EXPECT_EQ(solve(probe, cfg).table, ref.table) << "auto";
}

// Fused graph submission is a pure timing-model change: for every
// contributing set and shape, fused and unfused runs must produce tables
// bit-identical to the serial reference — with and without a host pool and
// a shared buffer pool (the arenas repeated solves reuse).
TEST_P(AllSetsTest, FusedMatchesUnfusedAndSerial) {
  const Case c = GetParam();
  const auto probe = make_probe(c);

  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto ref = solve(probe, cfg);

  cpu::ThreadPool pool(3);
  sim::BufferPool buffers;
  const HeteroParams sweeps[] = {{-1, -1}, {0, 0}, {2, 3}, {5, 5}};
  for (const bool fused : {true, false}) {
    cfg.fused_launches = fused;
    cfg.pool = &pool;
    cfg.buffer_pool = &buffers;

    cfg.mode = Mode::kGpu;
    cfg.hetero = HeteroParams{};
    EXPECT_EQ(solve(probe, cfg).table, ref.table)
        << "gpu fused=" << fused;

    cfg.mode = Mode::kHeterogeneous;
    for (const HeteroParams& hp : sweeps) {
      cfg.hetero = hp;
      EXPECT_EQ(solve(probe, cfg).table, ref.table)
          << "hetero fused=" << fused << " t_switch=" << hp.t_switch
          << " t_share=" << hp.t_share;
    }
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const std::size_t shapes[][2] = {{1, 1},  {1, 9},  {9, 1},  {2, 2},
                                   {6, 6},  {5, 11}, {11, 5}, {17, 17},
                                   {23, 8}, {8, 23}};
  for (int mask = 1; mask <= 15; ++mask)
    for (const auto& s : shapes) cases.push_back(Case{mask, s[0], s[1]});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Exhaustive, AllSetsTest, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      const ContributingSet cs(static_cast<std::uint8_t>(info.param.mask));
      std::string name = cs.to_string() + "_" +
                         std::to_string(info.param.rows) + "x" +
                         std::to_string(info.param.cols);
      for (char& ch : name)
        if (ch == '+') ch = '_';
      return name;
    });

// Larger spot checks: one bigger shape per canonical pattern so the split
// strategies run deep phase-2 regions with realistic front counts.
TEST(AllSetsLargeTest, AntiDiagonalLarge) {
  const Case c{0b0111 /*W+NW+N*/, 97, 139};
  const auto probe = make_probe(c);
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto ref = solve(probe, cfg);
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {17, 23};
  EXPECT_EQ(solve(probe, cfg).table, ref.table);
}

TEST(AllSetsLargeTest, KnightMoveLarge) {
  const Case c{0b1111, 83, 127};
  const auto probe = make_probe(c);
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto ref = solve(probe, cfg);
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {31, 19};
  EXPECT_EQ(solve(probe, cfg).table, ref.table);
}

TEST(AllSetsLargeTest, HorizontalCase2Large) {
  const Case c{0b1110 /*NW+N+NE*/, 71, 111};
  const auto probe = make_probe(c);
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto ref = solve(probe, cfg);
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {0, 37};
  EXPECT_EQ(solve(probe, cfg).table, ref.table);
}

TEST(AllSetsLargeTest, InvertedLLarge) {
  const Case c{0b0010 /*NW*/, 89, 67};
  const auto probe = make_probe(c);
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto ref = solve(probe, cfg);
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {11, 29};
  EXPECT_EQ(solve(probe, cfg).table, ref.table);
}

}  // namespace
}  // namespace lddp
