// Behavioural tests of the inverted-L executions: one-way transfers, the
// row-major storage penalty (Section V-B), and the horizontal-case-1
// alternative beating it — the paper's Fig 8 conclusion.
#include <gtest/gtest.h>

#include "core/framework.h"
#include "core/strategies/hetero_invertedl.h"
#include "problems/synthetic.h"

namespace lddp {
namespace {

problems::MaxNwProblem make_problem(std::size_t n, std::uint64_t seed) {
  return problems::MaxNwProblem(problems::random_input_grid(n, n, seed), 3);
}

TEST(HeteroInvertedLTest, MatchesSerialReference) {
  const auto p = make_problem(120, 1);
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto ref = solve(p, cfg);
  cfg.mode = Mode::kHeterogeneous;
  for (HeteroParams hp : {HeteroParams{-1, -1}, HeteroParams{0, 0},
                          HeteroParams{10, 30}, HeteroParams{5, 200}}) {
    cfg.hetero = hp;
    EXPECT_EQ(solve(p, cfg).table, ref.table)
        << hp.t_switch << "/" << hp.t_share;
  }
}

TEST(HeteroInvertedLTest, TransfersAreOneWay) {
  const auto p = make_problem(100, 2);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {10, 40};
  const auto r = solve(p, cfg);
  EXPECT_EQ(r.stats.transfer, TransferNeed::kOneWay);
  EXPECT_GT(r.stats.h2d_copies, 10u);
  EXPECT_LE(r.stats.d2h_copies, 3u);  // phase-B entry + final download
}

TEST(HeteroInvertedLTest, RowMajorStoragePenalizesGpu) {
  // The paper's framework runs inverted-L on row-major storage; the
  // shell-contiguous layout (generic solve_gpu over ShellLayout) removes
  // the column-part coalescing penalty and must be faster in simulation.
  // (Needs shells big enough to leave the launch-latency floor.)
  const auto p = make_problem(2048, 3);
  sim::Platform strided(sim::PlatformSpec::hetero_high());
  SolveStats strided_stats;
  const auto a = solve_gpu_invertedl(p, strided, &strided_stats);

  sim::Platform coalesced(sim::PlatformSpec::hetero_high());
  SolveStats coalesced_stats;
  const auto b = solve_gpu(p, ShellLayout(p.rows(), p.cols()), coalesced,
                           &coalesced_stats);

  EXPECT_EQ(a, b);  // identical results, different layouts
  EXPECT_GT(strided_stats.sim_seconds, coalesced_stats.sim_seconds);
}

TEST(HeteroInvertedLTest, Figure8HorizontalCase1Wins) {
  // Section V-B: a {NW}-dependent problem can also be run as horizontal
  // case-1; uniform fronts and a coalescing-friendly layout make that the
  // better choice on the GPU.
  const auto p = make_problem(1024, 4);
  RunConfig cfg;
  cfg.mode = Mode::kGpu;
  const double il_seconds = solve(p, cfg).stats.sim_seconds;

  // The same function forced through the horizontal machinery: declare the
  // dependency as {NW, N} (a superset — f simply ignores N).
  const auto grid = problems::random_input_grid(1024, 1024, 4);
  auto as_h1 = problems::make_function_problem<std::int64_t>(
      1024, 1024, ContributingSet{Dep::kNW, Dep::kN}, 0LL,
      [&grid](std::size_t i, std::size_t j,
              const Neighbors<std::int64_t>& nb) {
        const std::int64_t v = grid.at(i, j);
        return (v > nb.nw ? v : nb.nw) + 3;
      });
  as_h1.set_result_bytes(1024 * sizeof(std::int64_t));  // match iL's result
  const double h1_seconds = solve(as_h1, cfg).stats.sim_seconds;
  EXPECT_LT(h1_seconds, il_seconds);
}

TEST(HeteroInvertedLTest, MirroredVariantViaSymmetry) {
  // {NE}-dependent problem: mirrored inverted-L solved through the mirror
  // adapter. Values must match the serial scan.
  const auto grid = problems::random_input_grid(60, 90, 5);
  const auto p = problems::make_function_problem<std::int64_t>(
      60, 90, ContributingSet{Dep::kNE}, 0LL,
      [&grid](std::size_t i, std::size_t j,
              const Neighbors<std::int64_t>& nb) {
        const std::int64_t v = grid.at(i, j);
        return (v > nb.ne ? v : nb.ne) + 1;
      });
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  const auto ref = solve(p, cfg);
  for (Mode mode : {Mode::kCpuParallel, Mode::kGpu, Mode::kHeterogeneous}) {
    cfg.mode = mode;
    const auto r = solve(p, cfg);
    EXPECT_EQ(r.table, ref.table) << to_string(mode);
    EXPECT_EQ(r.stats.pattern, Pattern::kMirroredInvertedL);
  }
}

TEST(HeteroInvertedLTest, RectangularShapes) {
  for (auto [n, m] : {std::pair<std::size_t, std::size_t>{30, 150},
                      {150, 30},
                      {2, 40},
                      {40, 2}}) {
    problems::MaxNwProblem p(problems::random_input_grid(n, m, n * 1000 + m),
                             2);
    RunConfig cfg;
    cfg.mode = Mode::kCpuSerial;
    const auto ref = solve(p, cfg);
    cfg.mode = Mode::kHeterogeneous;
    EXPECT_EQ(solve(p, cfg).table, ref.table) << n << "x" << m;
  }
}

}  // namespace
}  // namespace lddp
