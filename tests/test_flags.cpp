#include <gtest/gtest.h>

#include <vector>

#include "util/flags.h"

namespace lddp {
namespace {

Flags make(std::initializer_list<const char*> args) {
  static std::vector<std::vector<char>> storage;  // keep strings alive
  storage.clear();
  std::vector<char*> argv;
  storage.emplace_back(std::vector<char>{'p', 'r', 'o', 'g', '\0'});
  argv.push_back(storage.back().data());
  for (const char* a : args) {
    storage.emplace_back(a, a + std::string(a).size() + 1);
    argv.push_back(storage.back().data());
  }
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, KeyValuePairs) {
  const Flags f = make({"--size", "4096", "--mode=hetero"});
  EXPECT_EQ(f.get_int("size", 0), 4096);
  EXPECT_EQ(f.get("mode", ""), "hetero");
  EXPECT_EQ(f.get("missing", "fallback"), "fallback");
}

TEST(FlagsTest, BooleanFlags) {
  const Flags f = make({"--tune", "--verbose=false", "--fast=1"});
  EXPECT_TRUE(f.get_bool("tune"));
  EXPECT_FALSE(f.get_bool("verbose"));
  EXPECT_TRUE(f.get_bool("fast"));
  EXPECT_FALSE(f.get_bool("absent"));
  EXPECT_TRUE(f.get_bool("absent", true));
}

TEST(FlagsTest, Positional) {
  const Flags f = make({"input.pgm", "--k", "3", "output.pgm"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.pgm");
  EXPECT_EQ(f.positional()[1], "output.pgm");
  EXPECT_EQ(f.get_int("k", 0), 3);
}

TEST(FlagsTest, NumericValidation) {
  const Flags f = make({"--n", "12x", "--x", "abc", "--d", "1.5"});
  EXPECT_THROW(f.get_int("n", 0), CheckError);
  EXPECT_THROW(f.get_double("x", 0), CheckError);
  EXPECT_DOUBLE_EQ(f.get_double("d", 0), 1.5);
}

TEST(FlagsTest, NegativeNumbersAreValues) {
  // "-1" does not start with "--", so it is consumed as the value.
  const Flags f = make({"--t-switch", "-1"});
  EXPECT_EQ(f.get_int("t-switch", 0), -1);
}

TEST(FlagsTest, UnknownFlagsReported) {
  const Flags f = make({"--size", "8", "--typo", "9"});
  EXPECT_EQ(f.get_int("size", 0), 8);
  const auto unknown = f.unknown();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(FlagsTest, HasDoesNotConsume) {
  const Flags f = make({"--a", "1"});
  EXPECT_TRUE(f.has("a"));
  EXPECT_EQ(f.unknown().size(), 1u);  // has() is not a read
  f.get_int("a", 0);
  EXPECT_TRUE(f.unknown().empty());
}

}  // namespace
}  // namespace lddp
