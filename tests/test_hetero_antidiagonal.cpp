// Behavioural tests of the anti-diagonal heterogeneous strategy beyond raw
// correctness (which test_strategies_correctness covers): transfer
// direction and counts, pipelining effects, and stats plausibility.
#include <gtest/gtest.h>

#include "core/framework.h"
#include "problems/alignment.h"
#include "problems/levenshtein.h"

namespace lddp {
namespace {

problems::LevenshteinProblem make_problem(std::size_t len) {
  return problems::LevenshteinProblem(problems::random_sequence(len, 1),
                                      problems::random_sequence(len, 2));
}

TEST(HeteroAntiDiagonalTest, MatchesReferenceDistance) {
  const auto p = make_problem(200);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  const auto r = solve(p, cfg);
  EXPECT_EQ(r.table.at(p.rows() - 1, p.cols() - 1),
            problems::levenshtein_reference(p.a(), p.b()));
}

TEST(HeteroAntiDiagonalTest, TransfersAreOneWayDuringPhase2) {
  const auto p = make_problem(300);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {20, 40};
  const auto r = solve(p, cfg);
  EXPECT_EQ(r.stats.transfer, TransferNeed::kOneWay);
  // Per-front traffic is CPU->GPU only; the D2H side is the two bulk
  // downloads (phase-3 entry and the final result) — a handful of copies,
  // not one per front.
  EXPECT_GT(r.stats.h2d_copies, 100u);
  EXPECT_LE(r.stats.d2h_copies, 4u);
}

TEST(HeteroAntiDiagonalTest, StatsReportUsedParameters) {
  const auto p = make_problem(150);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {12, 33};
  const auto r = solve(p, cfg);
  EXPECT_EQ(r.stats.t_switch, 12);
  EXPECT_EQ(r.stats.t_share, 33);
  EXPECT_EQ(r.stats.mode_used, Mode::kHeterogeneous);
  EXPECT_EQ(r.stats.pattern, Pattern::kAntiDiagonal);
  EXPECT_EQ(r.stats.fronts, p.rows() + p.cols() - 1);
  EXPECT_EQ(r.stats.cells, p.rows() * p.cols());
  EXPECT_GT(r.stats.sim_seconds, 0.0);
  EXPECT_GT(r.stats.cpu_busy_seconds, 0.0);
  EXPECT_GT(r.stats.gpu_busy_seconds, 0.0);
}

TEST(HeteroAntiDiagonalTest, PureCpuSplitUsesNoKernels) {
  const auto p = make_problem(100);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {0, 1 << 20};  // strip covers every row: CPU does everything
  const auto r = solve(p, cfg);
  EXPECT_DOUBLE_EQ(r.stats.gpu_busy_seconds, 0.0);
  EXPECT_EQ(r.table.at(p.rows() - 1, p.cols() - 1),
            problems::levenshtein_reference(p.a(), p.b()));
}

TEST(HeteroAntiDiagonalTest, PureGpuSplitLeavesCpuLittleWork) {
  const auto p = make_problem(100);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {0, 0};  // no low-work phases, no CPU strip
  const auto r = solve(p, cfg);
  EXPECT_GT(r.stats.gpu_busy_seconds, 0.0);
  EXPECT_EQ(r.table.at(p.rows() - 1, p.cols() - 1),
            problems::levenshtein_reference(p.a(), p.b()));
}

TEST(HeteroAntiDiagonalTest, LowWorkPhasesReduceKernelCount) {
  const auto p = make_problem(256);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {0, 16};
  const auto all_fronts = solve(p, cfg);
  cfg.hetero = {64, 16};
  const auto trimmed = solve(p, cfg);
  // t_switch removes fronts from the GPU's schedule at both ends.
  EXPECT_LT(trimmed.stats.gpu_busy_seconds, all_fronts.stats.gpu_busy_seconds);
}

TEST(HeteroAntiDiagonalTest, SimTimeBeatsExtremesAtScale) {
  // The heterogeneous point of the paper: with sensible parameters the
  // split beats both the everything-on-CPU and everything-on-GPU splits of
  // the *same strategy* (simulated time, Hetero-High).
  const auto p = make_problem(1024);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = {-1, -1};
  const double tuned = solve(p, cfg).stats.sim_seconds;
  cfg.hetero = {0, 0};
  const double all_gpu = solve(p, cfg).stats.sim_seconds;
  cfg.hetero = {0, 1 << 20};
  const double all_cpu = solve(p, cfg).stats.sim_seconds;
  EXPECT_LT(tuned, all_gpu);
  EXPECT_LT(tuned, all_cpu);
}

TEST(HeteroAntiDiagonalTest, RectangularTables) {
  for (auto [n, m] : {std::pair<std::size_t, std::size_t>{50, 400},
                      {400, 50},
                      {1, 64},
                      {64, 1}}) {
    problems::LevenshteinProblem p(problems::random_sequence(n, 3),
                                   problems::random_sequence(m, 4));
    RunConfig cfg;
    cfg.mode = Mode::kHeterogeneous;
    const auto r = solve(p, cfg);
    EXPECT_EQ(r.table.at(n, m), problems::levenshtein_reference(p.a(), p.b()))
        << n << "x" << m;
  }
}

}  // namespace
}  // namespace lddp
