// Property tests for the wavefront-major layouts: every layout must be a
// bijection between (i, j) and [0, rows*cols), store each front
// contiguously in execution order, and respect its pattern's dependency
// rule (every dependency of a cell lies in an earlier front).
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "tables/layout.h"

namespace lddp {
namespace {

struct Dims {
  std::size_t rows, cols;
};

class LayoutDimsTest : public ::testing::TestWithParam<Dims> {};

template <typename Layout>
void check_layout_invariants(const Layout& lay) {
  const std::size_t n = lay.rows(), m = lay.cols();
  ASSERT_EQ(lay.size(), n * m);

  std::vector<char> seen(lay.size(), 0);
  std::size_t total = 0;
  for (std::size_t f = 0; f < lay.num_fronts(); ++f) {
    // Empty fronts are allowed (knight-move on single-column tables).
    const std::size_t fs = lay.front_size(f);
    for (std::size_t p = 0; p < fs; ++p) {
      const CellIndex c = lay.cell(f, p);
      ASSERT_LT(c.i, n);
      ASSERT_LT(c.j, m);
      // Enumeration and flat() agree, and fronts are stored contiguously.
      EXPECT_EQ(lay.flat(c.i, c.j), lay.front_offset(f) + p);
      EXPECT_EQ(lay.front_of(c.i, c.j), f);
      ASSERT_LT(lay.flat(c.i, c.j), lay.size());
      char& mark = seen[lay.flat(c.i, c.j)];
      EXPECT_EQ(mark, 0) << "cell enumerated twice";
      mark = 1;
      ++total;
    }
  }
  EXPECT_EQ(total, lay.size());
  for (char s : seen) EXPECT_EQ(s, 1);
}

// Dependency rule: all four representative cells of (i, j) that the
// pattern may use must lie strictly in earlier fronts.
template <typename Layout>
void check_dependency_order(const Layout& lay, bool use_w, bool use_nw,
                            bool use_n, bool use_ne) {
  const std::size_t n = lay.rows(), m = lay.cols();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const std::size_t f = lay.front_of(i, j);
      if (use_w && j > 0) {
        EXPECT_LT(lay.front_of(i, j - 1), f);
      }
      if (use_nw && i > 0 && j > 0) {
        EXPECT_LT(lay.front_of(i - 1, j - 1), f);
      }
      if (use_n && i > 0) {
        EXPECT_LT(lay.front_of(i - 1, j), f);
      }
      if (use_ne && i > 0 && j + 1 < m) {
        EXPECT_LT(lay.front_of(i - 1, j + 1), f);
      }
    }
  }
}

TEST_P(LayoutDimsTest, RowMajor) {
  const auto [n, m] = GetParam();
  RowMajorLayout lay(n, m);
  EXPECT_EQ(lay.num_fronts(), n);
  check_layout_invariants(lay);
  check_dependency_order(lay, false, true, true, true);  // {NW, N, NE}
}

TEST_P(LayoutDimsTest, ColumnMajor) {
  const auto [n, m] = GetParam();
  ColumnMajorLayout lay(n, m);
  EXPECT_EQ(lay.num_fronts(), m);
  check_layout_invariants(lay);
  check_dependency_order(lay, true, true, false, false);  // {W, NW}
}

TEST_P(LayoutDimsTest, AntiDiagonal) {
  const auto [n, m] = GetParam();
  AntiDiagonalLayout lay(n, m);
  EXPECT_EQ(lay.num_fronts(), n + m - 1);
  check_layout_invariants(lay);
  check_dependency_order(lay, true, true, true, false);  // {W, NW, N}
}

TEST_P(LayoutDimsTest, KnightMove) {
  const auto [n, m] = GetParam();
  KnightMoveLayout lay(n, m);
  EXPECT_EQ(lay.num_fronts(), 2 * (n - 1) + m);
  check_layout_invariants(lay);
  check_dependency_order(lay, true, true, true, true);  // all four
}

TEST_P(LayoutDimsTest, Shell) {
  const auto [n, m] = GetParam();
  ShellLayout lay(n, m);
  EXPECT_EQ(lay.num_fronts(), std::min(n, m));
  check_layout_invariants(lay);
  check_dependency_order(lay, false, true, false, false);  // {NW}
}

TEST_P(LayoutDimsTest, MirrorShell) {
  const auto [n, m] = GetParam();
  MirrorShellLayout lay(n, m);
  EXPECT_EQ(lay.num_fronts(), std::min(n, m));
  check_layout_invariants(lay);
  check_dependency_order(lay, false, false, false, true);  // {NE}
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LayoutDimsTest,
    ::testing::Values(Dims{1, 1}, Dims{1, 7}, Dims{7, 1}, Dims{2, 2},
                      Dims{3, 5}, Dims{5, 3}, Dims{8, 8}, Dims{13, 4},
                      Dims{4, 13}, Dims{16, 16}, Dims{31, 17}, Dims{1, 2},
                      Dims{2, 1}),
    [](const ::testing::TestParamInfo<Dims>& info) {
      return std::to_string(info.param.rows) + "x" +
             std::to_string(info.param.cols);
    });

TEST(LayoutTest, KnightMoveMatchesFigure2d) {
  // Figure 2(d): a 6-wide table's first rows are numbered
  //   1 2 3 4 5 6 / 3 4 5 6 7 8 / 5 6 7 8 9 10 ... (1-based) — i.e. the
  // front of (i, j) is 2i + j (0-based).
  KnightMoveLayout lay(5, 6);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_EQ(lay.front_of(i, j), 2 * i + j);
}

TEST(LayoutTest, AntiDiagonalMatchesFigure2a) {
  AntiDiagonalLayout lay(6, 6);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_EQ(lay.front_of(i, j), i + j);
}

TEST(LayoutTest, ShellMatchesFigure2c) {
  // Figure 2(c): shell of (i, j) is min(i, j).
  ShellLayout lay(6, 6);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_EQ(lay.front_of(i, j), std::min(i, j));
}

TEST(LayoutTest, MirrorShellMatchesFigure2f) {
  MirrorShellLayout lay(6, 6);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_EQ(lay.front_of(i, j), std::min(i, 5 - j));
}

TEST(LayoutTest, ShellEnumerationOrdersColumnPartFirst) {
  // The CPU strip (left columns) must be a prefix of each shell: column
  // part first (bottom-up), then the row part by ascending j.
  ShellLayout lay(4, 5);
  // Shell 0: column part (3,0), (2,0), (1,0); row part (0,0)..(0,4).
  EXPECT_EQ(lay.column_part_size(0), 3u);
  EXPECT_EQ(lay.cell(0, 0), (CellIndex{3, 0}));
  EXPECT_EQ(lay.cell(0, 1), (CellIndex{2, 0}));
  EXPECT_EQ(lay.cell(0, 2), (CellIndex{1, 0}));
  EXPECT_EQ(lay.cell(0, 3), (CellIndex{0, 0}));
  EXPECT_EQ(lay.cell(0, 7), (CellIndex{0, 4}));
}

TEST(LayoutTest, AntiDiagonalEnumerationAscendsRows) {
  AntiDiagonalLayout lay(4, 4);
  // Front 3 (main diagonal): (0,3), (1,2), (2,1), (3,0).
  EXPECT_EQ(lay.cell(3, 0), (CellIndex{0, 3}));
  EXPECT_EQ(lay.cell(3, 3), (CellIndex{3, 0}));
}

TEST(LayoutTest, KnightMoveEnumerationAscendsColumns) {
  KnightMoveLayout lay(4, 6);
  // Front 4 contains (0,4), (1,2), (2,0); enumeration is j ascending.
  EXPECT_EQ(lay.front_size(4), 3u);
  EXPECT_EQ(lay.cell(4, 0), (CellIndex{2, 0}));
  EXPECT_EQ(lay.cell(4, 1), (CellIndex{1, 2}));
  EXPECT_EQ(lay.cell(4, 2), (CellIndex{0, 4}));
}

TEST(LayoutTest, RejectsEmptyDimensions) {
  EXPECT_THROW(RowMajorLayout(0, 5), CheckError);
  EXPECT_THROW(AntiDiagonalLayout(5, 0), CheckError);
  EXPECT_THROW(ShellLayout(0, 0), CheckError);
}

}  // namespace
}  // namespace lddp
