#include <gtest/gtest.h>

#include "sim/kernel.h"

namespace lddp::sim {
namespace {

TEST(KernelModelTest, PresetsMatchPaperSpecs) {
  const GpuSpec k20 = GpuSpec::tesla_k20();
  EXPECT_EQ(k20.sm_count, 13);
  EXPECT_EQ(k20.cores_per_sm, 192);
  EXPECT_EQ(k20.sm_count * k20.cores_per_sm, 2496);
  const GpuSpec gt = GpuSpec::gt650m();
  EXPECT_EQ(gt.sm_count, 2);
  EXPECT_EQ(gt.sm_count * gt.cores_per_sm, 384);
}

TEST(KernelModelTest, ZeroCellsIsFree) {
  EXPECT_DOUBLE_EQ(kernel_seconds(GpuSpec::tesla_k20(), KernelInfo{}, 0), 0.0);
}

TEST(KernelModelTest, LaunchOverheadDominatesTinyKernels) {
  const GpuSpec g = GpuSpec::tesla_k20();
  const double one = kernel_seconds(g, KernelInfo{}, 1);
  EXPECT_GE(one,
            (g.launch_overhead_us + g.min_exec_latency_us) * 1e-6 - 1e-15);
  // 1 cell and 100 cells cost nearly the same: latency floor.
  const double hundred = kernel_seconds(g, KernelInfo{}, 100);
  EXPECT_NEAR(one, hundred, one * 0.01);
}

TEST(KernelModelTest, ThroughputRegimeScalesLinearly) {
  const GpuSpec g = GpuSpec::tesla_k20();
  const KernelInfo info;
  const double a = kernel_seconds(g, info, 1 << 22);
  const double b = kernel_seconds(g, info, 1 << 23);
  // Subtract the fixed launch cost before comparing slopes.
  const double fixed = g.launch_overhead_us * 1e-6;
  EXPECT_NEAR((b - fixed) / (a - fixed), 2.0, 0.05);
}

TEST(KernelModelTest, BiggerGpuIsFasterAtScale) {
  const KernelInfo info;
  EXPECT_LT(kernel_seconds(GpuSpec::tesla_k20(), info, 1 << 22),
            kernel_seconds(GpuSpec::gt650m(), info, 1 << 22));
}

TEST(KernelModelTest, AmplifiedMemoryTrafficSlowsKernel) {
  const GpuSpec g = GpuSpec::tesla_k20();
  KernelInfo coalesced;
  KernelInfo strided;
  strided.mem_amplification = 32.0;
  EXPECT_GT(kernel_seconds(g, strided, 1 << 20),
            4 * kernel_seconds(g, coalesced, 1 << 20));
}

TEST(KernelModelTest, ExtraUsAddsFixedCost) {
  const GpuSpec g = GpuSpec::tesla_k20();
  KernelInfo base;
  KernelInfo mapped = base;
  mapped.extra_us = 10.0;
  EXPECT_NEAR(kernel_seconds(g, mapped, 1000) - kernel_seconds(g, base, 1000),
              10e-6, 1e-12);
}

TEST(KernelModelTest, PeakThroughputRespectsMemoryBound) {
  const GpuSpec g = GpuSpec::tesla_k20();
  KernelInfo info;
  info.mem_amplification = 32.0;
  EXPECT_LT(gpu_peak_throughput(g, info),
            gpu_peak_throughput(g, KernelInfo{}));
}

TEST(TransferModelTest, PinnedBeatsPageable) {
  const GpuSpec g = GpuSpec::tesla_k20();
  for (std::size_t bytes : {8u, 1024u, 1u << 20}) {
    EXPECT_LT(transfer_seconds(g, bytes, MemoryKind::kPinned),
              transfer_seconds(g, bytes, MemoryKind::kPageable))
        << bytes;
  }
}

TEST(TransferModelTest, ZeroBytesIsFree) {
  EXPECT_DOUBLE_EQ(
      transfer_seconds(GpuSpec::tesla_k20(), 0, MemoryKind::kPinned), 0.0);
}

TEST(TransferModelTest, LatencyDominatesSmallBandwidthDominatesLarge) {
  const GpuSpec g = GpuSpec::tesla_k20();
  const double tiny = transfer_seconds(g, 4, MemoryKind::kPinned);
  EXPECT_NEAR(tiny, g.pinned_latency_us * 1e-6, tiny * 0.01);
  const double big = transfer_seconds(g, 1 << 30, MemoryKind::kPinned);
  EXPECT_NEAR(big, static_cast<double>(1 << 30) /
                       (g.pinned_bandwidth_gbs * 1e9),
              big * 0.01);
}

}  // namespace
}  // namespace lddp::sim
