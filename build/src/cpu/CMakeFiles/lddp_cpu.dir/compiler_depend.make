# Empty compiler generated dependencies file for lddp_cpu.
# This may be replaced when dependencies are built.
