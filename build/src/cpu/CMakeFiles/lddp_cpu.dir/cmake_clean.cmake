file(REMOVE_RECURSE
  "CMakeFiles/lddp_cpu.dir/cost_model.cpp.o"
  "CMakeFiles/lddp_cpu.dir/cost_model.cpp.o.d"
  "CMakeFiles/lddp_cpu.dir/thread_pool.cpp.o"
  "CMakeFiles/lddp_cpu.dir/thread_pool.cpp.o.d"
  "liblddp_cpu.a"
  "liblddp_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lddp_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
