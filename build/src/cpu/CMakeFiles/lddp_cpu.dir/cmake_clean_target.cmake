file(REMOVE_RECURSE
  "liblddp_cpu.a"
)
