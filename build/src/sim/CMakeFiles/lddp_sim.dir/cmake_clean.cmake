file(REMOVE_RECURSE
  "CMakeFiles/lddp_sim.dir/coalescing.cpp.o"
  "CMakeFiles/lddp_sim.dir/coalescing.cpp.o.d"
  "CMakeFiles/lddp_sim.dir/device_spec.cpp.o"
  "CMakeFiles/lddp_sim.dir/device_spec.cpp.o.d"
  "CMakeFiles/lddp_sim.dir/kernel.cpp.o"
  "CMakeFiles/lddp_sim.dir/kernel.cpp.o.d"
  "CMakeFiles/lddp_sim.dir/timeline.cpp.o"
  "CMakeFiles/lddp_sim.dir/timeline.cpp.o.d"
  "liblddp_sim.a"
  "liblddp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lddp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
