# Empty dependencies file for lddp_sim.
# This may be replaced when dependencies are built.
