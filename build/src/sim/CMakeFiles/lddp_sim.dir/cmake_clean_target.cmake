file(REMOVE_RECURSE
  "liblddp_sim.a"
)
