# Empty compiler generated dependencies file for lddp_core.
# This may be replaced when dependencies are built.
