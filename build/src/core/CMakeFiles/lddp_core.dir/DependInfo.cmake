
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/parallelism_profile.cpp" "src/core/CMakeFiles/lddp_core.dir/parallelism_profile.cpp.o" "gcc" "src/core/CMakeFiles/lddp_core.dir/parallelism_profile.cpp.o.d"
  "/root/repo/src/core/pattern.cpp" "src/core/CMakeFiles/lddp_core.dir/pattern.cpp.o" "gcc" "src/core/CMakeFiles/lddp_core.dir/pattern.cpp.o.d"
  "/root/repo/src/core/run_config.cpp" "src/core/CMakeFiles/lddp_core.dir/run_config.cpp.o" "gcc" "src/core/CMakeFiles/lddp_core.dir/run_config.cpp.o.d"
  "/root/repo/src/core/strategies/heuristics.cpp" "src/core/CMakeFiles/lddp_core.dir/strategies/heuristics.cpp.o" "gcc" "src/core/CMakeFiles/lddp_core.dir/strategies/heuristics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/lddp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lddp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
