file(REMOVE_RECURSE
  "liblddp_core.a"
)
