file(REMOVE_RECURSE
  "CMakeFiles/lddp_core.dir/parallelism_profile.cpp.o"
  "CMakeFiles/lddp_core.dir/parallelism_profile.cpp.o.d"
  "CMakeFiles/lddp_core.dir/pattern.cpp.o"
  "CMakeFiles/lddp_core.dir/pattern.cpp.o.d"
  "CMakeFiles/lddp_core.dir/run_config.cpp.o"
  "CMakeFiles/lddp_core.dir/run_config.cpp.o.d"
  "CMakeFiles/lddp_core.dir/strategies/heuristics.cpp.o"
  "CMakeFiles/lddp_core.dir/strategies/heuristics.cpp.o.d"
  "liblddp_core.a"
  "liblddp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lddp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
