# Empty compiler generated dependencies file for test_multi_accelerator.
# This may be replaced when dependencies are built.
