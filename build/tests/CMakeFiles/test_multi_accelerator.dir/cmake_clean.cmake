file(REMOVE_RECURSE
  "CMakeFiles/test_multi_accelerator.dir/test_multi_accelerator.cpp.o"
  "CMakeFiles/test_multi_accelerator.dir/test_multi_accelerator.cpp.o.d"
  "test_multi_accelerator"
  "test_multi_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
