file(REMOVE_RECURSE
  "CMakeFiles/test_grid3.dir/test_grid3.cpp.o"
  "CMakeFiles/test_grid3.dir/test_grid3.cpp.o.d"
  "test_grid3"
  "test_grid3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
