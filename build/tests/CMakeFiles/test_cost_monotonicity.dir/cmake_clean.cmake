file(REMOVE_RECURSE
  "CMakeFiles/test_cost_monotonicity.dir/test_cost_monotonicity.cpp.o"
  "CMakeFiles/test_cost_monotonicity.dir/test_cost_monotonicity.cpp.o.d"
  "test_cost_monotonicity"
  "test_cost_monotonicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost_monotonicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
