# Empty dependencies file for test_cost_monotonicity.
# This may be replaced when dependencies are built.
