file(REMOVE_RECURSE
  "CMakeFiles/test_hetero_horizontal.dir/test_hetero_horizontal.cpp.o"
  "CMakeFiles/test_hetero_horizontal.dir/test_hetero_horizontal.cpp.o.d"
  "test_hetero_horizontal"
  "test_hetero_horizontal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hetero_horizontal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
