# Empty dependencies file for test_hetero_horizontal.
# This may be replaced when dependencies are built.
