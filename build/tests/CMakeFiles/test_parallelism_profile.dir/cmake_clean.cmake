file(REMOVE_RECURSE
  "CMakeFiles/test_parallelism_profile.dir/test_parallelism_profile.cpp.o"
  "CMakeFiles/test_parallelism_profile.dir/test_parallelism_profile.cpp.o.d"
  "test_parallelism_profile"
  "test_parallelism_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallelism_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
