# Empty compiler generated dependencies file for test_parallelism_profile.
# This may be replaced when dependencies are built.
