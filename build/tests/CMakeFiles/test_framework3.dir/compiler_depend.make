# Empty compiler generated dependencies file for test_framework3.
# This may be replaced when dependencies are built.
