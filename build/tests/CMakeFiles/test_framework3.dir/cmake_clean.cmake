file(REMOVE_RECURSE
  "CMakeFiles/test_framework3.dir/test_framework3.cpp.o"
  "CMakeFiles/test_framework3.dir/test_framework3.cpp.o.d"
  "test_framework3"
  "test_framework3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_framework3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
