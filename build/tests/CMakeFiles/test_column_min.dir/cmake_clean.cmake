file(REMOVE_RECURSE
  "CMakeFiles/test_column_min.dir/test_column_min.cpp.o"
  "CMakeFiles/test_column_min.dir/test_column_min.cpp.o.d"
  "test_column_min"
  "test_column_min.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_column_min.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
