# Empty dependencies file for test_column_min.
# This may be replaced when dependencies are built.
