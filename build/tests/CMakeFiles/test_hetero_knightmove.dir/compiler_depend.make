# Empty compiler generated dependencies file for test_hetero_knightmove.
# This may be replaced when dependencies are built.
