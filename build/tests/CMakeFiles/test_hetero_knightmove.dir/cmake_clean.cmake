file(REMOVE_RECURSE
  "CMakeFiles/test_hetero_knightmove.dir/test_hetero_knightmove.cpp.o"
  "CMakeFiles/test_hetero_knightmove.dir/test_hetero_knightmove.cpp.o.d"
  "test_hetero_knightmove"
  "test_hetero_knightmove.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hetero_knightmove.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
