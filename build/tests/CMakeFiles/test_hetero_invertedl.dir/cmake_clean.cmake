file(REMOVE_RECURSE
  "CMakeFiles/test_hetero_invertedl.dir/test_hetero_invertedl.cpp.o"
  "CMakeFiles/test_hetero_invertedl.dir/test_hetero_invertedl.cpp.o.d"
  "test_hetero_invertedl"
  "test_hetero_invertedl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hetero_invertedl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
