# Empty dependencies file for test_hetero_invertedl.
# This may be replaced when dependencies are built.
