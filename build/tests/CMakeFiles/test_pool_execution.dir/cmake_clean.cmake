file(REMOVE_RECURSE
  "CMakeFiles/test_pool_execution.dir/test_pool_execution.cpp.o"
  "CMakeFiles/test_pool_execution.dir/test_pool_execution.cpp.o.d"
  "test_pool_execution"
  "test_pool_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pool_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
