# Empty dependencies file for test_pool_execution.
# This may be replaced when dependencies are built.
