file(REMOVE_RECURSE
  "CMakeFiles/test_checkerboard.dir/test_checkerboard.cpp.o"
  "CMakeFiles/test_checkerboard.dir/test_checkerboard.cpp.o.d"
  "test_checkerboard"
  "test_checkerboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checkerboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
