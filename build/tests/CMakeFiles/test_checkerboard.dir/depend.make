# Empty dependencies file for test_checkerboard.
# This may be replaced when dependencies are built.
