# Empty dependencies file for test_palindrome.
# This may be replaced when dependencies are built.
