file(REMOVE_RECURSE
  "CMakeFiles/test_palindrome.dir/test_palindrome.cpp.o"
  "CMakeFiles/test_palindrome.dir/test_palindrome.cpp.o.d"
  "test_palindrome"
  "test_palindrome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_palindrome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
