# Empty compiler generated dependencies file for test_floyd_steinberg.
# This may be replaced when dependencies are built.
