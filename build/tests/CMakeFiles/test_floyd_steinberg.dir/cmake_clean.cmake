file(REMOVE_RECURSE
  "CMakeFiles/test_floyd_steinberg.dir/test_floyd_steinberg.cpp.o"
  "CMakeFiles/test_floyd_steinberg.dir/test_floyd_steinberg.cpp.o.d"
  "test_floyd_steinberg"
  "test_floyd_steinberg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_floyd_steinberg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
