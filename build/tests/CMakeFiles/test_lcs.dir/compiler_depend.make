# Empty compiler generated dependencies file for test_lcs.
# This may be replaced when dependencies are built.
