file(REMOVE_RECURSE
  "CMakeFiles/test_lcs.dir/test_lcs.cpp.o"
  "CMakeFiles/test_lcs.dir/test_lcs.cpp.o.d"
  "test_lcs"
  "test_lcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
