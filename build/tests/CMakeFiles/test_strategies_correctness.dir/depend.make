# Empty dependencies file for test_strategies_correctness.
# This may be replaced when dependencies are built.
