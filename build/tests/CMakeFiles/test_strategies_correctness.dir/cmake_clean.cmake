file(REMOVE_RECURSE
  "CMakeFiles/test_strategies_correctness.dir/test_strategies_correctness.cpp.o"
  "CMakeFiles/test_strategies_correctness.dir/test_strategies_correctness.cpp.o.d"
  "test_strategies_correctness"
  "test_strategies_correctness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strategies_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
