file(REMOVE_RECURSE
  "CMakeFiles/test_seam_carving.dir/test_seam_carving.cpp.o"
  "CMakeFiles/test_seam_carving.dir/test_seam_carving.cpp.o.d"
  "test_seam_carving"
  "test_seam_carving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seam_carving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
