# Empty dependencies file for test_seam_carving.
# This may be replaced when dependencies are built.
