# Empty dependencies file for test_levenshtein.
# This may be replaced when dependencies are built.
