file(REMOVE_RECURSE
  "CMakeFiles/test_levenshtein.dir/test_levenshtein.cpp.o"
  "CMakeFiles/test_levenshtein.dir/test_levenshtein.cpp.o.d"
  "test_levenshtein"
  "test_levenshtein.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_levenshtein.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
