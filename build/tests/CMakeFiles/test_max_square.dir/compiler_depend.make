# Empty compiler generated dependencies file for test_max_square.
# This may be replaced when dependencies are built.
