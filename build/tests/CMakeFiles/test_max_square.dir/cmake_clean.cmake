file(REMOVE_RECURSE
  "CMakeFiles/test_max_square.dir/test_max_square.cpp.o"
  "CMakeFiles/test_max_square.dir/test_max_square.cpp.o.d"
  "test_max_square"
  "test_max_square.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_max_square.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
