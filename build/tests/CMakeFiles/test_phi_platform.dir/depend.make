# Empty dependencies file for test_phi_platform.
# This may be replaced when dependencies are built.
