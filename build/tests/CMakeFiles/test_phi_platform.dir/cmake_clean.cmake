file(REMOVE_RECURSE
  "CMakeFiles/test_phi_platform.dir/test_phi_platform.cpp.o"
  "CMakeFiles/test_phi_platform.dir/test_phi_platform.cpp.o.d"
  "test_phi_platform"
  "test_phi_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phi_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
