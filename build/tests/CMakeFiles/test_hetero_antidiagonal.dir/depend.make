# Empty dependencies file for test_hetero_antidiagonal.
# This may be replaced when dependencies are built.
