file(REMOVE_RECURSE
  "CMakeFiles/test_hetero_antidiagonal.dir/test_hetero_antidiagonal.cpp.o"
  "CMakeFiles/test_hetero_antidiagonal.dir/test_hetero_antidiagonal.cpp.o.d"
  "test_hetero_antidiagonal"
  "test_hetero_antidiagonal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hetero_antidiagonal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
