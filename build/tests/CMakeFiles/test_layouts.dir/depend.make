# Empty dependencies file for test_layouts.
# This may be replaced when dependencies are built.
