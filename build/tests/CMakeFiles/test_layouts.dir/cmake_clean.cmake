file(REMOVE_RECURSE
  "CMakeFiles/test_layouts.dir/test_layouts.cpp.o"
  "CMakeFiles/test_layouts.dir/test_layouts.cpp.o.d"
  "test_layouts"
  "test_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
