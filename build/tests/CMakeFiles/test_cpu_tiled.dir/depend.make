# Empty dependencies file for test_cpu_tiled.
# This may be replaced when dependencies are built.
