file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_tiled.dir/test_cpu_tiled.cpp.o"
  "CMakeFiles/test_cpu_tiled.dir/test_cpu_tiled.cpp.o.d"
  "test_cpu_tiled"
  "test_cpu_tiled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_tiled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
