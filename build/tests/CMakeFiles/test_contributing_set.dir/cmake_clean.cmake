file(REMOVE_RECURSE
  "CMakeFiles/test_contributing_set.dir/test_contributing_set.cpp.o"
  "CMakeFiles/test_contributing_set.dir/test_contributing_set.cpp.o.d"
  "test_contributing_set"
  "test_contributing_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contributing_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
