# Empty dependencies file for test_contributing_set.
# This may be replaced when dependencies are built.
