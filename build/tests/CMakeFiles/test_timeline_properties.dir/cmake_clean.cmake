file(REMOVE_RECURSE
  "CMakeFiles/test_timeline_properties.dir/test_timeline_properties.cpp.o"
  "CMakeFiles/test_timeline_properties.dir/test_timeline_properties.cpp.o.d"
  "test_timeline_properties"
  "test_timeline_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timeline_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
