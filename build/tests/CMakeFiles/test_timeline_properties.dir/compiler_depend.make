# Empty compiler generated dependencies file for test_timeline_properties.
# This may be replaced when dependencies are built.
