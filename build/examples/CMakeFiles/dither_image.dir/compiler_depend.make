# Empty compiler generated dependencies file for dither_image.
# This may be replaced when dependencies are built.
