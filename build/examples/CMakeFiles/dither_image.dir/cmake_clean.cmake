file(REMOVE_RECURSE
  "CMakeFiles/dither_image.dir/dither_image.cpp.o"
  "CMakeFiles/dither_image.dir/dither_image.cpp.o.d"
  "dither_image"
  "dither_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dither_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
