file(REMOVE_RECURSE
  "CMakeFiles/align_sequences.dir/align_sequences.cpp.o"
  "CMakeFiles/align_sequences.dir/align_sequences.cpp.o.d"
  "align_sequences"
  "align_sequences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/align_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
