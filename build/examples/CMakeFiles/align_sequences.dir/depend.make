# Empty dependencies file for align_sequences.
# This may be replaced when dependencies are built.
