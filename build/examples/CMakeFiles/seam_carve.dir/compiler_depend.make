# Empty compiler generated dependencies file for seam_carve.
# This may be replaced when dependencies are built.
