file(REMOVE_RECURSE
  "CMakeFiles/seam_carve.dir/seam_carve.cpp.o"
  "CMakeFiles/seam_carve.dir/seam_carve.cpp.o.d"
  "seam_carve"
  "seam_carve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seam_carve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
