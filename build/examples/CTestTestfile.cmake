# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_align "/root/repo/build/examples/align_sequences" "ACGTACGT" "ACTTACG")
set_tests_properties(example_align PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spellcheck "/root/repo/build/examples/spellcheck" "wavefrnt")
set_tests_properties(example_spellcheck PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
