# Empty compiler generated dependencies file for bench_table2_transfers.
# This may be replaced when dependencies are built.
