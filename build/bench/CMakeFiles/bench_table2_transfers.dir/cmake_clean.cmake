file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_transfers.dir/bench_table2_transfers.cpp.o"
  "CMakeFiles/bench_table2_transfers.dir/bench_table2_transfers.cpp.o.d"
  "bench_table2_transfers"
  "bench_table2_transfers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
