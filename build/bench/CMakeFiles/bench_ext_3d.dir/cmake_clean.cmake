file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_3d.dir/bench_ext_3d.cpp.o"
  "CMakeFiles/bench_ext_3d.dir/bench_ext_3d.cpp.o.d"
  "bench_ext_3d"
  "bench_ext_3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
