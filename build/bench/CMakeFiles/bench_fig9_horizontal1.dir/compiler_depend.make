# Empty compiler generated dependencies file for bench_fig9_horizontal1.
# This may be replaced when dependencies are built.
