file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_horizontal1.dir/bench_fig9_horizontal1.cpp.o"
  "CMakeFiles/bench_fig9_horizontal1.dir/bench_fig9_horizontal1.cpp.o.d"
  "bench_fig9_horizontal1"
  "bench_fig9_horizontal1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_horizontal1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
