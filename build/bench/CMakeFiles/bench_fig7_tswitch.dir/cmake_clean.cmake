file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_tswitch.dir/bench_fig7_tswitch.cpp.o"
  "CMakeFiles/bench_fig7_tswitch.dir/bench_fig7_tswitch.cpp.o.d"
  "bench_fig7_tswitch"
  "bench_fig7_tswitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tswitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
