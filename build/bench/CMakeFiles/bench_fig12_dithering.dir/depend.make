# Empty dependencies file for bench_fig12_dithering.
# This may be replaced when dependencies are built.
