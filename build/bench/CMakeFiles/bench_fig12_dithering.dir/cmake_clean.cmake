file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_dithering.dir/bench_fig12_dithering.cpp.o"
  "CMakeFiles/bench_fig12_dithering.dir/bench_fig12_dithering.cpp.o.d"
  "bench_fig12_dithering"
  "bench_fig12_dithering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_dithering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
