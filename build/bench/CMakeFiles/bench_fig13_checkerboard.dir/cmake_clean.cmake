file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_checkerboard.dir/bench_fig13_checkerboard.cpp.o"
  "CMakeFiles/bench_fig13_checkerboard.dir/bench_fig13_checkerboard.cpp.o.d"
  "bench_fig13_checkerboard"
  "bench_fig13_checkerboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_checkerboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
