file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multi.dir/bench_ext_multi.cpp.o"
  "CMakeFiles/bench_ext_multi.dir/bench_ext_multi.cpp.o.d"
  "bench_ext_multi"
  "bench_ext_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
