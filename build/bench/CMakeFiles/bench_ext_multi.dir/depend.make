# Empty dependencies file for bench_ext_multi.
# This may be replaced when dependencies are built.
