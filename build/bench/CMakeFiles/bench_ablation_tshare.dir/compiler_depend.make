# Empty compiler generated dependencies file for bench_ablation_tshare.
# This may be replaced when dependencies are built.
