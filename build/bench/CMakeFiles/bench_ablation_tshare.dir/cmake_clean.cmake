file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tshare.dir/bench_ablation_tshare.cpp.o"
  "CMakeFiles/bench_ablation_tshare.dir/bench_ablation_tshare.cpp.o.d"
  "bench_ablation_tshare"
  "bench_ablation_tshare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
