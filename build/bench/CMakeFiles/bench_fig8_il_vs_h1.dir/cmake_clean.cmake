file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_il_vs_h1.dir/bench_fig8_il_vs_h1.cpp.o"
  "CMakeFiles/bench_fig8_il_vs_h1.dir/bench_fig8_il_vs_h1.cpp.o.d"
  "bench_fig8_il_vs_h1"
  "bench_fig8_il_vs_h1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_il_vs_h1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
