# Empty dependencies file for bench_fig8_il_vs_h1.
# This may be replaced when dependencies are built.
