file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_accelerators.dir/bench_ext_accelerators.cpp.o"
  "CMakeFiles/bench_ext_accelerators.dir/bench_ext_accelerators.cpp.o.d"
  "bench_ext_accelerators"
  "bench_ext_accelerators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_accelerators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
