file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_levenshtein.dir/bench_fig10_levenshtein.cpp.o"
  "CMakeFiles/bench_fig10_levenshtein.dir/bench_fig10_levenshtein.cpp.o.d"
  "bench_fig10_levenshtein"
  "bench_fig10_levenshtein.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_levenshtein.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
