file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pinned.dir/bench_ablation_pinned.cpp.o"
  "CMakeFiles/bench_ablation_pinned.dir/bench_ablation_pinned.cpp.o.d"
  "bench_ablation_pinned"
  "bench_ablation_pinned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pinned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
