# Empty dependencies file for lddp_cli.
# This may be replaced when dependencies are built.
