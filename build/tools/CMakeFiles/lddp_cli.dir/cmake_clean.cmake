file(REMOVE_RECURSE
  "CMakeFiles/lddp_cli.dir/lddp_cli.cpp.o"
  "CMakeFiles/lddp_cli.dir/lddp_cli.cpp.o.d"
  "lddp_cli"
  "lddp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lddp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
