file(REMOVE_RECURSE
  "CMakeFiles/lddp_diagrams.dir/lddp_diagrams.cpp.o"
  "CMakeFiles/lddp_diagrams.dir/lddp_diagrams.cpp.o.d"
  "lddp_diagrams"
  "lddp_diagrams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lddp_diagrams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
