# Empty dependencies file for lddp_diagrams.
# This may be replaced when dependencies are built.
