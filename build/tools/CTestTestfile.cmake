# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/lddp_cli" "--list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_levenshtein "/root/repo/build/tools/lddp_cli" "--problem" "levenshtein" "--size" "256" "--mode" "hetero")
set_tests_properties(cli_levenshtein PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_checkerboard_low "/root/repo/build/tools/lddp_cli" "--problem" "checkerboard" "--size" "256" "--platform" "low")
set_tests_properties(cli_checkerboard_low PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_lcs3 "/root/repo/build/tools/lddp_cli" "--problem" "lcs3" "--size" "48")
set_tests_properties(cli_lcs3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dtw_banded "/root/repo/build/tools/lddp_cli" "--problem" "dtw" "--size" "200" "--band" "20" "--mode" "gpu")
set_tests_properties(cli_dtw_banded PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_tiled "/root/repo/build/tools/lddp_cli" "--problem" "palindrome_unknown" "--size" "8")
set_tests_properties(cli_tiled PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_gotoh "/root/repo/build/tools/lddp_cli" "--problem" "gotoh" "--size" "200")
set_tests_properties(cli_gotoh PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_seam_multi "/root/repo/build/tools/lddp_cli" "--problem" "seam" "--size" "256" "--devices" "2")
set_tests_properties(cli_seam_multi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(diagrams "/root/repo/build/tools/lddp_diagrams" "/root/repo/build/tools")
set_tests_properties(diagrams PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
