// Defining your own LDDP-Plus problem (Section V-C: "a user has to provide
// the function f and the initialization") and tuning it empirically.
//
// The problem here is a weighted "longest snake" score: each cell extends
// the best of its N and NE predecessors with a reward for increasing
// terrain height — contributing set {N, NE}, which the framework maps to
// the Horizontal pattern with one-way (GPU->CPU) pipelined transfers.
#include <cstdio>

#include "core/framework.h"
#include "core/tuner.h"
#include "problems/synthetic.h"

namespace {

// A problem type is any class satisfying lddp::LddpProblem: a Value type,
// table dimensions, the contributing set, a boundary value, and f itself.
class SnakeProblem {
 public:
  using Value = std::int64_t;

  explicit SnakeProblem(lddp::Grid<std::int32_t> height)
      : height_(std::move(height)) {}

  std::size_t rows() const { return height_.rows(); }
  std::size_t cols() const { return height_.cols(); }

  lddp::ContributingSet deps() const {
    return lddp::ContributingSet{lddp::Dep::kN, lddp::Dep::kNE};
  }

  Value boundary() const { return 0; }

  Value compute(std::size_t i, std::size_t j,
                const lddp::Neighbors<Value>& nb) const {
    const Value best = nb.n > nb.ne ? nb.n : nb.ne;
    const Value reward = height_.at(i, j) % 7;
    return best + reward;
  }

  lddp::cpu::WorkProfile work() const {
    return lddp::cpu::WorkProfile{11.0, 42.0, 24.0};
  }
  std::size_t input_bytes() const {
    return height_.size() * sizeof(std::int32_t);
  }

 private:
  lddp::Grid<std::int32_t> height_;
};

static_assert(lddp::LddpProblem<SnakeProblem>);

}  // namespace

int main() {
  using namespace lddp;

  SnakeProblem problem(problems::random_input_grid(1500, 1500, /*seed=*/3));

  std::printf("pattern: %s, transfers: %s\n",
              to_string(classify(problem.deps())).c_str(),
              to_string(transfer_need(problem.deps())).c_str());

  // Let the tuner find t_switch / t_share empirically (Section V-A).
  RunConfig cfg;
  cfg.platform = sim::PlatformSpec::hetero_high();
  const TuneResult tuned = tune(problem, cfg, /*samples_per_sweep=*/9);
  std::printf("tuned parameters: t_switch=%lld t_share=%lld\n",
              tuned.best.t_switch, tuned.best.t_share);
  std::printf("t_share sweep (cells -> simulated ms):\n");
  for (std::size_t k = 0; k < tuned.share_values.size(); ++k)
    std::printf("  %6lld -> %8.3f\n", tuned.share_values[k],
                tuned.share_seconds[k] * 1e3);

  cfg.mode = Mode::kHeterogeneous;
  cfg.hetero = tuned.best;
  const auto hetero = solve(problem, cfg);
  std::printf("heterogeneous (tuned): %.3f ms simulated\n",
              hetero.stats.sim_seconds * 1e3);
  for (Mode mode : {Mode::kCpuParallel, Mode::kGpu}) {
    RunConfig alt = cfg;
    alt.mode = mode;
    const auto r = solve(problem, alt);
    std::printf("%-22s: %.3f ms simulated (tables match: %s)\n",
                to_string(mode).c_str(), r.stats.sim_seconds * 1e3,
                r.table == hetero.table ? "yes" : "NO");
  }
  return 0;
}
