// Sequence alignment on the heterogeneous framework: global alignment
// (Needleman–Wunsch) with traceback, and local alignment (Smith–Waterman)
// — the bioinformatics workloads the paper's introduction motivates.
//
// Usage: align_sequences [seq_a seq_b]
//        (defaults to two related random DNA sequences)
#include <cstdio>
#include <string>

#include "core/framework.h"
#include "problems/alignment.h"
#include "problems/gotoh.h"

int main(int argc, char** argv) {
  using namespace lddp;
  using namespace lddp::problems;

  std::string a, b;
  if (argc == 3) {
    a = argv[1];
    b = argv[2];
  } else {
    // Two sequences sharing a long motif, so the local alignment is
    // visibly meaningful.
    const std::string motif = random_sequence(48, 7);
    a = random_sequence(60, 8) + motif + random_sequence(60, 9);
    b = random_sequence(40, 10) + motif + random_sequence(80, 11);
  }

  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;

  // --- global alignment ---------------------------------------------------
  NeedlemanWunschProblem nw(a, b);
  const auto nw_result = solve(nw, cfg);
  const Alignment alignment = nw_traceback(nw, nw_result.table);
  std::printf("== Needleman-Wunsch (global) ==\n");
  std::printf("score: %d   (table %zux%zu, %s pattern, %.3f ms simulated)\n",
              alignment.score, nw.rows(), nw.cols(),
              to_string(nw_result.stats.pattern).c_str(),
              nw_result.stats.sim_seconds * 1e3);
  if (alignment.a.size() <= 120) {
    std::printf("  %s\n  %s\n", alignment.a.c_str(), alignment.b.c_str());
  } else {
    std::printf("  (alignment of length %zu; first 100 columns)\n  %s\n  %s\n",
                alignment.a.size(), alignment.a.substr(0, 100).c_str(),
                alignment.b.substr(0, 100).c_str());
  }

  // --- local alignment -----------------------------------------------------
  SmithWatermanProblem sw(a, b);
  const auto sw_result = solve(sw, cfg);
  const Alignment local = sw_traceback(sw, sw_result.table);
  std::printf("== Smith-Waterman (local) ==\n");
  std::printf("best local score: %d over %zu columns (%.3f ms simulated)\n",
              local.score, local.a.size(),
              sw_result.stats.sim_seconds * 1e3);
  if (local.a.size() <= 120)
    std::printf("  %s\n  %s\n", local.a.c_str(), local.b.c_str());

  // --- affine-gap global alignment (Gotoh) ----------------------------------
  GotohProblem gotoh(a, b);
  const auto gotoh_result = solve(gotoh, cfg);
  const GotohAlignment affine = gotoh_traceback(gotoh, gotoh_result.table);
  std::printf("== Gotoh (global, affine gaps) ==\n");
  std::printf("score: %d (vs %d with linear gaps; %.3f ms simulated)\n",
              affine.score, alignment.score,
              gotoh_result.stats.sim_seconds * 1e3);
  return 0;
}
