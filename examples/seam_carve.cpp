// Content-aware image shrinking with the heterogeneous framework: every
// seam is one horizontal-case-2 table fill (the checkerboard dependency
// structure), so carving k columns runs k heterogeneous solves.
//
// Usage: seam_carve [input.pgm] [columns_to_remove] [output.pgm]
//        Defaults: synthetic 256x384 plasma image, 64 columns, carved.pgm
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/framework.h"
#include "problems/seam_carving.h"

int main(int argc, char** argv) {
  using namespace lddp;
  using namespace lddp::problems;

  GrayImage img = argc >= 2 ? read_pgm(argv[1])
                            : plasma_image(256, 384, /*seed=*/7);
  const int carve = argc >= 3 ? std::atoi(argv[2]) : 64;
  const std::string out_path = argc >= 4 ? argv[3] : "carved.pgm";
  LDDP_CHECK_MSG(carve > 0 && static_cast<std::size_t>(carve) < img.cols(),
                 "cannot remove " << carve << " of " << img.cols()
                                  << " columns");

  std::printf("carving %d columns from %zux%zu...\n", carve, img.cols(),
              img.rows());
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  double sim_total = 0.0;
  for (int k = 0; k < carve; ++k) {
    SeamCarveProblem p(dual_gradient_energy(img));
    const auto result = solve(p, cfg);
    sim_total += result.stats.sim_seconds;
    img = remove_seam(img, extract_seam(result.table));
  }
  write_pgm(img, out_path);
  std::printf("wrote %s (%zux%zu); %d seams, %.3f ms simulated total "
              "(%s pattern, %s transfers)\n",
              out_path.c_str(), img.cols(), img.rows(), carve,
              sim_total * 1e3,
              to_string(Pattern::kHorizontal).c_str(),
              to_string(TransferNeed::kTwoWay).c_str());
  return 0;
}
