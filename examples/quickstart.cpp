// Quickstart: solve an LDDP problem with the heterogeneous framework.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The framework needs only (1) the update function f packaged as a problem
// type, and (2) its initialization — here we use the bundled Levenshtein
// problem. The framework classifies the contributing set (anti-diagonal),
// picks the wavefront layout, splits work between the simulated CPU and
// GPU, and returns the filled table plus timing statistics.
#include <cstdio>

#include "core/framework.h"
#include "problems/alignment.h"
#include "problems/levenshtein.h"

int main() {
  using namespace lddp;

  // Two random DNA-like sequences; any strings work.
  const std::string a = problems::random_sequence(2000, /*seed=*/1);
  const std::string b = problems::random_sequence(2400, /*seed=*/2);
  problems::LevenshteinProblem problem(a, b);

  RunConfig cfg;                                    // defaults:
  cfg.platform = sim::PlatformSpec::hetero_high();  //   i7-980 + Tesla K20
  cfg.mode = Mode::kHeterogeneous;                  //   CPU+GPU split

  const auto result = solve(problem, cfg);
  const int distance = result.table.at(problem.rows() - 1, problem.cols() - 1);

  std::printf("Levenshtein distance         : %d\n", distance);
  std::printf("pattern                      : %s\n",
              to_string(result.stats.pattern).c_str());
  std::printf("transfer scheme              : %s\n",
              to_string(result.stats.transfer).c_str());
  std::printf("wavefronts                   : %zu\n", result.stats.fronts);
  std::printf("t_switch / t_share used      : %lld / %lld\n",
              result.stats.t_switch, result.stats.t_share);
  std::printf("simulated time (Hetero-High) : %.3f ms\n",
              result.stats.sim_seconds * 1e3);
  std::printf("  CPU busy %.3f ms | GPU busy %.3f ms | DMA busy %.3f ms\n",
              result.stats.cpu_busy_seconds * 1e3,
              result.stats.gpu_busy_seconds * 1e3,
              result.stats.copy_busy_seconds * 1e3);
  std::printf("PCIe traffic                 : %zu B up, %zu B down\n",
              result.stats.h2d_bytes, result.stats.d2h_bytes);

  // Compare against the pure-CPU and pure-GPU baselines.
  for (Mode mode : {Mode::kCpuParallel, Mode::kGpu}) {
    RunConfig alt = cfg;
    alt.mode = mode;
    const auto r = solve(problem, alt);
    std::printf("baseline %-13s        : %.3f ms (same distance: %s)\n",
                to_string(mode).c_str(), r.stats.sim_seconds * 1e3,
                r.table.at(problem.rows() - 1, problem.cols() - 1) == distance
                    ? "yes"
                    : "NO");
  }
  return 0;
}
