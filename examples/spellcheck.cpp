// Approximate dictionary lookup — a realistic Levenshtein application: for
// each query, rank dictionary words by edit distance. Each comparison is
// one anti-diagonal table fill; a length-difference lower bound skips
// hopeless candidates (|len(a) - len(b)| <= best ensures optimality).
//
// Usage: spellcheck [query ...]   (defaults to three misspelled words)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/framework.h"
#include "problems/levenshtein.h"

namespace {

const char* kDictionary[] = {
    "algorithm",  "parallel",   "heterogeneous", "framework", "dynamic",
    "programming", "dependency", "diagonal",     "pattern",   "kernel",
    "transfer",   "pipeline",   "boundary",      "iteration", "bandwidth",
    "alignment",  "sequence",   "distance",      "dithering", "wavefront",
    "processor",  "accelerator", "coalescing",   "latency",   "throughput",
    "checkerboard", "simulation", "platform",    "schedule",  "workload",
};

struct Match {
  std::string word;
  int distance;
};

std::vector<Match> best_matches(const std::string& query, std::size_t k,
                                const lddp::RunConfig& cfg, int* solves) {
  std::vector<Match> matches;
  int best_seen = 1 << 20;
  for (const char* word : kDictionary) {
    const std::string w = word;
    const auto len_gap = w.size() > query.size() ? w.size() - query.size()
                                                 : query.size() - w.size();
    // Lower bound: distance >= |length difference|. Once we hold k matches
    // no worse than this bound, the candidate cannot improve the top-k.
    if (matches.size() >= k &&
        static_cast<int>(len_gap) > best_seen) {
      continue;
    }
    lddp::problems::LevenshteinProblem p(query, w);
    const auto result = lddp::solve(p, cfg);
    ++*solves;
    const int d = result.table.at(query.size(), w.size());
    matches.push_back(Match{w, d});
    std::sort(matches.begin(), matches.end(),
              [](const Match& a, const Match& b) {
                return a.distance < b.distance;
              });
    if (matches.size() > k) matches.resize(k);
    if (matches.size() == k) best_seen = matches.back().distance;
  }
  return matches;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> queries;
  for (int i = 1; i < argc; ++i) queries.push_back(argv[i]);
  if (queries.empty())
    queries = {"paralel", "hetrogenous", "wavefrunt"};

  lddp::RunConfig cfg;
  cfg.mode = lddp::Mode::kAuto;  // tiny tables -> multicore CPU path

  for (const auto& q : queries) {
    int solves = 0;
    const auto matches = best_matches(q, 3, cfg, &solves);
    std::printf("%-14s ->", q.c_str());
    for (const auto& m : matches)
      std::printf("  %s (%d)", m.word.c_str(), m.distance);
    std::printf("   [%d/%zu table fills]\n", solves,
                std::size(kDictionary));
  }
  return 0;
}
