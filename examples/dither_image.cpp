// Floyd–Steinberg dithering through the knight-move heterogeneous strategy
// (the paper's Section VI-B case study).
//
// Usage: dither_image [input.pgm [output.pgm]]
//        With no input, a synthetic 512x512 plasma image is generated.
#include <cstdio>
#include <string>

#include "core/framework.h"
#include "problems/floyd_steinberg.h"

int main(int argc, char** argv) {
  using namespace lddp;
  using namespace lddp::problems;

  GrayImage input;
  if (argc >= 2) {
    input = read_pgm(argv[1]);
    std::printf("loaded %s: %zux%zu\n", argv[1], input.cols(), input.rows());
  } else {
    input = plasma_image(512, 512, /*seed=*/42);
    std::printf("generated synthetic 512x512 plasma image\n");
  }
  const std::string out_path = argc >= 3 ? argv[2] : "dithered.pgm";

  FloydSteinbergProblem problem(input);
  RunConfig cfg;
  cfg.mode = Mode::kHeterogeneous;
  const auto result = solve(problem, cfg);

  write_pgm(dithered_image(result.table), out_path);
  std::printf("wrote %s\n", out_path.c_str());
  std::printf("pattern %s, %zu knight-move fronts, %s transfers\n",
              to_string(result.stats.pattern).c_str(), result.stats.fronts,
              to_string(result.stats.transfer).c_str());
  std::printf("simulated: hetero %.3f ms", result.stats.sim_seconds * 1e3);
  for (Mode mode : {Mode::kCpuParallel, Mode::kGpu}) {
    RunConfig alt = cfg;
    alt.mode = mode;
    std::printf(" | %s %.3f ms", to_string(mode).c_str(),
                solve(problem, alt).stats.sim_seconds * 1e3);
  }
  std::printf("\n");
  return 0;
}
