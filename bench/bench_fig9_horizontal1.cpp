// Figure 9: horizontal case-1 pattern (f = min(NW, N) + c) — CPU vs GPU vs
// Framework across table sizes on both platforms.
//
// Expected shape: small tables favour the CPU (kernel-launch and transfer
// overheads dominate); the GPU overtakes as tables grow; the framework's
// pipelined split tracks the best unit and wins at scale.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "problems/synthetic.h"

namespace {

using namespace lddp;

problems::MinNwNProblem make_problem(std::size_t n) {
  return problems::MinNwNProblem(n, n, 1);
}

void BM_Fig9(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const char* platform = state.range(1) ? "Hetero-Low" : "Hetero-High";
  const Mode mode = static_cast<Mode>(state.range(2));
  auto cfg = lddp::bench::config_for(platform, mode);
  lddp::bench::run_once(state, make_problem(n), cfg);
  state.SetLabel(std::string(platform) + "/" + lddp::bench::mode_label(mode));
}

BENCHMARK(BM_Fig9)
    ->ArgsProduct({{1024, 2048, 4096, 8192},
                   {0, 1},
                   {static_cast<long>(Mode::kCpuParallel),
                    static_cast<long>(Mode::kGpu),
                    static_cast<long>(Mode::kHeterogeneous)}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  lddp::bench::case_study_series(
      "Fig 9: horizontal case-1, f = min(NW, N) + c", "fig9_horizontal1.csv",
      {512, 1024, 2048, 4096, 8192, 16384}, make_problem);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
