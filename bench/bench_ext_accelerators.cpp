// Extension bench: "It would be interesting to see how does a
// heterogeneous approach impact the implementation if the system has some
// other accelerators like Intel Xeon-Phi" (the paper's conclusion).
//
// Same host CPU (i7-980), three accelerators — Tesla K20, GT 650M,
// Xeon Phi 5110P — across the checkerboard case study (constant fronts
// exercise the accelerators' throughput rather than the ramp).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "problems/checkerboard.h"
#include "util/csv.h"

namespace {

using namespace lddp;

sim::PlatformSpec accel_platform(int which) {
  switch (which) {
    case 0:
      return sim::PlatformSpec::hetero_high();  // K20
    case 2:
      return sim::PlatformSpec::hetero_phi();
    default: {
      // GT 650M paired with the i7-980 host to isolate the accelerator.
      sim::PlatformSpec p = sim::PlatformSpec::hetero_high();
      p.gpu = sim::GpuSpec::gt650m();
      p.name = "i7-980 + GT650M";
      return p;
    }
  }
}

void BM_Accelerators(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Mode mode = state.range(2) ? Mode::kHeterogeneous : Mode::kGpu;
  problems::CheckerboardProblem p(problems::random_cost_board(n, n, n));
  RunConfig cfg;
  cfg.platform = accel_platform(static_cast<int>(state.range(1)));
  cfg.mode = mode;
  lddp::bench::run_once(state, p, cfg);
  state.SetLabel(cfg.platform.gpu.name + " / " +
                 lddp::bench::mode_label(mode));
}
BENCHMARK(BM_Accelerators)
    ->ArgsProduct({{2048, 8192}, {0, 1, 2}, {0, 1}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_series() {
  std::printf("\n=== Extension: accelerator comparison (checkerboard, "
              "i7-980 host, sim ms) ===\n");
  std::printf("%8s | %10s %10s %10s | %10s %10s %10s\n", "size", "K20/GPU",
              "650M/GPU", "Phi/GPU", "K20/Frm", "650M/Frm", "Phi/Frm");
  CsvWriter csv("ext_accelerators.csv");
  csv.header({"size", "k20_gpu_ms", "gt650m_gpu_ms", "phi_gpu_ms",
              "k20_frm_ms", "gt650m_frm_ms", "phi_frm_ms"});
  for (std::size_t n : {1024u, 2048u, 4096u, 8192u}) {
    problems::CheckerboardProblem p(problems::random_cost_board(n, n, n));
    double t[6];
    int k = 0;
    for (Mode mode : {Mode::kGpu, Mode::kHeterogeneous}) {
      for (int which = 0; which < 3; ++which) {
        RunConfig cfg;
        cfg.platform = accel_platform(which);
        cfg.mode = mode;
        t[k++] = solve(p, cfg).stats.sim_seconds * 1e3;
      }
    }
    std::printf("%8zu | %10.3f %10.3f %10.3f | %10.3f %10.3f %10.3f\n", n,
                t[0], t[1], t[2], t[3], t[4], t[5]);
    csv.row(n, t[0], t[1], t[2], t[3], t[4], t[5]);
  }
  std::printf("expected: Phi launch-bound at small sizes, bandwidth-strong "
              "at large; the heterogeneous split helps every accelerator\n");
  csv.save();
}

}  // namespace

int main(int argc, char** argv) {
  print_series();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
