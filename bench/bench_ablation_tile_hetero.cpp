// Ablation: the tile-granular execution layer (skewed tiles, block-per-tile
// shared-memory kernels, halo-only transfers) versus the fused untiled
// baseline of the same modes.
//
// Two levers drive the win. First, launches: an n x n anti-diagonal table
// has 2n-1 cell fronts but only ~2n/T tile fronts, so the per-front
// submission cost (graph node issue when fused) shrinks by the tile side.
// Second, memory: the untiled thread-per-cell kernel reads every
// contributing cell from DRAM, while the tiled kernel stages the tile plus
// its halo in shared memory, collapsing neighbour traffic to one load and
// one store per cell plus a thin halo. Heterogeneous runs additionally
// shrink CPU->GPU traffic from whole fronts to tile halos. Results are
// bit-identical across all settings; only the simulated schedule changes.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <thread>

#include "bench_common.h"
#include "cpu/thread_pool.h"
#include "problems/alignment.h"
#include "problems/floyd_steinberg.h"
#include "problems/image.h"
#include "problems/levenshtein.h"
#include "sim/memory.h"

namespace {

using namespace lddp;

constexpr std::size_t kSizes[] = {1024, 2048, 4096};
constexpr long long kTiles[] = {16, 32, 64, 128, 256};

RunConfig tile_cfg(const char* platform, Mode mode, long long tile,
                   cpu::ThreadPool* pool, sim::BufferPool* buffers) {
  auto cfg = lddp::bench::config_for(platform, mode);
  cfg.tile = tile;
  cfg.pool = pool;
  cfg.buffer_pool = buffers;
  return cfg;
}

template <typename Factory>
void series(const char* problem_name, Factory&& make_problem,
            cpu::ThreadPool* pool, sim::BufferPool* buffers,
            lddp::bench::JsonWriter* json) {
  for (const Mode mode : {Mode::kGpu, Mode::kHeterogeneous}) {
    std::printf("\n=== Ablation: tile-granular execution (%s, Hetero-High, "
                "%s) ===\n",
                problem_name, lddp::bench::mode_label(mode));
    std::printf("%8s %14s", "size", "untiled (ms)");
    for (const long long t : kTiles) std::printf(" %9s%-3lld", "tile", t);
    std::printf(" %12s %9s\n", "auto (ms)", "saving");
    for (const std::size_t n : kSizes) {
      const auto problem = make_problem(n);
      const std::string tag = std::string("Hetero-High/") + problem_name +
                              "/" + lddp::bench::mode_label(mode);

      const auto baseline =
          solve(problem, tile_cfg("Hetero-High", mode, 0, pool, buffers))
              .stats;
      json->record(tag + "/untiled", n, baseline);
      std::printf("%8zu %14.3f", n, baseline.sim_seconds * 1e3);

      double best = baseline.sim_seconds;
      for (const long long t : kTiles) {
        const auto stats =
            solve(problem, tile_cfg("Hetero-High", mode, t, pool, buffers))
                .stats;
        json->record(tag + "/tile" + std::to_string(t), n, stats);
        std::printf(" %12.3f", stats.sim_seconds * 1e3);
        best = std::min(best, stats.sim_seconds);
      }

      const auto autos =
          solve(problem, tile_cfg("Hetero-High", mode, -1, pool, buffers))
              .stats;
      json->record(tag + "/auto", n, autos);
      best = std::min(best, autos.sim_seconds);
      const double saving =
          100.0 * (baseline.sim_seconds - best) / baseline.sim_seconds;
      std::printf(" %12.3f %8.1f%%\n", autos.sim_seconds * 1e3, saving);
    }
  }
}

void BM_TileHetero(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto tile = static_cast<long long>(state.range(1));
  problems::LevenshteinProblem p(problems::random_sequence(n, 301),
                                 problems::random_sequence(n, 302));
  const auto cfg =
      tile_cfg("Hetero-High", Mode::kHeterogeneous, tile, nullptr, nullptr);
  lddp::bench::run_once(state, p, cfg);
  state.SetLabel("tile=" + std::to_string(tile));
}
BENCHMARK(BM_TileHetero)
    ->ArgsProduct({{1024, 2048}, {0, 32, 64, 128}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  cpu::ThreadPool pool(std::max(2u, std::thread::hardware_concurrency()));
  sim::BufferPool buffers;
  lddp::bench::JsonWriter json("ablation_tile_hetero");
  series(
      "Levenshtein",
      [](std::size_t n) {
        return problems::LevenshteinProblem(problems::random_sequence(n, 301),
                                            problems::random_sequence(n, 302));
      },
      &pool, &buffers, &json);
  series(
      "FloydSteinberg",
      [](std::size_t n) {
        return problems::FloydSteinbergProblem(
            problems::plasma_image(n, n, /*seed=*/n));
      },
      &pool, &buffers, &json);
  json.save();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
