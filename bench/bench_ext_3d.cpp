// Extension bench: the k = 3 instantiation of the LDDP-Plus class (the
// paper defines the class for k >= 2 and implements k = 2). Three-way LCS
// over anti-diagonal plane wavefronts — CPU vs GPU vs the heterogeneous
// slab split.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/framework3.h"
#include "problems/alignment.h"
#include "problems/lcs3.h"
#include "util/csv.h"

namespace {

using namespace lddp;

problems::Lcs3Problem make_problem(std::size_t n) {
  return problems::Lcs3Problem(problems::random_sequence(n, 401),
                               problems::random_sequence(n, 402),
                               problems::random_sequence(n, 403));
}

double run3(const problems::Lcs3Problem& p, Mode mode) {
  RunConfig cfg;
  cfg.mode = mode;
  SolveStats stats;
  solve3(p, cfg, &stats);
  return stats.sim_seconds;
}

void BM_Lcs3(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Mode mode = static_cast<Mode>(state.range(1));
  const auto p = make_problem(n);
  double t = 0;
  for (auto _ : state) {
    t = run3(p, mode);
    state.SetIterationTime(t);
  }
  state.counters["sim_ms"] = t * 1e3;
  state.SetLabel(lddp::bench::mode_label(mode));
}
BENCHMARK(BM_Lcs3)
    ->ArgsProduct({{64, 128, 192},
                   {static_cast<long>(Mode::kCpuParallel),
                    static_cast<long>(Mode::kGpu),
                    static_cast<long>(Mode::kHeterogeneous)}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_series() {
  std::printf("\n=== Extension: 3-way LCS (k = 3 LDDP-Plus), Hetero-High "
              "(sim ms) ===\n");
  std::printf("%8s %12s %12s %12s\n", "size^3", "CPU", "GPU", "Framework");
  CsvWriter csv("ext_3d.csv");
  csv.header({"size", "cpu_ms", "gpu_ms", "framework_ms"});
  for (std::size_t n : {48u, 96u, 144u, 192u}) {
    const auto p = make_problem(n);
    const double cpu = run3(p, Mode::kCpuParallel) * 1e3;
    const double gpu = run3(p, Mode::kGpu) * 1e3;
    const double frm = run3(p, Mode::kHeterogeneous) * 1e3;
    std::printf("%8zu %12.3f %12.3f %12.3f\n", n, cpu, gpu, frm);
    csv.row(n, cpu, gpu, frm);
  }
  std::printf("expected: planes grow quadratically, so the GPU overtakes "
              "the CPU sooner than in 2-D; the slab split tracks the best "
              "unit\n");
  csv.save();
}

}  // namespace

int main(int argc, char** argv) {
  print_series();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
