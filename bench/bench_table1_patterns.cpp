// Reproduces Table I (all 15 contributing sets -> patterns) and the
// Figure 2 wavefront numberings, times classification itself, and — wired
// through the shared bench harness — solves one small heterogeneous
// instance per contributing set so BENCH_table1_patterns.json records a
// simulated time for every row of the table.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/pattern.h"
#include "problems/synthetic.h"
#include "tables/layout.h"

namespace {

using namespace lddp;

void print_table1() {
  std::printf("\n=== Table I: contributing sets and corresponding pattern "
              "===\n");
  std::printf("%-6s %-6s %-6s %-6s  %s\n", "W", "NW", "N", "NE", "Pattern");
  for (int idx = 0; idx < kNumContributingSets; ++idx) {
    const ContributingSet cs = contributing_set_by_index(idx);
    std::printf("%-6s %-6s %-6s %-6s  %s\n", cs.has_w() ? "Y" : "N",
                cs.has_nw() ? "Y" : "N", cs.has_n() ? "Y" : "N",
                cs.has_ne() ? "Y" : "N", to_string(classify(cs)).c_str());
  }
}

template <typename Layout>
void print_numbering(const char* title) {
  const Layout lay(6, 6);
  std::printf("\n--- Figure 2: %s (front of each cell, 6x6) ---\n", title);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j)
      std::printf("%3zu", lay.front_of(i, j) + 1);
    std::printf("\n");
  }
}

/// One heterogeneous solve per contributing set on a small table: the
/// simulated time of each Table-I row on the Hetero-High testbed.
void solve_all_sets() {
  constexpr std::size_t kSide = 256;
  lddp::bench::JsonWriter json("table1_patterns");
  std::printf("\n=== Table I rows, solved (256x256, Hetero-High, Framework) "
              "===\n");
  std::printf("%-14s %-12s %12s %12s\n", "set", "pattern", "sim_ms",
              "wall_ms");
  for (int idx = 0; idx < kNumContributingSets; ++idx) {
    const ContributingSet cs = contributing_set_by_index(idx);
    auto p = problems::make_function_problem(
        kSide, kSide, cs, std::int64_t{0},
        [](std::size_t i, std::size_t j, const Neighbors<std::int64_t>& nb) {
          return nb.w ^ (nb.nw + 1) ^ (nb.n << 1) ^ nb.ne ^
                 static_cast<std::int64_t>(i * 31 + j);
        });
    const auto cfg =
        lddp::bench::config_for("Hetero-High", Mode::kHeterogeneous);
    const auto stats = solve(p, cfg).stats;
    const std::string label =
        cs.to_string() + "->" + to_string(classify(cs));
    json.record(label, kSide, stats);
    std::printf("%-14s %-12s %12.3f %12.3f\n", cs.to_string().c_str(),
                to_string(classify(cs)).c_str(), stats.sim_seconds * 1e3,
                stats.real_seconds * 1e3);
  }
  json.save();
}

void BM_ClassifyAll15(benchmark::State& state) {
  for (auto _ : state) {
    for (int idx = 0; idx < kNumContributingSets; ++idx) {
      benchmark::DoNotOptimize(classify(contributing_set_by_index(idx)));
    }
  }
}
BENCHMARK(BM_ClassifyAll15);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  print_numbering<AntiDiagonalLayout>("Anti-Diagonal");
  print_numbering<RowMajorLayout>("Horizontal");
  print_numbering<ShellLayout>("Inverted-L");
  print_numbering<KnightMoveLayout>("Knight-Move");
  print_numbering<ColumnMajorLayout>("Vertical");
  print_numbering<MirrorShellLayout>("mInverted-L");
  solve_all_sets();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
