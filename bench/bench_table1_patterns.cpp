// Reproduces Table I (all 15 contributing sets -> patterns) and the
// Figure 2 wavefront numberings, and times classification itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/pattern.h"
#include "tables/layout.h"

namespace {

using namespace lddp;

void print_table1() {
  std::printf("\n=== Table I: contributing sets and corresponding pattern "
              "===\n");
  std::printf("%-6s %-6s %-6s %-6s  %s\n", "W", "NW", "N", "NE", "Pattern");
  for (int idx = 0; idx < kNumContributingSets; ++idx) {
    const ContributingSet cs = contributing_set_by_index(idx);
    std::printf("%-6s %-6s %-6s %-6s  %s\n", cs.has_w() ? "Y" : "N",
                cs.has_nw() ? "Y" : "N", cs.has_n() ? "Y" : "N",
                cs.has_ne() ? "Y" : "N", to_string(classify(cs)).c_str());
  }
}

template <typename Layout>
void print_numbering(const char* title) {
  const Layout lay(6, 6);
  std::printf("\n--- Figure 2: %s (front of each cell, 6x6) ---\n", title);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j)
      std::printf("%3zu", lay.front_of(i, j) + 1);
    std::printf("\n");
  }
}

void BM_ClassifyAll15(benchmark::State& state) {
  for (auto _ : state) {
    for (int idx = 0; idx < kNumContributingSets; ++idx) {
      benchmark::DoNotOptimize(classify(contributing_set_by_index(idx)));
    }
  }
}
BENCHMARK(BM_ClassifyAll15);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  print_numbering<AntiDiagonalLayout>("Anti-Diagonal");
  print_numbering<RowMajorLayout>("Horizontal");
  print_numbering<ShellLayout>("Inverted-L");
  print_numbering<KnightMoveLayout>("Knight-Move");
  print_numbering<ColumnMajorLayout>("Vertical");
  print_numbering<MirrorShellLayout>("mInverted-L");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
