// Figure 10: Levenshtein distance (anti-diagonal pattern) — CPU vs GPU vs
// Framework across table sizes on both platforms.
//
// Expected shape: the low-work regions at both ends of the anti-diagonal
// schedule let the framework beat the pure GPU even at small sizes, with
// the gap growing as the table grows (Section VI-A).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "problems/alignment.h"
#include "problems/levenshtein.h"

namespace {

using namespace lddp;

problems::LevenshteinProblem make_problem(std::size_t n) {
  return problems::LevenshteinProblem(problems::random_sequence(n, 101),
                                      problems::random_sequence(n, 102));
}

void BM_Fig10(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const char* platform = state.range(1) ? "Hetero-Low" : "Hetero-High";
  const Mode mode = static_cast<Mode>(state.range(2));
  auto cfg = lddp::bench::config_for(platform, mode);
  lddp::bench::run_once(state, make_problem(n), cfg);
  state.SetLabel(std::string(platform) + "/" + lddp::bench::mode_label(mode));
}

BENCHMARK(BM_Fig10)
    ->ArgsProduct({{1024, 2048, 4096, 8192},
                   {0, 1},
                   {static_cast<long>(Mode::kCpuParallel),
                    static_cast<long>(Mode::kGpu),
                    static_cast<long>(Mode::kHeterogeneous)}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  lddp::bench::case_study_series("Fig 10: Levenshtein distance",
                                 "fig10_levenshtein.csv",
                                 {512, 1024, 2048, 4096, 8192}, make_problem);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
