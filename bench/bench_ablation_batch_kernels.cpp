// Ablation: batch-front (SIMD) cell kernels versus the scalar per-cell
// path. This bench measures *real wall-clock* — the batch kernels change
// how fast the host fills tables, not the simulated platform schedule
// (the cost model's vector-throughput term shifts simulated CPU speed,
// but that is a modelling knob, not the subject here).
//
// Two measurements, both gated (the process exits non-zero on failure so
// CI catches regressions):
//
//  1. Full-solve throughput: 4k x 4k Levenshtein and LCS through the
//     simulated-GPU path (anti-diagonal fronts — the SIMD sweet spot),
//     batch on vs off, best of 5. Gate: >= 2x cells/second.
//  2. Front-length sweep: run_front_range over one packed anti-diagonal
//     front at L in {16, 64, 256, ..., 4096}. Gate: at L >= 256 the batch
//     path is never slower than 1.10x the scalar path (below that the
//     kMinBatchRun heuristic and span setup make the comparison noise).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/front_runner.h"
#include "problems/lcs.h"
#include "problems/levenshtein.h"
#include "tables/layout.h"
#include "util/rng.h"

namespace {

using namespace lddp;
using Clock = std::chrono::steady_clock;

std::string random_dna(std::size_t n, std::uint64_t seed) {
  static constexpr char kAlpha[] = {'A', 'C', 'G', 'T'};
  std::string s(n, 'A');
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i)
    s[i] = kAlpha[rng.uniform_int(0, 3)];
  return s;
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

int failures = 0;

/// Best-of-5 full solves; returns wall-clock cells/second. A shared
/// BufferPool gives steady-state allocation behaviour (the batch engine's
/// serving regime) to both variants alike.
template <typename P>
double full_solve_cells_per_sec(const P& p, bool batch,
                                sim::BufferPool* buffers) {
  RunConfig cfg;
  cfg.mode = Mode::kGpu;  // anti-diagonal wavefronts, untiled
  cfg.tile = 0;
  cfg.batch_kernels = batch;
  cfg.buffer_pool = buffers;
  double best = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const SolveStats stats = solve(p, cfg).stats;
    if (stats.real_seconds <= 0.0) continue;
    best = std::max(
        best, static_cast<double>(stats.cells) / stats.real_seconds);
  }
  return best;
}

template <typename P>
void full_solve_ablation(const char* name, const P& p,
                         lddp::bench::JsonWriter& json) {
  const std::size_t n = p.rows() - 1;
  sim::BufferPool buffers;
  const double off = full_solve_cells_per_sec(p, false, &buffers);
  const double on = full_solve_cells_per_sec(p, true, &buffers);
  const double speedup = off > 0.0 ? on / off : 0.0;
  std::printf("%-12s %6zu | off %10.1f Mcell/s | on %10.1f Mcell/s | %.2fx\n",
              name, n, off / 1e6, on / 1e6, speedup);
  json.record_wall(std::string(name) + "/off", n,
                   1e3 * p.rows() * p.cols() / off, off);
  json.record_wall(std::string(name) + "/on", n,
                   1e3 * p.rows() * p.cols() / on, on);
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "GATE FAIL: %s full-solve batch speedup %.2fx < 2.0x\n",
                 name, speedup);
    ++failures;
  }
}

/// Times run_front_range over the longest anti-diagonal front of an
/// (L+1) x (L+1) Levenshtein table stored in wavefront-major device
/// order — the kernel inner loop with everything else stripped away.
/// Returns nanoseconds per cell (best of 3).
double front_ns_per_cell(const problems::LevenshteinProblem& p,
                         const AntiDiagonalLayout& layout, std::size_t d,
                         std::vector<std::int32_t>& storage, bool batch) {
  std::int32_t* const data = storage.data();
  const ContributingSet deps = p.deps();
  const auto bound = p.boundary();
  auto addr = [&](std::size_t i, std::size_t j) {
    return data + layout.flat(i, j);
  };
  const std::size_t fs = layout.front_size(d);
  const std::size_t reps = std::max<std::size_t>(1, (1u << 22) / fs);
  double best = 1e100;
  for (int trial = 0; trial < 3; ++trial) {
    const auto t0 = Clock::now();
    for (std::size_t r = 0; r < reps; ++r)
      detail::run_front_range(p, deps, bound, layout, d, 0, fs, addr, batch);
    best = std::min(best, seconds_since(t0));
  }
  return best * 1e9 / (static_cast<double>(reps) * fs);
}

void front_sweep(lddp::bench::JsonWriter& json) {
  std::printf("\n=== Front-length sweep: run_front_range, anti-diagonal "
              "Levenshtein (ns/cell, best of 3) ===\n");
  std::printf("%8s %12s %12s %9s\n", "L", "scalar", "batch", "ratio");
  for (const std::size_t L : {16u, 64u, 256u, 512u, 1024u, 2048u, 4096u}) {
    problems::LevenshteinProblem p(random_dna(L, 11), random_dna(L, 13));
    const AntiDiagonalLayout layout(p.rows(), p.cols());
    std::vector<std::int32_t> storage(layout.size(), 0);
    // Fill fronts 0..d-1 so the measured front reads settled neighbours.
    const std::size_t d = L;  // the longest diagonal: length L + 1
    const auto deps = p.deps();
    const auto bound = p.boundary();
    auto addr = [&](std::size_t i, std::size_t j) {
      return storage.data() + layout.flat(i, j);
    };
    for (std::size_t f = 0; f < d; ++f)
      detail::run_front_range(p, deps, bound, layout, f, 0,
                              layout.front_size(f), addr, false);
    const double scalar = front_ns_per_cell(p, layout, d, storage, false);
    const double batch = front_ns_per_cell(p, layout, d, storage, true);
    const double ratio = batch / scalar;
    std::printf("%8zu %12.3f %12.3f %8.2fx\n", L, scalar, batch,
                scalar / batch);
    json.record_wall("front_sweep/scalar", L, scalar);
    json.record_wall("front_sweep/batch", L, batch);
    if (L >= 256 && ratio > 1.10) {
      std::fprintf(stderr,
                   "GATE FAIL: L=%zu batch path %.2fx slower than scalar "
                   "(limit 1.10x)\n",
                   L, ratio);
      ++failures;
    }
  }
}

}  // namespace

int main() {
  lddp::bench::JsonWriter json("ablation_batch_kernels");

  std::printf("=== Full-solve wall-clock throughput (simulated-GPU mode, "
              "best of 5) ===\n");
  constexpr std::size_t kN = 4096;
  full_solve_ablation("levenshtein",
                      problems::LevenshteinProblem(random_dna(kN, 1),
                                                   random_dna(kN, 2)),
                      json);
  full_solve_ablation(
      "lcs", problems::LcsProblem(random_dna(kN, 3), random_dna(kN, 4)),
      json);

  front_sweep(json);
  json.save();

  if (failures > 0) {
    std::fprintf(stderr, "%d gate(s) failed\n", failures);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
