// Reproduces Table II: each pattern's CPU<->GPU data-transfer need, plus
// measured per-front transfer-op counts from instrumented runs that verify
// the table empirically.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "problems/synthetic.h"

namespace {

using namespace lddp;

void print_table2() {
  struct Row {
    const char* label;
    ContributingSet deps;
  };
  const Row rows[] = {
      {"Anti-Diagonal", ContributingSet{Dep::kW, Dep::kNW, Dep::kN}},
      {"Horizontal-1", ContributingSet{Dep::kNW, Dep::kN}},
      {"Horizontal-2", ContributingSet{Dep::kNW, Dep::kN, Dep::kNE}},
      {"Inverted-L", ContributingSet{Dep::kNW}},
      {"Knight-Move",
       ContributingSet{Dep::kW, Dep::kNW, Dep::kN, Dep::kNE}},
      {"Vertical ({W})", ContributingSet{Dep::kW}},
      {"Vertical ({W,NW})", ContributingSet{Dep::kW, Dep::kNW}},
      {"mInverted-L", ContributingSet{Dep::kNE}},
  };
  std::printf("\n=== Table II: pattern -> transfer need ===\n");
  std::printf("%-20s %-10s %s\n", "Pattern", "1/2-way", "contributing set");
  for (const Row& r : rows) {
    std::printf("%-20s %-10s {%s}\n", r.label,
                to_string(transfer_need(r.deps)).c_str(),
                r.deps.to_string().c_str());
  }
}

// Instrumented hetero runs: counts of copy-engine operations confirm the
// table (two-way patterns use mapped pinned memory => zero per-front ops
// but a TwoWay classification; one-way patterns show ~one op per front).
template <int Mask>
void BM_TransferOps(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ContributingSet deps(static_cast<std::uint8_t>(Mask));
  const auto p = problems::make_function_problem<std::int64_t>(
      n, n, deps, 0LL,
      [deps](std::size_t i, std::size_t j,
             const Neighbors<std::int64_t>& nb) {
        std::int64_t r = static_cast<std::int64_t>(i + 2 * j);
        if (deps.has_w()) r += nb.w;
        if (deps.has_nw()) r ^= nb.nw;
        if (deps.has_n()) r += nb.n >> 1;
        if (deps.has_ne()) r ^= nb.ne >> 2;
        return r;
      });
  auto cfg = lddp::bench::config_for("Hetero-High", Mode::kHeterogeneous);
  // Force a genuine split so the per-front transfer scheme is exercised
  // regardless of what the model-based defaults would pick at this size.
  cfg.hetero = HeteroParams{16, static_cast<long long>(n) / 4};
  const auto stats = lddp::bench::run_once(state, p, cfg);
  state.counters["h2d_ops"] = static_cast<double>(stats.h2d_copies);
  state.counters["d2h_ops"] = static_cast<double>(stats.d2h_copies);
  state.SetLabel(deps.to_string() + " -> " +
                 to_string(transfer_need(deps)));
}

constexpr int kW = 1, kNW = 2, kN = 4, kNE = 8;
BENCHMARK_TEMPLATE(BM_TransferOps, kW | kNW | kN)
    ->Arg(512)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->Name("TransferOps/AntiDiagonal");
BENCHMARK_TEMPLATE(BM_TransferOps, kNW | kN)
    ->Arg(512)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->Name("TransferOps/Horizontal1");
BENCHMARK_TEMPLATE(BM_TransferOps, kNW | kN | kNE)
    ->Arg(512)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->Name("TransferOps/Horizontal2");
BENCHMARK_TEMPLATE(BM_TransferOps, kNW)
    ->Arg(512)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->Name("TransferOps/InvertedL");
BENCHMARK_TEMPLATE(BM_TransferOps, kW | kNW | kN | kNE)
    ->Arg(512)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->Name("TransferOps/KnightMove");

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
