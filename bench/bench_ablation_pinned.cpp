// Ablation: pinned vs pageable pricing of small boundary transfers
// (Section IV-C2 motivates pinned memory for the small per-front copies).
//
// Measured directly against the simulated transfer engine across copy
// sizes, plus the end-to-end effect: an anti-diagonal run whose per-front
// boundary copies are priced pageable (by doubling the modeled pinned
// latency/bandwidth gap through a modified platform spec).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "problems/alignment.h"
#include "problems/levenshtein.h"
#include "util/csv.h"

namespace {

using namespace lddp;

void BM_TransferCost(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const bool pinned = state.range(1) != 0;
  const auto spec = sim::GpuSpec::tesla_k20();
  double total = 0;
  for (auto _ : state) {
    const double t = sim::transfer_seconds(
        spec, bytes,
        pinned ? sim::MemoryKind::kPinned : sim::MemoryKind::kPageable);
    total = t;
    state.SetIterationTime(t);
  }
  state.counters["us"] = total * 1e6;
  state.SetLabel(pinned ? "pinned" : "pageable");
}
BENCHMARK(BM_TransferCost)
    ->ArgsProduct({{4, 64, 1024, 16384, 1 << 20}, {0, 1}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

void print_series() {
  std::printf("\n=== Ablation: pinned vs pageable boundary transfers ===\n");
  const auto spec = sim::GpuSpec::tesla_k20();
  std::printf("%10s %14s %14s\n", "bytes", "pageable (us)", "pinned (us)");
  CsvWriter csv("ablation_pinned.csv");
  csv.header({"bytes", "pageable_us", "pinned_us"});
  for (std::size_t bytes : {4u, 64u, 1024u, 16384u, 1u << 20}) {
    const double pageable =
        sim::transfer_seconds(spec, bytes, sim::MemoryKind::kPageable) * 1e6;
    const double pinned =
        sim::transfer_seconds(spec, bytes, sim::MemoryKind::kPinned) * 1e6;
    std::printf("%10zu %14.3f %14.3f\n", bytes, pageable, pinned);
    csv.row(bytes, pageable, pinned);
  }
  csv.save();

  // End-to-end: make "pinned" as slow as pageable and rerun Levenshtein.
  problems::LevenshteinProblem p(problems::random_sequence(4096, 1),
                                 problems::random_sequence(4096, 2));
  RunConfig fast = lddp::bench::config_for("Hetero-High",
                                           Mode::kHeterogeneous);
  RunConfig slow = fast;
  slow.platform.gpu.pinned_latency_us = slow.platform.gpu.pageable_latency_us;
  slow.platform.gpu.pinned_bandwidth_gbs =
      slow.platform.gpu.pageable_bandwidth_gbs;
  const double t_fast = solve(p, fast).stats.sim_seconds * 1e3;
  const double t_slow = solve(p, slow).stats.sim_seconds * 1e3;
  std::printf("Levenshtein 4k hetero: pinned boundaries %.3f ms, pageable "
              "boundaries %.3f ms (%.1f%% slower)\n",
              t_fast, t_slow, 100.0 * (t_slow - t_fast) / t_fast);
}

}  // namespace

int main(int argc, char** argv) {
  print_series();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
