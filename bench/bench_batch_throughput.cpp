// Batched multi-solve throughput: N independent requests share one
// simulated platform through the BatchEngine instead of running
// back-to-back. Sweeps batch size x scheduler policy over a Table-I
// pattern mix (all 15 contributing sets, rotating sizes and rotating
// cpu/gpu/hetero modes so CPU-only solves overlap accelerator-heavy
// ones) and records solves/sec, makespan and p50/p99 latency against the
// serial one-at-a-time baseline in BENCH_batch_throughput.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/batch_engine.h"
#include "core/lane_kernels.h"
#include "core/pattern.h"
#include "problems/lcs.h"
#include "problems/levenshtein.h"
#include "problems/synthetic.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace {

using namespace lddp;

constexpr std::size_t kBatchSizes[] = {1, 2, 4, 8, 16, 32};
constexpr BatchSched kPolicies[] = {BatchSched::kFifo, BatchSched::kSjf,
                                    BatchSched::kWfq};

/// One request of the Table-I mix: contributing set idx % 15, a rotating
/// table side (so SJF has distinct estimates to order by) and a rotating
/// execution mode (so requests contend for different platform resources).
struct MixCase {
  ContributingSet deps;
  std::size_t side;
  Mode mode;
  double weight;
};

std::vector<MixCase> make_mix(std::size_t n) {
  // Half the requests are CPU-only, half accelerator-backed, with CPU
  // tables larger: a CPU solve costs roughly half the simulated time of a
  // GPU solve of the same side, so this keeps the per-resource totals —
  // the floor of any merged schedule — roughly even instead of letting
  // gpu.compute bind.
  constexpr Mode kModes[] = {Mode::kCpuParallel, Mode::kGpu,
                             Mode::kCpuParallel, Mode::kHeterogeneous};
  std::vector<MixCase> mix;
  mix.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const Mode mode = kModes[k % 4];
    const bool big = (k % 8) < 4;
    const std::size_t side = mode == Mode::kCpuParallel ? (big ? 384 : 320)
                                                        : (big ? 256 : 192);
    mix.push_back(MixCase{
        contributing_set_by_index(static_cast<int>(k % kNumContributingSets)),
        side, mode, 1.0 + static_cast<double>(k % 3)});
  }
  return mix;
}

auto make_problem(const MixCase& c) {
  const ContributingSet deps = c.deps;
  return problems::make_function_problem(
      c.side, c.side, deps, std::int64_t{0},
      [deps](std::size_t i, std::size_t j,
             const Neighbors<std::int64_t>& nb) {
        std::int64_t r = static_cast<std::int64_t>(i * 31 + j);
        if (deps.has_w()) r ^= nb.w;
        if (deps.has_nw()) r += nb.nw + 1;
        if (deps.has_n()) r ^= nb.n << 1;
        if (deps.has_ne()) r -= nb.ne;
        return r;
      });
}

BatchReport run_batch(std::size_t batch, BatchSched sched,
                      const std::vector<MixCase>& mix,
                      bool pack = true, long long lane_pack = -1,
                      bool lifecycle = false) {
  BatchConfig bc;
  bc.concurrency = std::min<std::size_t>(batch, 8);
  bc.queue_capacity = batch;
  bc.sched = sched;
  bc.pack_solves = pack;
  bc.lane_pack = lane_pack;
  if (lifecycle) {
    // Arm every lifecycle mechanism without ever letting one fire: a
    // generous simulated deadline installs the Timeline control hook on
    // every op, a retry budget sizes the attempt loop, and a vanishingly
    // rare chaos rate (a draw below 1e-300 needs the 53-bit hash to come
    // up all-zero) keeps the thread-local fault scope open and every site
    // probe paying its full hash-and-compare cost.
    bc.deadline_ms = 1e9;
    bc.max_retries = 4;
    bc.chaos = fault::FaultPlan::uniform(/*seed=*/1, /*rate=*/1e-300);
  }
  BatchEngine engine(bc);
  for (const MixCase& c : mix) {
    RunConfig rc;
    rc.mode = c.mode;
    auto f = engine.submit(make_problem(c), rc, c.weight);
    LDDP_CHECK(f.has_value());
  }
  return engine.wait();
}

/// Small-solve mix: accelerator-mode requests whose wavefronts are
/// dominated by per-launch submission costs (driver overhead, graph-node
/// issue, pipeline-fill floors) — the regime cross-solve packing targets.
std::vector<MixCase> make_small_mix(std::size_t n) {
  constexpr Mode kModes[] = {Mode::kGpu, Mode::kGpu, Mode::kHeterogeneous,
                             Mode::kGpu};
  std::vector<MixCase> mix;
  mix.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    mix.push_back(MixCase{
        contributing_set_by_index(static_cast<int>(k % kNumContributingSets)),
        64 + 32 * (k % 3), kModes[k % 4], 1.0});
  }
  return mix;
}

/// Packed-vs-unpacked ablation on the small-solve mix. Returns false if
/// packing ever loses to the unpacked merge — the CI perf-smoke gate
/// (rider pricing is clamped at solo cost, so a loss is a scheduler bug,
/// not a tuning matter).
bool pack_sweep(lddp::bench::JsonWriter& json) {
  std::printf("\n=== Cross-solve packing: small-solve mix, fifo, "
              "concurrency=min(batch,8) ===\n");
  std::printf("%6s %12s %12s %8s %7s %10s\n", "batch", "packed_ms",
              "unpacked_ms", "speedup", "packs", "saved_ms");
  bool never_loses = true;
  bool target_ok = true;
  for (std::size_t batch : kBatchSizes) {
    const std::vector<MixCase> mix = make_small_mix(batch);
    const BatchReport packed =
        run_batch(batch, BatchSched::kFifo, mix, /*pack=*/true);
    const BatchReport unpacked =
        run_batch(batch, BatchSched::kFifo, mix, /*pack=*/false);
    // solves/sec ratio == unpacked/packed makespan (same request count).
    const double speedup =
        packed.sim_makespan > 0.0
            ? unpacked.sim_makespan / packed.sim_makespan
            : 1.0;
    json.record_sim("pack/packed", batch, packed.sim_makespan * 1e3);
    json.record_sim("pack/unpacked", batch, unpacked.sim_makespan * 1e3);
    json.record_sim("pack/speedup", batch, speedup);
    std::printf("%6zu %12.3f %12.3f %7.2fx %7zu %10.3f\n", batch,
                packed.sim_makespan * 1e3, unpacked.sim_makespan * 1e3,
                speedup, packed.packs, packed.pack_saved_seconds * 1e3);
    if (speedup < 1.0 - 1e-9) never_loses = false;
    if (batch >= 8 && speedup < 1.3) target_ok = false;
  }
  std::printf("pack gate (packed never slower than unpacked): %s\n",
              never_loses ? "PASS" : "FAIL");
  std::printf("pack target (>=1.3x solves/sec at batch >= 8): %s\n",
              target_ok ? "PASS" : "FAIL");
  return never_loses;
}

std::string rand_str(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::string s(n, 'a');
  for (auto& c : s) c = static_cast<char>('a' + rng.uniform_int(0, 3));
  return s;
}

/// Submits `probs` as one batch of serial-CPU requests and returns the
/// best-of-3 wall time of submit+drain. `lane_pack` -1 enables inter-solve
/// lane packing at the ISA-preferred width, 0 is the per-solve PR-5
/// batch-kernel baseline.
template <typename P>
double lane_batch_wall(const std::vector<P>& probs, long long lane_pack) {
  return lddp::bench::min_wall_seconds(
      [&] {
        BatchConfig bc;
        bc.concurrency = probs.size();
        bc.queue_capacity = probs.size();
        bc.lane_pack = lane_pack;
        BatchEngine engine(bc);
        std::vector<std::future<SolveResult<P>>> futs;
        futs.reserve(probs.size());
        for (const P& p : probs) {
          RunConfig rc;
          rc.mode = Mode::kCpuSerial;
          auto f = engine.submit(P(p), rc);
          LDDP_CHECK(f.has_value());
          futs.push_back(std::move(*f));
        }
        engine.wait();
        for (auto& f : futs) benchmark::DoNotOptimize(f.get().table.data());
      },
      /*reps=*/3, /*warmup=*/1);
}

/// Lane-packed tables must match the solo serial solver bit for bit.
template <typename P>
bool lane_identity(const std::vector<P>& probs) {
  BatchConfig bc;
  bc.concurrency = probs.size();
  bc.queue_capacity = probs.size();
  bc.lane_pack = -1;
  BatchEngine engine(bc);
  std::vector<std::future<SolveResult<P>>> futs;
  for (const P& p : probs) {
    RunConfig rc;
    rc.mode = Mode::kCpuSerial;
    futs.push_back(std::move(*engine.submit(P(p), rc)));
  }
  engine.wait();
  bool ok = true;
  for (std::size_t k = 0; k < probs.size(); ++k) {
    const auto got = futs[k].get();
    const auto want = solve_cpu_serial(probs[k], nullptr, nullptr, true);
    ok = ok && got.table == want;
  }
  return ok;
}

template <typename P>
bool lane_gate_case(const char* kind, std::size_t side, std::size_t batch,
                    lddp::bench::JsonWriter& json) {
  std::vector<P> probs;
  probs.reserve(batch);
  for (std::size_t k = 0; k < batch; ++k)
    probs.emplace_back(rand_str(side, 2 * k + 1), rand_str(side, 2 * k + 2));
  // Interleave the arms rep by rep and keep each arm's minimum: shared
  // hosts throw multi-rep noise bursts, and back-to-back arms give both
  // sides the same odds of landing in a quiet window — measuring one arm's
  // reps consecutively lets a single burst poison that arm's whole min.
  double on = lane_batch_wall(probs, /*lane_pack=*/-1);
  double off = lane_batch_wall(probs, /*lane_pack=*/0);
  for (int rep = 0; rep < 4; ++rep) {
    on = std::min(on, lane_batch_wall(probs, /*lane_pack=*/-1));
    off = std::min(off, lane_batch_wall(probs, /*lane_pack=*/0));
  }
  const double speedup = on > 0.0 ? off / on : 1.0;
  const double cells = static_cast<double>(batch) *
                       static_cast<double>(side + 1) *
                       static_cast<double>(side + 1);
  const std::string tag =
      std::string("lane/") + kind + "/" + std::to_string(side);
  json.record_wall(tag + "/packed", batch, on * 1e3, cells / on);
  json.record_wall(tag + "/per-solve", batch, off * 1e3, cells / off);
  std::printf("%-5s %6zu %6zu %12.3f %12.3f %7.2fx %13.0f\n", kind, side,
              batch, on * 1e3, off * 1e3, speedup, cells / on);
  return speedup >= 2.0;
}

/// Lane-packed vs per-solve ablation: same-class small serial solves —
/// the regime inter-solve lane packing targets. Gates the CI perf smoke:
/// >= 2x solves/sec on cohort-friendly batches, never worse on the mixed
/// Table-I batch, and packed tables bit-identical to solo solves.
bool lane_sweep(lddp::bench::JsonWriter& json) {
  std::printf("\n=== Inter-solve lane packing: same-class batches, serial "
              "CPU mode, wall best-of-3 [isa %s, width %zu] ===\n",
              lanes::active_isa(), lanes::preferred_lane_width());
  std::printf("%-5s %6s %6s %12s %12s %8s %13s\n", "kind", "side", "batch",
              "packed_ms", "per_solve_ms", "speedup", "cells/s");
  bool target_ok = true;
  for (std::size_t side : {std::size_t{256}, std::size_t{512},
                           std::size_t{1024}}) {
    for (std::size_t batch : {std::size_t{8}, std::size_t{16}}) {
      target_ok &= lane_gate_case<problems::LevenshteinProblem>("lev", side,
                                                                batch, json);
      target_ok &= lane_gate_case<problems::LcsProblem>("lcs", side, batch,
                                                        json);
    }
  }

  // Mixed batch (no large same-class cohorts): lane packing must never
  // lose. 10% relative + 2ms absolute slack absorbs host timer noise.
  bool mixed_ok = true;
  for (std::size_t batch : {std::size_t{8}, std::size_t{16}}) {
    const std::vector<MixCase> mix = make_mix(batch);
    const double on = lddp::bench::min_wall_seconds(
        [&] { run_batch(batch, BatchSched::kFifo, mix, true, -1); }, 3, 1);
    const double off = lddp::bench::min_wall_seconds(
        [&] { run_batch(batch, BatchSched::kFifo, mix, true, 0); }, 3, 1);
    json.record_wall("lane/mixed/packed", batch, on * 1e3);
    json.record_wall("lane/mixed/per-solve", batch, off * 1e3);
    std::printf("mixed batch=%2zu: lane on %.3f ms, off %.3f ms\n", batch,
                on * 1e3, off * 1e3);
    if (on > off * 1.10 + 2e-3) mixed_ok = false;
  }

  // Bit-identity on a ragged cohort (same shape bucket, distinct sides).
  std::vector<problems::LevenshteinProblem> ragged;
  for (std::size_t k = 0; k < 8; ++k)
    ragged.emplace_back(rand_str(257 + 7 * k, 90 + k),
                        rand_str(300 - 5 * k, 190 + k));
  const bool identity_ok = lane_identity(ragged);

  std::printf("lane target (>=2x solves/sec, same-class batch >= 8): %s\n",
              target_ok ? "PASS" : "FAIL");
  std::printf("lane gate (never slower on mixed batches): %s\n",
              mixed_ok ? "PASS" : "FAIL");
  std::printf("lane gate (bit-identical to solo solves): %s\n",
              identity_ok ? "PASS" : "FAIL");
  return target_ok && mixed_ok && identity_ok;
}

/// Fault-free lifecycle overhead: the same Table-I mix with deadlines,
/// retry budgets and an armed-but-silent chaos plan versus the bare
/// engine. Every recorded op takes the cancellation/deadline branch and
/// every site probe hashes a fault decision, but nothing ever fires — the
/// wall-time delta is the pure bookkeeping cost of the robustness layer.
/// Gate: < 2% regression (plus 2ms absolute slack for host timer noise).
bool lifecycle_sweep(lddp::bench::JsonWriter& json) {
  std::printf("\n=== Request-lifecycle overhead: fault-free, deadline+retry"
              "+chaos armed, wall best-of-5 ===\n");
  std::printf("%6s %12s %12s %10s\n", "batch", "bare_ms", "lifecycle_ms",
              "overhead");
  bool gate_ok = true;
  for (std::size_t batch : {std::size_t{8}, std::size_t{16}}) {
    const std::vector<MixCase> mix = make_mix(batch);
    // Interleave the arms rep by rep (same rationale as the lane gate:
    // a noise burst should hit both arms with equal odds).
    double off = lddp::bench::min_wall_seconds(
        [&] { run_batch(batch, BatchSched::kFifo, mix); }, 1, 1);
    double on = lddp::bench::min_wall_seconds(
        [&] {
          run_batch(batch, BatchSched::kFifo, mix, true, -1,
                    /*lifecycle=*/true);
        },
        1, 1);
    for (int rep = 0; rep < 4; ++rep) {
      off = std::min(off, lddp::bench::min_wall_seconds(
                              [&] {
                                run_batch(batch, BatchSched::kFifo, mix);
                              },
                              1, 0));
      on = std::min(on, lddp::bench::min_wall_seconds(
                            [&] {
                              run_batch(batch, BatchSched::kFifo, mix, true,
                                        -1, /*lifecycle=*/true);
                            },
                            1, 0));
    }
    const double overhead = off > 0.0 ? on / off - 1.0 : 0.0;
    json.record_wall("lifecycle/bare", batch, off * 1e3);
    json.record_wall("lifecycle/armed", batch, on * 1e3);
    std::printf("%6zu %12.3f %12.3f %9.2f%%\n", batch, off * 1e3, on * 1e3,
                overhead * 100.0);
    if (on > off * 1.02 + 2e-3) gate_ok = false;
  }
  std::printf("lifecycle gate (< 2%% fault-free overhead): %s\n",
              gate_ok ? "PASS" : "FAIL");
  return gate_ok;
}

bool sweep() {
  lddp::bench::JsonWriter json("batch_throughput");
  std::printf("\n=== Batch throughput: Table-I mix, Hetero-High, "
              "concurrency=min(batch,8) ===\n");
  std::printf("%6s %-5s %12s %12s %8s %10s %10s %10s\n", "batch", "sched",
              "makespan_ms", "serial_ms", "speedup", "solves/s", "p50_ms",
              "p99_ms");
  bool throughput_ok = true;
  for (std::size_t batch : kBatchSizes) {
    for (BatchSched sched : kPolicies) {
      const auto wall0 = std::chrono::steady_clock::now();
      const BatchReport rep = run_batch(batch, sched, make_mix(batch));
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - wall0)
              .count();
      const std::string tag = to_string(sched);
      json.record(tag + "/makespan", batch, rep.sim_makespan * 1e3,
                  wall_ms);
      json.record_sim(tag + "/p50", batch, rep.p50_latency * 1e3);
      json.record_sim(tag + "/p99", batch, rep.p99_latency * 1e3);
      if (sched == BatchSched::kFifo)
        json.record_sim("serial", batch, rep.serial_sim_seconds * 1e3);
      std::printf("%6zu %-5s %12.3f %12.3f %7.2fx %10.1f %10.3f %10.3f\n",
                  batch, tag.c_str(), rep.sim_makespan * 1e3,
                  rep.serial_sim_seconds * 1e3, rep.speedup,
                  rep.solves_per_sec, rep.p50_latency * 1e3,
                  rep.p99_latency * 1e3);
      if (batch >= 8 && rep.speedup < 1.5) throughput_ok = false;
    }
  }
  const bool pack_ok = pack_sweep(json);
  const bool lane_ok = lane_sweep(json);
  const bool lifecycle_ok = lifecycle_sweep(json);
  json.save();
  std::printf("throughput gate (>=1.5x solves/sec at batch >= 8): %s\n",
              throughput_ok ? "PASS" : "FAIL");
  return pack_ok && lane_ok && lifecycle_ok;
}

void BM_BatchMerge8(benchmark::State& state) {
  for (auto _ : state) {
    const BatchReport rep =
        run_batch(8, BatchSched::kFifo, make_mix(8));
    benchmark::DoNotOptimize(rep.sim_makespan);
    state.SetIterationTime(rep.sim_makespan);
  }
}
BENCHMARK(BM_BatchMerge8)->Iterations(1)->UseManualTime();

}  // namespace

int main(int argc, char** argv) {
  lddp::bench::stabilize_allocator();
  const bool pack_ok = sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return pack_ok ? 0 : 1;
}
