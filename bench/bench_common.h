// Shared harness for the figure/table reproduction benches.
//
// Headline metric: *simulated* platform time (deterministic, reproduces
// the paper's Hetero-High / Hetero-Low testbeds); reported to
// google-benchmark as manual time so its output reads in simulated
// seconds. Real host wall-clock is attached as a counter. Each benchmark
// runs exactly one iteration — the simulation is deterministic, repetition
// adds nothing.
#pragma once

#include <benchmark/benchmark.h>

#include <climits>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "core/framework.h"
#include "core/tuner.h"
#include "util/csv.h"
#include "util/stopwatch.h"

#ifndef LDDP_GIT_SHA
#define LDDP_GIT_SHA "unknown"
#endif
#ifndef LDDP_CXX_FLAGS
#define LDDP_CXX_FLAGS "unknown"
#endif

namespace lddp::bench {

/// Pins the glibc allocator for wall-clock benches. Without this, each
/// rep's multi-megabyte DP tables are handed back to the kernel on free
/// (heap trim, or munmap of mmap'd chunks) and soft-faulted back in on
/// the next rep — ~1.5 us per 4 KiB page, which adds a constant
/// ~13 ms to BOTH arms of an 8x4 MB ablation and flattens every real
/// speedup toward 1x. Raising the trim and mmap thresholds keeps freed
/// pages resident in the arena, so warmed reps measure compute rather
/// than the VM subsystem. No-op on non-glibc platforms.
inline void stabilize_allocator() {
#if defined(__GLIBC__)
  mallopt(M_TRIM_THRESHOLD, INT_MAX);
  mallopt(M_MMAP_THRESHOLD, 64 * 1024 * 1024);
#endif
}

/// Machine-readable results sink: collects one record per measured
/// configuration and writes `BENCH_<name>.json` on save() — a flat array
/// downstream tooling (plots, regression gates) can consume without
/// parsing google-benchmark console output. Every file carries a
/// `build` stanza (compiler, flags, git SHA, batch-kernel default) so
/// wall-clock numbers from different toolchains are never compared
/// blindly.
class JsonWriter {
 public:
  explicit JsonWriter(std::string name) : name_(std::move(name)) {}

  /// Minimal JSON string escaping for compiler/flag strings.
  static std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  /// `label` identifies the configuration (platform/mode/variant); `size`
  /// is the table side; times are in milliseconds of simulated platform
  /// time and real host wall-clock respectively.
  void record(const std::string& label, std::size_t size,
              double simulated_ms, double wall_ms) {
    rows_.push_back(Row{label, size, simulated_ms, wall_ms});
  }

  void record(const std::string& label, std::size_t size,
              const SolveStats& stats) {
    record(label, size, stats.sim_seconds * 1e3, stats.real_seconds * 1e3);
  }

  /// Wall-clock-only record for benches with no simulated timeline (e.g.
  /// host-side throughput ablations). Emits no `simulated_ms` field —
  /// previously such rows carried a misleading `"simulated_ms": 0.000000`.
  /// `cells_per_s` > 0 additionally records achieved cell throughput.
  void record_wall(const std::string& label, std::size_t size, double wall_ms,
                   double cells_per_s = 0.0) {
    Row r{label, size, 0.0, wall_ms};
    r.has_sim = false;
    r.cells_per_s = cells_per_s;
    rows_.push_back(r);
  }

  /// Simulated-time-only record for benches that never measure host
  /// wall-clock per row (e.g. merged batch schedules). Emits no `wall_ms`
  /// field — previously such rows carried a bogus `"wall_ms": 0.000000`
  /// that downstream tooling could mistake for a measurement.
  void record_sim(const std::string& label, std::size_t size,
                  double simulated_ms) {
    Row r{label, size, simulated_ms, 0.0};
    r.has_wall = false;
    rows_.push_back(r);
  }

  /// Writes BENCH_<name>.json in the current working directory.
  void save() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", name_.c_str());
    // Hardware context rides along with the toolchain stanza: wall-clock
    // rows (and especially executor-schedule ablations) are meaningless
    // without the core count and substrate they ran on.
    std::fprintf(f,
                 "  \"build\": {\"compiler\": \"%s\", \"flags\": \"%s\", "
                 "\"git_sha\": \"%s\", \"batch_kernels_default\": %s, "
                 "\"hardware_concurrency\": %u, \"schedule\": \"%s\", "
                 "\"executor_workers\": %zu},\n",
                 json_escape(__VERSION__).c_str(),
                 json_escape(LDDP_CXX_FLAGS).c_str(), LDDP_GIT_SHA,
                 RunConfig{}.batch_kernels ? "true" : "false",
                 std::thread::hardware_concurrency(),
                 cpu::to_string(cpu::resolve_schedule(RunConfig{}.schedule))
                     .c_str(),
                 std::size_t{1} + cpu::shared_executor_workers());
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f, "    {\"name\": \"%s\", \"size\": %zu",
                   r.label.c_str(), r.size);
      if (r.has_sim)
        std::fprintf(f, ", \"simulated_ms\": %.6f", r.simulated_ms);
      if (r.has_wall) std::fprintf(f, ", \"wall_ms\": %.6f", r.wall_ms);
      if (r.cells_per_s > 0.0)
        std::fprintf(f, ", \"cells_per_s\": %.0f", r.cells_per_s);
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu records)\n", path.c_str(), rows_.size());
  }

 private:
  struct Row {
    std::string label;
    std::size_t size;
    double simulated_ms;
    double wall_ms;
    double cells_per_s = 0.0;
    bool has_sim = true;
    bool has_wall = true;
  };
  std::string name_;
  std::vector<Row> rows_;
};

/// Best-of-N wall-clock measurement: runs `fn` `warmup` times untimed
/// (caches, allocators, thread pools), then `reps` timed repetitions and
/// returns the minimum in seconds — the standard estimator for host
/// wall-clock, which is noisy upward only.
template <typename Fn>
double min_wall_seconds(Fn&& fn, int reps = 3, int warmup = 1) {
  for (int i = 0; i < warmup; ++i) fn();
  double best = -1.0;
  for (int i = 0; i < reps; ++i) {
    Stopwatch sw;
    fn();
    const double s = sw.seconds();
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

/// Solves once and feeds the simulated time to google-benchmark.
template <typename P>
SolveStats run_once(benchmark::State& state, const P& problem,
                    const RunConfig& cfg) {
  SolveStats stats;
  for (auto _ : state) {
    auto result = solve(problem, cfg);
    benchmark::DoNotOptimize(result.table.data());
    stats = result.stats;
    state.SetIterationTime(stats.sim_seconds);
  }
  state.counters["sim_ms"] = stats.sim_seconds * 1e3;
  state.counters["real_ms"] = stats.real_seconds * 1e3;
  state.counters["cpu_busy_ms"] = stats.cpu_busy_seconds * 1e3;
  state.counters["gpu_busy_ms"] = stats.gpu_busy_seconds * 1e3;
  state.counters["h2d_KB"] = static_cast<double>(stats.h2d_bytes) / 1024.0;
  state.counters["d2h_KB"] = static_cast<double>(stats.d2h_bytes) / 1024.0;
  return stats;
}

inline RunConfig config_for(const std::string& platform_name, Mode mode) {
  RunConfig cfg;
  cfg.platform = platform_name == "Hetero-Low"
                     ? sim::PlatformSpec::hetero_low()
                     : sim::PlatformSpec::hetero_high();
  cfg.mode = mode;
  return cfg;
}

/// The three implementations every case-study figure compares.
inline const char* mode_label(Mode m) {
  switch (m) {
    case Mode::kCpuParallel:
      return "CPU";
    case Mode::kGpu:
      return "GPU";
    case Mode::kHeterogeneous:
      return "Framework";
    default:
      return "?";
  }
}

/// Prints (and CSV-dumps) a case-study figure: one row per table size, one
/// column per (platform, implementation) pair — the layout of the paper's
/// Figs 9, 10, 12 and 13.
template <typename Factory>
void case_study_series(const char* title, const char* csv_path,
                       const std::vector<std::size_t>& sizes,
                       Factory&& make_problem) {
  std::printf("\n=== %s (simulated ms) ===\n", title);
  std::printf("%8s | %10s %10s %10s | %10s %10s %10s\n", "size", "High/CPU",
              "High/GPU", "High/Frm", "Low/CPU", "Low/GPU", "Low/Frm");
  CsvWriter csv(csv_path);
  csv.header({"size", "high_cpu_ms", "high_gpu_ms", "high_framework_ms",
              "low_cpu_ms", "low_gpu_ms", "low_framework_ms"});
  for (std::size_t n : sizes) {
    const auto problem = make_problem(n);
    double t[6];
    int k = 0;
    for (const char* platform : {"Hetero-High", "Hetero-Low"}) {
      for (Mode mode :
           {Mode::kCpuParallel, Mode::kGpu, Mode::kHeterogeneous}) {
        const RunConfig cfg = config_for(platform, mode);
        t[k++] = solve(problem, cfg).stats.sim_seconds * 1e3;
      }
    }
    std::printf("%8zu | %10.3f %10.3f %10.3f | %10.3f %10.3f %10.3f\n", n,
                t[0], t[1], t[2], t[3], t[4], t[5]);
    csv.row(n, t[0], t[1], t[2], t[3], t[4], t[5]);
  }
  csv.save();
}

}  // namespace lddp::bench
