// Ablation: the t_share sweep (the second half of the Section V-A tuning
// procedure) and the quality of the model-based default against the
// empirically tuned optimum, per pattern.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "problems/checkerboard.h"
#include "problems/levenshtein.h"
#include "problems/alignment.h"
#include "util/csv.h"

namespace {

using namespace lddp;

void BM_TShareSweep(benchmark::State& state) {
  static const problems::LevenshteinProblem p(
      problems::random_sequence(4096, 7), problems::random_sequence(4096, 8));
  auto cfg = lddp::bench::config_for("Hetero-High", Mode::kHeterogeneous);
  cfg.hetero = HeteroParams{-1, state.range(0)};
  lddp::bench::run_once(state, p, cfg);
}
BENCHMARK(BM_TShareSweep)
    ->DenseRange(0, 4096, 512)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

template <typename P>
void report(const char* name, const P& p, CsvWriter& csv) {
  RunConfig cfg = lddp::bench::config_for("Hetero-High",
                                          Mode::kHeterogeneous);
  const TuneResult tuned = tune(p, cfg, 13);
  cfg.hetero = tuned.best;
  const double t_tuned = solve(p, cfg).stats.sim_seconds * 1e3;
  cfg.hetero = HeteroParams{-1, -1};
  const auto def = solve(p, cfg);
  std::printf("%-14s default(ts=%lld,sh=%lld) %9.3f ms | tuned(ts=%lld,"
              "sh=%lld) %9.3f ms | gap %5.1f%%\n",
              name, def.stats.t_switch, def.stats.t_share,
              def.stats.sim_seconds * 1e3, tuned.best.t_switch,
              tuned.best.t_share, t_tuned,
              100.0 * (def.stats.sim_seconds * 1e3 - t_tuned) / t_tuned);
  csv.row(name, def.stats.t_switch, def.stats.t_share,
          def.stats.sim_seconds * 1e3, tuned.best.t_switch,
          tuned.best.t_share, t_tuned);
}

void print_series() {
  std::printf("\n=== Ablation: model defaults vs empirically tuned "
              "parameters (Hetero-High) ===\n");
  CsvWriter csv("ablation_tshare.csv");
  csv.header({"problem", "default_t_switch", "default_t_share", "default_ms",
              "tuned_t_switch", "tuned_t_share", "tuned_ms"});
  report("levenshtein",
         problems::LevenshteinProblem(problems::random_sequence(2048, 1),
                                      problems::random_sequence(2048, 2)),
         csv);
  report("checkerboard",
         problems::CheckerboardProblem(
             problems::random_cost_board(2048, 2048, 3)),
         csv);
  csv.save();
}

}  // namespace

int main(int argc, char** argv) {
  print_series();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
