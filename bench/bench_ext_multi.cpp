// Extension bench: CPU + several accelerators on one platform, on rows
// wide enough that per-row kernels leave the launch-overhead floor. Both
// transfer regimes then scale with device count; narrow tables are bound
// by launch overhead (one-way) or the per-row device<->device round trip
// (two-way) and gain nothing — the unit tests pin that regime down.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/multi.h"
#include "problems/checkerboard.h"
#include "problems/synthetic.h"
#include "util/csv.h"

namespace {

using namespace lddp;

std::vector<sim::GpuSpec> k20s(int count) {
  return std::vector<sim::GpuSpec>(static_cast<std::size_t>(count),
                                   sim::GpuSpec::tesla_k20());
}

template <typename P>
double multi_seconds(const P& p, int devices) {
  sim::Platform platform(cpu::CpuSpec::i7_980(), k20s(devices));
  SolveStats stats;
  solve_multi_horizontal(p, platform, MultiSplit{}, &stats);
  return stats.sim_seconds;
}

void BM_MultiOneWay(benchmark::State& state) {
  const auto devices = static_cast<int>(state.range(0));
  problems::MinNwNProblem p(1024, 131072, 1);
  double t = 0;
  for (auto _ : state) {
    t = multi_seconds(p, devices);
    state.SetIterationTime(t);
  }
  state.counters["sim_ms"] = t * 1e3;
}
BENCHMARK(BM_MultiOneWay)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_MultiTwoWay(benchmark::State& state) {
  const auto devices = static_cast<int>(state.range(0));
  problems::CheckerboardProblem p(
      problems::random_cost_board(1024, 131072, 11));
  double t = 0;
  for (auto _ : state) {
    t = multi_seconds(p, devices);
    state.SetIterationTime(t);
  }
  state.counters["sim_ms"] = t * 1e3;
}
BENCHMARK(BM_MultiTwoWay)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_series() {
  std::printf("\n=== Extension: CPU + N x K20 on 1024 x 131072 tables (sim "
              "ms) ===\n");
  std::printf("%8s %16s %16s\n", "devices", "one-way (case-1)",
              "two-way (case-2)");
  CsvWriter csv("ext_multi.csv");
  csv.header({"devices", "oneway_ms", "twoway_ms"});
  problems::MinNwNProblem one_way(1024, 131072, 1);
  problems::CheckerboardProblem two_way(
      problems::random_cost_board(1024, 131072, 11));
  for (int devices = 1; devices <= 4; ++devices) {
    const double a = multi_seconds(one_way, devices) * 1e3;
    const double b = multi_seconds(two_way, devices) * 1e3;
    std::printf("%8d %16.3f %16.3f\n", devices, a, b);
    csv.row(devices, a, b);
  }
  std::printf("expected: near-linear scaling on very wide rows; on narrow "
              "rows (launch- or round-trip-bound) extra devices do not pay "
              "— see MultiAcceleratorTest.TwoWayPingPong*\n");
  csv.save();
}

}  // namespace

int main(int argc, char** argv) {
  print_series();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
