// Figure 12: Floyd–Steinberg dithering (knight-move pattern) — CPU vs GPU
// vs Framework across image sizes on both platforms.
//
// Expected shape (Section VI-B): for small images the multicore CPU beats
// the GPU and the framework tracks the CPU; for large images the GPU takes
// over and work sharing puts the framework ahead of both.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "problems/floyd_steinberg.h"

namespace {

using namespace lddp;

problems::FloydSteinbergProblem make_problem(std::size_t n) {
  return problems::FloydSteinbergProblem(
      problems::plasma_image(n, n, /*seed=*/n));
}

void BM_Fig12(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const char* platform = state.range(1) ? "Hetero-Low" : "Hetero-High";
  const Mode mode = static_cast<Mode>(state.range(2));
  auto cfg = lddp::bench::config_for(platform, mode);
  lddp::bench::run_once(state, make_problem(n), cfg);
  state.SetLabel(std::string(platform) + "/" + lddp::bench::mode_label(mode));
}

BENCHMARK(BM_Fig12)
    ->ArgsProduct({{512, 1024, 2048, 4096},
                   {0, 1},
                   {static_cast<long>(Mode::kCpuParallel),
                    static_cast<long>(Mode::kGpu),
                    static_cast<long>(Mode::kHeterogeneous)}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  lddp::bench::case_study_series("Fig 12: Floyd-Steinberg dithering",
                                 "fig12_dithering.csv",
                                 {256, 512, 1024, 2048, 4096}, make_problem);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
