// Figure 7: heterogeneous time vs t_switch for LCS on a 4k x 4k table with
// t_share fixed to 0 — the paper's concave tuning curve (Section V-A).
//
// Expected shape: time falls as the CPU absorbs low-work anti-diagonals,
// reaches an interior minimum, then rises as the CPU keeps fronts the GPU
// would process faster.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "problems/alignment.h"
#include "problems/lcs.h"
#include "util/csv.h"

namespace {

using namespace lddp;

constexpr std::size_t kLen = 4096;  // the paper's "4k x 4k" DP table

const problems::LcsProblem& shared_problem() {
  static const problems::LcsProblem p(problems::random_sequence(kLen, 71),
                                      problems::random_sequence(kLen, 72));
  return p;
}

void BM_Fig7_TSwitchSweep(benchmark::State& state) {
  auto cfg = lddp::bench::config_for("Hetero-High", Mode::kHeterogeneous);
  cfg.hetero = HeteroParams{state.range(0), 0};
  lddp::bench::run_once(state, shared_problem(), cfg);
}
BENCHMARK(BM_Fig7_TSwitchSweep)
    ->DenseRange(0, 4096, 512)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_curve() {
  std::printf("\n=== Fig 7: LCS 4k x 4k, t_share = 0, Hetero-High ===\n");
  std::printf("%10s %14s\n", "t_switch", "sim time (ms)");
  CsvWriter csv("fig7_tswitch.csv");
  csv.header({"t_switch", "sim_ms"});
  double best_t = 1e300;
  long long best_v = 0;
  for (long long ts = 0; ts <= 4096; ts += 256) {
    auto cfg = lddp::bench::config_for("Hetero-High", Mode::kHeterogeneous);
    cfg.hetero = HeteroParams{ts, 0};
    const auto r = solve(shared_problem(), cfg);
    std::printf("%10lld %14.3f\n", ts, r.stats.sim_seconds * 1e3);
    csv.row(ts, r.stats.sim_seconds * 1e3);
    if (r.stats.sim_seconds < best_t) {
      best_t = r.stats.sim_seconds;
      best_v = ts;
    }
  }
  std::printf("minimum at t_switch = %lld (%.3f ms) -> concave valley as in "
              "the paper\n",
              best_v, best_t * 1e3);
  csv.save();
}

}  // namespace

int main(int argc, char** argv) {
  print_curve();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
