// Ablation: how much does the pipelined (stream-overlapped) one-way
// transfer scheme buy (Section IV-C1)?
//
// We compare the framework's horizontal case-1 execution against a
// synthetic "no-overlap" lower bound computed from the same run's resource
// busy times: if no activity overlapped, the run would take
// cpu_busy + gpu_busy + copy_busy. The measured makespan shows how much of
// that serialization the pipeline removed.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "problems/synthetic.h"
#include "util/csv.h"

namespace {

using namespace lddp;

void BM_PipelineOverlap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  problems::MinNwNProblem p(n, n, 1);
  auto cfg = lddp::bench::config_for("Hetero-High", Mode::kHeterogeneous);
  // Fix the split so both units stay busy at every size; the question here
  // is how much of their work the pipeline overlaps.
  cfg.hetero = HeteroParams{0, static_cast<long long>(n) / 4};
  const auto stats = lddp::bench::run_once(state, p, cfg);
  const double serialized = stats.cpu_busy_seconds + stats.gpu_busy_seconds +
                            stats.copy_busy_seconds;
  state.counters["no_overlap_ms"] = serialized * 1e3;
  state.counters["overlap_saving_pct"] =
      100.0 * (serialized - stats.sim_seconds) / serialized;
}
BENCHMARK(BM_PipelineOverlap)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Arg(8192)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_series() {
  std::printf("\n=== Ablation: pipelined one-way transfers (horizontal "
              "case-1, Hetero-High) ===\n");
  std::printf("%8s %14s %18s %12s\n", "size", "pipelined (ms)",
              "if serialized (ms)", "saving");
  CsvWriter csv("ablation_pipeline.csv");
  csv.header({"size", "pipelined_ms", "serialized_ms", "saving_pct"});
  for (std::size_t n : {1024u, 2048u, 4096u, 8192u}) {
    problems::MinNwNProblem p(n, n, 1);
    auto cfg = lddp::bench::config_for("Hetero-High", Mode::kHeterogeneous);
    cfg.hetero = HeteroParams{0, static_cast<long long>(n) / 4};
    const auto r = solve(p, cfg);
    const double serialized = r.stats.cpu_busy_seconds +
                              r.stats.gpu_busy_seconds +
                              r.stats.copy_busy_seconds;
    const double saving =
        100.0 * (serialized - r.stats.sim_seconds) / serialized;
    std::printf("%8zu %14.3f %18.3f %11.1f%%\n", n,
                r.stats.sim_seconds * 1e3, serialized * 1e3, saving);
    csv.row(n, r.stats.sim_seconds * 1e3, serialized * 1e3, saving);
  }
  csv.save();
}

}  // namespace

int main(int argc, char** argv) {
  print_series();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
