// Ablation: frontier (checkpointed linear-space) storage versus the
// classic full table. Both measurements are *real wall-clock* — the
// storage tier changes how the host fills and reads tables, not the
// simulated platform schedule.
//
// Two measurements, both gated (the process exits non-zero on failure so
// CI catches regressions):
//
//  1. Value-only throughput: 4k x 4k Levenshtein and LCS, serial host
//     fill, best of 5. The full tier streams the whole O(n^2) grid
//     through memory (first-touch faults + write bandwidth); the
//     frontier tier's working set is two rolling rows plus checkpoint
//     harvests. Gate: frontier >= 1.3x cells/second at n >= 4096.
//  2. Traceback end-to-end: solve + alignment traceback (NW linear-gap
//     and Gotoh affine-gap — monotone backward walks, each band
//     rematerialized at most once). At the default K ~ sqrt(rows) the
//     walk recomputes about half the table into L2-resident band
//     scratch. Gate: frontier no slower than 1.15x full end-to-end.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "core/framework.h"
#include "problems/alignment.h"
#include "problems/gotoh.h"
#include "problems/lcs.h"
#include "problems/levenshtein.h"

namespace {

using namespace lddp;

int failures = 0;

/// Best-of-5 wall-clock for one storage tier; returns seconds. `reader`
/// consumes the result each rep (the traceback, or a corner probe for
/// value-only runs) so the work cannot be optimized away.
template <typename P, typename Reader>
double best_wall(const P& p, Storage storage, Reader&& reader) {
  RunConfig cfg;
  cfg.mode = Mode::kCpuSerial;
  cfg.storage = storage;
  return lddp::bench::min_wall_seconds(
      [&] {
        const auto r = solve_frontier(p, cfg);
        benchmark::DoNotOptimize(reader(r.table));
      },
      /*reps=*/5, /*warmup=*/1);
}

template <typename P, typename Reader>
void gated_pair(const char* name, const P& p, double limit_ratio,
                bool frontier_faster, lddp::bench::JsonWriter& json,
                Reader&& reader) {
  const std::size_t n = p.rows() - 1;
  const double cells = static_cast<double>(p.rows()) * p.cols();
  const double full_s = best_wall(p, Storage::kFull, reader);
  const double fr_s = best_wall(p, Storage::kFrontier, reader);
  const double speedup = full_s / fr_s;
  std::printf("%-16s %6zu | full %8.1f ms | frontier %8.1f ms | %.2fx\n",
              name, n, full_s * 1e3, fr_s * 1e3, speedup);
  json.record_wall(std::string(name) + "/full", n, full_s * 1e3,
                   cells / full_s);
  json.record_wall(std::string(name) + "/frontier", n, fr_s * 1e3,
                   cells / fr_s);
  if (frontier_faster && speedup < limit_ratio) {
    std::fprintf(stderr,
                 "GATE FAIL: %s frontier speedup %.2fx < %.2fx\n", name,
                 speedup, limit_ratio);
    ++failures;
  }
  if (!frontier_faster && fr_s > full_s * limit_ratio) {
    std::fprintf(stderr,
                 "GATE FAIL: %s frontier %.2fx slower than full "
                 "(limit %.2fx)\n",
                 name, fr_s / full_s, limit_ratio);
    ++failures;
  }
}

}  // namespace

int main() {
  lddp::bench::stabilize_allocator();
  lddp::bench::JsonWriter json("ablation_frontier");
  constexpr std::size_t kN = 4096;

  std::printf("=== Value-only host fill: full vs frontier storage "
              "(serial, best of 5; gate: frontier >= 1.3x) ===\n");
  {
    problems::LevenshteinProblem p(problems::random_sequence(kN, 1),
                                   problems::random_sequence(kN, 2));
    gated_pair("levenshtein", p, 1.3, /*frontier_faster=*/true, json,
               [&](const auto& t) { return t.at(kN, kN); });
  }
  {
    problems::LcsProblem p(problems::random_sequence(kN, 3),
                           problems::random_sequence(kN, 4));
    gated_pair("lcs", p, 1.3, /*frontier_faster=*/true, json,
               [&](const auto& t) { return t.at(kN, kN); });
  }

  std::printf("\n=== Solve + traceback end-to-end: full vs frontier at "
              "default K (gate: frontier <= 1.15x slower) ===\n");
  {
    problems::NeedlemanWunschProblem p(problems::random_sequence(kN, 5),
                                       problems::random_sequence(kN, 6));
    gated_pair("nw_traceback", p, 1.15, /*frontier_faster=*/false, json,
               [&](const auto& t) {
                 return problems::nw_traceback(p, t).score;
               });
  }
  {
    problems::GotohProblem p(problems::random_sequence(kN, 7),
                             problems::random_sequence(kN, 8));
    gated_pair("gotoh_traceback", p, 1.15, /*frontier_faster=*/false, json,
               [&](const auto& t) {
                 return problems::gotoh_traceback(p, t).score;
               });
  }

  // Footprint context for the numbers above (not gated): resident bytes
  // of each tier at this size.
  {
    problems::LevenshteinProblem p(problems::random_sequence(kN, 1),
                                   problems::random_sequence(kN, 2));
    RunConfig cfg;
    cfg.mode = Mode::kCpuSerial;
    cfg.storage = Storage::kFrontier;
    const auto r = solve_frontier(p, cfg);
    std::printf("\nfootprint: full %.1f MiB vs frontier peak %.2f MiB "
                "(K=%zu, %zu checkpoint rows)\n",
                static_cast<double>(p.rows() * p.cols() *
                                    sizeof(std::int32_t)) /
                    (1 << 20),
                static_cast<double>(r.stats.peak_table_bytes) / (1 << 20),
                r.stats.checkpoint_interval, r.stats.checkpoint_rows);
  }

  json.save();
  if (failures > 0) {
    std::fprintf(stderr, "%d gate(s) failed\n", failures);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
