// Ablation: graph-style fused launches (one full launch overhead per phase
// plus a per-node issue cost) versus eager per-operation submission.
//
// The win concentrates in the launch-bound regime: an n x n anti-diagonal
// table has 2n-1 fronts, so the pure-GPU path pays 2n-1 full launch
// overheads unfused but only one (plus 2n-1 small node-issue costs) fused.
// Small tables are dominated by that fixed cost — exactly the regime the
// paper's Section VI assigns to the CPU — so fusing moves the t_switch
// valley left. Large tables amortize launch overhead against kernel work
// and the two curves converge.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "cpu/thread_pool.h"
#include "problems/synthetic.h"
#include "sim/memory.h"

namespace {

using namespace lddp;

constexpr std::size_t kSizes[] = {128, 256, 512, 1024, 2048, 4096};

RunConfig fused_cfg(const char* platform, Mode mode, bool fused,
                    cpu::ThreadPool* pool, sim::BufferPool* buffers) {
  auto cfg = lddp::bench::config_for(platform, mode);
  cfg.fused_launches = fused;
  cfg.pool = pool;
  cfg.buffer_pool = buffers;
  return cfg;
}

void BM_FusedLaunches(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool fused = state.range(1) != 0;
  problems::MinNwNProblem p(n, n, 1);
  const auto cfg =
      fused_cfg("Hetero-High", Mode::kGpu, fused, nullptr, nullptr);
  lddp::bench::run_once(state, p, cfg);
}
BENCHMARK(BM_FusedLaunches)
    ->ArgsProduct({{128, 256, 512, 1024, 2048, 4096}, {0, 1}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_series() {
  cpu::ThreadPool pool(std::max(2u, std::thread::hardware_concurrency()));
  sim::BufferPool buffers;
  lddp::bench::JsonWriter json("ablation_fused");

  for (const char* platform : {"Hetero-High", "Hetero-Low"}) {
    for (const Mode mode : {Mode::kGpu, Mode::kHeterogeneous}) {
      std::printf("\n=== Ablation: fused launches (%s, %s) ===\n", platform,
                  lddp::bench::mode_label(mode));
      std::printf("%8s %14s %14s %9s %12s %12s\n", "size", "unfused (ms)",
                  "fused (ms)", "saving", "wall un (ms)", "wall fu (ms)");
      for (const std::size_t n : kSizes) {
        problems::MinNwNProblem p(n, n, 1);
        const auto unfused =
            solve(p, fused_cfg(platform, mode, false, &pool, &buffers)).stats;
        const auto fused =
            solve(p, fused_cfg(platform, mode, true, &pool, &buffers)).stats;
        const double saving = 100.0 *
                              (unfused.sim_seconds - fused.sim_seconds) /
                              unfused.sim_seconds;
        std::printf("%8zu %14.3f %14.3f %8.1f%% %12.3f %12.3f\n", n,
                    unfused.sim_seconds * 1e3, fused.sim_seconds * 1e3,
                    saving, unfused.real_seconds * 1e3,
                    fused.real_seconds * 1e3);
        const std::string tag = std::string(platform) + "/" +
                                lddp::bench::mode_label(mode);
        json.record(tag + "/unfused", n, unfused);
        json.record(tag + "/fused", n, fused);
      }
    }
  }
  json.save();
}

}  // namespace

int main(int argc, char** argv) {
  print_series();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
