// Figure 8: inverted-L (iL) vs horizontal case-1 (H1) execution of the
// same {NW}-dependent problem, on CPU and on GPU (Section V-B).
//
// The paper's function: f(i,j) = max(cell(i,j), f(i-1,j-1)) + c.
// Expected shape: H1 beats iL on the GPU (uniform fronts + coalescing-
// friendly row-major layout vs the shell's strided column part); the gap
// on the CPU is smaller but same-signed (cache lines vs strided columns).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "problems/synthetic.h"
#include "util/csv.h"

namespace {

using namespace lddp;

problems::MaxNwProblem il_problem(std::size_t n) {
  return problems::MaxNwProblem(problems::random_input_grid(n, n, n), 3);
}

// The same f declared with contributing set {NW, N}: the framework then
// runs it as horizontal case-1 (N is simply ignored by f).
auto h1_problem(std::size_t n) {
  auto grid = std::make_shared<Grid<std::int32_t>>(
      problems::random_input_grid(n, n, n));
  auto p = problems::make_function_problem<std::int64_t>(
      n, n, ContributingSet{Dep::kNW, Dep::kN}, 0LL,
      [grid](std::size_t i, std::size_t j,
             const Neighbors<std::int64_t>& nb) {
        const std::int64_t v = grid->at(i, j);
        return (v > nb.nw ? v : nb.nw) + 3;
      });
  p.set_result_bytes(n * sizeof(std::int64_t));  // same result as the iL run
  return p;
}

void BM_Fig8_iL(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Mode mode = state.range(1) ? Mode::kGpu : Mode::kCpuParallel;
  auto cfg = lddp::bench::config_for("Hetero-High", mode);
  lddp::bench::run_once(state, il_problem(n), cfg);
  state.SetLabel(std::string("iL/") + lddp::bench::mode_label(mode));
}

void BM_Fig8_H1(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Mode mode = state.range(1) ? Mode::kGpu : Mode::kCpuParallel;
  auto cfg = lddp::bench::config_for("Hetero-High", mode);
  lddp::bench::run_once(state, h1_problem(n), cfg);
  state.SetLabel(std::string("H1/") + lddp::bench::mode_label(mode));
}

BENCHMARK(BM_Fig8_iL)
    ->ArgsProduct({{1024, 2048, 4096}, {0, 1}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig8_H1)
    ->ArgsProduct({{1024, 2048, 4096}, {0, 1}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_series() {
  std::printf("\n=== Fig 8: inverted-L vs horizontal case-1 (sim ms, "
              "Hetero-High) ===\n");
  std::printf("%8s %12s %12s %12s %12s\n", "size", "iL/CPU", "H1/CPU",
              "iL/GPU", "H1/GPU");
  CsvWriter csv("fig8_il_vs_h1.csv");
  csv.header({"size", "il_cpu_ms", "h1_cpu_ms", "il_gpu_ms", "h1_gpu_ms"});
  for (std::size_t n : {1024u, 2048u, 4096u}) {
    double t[4];
    int k = 0;
    for (Mode mode : {Mode::kCpuParallel, Mode::kGpu}) {
      auto cfg = lddp::bench::config_for("Hetero-High", mode);
      t[k++] = solve(il_problem(n), cfg).stats.sim_seconds * 1e3;
      t[k++] = solve(h1_problem(n), cfg).stats.sim_seconds * 1e3;
    }
    std::printf("%8zu %12.3f %12.3f %12.3f %12.3f\n", n, t[0], t[1], t[2],
                t[3]);
    csv.row(n, t[0], t[1], t[2], t[3]);
  }
  std::printf("expected: H1 <= iL in every column, decisively on the GPU\n");
  csv.save();
}

}  // namespace

int main(int argc, char** argv) {
  print_series();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
