// Ablation: per-cell wavefronts vs tiled block-per-thread execution on the
// CPU (Section IV-A's two mappings), with a tile-size sweep. The tiled
// mapping amortizes synchronization over blocks and keeps each block's
// sweep cache-resident — the cache-efficient schedule of Chowdhury et al.
// that the paper's related work surveys.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "problems/alignment.h"
#include "problems/levenshtein.h"
#include "util/csv.h"

namespace {

using namespace lddp;

problems::LevenshteinProblem make_problem(std::size_t n) {
  return problems::LevenshteinProblem(problems::random_sequence(n, 301),
                                      problems::random_sequence(n, 302));
}

void BM_TiledSweep(benchmark::State& state) {
  const auto p = make_problem(4096);
  auto cfg = lddp::bench::config_for("Hetero-High", Mode::kCpuTiled);
  cfg.cpu_tile = static_cast<std::size_t>(state.range(0));
  lddp::bench::run_once(state, p, cfg);
}
BENCHMARK(BM_TiledSweep)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_PerCellBaseline(benchmark::State& state) {
  const auto p = make_problem(4096);
  auto cfg = lddp::bench::config_for("Hetero-High", Mode::kCpuParallel);
  lddp::bench::run_once(state, p, cfg);
}
BENCHMARK(BM_PerCellBaseline)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_series() {
  std::printf("\n=== Ablation: CPU tiling (Levenshtein 4k x 4k, Hetero-High, "
              "sim ms) ===\n");
  CsvWriter csv("ablation_tiling.csv");
  csv.header({"config", "sim_ms"});
  const auto p = make_problem(4096);
  {
    auto cfg = lddp::bench::config_for("Hetero-High", Mode::kCpuParallel);
    const double t = solve(p, cfg).stats.sim_seconds * 1e3;
    std::printf("%-22s %10.3f\n", "per-cell fork/join", t);
    csv.row("per-cell", t);
  }
  for (std::size_t tile : {16u, 32u, 64u, 128u, 256u}) {
    auto cfg = lddp::bench::config_for("Hetero-High", Mode::kCpuTiled);
    cfg.cpu_tile = tile;
    const double t = solve(p, cfg).stats.sim_seconds * 1e3;
    std::printf("tiled %-4zu             %10.3f\n", tile, t);
    csv.row("tiled-" + std::to_string(tile), t);
  }
  csv.save();
}

}  // namespace

int main(int argc, char** argv) {
  print_series();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
