// Ablation: work-stealing executor versus the static fork/join pools.
// This bench measures *real wall-clock* — the substrate changes how fast
// the host retires fronts, never the simulated schedule (results and
// recorded timelines are bit-identical across schedules by contract;
// tests/test_stealing_executor.cpp holds that line).
//
// Three measurements; (b) and (c) are gated (nonzero exit on regression
// so the perf-smoke CI job catches it):
//
//  (a) Ragged solo solves: anti-diagonal Levenshtein 1k..8k in
//      Mode::kCpuParallel, static 4-thread pool vs the shared stealing
//      executor. Recorded, not gated — front lengths grow 1..n..1, so
//      the share of fronts crossing the parallel-dispatch threshold (and
//      with it the substrate's influence) rises with n.
//  (b) Mixed-size batch of 16 (four 4k-wide + twelve 256): the batch
//      engine with threads_per_solve=4 and 4 slots, legacy private
//      per-slot pools vs the shared stealing executor (the cooperative
//      pool is recorded as a third arm for context). The big solves use
//      a horizontal-pattern synthetic (every front is 4096 cells wide)
//      so each front actually reaches the substrate; 4k *anti-diagonal*
//      tables would cross the dispatch threshold on only ~3 of 8k fronts
//      and measure nothing. They are also sized ABOVE kLaneMaxCells —
//      lane-eligible solves execute as interleaved SIMD scans and never
//      touch the pool substrate at all. Private pools oversubscribe whenever
//      slots x threads_per_solve exceeds the machine; stealing right-
//      sizes ONE shared executor to the hardware. Gate: stealing
//      achieves >= 1.25x solves/second over the private-pool substrate.
//      Arms run interleaved so host drift cannot pick the winner.
//  (c) Uniform small fronts: Levenshtein 1024 solo (every front below
//      the dispatch threshold, so both substrates run inline). Gate:
//      stealing is never worse than 1.05x static wall-clock — the
//      executor must cost nothing when it is not used.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/batch_engine.h"
#include "problems/levenshtein.h"
#include "problems/synthetic.h"
#include "util/rng.h"

namespace {

using namespace lddp;

int failures = 0;

std::string random_dna(std::size_t n, std::uint64_t seed) {
  static constexpr char kAlpha[] = {'A', 'C', 'G', 'T'};
  std::string s(n, 'A');
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i)
    s[i] = kAlpha[rng.uniform_int(0, 3)];
  return s;
}

/// Horizontal-pattern synthetic (deps = {N}): every front is one full
/// `cols`-cell row, so a 4096-wide table dispatches every front to the
/// execution substrate under test.
auto make_wide_problem(std::size_t rows, std::size_t cols,
                       std::uint64_t salt) {
  return problems::make_function_problem<std::uint64_t>(
      rows, cols, ContributingSet({Dep::kN}), salt,
      [salt](std::size_t i, std::size_t j, const Neighbors<std::uint64_t>& nb) {
        return (salt + i * 1000003 + j * 10007) * 31 + nb.n;
      });
}

/// (a) Ragged solo solves, static pool vs stealing executor.
void solo_ragged(lddp::bench::JsonWriter& json) {
  std::printf("=== (a) Ragged anti-diagonal solo solves, CPU parallel "
              "(wall ms, best of 2) ===\n");
  std::printf("%8s %12s %12s %9s\n", "n", "static", "stealing", "ratio");
  cpu::ThreadPool static_pool(4);
  sim::BufferPool buffers;
  for (const std::size_t n : {1024u, 2048u, 4096u, 8192u}) {
    const problems::LevenshteinProblem p(random_dna(n, 2 * n),
                                         random_dna(n, 2 * n + 1));
    RunConfig cfg;
    cfg.mode = Mode::kCpuParallel;
    cfg.buffer_pool = &buffers;

    RunConfig st = cfg;
    st.schedule = cpu::Schedule::kStatic;
    st.pool = &static_pool;
    const double wall_static = lddp::bench::min_wall_seconds(
        [&] { solve(p, st); }, /*reps=*/2, /*warmup=*/1);

    RunConfig wk = cfg;
    wk.schedule = cpu::Schedule::kStealing;
    const double wall_steal = lddp::bench::min_wall_seconds(
        [&] { solve(p, wk); }, /*reps=*/2, /*warmup=*/1);

    std::printf("%8zu %12.3f %12.3f %8.2fx\n", n, wall_static * 1e3,
                wall_steal * 1e3, wall_static / wall_steal);
    json.record_wall("solo_ragged/static", n, wall_static * 1e3);
    json.record_wall("solo_ragged/stealing", n, wall_steal * 1e3);
  }
}

/// One mixed batch through the engine; returns wall seconds for the batch.
/// `worker_threads` is pinned to 4 so the contrast under test exists even
/// on small hosts: the static substrate gives each of the 4 slots a
/// private threads_per_solve pool (16 threads — oversubscribed whenever
/// the machine has fewer cores), while the stealing substrate sizes ONE
/// shared executor to min(hardware, slots x threads_per_solve).
double batch_wall_once(cpu::Schedule schedule, bool pack) {
  // 1024x4096 = 4M cells: over detail::kLaneMaxCells, so the big solves
  // take the job->run path and actually exercise the slot's substrate.
  static auto big = make_wide_problem(1024, 4096, 7);
  static problems::LevenshteinProblem small(random_dna(256, 5),
                                            random_dna(256, 6));
  Stopwatch timer;
  {
    BatchConfig bc;
    bc.schedule = schedule;
    bc.pack_solves = pack;
    bc.threads_per_solve = 4;
    bc.concurrency = 4;
    bc.worker_threads = 4;
    BatchEngine engine(bc);
    RunConfig rc;
    rc.mode = Mode::kCpuParallel;
    std::vector<std::future<SolveResult<decltype(big)>>> big_futs;
    std::vector<std::future<SolveResult<decltype(small)>>> small_futs;
    for (int k = 0; k < 4; ++k) {
      auto f = engine.submit(big, rc);
      if (f.has_value()) big_futs.push_back(std::move(*f));
    }
    for (int k = 0; k < 12; ++k) {
      auto f = engine.submit(small, rc);
      if (f.has_value()) small_futs.push_back(std::move(*f));
    }
    engine.wait();
    for (auto& f : big_futs) f.get();
    for (auto& f : small_futs) f.get();
  }
  return timer.seconds();
}

/// (b) Mixed-size batch, gated >= 1.25x against the legacy private-pool
/// substrate. Three arms:
///   * private  — schedule=static, pack_solves=off: every slot owns a
///     threads_per_solve pool. This is the substrate the stealing
///     executor replaces, and the GATED baseline.
///   * coop     — schedule=static, pack_solves=on: the cooperative
///     single-pool time-share (recorded for context, not gated — it also
///     flips on cross-solve lane packing, so it is not a pure substrate
///     comparison).
///   * stealing — pack_solves=off so it differs from `private` in the
///     substrate ONLY.
/// The arms are measured INTERLEAVED (private, coop, stealing, private,
/// ...) and each takes its best rep: host-level drift across the run
/// (frequency scaling, noisy neighbours, allocator state) then biases
/// every arm equally instead of whichever happened to run last.
void batch_mixed(lddp::bench::JsonWriter& json) {
  std::printf("\n=== (b) Mixed batch of 16 (four 1024x4096 wide + twelve "
              "256), threads_per_solve=4, 4 slots ===\n");
  constexpr int kReps = 4;
  double wall_pr = 1e300, wall_co = 1e300, wall_wk = 1e300;
  batch_wall_once(cpu::Schedule::kStatic, false);   // warm every substrate
  batch_wall_once(cpu::Schedule::kStatic, true);    // (and the problem
  batch_wall_once(cpu::Schedule::kStealing, false); // tables)
  for (int rep = 0; rep < kReps; ++rep) {
    wall_pr = std::min(wall_pr,
                       batch_wall_once(cpu::Schedule::kStatic, false));
    wall_co = std::min(wall_co,
                       batch_wall_once(cpu::Schedule::kStatic, true));
    wall_wk = std::min(wall_wk,
                       batch_wall_once(cpu::Schedule::kStealing, false));
  }
  const double pr = 16.0 / wall_pr;
  const double co = 16.0 / wall_co;
  const double wk = 16.0 / wall_wk;
  const double speedup = pr > 0.0 ? wk / pr : 0.0;
  std::printf("private %8.2f solves/s | coop %8.2f solves/s | stealing "
              "%8.2f solves/s | stealing/private %.2fx\n",
              pr, co, wk, speedup);
  json.record_wall("batch_mixed/private_pools", 16, wall_pr * 1e3, pr);
  json.record_wall("batch_mixed/coop_pool", 16, wall_co * 1e3, co);
  json.record_wall("batch_mixed/stealing", 16, wall_wk * 1e3, wk);
  if (speedup < 1.25) {
    std::fprintf(stderr,
                 "GATE FAIL: mixed-batch stealing speedup %.2fx < 1.25x "
                 "over private pools\n",
                 speedup);
    ++failures;
  }
}

/// (c) Uniform small fronts, gated never-worse 1.05x.
void small_fronts_never_worse(lddp::bench::JsonWriter& json) {
  std::printf("\n=== (c) Uniform small fronts (Levenshtein 1024, every "
              "front below the dispatch threshold) ===\n");
  const problems::LevenshteinProblem p(random_dna(1024, 21),
                                       random_dna(1024, 22));
  cpu::ThreadPool static_pool(4);
  sim::BufferPool buffers;
  RunConfig cfg;
  cfg.mode = Mode::kCpuParallel;
  cfg.buffer_pool = &buffers;

  RunConfig st = cfg;
  st.schedule = cpu::Schedule::kStatic;
  st.pool = &static_pool;
  const double wall_static = lddp::bench::min_wall_seconds(
      [&] { solve(p, st); }, /*reps=*/5, /*warmup=*/2);

  RunConfig wk = cfg;
  wk.schedule = cpu::Schedule::kStealing;
  const double wall_steal = lddp::bench::min_wall_seconds(
      [&] { solve(p, wk); }, /*reps=*/5, /*warmup=*/2);

  const double ratio = wall_steal / wall_static;
  std::printf("static %.3f ms | stealing %.3f ms | ratio %.3f\n",
              wall_static * 1e3, wall_steal * 1e3, ratio);
  json.record_wall("small_fronts/static", 1024, wall_static * 1e3);
  json.record_wall("small_fronts/stealing", 1024, wall_steal * 1e3);
  if (ratio > 1.05) {
    std::fprintf(stderr,
                 "GATE FAIL: stealing %.2fx slower than static on small "
                 "fronts (limit 1.05x)\n",
                 ratio);
    ++failures;
  }
}

}  // namespace

int main() {
  lddp::bench::stabilize_allocator();
  lddp::bench::JsonWriter json("ablation_stealing");

  solo_ragged(json);
  batch_mixed(json);
  small_fronts_never_worse(json);
  json.save();

  if (failures > 0) {
    std::fprintf(stderr, "%d gate(s) failed\n", failures);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
