// Figure 13: checkerboard shortest path (horizontal case-2) — CPU vs GPU
// vs Framework across table sizes on both platforms.
//
// Expected shape (Section VI-C): no low-work region exists; the two-way
// mapped-pinned boundary and kernel setup dominate small tables (framework
// >= pure GPU there), and work partitioning only pays off at the largest
// sizes.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "problems/checkerboard.h"

namespace {

using namespace lddp;

problems::CheckerboardProblem make_problem(std::size_t n) {
  return problems::CheckerboardProblem(
      problems::random_cost_board(n, n, /*seed=*/n));
}

void BM_Fig13(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const char* platform = state.range(1) ? "Hetero-Low" : "Hetero-High";
  const Mode mode = static_cast<Mode>(state.range(2));
  auto cfg = lddp::bench::config_for(platform, mode);
  lddp::bench::run_once(state, make_problem(n), cfg);
  state.SetLabel(std::string(platform) + "/" + lddp::bench::mode_label(mode));
}

BENCHMARK(BM_Fig13)
    ->ArgsProduct({{1024, 2048, 4096, 8192},
                   {0, 1},
                   {static_cast<long>(Mode::kCpuParallel),
                    static_cast<long>(Mode::kGpu),
                    static_cast<long>(Mode::kHeterogeneous)}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  lddp::bench::case_study_series(
      "Fig 13: checkerboard problem", "fig13_checkerboard.csv",
      {512, 1024, 2048, 4096, 8192, 16384}, make_problem);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
