// Ablation: the wavefront-contiguous ("coalescing-friendly") layout of
// Section IV-B. The inverted-L pattern is the paper's own evidence: its
// framework runs iL on row-major storage (strided column parts), which is
// why horizontal case-1 wins Fig 8. Here we additionally measure what the
// missing shell-major layout would have bought.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/strategies/hetero_invertedl.h"
#include "problems/synthetic.h"
#include "util/csv.h"

namespace {

using namespace lddp;

problems::MaxNwProblem make_problem(std::size_t n) {
  return problems::MaxNwProblem(problems::random_input_grid(n, n, n), 3);
}

void BM_InvertedL_RowMajorStorage(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = make_problem(n);
  SolveStats stats;
  for (auto _ : state) {
    sim::Platform platform(sim::PlatformSpec::hetero_high());
    auto table = solve_gpu_invertedl(p, platform, &stats);
    benchmark::DoNotOptimize(table.data());
    state.SetIterationTime(stats.sim_seconds);
  }
  state.counters["sim_ms"] = stats.sim_seconds * 1e3;
}
BENCHMARK(BM_InvertedL_RowMajorStorage)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_InvertedL_ShellMajorStorage(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = make_problem(n);
  SolveStats stats;
  for (auto _ : state) {
    sim::Platform platform(sim::PlatformSpec::hetero_high());
    auto table =
        solve_gpu(p, ShellLayout(p.rows(), p.cols()), platform, &stats);
    benchmark::DoNotOptimize(table.data());
    state.SetIterationTime(stats.sim_seconds);
  }
  state.counters["sim_ms"] = stats.sim_seconds * 1e3;
}
BENCHMARK(BM_InvertedL_ShellMajorStorage)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_series() {
  std::printf("\n=== Ablation: coalescing layout for the inverted-L GPU "
              "kernels (Hetero-High) ===\n");
  std::printf("%8s %18s %18s %10s\n", "size", "row-major (ms)",
              "shell-major (ms)", "speedup");
  CsvWriter csv("ablation_coalescing.csv");
  csv.header({"size", "row_major_ms", "shell_major_ms", "speedup"});
  for (std::size_t n : {1024u, 2048u, 4096u}) {
    const auto p = make_problem(n);
    SolveStats s1, s2;
    {
      sim::Platform platform(sim::PlatformSpec::hetero_high());
      solve_gpu_invertedl(p, platform, &s1);
    }
    {
      sim::Platform platform(sim::PlatformSpec::hetero_high());
      solve_gpu(p, ShellLayout(p.rows(), p.cols()), platform, &s2);
    }
    std::printf("%8zu %18.3f %18.3f %9.2fx\n", n, s1.sim_seconds * 1e3,
                s2.sim_seconds * 1e3, s1.sim_seconds / s2.sim_seconds);
    csv.row(n, s1.sim_seconds * 1e3, s2.sim_seconds * 1e3,
            s1.sim_seconds / s2.sim_seconds);
  }
  csv.save();
}

}  // namespace

int main(int argc, char** argv) {
  print_series();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
