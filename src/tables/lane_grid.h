// Lane-major interleaved table for lane-packed multi-solve execution.
//
// Where Grid stores one solve's table row-major, LaneGrid stores `width`
// solves interleaved: element (i, j, s) — cell (i, j) of solve s — lives
// at data[(i * cols + j) * width + s]. A vector load at (i, j, 0) then
// reads cell (i, j) of `width` solves in ONE unit-stride operation, which
// is the inter-solve analogue of the paper's coalescing insight: instead
// of making one solve's front contiguous, make the SAME front position of
// many solves contiguous, so even a front of length 1 fills a full
// vector. The base is 64-byte aligned and `width` is a vector-width
// multiple, so every (i, j) offset admits aligned vector access.
#pragma once

#include <cstddef>

#include "util/aligned.h"
#include "util/check.h"

namespace lddp {

template <typename T>
class LaneGrid {
 public:
  /// `width` must be a multiple of the vector lane count in use (the
  /// lane-cohort driver pads the solve count up and replicates lane 0
  /// into the padding).
  LaneGrid(std::size_t rows, std::size_t cols, std::size_t width)
      : rows_(rows), cols_(cols), width_(width),
        buf_(rows * cols * width) {
    LDDP_CHECK_MSG(rows > 0 && cols > 0 && width > 0,
                   "LaneGrid dimensions must be positive");
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t width() const { return width_; }

  /// Interleaved row i: cell (i, j) of solve s at row(i)[j * width() + s].
  T* row(std::size_t i) {
    LDDP_DCHECK(i < rows_);
    return buf_.data() + i * cols_ * width_;
  }
  const T* row(std::size_t i) const {
    LDDP_DCHECK(i < rows_);
    return buf_.data() + i * cols_ * width_;
  }

  T& at(std::size_t i, std::size_t j, std::size_t s) {
    LDDP_DCHECK(i < rows_ && j < cols_ && s < width_);
    return buf_.data()[(i * cols_ + j) * width_ + s];
  }
  const T& at(std::size_t i, std::size_t j, std::size_t s) const {
    LDDP_DCHECK(i < rows_ && j < cols_ && s < width_);
    return buf_.data()[(i * cols_ + j) * width_ + s];
  }

 private:
  std::size_t rows_, cols_, width_;
  AlignedBuf<T> buf_;
};

}  // namespace lddp
