// Wavefront-major table layouts (the paper's coalescing optimization,
// Section IV-B): "storing all the cells marked with the same number
// together in a one dimensional array".
//
// Each layout partitions the rows x cols grid into *fronts* — the sets of
// cells a pattern can process in one parallel iteration (Figure 2) — and
// stores each front contiguously, fronts in execution order. GPU threads of
// one front then access consecutive addresses, so warp loads coalesce into
// the minimum number of 128 B transactions.
//
// Common interface (duck-typed; strategies are templates):
//   rows(), cols(), size()
//   num_fronts()                 - iterations of the pattern
//   front_size(f), front_offset(f)
//   flat(i, j)                   - flat index of a cell
//   cell(f, p) -> {i, j}         - p-th cell of front f
//   front_of(i, j)               - which front computes this cell
//
// Invariant (property-tested): flat(cell(f, p)) == front_offset(f) + p, and
// {cell(f, p)} over all f, p enumerates every cell exactly once.
//
// Within-front ordering is chosen so that the heterogeneous strategies'
// CPU regions are *prefixes* of each front and GPU regions are *suffixes*
// (contiguous device-side transfers):
//   AntiDiagonalMajor : by i ascending  (CPU owns the top row-strip)
//   RowMajor          : by j ascending  (CPU owns the left column-strip)
//   ColumnMajor       : by i ascending  (CPU owns the top row-strip)
//   KnightMoveMajor   : by j ascending  (CPU owns the left column-strip)
//   ShellMajor        : column part bottom-up, then row part by j ascending
//                       (CPU owns the left column-strip)
//   MirrorShellMajor  : column part bottom-up, then row part by j descending
//                       (CPU owns the right column-strip)
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/check.h"

namespace lddp {

/// (row, column) pair returned by cell enumeration.
struct CellIndex {
  std::size_t i = 0;
  std::size_t j = 0;
  bool operator==(const CellIndex&) const = default;
};

namespace detail {

inline void check_dims(std::size_t rows, std::size_t cols) {
  LDDP_CHECK_MSG(rows > 0 && cols > 0, "layout dimensions must be positive");
}

}  // namespace detail

/// Horizontal pattern: front f = row f.
class RowMajorLayout {
 public:
  RowMajorLayout(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols) {
    detail::check_dims(rows, cols);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  std::size_t num_fronts() const { return rows_; }
  std::size_t front_size([[maybe_unused]] std::size_t f) const {
    LDDP_DCHECK(f < rows_);
    return cols_;
  }
  std::size_t front_offset(std::size_t f) const { return f * cols_; }
  std::size_t front_of(std::size_t i, std::size_t) const { return i; }
  std::size_t flat(std::size_t i, std::size_t j) const {
    LDDP_DCHECK(i < rows_ && j < cols_);
    return i * cols_ + j;
  }
  CellIndex cell(std::size_t f, std::size_t p) const {
    LDDP_DCHECK(f < rows_ && p < cols_);
    return {f, p};
  }

 private:
  std::size_t rows_, cols_;
};

/// Vertical pattern: front f = column f.
class ColumnMajorLayout {
 public:
  ColumnMajorLayout(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols) {
    detail::check_dims(rows, cols);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  std::size_t num_fronts() const { return cols_; }
  std::size_t front_size([[maybe_unused]] std::size_t f) const {
    LDDP_DCHECK(f < cols_);
    return rows_;
  }
  std::size_t front_offset(std::size_t f) const { return f * rows_; }
  std::size_t front_of(std::size_t, std::size_t j) const { return j; }
  std::size_t flat(std::size_t i, std::size_t j) const {
    LDDP_DCHECK(i < rows_ && j < cols_);
    return j * rows_ + i;
  }
  CellIndex cell(std::size_t f, std::size_t p) const {
    LDDP_DCHECK(f < cols_ && p < rows_);
    return {p, f};
  }

 private:
  std::size_t rows_, cols_;
};

/// Anti-diagonal pattern: front d = {(i, j) : i + j == d}.
class AntiDiagonalLayout {
 public:
  AntiDiagonalLayout(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols) {
    detail::check_dims(rows, cols);
    offsets_.reserve(num_fronts() + 1);
    std::size_t acc = 0;
    for (std::size_t d = 0; d < num_fronts(); ++d) {
      offsets_.push_back(acc);
      acc += front_size(d);
    }
    offsets_.push_back(acc);
    LDDP_DCHECK(acc == size());
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  std::size_t num_fronts() const { return rows_ + cols_ - 1; }

  std::size_t i_min(std::size_t d) const {
    return d < cols_ ? 0 : d - cols_ + 1;
  }
  std::size_t i_max(std::size_t d) const { return std::min(rows_ - 1, d); }

  std::size_t front_size(std::size_t d) const {
    LDDP_DCHECK(d < num_fronts());
    return i_max(d) - i_min(d) + 1;
  }
  std::size_t front_offset(std::size_t d) const {
    LDDP_DCHECK(d < offsets_.size());
    return offsets_[d];
  }
  std::size_t front_of(std::size_t i, std::size_t j) const { return i + j; }
  std::size_t flat(std::size_t i, std::size_t j) const {
    LDDP_DCHECK(i < rows_ && j < cols_);
    const std::size_t d = i + j;
    return offsets_[d] + (i - i_min(d));
  }
  CellIndex cell(std::size_t d, std::size_t p) const {
    LDDP_DCHECK(d < num_fronts() && p < front_size(d));
    const std::size_t i = i_min(d) + p;
    return {i, d - i};
  }

 private:
  std::size_t rows_, cols_;
  std::vector<std::size_t> offsets_;
};

/// Knight-move pattern: front t = {(i, j) : 2i + j == t} (Figure 2(d)).
class KnightMoveLayout {
 public:
  KnightMoveLayout(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols) {
    detail::check_dims(rows, cols);
    offsets_.reserve(num_fronts() + 1);
    std::size_t acc = 0;
    for (std::size_t t = 0; t < num_fronts(); ++t) {
      offsets_.push_back(acc);
      acc += front_size(t);
    }
    offsets_.push_back(acc);
    LDDP_DCHECK(acc == size());
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  std::size_t num_fronts() const { return 2 * (rows_ - 1) + cols_; }

  // Valid i range of front t: j = t - 2i must lie in [0, cols).
  std::size_t i_min(std::size_t t) const {
    return t < cols_ ? 0 : (t - cols_ + 2) / 2;  // ceil((t - cols + 1) / 2)
  }
  std::size_t i_max(std::size_t t) const { return std::min(rows_ - 1, t / 2); }

  /// May be zero: on single-column tables only every other 2i+j line
  /// contains a cell.
  std::size_t front_size(std::size_t t) const {
    LDDP_DCHECK(t < num_fronts());
    const std::size_t lo = i_min(t), hi = i_max(t);
    return lo > hi ? 0 : hi - lo + 1;
  }
  std::size_t front_offset(std::size_t t) const {
    LDDP_DCHECK(t < offsets_.size());
    return offsets_[t];
  }
  std::size_t front_of(std::size_t i, std::size_t j) const {
    return 2 * i + j;
  }
  std::size_t flat(std::size_t i, std::size_t j) const {
    LDDP_DCHECK(i < rows_ && j < cols_);
    const std::size_t t = 2 * i + j;
    // Enumerated by j ascending == i descending.
    return offsets_[t] + (i_max(t) - i);
  }
  CellIndex cell(std::size_t t, std::size_t p) const {
    LDDP_DCHECK(t < num_fronts() && p < front_size(t));
    const std::size_t i = i_max(t) - p;
    return {i, t - 2 * i};
  }

 private:
  std::size_t rows_, cols_;
  std::vector<std::size_t> offsets_;
};

/// Inverted-L pattern: shell k = {(i, j) : min(i, j) == k} (Figure 2(c)).
/// Enumeration: column part (j == k) bottom-up, then row part (i == k) by
/// j ascending — the CPU's left column-strip is a prefix of every shell.
class ShellLayout {
 public:
  ShellLayout(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
    detail::check_dims(rows, cols);
    offsets_.reserve(num_fronts() + 1);
    std::size_t acc = 0;
    for (std::size_t k = 0; k < num_fronts(); ++k) {
      offsets_.push_back(acc);
      acc += front_size(k);
    }
    offsets_.push_back(acc);
    LDDP_DCHECK(acc == size());
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  std::size_t num_fronts() const { return std::min(rows_, cols_); }

  /// Cells below the corner (column part) come first in the enumeration.
  std::size_t column_part_size(std::size_t k) const { return rows_ - 1 - k; }

  std::size_t front_size(std::size_t k) const {
    LDDP_DCHECK(k < num_fronts());
    return (rows_ - k) + (cols_ - k) - 1;
  }
  std::size_t front_offset(std::size_t k) const {
    LDDP_DCHECK(k < offsets_.size());
    return offsets_[k];
  }
  std::size_t front_of(std::size_t i, std::size_t j) const {
    return std::min(i, j);
  }
  std::size_t flat(std::size_t i, std::size_t j) const {
    LDDP_DCHECK(i < rows_ && j < cols_);
    const std::size_t k = std::min(i, j);
    if (j == k && i > k) return offsets_[k] + (rows_ - 1 - i);  // column part
    return offsets_[k] + column_part_size(k) + (j - k);         // row part
  }
  CellIndex cell(std::size_t k, std::size_t p) const {
    LDDP_DCHECK(k < num_fronts() && p < front_size(k));
    const std::size_t col_n = column_part_size(k);
    if (p < col_n) return {rows_ - 1 - p, k};
    return {k, k + (p - col_n)};
  }

 private:
  std::size_t rows_, cols_;
  std::vector<std::size_t> offsets_;
};

/// Mirrored inverted-L pattern: shell k = {(i, j) : min(i, cols-1-j) == k}
/// (Figure 2(f)). Mirror image of ShellLayout about the vertical axis; the
/// CPU's *right* column-strip is a prefix of every shell.
class MirrorShellLayout {
 public:
  MirrorShellLayout(std::size_t rows, std::size_t cols)
      : inner_(rows, cols) {}

  std::size_t rows() const { return inner_.rows(); }
  std::size_t cols() const { return inner_.cols(); }
  std::size_t size() const { return inner_.size(); }
  std::size_t num_fronts() const { return inner_.num_fronts(); }
  std::size_t column_part_size(std::size_t k) const {
    return inner_.column_part_size(k);
  }
  std::size_t front_size(std::size_t k) const { return inner_.front_size(k); }
  std::size_t front_offset(std::size_t k) const {
    return inner_.front_offset(k);
  }
  std::size_t front_of(std::size_t i, std::size_t j) const {
    return inner_.front_of(i, mirror(j));
  }
  std::size_t flat(std::size_t i, std::size_t j) const {
    return inner_.flat(i, mirror(j));
  }
  CellIndex cell(std::size_t k, std::size_t p) const {
    CellIndex c = inner_.cell(k, p);
    return {c.i, mirror(c.j)};
  }

 private:
  std::size_t mirror(std::size_t j) const { return inner_.cols() - 1 - j; }
  ShellLayout inner_;
};

}  // namespace lddp
