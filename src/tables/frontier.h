// Linear-space result table for the frontier storage tier.
//
// A frontier-backed solve never materializes the O(rows x cols) grid: it
// retains one checkpoint row every K rows (plus the last row, where the
// answers of every bundled problem live) and rematerializes the K-row
// band between two checkpoints on demand when a consumer — a traceback,
// a best-score scan — reads an interior cell. The remat callback re-runs
// the problem's own row recurrence from the band's upper checkpoint, so
// every served value is bit-identical to the full-table solve; transient
// memory is one band of scratch, O(K x width), instead of O(rows x cols).
//
// Reads are column-pruned: a band is rematerialized only out to the
// requested column (plus a K-column guard when the contributing set has
// NE, whose reads drift right while walking up), and widened
// geometrically if a later read in the same band lands further right.
// Monotone backward walks — every traceback in problems/ — therefore
// rematerialize each band at most once.
//
// The same type doubles as a facade over a fully materialized Grid
// (Storage::kFull, or layouts without a bounded window), so consumers are
// written once against FrontierTable and work on either tier.
//
// at() is const but memoizes the cached band internally: concurrent reads
// of one FrontierTable must be externally synchronized. The remat
// callback typically references the problem object by pointer — the
// problem must outlive the table unless keep_alive() holds it.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "tables/grid.h"
#include "util/aligned.h"
#include "util/check.h"
#include "util/fault_injection.h"

namespace lddp {

template <typename V>
class FrontierTable {
 public:
  /// Rematerializes rows [row_lo, row_hi) into `out` (row stride
  /// `stride`, columns [0, width) of each row computed), chaining from
  /// `prev_row` — the checkpoint row row_lo - 1, always full width.
  using RematFn =
      std::function<void(std::size_t row_lo, std::size_t row_hi,
                         std::size_t width, const V* prev_row, V* out,
                         std::size_t stride)>;

  /// Coordinate view applied on top of the canonical storage — the
  /// frontier analogue of transpose_grid / mirror_grid for the symmetry
  /// adapters (a frontier table cannot be re-materialized eagerly, so the
  /// undo is a view, not a copy).
  enum class Transform { kIdentity, kTransposed, kMirrored };

  /// Rematerialization accounting (diagnostics and tests).
  struct RematStats {
    std::size_t bands = 0;  ///< band (re)materializations triggered
    std::size_t rows = 0;   ///< rows recomputed across them
    std::size_t cells = 0;  ///< cells recomputed across them
  };

  FrontierTable() = default;

  /// Full tier: wraps an already materialized grid (user orientation).
  static FrontierTable full(Grid<V> g) {
    FrontierTable t;
    t.crows_ = g.rows();
    t.ccols_ = g.cols();
    t.full_ = std::move(g);
    return t;
  }

  /// Frontier tier: checkpoint rows every `k` rows plus the last row,
  /// in canonical orientation. The engine fills checkpoint_row()/
  /// last_row() during the solve and attaches the remat callback.
  static FrontierTable checkpointed(std::size_t rows, std::size_t cols,
                                    std::size_t k) {
    LDDP_CHECK(rows > 0 && cols > 0 && k > 0);
    FrontierTable t;
    t.crows_ = rows;
    t.ccols_ = cols;
    t.k_ = k;
    t.ckpt_.resize(((rows - 1) / k + 1) * cols);
    t.last_.resize(cols);
    return t;
  }

  bool frontier() const { return k_ != 0; }
  std::size_t checkpoint_interval() const { return k_; }
  std::size_t checkpoint_row_count() const {
    return frontier() ? (crows_ - 1) / k_ + 1 : 0;
  }

  std::size_t rows() const {
    return transform_ == Transform::kTransposed ? ccols_ : crows_;
  }
  std::size_t cols() const {
    return transform_ == Transform::kTransposed ? crows_ : ccols_;
  }

  /// Cell (i, j) in user orientation, by value (interior cells may be
  /// served from band scratch that a later read can evict).
  V at(std::size_t i, std::size_t j) const {
    switch (transform_) {
      case Transform::kIdentity:
        return canonical_at(i, j);
      case Transform::kTransposed:
        return canonical_at(j, i);
      case Transform::kMirrored:
        return canonical_at(i, ccols_ - 1 - j);
    }
    return canonical_at(i, j);
  }

  // --- engine-facing (canonical orientation) ----------------------------

  /// Storage of checkpoint row i (i % k == 0), full width.
  V* checkpoint_row(std::size_t i) {
    LDDP_DCHECK(frontier() && i % k_ == 0 && i < crows_);
    return ckpt_.data() + (i / k_) * ccols_;
  }
  V* last_row() {
    LDDP_DCHECK(frontier());
    return last_.data();
  }

  /// `ne_reads` marks a contributing set with NE: reads drift right while
  /// walking up, so pruned bands carry a K-column guard on the right.
  void set_remat(RematFn fn, bool ne_reads) {
    remat_ = std::move(fn);
    ne_pad_ = ne_reads;
  }
  void set_transform(Transform t) { transform_ = t; }
  /// Shares ownership of whatever the remat callback points into (the
  /// batch engine parks the problem here so tables outlive their jobs).
  void keep_alive(std::shared_ptr<const void> h) {
    keep_alive_ = std::move(h);
  }

  /// Bytes held for the lifetime of the table (checkpoints + last row,
  /// or the whole grid on the full tier).
  std::size_t resident_bytes() const {
    if (!frontier()) return crows_ * ccols_ * sizeof(V);
    return (ckpt_.size() + last_.size()) * sizeof(V);
  }
  /// resident_bytes plus the largest band scratch materialized so far.
  std::size_t peak_bytes() const {
    return resident_bytes() + peak_scratch_bytes_;
  }
  const RematStats& remat_stats() const { return remat_stats_; }

 private:
  static constexpr std::size_t kNoBand = static_cast<std::size_t>(-1);

  V canonical_at(std::size_t i, std::size_t j) const {
    LDDP_DCHECK(i < crows_ && j < ccols_);
    if (!frontier()) return full_.at(i, j);
    if (i == crows_ - 1) return last_[j];
    if (i % k_ == 0) return ckpt_[(i / k_) * ccols_ + j];
    const std::size_t c = i / k_;
    const std::size_t band_lo = c * k_ + 1;
    // A width-pruned band computes its last column with a clamped (bound)
    // NE read, and that wrongness erodes one column leftward per row
    // below the checkpoint — so with NE, row i of a pruned band is valid
    // only up to column cached_w_ - (i - band_lo + 1). A full-width band
    // has no pruning edge and serves every column.
    const std::size_t erosion =
        (ne_pad_ && cached_w_ < ccols_) ? i - band_lo + 1 : 0;
    if (cached_band_ != c || j + erosion >= cached_w_) load_band(c, j);
    return scratch_.data()[(i - band_lo) * cached_w_ + j];
  }

  /// (Re)materializes band c — rows (c*k, min(c*k + k, rows-1)) — out to
  /// a width that serves column j now and any monotone backward walk
  /// continuing from (., j) later. LDDP_CHECKs that a remat callback was
  /// attached (full-tier tables never get here).
  void load_band(std::size_t c, std::size_t j) const {
    LDDP_CHECK_MSG(remat_ != nullptr,
                   "frontier read needs a rematerialization callback");
    const std::size_t band_lo = c * k_ + 1;
    const std::size_t band_hi = std::min(c * k_ + k_, crows_ - 1);
    LDDP_DCHECK(band_hi > band_lo - 1);
    // Width: the request plus the NE drift guard, doubled against the
    // previous width of the same band so ascending scans (best-score
    // sweeps) re-materialize O(log) times, not per column.
    std::size_t w = j + 1 + (ne_pad_ ? k_ : 1);
    if (cached_band_ == c) w = std::max(w, cached_w_ * 2);
    w = std::min(w, ccols_);
    // Chaos site: a deterministic injected fault aborts before any state
    // changes; the cache is also invalidated across the callback so a
    // mid-remat throw leaves the table clean for a retry.
    fault::maybe_throw(fault::Site::kRematerialize, c);
    cached_band_ = kNoBand;
    scratch_.ensure((band_hi - band_lo) * w);
    remat_(band_lo, band_hi, w, ckpt_.data() + c * ccols_, scratch_.data(),
           w);
    cached_band_ = c;
    cached_w_ = w;
    ++remat_stats_.bands;
    remat_stats_.rows += band_hi - band_lo;
    remat_stats_.cells += (band_hi - band_lo) * w;
    peak_scratch_bytes_ = std::max(peak_scratch_bytes_,
                                   (band_hi - band_lo) * w * sizeof(V));
  }

  std::size_t crows_ = 0, ccols_ = 0;  ///< canonical dimensions
  std::size_t k_ = 0;                  ///< 0 = full tier
  Grid<V> full_;                       ///< full tier storage
  std::vector<V> ckpt_;                ///< rows 0, k, 2k, ... row-major
  std::vector<V> last_;                ///< row crows_ - 1
  RematFn remat_;
  bool ne_pad_ = false;
  Transform transform_ = Transform::kIdentity;
  std::shared_ptr<const void> keep_alive_;

  mutable AlignedBuf<V> scratch_;
  mutable std::size_t cached_band_ = kNoBand;
  mutable std::size_t cached_w_ = 0;
  mutable RematStats remat_stats_;
  mutable std::size_t peak_scratch_bytes_ = 0;
};

}  // namespace lddp
