// Row-major 2-D host array. Used for problem inputs (cost grids, images)
// and as the host-side DP table: the CPU works in natural row-major order
// while the simulated GPU keeps its own copy in a wavefront-contiguous
// layout (see layout.h) — mirroring the paper's split between CPU-friendly
// and coalescing-friendly storage.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "util/check.h"

namespace lddp {

namespace detail {

/// Allocator adaptor that turns the container's value-initialization into
/// default-initialization: vector<T, ...>(n) leaves trivial T unwritten.
/// Only Grid::uninitialized uses this path; every other construction still
/// value-initializes through the (n, fill) overload.
template <typename T>
struct DefaultInitAlloc : std::allocator<T> {
  template <typename U>
  struct rebind {
    using other = DefaultInitAlloc<U>;
  };
  template <typename U>
  void construct(U* p) {
    ::new (static_cast<void*>(p)) U;
  }
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
};

}  // namespace detail

template <typename T>
class Grid {
 public:
  Grid() = default;
  Grid(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    LDDP_CHECK_MSG(rows > 0 && cols > 0, "Grid dimensions must be positive");
  }

  /// A grid whose cells are NOT initialized (for trivial T). Only for
  /// callers that overwrite every cell before any read — e.g. assembling
  /// the result table from a fully computed device buffer; skipping the
  /// fill matters at large sizes, where zeroing tens of MB that are about
  /// to be overwritten costs as much as the compute itself.
  static Grid uninitialized(std::size_t rows, std::size_t cols) {
    Grid g;
    g.rows_ = rows;
    g.cols_ = cols;
    g.data_ = Storage(rows * cols);  // default-init via DefaultInitAlloc
    LDDP_CHECK_MSG(rows > 0 && cols > 0, "Grid dimensions must be positive");
    return g;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& at(std::size_t i, std::size_t j) {
    LDDP_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  const T& at(std::size_t i, std::size_t j) const {
    LDDP_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  bool operator==(const Grid&) const = default;

 private:
  using Storage = std::vector<T, detail::DefaultInitAlloc<T>>;

  std::size_t rows_ = 0, cols_ = 0;
  Storage data_;
};

}  // namespace lddp
