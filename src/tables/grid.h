// Row-major 2-D host array. Used for problem inputs (cost grids, images)
// and as the host-side DP table: the CPU works in natural row-major order
// while the simulated GPU keeps its own copy in a wavefront-contiguous
// layout (see layout.h) — mirroring the paper's split between CPU-friendly
// and coalescing-friendly storage.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.h"

namespace lddp {

template <typename T>
class Grid {
 public:
  Grid() = default;
  Grid(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    LDDP_CHECK_MSG(rows > 0 && cols > 0, "Grid dimensions must be positive");
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& at(std::size_t i, std::size_t j) {
    LDDP_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  const T& at(std::size_t i, std::size_t j) const {
    LDDP_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  bool operator==(const Grid&) const = default;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<T> data_;
};

}  // namespace lddp
