// Binary Grid<T> serialization — a small versioned container so tables,
// cost grids and energy maps can be saved from one run (e.g. the CLI's
// --save-table) and reloaded by tools or tests.
//
// Format: magic "LDDPGRD1" | u64 rows | u64 cols | u64 elem_size |
//         rows*cols*elem_size raw little-endian payload.
#pragma once

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <type_traits>

#include "tables/grid.h"
#include "util/check.h"

namespace lddp {

inline constexpr char kGridMagic[8] = {'L', 'D', 'D', 'P',
                                       'G', 'R', 'D', '1'};

template <typename T>
void save_grid(const Grid<T>& g, const std::string& path) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::ofstream out(path, std::ios::binary);
  LDDP_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out.write(kGridMagic, sizeof(kGridMagic));
  const std::uint64_t header[3] = {g.rows(), g.cols(), sizeof(T)};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(g.data()),
            static_cast<std::streamsize>(g.size() * sizeof(T)));
  LDDP_CHECK_MSG(out.good(), "short write to " << path);
}

template <typename T>
Grid<T> load_grid(const std::string& path) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::ifstream in(path, std::ios::binary);
  LDDP_CHECK_MSG(in.good(), "cannot open " << path);
  char magic[sizeof(kGridMagic)];
  in.read(magic, sizeof(magic));
  LDDP_CHECK_MSG(in.good() && std::memcmp(magic, kGridMagic,
                                          sizeof(kGridMagic)) == 0,
                 path << ": not an LDDP grid file");
  std::uint64_t header[3];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  LDDP_CHECK_MSG(in.good(), path << ": truncated header");
  LDDP_CHECK_MSG(header[2] == sizeof(T),
                 path << ": element size " << header[2]
                      << " does not match requested type ("
                      << sizeof(T) << ")");
  LDDP_CHECK_MSG(header[0] > 0 && header[1] > 0, path << ": empty grid");
  Grid<T> g(static_cast<std::size_t>(header[0]),
            static_cast<std::size_t>(header[1]));
  in.read(reinterpret_cast<char*>(g.data()),
          static_cast<std::streamsize>(g.size() * sizeof(T)));
  LDDP_CHECK_MSG(in.gcount() ==
                     static_cast<std::streamsize>(g.size() * sizeof(T)),
                 path << ": truncated payload");
  return g;
}

}  // namespace lddp
