// 3-D table support for the k-dimensional LDDP-Plus class (Section II
// defines the class for k >= 2; the paper implements k = 2 "for
// simplicity" — this is the k = 3 instantiation).
//
// Grid3<T> is a dense row-major (i, j, k) array; AntiDiagonalLayout3
// stores cells plane-contiguously by d = i + j + k, the 3-D wavefront:
// every lower-corner dependency offset (di, dj, dk) in {0,1}^3 \ {0}
// strictly decreases d, so all 7 possible contributing offsets are
// satisfied by processing planes in order.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/check.h"

namespace lddp {

template <typename T>
class Grid3 {
 public:
  Grid3() = default;
  Grid3(std::size_t ni, std::size_t nj, std::size_t nk, T fill = T{})
      : ni_(ni), nj_(nj), nk_(nk), data_(ni * nj * nk, fill) {
    LDDP_CHECK_MSG(ni > 0 && nj > 0 && nk > 0,
                   "Grid3 dimensions must be positive");
  }

  std::size_t ni() const { return ni_; }
  std::size_t nj() const { return nj_; }
  std::size_t nk() const { return nk_; }
  std::size_t size() const { return data_.size(); }

  T& at(std::size_t i, std::size_t j, std::size_t k) {
    LDDP_DCHECK(i < ni_ && j < nj_ && k < nk_);
    return data_[(i * nj_ + j) * nk_ + k];
  }
  const T& at(std::size_t i, std::size_t j, std::size_t k) const {
    LDDP_DCHECK(i < ni_ && j < nj_ && k < nk_);
    return data_[(i * nj_ + j) * nk_ + k];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  bool operator==(const Grid3&) const = default;

 private:
  std::size_t ni_ = 0, nj_ = 0, nk_ = 0;
  std::vector<T> data_;
};

/// A cell index in 3-D.
struct CellIndex3 {
  std::size_t i = 0, j = 0, k = 0;
  bool operator==(const CellIndex3&) const = default;
};

/// Plane-contiguous layout by d = i + j + k. Within a plane, cells are
/// ordered by i ascending then j ascending (k = d - i - j), so a CPU slab
/// i < t_share is a prefix of every plane — the 3-D analogue of the
/// anti-diagonal row strip.
class AntiDiagonalLayout3 {
 public:
  AntiDiagonalLayout3(std::size_t ni, std::size_t nj, std::size_t nk)
      : ni_(ni), nj_(nj), nk_(nk) {
    LDDP_CHECK_MSG(ni > 0 && nj > 0 && nk > 0,
                   "layout dimensions must be positive");
    const std::size_t fronts = num_fronts();
    front_offset_.assign(fronts + 1, 0);
    row_offset_.resize(fronts);
    std::size_t acc = 0;
    for (std::size_t d = 0; d < fronts; ++d) {
      front_offset_[d] = acc;
      const std::size_t ilo = i_min(d), ihi = i_max(d);
      row_offset_[d].reserve(ihi - ilo + 2);
      std::size_t pos = 0;
      for (std::size_t i = ilo; i <= ihi; ++i) {
        row_offset_[d].push_back(pos);
        pos += row_count(i, d);
      }
      row_offset_[d].push_back(pos);
      acc += pos;
    }
    front_offset_[fronts] = acc;
    LDDP_DCHECK(acc == ni_ * nj_ * nk_);
  }

  std::size_t ni() const { return ni_; }
  std::size_t nj() const { return nj_; }
  std::size_t nk() const { return nk_; }
  std::size_t size() const { return ni_ * nj_ * nk_; }
  std::size_t num_fronts() const { return ni_ + nj_ + nk_ - 2; }

  std::size_t i_min(std::size_t d) const {
    const std::size_t rest = nj_ - 1 + nk_ - 1;
    return d > rest ? d - rest : 0;
  }
  std::size_t i_max(std::size_t d) const { return std::min(ni_ - 1, d); }

  /// Cells of plane d in slab row i: j in [j_min, j_max], k = d - i - j.
  std::size_t j_min(std::size_t i, std::size_t d) const {
    const std::size_t r = d - i;  // j + k
    return r > nk_ - 1 ? r - (nk_ - 1) : 0;
  }
  std::size_t j_max(std::size_t i, std::size_t d) const {
    return std::min(nj_ - 1, d - i);
  }
  std::size_t row_count(std::size_t i, std::size_t d) const {
    const std::size_t lo = j_min(i, d), hi = j_max(i, d);
    return lo > hi ? 0 : hi - lo + 1;
  }

  std::size_t front_size(std::size_t d) const {
    LDDP_DCHECK(d < num_fronts());
    return front_offset_[d + 1] - front_offset_[d];
  }
  std::size_t front_offset(std::size_t d) const {
    LDDP_DCHECK(d < front_offset_.size());
    return front_offset_[d];
  }
  std::size_t front_of(std::size_t i, std::size_t j, std::size_t k) const {
    return i + j + k;
  }

  /// Number of cells of plane d with slab index < s (the CPU prefix).
  std::size_t slab_prefix(std::size_t d, std::size_t s) const {
    const std::size_t ilo = i_min(d), ihi = i_max(d);
    if (s <= ilo) return 0;
    const std::size_t cut = std::min(s - 1, ihi);
    return row_offset_[d][cut - ilo + 1];
  }

  std::size_t flat(std::size_t i, std::size_t j, std::size_t k) const {
    LDDP_DCHECK(i < ni_ && j < nj_ && k < nk_);
    const std::size_t d = i + j + k;
    return front_offset_[d] + row_offset_[d][i - i_min(d)] +
           (j - j_min(i, d));
  }

  CellIndex3 cell(std::size_t d, std::size_t p) const {
    LDDP_DCHECK(d < num_fronts() && p < front_size(d));
    // Binary search the slab row containing position p.
    const auto& rows = row_offset_[d];
    const std::size_t r =
        static_cast<std::size_t>(
            std::upper_bound(rows.begin(), rows.end(), p) - rows.begin()) -
        1;
    const std::size_t i = i_min(d) + r;
    const std::size_t j = j_min(i, d) + (p - rows[r]);
    return {i, j, d - i - j};
  }

 private:
  std::size_t ni_, nj_, nk_;
  std::vector<std::size_t> front_offset_;
  std::vector<std::vector<std::size_t>> row_offset_;
};

}  // namespace lddp
