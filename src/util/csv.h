// Minimal CSV emitter used by the benchmark harness to dump figure series
// next to the human-readable tables, so plots can be regenerated offline.
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.h"

namespace lddp {

/// Collects rows in memory, writes the file on `save` (or on destruction if
/// a path was given and save was never called — best effort, no throw).
class CsvWriter {
 public:
  CsvWriter() = default;
  explicit CsvWriter(std::string path) : path_(std::move(path)) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  ~CsvWriter() {
    if (!saved_ && !path_.empty()) {
      try {
        save();
      } catch (...) {
        // Destructor must not throw; losing a CSV dump is non-fatal.
      }
    }
  }

  void header(std::initializer_list<std::string> cols) {
    LDDP_CHECK_MSG(rows_.empty(), "header must precede all rows");
    rows_.push_back(join(std::vector<std::string>(cols)));
  }

  template <typename... Ts>
  void row(const Ts&... vals) {
    std::vector<std::string> cells;
    (cells.push_back(to_cell(vals)), ...);
    rows_.push_back(join(cells));
  }

  void save() {
    LDDP_CHECK_MSG(!path_.empty(), "CsvWriter has no output path");
    std::ofstream out(path_);
    LDDP_CHECK_MSG(out.good(), "cannot open " << path_ << " for writing");
    for (const auto& r : rows_) out << r << '\n';
    saved_ = true;
  }

  std::string str() const {
    std::string s;
    for (const auto& r : rows_) {
      s += r;
      s += '\n';
    }
    return s;
  }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    std::ostringstream os;
    os << v;
    std::string s = os.str();
    // Quote cells containing the separator; benchmark labels may have commas.
    if (s.find(',') != std::string::npos) s = '"' + s + '"';
    return s;
  }

  static std::string join(const std::vector<std::string>& cells) {
    std::string s;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) s += ',';
      s += cells[i];
    }
    return s;
  }

  std::string path_;
  std::vector<std::string> rows_;
  bool saved_ = false;
};

}  // namespace lddp
