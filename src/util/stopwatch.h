// Wall-clock stopwatch. The framework's headline numbers come from the
// simulated timeline (src/sim/timeline.h); this is the companion real-time
// measurement reported alongside for reference.
#pragma once

#include <chrono>

namespace lddp {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace lddp
