// Minimal command-line flag parsing for the tools and examples:
// `--key value` and `--key=value` pairs plus positional arguments, with
// typed accessors and unknown-flag detection. No registration step — the
// binary's usage text is the single source of truth.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "util/check.h"

namespace lddp {

class Flags {
 public:
  Flags(int argc, char** argv) {
    LDDP_CHECK(argc >= 1);
    program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg.erase(0, 2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "";  // boolean-style flag
      }
    }
  }

  const std::string& program() const { return program_; }
  const std::vector<std::string>& positional() const { return positional_; }
  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& def) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return def;
    consumed_.insert(key);
    return it->second;
  }

  long long get_int(const std::string& key, long long def) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return def;
    consumed_.insert(key);
    try {
      std::size_t pos = 0;
      const long long v = std::stoll(it->second, &pos);
      LDDP_CHECK_MSG(pos == it->second.size(),
                     "--" << key << ": trailing junk in '" << it->second
                          << "'");
      return v;
    } catch (const std::logic_error& e) {
      if (dynamic_cast<const CheckError*>(&e)) throw;
      throw CheckError("--" + key + ": '" + it->second +
                       "' is not an integer");
    }
  }

  double get_double(const std::string& key, double def) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return def;
    consumed_.insert(key);
    try {
      return std::stod(it->second);
    } catch (const std::logic_error&) {
      throw CheckError("--" + key + ": '" + it->second + "' is not a number");
    }
  }

  bool get_bool(const std::string& key, bool def = false) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return def;
    consumed_.insert(key);
    return it->second.empty() || it->second == "1" || it->second == "true" ||
           it->second == "yes";
  }

  /// Flags that were supplied but never read — catches typos.
  std::vector<std::string> unknown() const {
    std::vector<std::string> out;
    for (const auto& [k, v] : values_)
      if (consumed_.count(k) == 0) out.push_back(k);
    return out;
  }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> consumed_;
};

}  // namespace lddp
