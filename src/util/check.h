// Lightweight runtime checking macros used across the LDDP framework.
//
// LDDP_CHECK is always on (it guards user-facing API misuse and internal
// invariants whose violation would otherwise corrupt results silently).
// LDDP_DCHECK compiles out in NDEBUG builds and is meant for hot loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lddp {

/// Exception thrown on any failed LDDP_CHECK. Carries the failing
/// expression, location, and an optional context message.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "LDDP_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace lddp

#define LDDP_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::lddp::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define LDDP_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream lddp_os_;                                    \
      lddp_os_ << msg;                                                \
      ::lddp::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                   lddp_os_.str());                   \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define LDDP_DCHECK(expr) ((void)0)
#else
#define LDDP_DCHECK(expr) LDDP_CHECK(expr)
#endif
