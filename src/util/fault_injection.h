// Deterministic fault injection and request-lifecycle primitives.
//
// A FaultPlan decides, as a pure function of (seed, site, solve id,
// attempt, salt), whether a named injection site throws. Nothing is
// mutated by a decision, so a failing run replays bit-identically from
// its seed: the same solve hits the same faults at the same sites on
// every execution, regardless of thread interleaving. Sites are consulted
// through a thread-local FaultScope installed by the batch engine around
// each solve attempt — code outside a scope (every solo solve() call,
// tuner sweeps, the reference rung of a degradation ladder) pays one
// null-pointer check and can never fault.
//
// RequestControl carries the cooperative half of the lifecycle: a
// cancellation flag and a *simulated-time* deadline, checked by
// sim::Timeline::record at every front/tile/copy boundary. Deadlines are
// against the private simulated clock, so whether a request times out is
// deterministic — independent of host load — exactly like the injection
// decisions.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace lddp::fault {

/// Named injection sites — every place the simulated platform or the
/// execution layers can be made to fail.
enum class Site : std::uint8_t {
  kPoolAcquire = 0,  ///< BufferPool::acquire (shared arena cache)
  kQuotaAcquire,     ///< QuotaBufferPool::acquire (per-solve quota view)
  kTransferH2D,      ///< Device H2D copy submission
  kTransferD2H,      ///< Device D2H copy submission
  kKernelLaunch,     ///< Device / LaunchGraph kernel launch
  kGraphReplay,      ///< LaunchGraph::replay fused submission
  kStripWorker,      ///< ThreadPool strip-session worker chunk
  kLaneKernel,       ///< lane-cohort lockstep row
  kRematerialize,    ///< FrontierTable checkpoint-band rematerialization
};
inline constexpr std::size_t kSiteCount = 9;

inline const char* to_string(Site s) {
  switch (s) {
    case Site::kPoolAcquire:
      return "pool-acquire";
    case Site::kQuotaAcquire:
      return "quota-acquire";
    case Site::kTransferH2D:
      return "transfer-h2d";
    case Site::kTransferD2H:
      return "transfer-d2h";
    case Site::kKernelLaunch:
      return "kernel-launch";
    case Site::kGraphReplay:
      return "graph-replay";
    case Site::kStripWorker:
      return "strip-worker";
    case Site::kLaneKernel:
      return "lane-kernel";
    case Site::kRematerialize:
      return "rematerialize";
  }
  return "?";
}

namespace detail {

/// splitmix64 finalizer (util/rng.h uses the same constants) — the whole
/// decision function is stateless hashing, never a stateful generator.
inline std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace detail

/// A seeded per-site failure schedule. Copyable POD; decisions are pure,
/// so a plan can be shared across threads freely.
struct FaultPlan {
  std::uint64_t seed = 0;
  double rates[kSiteCount] = {};  ///< per-site failure probability [0, 1]

  /// Same rate at every site.
  static FaultPlan uniform(std::uint64_t seed, double rate) {
    FaultPlan plan;
    plan.seed = seed;
    for (double& r : plan.rates) r = rate;
    return plan;
  }

  double rate(Site s) const { return rates[static_cast<std::size_t>(s)]; }
  void set_rate(Site s, double r) {
    rates[static_cast<std::size_t>(s)] = r;
  }

  /// Any site armed? A disarmed plan never fails and costs one branch.
  bool armed() const {
    for (double r : rates)
      if (r > 0.0) return true;
    return false;
  }

  /// The decision: pure in (seed, site, solve, attempt, salt). `salt`
  /// distinguishes decision points inside one attempt (byte counts, cell
  /// counts, row indices, worker indices) — deterministic inputs, so the
  /// failure sequence of an attempt is a function of the plan alone.
  bool should_fail(Site site, std::uint64_t solve, std::uint64_t attempt,
                   std::uint64_t salt = 0) const {
    const double r = rates[static_cast<std::size_t>(site)];
    if (r <= 0.0) return false;
    if (r >= 1.0) return true;
    std::uint64_t h = detail::mix(seed);
    h = detail::mix(h ^ (static_cast<std::uint64_t>(site) + 1));
    h = detail::mix(h ^ solve);
    h = detail::mix(h ^ attempt);
    h = detail::mix(h ^ salt);
    return static_cast<double>(h >> 11) * 0x1.0p-53 < r;
  }
};

/// The structured error an armed site throws. Carries enough to replay:
/// plan seed + (site, solve, attempt) pin the exact decision.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(Site site, std::uint64_t solve, std::uint64_t attempt)
      : std::runtime_error(std::string("injected fault at ") +
                           to_string(site) + " (solve " +
                           std::to_string(solve) + ", attempt " +
                           std::to_string(attempt) + ")"),
        site_(site), solve_(solve), attempt_(attempt) {}

  Site site() const { return site_; }
  std::uint64_t solve() const { return solve_; }
  std::uint64_t attempt() const { return attempt_; }

 private:
  Site site_;
  std::uint64_t solve_;
  std::uint64_t attempt_;
};

/// Thrown when a request observes its cancellation flag.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("request cancelled") {}
};

/// Thrown when a request's simulated service time exceeds its deadline.
class DeadlineExceededError : public std::runtime_error {
 public:
  explicit DeadlineExceededError(double deadline_s)
      : std::runtime_error("simulated deadline of " +
                           std::to_string(deadline_s * 1e3) +
                           " ms exceeded") {}
};

/// Cooperative lifecycle flags of one request, checked at op-record
/// boundaries (sim/timeline.h). Both halves are optional; a
/// default-constructed control is inert.
struct RequestControl {
  /// Externally owned cancellation flag (chaos::CancelSource); null = none.
  const std::atomic<bool>* cancel = nullptr;
  /// Simulated-time budget in seconds; 0 = no deadline.
  double deadline_s = 0.0;

  bool cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }
};

/// The ambient injection context of the current thread: which plan is
/// active and which (solve, attempt) the running code belongs to. Null
/// plan = no injection.
struct FaultContext {
  const FaultPlan* plan = nullptr;
  std::uint64_t solve = 0;
  std::uint64_t attempt = 0;
};

namespace detail {

inline FaultContext& context() {
  thread_local FaultContext ctx;
  return ctx;
}

/// Per-thread ordinal of the next parallel region dispatched under the
/// current fault scope — the interleaving-independent half of the
/// stealing executor's per-morsel fault salt. FaultScope zeroes it on
/// entry (and restores on exit), so the sequence is a pure function of
/// (solve, attempt): the Nth region a solve attempt submits gets ordinal
/// N on every replay, regardless of which engine worker runs the attempt
/// or what ran on that thread before.
inline std::uint64_t& region_seq() {
  thread_local std::uint64_t seq = 0;
  return seq;
}

}  // namespace detail

/// Claims the next region ordinal of this thread's fault scope (see
/// detail::region_seq). Called by the stealing executor at region
/// submission; meaningful only under an armed scope, but cheap enough to
/// call unconditionally.
inline std::uint64_t next_region_sequence() { return detail::region_seq()++; }

/// Active context of this thread, or null when no FaultScope is open.
inline const FaultContext* current() {
  const FaultContext& ctx = detail::context();
  return ctx.plan != nullptr ? &ctx : nullptr;
}

/// Copy of this thread's context (plan null when none) — for publishing
/// the context across threads (the strip barrier hands it to workers).
inline FaultContext snapshot() { return detail::context(); }

/// RAII installation of a fault context on the current thread. Nests:
/// the previous context is restored on destruction. The plan must outlive
/// the scope.
class FaultScope {
 public:
  FaultScope(const FaultPlan* plan, std::uint64_t solve,
             std::uint64_t attempt)
      : saved_(detail::context()), saved_seq_(detail::region_seq()) {
    detail::context() = FaultContext{plan, solve, attempt};
    detail::region_seq() = 0;
  }
  ~FaultScope() {
    detail::context() = saved_;
    detail::region_seq() = saved_seq_;
  }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultContext saved_;
  std::uint64_t saved_seq_;
};

/// The site check: throws InjectedFault when the ambient plan says this
/// decision point fails; a no-op (one null check) outside any scope.
inline void maybe_throw(Site site, std::uint64_t salt = 0) {
  const FaultContext* ctx = current();
  if (ctx == nullptr) return;
  if (ctx->plan->should_fail(site, ctx->solve, ctx->attempt, salt))
    throw InjectedFault(site, ctx->solve, ctx->attempt);
}

}  // namespace lddp::fault
