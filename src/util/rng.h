// Deterministic, seedable pseudo-random number generation for workload
// generators and property tests. We deliberately avoid std::mt19937's size
// and unspecified-across-platform distributions: every stream here is
// reproducible bit-for-bit from its seed on any platform.
#pragma once

#include <cstdint>
#include <limits>

#include "util/check.h"

namespace lddp {

/// splitmix64 — used to seed xoshiro and as a standalone mixer.
/// Reference: Sebastiano Vigna, public domain.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — small, fast, high-quality generator. Satisfies the
/// UniformRandomBitGenerator requirements so it can be plugged into
/// std::shuffle etc., but all distribution helpers below are hand-rolled
/// for cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Uses Lemire-style rejection-free
  /// multiply-shift; the tiny modulo bias is irrelevant for workload
  /// generation and keeps this branch-free and deterministic.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    LDDP_CHECK_MSG(lo <= hi, "uniform_int: empty range [" << lo << ", " << hi
                                                          << "]");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    const unsigned __int128 wide =
        static_cast<unsigned __int128>((*this)()) * span;
    return lo + static_cast<std::int64_t>(wide >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// One of the characters of `alphabet` (NUL-terminated), uniformly.
  char uniform_char(const char* alphabet, std::size_t n) {
    LDDP_CHECK(n > 0);
    return alphabet[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1))];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace lddp
