// Minimal fixed-width SIMD wrapper for the batch-front and lane-packed
// kernels.
//
// Targets the x86-64 SSE2 baseline (always present on x86-64); elsewhere
// every operation degrades to a 4-lane scalar loop, so code written
// against I32x4 stays portable. Only reassociation-free integer ops are
// wrapped — add / min / max / compare / blend — so each lane computes
// exactly what the scalar recurrence computes and results stay
// bit-identical to the per-cell path.
//
// An 8-lane AVX2 tier (I32x8) exists only in translation units compiled
// with AVX2 enabled (`__AVX2__`): the lane-kernel dispatcher
// (core/lane_kernels.cpp) builds its 8-wide kernel table in a dedicated
// -mavx2 TU and selects it at runtime behind a cpuid probe, so a baseline
// binary never executes a VEX-256 instruction on a machine without AVX2.
// Keeping the type out of non-AVX2 TUs (instead of a scalar stand-in)
// makes the ODR hazard of mixed-ISA template instantiation impossible by
// construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#define LDDP_SIMD_SSE2 1
#else
#define LDDP_SIMD_SSE2 0
#endif

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace lddp::simd {

/// Runtime probe for AVX2 support on the executing machine. Compile-time
/// AVX2 (`__AVX2__`, e.g. an LDDP_NATIVE build on an AVX2 host) makes the
/// answer static; otherwise the compiler's cpuid intrinsic is consulted
/// once. Non-x86 targets report false.
inline bool cpu_supports_avx2() {
#if defined(__AVX2__)
  return true;
#elif defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

#if LDDP_SIMD_SSE2

struct I32x4 {
  __m128i v;
  static constexpr std::size_t kLanes = 4;

  static I32x4 load(const std::int32_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  /// `p` must be 16-byte aligned (lane-major tables and batch scratch are
  /// 64-byte aligned with vector-multiple strides, so every row offset
  /// qualifies).
  static I32x4 load_aligned(const std::int32_t* p) {
    return {_mm_load_si128(reinterpret_cast<const __m128i*>(p))};
  }
  static I32x4 broadcast(std::int32_t x) { return {_mm_set1_epi32(x)}; }
  void store(std::int32_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  void store_aligned(std::int32_t* p) const {
    _mm_store_si128(reinterpret_cast<__m128i*>(p), v);
  }
};

inline I32x4 add(I32x4 a, I32x4 b) { return {_mm_add_epi32(a.v, b.v)}; }
// SSE2 lacks pminsd/pmaxsd (SSE4.1); select on the signed compare instead.
inline I32x4 min(I32x4 a, I32x4 b) {
  const __m128i lt = _mm_cmplt_epi32(a.v, b.v);
  return {_mm_or_si128(_mm_and_si128(lt, a.v), _mm_andnot_si128(lt, b.v))};
}
inline I32x4 max(I32x4 a, I32x4 b) {
  const __m128i gt = _mm_cmpgt_epi32(a.v, b.v);
  return {_mm_or_si128(_mm_and_si128(gt, a.v), _mm_andnot_si128(gt, b.v))};
}
inline I32x4 cmpeq(I32x4 a, I32x4 b) { return {_mm_cmpeq_epi32(a.v, b.v)}; }
/// Per-lane select: mask lanes must be all-ones or all-zeros (a compare
/// result). Returns mask ? a : b.
inline I32x4 blend(I32x4 mask, I32x4 a, I32x4 b) {
  return {_mm_or_si128(_mm_and_si128(mask.v, a.v),
                       _mm_andnot_si128(mask.v, b.v))};
}

/// Lane mask of byte equality between two packed 4-char words: lane k is
/// all-ones iff byte k of `a4` equals byte k of `b4` (byte 0 = lane 0).
/// Used by the sequence kernels to vectorize a[i-1] == b[j-1].
inline I32x4 byte_eq_mask(std::uint32_t a4, std::uint32_t b4) {
  const __m128i a = _mm_cvtsi32_si128(static_cast<int>(a4));
  const __m128i b = _mm_cvtsi32_si128(static_cast<int>(b4));
  const __m128i eq = _mm_cmpeq_epi8(a, b);
  const __m128i lo = _mm_unpacklo_epi8(eq, eq);
  return {_mm_unpacklo_epi16(lo, lo)};
}

#else  // scalar fallback

struct I32x4 {
  std::int32_t v[4];
  static constexpr std::size_t kLanes = 4;

  static I32x4 load(const std::int32_t* p) {
    I32x4 r;
    std::memcpy(r.v, p, sizeof r.v);
    return r;
  }
  static I32x4 load_aligned(const std::int32_t* p) { return load(p); }
  static I32x4 broadcast(std::int32_t x) { return {{x, x, x, x}}; }
  void store(std::int32_t* p) const { std::memcpy(p, v, sizeof v); }
  void store_aligned(std::int32_t* p) const { store(p); }
};

inline I32x4 add(I32x4 a, I32x4 b) {
  I32x4 r;
  for (int k = 0; k < 4; ++k) r.v[k] = a.v[k] + b.v[k];
  return r;
}
inline I32x4 min(I32x4 a, I32x4 b) {
  I32x4 r;
  for (int k = 0; k < 4; ++k) r.v[k] = a.v[k] < b.v[k] ? a.v[k] : b.v[k];
  return r;
}
inline I32x4 max(I32x4 a, I32x4 b) {
  I32x4 r;
  for (int k = 0; k < 4; ++k) r.v[k] = a.v[k] > b.v[k] ? a.v[k] : b.v[k];
  return r;
}
inline I32x4 cmpeq(I32x4 a, I32x4 b) {
  I32x4 r;
  for (int k = 0; k < 4; ++k) r.v[k] = a.v[k] == b.v[k] ? -1 : 0;
  return r;
}
inline I32x4 blend(I32x4 mask, I32x4 a, I32x4 b) {
  I32x4 r;
  for (int k = 0; k < 4; ++k) r.v[k] = mask.v[k] ? a.v[k] : b.v[k];
  return r;
}
inline I32x4 byte_eq_mask(std::uint32_t a4, std::uint32_t b4) {
  I32x4 r;
  for (int k = 0; k < 4; ++k) {
    const std::uint32_t ac = (a4 >> (8 * k)) & 0xffu;
    const std::uint32_t bc = (b4 >> (8 * k)) & 0xffu;
    r.v[k] = ac == bc ? -1 : 0;
  }
  return r;
}

#endif  // LDDP_SIMD_SSE2

#if defined(__AVX2__)

/// 8-lane AVX2 tier. Deliberately defined ONLY under `__AVX2__` — see the
/// file comment. Semantics mirror I32x4 exactly; all ops are exact signed
/// int32, so lane results stay bit-identical to the scalar recurrence.
struct I32x8 {
  __m256i v;
  static constexpr std::size_t kLanes = 8;

  static I32x8 load(const std::int32_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  /// `p` must be 32-byte aligned.
  static I32x8 load_aligned(const std::int32_t* p) {
    return {_mm256_load_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static I32x8 broadcast(std::int32_t x) { return {_mm256_set1_epi32(x)}; }
  void store(std::int32_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  void store_aligned(std::int32_t* p) const {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), v);
  }
};

inline I32x8 add(I32x8 a, I32x8 b) { return {_mm256_add_epi32(a.v, b.v)}; }
inline I32x8 min(I32x8 a, I32x8 b) { return {_mm256_min_epi32(a.v, b.v)}; }
inline I32x8 max(I32x8 a, I32x8 b) { return {_mm256_max_epi32(a.v, b.v)}; }
inline I32x8 cmpeq(I32x8 a, I32x8 b) {
  return {_mm256_cmpeq_epi32(a.v, b.v)};
}
/// Per-lane select: mask lanes must be all-ones or all-zeros. mask ? a : b.
inline I32x8 blend(I32x8 mask, I32x8 a, I32x8 b) {
  return {_mm256_blendv_epi8(b.v, a.v, mask.v)};
}

#endif  // __AVX2__

/// Packs 4 consecutive chars ascending from `p` (byte 0 = p[0]).
inline std::uint32_t load4(const char* p) {
  std::uint32_t x;
  std::memcpy(&x, p, 4);
  return x;
}

/// Packs 4 chars at descending addresses from `p` (byte 0 = p[0], byte 1 =
/// p[-1], ...) — the access pattern of the second sequence along an
/// anti-diagonal.
inline std::uint32_t load4_reversed(const char* p) {
  std::uint32_t x;
  std::memcpy(&x, p - 3, 4);
  return (x >> 24) | ((x >> 8) & 0x0000ff00u) | ((x << 8) & 0x00ff0000u) |
         (x << 24);
}

}  // namespace lddp::simd
