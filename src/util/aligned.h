// 64-byte-aligned growable buffer for SIMD scratch and lane-major tables.
//
// One cache line of alignment covers every vector tier in use: 16-byte
// SSE2 and 32-byte AVX2 aligned loads/stores are both valid at any
// element offset that is a multiple of the vector width, provided the
// base is 64-byte aligned. Elements are left uninitialized — every user
// overwrites the buffer before reading it (scratch is fully packed, lane
// grids fully computed), and skipping the zero-fill is the point of a
// scratch buffer.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace lddp {

inline constexpr std::size_t kSimdAlign = 64;

template <typename T>
class AlignedBuf {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "AlignedBuf holds raw uninitialized storage");

 public:
  AlignedBuf() = default;
  explicit AlignedBuf(std::size_t n) { ensure(n); }
  ~AlignedBuf() { release(); }

  AlignedBuf(const AlignedBuf&) = delete;
  AlignedBuf& operator=(const AlignedBuf&) = delete;
  AlignedBuf(AlignedBuf&& o) noexcept
      : ptr_(std::exchange(o.ptr_, nullptr)),
        cap_(std::exchange(o.cap_, 0)) {}
  AlignedBuf& operator=(AlignedBuf&& o) noexcept {
    if (this != &o) {
      release();
      ptr_ = std::exchange(o.ptr_, nullptr);
      cap_ = std::exchange(o.cap_, 0);
    }
    return *this;
  }

  /// Grows to hold at least `n` elements (contents are NOT preserved —
  /// this is scratch, not a vector) and returns the aligned base.
  T* ensure(std::size_t n) {
    if (n > cap_) {
      release();
      ptr_ = static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t{kSimdAlign}));
      cap_ = n;
    }
    return ptr_;
  }

  T* data() { return ptr_; }
  const T* data() const { return ptr_; }
  std::size_t capacity() const { return cap_; }

 private:
  void release() {
    if (ptr_ != nullptr)
      ::operator delete(ptr_, std::align_val_t{kSimdAlign});
    ptr_ = nullptr;
    cap_ = 0;
  }

  T* ptr_ = nullptr;
  std::size_t cap_ = 0;
};

}  // namespace lddp
