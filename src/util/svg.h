// Tiny SVG emitter — enough to regenerate the paper's schematic figures
// (cell grids with fills, labels and arrows) from the framework's own
// layout and ownership logic. Header-only, no dependencies.
#pragma once

#include <fstream>
#include <sstream>
#include <string>

#include "util/check.h"

namespace lddp {

class SvgWriter {
 public:
  SvgWriter(double width, double height) : width_(width), height_(height) {
    LDDP_CHECK(width > 0 && height > 0);
  }

  void rect(double x, double y, double w, double h, const std::string& fill,
            const std::string& stroke = "#333", double stroke_width = 1.0) {
    body_ << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
          << "\" height=\"" << h << "\" fill=\"" << fill << "\" stroke=\""
          << stroke << "\" stroke-width=\"" << stroke_width << "\"/>\n";
  }

  void text(double x, double y, const std::string& s, double size = 12,
            const std::string& fill = "#111",
            const std::string& anchor = "middle") {
    body_ << "<text x=\"" << x << "\" y=\"" << y << "\" font-size=\"" << size
          << "\" font-family=\"sans-serif\" fill=\"" << fill
          << "\" text-anchor=\"" << anchor << "\">" << escape(s)
          << "</text>\n";
  }

  void line(double x1, double y1, double x2, double y2,
            const std::string& stroke = "#c00", double width = 1.5,
            bool arrow = false) {
    body_ << "<line x1=\"" << x1 << "\" y1=\"" << y1 << "\" x2=\"" << x2
          << "\" y2=\"" << y2 << "\" stroke=\"" << stroke
          << "\" stroke-width=\"" << width << "\"";
    if (arrow) {
      need_arrow_ = true;
      body_ << " marker-end=\"url(#arrow)\"";
    }
    body_ << "/>\n";
  }

  void save(const std::string& path) const {
    std::ofstream out(path);
    LDDP_CHECK_MSG(out.good(), "cannot open " << path);
    out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_
        << "\" height=\"" << height_ << "\" viewBox=\"0 0 " << width_ << ' '
        << height_ << "\">\n";
    if (need_arrow_) {
      out << "<defs><marker id=\"arrow\" markerWidth=\"8\" markerHeight=\"8\""
             " refX=\"6\" refY=\"3\" orient=\"auto\">"
             "<path d=\"M0,0 L6,3 L0,6 z\" fill=\"#c00\"/></marker></defs>\n";
    }
    out << body_.str() << "</svg>\n";
    LDDP_CHECK_MSG(out.good(), "short write to " << path);
  }

  std::string str() const { return body_.str(); }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      switch (c) {
        case '<':
          out += "&lt;";
          break;
        case '>':
          out += "&gt;";
          break;
        case '&':
          out += "&amp;";
          break;
        default:
          out += c;
      }
    }
    return out;
  }

  double width_, height_;
  std::ostringstream body_;
  bool need_arrow_ = false;
};

}  // namespace lddp
