// Small descriptive-statistics helpers for benchmark reporting and the
// empirical tuner. Header-only; everything operates on std::span so callers
// never copy their sample vectors.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "util/check.h"

namespace lddp {

inline double mean(std::span<const double> xs) {
  LDDP_CHECK(!xs.empty());
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Population standard deviation (n in the denominator); fine for the
/// repeated-measurement use cases here.
inline double stddev(std::span<const double> xs) {
  LDDP_CHECK(!xs.empty());
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

/// Median; copies the input (samples are tiny).
inline double median(std::span<const double> xs) {
  LDDP_CHECK(!xs.empty());
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo = *std::max_element(
      v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

inline double min_of(std::span<const double> xs) {
  LDDP_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

inline double max_of(std::span<const double> xs) {
  LDDP_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

/// Index of the minimum element — used by the concave-sweep tuner to pick
/// the optimal t_switch / t_share from a sampled curve.
inline std::size_t argmin(std::span<const double> xs) {
  LDDP_CHECK(!xs.empty());
  return static_cast<std::size_t>(
      std::distance(xs.begin(), std::min_element(xs.begin(), xs.end())));
}

/// True if the sampled curve is "concave-shaped" in the loose empirical
/// sense the paper relies on (Fig 7): it decreases to a global minimum and
/// increases afterwards, allowing `slack` relative wobble between adjacent
/// samples to absorb measurement noise.
inline bool is_valley_shaped(std::span<const double> xs, double slack = 0.05) {
  if (xs.size() < 3) return true;
  const std::size_t k = argmin(xs);
  for (std::size_t i = 0; i + 1 <= k && k > 0 && i + 1 <= xs.size() - 1; ++i) {
    if (i + 1 > k) break;
    if (xs[i + 1] > xs[i] * (1.0 + slack)) return false;  // should descend
  }
  for (std::size_t i = k; i + 1 < xs.size(); ++i) {
    if (xs[i + 1] < xs[i] * (1.0 - slack)) return false;  // should ascend
  }
  return true;
}

}  // namespace lddp
