// Maximal all-ones square — the classic "largest square sub-matrix"
// DP: side(i,j) = grid(i,j) ? 1 + min(side(W), side(NW), side(N)) : 0.
// Contributing set {W, NW, N} — anti-diagonal pattern.
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/front_span.h"
#include "core/lane_kernels.h"
#include "core/problem.h"
#include "tables/grid.h"
#include "util/aligned.h"
#include "util/rng.h"

namespace lddp::problems {

class MaxSquareProblem {
 public:
  using Value = std::int32_t;

  explicit MaxSquareProblem(Grid<std::uint8_t> bits)
      : bits_(std::move(bits)) {}

  std::size_t rows() const { return bits_.rows(); }
  std::size_t cols() const { return bits_.cols(); }

  ContributingSet deps() const {
    return ContributingSet{Dep::kW, Dep::kNW, Dep::kN};
  }

  Value boundary() const { return 0; }

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    if (!bits_.at(i, j)) return 0;
    if (i == 0 || j == 0) return 1;
    return 1 + std::min(nb.w, std::min(nb.nw, nb.n));
  }

  /// Batch-front hook for anti-diagonal spans: a branchless lane loop
  /// over the packed neighbour spans (the bit grid is strided along the
  /// diagonal, so the win is the hoisted interior/boundary split and the
  /// dense min over three unit-stride spans, not SIMD).
  bool compute_front(const FrontSpan<Value>& s) const {
    if (s.lanes != 1) return false;  // interleaved spans: lane kernels
    if (s.di != 1 || s.dj != -1) return false;
    const std::uint8_t* const bit = &bits_.at(s.i0, s.j0);
    const std::ptrdiff_t stride =
        static_cast<std::ptrdiff_t>(bits_.cols()) - 1;
    for (std::size_t k = 0; k < s.len; ++k) {
      const Value mn = std::min(s.w[k], std::min(s.nw[k], s.n[k]));
      s.out[k] =
          bit[static_cast<std::ptrdiff_t>(k) * stride] != 0 ? mn + 1 : 0;
    }
    return true;
  }

  cpu::WorkProfile work() const { return cpu::WorkProfile{10.0, 40.0, 17.0}; }
  std::size_t input_bytes() const { return bits_.size(); }
  std::size_t result_bytes() const { return cols() * sizeof(Value); }

  const Grid<std::uint8_t>& bits() const { return bits_; }

 private:
  Grid<std::uint8_t> bits_;
};

/// Random 0/1 grid with the given fill probability.
inline Grid<std::uint8_t> random_bit_grid(std::size_t rows, std::size_t cols,
                                          std::uint64_t seed,
                                          double p_one = 0.7) {
  Grid<std::uint8_t> g(rows, cols);
  Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      g.at(i, j) = rng.uniform01() < p_one ? 1 : 0;
  return g;
}

/// Largest square side from a solved table.
inline std::int32_t max_square_side(const Grid<std::int32_t>& t) {
  std::int32_t best = 0;
  for (std::size_t i = 0; i < t.rows(); ++i)
    for (std::size_t j = 0; j < t.cols(); ++j)
      best = std::max(best, t.at(i, j));
  return best;
}

/// Brute-force reference: checks every candidate square (small inputs).
inline std::int32_t max_square_brute_force(const Grid<std::uint8_t>& g) {
  const std::size_t n = g.rows(), m = g.cols();
  std::int32_t best = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const std::size_t limit = std::min(n - i, m - j);
      for (std::size_t side = static_cast<std::size_t>(best) + 1;
           side <= limit; ++side) {
        bool all_ones = true;
        for (std::size_t di = 0; di < side && all_ones; ++di)
          for (std::size_t dj = 0; dj < side && all_ones; ++dj)
            all_ones = g.at(i + di, j + dj) != 0;
        if (!all_ones) break;
        best = static_cast<std::int32_t>(side);
      }
    }
  }
  return best;
}

}  // namespace lddp::problems

namespace lddp::lanes {

/// Inter-solve lane execution: the kMaxSquare kernel over each row's
/// occupancy bits widened to interleaved int32 (0 / 1). Interior cells
/// only (i, j >= 1), so the kernel's branchless form matches the scalar
/// recurrence exactly.
template <>
struct LaneTraits<problems::MaxSquareProblem> {
  static constexpr bool enabled = true;

  struct State {
    RowKernelFn fn = nullptr;
    std::size_t min_cols = 0;
    AlignedBuf<std::int32_t> bits;  ///< row i's bits, widened + interleaved
  };

  static State make(const problems::MaxSquareProblem* const* /*lanes*/,
                    std::size_t width, std::size_t /*min_rows*/,
                    std::size_t min_cols) {
    State st;
    st.fn = row_kernel(RowOp::kMaxSquare, width);
    st.min_cols = min_cols;
    st.bits.ensure(min_cols * width);
    return st;
  }

  static void fill_row(State& st,
                       const problems::MaxSquareProblem* const* lanes,
                       std::size_t width, std::size_t i) {
    std::int32_t* const b = st.bits.data();
    for (std::size_t j = 1; j < st.min_cols; ++j)
      for (std::size_t s = 0; s < width; ++s)
        b[j * width + s] = lanes[s]->bits().at(i, j) != 0 ? 1 : 0;
  }

  static void run(const State& st, RowCtx<std::int32_t> ctx) {
    ctx.col_b = st.bits.data();
    st.fn(ctx);
  }
};

}  // namespace lddp::lanes
