// Global alignment with affine gap costs (Gotoh's algorithm) — the
// "pairwise sequence alignment with affine gap cost" workload the paper's
// introduction cites from Chowdhury & Ramachandran [8].
//
// Three mutually-recursive tables (M: match/mismatch ending, X: gap in b,
// Y: gap in a) are fused into one LDDP-Plus table whose Value carries all
// three scores; the cell update reads W, NW and N exactly once each, so
// the problem is a regular anti-diagonal LDDP-Plus instance:
//
//   M(i,j) = max(M, X, Y)(i-1, j-1) + sub(a_i, b_j)
//   X(i,j) = max(M(i, j-1) - open,  X(i, j-1) - extend)
//   Y(i,j) = max(M(i-1, j) - open,  Y(i-1, j) - extend)
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/front_span.h"
#include "core/problem.h"
#include "tables/grid.h"
#include "util/check.h"

namespace lddp::problems {

struct AffineScores {
  std::int32_t match = 2;
  std::int32_t mismatch = -1;
  std::int32_t gap_open = -4;    ///< charged on the first residue of a gap
  std::int32_t gap_extend = -1;  ///< charged on each further residue
};

/// The three Gotoh states; kNegInf stands for "state unreachable".
struct GotohCell {
  std::int32_t m;
  std::int32_t x;  ///< gap in b (horizontal move)
  std::int32_t y;  ///< gap in a (vertical move)

  static constexpr std::int32_t kNegInf = INT32_MIN / 4;

  std::int32_t best() const { return std::max(m, std::max(x, y)); }
  bool operator==(const GotohCell&) const = default;
};
static_assert(std::is_trivially_copyable_v<GotohCell>);

class GotohProblem {
 public:
  using Value = GotohCell;

  GotohProblem(std::string a, std::string b, AffineScores scores = {})
      : a_(std::move(a)), b_(std::move(b)), s_(scores) {}

  std::size_t rows() const { return a_.size() + 1; }
  std::size_t cols() const { return b_.size() + 1; }

  ContributingSet deps() const {
    return ContributingSet{Dep::kW, Dep::kNW, Dep::kN};  // anti-diagonal
  }

  Value boundary() const {
    return GotohCell{GotohCell::kNegInf, GotohCell::kNegInf,
                     GotohCell::kNegInf};
  }

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    GotohCell c;
    if (i == 0 && j == 0) return GotohCell{0, GotohCell::kNegInf,
                                           GotohCell::kNegInf};
    if (i == 0) {
      // Only a gap in a can reach the top edge.
      c.m = GotohCell::kNegInf;
      c.y = GotohCell::kNegInf;
      c.x = s_.gap_open +
            static_cast<std::int32_t>(j - 1) * s_.gap_extend;
      return c;
    }
    if (j == 0) {
      c.m = GotohCell::kNegInf;
      c.x = GotohCell::kNegInf;
      c.y = s_.gap_open +
            static_cast<std::int32_t>(i - 1) * s_.gap_extend;
      return c;
    }
    const std::int32_t sub =
        a_[i - 1] == b_[j - 1] ? s_.match : s_.mismatch;
    c.m = nb.nw.best() + sub;
    c.x = std::max(std::max(nb.w.m, nb.w.y) + s_.gap_open,
                   nb.w.x + s_.gap_extend);
    c.y = std::max(std::max(nb.n.m, nb.n.x) + s_.gap_open,
                   nb.n.y + s_.gap_extend);
    return c;
  }

  /// Batch-front hook for anti-diagonal spans: a branchless lane loop
  /// over the three packed GotohCell spans (the 12-byte struct value rules
  /// out lane-parallel SIMD, but the hoisted edge handling and dense
  /// sequential reads still beat the per-cell path).
  bool compute_front(const FrontSpan<Value>& s) const {
    if (s.lanes != 1) return false;  // interleaved spans: lane kernels
    if (s.di != 1 || s.dj != -1) return false;
    const char* const pa = a_.data() + (s.i0 - 1);
    const char* const pb = b_.data() + (s.j0 - 1);
    for (std::size_t k = 0; k < s.len; ++k) {
      const std::int32_t sub =
          pa[k] == pb[-static_cast<std::ptrdiff_t>(k)] ? s_.match
                                                       : s_.mismatch;
      GotohCell c;
      c.m = s.nw[k].best() + sub;
      c.x = std::max(std::max(s.w[k].m, s.w[k].y) + s_.gap_open,
                     s.w[k].x + s_.gap_extend);
      c.y = std::max(std::max(s.n[k].m, s.n[k].x) + s_.gap_open,
                     s.n[k].y + s_.gap_extend);
      s.out[k] = c;
    }
    return true;
  }

  cpu::WorkProfile work() const { return cpu::WorkProfile{26.0, 90.0, 56.0}; }
  std::size_t input_bytes() const { return a_.size() + b_.size(); }
  std::size_t result_bytes() const { return cols() * sizeof(Value); }

  const std::string& a() const { return a_; }
  const std::string& b() const { return b_; }
  const AffineScores& scores() const { return s_; }

 private:
  std::string a_, b_;
  AffineScores s_;
};

/// Alignment score from a solved table (Grid or FrontierTable).
template <typename Table>
std::int32_t gotoh_score(const Table& t) {
  return t.at(t.rows() - 1, t.cols() - 1).best();
}

/// Gapped alignment reconstructed from a solved Gotoh table by replaying
/// the three-state recurrence backwards.
struct GotohAlignment {
  std::string a, b;  ///< with '-' gaps
  std::int32_t score = 0;
};

/// `Table` is the solved Grid or a FrontierTable; at() values are bound
/// to lifetime-extended copies, so band eviction between reads is safe.
template <typename Table>
GotohAlignment gotoh_traceback(const GotohProblem& p, const Table& t) {
  const AffineScores& s = p.scores();
  GotohAlignment out;
  std::size_t i = p.rows() - 1, j = p.cols() - 1;
  const GotohCell corner = t.at(i, j);
  out.score = corner.best();
  // Current state: 0 = M, 1 = X (gap in a's row, consumes b), 2 = Y.
  int state = corner.m >= corner.x && corner.m >= corner.y ? 0
              : corner.x >= corner.y                       ? 1
                                                           : 2;
  while (i > 0 || j > 0) {
    if (state == 0) {
      LDDP_CHECK_MSG(i > 0 && j > 0, "traceback: M state at table edge");
      out.a += p.a()[i - 1];
      out.b += p.b()[j - 1];
      const GotohCell prev = t.at(i - 1, j - 1);
      const std::int32_t need =
          t.at(i, j).m -
          (p.a()[i - 1] == p.b()[j - 1] ? s.match : s.mismatch);
      state = prev.m == need ? 0 : prev.x == need ? 1 : 2;
      LDDP_CHECK_MSG(prev.best() == need || prev.m == need ||
                         prev.x == need || prev.y == need,
                     "traceback: inconsistent M predecessor");
      --i;
      --j;
    } else if (state == 1) {
      LDDP_CHECK_MSG(j > 0, "traceback: X state at left edge");
      out.a += '-';
      out.b += p.b()[j - 1];
      const GotohCell prev = t.at(i, j - 1);
      const std::int32_t x = t.at(i, j).x;
      state = prev.x + s.gap_extend == x ? 1
              : prev.m + s.gap_open == x ? 0
                                         : 2;
      --j;
    } else {
      LDDP_CHECK_MSG(i > 0, "traceback: Y state at top edge");
      out.a += p.a()[i - 1];
      out.b += '-';
      const GotohCell prev = t.at(i - 1, j);
      const std::int32_t y = t.at(i, j).y;
      state = prev.y + s.gap_extend == y ? 2
              : prev.m + s.gap_open == y ? 0
                                         : 1;
      --i;
    }
  }
  std::reverse(out.a.begin(), out.a.end());
  std::reverse(out.b.begin(), out.b.end());
  return out;
}

/// Independent full-table serial reference (classic three-matrix Gotoh).
///
/// Kept as explicit full tables rather than three parallel rolling rows:
/// the rolling-row form has a loop-carried dependence through cx[j-1] that
/// GCC 12's -O3 loop-distribution pass splits incorrectly, yielding wrong
/// scores. The full-table form carries the same recurrence without
/// tempting that transformation and is what the tests diff against.
inline std::int32_t gotoh_reference(const std::string& a,
                                    const std::string& b,
                                    AffineScores s = {}) {
  constexpr std::int32_t kNegInf = GotohCell::kNegInf;
  const std::size_t n = a.size(), m = b.size();
  std::vector<std::vector<std::int32_t>> M(
      n + 1, std::vector<std::int32_t>(m + 1, kNegInf));
  auto X = M, Y = M;
  M[0][0] = 0;
  for (std::size_t j = 1; j <= m; ++j)
    X[0][j] = s.gap_open + static_cast<std::int32_t>(j - 1) * s.gap_extend;
  for (std::size_t i = 1; i <= n; ++i)
    Y[i][0] = s.gap_open + static_cast<std::int32_t>(i - 1) * s.gap_extend;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const std::int32_t sub = a[i - 1] == b[j - 1] ? s.match : s.mismatch;
      M[i][j] = std::max(M[i - 1][j - 1],
                         std::max(X[i - 1][j - 1], Y[i - 1][j - 1])) +
                sub;
      X[i][j] = std::max(std::max(M[i][j - 1], Y[i][j - 1]) + s.gap_open,
                         X[i][j - 1] + s.gap_extend);
      Y[i][j] = std::max(std::max(M[i - 1][j], X[i - 1][j]) + s.gap_open,
                         Y[i - 1][j] + s.gap_extend);
    }
  }
  return std::max(M[n][m], std::max(X[n][m], Y[n][m]));
}

}  // namespace lddp::problems
