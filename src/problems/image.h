// Image substrate for the Floyd–Steinberg case study: 8-bit grayscale
// images, PGM (P5/P2) I/O, and deterministic synthetic generators standing
// in for the paper's test images (any image of the right size exercises the
// identical dependency structure — dithering touches every pixel once).
#pragma once

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "tables/grid.h"
#include "util/check.h"
#include "util/rng.h"

namespace lddp::problems {

using GrayImage = Grid<std::uint8_t>;

/// Linear horizontal+vertical gradient — smooth ramps are the classic
/// dithering stress case (banding without error diffusion).
inline GrayImage gradient_image(std::size_t rows, std::size_t cols) {
  GrayImage img(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      img.at(i, j) = static_cast<std::uint8_t>(
          (i * 255 / (rows > 1 ? rows - 1 : 1) +
           j * 255 / (cols > 1 ? cols - 1 : 1)) /
          2);
  return img;
}

/// Band-limited pseudo-random "plasma": sums of integer sinusoids, fully
/// deterministic in the seed.
inline GrayImage plasma_image(std::size_t rows, std::size_t cols,
                              std::uint64_t seed) {
  GrayImage img(rows, cols);
  Rng rng(seed);
  const double fx1 = rng.uniform_double(0.01, 0.08);
  const double fy1 = rng.uniform_double(0.01, 0.08);
  const double fx2 = rng.uniform_double(0.002, 0.02);
  const double fy2 = rng.uniform_double(0.002, 0.02);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const double v = 0.5 + 0.25 * std::sin(fx1 * static_cast<double>(j) +
                                             fy1 * static_cast<double>(i)) +
                       0.25 * std::sin(fx2 * static_cast<double>(j) -
                                       fy2 * static_cast<double>(i));
      img.at(i, j) = static_cast<std::uint8_t>(
          std::min(255.0, std::max(0.0, v * 255.0)));
    }
  }
  return img;
}

/// Uniform noise image.
inline GrayImage noise_image(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  GrayImage img(rows, cols);
  Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      img.at(i, j) = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return img;
}

/// Writes a binary PGM (P5).
inline void write_pgm(const GrayImage& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  LDDP_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << "P5\n" << img.cols() << ' ' << img.rows() << "\n255\n";
  out.write(reinterpret_cast<const char*>(img.data()),
            static_cast<std::streamsize>(img.size()));
  LDDP_CHECK_MSG(out.good(), "short write to " << path);
}

/// Reads a PGM in either P5 (binary) or P2 (ASCII) form.
inline GrayImage read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  LDDP_CHECK_MSG(in.good(), "cannot open " << path);
  std::string magic;
  in >> magic;
  LDDP_CHECK_MSG(magic == "P5" || magic == "P2",
                 path << ": unsupported PGM magic '" << magic << "'");
  // Skip whitespace and '#' comment lines between header tokens.
  auto next_int = [&in, &path]() -> long {
    for (;;) {
      int c = in.peek();
      if (c == '#') {
        std::string line;
        std::getline(in, line);
      } else if (std::isspace(c)) {
        in.get();
      } else {
        break;
      }
      LDDP_CHECK_MSG(in.good(), path << ": truncated PGM header");
    }
    long v = 0;
    in >> v;
    LDDP_CHECK_MSG(in.good(), path << ": malformed PGM header");
    return v;
  };
  const long w = next_int(), h = next_int(), maxval = next_int();
  LDDP_CHECK_MSG(w > 0 && h > 0, path << ": bad dimensions");
  LDDP_CHECK_MSG(maxval > 0 && maxval <= 255,
                 path << ": only 8-bit PGM supported");
  GrayImage img(static_cast<std::size_t>(h), static_cast<std::size_t>(w));
  if (magic == "P5") {
    in.get();  // single whitespace after maxval
    in.read(reinterpret_cast<char*>(img.data()),
            static_cast<std::streamsize>(img.size()));
    LDDP_CHECK_MSG(in.gcount() == static_cast<std::streamsize>(img.size()),
                   path << ": truncated PGM data");
  } else {
    for (std::size_t i = 0; i < img.rows(); ++i)
      for (std::size_t j = 0; j < img.cols(); ++j) {
        long v = 0;
        in >> v;
        LDDP_CHECK_MSG(in.good() || in.eof(), path << ": truncated P2 data");
        img.at(i, j) = static_cast<std::uint8_t>(v);
      }
  }
  return img;
}

}  // namespace lddp::problems
