// Sequence-alignment problems beyond the paper's case studies — the
// bioinformatics workloads its introduction motivates (pairwise alignment):
// Needleman–Wunsch global alignment and Smith–Waterman local alignment,
// both anti-diagonal, with host-side traceback for the example programs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/problem.h"
#include "tables/grid.h"
#include "util/rng.h"

namespace lddp::problems {

struct AlignmentScores {
  std::int32_t match = 2;
  std::int32_t mismatch = -1;
  std::int32_t gap = -2;
};

/// Global alignment with linear gap cost. deps {W, NW, N} — anti-diagonal.
class NeedlemanWunschProblem {
 public:
  using Value = std::int32_t;

  NeedlemanWunschProblem(std::string a, std::string b,
                         AlignmentScores scores = {})
      : a_(std::move(a)), b_(std::move(b)), s_(scores) {}

  std::size_t rows() const { return a_.size() + 1; }
  std::size_t cols() const { return b_.size() + 1; }
  ContributingSet deps() const {
    return ContributingSet{Dep::kW, Dep::kNW, Dep::kN};
  }
  Value boundary() const { return 0; }

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    if (i == 0) return static_cast<Value>(j) * s_.gap;
    if (j == 0) return static_cast<Value>(i) * s_.gap;
    const Value diag =
        nb.nw + (a_[i - 1] == b_[j - 1] ? s_.match : s_.mismatch);
    const Value up = nb.n + s_.gap;
    const Value left = nb.w + s_.gap;
    return std::max(diag, std::max(up, left));
  }

  cpu::WorkProfile work() const { return cpu::WorkProfile{16.0, 60.0, 20.0}; }
  std::size_t input_bytes() const { return a_.size() + b_.size(); }

  const std::string& a() const { return a_; }
  const std::string& b() const { return b_; }
  const AlignmentScores& scores() const { return s_; }

 private:
  std::string a_, b_;
  AlignmentScores s_;
};

/// Local alignment (clamped at zero). deps {W, NW, N} — anti-diagonal.
class SmithWatermanProblem {
 public:
  using Value = std::int32_t;

  SmithWatermanProblem(std::string a, std::string b,
                       AlignmentScores scores = {})
      : a_(std::move(a)), b_(std::move(b)), s_(scores) {}

  std::size_t rows() const { return a_.size() + 1; }
  std::size_t cols() const { return b_.size() + 1; }
  ContributingSet deps() const {
    return ContributingSet{Dep::kW, Dep::kNW, Dep::kN};
  }
  Value boundary() const { return 0; }

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    if (i == 0 || j == 0) return 0;
    const Value diag =
        nb.nw + (a_[i - 1] == b_[j - 1] ? s_.match : s_.mismatch);
    const Value up = nb.n + s_.gap;
    const Value left = nb.w + s_.gap;
    return std::max<Value>(0, std::max(diag, std::max(up, left)));
  }

  cpu::WorkProfile work() const { return cpu::WorkProfile{18.0, 64.0, 20.0}; }
  std::size_t input_bytes() const { return a_.size() + b_.size(); }

  const std::string& a() const { return a_; }
  const std::string& b() const { return b_; }
  const AlignmentScores& scores() const { return s_; }

 private:
  std::string a_, b_;
  AlignmentScores s_;
};

/// A pair of gapped strings reconstructed from a solved table.
struct Alignment {
  std::string a;      ///< first sequence with '-' gaps
  std::string b;      ///< second sequence with '-' gaps
  std::int32_t score = 0;
};

/// Traceback for Needleman–Wunsch from the bottom-right corner. `Table`
/// is any table with at(i, j) — the solved Grid, or a FrontierTable whose
/// band rematerialization serves the walked cells on demand.
template <typename Table>
Alignment nw_traceback(const NeedlemanWunschProblem& p, const Table& t) {
  const AlignmentScores& s = p.scores();
  Alignment out;
  std::size_t i = p.rows() - 1, j = p.cols() - 1;
  out.score = t.at(i, j);
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0 &&
        t.at(i, j) == t.at(i - 1, j - 1) + (p.a()[i - 1] == p.b()[j - 1]
                                                ? s.match
                                                : s.mismatch)) {
      out.a += p.a()[i - 1];
      out.b += p.b()[j - 1];
      --i;
      --j;
    } else if (i > 0 && t.at(i, j) == t.at(i - 1, j) + s.gap) {
      out.a += p.a()[i - 1];
      out.b += '-';
      --i;
    } else {
      LDDP_CHECK_MSG(j > 0, "traceback stuck: inconsistent table");
      out.a += '-';
      out.b += p.b()[j - 1];
      --j;
    }
  }
  std::reverse(out.a.begin(), out.a.end());
  std::reverse(out.b.begin(), out.b.end());
  return out;
}

/// Maximum cell of a Smith–Waterman table (the local-alignment score).
/// The ascending scan order is kept for tie determinism across tiers; on
/// a FrontierTable it rematerializes bands at geometrically growing
/// widths (the table's doubling policy bounds the recompute).
template <typename Table>
std::int32_t sw_best_score(const Table& t) {
  std::int32_t best = 0;
  for (std::size_t i = 0; i < t.rows(); ++i)
    for (std::size_t j = 0; j < t.cols(); ++j) best = std::max(best, t.at(i, j));
  return best;
}

/// Local alignment reconstructed from a Smith–Waterman table: walk back
/// from the maximum cell until a zero cell.
template <typename Table>
Alignment sw_traceback(const SmithWatermanProblem& p, const Table& t) {
  const AlignmentScores& s = p.scores();
  std::size_t bi = 0, bj = 0;
  for (std::size_t i = 0; i < t.rows(); ++i)
    for (std::size_t j = 0; j < t.cols(); ++j)
      if (t.at(i, j) > t.at(bi, bj)) {
        bi = i;
        bj = j;
      }
  Alignment out;
  out.score = t.at(bi, bj);
  std::size_t i = bi, j = bj;
  while (i > 0 && j > 0 && t.at(i, j) > 0) {
    // Values are read fresh each step (by value): a FrontierTable may
    // evict the band a previous read was served from.
    const std::int32_t v = t.at(i, j);
    if (v == t.at(i - 1, j - 1) +
                 (p.a()[i - 1] == p.b()[j - 1] ? s.match : s.mismatch)) {
      out.a += p.a()[i - 1];
      out.b += p.b()[j - 1];
      --i;
      --j;
    } else if (v == t.at(i - 1, j) + s.gap) {
      out.a += p.a()[i - 1];
      out.b += '-';
      --i;
    } else {
      LDDP_CHECK_MSG(v == t.at(i, j - 1) + s.gap,
                     "traceback: inconsistent SW table");
      out.a += '-';
      out.b += p.b()[j - 1];
      --j;
    }
  }
  std::reverse(out.a.begin(), out.a.end());
  std::reverse(out.b.begin(), out.b.end());
  return out;
}

/// Deterministic random sequence over the given alphabet.
inline std::string random_sequence(std::size_t length, std::uint64_t seed,
                                   const std::string& alphabet = "ACGT") {
  std::string s(length, 'A');
  Rng rng(seed);
  for (auto& c : s) c = alphabet[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(alphabet.size()) - 1))];
  return s;
}

}  // namespace lddp::problems
