// Levenshtein distance (Section VI-A, Fig 10) — anti-diagonal pattern.
//
// f follows the paper's formulation: the base cases (min(i,j) == 0) are
// encoded inside f itself, so every cell of the (|a|+1) x (|b|+1) table is
// computed by the framework.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/front_span.h"
#include "core/lane_kernels.h"
#include "core/problem.h"
#include "util/aligned.h"
#include "util/simd.h"

namespace lddp::problems {

class LevenshteinProblem {
 public:
  using Value = std::int32_t;

  LevenshteinProblem(std::string a, std::string b)
      : a_(std::move(a)), b_(std::move(b)) {}

  std::size_t rows() const { return a_.size() + 1; }
  std::size_t cols() const { return b_.size() + 1; }

  ContributingSet deps() const {
    return ContributingSet{Dep::kW, Dep::kNW, Dep::kN};  // anti-diagonal
  }

  Value boundary() const { return 0; }  // never read: f handles the edges

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    if (i == 0 || j == 0) return static_cast<Value>(i > j ? i : j);
    if (a_[i - 1] == b_[j - 1]) return nb.nw;
    const Value del = nb.n + 1;
    const Value ins = nb.w + 1;
    const Value sub = nb.nw + 1;
    Value best = del < ins ? del : ins;
    return sub < best ? sub : best;
  }

  /// Batch-front hook for anti-diagonal spans (lane k is cell
  /// (i0+k, j0-k)): 4 lanes per step, the character compare done as a
  /// packed byte compare (a ascending, b descending along the diagonal).
  /// min/+1 are reassociation-free on int32, so every lane produces
  /// exactly the scalar `compute` value. Other span shapes (the W
  /// dependency is sequential along rows) fall back to scalar.
  bool compute_front(const FrontSpan<Value>& s) const {
    if (s.lanes != 1) return false;  // interleaved spans: lane kernels
    if (s.di != 1 || s.dj != -1) return false;
    const char* const pa = a_.data() + (s.i0 - 1);
    const char* const pb = b_.data() + (s.j0 - 1);
    const simd::I32x4 one = simd::I32x4::broadcast(1);
    std::size_t k = 0;
    for (; k + 4 <= s.len; k += 4) {
      const simd::I32x4 w = simd::I32x4::load(s.w + k);
      const simd::I32x4 nw = simd::I32x4::load(s.nw + k);
      const simd::I32x4 n = simd::I32x4::load(s.n + k);
      const simd::I32x4 eq =
          simd::byte_eq_mask(simd::load4(pa + k), simd::load4_reversed(pb - k));
      const simd::I32x4 sub =
          simd::add(simd::min(simd::min(w, n), nw), one);
      simd::blend(eq, nw, sub).store(s.out + k);
    }
    for (; k < s.len; ++k) {
      if (pa[k] == pb[-static_cast<std::ptrdiff_t>(k)]) {
        s.out[k] = s.nw[k];
      } else {
        const Value best = std::min(std::min(s.w[k], s.n[k]), s.nw[k]);
        s.out[k] = best + 1;
      }
    }
    return true;
  }

  cpu::WorkProfile work() const {
    return cpu::WorkProfile{14.0, 56.0, 20.0};
  }

  std::size_t input_bytes() const { return a_.size() + b_.size(); }

  /// The distance is the bottom-right cell; a consumer downloads one row.
  std::size_t result_bytes() const { return cols() * sizeof(Value); }

  const std::string& a() const { return a_; }
  const std::string& b() const { return b_; }

 private:
  std::string a_, b_;
};

/// Textbook two-row serial implementation — an independent reference the
/// framework's serial scan is itself validated against.
inline std::int32_t levenshtein_reference(const std::string& a,
                                          const std::string& b) {
  const std::size_t m = b.size();
  std::vector<std::int32_t> prev(m + 1), cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = static_cast<std::int32_t>(j);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = static_cast<std::int32_t>(i);
    for (std::size_t j = 1; j <= m; ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1];
      } else {
        cur[j] = 1 + std::min(prev[j - 1], std::min(prev[j], cur[j - 1]));
      }
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace lddp::problems

namespace lddp::lanes {

/// Inter-solve lane execution (core/lane_cohort.h): each lane is one
/// solve; the row recurrence is the kLevenshtein kernel. The char
/// compare widens both sides to int32 with the same sign-extending
/// cast, which preserves equality exactly.
template <>
struct LaneTraits<problems::LevenshteinProblem> {
  static constexpr bool enabled = true;

  struct State {
    RowKernelFn fn = nullptr;
    AlignedBuf<std::int32_t> a;  ///< this row's a[i-1], one per lane
    AlignedBuf<std::int32_t> b;  ///< widened b[j-1], interleaved per column
  };

  static State make(const problems::LevenshteinProblem* const* lanes,
                    std::size_t width, std::size_t /*min_rows*/,
                    std::size_t min_cols) {
    State st;
    st.fn = row_kernel(RowOp::kLevenshtein, width);
    st.a.ensure(width);
    std::int32_t* const b = st.b.ensure(min_cols * width);
    for (std::size_t j = 1; j < min_cols; ++j)
      for (std::size_t s = 0; s < width; ++s)
        b[j * width + s] = static_cast<std::int32_t>(lanes[s]->b()[j - 1]);
    return st;
  }

  static void fill_row(State& st,
                       const problems::LevenshteinProblem* const* lanes,
                       std::size_t width, std::size_t i) {
    for (std::size_t s = 0; s < width; ++s)
      st.a.data()[s] = static_cast<std::int32_t>(lanes[s]->a()[i - 1]);
  }

  static void run(const State& st, RowCtx<std::int32_t> ctx) {
    ctx.lane_a = st.a.data();
    ctx.col_b = st.b.data();
    st.fn(ctx);
  }
};

}  // namespace lddp::lanes
