// Seam carving (content-aware image resizing, Avidan & Shamir) — another
// image workload with the checkerboard dependency structure: the cheapest
// vertical seam minimizes accumulated energy with moves {NW, N, NE}, i.e.
// horizontal pattern case-2.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <vector>

#include "core/front_span.h"
#include "core/lane_kernels.h"
#include "core/problem.h"
#include "problems/image.h"
#include "tables/grid.h"
#include "util/aligned.h"
#include "util/simd.h"

namespace lddp::problems {

/// Dual-gradient energy of a grayscale image (absolute central
/// differences, clamped at the borders).
inline Grid<std::int32_t> dual_gradient_energy(const GrayImage& img) {
  const std::size_t n = img.rows(), m = img.cols();
  Grid<std::int32_t> e(n, m);
  auto at = [&](std::size_t i, std::size_t j) {
    return static_cast<std::int32_t>(img.at(i, j));
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const std::int32_t dx =
          at(i, j + 1 < m ? j + 1 : j) - at(i, j > 0 ? j - 1 : j);
      const std::int32_t dy =
          at(i + 1 < n ? i + 1 : i, j) - at(i > 0 ? i - 1 : i, j);
      e.at(i, j) = std::abs(dx) + std::abs(dy);
    }
  }
  return e;
}

/// Accumulated-seam-energy DP over an energy grid.
class SeamCarveProblem {
 public:
  using Value = std::int32_t;

  explicit SeamCarveProblem(Grid<std::int32_t> energy)
      : energy_(std::move(energy)) {}

  std::size_t rows() const { return energy_.rows(); }
  std::size_t cols() const { return energy_.cols(); }

  ContributingSet deps() const {
    return ContributingSet{Dep::kNW, Dep::kN, Dep::kNE};  // horizontal case-2
  }

  Value boundary() const { return std::numeric_limits<Value>::max() / 4; }

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    const Value e = energy_.at(i, j);
    if (i == 0) return e;
    Value best = nb.n;
    if (nb.nw < best) best = nb.nw;
    if (nb.ne < best) best = nb.ne;
    return best + e;
  }

  /// Batch-front hook for row spans — identical structure to
  /// CheckerboardProblem (the two problems share the {NW, N, NE} min-plus
  /// recurrence over a contiguous per-cell cost row).
  bool compute_front(const FrontSpan<Value>& s) const {
    if (s.lanes != 1) return false;  // interleaved spans: lane kernels
    if (s.di != 0 || s.dj != 1) return false;
    const std::int32_t* const e = &energy_.at(s.i0, s.j0);
    std::size_t k = 0;
    for (; k + 4 <= s.len; k += 4) {
      const simd::I32x4 nw = simd::I32x4::load(s.nw + k);
      const simd::I32x4 n = simd::I32x4::load(s.n + k);
      const simd::I32x4 ne = simd::I32x4::load(s.ne + k);
      const simd::I32x4 best = simd::min(simd::min(n, nw), ne);
      simd::add(best, simd::I32x4::load(e + k)).store(s.out + k);
    }
    for (; k < s.len; ++k) {
      Value best = s.n[k];
      if (s.nw[k] < best) best = s.nw[k];
      if (s.ne[k] < best) best = s.ne[k];
      s.out[k] = best + e[k];
    }
    return true;
  }

  cpu::WorkProfile work() const { return cpu::WorkProfile{12.0, 44.0, 24.0}; }
  std::size_t input_bytes() const {
    return energy_.size() * sizeof(std::int32_t);
  }
  std::size_t result_bytes() const {
    // Seam extraction walks the whole accumulated table back up.
    return rows() * cols() * sizeof(Value);
  }

  const Grid<std::int32_t>& energy() const { return energy_; }

 private:
  Grid<std::int32_t> energy_;
};

/// Minimal vertical seam (one column index per row) from a solved table
/// (Grid or FrontierTable — the NE contributing set makes the frontier
/// tier's bands carry a right-hand guard for the j + 1 probes).
template <typename Table>
std::vector<std::size_t> extract_seam(const Table& t) {
  const std::size_t n = t.rows(), m = t.cols();
  std::vector<std::size_t> seam(n);
  std::size_t j = 0;
  for (std::size_t k = 1; k < m; ++k)
    if (t.at(n - 1, k) < t.at(n - 1, j)) j = k;
  seam[n - 1] = j;
  for (std::size_t i = n - 1; i > 0; --i) {
    std::size_t best = j;
    if (j > 0 && t.at(i - 1, j - 1) < t.at(i - 1, best)) best = j - 1;
    if (j + 1 < m && t.at(i - 1, j + 1) < t.at(i - 1, best)) best = j + 1;
    j = best;
    seam[i - 1] = j;
  }
  return seam;
}

/// Removes a vertical seam from an image (one pixel per row).
inline GrayImage remove_seam(const GrayImage& img,
                             const std::vector<std::size_t>& seam) {
  LDDP_CHECK(seam.size() == img.rows());
  LDDP_CHECK_MSG(img.cols() > 1, "cannot carve a single-column image");
  GrayImage out(img.rows(), img.cols() - 1);
  for (std::size_t i = 0; i < img.rows(); ++i) {
    LDDP_CHECK(seam[i] < img.cols());
    std::size_t jj = 0;
    for (std::size_t j = 0; j < img.cols(); ++j) {
      if (j == seam[i]) continue;
      out.at(i, jj++) = img.at(i, j);
    }
  }
  return out;
}

/// Total energy of a seam over the energy grid (for verification).
inline std::int64_t seam_energy(const Grid<std::int32_t>& energy,
                                const std::vector<std::size_t>& seam) {
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < seam.size(); ++i) sum += energy.at(i, seam[i]);
  return sum;
}

}  // namespace lddp::problems

namespace lddp::lanes {

/// Inter-solve lane execution — identical structure to
/// CheckerboardProblem's traits over the energy grid.
template <>
struct LaneTraits<problems::SeamCarveProblem> {
  static constexpr bool enabled = true;

  struct State {
    RowKernelFn fn = nullptr;
    std::size_t min_cols = 0;
    AlignedBuf<std::int32_t> energy;  ///< row i's energies, interleaved
  };

  static State make(const problems::SeamCarveProblem* const* /*lanes*/,
                    std::size_t width, std::size_t /*min_rows*/,
                    std::size_t min_cols) {
    State st;
    st.fn = row_kernel(RowOp::kMinPlus, width);
    st.min_cols = min_cols;
    st.energy.ensure(min_cols * width);
    return st;
  }

  static void fill_row(State& st,
                       const problems::SeamCarveProblem* const* lanes,
                       std::size_t width, std::size_t i) {
    std::int32_t* const e = st.energy.data();
    for (std::size_t j = 1; j < st.min_cols; ++j)
      for (std::size_t s = 0; s < width; ++s)
        e[j * width + s] = lanes[s]->energy().at(i, j);
  }

  static void run(const State& st, RowCtx<std::int32_t> ctx) {
    ctx.col_b = st.energy.data();
    st.fn(ctx);
  }
};

}  // namespace lddp::lanes
