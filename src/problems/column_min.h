// Left-to-right shortest path — a Vertical-pattern demo problem
// (contributing set {W, NW}): cheapest path entering at any cell of the
// first column and moving right or diagonally right-down each step.
// Exercises the framework's transpose-symmetry path (Section III).
#pragma once

#include <cstdint>
#include <limits>

#include "core/problem.h"
#include "tables/grid.h"

namespace lddp::problems {

class ColumnMinPathProblem {
 public:
  using Value = std::int64_t;

  explicit ColumnMinPathProblem(Grid<std::int32_t> costs)
      : costs_(std::move(costs)) {}

  std::size_t rows() const { return costs_.rows(); }
  std::size_t cols() const { return costs_.cols(); }
  ContributingSet deps() const {
    return ContributingSet{Dep::kW, Dep::kNW};  // Vertical pattern
  }
  Value boundary() const { return std::numeric_limits<Value>::max() / 4; }

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    const Value c = costs_.at(i, j);
    if (j == 0) return c;
    return (nb.w < nb.nw ? nb.w : nb.nw) + c;
  }

  cpu::WorkProfile work() const { return cpu::WorkProfile{10.0, 40.0, 24.0}; }
  std::size_t input_bytes() const {
    return costs_.size() * sizeof(std::int32_t);
  }
  /// The answer is the minimum over the last column; one column comes back.
  std::size_t result_bytes() const { return rows() * sizeof(Value); }

  const Grid<std::int32_t>& costs() const { return costs_; }

 private:
  Grid<std::int32_t> costs_;
};

/// Serial reference (column sweep).
inline Grid<std::int64_t> column_min_reference(
    const Grid<std::int32_t>& costs) {
  const std::size_t n = costs.rows(), m = costs.cols();
  Grid<std::int64_t> t(n, m);
  for (std::size_t i = 0; i < n; ++i) t.at(i, 0) = costs.at(i, 0);
  for (std::size_t j = 1; j < m; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      std::int64_t best = t.at(i, j - 1);
      if (i > 0 && t.at(i - 1, j - 1) < best) best = t.at(i - 1, j - 1);
      t.at(i, j) = best + costs.at(i, j);
    }
  }
  return t;
}

}  // namespace lddp::problems
