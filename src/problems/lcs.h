// Longest common subsequence — anti-diagonal pattern; the workload of the
// paper's Fig 7 tuning curve (LCS on a 4k x 4k table).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/problem.h"

namespace lddp::problems {

class LcsProblem {
 public:
  using Value = std::int32_t;

  LcsProblem(std::string a, std::string b)
      : a_(std::move(a)), b_(std::move(b)) {}

  std::size_t rows() const { return a_.size() + 1; }
  std::size_t cols() const { return b_.size() + 1; }

  ContributingSet deps() const {
    return ContributingSet{Dep::kW, Dep::kNW, Dep::kN};
  }

  Value boundary() const { return 0; }

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    if (i == 0 || j == 0) return 0;
    if (a_[i - 1] == b_[j - 1]) return nb.nw + 1;
    return nb.w > nb.n ? nb.w : nb.n;
  }

  cpu::WorkProfile work() const { return cpu::WorkProfile{12.0, 48.0, 20.0}; }
  std::size_t input_bytes() const { return a_.size() + b_.size(); }
  /// The LCS length is the bottom-right cell; one row comes back.
  std::size_t result_bytes() const { return cols() * sizeof(Value); }

  const std::string& a() const { return a_; }
  const std::string& b() const { return b_; }

 private:
  std::string a_, b_;
};

/// Recovers one longest common subsequence from a solved table.
inline std::string lcs_traceback(const LcsProblem& p,
                                 const Grid<std::int32_t>& t) {
  std::string out;
  std::size_t i = p.rows() - 1, j = p.cols() - 1;
  while (i > 0 && j > 0) {
    if (p.a()[i - 1] == p.b()[j - 1]) {
      out += p.a()[i - 1];
      --i;
      --j;
    } else if (t.at(i - 1, j) >= t.at(i, j - 1)) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

/// True if `sub` is a subsequence of `s`.
inline bool is_subsequence(const std::string& sub, const std::string& s) {
  std::size_t k = 0;
  for (char c : s)
    if (k < sub.size() && c == sub[k]) ++k;
  return k == sub.size();
}

/// Independent two-row serial reference for the LCS length.
inline std::int32_t lcs_reference(const std::string& a, const std::string& b) {
  std::vector<std::int32_t> prev(b.size() + 1, 0), cur(b.size() + 1, 0);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    for (std::size_t j = 1; j <= b.size(); ++j) {
      cur[j] = a[i - 1] == b[j - 1] ? prev[j - 1] + 1
                                    : std::max(prev[j], cur[j - 1]);
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace lddp::problems
