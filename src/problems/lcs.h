// Longest common subsequence — anti-diagonal pattern; the workload of the
// paper's Fig 7 tuning curve (LCS on a 4k x 4k table).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/front_span.h"
#include "core/lane_kernels.h"
#include "core/problem.h"
#include "util/aligned.h"
#include "util/simd.h"

namespace lddp::problems {

class LcsProblem {
 public:
  using Value = std::int32_t;

  LcsProblem(std::string a, std::string b)
      : a_(std::move(a)), b_(std::move(b)) {}

  std::size_t rows() const { return a_.size() + 1; }
  std::size_t cols() const { return b_.size() + 1; }

  ContributingSet deps() const {
    return ContributingSet{Dep::kW, Dep::kNW, Dep::kN};
  }

  Value boundary() const { return 0; }

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    if (i == 0 || j == 0) return 0;
    if (a_[i - 1] == b_[j - 1]) return nb.nw + 1;
    return nb.w > nb.n ? nb.w : nb.n;
  }

  /// Batch-front hook for anti-diagonal spans (see LevenshteinProblem):
  /// packed byte compare for the match test, max for the mismatch case.
  bool compute_front(const FrontSpan<Value>& s) const {
    if (s.lanes != 1) return false;  // interleaved spans: lane kernels
    if (s.di != 1 || s.dj != -1) return false;
    const char* const pa = a_.data() + (s.i0 - 1);
    const char* const pb = b_.data() + (s.j0 - 1);
    const simd::I32x4 one = simd::I32x4::broadcast(1);
    std::size_t k = 0;
    for (; k + 4 <= s.len; k += 4) {
      const simd::I32x4 w = simd::I32x4::load(s.w + k);
      const simd::I32x4 nw = simd::I32x4::load(s.nw + k);
      const simd::I32x4 n = simd::I32x4::load(s.n + k);
      const simd::I32x4 eq =
          simd::byte_eq_mask(simd::load4(pa + k), simd::load4_reversed(pb - k));
      simd::blend(eq, simd::add(nw, one), simd::max(w, n)).store(s.out + k);
    }
    for (; k < s.len; ++k) {
      if (pa[k] == pb[-static_cast<std::ptrdiff_t>(k)]) {
        s.out[k] = s.nw[k] + 1;
      } else {
        s.out[k] = s.w[k] > s.n[k] ? s.w[k] : s.n[k];
      }
    }
    return true;
  }

  cpu::WorkProfile work() const { return cpu::WorkProfile{12.0, 48.0, 20.0}; }
  std::size_t input_bytes() const { return a_.size() + b_.size(); }
  /// The LCS length is the bottom-right cell; one row comes back.
  std::size_t result_bytes() const { return cols() * sizeof(Value); }

  const std::string& a() const { return a_; }
  const std::string& b() const { return b_; }

 private:
  std::string a_, b_;
};

/// Recovers one longest common subsequence from a solved table.
inline std::string lcs_traceback(const LcsProblem& p,
                                 const Grid<std::int32_t>& t) {
  std::string out;
  std::size_t i = p.rows() - 1, j = p.cols() - 1;
  while (i > 0 && j > 0) {
    if (p.a()[i - 1] == p.b()[j - 1]) {
      out += p.a()[i - 1];
      --i;
      --j;
    } else if (t.at(i - 1, j) >= t.at(i, j - 1)) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

/// True if `sub` is a subsequence of `s`.
inline bool is_subsequence(const std::string& sub, const std::string& s) {
  std::size_t k = 0;
  for (char c : s)
    if (k < sub.size() && c == sub[k]) ++k;
  return k == sub.size();
}

/// Independent two-row serial reference for the LCS length.
inline std::int32_t lcs_reference(const std::string& a, const std::string& b) {
  std::vector<std::int32_t> prev(b.size() + 1, 0), cur(b.size() + 1, 0);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    for (std::size_t j = 1; j <= b.size(); ++j) {
      cur[j] = a[i - 1] == b[j - 1] ? prev[j - 1] + 1
                                    : std::max(prev[j], cur[j - 1]);
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace lddp::problems

namespace lddp::lanes {

/// Inter-solve lane execution — same staging as LevenshteinProblem's
/// traits, with the kLcs row recurrence.
template <>
struct LaneTraits<problems::LcsProblem> {
  static constexpr bool enabled = true;

  struct State {
    RowKernelFn fn = nullptr;
    AlignedBuf<std::int32_t> a;  ///< this row's a[i-1], one per lane
    AlignedBuf<std::int32_t> b;  ///< widened b[j-1], interleaved per column
  };

  static State make(const problems::LcsProblem* const* lanes,
                    std::size_t width, std::size_t /*min_rows*/,
                    std::size_t min_cols) {
    State st;
    st.fn = row_kernel(RowOp::kLcs, width);
    st.a.ensure(width);
    std::int32_t* const b = st.b.ensure(min_cols * width);
    for (std::size_t j = 1; j < min_cols; ++j)
      for (std::size_t s = 0; s < width; ++s)
        b[j * width + s] = static_cast<std::int32_t>(lanes[s]->b()[j - 1]);
    return st;
  }

  static void fill_row(State& st, const problems::LcsProblem* const* lanes,
                       std::size_t width, std::size_t i) {
    for (std::size_t s = 0; s < width; ++s)
      st.a.data()[s] = static_cast<std::int32_t>(lanes[s]->a()[i - 1]);
  }

  static void run(const State& st, RowCtx<std::int32_t> ctx) {
    ctx.lane_a = st.a.data();
    ctx.col_b = st.b.data();
    st.fn(ctx);
  }
};

}  // namespace lddp::lanes
