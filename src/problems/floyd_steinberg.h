// Floyd–Steinberg error-diffusion dithering (Section VI-B, Fig 12) —
// knight-move pattern, the paper's reproduction of Deshpande et al.
//
// The classic algorithm pushes each pixel's quantization error forward to
// (i, j+1), (i+1, j-1), (i+1, j), (i+1, j+1) with weights 7/16, 3/16,
// 5/16, 1/16. The equivalent *pull* (gather) formulation used here — and
// required by any wavefront parallelization — computes each cell from the
// errors of its W, NW, N, NE neighbours (Figure 11's scheduling
// constraint):
//
//   acc(i,j) = in(i,j) + 7/16 err(i,j-1) + 1/16 err(i-1,j-1)
//                      + 5/16 err(i-1,j) + 3/16 err(i-1,j+1)
//   out(i,j) = acc < threshold ? 0 : 255;   err(i,j) = acc - out(i,j)
//
// The contributing set is the full {W, NW, N, NE} — knight-move.
#pragma once

#include <cstdint>

#include "core/problem.h"
#include "problems/image.h"
#include "tables/grid.h"

namespace lddp::problems {

/// Per-pixel state carried through the table: the signed residual error
/// and the quantized output level.
struct FsCell {
  double err = 0.0;
  std::uint8_t out = 0;
};
static_assert(std::is_trivially_copyable_v<FsCell>);

class FloydSteinbergProblem {
 public:
  using Value = FsCell;

  explicit FloydSteinbergProblem(GrayImage input, double threshold = 128.0)
      : input_(std::move(input)), threshold_(threshold) {}

  std::size_t rows() const { return input_.rows(); }
  std::size_t cols() const { return input_.cols(); }

  ContributingSet deps() const {
    return ContributingSet{Dep::kW, Dep::kNW, Dep::kN, Dep::kNE};
  }

  /// Out-of-image neighbours contribute zero error.
  Value boundary() const { return FsCell{0.0, 0}; }

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    const double acc = static_cast<double>(input_.at(i, j)) +
                       (7.0 / 16.0) * nb.w.err + (1.0 / 16.0) * nb.nw.err +
                       (5.0 / 16.0) * nb.n.err + (3.0 / 16.0) * nb.ne.err;
    FsCell cell;
    cell.out = acc < threshold_ ? 0 : 255;
    cell.err = acc - static_cast<double>(cell.out);
    return cell;
  }

  cpu::WorkProfile work() const { return cpu::WorkProfile{18.0, 60.0, 28.0}; }
  std::size_t input_bytes() const { return input_.size(); }
  /// The consumer wants the dithered bitmap: one byte per pixel.
  std::size_t result_bytes() const { return rows() * cols(); }

  const GrayImage& input() const { return input_; }
  double threshold() const { return threshold_; }

 private:
  GrayImage input_;
  double threshold_;
};

/// Extracts the dithered bitmap from a solved table.
inline GrayImage dithered_image(const Grid<FsCell>& table) {
  GrayImage out(table.rows(), table.cols());
  for (std::size_t i = 0; i < table.rows(); ++i)
    for (std::size_t j = 0; j < table.cols(); ++j)
      out.at(i, j) = table.at(i, j).out;
  return out;
}

/// Classic serial *push* implementation — an independent reference. Its
/// floating-point accumulation order differs from the pull form, so
/// accumulated values match only up to rounding; tests compare `acc` with a
/// tolerance and allow output flips only on near-threshold ties.
struct FsPushResult {
  GrayImage out;
  Grid<double> acc;  ///< pre-quantization corrected intensity per pixel
};

inline FsPushResult floyd_steinberg_push_reference(const GrayImage& input,
                                                   double threshold = 128.0) {
  const std::size_t n = input.rows(), m = input.cols();
  Grid<double> carry(n, m, 0.0);
  FsPushResult r{GrayImage(n, m), Grid<double>(n, m, 0.0)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double acc = static_cast<double>(input.at(i, j)) + carry.at(i, j);
      const std::uint8_t out = acc < threshold ? 0 : 255;
      const double err = acc - static_cast<double>(out);
      r.out.at(i, j) = out;
      r.acc.at(i, j) = acc;
      if (j + 1 < m) carry.at(i, j + 1) += err * (7.0 / 16.0);
      if (i + 1 < n) {
        if (j > 0) carry.at(i + 1, j - 1) += err * (3.0 / 16.0);
        carry.at(i + 1, j) += err * (5.0 / 16.0);
        if (j + 1 < m) carry.at(i + 1, j + 1) += err * (1.0 / 16.0);
      }
    }
  }
  return r;
}

}  // namespace lddp::problems
