// Checkerboard shortest path (Section VI-C, Fig 13) — horizontal pattern,
// case 2 (contributing set {NW, N, NE}, two-way transfers).
//
// Cheapest path from any cell of the first row to each cell, moving
// diagonally-left, straight, or diagonally-right forward each step. The
// paper's formulation indexes rows from 1; we use 0-based rows with the
// identical recurrence (row 0 is the base case).
#pragma once

#include <cstdint>
#include <limits>

#include "core/front_span.h"
#include "core/lane_kernels.h"
#include "core/problem.h"
#include "tables/grid.h"
#include "util/aligned.h"
#include "util/rng.h"
#include "util/simd.h"

namespace lddp::problems {

class CheckerboardProblem {
 public:
  // int32 is ample: path costs are bounded by rows * max_cost (< 2^31 for
  // any realistic board), and the narrower value halves PCIe traffic.
  using Value = std::int32_t;

  /// `costs` is the n x n (or n x m) grid of per-cell costs c(i, j).
  explicit CheckerboardProblem(Grid<std::int32_t> costs)
      : costs_(std::move(costs)) {}

  std::size_t rows() const { return costs_.rows(); }
  std::size_t cols() const { return costs_.cols(); }

  ContributingSet deps() const {
    return ContributingSet{Dep::kNW, Dep::kN, Dep::kNE};  // horizontal case-2
  }

  /// Out-of-board moves cost "infinity" (kept far from overflow).
  Value boundary() const {
    return std::numeric_limits<Value>::max() / 4;
  }

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    const Value c = costs_.at(i, j);
    if (i == 0) return c;
    Value best = nb.n;
    if (nb.nw < best) best = nb.nw;
    if (nb.ne < best) best = nb.ne;
    return best + c;
  }

  /// Batch-front hook for row spans (lane k is cell (i0, j0+k)): the
  /// whole {NW, N, NE} min and the cost add vectorize 4 lanes at a time;
  /// the per-cell cost row is contiguous. Signed int32 min/add are exact,
  /// so lanes are bit-identical to the scalar recurrence.
  bool compute_front(const FrontSpan<Value>& s) const {
    if (s.lanes != 1) return false;  // interleaved spans: lane kernels
    if (s.di != 0 || s.dj != 1) return false;
    const std::int32_t* const c = &costs_.at(s.i0, s.j0);
    std::size_t k = 0;
    for (; k + 4 <= s.len; k += 4) {
      const simd::I32x4 nw = simd::I32x4::load(s.nw + k);
      const simd::I32x4 n = simd::I32x4::load(s.n + k);
      const simd::I32x4 ne = simd::I32x4::load(s.ne + k);
      const simd::I32x4 best = simd::min(simd::min(n, nw), ne);
      simd::add(best, simd::I32x4::load(c + k)).store(s.out + k);
    }
    for (; k < s.len; ++k) {
      Value best = s.n[k];
      if (s.nw[k] < best) best = s.nw[k];
      if (s.ne[k] < best) best = s.ne[k];
      s.out[k] = best + c[k];
    }
    return true;
  }

  cpu::WorkProfile work() const { return cpu::WorkProfile{12.0, 44.0, 28.0}; }
  std::size_t input_bytes() const {
    return costs_.size() * sizeof(std::int32_t);
  }
  /// The answer is the minimum over the last row; one row comes back.
  std::size_t result_bytes() const { return cols() * sizeof(Value); }

  const Grid<std::int32_t>& costs() const { return costs_; }

 private:
  Grid<std::int32_t> costs_;
};

/// Deterministic random cost board for the benchmarks.
inline Grid<std::int32_t> random_cost_board(std::size_t rows,
                                            std::size_t cols,
                                            std::uint64_t seed,
                                            std::int32_t max_cost = 100) {
  Grid<std::int32_t> g(rows, cols);
  Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      g.at(i, j) = static_cast<std::int32_t>(rng.uniform_int(1, max_cost));
  return g;
}

/// Independent serial reference: returns the full table of shortest costs.
inline Grid<CheckerboardProblem::Value> checkerboard_reference(
    const Grid<std::int32_t>& costs) {
  using Value = CheckerboardProblem::Value;
  const std::size_t n = costs.rows(), m = costs.cols();
  Grid<Value> t(n, m);
  for (std::size_t j = 0; j < m; ++j) t.at(0, j) = costs.at(0, j);
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      Value best = t.at(i - 1, j);
      if (j > 0 && t.at(i - 1, j - 1) < best) best = t.at(i - 1, j - 1);
      if (j + 1 < m && t.at(i - 1, j + 1) < best) best = t.at(i - 1, j + 1);
      t.at(i, j) = best + costs.at(i, j);
    }
  }
  return t;
}

/// Cheapest cost of reaching the last row (the checkerboard answer).
/// Generic over the table facade: a FrontierTable serves the last row
/// without rematerializing (it is always resident).
template <typename Table>
CheckerboardProblem::Value checkerboard_best(const Table& table) {
  CheckerboardProblem::Value best = table.at(table.rows() - 1, 0);
  for (std::size_t j = 1; j < table.cols(); ++j)
    best = std::min(best, table.at(table.rows() - 1, j));
  return best;
}

}  // namespace lddp::problems

namespace lddp::lanes {

/// Inter-solve lane execution: the {NW, N, NE} min-plus recurrence with
/// each row's per-cell costs staged interleaved (one copy per row keeps
/// the staging resident in cache alongside the rolling lane rows).
template <>
struct LaneTraits<problems::CheckerboardProblem> {
  static constexpr bool enabled = true;

  struct State {
    RowKernelFn fn = nullptr;
    std::size_t min_cols = 0;
    AlignedBuf<std::int32_t> costs;  ///< row i's costs, interleaved
  };

  static State make(const problems::CheckerboardProblem* const* /*lanes*/,
                    std::size_t width, std::size_t /*min_rows*/,
                    std::size_t min_cols) {
    State st;
    st.fn = row_kernel(RowOp::kMinPlus, width);
    st.min_cols = min_cols;
    st.costs.ensure(min_cols * width);
    return st;
  }

  static void fill_row(State& st,
                       const problems::CheckerboardProblem* const* lanes,
                       std::size_t width, std::size_t i) {
    std::int32_t* const c = st.costs.data();
    for (std::size_t j = 1; j < st.min_cols; ++j)
      for (std::size_t s = 0; s < width; ++s)
        c[j * width + s] = lanes[s]->costs().at(i, j);
  }

  static void run(const State& st, RowCtx<std::int32_t> ctx) {
    ctx.col_b = st.costs.data();
    st.fn(ctx);
  }
};

}  // namespace lddp::lanes
