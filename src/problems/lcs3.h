// Longest common subsequence of THREE sequences — the 3-D LDDP-Plus case
// study (bioinformatics' median-of-three alignment core):
//
//   L(i,j,k) = a_i == b_j == c_k ? L(i-1,j-1,k-1) + 1
//                                : max(L(i-1,j,k), L(i,j-1,k), L(i,j,k-1))
//
// Contributing set { (1,1,1), (1,0,0), (0,1,0), (0,0,1) }.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/problem3.h"
#include "tables/grid3.h"

namespace lddp::problems {

class Lcs3Problem {
 public:
  using Value = std::int32_t;

  Lcs3Problem(std::string a, std::string b, std::string c)
      : a_(std::move(a)), b_(std::move(b)), c_(std::move(c)) {}

  std::size_t ni() const { return a_.size() + 1; }
  std::size_t nj() const { return b_.size() + 1; }
  std::size_t nk() const { return c_.size() + 1; }

  ContributingSet3 deps() const {
    return ContributingSet3{Dep3::kD111, Dep3::kD100, Dep3::kD010,
                            Dep3::kD001};
  }

  Value boundary() const { return 0; }

  Value compute(std::size_t i, std::size_t j, std::size_t k,
                const Neighbors3<Value>& nb) const {
    if (i == 0 || j == 0 || k == 0) return 0;
    if (a_[i - 1] == b_[j - 1] && b_[j - 1] == c_[k - 1])
      return nb.d111 + 1;
    return std::max(nb.d100, std::max(nb.d010, nb.d001));
  }

  cpu::WorkProfile work() const { return cpu::WorkProfile{16.0, 56.0, 24.0}; }
  std::size_t input_bytes() const {
    return a_.size() + b_.size() + c_.size();
  }
  std::size_t result_bytes() const { return nj() * nk() * sizeof(Value); }

  const std::string& a() const { return a_; }
  const std::string& b() const { return b_; }
  const std::string& c() const { return c_; }

 private:
  std::string a_, b_, c_;
};

/// Independent two-plane serial reference for the 3-way LCS length.
inline std::int32_t lcs3_reference(const std::string& a, const std::string& b,
                                   const std::string& c) {
  const std::size_t nj = b.size() + 1, nk = c.size() + 1;
  std::vector<std::int32_t> prev(nj * nk, 0), cur(nj * nk, 0);
  auto at = [nk](std::vector<std::int32_t>& v, std::size_t j,
                 std::size_t k) -> std::int32_t& { return v[j * nk + k]; };
  for (std::size_t i = 1; i <= a.size(); ++i) {
    for (std::size_t j = 1; j <= b.size(); ++j) {
      for (std::size_t k = 1; k <= c.size(); ++k) {
        if (a[i - 1] == b[j - 1] && b[j - 1] == c[k - 1]) {
          at(cur, j, k) = at(prev, j - 1, k - 1) + 1;
        } else {
          at(cur, j, k) = std::max(at(prev, j, k),
                                   std::max(at(cur, j - 1, k),
                                            at(cur, j, k - 1)));
        }
      }
    }
    std::swap(prev, cur);
    std::fill(cur.begin(), cur.end(), 0);
  }
  return prev[(nj - 1) * nk + (nk - 1)];
}

}  // namespace lddp::problems
