// Dynamic time warping — the speech-processing LDDP workload the paper's
// introduction cites ([2]). Anti-diagonal pattern; real-valued series.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/problem.h"
#include "util/rng.h"

namespace lddp::problems {

class DtwProblem {
 public:
  using Value = double;

  /// `band` > 0 restricts the warp to the Sakoe-Chiba band |i - j| <= band;
  /// 0 means unconstrained.
  DtwProblem(std::vector<double> a, std::vector<double> b,
             std::size_t band = 0)
      : a_(std::move(a)), b_(std::move(b)), band_(band) {
    LDDP_CHECK_MSG(!a_.empty() && !b_.empty(), "DTW needs non-empty series");
  }

  std::size_t rows() const { return a_.size() + 1; }
  std::size_t cols() const { return b_.size() + 1; }
  ContributingSet deps() const {
    return ContributingSet{Dep::kW, Dep::kNW, Dep::kN};
  }
  Value boundary() const { return 0.0; }

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    if (i == 0 && j == 0) return 0.0;
    if (i == 0 || j == 0) return std::numeric_limits<double>::infinity();
    if (band_ > 0) {
      const std::size_t d = i > j ? i - j : j - i;
      if (d > band_) return std::numeric_limits<double>::infinity();
    }
    const double cost = std::abs(a_[i - 1] - b_[j - 1]);
    return cost + std::min(nb.w, std::min(nb.nw, nb.n));
  }

  cpu::WorkProfile work() const { return cpu::WorkProfile{16.0, 56.0, 36.0}; }
  std::size_t input_bytes() const {
    return (a_.size() + b_.size()) * sizeof(double);
  }
  /// The warp cost is the bottom-right cell; one row comes back.
  std::size_t result_bytes() const { return cols() * sizeof(Value); }

  std::size_t band() const { return band_; }

 private:
  std::vector<double> a_, b_;
  std::size_t band_ = 0;
};

/// Deterministic random walk series for benchmarks and tests.
inline std::vector<double> random_walk_series(std::size_t length,
                                              std::uint64_t seed) {
  std::vector<double> s(length);
  Rng rng(seed);
  double v = 0.0;
  for (auto& x : s) {
    v += rng.uniform_double(-1.0, 1.0);
    x = v;
  }
  return s;
}

/// Independent two-row serial DTW reference.
inline double dtw_reference(const std::vector<double>& a,
                            const std::vector<double>& b) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> prev(b.size() + 1, inf), cur(b.size() + 1, inf);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = inf;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const double cost = std::abs(a[i - 1] - b[j - 1]);
      cur[j] = cost + std::min(prev[j - 1], std::min(prev[j], cur[j - 1]));
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace lddp::problems
