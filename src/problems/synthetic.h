// The paper's synthetic kernels and a generic user-defined problem.
//
// * MaxNwProblem   — f(i,j) = max(cell(i,j), f(i-1,j-1)) + c, contributing
//   set {NW}: the inverted-L workload of Fig 8 (Section V-B).
// * MinNwNProblem  — f(i,j) = min(f(i-1,j-1), f(i-1,j)) + c, contributing
//   set {NW, N}: the horizontal case-1 workload of Figs 8 and 9.
// * FunctionProblem — wraps any callable + contributing set into an
//   LddpProblem; the "user supplies only f" entry point of Section V-C and
//   the engine of the exhaustive property tests.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/front_span.h"
#include "core/lane_kernels.h"
#include "core/problem.h"
#include "tables/grid.h"
#include "util/aligned.h"
#include "util/rng.h"
#include "util/simd.h"

namespace lddp::problems {

/// Inverted-L synthetic: deps {NW}.
class MaxNwProblem {
 public:
  using Value = std::int64_t;

  MaxNwProblem(Grid<std::int32_t> input, Value c) : input_(std::move(input)), c_(c) {}

  std::size_t rows() const { return input_.rows(); }
  std::size_t cols() const { return input_.cols(); }
  ContributingSet deps() const { return ContributingSet{Dep::kNW}; }
  Value boundary() const { return 0; }

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    const Value v = input_.at(i, j);
    return (v > nb.nw ? v : nb.nw) + c_;
  }

  /// Batch-front hook for any affine span shape (the int64 value and the
  /// strided input walk make a generic branchless lane loop the right
  /// form): lane k reads input (i0 + k*di, j0 + k*dj) via one pointer
  /// stride and the packed NW span.
  bool compute_front(const FrontSpan<Value>& s) const {
    if (s.lanes != 1) return false;  // interleaved spans: lane kernels
    const std::int32_t* const in = &input_.at(s.i0, s.j0);
    const std::ptrdiff_t stride =
        s.di * static_cast<std::ptrdiff_t>(input_.cols()) + s.dj;
    for (std::size_t k = 0; k < s.len; ++k) {
      const Value v = in[static_cast<std::ptrdiff_t>(k) * stride];
      const Value nw = s.nw[k];
      s.out[k] = (v > nw ? v : nw) + c_;
    }
    return true;
  }

  cpu::WorkProfile work() const { return cpu::WorkProfile{10.0, 40.0, 24.0}; }
  std::size_t input_bytes() const {
    return input_.size() * sizeof(std::int32_t);
  }
  std::size_t result_bytes() const { return cols() * sizeof(Value); }

  const Grid<std::int32_t>& input() const { return input_; }
  Value c() const { return c_; }

 private:
  Grid<std::int32_t> input_;
  Value c_;
};

/// Horizontal case-1 synthetic: deps {NW, N}.
class MinNwNProblem {
 public:
  // Values grow by c per row from a base < 17 — int32 is ample.
  using Value = std::int32_t;

  MinNwNProblem(std::size_t rows, std::size_t cols, Value c)
      : rows_(rows), cols_(cols), c_(c) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  ContributingSet deps() const {
    return ContributingSet{Dep::kNW, Dep::kN};
  }
  Value boundary() const { return 0; }

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    if (i == 0) return static_cast<Value>(j % 17);  // deterministic base row
    return (nb.nw < nb.n ? nb.nw : nb.n) + c_;
  }

  /// Batch-front hook for row spans: min(NW, N) + c, four lanes per step.
  bool compute_front(const FrontSpan<Value>& s) const {
    if (s.lanes != 1) return false;  // interleaved spans: lane kernels
    if (s.di != 0 || s.dj != 1) return false;
    const simd::I32x4 cc = simd::I32x4::broadcast(c_);
    std::size_t k = 0;
    for (; k + 4 <= s.len; k += 4) {
      const simd::I32x4 nw = simd::I32x4::load(s.nw + k);
      const simd::I32x4 n = simd::I32x4::load(s.n + k);
      simd::add(simd::min(nw, n), cc).store(s.out + k);
    }
    for (; k < s.len; ++k)
      s.out[k] = (s.nw[k] < s.n[k] ? s.nw[k] : s.n[k]) + c_;
    return true;
  }

  cpu::WorkProfile work() const { return cpu::WorkProfile{10.0, 40.0, 20.0}; }
  std::size_t input_bytes() const { return 0; }
  std::size_t result_bytes() const { return cols() * sizeof(Value); }

  Value c() const { return c_; }

 private:
  std::size_t rows_, cols_;
  Value c_;
};

/// Adapts any callable f(i, j, Neighbors<V>) -> V into an LddpProblem.
template <typename V, typename F>
class FunctionProblem {
 public:
  using Value = V;

  FunctionProblem(std::size_t rows, std::size_t cols, ContributingSet deps,
                  V bound, F f, cpu::WorkProfile work = cpu::WorkProfile{})
      : rows_(rows),
        cols_(cols),
        deps_(deps),
        bound_(bound),
        f_(std::move(f)),
        work_(work) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  ContributingSet deps() const { return deps_; }
  V boundary() const { return bound_; }
  V compute(std::size_t i, std::size_t j, const Neighbors<V>& nb) const {
    return f_(i, j, nb);
  }
  cpu::WorkProfile work() const { return work_; }
  std::size_t input_bytes() const { return 0; }
  std::size_t result_bytes() const { return result_bytes_; }

  /// Overrides the priced result download (defaults to the full table).
  void set_result_bytes(std::size_t bytes) { result_bytes_ = bytes; }

 private:
  std::size_t rows_, cols_;
  ContributingSet deps_;
  V bound_;
  F f_;
  cpu::WorkProfile work_;
  std::size_t result_bytes_ = rows_ * cols_ * sizeof(V);
};

template <typename V, typename F>
FunctionProblem<V, F> make_function_problem(std::size_t rows,
                                            std::size_t cols,
                                            ContributingSet deps, V bound,
                                            F f) {
  return FunctionProblem<V, F>(rows, cols, deps, bound, std::move(f));
}

/// Deterministic random input grid for the synthetic problems.
inline Grid<std::int32_t> random_input_grid(std::size_t rows,
                                            std::size_t cols,
                                            std::uint64_t seed,
                                            std::int32_t lo = 0,
                                            std::int32_t hi = 1000) {
  Grid<std::int32_t> g(rows, cols);
  Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      g.at(i, j) = static_cast<std::int32_t>(rng.uniform_int(lo, hi));
  return g;
}

}  // namespace lddp::problems

namespace lddp::lanes {

/// Inter-solve lane execution for the case-1 synthetic: the kMinNwN
/// kernel with each lane's additive constant broadcast once (the base
/// row lives in compute, outside the lockstep region).
template <>
struct LaneTraits<problems::MinNwNProblem> {
  static constexpr bool enabled = true;

  struct State {
    RowKernelFn fn = nullptr;
    AlignedBuf<std::int32_t> c;  ///< per-lane additive constant
  };

  static State make(const problems::MinNwNProblem* const* lanes,
                    std::size_t width, std::size_t /*min_rows*/,
                    std::size_t /*min_cols*/) {
    State st;
    st.fn = row_kernel(RowOp::kMinNwN, width);
    std::int32_t* const c = st.c.ensure(width);
    for (std::size_t s = 0; s < width; ++s) c[s] = lanes[s]->c();
    return st;
  }

  static void fill_row(State&, const problems::MinNwNProblem* const*,
                       std::size_t, std::size_t) {}

  static void run(const State& st, RowCtx<std::int32_t> ctx) {
    ctx.lane_a = st.c.data();
    st.fn(ctx);
  }
};

/// Inter-solve lane execution for the inverted-L synthetic. Values are
/// int64 — outside the int32 kernel tiers — so the lockstep body is a
/// scalar lane loop over the interleaved rows: no SIMD, but the staged
/// interleaved inputs and the shared rolling rows keep the whole cohort
/// cache-resident, and the cohort still counts toward lane occupancy.
template <>
struct LaneTraits<problems::MaxNwProblem> {
  static constexpr bool enabled = true;

  struct State {
    std::size_t min_cols = 0;
    std::vector<std::int64_t> c;    ///< per-lane additive constant
    AlignedBuf<std::int32_t> in;    ///< row i's inputs, interleaved
  };

  static State make(const problems::MaxNwProblem* const* lanes,
                    std::size_t width, std::size_t /*min_rows*/,
                    std::size_t min_cols) {
    State st;
    st.min_cols = min_cols;
    st.c.resize(width);
    for (std::size_t s = 0; s < width; ++s) st.c[s] = lanes[s]->c();
    st.in.ensure(min_cols * width);
    return st;
  }

  static void fill_row(State& st, const problems::MaxNwProblem* const* lanes,
                       std::size_t width, std::size_t i) {
    std::int32_t* const in = st.in.data();
    for (std::size_t j = 1; j < st.min_cols; ++j)
      for (std::size_t s = 0; s < width; ++s)
        in[j * width + s] = lanes[s]->input().at(i, j);
  }

  static void run(const State& st, RowCtx<std::int64_t> ctx) {
    const std::int32_t* const in = st.in.data();
    for (std::size_t j = ctx.j0; j < ctx.j1; ++j) {
      for (std::size_t s = 0; s < ctx.width; ++s) {
        const std::int64_t v = in[j * ctx.width + s];
        const std::int64_t nw = ctx.prev[(j - 1) * ctx.width + s];
        ctx.row[j * ctx.width + s] = (v > nw ? v : nw) + st.c[s];
      }
    }
  }
};

}  // namespace lddp::lanes
