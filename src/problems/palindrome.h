// Longest palindromic subsequence — a textbook interval DP,
//
//   P(l, r) = s_l == s_r ? P(l+1, r-1) + (l == r ? 1 : 2)
//                        : max(P(l+1, r), P(l, r-1))
//
// which becomes a regular LDDP-Plus anti-diagonal problem under the index
// substitution i = n-1-l (so the "l+1" dependencies become "i-1"):
// contributing set {W, NW, N}. Demonstrates how interval DPs map onto the
// framework.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/problem.h"
#include "tables/grid.h"

namespace lddp::problems {

class PalindromeProblem {
 public:
  using Value = std::int32_t;

  explicit PalindromeProblem(std::string s) : s_(std::move(s)) {
    LDDP_CHECK_MSG(!s_.empty(), "palindrome needs a non-empty string");
  }

  // Table cell (i, r) holds P(l, r) with l = n-1-i. Cells with l > r
  // (empty intervals) are 0.
  std::size_t rows() const { return s_.size(); }
  std::size_t cols() const { return s_.size(); }

  ContributingSet deps() const {
    return ContributingSet{Dep::kW, Dep::kNW, Dep::kN};
  }

  Value boundary() const { return 0; }

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    const std::size_t n = s_.size();
    const std::size_t l = n - 1 - i;
    const std::size_t r = j;
    if (l > r) return 0;   // empty interval
    if (l == r) return 1;  // single character
    if (s_[l] == s_[r]) {
      // P(l+1, r-1) lives at (i-1, j-1) = NW; +2 for the matched ends.
      return nb.nw + 2;
    }
    // P(l+1, r) = N; P(l, r-1) = W.
    return std::max(nb.n, nb.w);
  }

  cpu::WorkProfile work() const { return cpu::WorkProfile{14.0, 52.0, 20.0}; }
  std::size_t input_bytes() const { return s_.size(); }
  std::size_t result_bytes() const { return cols() * sizeof(Value); }

  /// The answer: P(0, n-1) = table cell (n-1, n-1).
  static Value answer(const Grid<Value>& t) {
    return t.at(t.rows() - 1, t.cols() - 1);
  }

  const std::string& s() const { return s_; }

 private:
  std::string s_;
};

/// Independent interval-order serial reference.
inline std::int32_t palindrome_reference(const std::string& s) {
  const std::size_t n = s.size();
  if (n == 0) return 0;
  std::vector<std::vector<std::int32_t>> p(n,
                                           std::vector<std::int32_t>(n, 0));
  for (std::size_t l = n; l-- > 0;) {
    p[l][l] = 1;
    for (std::size_t r = l + 1; r < n; ++r) {
      if (s[l] == s[r])
        p[l][r] = (r > l + 1 ? p[l + 1][r - 1] : 0) + 2;
      else
        p[l][r] = std::max(p[l + 1][r], p[l][r - 1]);
    }
  }
  return p[0][n - 1];
}

}  // namespace lddp::problems
