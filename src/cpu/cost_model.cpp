#include "cpu/cost_model.h"

namespace lddp::cpu {

CpuSpec CpuSpec::i7_980() {
  CpuSpec s;
  s.name = "Intel i7-980 (6C/12T, 3.33 GHz)";
  s.cores = 6;
  s.logical_threads = 12;
  s.clock_ghz = 3.33;
  s.mem_bandwidth_gbs = 18.0;  // triple-channel DDR3, achieved
  s.parallel_region_overhead_us = 6.0;
  s.hetero_strip_barrier_us = 1.5;
  return s;
}

CpuSpec CpuSpec::i7_3632qm() {
  CpuSpec s;
  s.name = "Intel i7-3632QM (4C/8T, 2.2 GHz)";
  s.cores = 4;
  s.logical_threads = 8;
  s.clock_ghz = 2.2;
  s.mem_bandwidth_gbs = 14.0;  // dual-channel DDR3 mobile, achieved
  s.parallel_region_overhead_us = 5.0;
  s.hetero_strip_barrier_us = 1.8;
  return s;
}

/// Effective cycles per cell after the batch-kernel speedup: the vector
/// term accelerates compute only, never the DRAM-bandwidth bound.
static double effective_cpu_cycles(const WorkProfile& work) {
  return work.cpu_cycles_per_cell / std::max(1.0, work.vector_speedup);
}

double cpu_peak_throughput(const CpuSpec& spec, const WorkProfile& work,
                           double mem_amplification) {
  LDDP_CHECK(spec.cores >= 1 && spec.clock_ghz > 0);
  LDDP_CHECK(work.cpu_cycles_per_cell > 0);
  LDDP_CHECK(mem_amplification >= 1.0);
  const double effective_cores =
      static_cast<double>(spec.cores) *
      (spec.logical_threads > spec.cores ? 1.0 + spec.smt_boost : 1.0);
  const double compute =
      effective_cores * spec.clock_ghz * 1e9 / effective_cpu_cycles(work);
  const double memory = spec.mem_bandwidth_gbs * 1e9 /
                        (work.bytes_per_cell * mem_amplification);
  return std::min(compute, memory);
}

double cpu_front_seconds(const CpuSpec& spec, const WorkProfile& work,
                         std::size_t cells, bool parallel,
                         double mem_amplification, bool streamed) {
  if (cells == 0) return 0.0;
  LDDP_CHECK(mem_amplification >= 1.0);
  const double per_core_rate =
      spec.clock_ghz * 1e9 / effective_cpu_cycles(work);
  const double memory = static_cast<double>(cells) * work.bytes_per_cell *
                        mem_amplification /
                        (spec.mem_bandwidth_gbs * 1e9);
  if (!parallel) {
    const double compute = static_cast<double>(cells) / per_core_rate;
    // Serial sweeps only win on small fronts, whose working set stays
    // cache-resident — amplification does not apply; and a single thread
    // cannot saturate the socket's DRAM channels (half-bandwidth cap).
    const double serial_memory = static_cast<double>(cells) *
                                 work.bytes_per_cell /
                                 (spec.mem_bandwidth_gbs * 1e9);
    return spec.serial_dispatch_overhead_us * 1e-6 +
           std::max(compute, 2.0 * serial_memory);
  }
  const double threads_used = static_cast<double>(std::min<std::size_t>(
      cells, static_cast<std::size_t>(spec.logical_threads)));
  // With SMT two logical threads share a core's issue slots; each runs at
  // smt * per-core rate so the pair delivers the (1 + boost) throughput.
  const double smt = spec.logical_threads > spec.cores
                         ? (1.0 + spec.smt_boost) *
                               static_cast<double>(spec.cores) /
                               static_cast<double>(spec.logical_threads)
                         : 1.0;
  const double chunk = static_cast<double>(
      (cells + static_cast<std::size_t>(threads_used) - 1) /
      static_cast<std::size_t>(threads_used));
  const double compute = chunk / (per_core_rate * smt);
  const double overhead = (streamed ? spec.hetero_strip_barrier_us
                                    : spec.parallel_region_overhead_us) *
                          1e-6;
  return overhead + std::max(compute, memory);
}

double cpu_tiled_front_seconds(const CpuSpec& spec, const WorkProfile& work,
                               std::size_t num_tiles,
                               std::size_t tile_cells) {
  if (num_tiles == 0 || tile_cells == 0) return 0.0;
  const double per_core_rate =
      spec.clock_ghz * 1e9 / effective_cpu_cycles(work);
  const double threads_used = static_cast<double>(std::min<std::size_t>(
      num_tiles, static_cast<std::size_t>(spec.logical_threads)));
  const double smt = spec.logical_threads > spec.cores
                         ? (1.0 + spec.smt_boost) *
                               static_cast<double>(spec.cores) /
                               static_cast<double>(spec.logical_threads)
                         : 1.0;
  const std::size_t rounds =
      (num_tiles + static_cast<std::size_t>(threads_used) - 1) /
      static_cast<std::size_t>(threads_used);
  const double compute = static_cast<double>(rounds) *
                         static_cast<double>(tile_cells) /
                         (per_core_rate * smt);
  const double memory = static_cast<double>(num_tiles) *
                        static_cast<double>(tile_cells) *
                        work.bytes_per_cell / (spec.mem_bandwidth_gbs * 1e9);
  return spec.hetero_strip_barrier_us * 1e-6 + std::max(compute, memory);
}

bool parallel_beats_serial(const CpuSpec& spec, const WorkProfile& work,
                           std::size_t cells, double mem_amplification,
                           bool streamed) {
  return cpu_front_seconds(spec, work, cells, true, mem_amplification,
                           streamed) <
         cpu_front_seconds(spec, work, cells, false, mem_amplification,
                           streamed);
}

}  // namespace lddp::cpu
