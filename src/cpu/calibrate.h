// Bridges real execution to the analytic model: measures a problem's
// actual serial per-cell cost on the host and converts it into the
// WorkProfile units the cost models consume. Useful when porting the
// framework to problems whose f is much heavier or lighter than the
// bundled defaults — the same role the paper's empirical parameter search
// plays for t_switch/t_share, one level down.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/problem.h"
#include "tables/grid.h"
#include "util/simd.h"
#include "util/stopwatch.h"

namespace lddp::cpu {

struct CalibrationResult {
  double ns_per_cell = 0.0;      ///< measured serial host cost
  double cycles_per_cell = 0.0;  ///< at the given spec's clock
  WorkProfile suggested;         ///< profile with the measured CPU cost
};

/// Runs `repeats` serial scans over (a sample of) the problem's table and
/// returns the fastest per-cell time (min-of-N suppresses scheduling
/// noise). The scan is capped at `max_cells` to keep calibration cheap on
/// huge problems; the leading rows exercise the same f and accesses.
template <LddpProblem P>
CalibrationResult calibrate_work_profile(const P& p, const CpuSpec& spec,
                                         int repeats = 3,
                                         std::size_t max_cells = 1u << 22) {
  const std::size_t m = p.cols();
  const std::size_t rows =
      std::max<std::size_t>(1, std::min(p.rows(), max_cells / m));
  const ContributingSet deps = p.deps();
  const typename P::Value bound = p.boundary();
  Grid<typename P::Value> table(rows, m);

  double best_seconds = 1e300;
  for (int r = 0; r < std::max(1, repeats); ++r) {
    Stopwatch sw;
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        Neighbors<typename P::Value> nb{bound, bound, bound, bound};
        if (deps.has_w() && j > 0) nb.w = table.at(i, j - 1);
        if (i > 0) {
          if (deps.has_nw() && j > 0) nb.nw = table.at(i - 1, j - 1);
          if (deps.has_n()) nb.n = table.at(i - 1, j);
          if (deps.has_ne() && j + 1 < m) nb.ne = table.at(i - 1, j + 1);
        }
        table.at(i, j) = p.compute(i, j, nb);
      }
    }
    best_seconds = std::min(best_seconds, sw.seconds());
  }

  CalibrationResult out;
  out.ns_per_cell =
      best_seconds * 1e9 / static_cast<double>(rows * m);
  out.cycles_per_cell = out.ns_per_cell * spec.clock_ghz;
  out.suggested = work_profile_of(p);
  out.suggested.cpu_cycles_per_cell = std::max(1.0, out.cycles_per_cell);
  return out;
}

/// Measured throughput multiplier of the batch-front (SIMD) kernels over
/// the per-cell scalar path, for WorkProfile::vector_speedup. A min/plus
/// three-input recurrence — the common shape of the integer DP kernels —
/// is timed both ways over a cache-resident array (min-of-N suppresses
/// noise), and the ratio is quantized to a power of two in [1, 8] so the
/// simulated timings stay stable from run to run on one machine. The
/// first call measures; later calls return the cached value.
inline double calibrated_vector_speedup() {
  static const double cached = [] {
    constexpr std::size_t kN = 1u << 14;
    constexpr int kRepeats = 5;
    std::vector<std::int32_t> a(kN), b(kN), c(kN), out(kN);
    for (std::size_t k = 0; k < kN; ++k) {
      a[k] = static_cast<std::int32_t>((k * 73u) % 1009u);
      b[k] = static_cast<std::int32_t>((k * 131u) % 1013u);
      c[k] = static_cast<std::int32_t>((k * 197u) % 1019u);
    }
    auto min3 = [](std::int32_t x, std::int32_t y, std::int32_t z) {
      std::int32_t m = x < y ? x : y;
      return z < m ? z : m;
    };
    double scalar_s = 1e300, batch_s = 1e300;
    for (int r = 0; r < kRepeats; ++r) {
      Stopwatch sw;
      for (std::size_t k = 0; k < kN; ++k)
        out[k] = 1 + min3(a[k], b[k], c[k]);
      scalar_s = std::min(scalar_s, sw.seconds());
    }
    // Keep the result observable so the scalar loop cannot be elided.
    volatile std::int32_t sink = out[kN - 1];
    for (int r = 0; r < kRepeats; ++r) {
      Stopwatch sw;
      const simd::I32x4 one = simd::I32x4::broadcast(1);
      std::size_t k = 0;
      for (; k + simd::I32x4::kLanes <= kN; k += simd::I32x4::kLanes) {
        const simd::I32x4 va = simd::I32x4::load(&a[k]);
        const simd::I32x4 vb = simd::I32x4::load(&b[k]);
        const simd::I32x4 vc = simd::I32x4::load(&c[k]);
        simd::add(simd::min(simd::min(va, vb), vc), one).store(&out[k]);
      }
      for (; k < kN; ++k) out[k] = 1 + min3(a[k], b[k], c[k]);
      batch_s = std::min(batch_s, sw.seconds());
    }
    sink = out[0];
    (void)sink;
    double ratio = batch_s > 0.0 ? scalar_s / batch_s : 1.0;
    double q = 1.0;
    while (q * 2.0 <= ratio && q < 8.0) q *= 2.0;
    return q;
  }();
  return cached;
}

}  // namespace lddp::cpu
