// Bridges real execution to the analytic model: measures a problem's
// actual serial per-cell cost on the host and converts it into the
// WorkProfile units the cost models consume. Useful when porting the
// framework to problems whose f is much heavier or lighter than the
// bundled defaults — the same role the paper's empirical parameter search
// plays for t_switch/t_share, one level down.
#pragma once

#include <algorithm>
#include <cstddef>

#include "core/problem.h"
#include "tables/grid.h"
#include "util/stopwatch.h"

namespace lddp::cpu {

struct CalibrationResult {
  double ns_per_cell = 0.0;      ///< measured serial host cost
  double cycles_per_cell = 0.0;  ///< at the given spec's clock
  WorkProfile suggested;         ///< profile with the measured CPU cost
};

/// Runs `repeats` serial scans over (a sample of) the problem's table and
/// returns the fastest per-cell time (min-of-N suppresses scheduling
/// noise). The scan is capped at `max_cells` to keep calibration cheap on
/// huge problems; the leading rows exercise the same f and accesses.
template <LddpProblem P>
CalibrationResult calibrate_work_profile(const P& p, const CpuSpec& spec,
                                         int repeats = 3,
                                         std::size_t max_cells = 1u << 22) {
  const std::size_t m = p.cols();
  const std::size_t rows =
      std::max<std::size_t>(1, std::min(p.rows(), max_cells / m));
  const ContributingSet deps = p.deps();
  const typename P::Value bound = p.boundary();
  Grid<typename P::Value> table(rows, m);

  double best_seconds = 1e300;
  for (int r = 0; r < std::max(1, repeats); ++r) {
    Stopwatch sw;
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        Neighbors<typename P::Value> nb{bound, bound, bound, bound};
        if (deps.has_w() && j > 0) nb.w = table.at(i, j - 1);
        if (i > 0) {
          if (deps.has_nw() && j > 0) nb.nw = table.at(i - 1, j - 1);
          if (deps.has_n()) nb.n = table.at(i - 1, j);
          if (deps.has_ne() && j + 1 < m) nb.ne = table.at(i - 1, j + 1);
        }
        table.at(i, j) = p.compute(i, j, nb);
      }
    }
    best_seconds = std::min(best_seconds, sw.seconds());
  }

  CalibrationResult out;
  out.ns_per_cell =
      best_seconds * 1e9 / static_cast<double>(rows * m);
  out.cycles_per_cell = out.ns_per_cell * spec.clock_ghz;
  out.suggested = work_profile_of(p);
  out.suggested.cpu_cycles_per_cell = std::max(1.0, out.cycles_per_cell);
  return out;
}

}  // namespace lddp::cpu
