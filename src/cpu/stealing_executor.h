// Work-stealing CPU task runtime — the demand-driven alternative to the
// ThreadPool's OpenMP-style static worksharing.
//
// The paper's CPU side is `schedule(static)` block-per-thread chunking;
// on the fronts this framework cares about (ragged anti-diagonal ramps,
// tiny t_switch-region fronts, mixed-size batches) static chunks leave
// cores idle behind the slowest block. This executor implements the
// standard fix for irregular wavefront work: per-worker Chase–Lev deques
// with a lock-free steal path, lazy binary splitting of each parallel
// region ("split on steal" — short fronts stay a single task and pay no
// scheduling overhead), and a spin-then-park idle protocol shared with
// the strip-session barrier (LDDP_SPIN_US tunes both).
//
// Determinism contract (the reason this file can replace the static path
// without perturbing any recorded schedule or chaos replay):
//  * Results are bit-identical to the static path: every front body this
//    framework dispatches is chunk-boundary-insensitive (cells depend only
//    on earlier fronts), so any partition of [begin, end) computes the
//    same table. The executor only changes the partition.
//  * The morsel (leaf-task) set of a region is a pure function of
//    (begin, end, grain): splits always halve at a 16-cell-aligned
//    midpoint, whether the upper half is pushed, stolen, or executed
//    inline on deque overflow. Steal interleaving decides only *who*
//    runs a morsel, never *which* morsels exist.
//  * Fault injection (site kStripWorker) is drawn once per morsel with a
//    salt derived from (region sequence, morsel offset) — both
//    interleaving-independent — so a chaos plan's failure schedule
//    replays exactly, regardless of worker count or steal order.
//  * Simulated schedules never pass through here: sim::Timeline records
//    modeled durations on the master after the region completes, so
//    makespans are independent of real execution by construction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/fault_injection.h"

namespace lddp::cpu {

/// Which execution substrate CPU work runs on.
///  * kStatic — the legacy ThreadPool: OpenMP-style static chunks,
///    per-solve private pools (or one cooperative pool) in batch mode.
///  * kStealing — the work-stealing executor: adaptive morsels, one
///    shared executor across all in-flight solves.
///  * kAuto — the framework default: solo solve() keeps whatever
///    RunConfig::pool says (legacy behaviour); the batch engine resolves
///    kAuto to kStealing.
enum class Schedule { kStatic, kStealing, kAuto };

std::string to_string(Schedule s);

/// The batch-engine / executor-level resolution of kAuto (the stealing
/// substrate). Solo solve() intentionally does NOT use this — a null-pool
/// solo solve under kAuto stays inline, unchanged from previous releases.
inline Schedule resolve_schedule(Schedule s) {
  return s == Schedule::kAuto ? Schedule::kStealing : s;
}

/// Idle spin budget (in pause iterations) before a waiting worker parks
/// on a condvar. Tunable via LDDP_SPIN_US (microseconds, ~100 pauses/us);
/// unset keeps the historical constant (4096 iterations). Read once at
/// first use; shared by the strip-session barrier and this executor.
int idle_spin_iters();

class StealingExecutor;

namespace steal_detail {

struct RegionCore;

/// One deque entry: a [lo, hi) sub-range of a region. `core` is stable
/// for the whole region (it lives in the submitting master's frame and
/// is only reclaimed after `remaining` hits zero).
struct Task {
  RegionCore* core = nullptr;
  std::size_t lo = 0;
  std::size_t hi = 0;
};

/// Chase–Lev work-stealing deque, fixed capacity. The owner pushes and
/// pops at the bottom (LIFO — keeps the owner on the cache-hot half of
/// its own split tree); thieves CAS-claim from the top (FIFO — steals
/// the largest outstanding sub-range, which the thief then splits
/// further). All operations are seq_cst, and ring slots are themselves
/// atomics: a thief reads a slot *before* its claiming CAS, and any
/// concurrent overwrite of that slot implies the CAS fails and the torn
/// value is discarded — so the pre-CAS read must be free of data races.
/// push() returns false when full; the caller then executes the task
/// inline (preserving the deterministic split tree) instead of growing.
class WorkDeque {
 public:
  explicit WorkDeque(std::size_t log2_capacity = 13)
      : mask_((std::size_t{1} << log2_capacity) - 1),
        slots_(std::size_t{1} << log2_capacity) {}

  /// Owner only. False when the ring is full.
  bool push(const Task& t) {
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    const std::int64_t top = top_.load(std::memory_order_seq_cst);
    if (b - top > static_cast<std::int64_t>(mask_)) return false;
    Slot& s = slots_[static_cast<std::size_t>(b) & mask_];
    s.core.store(t.core, std::memory_order_seq_cst);
    s.lo.store(t.lo, std::memory_order_seq_cst);
    s.hi.store(t.hi, std::memory_order_seq_cst);
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Owner only. LIFO; loses the race to a thief on the last element.
  bool pop(Task* out) {
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t top = top_.load(std::memory_order_seq_cst);
    if (top > b) {  // empty
      bottom_.store(b + 1, std::memory_order_seq_cst);
      return false;
    }
    const Slot& s = slots_[static_cast<std::size_t>(b) & mask_];
    out->core = s.core.load(std::memory_order_seq_cst);
    out->lo = s.lo.load(std::memory_order_seq_cst);
    out->hi = s.hi.load(std::memory_order_seq_cst);
    if (top != b) return true;  // more than one element: uncontended
    // Single element: race the thieves for it via the top CAS.
    const bool won =
        top_.compare_exchange_strong(top, top + 1, std::memory_order_seq_cst);
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return won;
  }

  /// Any thread. FIFO; false on empty or lost race (caller just retries
  /// elsewhere). The slot words are read before the CAS and are only
  /// *used* after it succeeds — see the class comment for why that is
  /// race-free.
  bool steal(Task* out) {
    std::int64_t top = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (top >= b) return false;
    const Slot& s = slots_[static_cast<std::size_t>(top) & mask_];
    out->core = s.core.load(std::memory_order_seq_cst);
    out->lo = s.lo.load(std::memory_order_seq_cst);
    out->hi = s.hi.load(std::memory_order_seq_cst);
    return top_.compare_exchange_strong(top, top + 1,
                                        std::memory_order_seq_cst);
  }

  /// Approximate (racy) — used only as a "worth scanning?" hint.
  bool maybe_nonempty() const {
    return bottom_.load(std::memory_order_seq_cst) >
           top_.load(std::memory_order_seq_cst);
  }

 private:
  struct Slot {
    std::atomic<RegionCore*> core{nullptr};
    std::atomic<std::size_t> lo{0};
    std::atomic<std::size_t> hi{0};
  };
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  const std::size_t mask_;
  std::vector<Slot> slots_;
};

/// Shared state of one parallel region, owned by the submitting master's
/// stack frame. Reclaimed only after remaining == 0 — and decrementing
/// `remaining` is the LAST touch any task makes, so no worker can
/// dereference a core whose master has already returned.
struct RegionCore {
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t grain = 0;
  /// Fault salt base: the submitting solve attempt's region index (see
  /// fault::next_region_sequence) — deterministic per (solve, attempt).
  std::uint64_t region_seq = 0;
  /// Master's fault context at submission, published to every executing
  /// thread (stealing workers have no FaultScope of their own).
  fault::FaultContext fault;
  std::atomic<std::size_t> remaining{0};  ///< cells not yet completed
  std::mutex err_mu;
  std::exception_ptr first_error;
};

}  // namespace steal_detail

/// The executor: `num_workers` dedicated threads plus every submitting
/// master. Unlike ThreadPool there is no master arbitration — any number
/// of threads may run parallel_region() concurrently (each gets its own
/// deque slot), which is what lets one process-wide executor serve all
/// in-flight solves of a batch: a finishing solve's workers immediately
/// drain the deques of the solves still running.
class StealingExecutor {
 public:
  /// Morsel alignment: 16 int32 cells = one 64-byte cache line, so
  /// adjacent morsels never false-share an output line.
  static constexpr std::size_t kMorselQuantum = 16;
  /// Smallest grain parallel_region will honour — below this the
  /// per-task bookkeeping dominates the cells.
  static constexpr std::size_t kMinGrain = 1024;

  /// `num_workers` may be 0: every region then runs inline on the
  /// submitting thread (the right sizing on a saturated host — the
  /// batch engine uses this to avoid oversubscription instead of
  /// spinning per-solve pools against each other).
  explicit StealingExecutor(std::size_t num_workers);
  ~StealingExecutor();

  StealingExecutor(const StealingExecutor&) = delete;
  StealingExecutor& operator=(const StealingExecutor&) = delete;

  /// Threads that can execute region work: workers + the calling master.
  std::size_t size() const { return workers_.size() + 1; }
  std::size_t num_workers() const { return workers_.size(); }

  /// Runs body(lo, hi) over disjoint sub-ranges covering [begin, end),
  /// blocking until all of it has executed; rethrows the first captured
  /// exception. `grain` is the target morsel size in cells (0 = pick a
  /// default from the range and worker count); it is clamped to
  /// kMinGrain and rounded to kMorselQuantum. Ranges at most one grain
  /// long — and every region on a workerless executor — run inline as a
  /// single body call with no scheduling overhead. Reentrant: any number
  /// of threads may submit concurrently; regions do not nest.
  void parallel_region(std::size_t begin, std::size_t end, std::size_t grain,
                       const std::function<void(std::size_t, std::size_t)>&
                           body);

 private:
  struct Slot {
    steal_detail::WorkDeque deque;
    std::atomic<bool> claimed{false};
  };

  void worker_loop(std::size_t slot_index);
  /// Splits [lo, hi) down to grain, pushing upper halves onto `deque`
  /// (or executing them inline on overflow), then runs the leaf morsel:
  /// one fault draw + one body call + the remaining-count decrement.
  void execute_task(steal_detail::RegionCore* core, std::size_t lo,
                    std::size_t hi, steal_detail::WorkDeque* deque);
  bool try_acquire(std::size_t my_slot, steal_detail::Task* out);
  void wake_workers();
  /// Deque-slot index of the calling master thread, claimed on first use
  /// (keyed by a process-unique executor id, so a recycled executor
  /// address never aliases a stale thread-local slot). Returns
  /// slots_.size() when all master slots are taken — the region then
  /// runs inline.
  std::size_t master_slot_index();

  const std::uint64_t exec_id_;
  std::vector<std::unique_ptr<Slot>> slots_;  // [workers][masters]
  const std::size_t num_worker_slots_;
  std::vector<std::thread> workers_;
  std::atomic<bool> shutdown_{false};
  std::atomic<int> active_regions_{0};
  std::atomic<std::uint64_t> work_epoch_{0};
  std::atomic<std::size_t> parked_{0};
  std::mutex park_mu_;
  std::condition_variable park_cv_;
};

/// Process-wide shared executor, sized to the hardware (hw - 1 workers):
/// the substrate Schedule::kStealing routes solo solves through. Lazily
/// constructed on first use.
StealingExecutor& shared_executor();

/// Worker count shared_executor() is (or would be) built with — lets
/// benches report it without instantiating the threads.
std::size_t shared_executor_workers();

}  // namespace lddp::cpu
