#include "cpu/stealing_executor.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace lddp::cpu {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// Deque slots reserved for submitting masters (beyond the per-worker
/// slots). More concurrent masters than this fall back to inline serial
/// execution — correctness is unaffected, only parallelism.
constexpr std::size_t kMasterSlots = 64;

/// Historical spin budget (thread_pool.cpp's kStripSpinIters) — the
/// LDDP_SPIN_US default resolves to exactly this.
constexpr int kDefaultSpinIters = 4096;

/// ~100 pause iterations per microsecond on contemporary x86 (a pause is
/// ~10 ns); precise calibration is pointless — the knob trades idle burn
/// against park/unpark latency in orders of magnitude, not percent.
constexpr long kSpinItersPerUs = 100;

std::atomic<std::uint64_t> g_next_exec_id{1};

}  // namespace

std::string to_string(Schedule s) {
  switch (s) {
    case Schedule::kStatic:
      return "static";
    case Schedule::kStealing:
      return "stealing";
    case Schedule::kAuto:
      return "auto";
  }
  return "?";
}

int idle_spin_iters() {
  static const int iters = [] {
    const char* env = std::getenv("LDDP_SPIN_US");
    if (env == nullptr || *env == '\0') return kDefaultSpinIters;
    char* end = nullptr;
    const long us = std::strtol(env, &end, 10);
    if (end == env || us < 0) return kDefaultSpinIters;
    return static_cast<int>(
        std::min<long>(us * kSpinItersPerUs, 100L * 1000 * 1000));
  }();
  return iters;
}

StealingExecutor::StealingExecutor(std::size_t num_workers)
    : exec_id_(g_next_exec_id.fetch_add(1, std::memory_order_seq_cst)),
      num_worker_slots_(num_workers) {
  slots_.reserve(num_workers + kMasterSlots);
  for (std::size_t s = 0; s < num_workers + kMasterSlots; ++s)
    slots_.push_back(std::make_unique<Slot>());
  workers_.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

StealingExecutor::~StealingExecutor() {
  shutdown_.store(true, std::memory_order_seq_cst);
  work_epoch_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
  }
  park_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void StealingExecutor::wake_workers() {
  // The empty critical section orders the notify against a worker that is
  // between its predicate check and its wait (same pattern as the strip
  // barrier); callers bump work_epoch_ first.
  {
    std::lock_guard<std::mutex> lock(park_mu_);
  }
  park_cv_.notify_all();
}

std::size_t StealingExecutor::master_slot_index() {
  struct Claim {
    std::uint64_t exec_id;
    std::size_t index;
  };
  thread_local std::vector<Claim> claims;
  for (const Claim& c : claims)
    if (c.exec_id == exec_id_) return c.index;
  for (std::size_t s = num_worker_slots_; s < slots_.size(); ++s) {
    bool expected = false;
    if (slots_[s]->claimed.compare_exchange_strong(
            expected, true, std::memory_order_seq_cst)) {
      claims.push_back(Claim{exec_id_, s});
      return s;
    }
  }
  return slots_.size();  // all master slots taken: caller runs inline
}

bool StealingExecutor::try_acquire(std::size_t my_slot,
                                   steal_detail::Task* out) {
  if (slots_[my_slot]->deque.pop(out)) return true;
  const std::size_t n = slots_.size();
  for (std::size_t k = 1; k < n; ++k) {
    const std::size_t victim = (my_slot + k) % n;
    if (slots_[victim]->deque.maybe_nonempty() &&
        slots_[victim]->deque.steal(out))
      return true;
  }
  return false;
}

void StealingExecutor::execute_task(steal_detail::RegionCore* core,
                                    std::size_t lo, std::size_t hi,
                                    steal_detail::WorkDeque* deque) {
  // Lazy binary splitting: halve at a quantum-aligned midpoint until the
  // range fits one grain, publishing upper halves for thieves. The split
  // tree — hence the morsel leaf set and every fault salt — depends only
  // on (lo, hi, grain): a push that overflows the deque executes the
  // upper half inline through the SAME recursion instead of changing the
  // partition.
  while (hi - lo > core->grain) {
    const std::size_t half = (hi - lo) / 2;
    const std::size_t mid =
        lo + ((half + kMorselQuantum - 1) / kMorselQuantum) * kMorselQuantum;
    LDDP_DCHECK(mid > lo && mid < hi);
    if (deque != nullptr && deque->push({core, mid, hi})) {
      if (parked_.load(std::memory_order_seq_cst) != 0) {
        work_epoch_.fetch_add(1, std::memory_order_seq_cst);
        wake_workers();
      }
    } else {
      execute_task(core, mid, hi, deque);
    }
    hi = mid;
  }
  try {
    // Per-morsel fault draw (site kStripWorker), against the submitting
    // master's plan: the salt is a pure function of the region's
    // deterministic sequence number and the morsel's offset, so a chaos
    // schedule replays identically under any steal interleaving.
    const fault::FaultContext& ctx = core->fault;
    if (ctx.plan != nullptr) {
      const std::uint64_t salt =
          (core->region_seq << 24) ^ (lo / kMorselQuantum);
      if (ctx.plan->should_fail(fault::Site::kStripWorker, ctx.solve,
                                ctx.attempt, salt))
        throw fault::InjectedFault(fault::Site::kStripWorker, ctx.solve,
                                   ctx.attempt);
    }
    (*core->body)(lo, hi);
  } catch (...) {
    std::lock_guard<std::mutex> lock(core->err_mu);
    if (!core->first_error) core->first_error = std::current_exception();
  }
  // The remaining-count decrement is the LAST touch of `core`: once it
  // reaches zero the submitting master's frame (which owns the core) may
  // unwind.
  core->remaining.fetch_sub(hi - lo, std::memory_order_seq_cst);
}

void StealingExecutor::worker_loop(std::size_t slot_index) {
  const int spin_budget = idle_spin_iters();
  std::uint64_t seen = work_epoch_.load(std::memory_order_seq_cst);
  int spins = 0;
  for (;;) {
    steal_detail::Task t;
    if (try_acquire(slot_index, &t)) {
      spins = 0;
      execute_task(t.core, t.lo, t.hi, &slots_[slot_index]->deque);
      continue;
    }
    if (shutdown_.load(std::memory_order_seq_cst)) return;
    if (active_regions_.load(std::memory_order_seq_cst) != 0) {
      // A region is in flight: its straggler morsels may appear any
      // moment, so stay runnable — spin briefly, then yield the core to
      // whoever is computing.
      if (++spins < spin_budget)
        cpu_relax();
      else
        std::this_thread::yield();
      continue;
    }
    const std::uint64_t cur = work_epoch_.load(std::memory_order_seq_cst);
    if (cur != seen) {  // missed a submission while scanning: rescan
      seen = cur;
      spins = 0;
      continue;
    }
    if (++spins < spin_budget) {
      cpu_relax();
      continue;
    }
    {
      std::unique_lock<std::mutex> lock(park_mu_);
      parked_.fetch_add(1, std::memory_order_seq_cst);
      park_cv_.wait(lock, [&] {
        return shutdown_.load(std::memory_order_seq_cst) ||
               work_epoch_.load(std::memory_order_seq_cst) != seen;
      });
      parked_.fetch_sub(1, std::memory_order_seq_cst);
    }
    seen = work_epoch_.load(std::memory_order_seq_cst);
    spins = 0;
  }
}

void StealingExecutor::parallel_region(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t total = end - begin;
  std::size_t g = grain;
  if (g == 0) {
    // No cost-model hint: aim for ~4 morsels per executing thread so the
    // tail imbalance is at most a quarter-share.
    g = total / (4 * size());
  }
  g = std::max(g, kMinGrain);
  g = ((g + kMorselQuantum - 1) / kMorselQuantum) * kMorselQuantum;
  // Short fronts stay a single task: no deque traffic, no fault draw —
  // exactly the static path's single-thread behaviour at this scale.
  if (workers_.empty() || total <= g) {
    body(begin, end);
    return;
  }
  const std::size_t idx = master_slot_index();
  if (idx == slots_.size()) {
    body(begin, end);
    return;
  }
  steal_detail::WorkDeque* my_deque = &slots_[idx]->deque;
  steal_detail::RegionCore core;
  core.body = &body;
  core.grain = g;
  core.fault = fault::snapshot();
  core.region_seq = fault::next_region_sequence();
  core.remaining.store(total, std::memory_order_seq_cst);
  active_regions_.fetch_add(1, std::memory_order_seq_cst);
  work_epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (parked_.load(std::memory_order_seq_cst) != 0) wake_workers();
  execute_task(&core, begin, end, my_deque);
  // Help until every cell of THIS region has completed — possibly by
  // draining other regions' morsels, which keeps the core busy while
  // stragglers of ours finish elsewhere.
  const int spin_budget = idle_spin_iters();
  int spins = 0;
  steal_detail::Task t;
  while (core.remaining.load(std::memory_order_seq_cst) != 0) {
    if (try_acquire(idx, &t)) {
      spins = 0;
      execute_task(t.core, t.lo, t.hi, &slots_[idx]->deque);
    } else if (++spins < spin_budget) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  active_regions_.fetch_sub(1, std::memory_order_seq_cst);
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(core.err_mu);
    err = core.first_error;
  }
  if (err) std::rethrow_exception(err);
}

std::size_t shared_executor_workers() {
  return static_cast<std::size_t>(
             std::max(1u, std::thread::hardware_concurrency())) -
         1;
}

StealingExecutor& shared_executor() {
  static StealingExecutor exec(shared_executor_workers());
  return exec;
}

}  // namespace lddp::cpu
