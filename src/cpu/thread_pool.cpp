#include "cpu/thread_pool.h"

#include <algorithm>

namespace lddp::cpu {

namespace {

// One spin iteration while waiting on the strip barrier.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads, bool coop_strips)
    : coop_strips_(coop_strips) {
  LDDP_CHECK_MSG(num_threads >= 1, "pool needs at least one thread");
  workers_.reserve(num_threads - 1);
  for (std::size_t w = 0; w + 1 < num_threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::ThreadPool(StealingExecutor* exec) : exec_(exec) {
  LDDP_CHECK_MSG(exec != nullptr, "stealing facade needs an executor");
  // No workers of our own: strip sessions see workers_.empty() and no-op
  // (the executor needs no persistent barrier), and every parallel region
  // routes straight to the executor below.
}

void ThreadPool::acquire_master() {
  std::unique_lock<std::mutex> lock(master_mu_);
  if (master_depth_ > 0 && master_owner_ == std::this_thread::get_id()) {
    ++master_depth_;
    return;
  }
  master_waiters_.fetch_add(1, std::memory_order_seq_cst);
  master_cv_.wait(lock, [&] { return master_depth_ == 0; });
  master_waiters_.fetch_sub(1, std::memory_order_seq_cst);
  master_owner_ = std::this_thread::get_id();
  master_depth_ = 1;
}

void ThreadPool::release_master() {
  std::lock_guard<std::mutex> lock(master_mu_);
  LDDP_DCHECK(master_depth_ > 0 &&
              master_owner_ == std::this_thread::get_id());
  if (--master_depth_ == 0) {
    master_owner_ = std::thread::id{};
    master_cv_.notify_one();
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    ++region_.epoch;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run_chunk(const Region& region, std::size_t thread_index,
                           std::size_t nthreads) {
  // Static chunking identical to OpenMP schedule(static): thread k gets the
  // k-th contiguous block, sized to balance remainders.
  const std::size_t total = region.end - region.begin;
  const std::size_t base = total / nthreads;
  const std::size_t rem = total % nthreads;
  const std::size_t lo = region.begin + thread_index * base +
                         std::min(thread_index, rem);
  const std::size_t hi = lo + base + (thread_index < rem ? 1 : 0);
  if (lo < hi) (*region.body)(lo, hi);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    bool strips = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] {
        return shutdown_ || region_.epoch != seen_epoch;
      });
      if (shutdown_) return;
      seen_epoch = region_.epoch;
      strips = strip_mode_;
    }
    if (strips) {
      // Stay resident in the barrier until the session ends, then go back
      // to waiting for the next fork/join epoch.
      strip_worker_loop(worker_index + 1);
      strip_exited_.fetch_add(1, std::memory_order_seq_cst);
      continue;
    }
    // Worker index w maps to thread index w+1; the master is thread 0.
    try {
      run_chunk(region_, worker_index + 1, workers_.size() + 1);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      LDDP_DCHECK(pending_ > 0);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::maybe_fail_strip_chunk(std::size_t thread_index) const {
  const fault::FaultContext& ctx = strip_region_.fault;
  if (ctx.plan == nullptr) return;
  // Salt mixes the front (epoch, set per dispatch) with the worker index,
  // so a per-decision rate means exactly that: every (front, worker)
  // chunk is an independent draw.
  const std::uint64_t salt = (strip_region_.epoch << 8) ^ thread_index;
  if (ctx.plan->should_fail(fault::Site::kStripWorker, ctx.solve,
                            ctx.attempt, salt))
    throw fault::InjectedFault(fault::Site::kStripWorker, ctx.solve,
                               ctx.attempt);
}

void ThreadPool::strip_worker_loop(std::size_t thread_index) {
  // Baseline generation captured at session entry (published under mu_ by
  // begin_strips before the wakeup); the worker runs every generation the
  // master issues after it exactly once.
  std::uint64_t seen = strip_enter_gen_;
  // Spin budget before a waiter parks (worker) or starts yielding
  // (master): a few thousand pauses cover the skew between threads
  // finishing their chunks of the same front; anything longer means
  // genuine idleness. Env-tunable via LDDP_SPIN_US.
  const int spin_budget = idle_spin_iters();
  for (;;) {
    // Spin-then-park until the next front (generation bump) or session end.
    int spins = 0;
    while (strip_gen_.load(std::memory_order_seq_cst) == seen &&
           !strip_exit_.load(std::memory_order_seq_cst)) {
      if (++spins < spin_budget) {
        cpu_relax();
      } else {
        std::unique_lock<std::mutex> lock(strip_mu_);
        strip_parked_.fetch_add(1, std::memory_order_seq_cst);
        strip_cv_.wait(lock, [&] {
          return strip_gen_.load(std::memory_order_seq_cst) != seen ||
                 strip_exit_.load(std::memory_order_seq_cst);
        });
        strip_parked_.fetch_sub(1, std::memory_order_seq_cst);
        break;
      }
    }
    if (strip_gen_.load(std::memory_order_seq_cst) == seen) return;  // exit
    seen = strip_gen_.load(std::memory_order_seq_cst);
    try {
      maybe_fail_strip_chunk(thread_index);
      run_chunk(strip_region_, thread_index, workers_.size() + 1);
    } catch (...) {
      std::lock_guard<std::mutex> lock(strip_mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    // Unconditional: a throwing chunk must still arrive at the barrier,
    // or the master's join spin below never completes.
    strip_done_.fetch_add(1, std::memory_order_seq_cst);
  }
}

void ThreadPool::begin_strips() {
  if (workers_.empty()) return;  // single thread: everything runs inline
  acquire_master();  // held until end_strips — the session owns the pool
  try {
    std::lock_guard<std::mutex> lock(mu_);
    LDDP_CHECK_MSG(!strip_mode_, "strip sessions do not nest");
    LDDP_CHECK_MSG(pending_ == 0,
                   "strip session inside an active parallel region");
    strip_mode_ = true;
    strip_exit_.store(false, std::memory_order_seq_cst);
    strip_exited_.store(0, std::memory_order_seq_cst);
    strip_enter_gen_ = strip_gen_.load(std::memory_order_seq_cst);
    first_error_ = nullptr;
    ++region_.epoch;  // wake the workers into the barrier
  } catch (...) {
    // A failed usage check must give back the mastership acquired above:
    // StripSession's constructor threw, so its destructor will never run
    // end_strips, and a stranded master deadlocks every later driver of
    // the pool.
    release_master();
    throw;
  }
  cv_start_.notify_all();
}

void ThreadPool::end_strips() {
  if (workers_.empty() || !strip_mode_) return;
  strip_exit_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(strip_mu_);
  }
  strip_cv_.notify_all();
  // Workers leave the barrier quickly (they are spinning or parked, never
  // mid-front here — dispatch joins every front before returning).
  while (strip_exited_.load(std::memory_order_seq_cst) != workers_.size())
    std::this_thread::yield();
  {
    std::lock_guard<std::mutex> lock(mu_);
    strip_mode_ = false;
  }
  release_master();
}

void ThreadPool::strip_dispatch(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  // Workers are quiescent between generations (the previous dispatch joined
  // them), so the region can be published without a lock: the seq_cst
  // generation bump below is the release point.
  strip_region_.begin = begin;
  strip_region_.end = end;
  strip_region_.body = &body;
  strip_region_.epoch += 1;  // per-dispatch salt for worker fault draws
  strip_region_.fault = fault::snapshot();
  strip_done_.store(0, std::memory_order_seq_cst);
  strip_gen_.fetch_add(1, std::memory_order_seq_cst);
  // Wake parked workers. The empty critical section orders the notify
  // against a worker that is between its predicate check and its wait;
  // spinning workers see the generation bump directly.
  if (strip_parked_.load(std::memory_order_seq_cst) != 0) {
    {
      std::lock_guard<std::mutex> lock(strip_mu_);
    }
    strip_cv_.notify_all();
  }
  try {
    run_chunk(strip_region_, 0, workers_.size() + 1);
  } catch (...) {
    std::lock_guard<std::mutex> lock(strip_mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  const int spin_budget = idle_spin_iters();
  int spins = 0;
  while (strip_done_.load(std::memory_order_seq_cst) != workers_.size()) {
    if (++spins < spin_budget)
      cpu_relax();
    else
      std::this_thread::yield();
  }
  strip_region_.body = nullptr;
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(strip_mu_);
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::maybe_yield_strips() {
  // The caller owns the session at master depth 1: closing and reopening
  // it releases mastership for exactly the gap between the two calls, and
  // acquire_master inside begin_strips then queues behind the waiters
  // that prompted the yield. Semantically a no-op — the session state is
  // rebuilt from scratch — so front bodies never observe the bounce.
  if (!coop_strips_ ||
      master_waiters_.load(std::memory_order_seq_cst) == 0)
    return;
  end_strips();
  begin_strips();
}

void ThreadPool::parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (begin >= end) return;
  if (exec_ != nullptr) {
    // Stealing facade: no master arbitration — concurrent drivers submit
    // overlapping regions and the shared executor's workers flow to
    // whichever has morsels left.
    exec_->parallel_region(begin, end, grain, body);
    return;
  }
  if (workers_.empty()) {
    body(begin, end);
    return;
  }
  bool in_strips = false;
  {
    MasterGuard master(this);
    if (strip_mode_) {
      // Only the owning master reaches this point (mastership is held for
      // a whole strip session), and only it toggles strip_mode_, so the
      // unlocked read is safe.
      strip_dispatch(begin, end, body);
      in_strips = true;
    } else {
      fork_join(begin, end, body);
    }
  }
  // Past the region's MasterGuard (depth back to the session's 1): the
  // between-fronts point where a cooperative session hands the workers to
  // a co-resident driver.
  if (in_strips) maybe_yield_strips();
}

void ThreadPool::fork_join(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    LDDP_CHECK_MSG(pending_ == 0, "nested parallel regions are "
                                  "not supported");
    region_.begin = begin;
    region_.end = end;
    region_.body = &body;
    ++region_.epoch;
    pending_ = workers_.size();
    first_error_ = nullptr;
  }
  cv_start_.notify_all();
  // The master participates as thread 0 rather than idling (CP.43).
  try {
    run_chunk(region_, 0, workers_.size() + 1);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    region_.body = nullptr;
    if (first_error_) {
      auto err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(begin, end,
                       [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) body(i);
                       });
}

void ThreadPool::run_strips(
    std::size_t num_fronts,
    const std::function<void(std::size_t)>& front_body) {
  StripSession session(this);
  for (std::size_t f = 0; f < num_fronts; ++f) front_body(f);
}

ThreadPool& default_pool() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

ThreadPool& shared_stealing_pool() {
  static ThreadPool pool(&shared_executor());
  return pool;
}

}  // namespace lddp::cpu
