#include "cpu/thread_pool.h"

#include <algorithm>

namespace lddp::cpu {

ThreadPool::ThreadPool(std::size_t num_threads) {
  LDDP_CHECK_MSG(num_threads >= 1, "pool needs at least one thread");
  workers_.reserve(num_threads - 1);
  for (std::size_t w = 0; w + 1 < num_threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    ++region_.epoch;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run_chunk(std::size_t thread_index, std::size_t nthreads) {
  // Static chunking identical to OpenMP schedule(static): thread k gets the
  // k-th contiguous block, sized to balance remainders.
  const std::size_t total = region_.end - region_.begin;
  const std::size_t base = total / nthreads;
  const std::size_t rem = total % nthreads;
  const std::size_t lo = region_.begin + thread_index * base +
                         std::min(thread_index, rem);
  const std::size_t hi = lo + base + (thread_index < rem ? 1 : 0);
  if (lo < hi) (*region_.body)(lo, hi);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] {
        return shutdown_ || region_.epoch != seen_epoch;
      });
      if (shutdown_) return;
      seen_epoch = region_.epoch;
    }
    // Worker index w maps to thread index w+1; the master is thread 0.
    try {
      run_chunk(worker_index + 1, workers_.size() + 1);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      LDDP_DCHECK(pending_ > 0);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  if (workers_.empty()) {
    body(begin, end);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    LDDP_CHECK_MSG(pending_ == 0, "nested/concurrent parallel regions are "
                                  "not supported");
    region_.begin = begin;
    region_.end = end;
    region_.body = &body;
    ++region_.epoch;
    pending_ = workers_.size();
    first_error_ = nullptr;
  }
  cv_start_.notify_all();
  // The master participates as thread 0 rather than idling (CP.43).
  try {
    run_chunk(0, workers_.size() + 1);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    region_.body = nullptr;
    if (first_error_) {
      auto err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(begin, end,
                       [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) body(i);
                       });
}

ThreadPool& default_pool() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace lddp::cpu
