// Analytic CPU timing model.
//
// The framework's heterogeneous scheduling decisions (and the reproduced
// figures) are driven by *simulated* time so they are deterministic and
// hardware-independent. This model prices the CPU side of a wavefront
// iteration as
//
//   overhead + max(compute_chunk_time, memory_time)
//
// where the overhead is a persistent-pool barrier (the paper reuses "a few
// heavy-weight threads" across iterations, Section IV-A), the compute term
// is the longest static chunk at the per-thread issue rate (with an SMT
// throughput bonus), and the memory term models the socket's DRAM
// bandwidth — the binding resource once the table outgrows the LLC, and
// the reason the GPU overtakes the CPU on large tables in Figs 9-13.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>

#include "util/check.h"

namespace lddp::cpu {

/// Static description of a CPU, mirroring the two testbeds in Section II-A.
struct CpuSpec {
  std::string name;
  int cores = 1;             ///< physical cores
  int logical_threads = 1;   ///< with hyper-threading
  double clock_ghz = 1.0;
  /// Throughput gained from hyper-threading when logical > physical
  /// (empirically ~25% on the Nehalem/Ivy Bridge parts the paper uses).
  double smt_boost = 0.25;
  /// Achievable socket DRAM bandwidth for streaming table sweeps.
  double mem_bandwidth_gbs = 20.0;
  /// Cost of one OpenMP-style fork/join parallel region — what the paper's
  /// pure-CPU baseline pays per wavefront iteration.
  double parallel_region_overhead_us = 6.0;
  /// Cost of a lightweight barrier among persistent worker threads — what
  /// the framework's own CPU strips pay per iteration ("a few heavy-weight
  /// threads", Section IV-A, created once and reused).
  double hetero_strip_barrier_us = 1.5;
  /// Cost of dispatching a front on the calling thread only.
  double serial_dispatch_overhead_us = 0.05;

  /// Intel i7-980: 6C/12T @ 3.33 GHz (Hetero-High host).
  static CpuSpec i7_980();
  /// Intel i7-3632QM: 4C/8T @ 2.2 GHz (Hetero-Low host).
  static CpuSpec i7_3632qm();
};

/// Per-problem work profile: how expensive one application of the user's
/// function f is. The same profile prices CPU and GPU execution so the
/// crossover between them is governed by architecture, not by the profile.
struct WorkProfile {
  /// CPU cycles to compute f once (loads from cache, compares, stores).
  double cpu_cycles_per_cell = 12.0;
  /// GPU cycles a single thread spends on f (more address arithmetic, no
  /// big caches; throughput still wins via lane count).
  double gpu_cycles_per_cell = 48.0;
  /// Bytes of memory traffic per cell (reads of contributing cells plus
  /// the store), before layout-amplification effects.
  double bytes_per_cell = 20.0;
  /// Throughput multiplier of the batch-front (SIMD) kernel over the
  /// scalar path, applied to the CPU *compute* term only (the memory
  /// term is vector-agnostic). 1.0 = scalar; strategies set the
  /// calibrated value (cpu::calibrated_vector_speedup) when the batch
  /// path is active so tuner sweeps see the real CPU speed.
  double vector_speedup = 1.0;
};

/// Simulated seconds for the CPU to process `cells` cells of one wavefront
/// iteration.
///
/// `mem_amplification` >= 1 models cache-hostile walk orders (diagonal
/// sweeps over the row-major host table, the strided column part of the
/// inverted-L pattern — Section V-B). `streamed` selects the persistent-
/// thread barrier pricing used inside the framework's multi-front phases
/// instead of the full fork/join the baseline pays.
double cpu_front_seconds(const CpuSpec& spec, const WorkProfile& work,
                         std::size_t cells, bool parallel = true,
                         double mem_amplification = 1.0,
                         bool streamed = false);

/// Simulated seconds for one *tiled* wavefront iteration: `num_tiles`
/// independent tiles of `tile_cells` cells each, one tile per worker at a
/// time, each tile swept serially in cache (the "block of cells per
/// thread" mapping of Section IV-A; cf. Chowdhury et al.'s cache-efficient
/// tiling). No per-cell amplification applies — tiles are sized to stay
/// cache-resident — but the socket bandwidth still bounds the aggregate.
double cpu_tiled_front_seconds(const CpuSpec& spec, const WorkProfile& work,
                               std::size_t num_tiles, std::size_t tile_cells);

/// True when the parallel pricing beats the serial pricing for this front —
/// the "if" clause a tuned OpenMP implementation would use.
bool parallel_beats_serial(const CpuSpec& spec, const WorkProfile& work,
                           std::size_t cells, double mem_amplification = 1.0,
                           bool streamed = false);

/// Effective cell throughput (cells/second) at full parallel occupancy,
/// ignoring per-front overheads. `mem_amplification` as above.
double cpu_peak_throughput(const CpuSpec& spec, const WorkProfile& work,
                           double mem_amplification = 1.0);

}  // namespace lddp::cpu
