// Persistent worker pool replacing the paper's OpenMP 3.0 usage.
//
// The paper creates "a few heavy-weight threads where each thread is
// responsible for processing a group of cells" (Section IV-A). This pool
// provides exactly that model: workers are created once and reused across
// wavefront iterations (CP.41: minimize thread creation/destruction), and
// `parallel_for` hands each worker one static chunk per call, mirroring
// OpenMP's `schedule(static)`.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.h"

namespace lddp::cpu {

/// Fixed-size pool executing fork/join style parallel regions.
///
/// Usage:
///   ThreadPool pool(6);
///   pool.parallel_for(0, n, [&](std::size_t i) { ... });
///
/// Thread-safety: a ThreadPool may be used from one "master" thread at a
/// time; parallel regions do not nest (matching the paper's flat OpenMP
/// usage). Worker exceptions are captured and rethrown on the master.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }  // + master

  /// Runs body(i) for every i in [begin, end), statically chunked across
  /// all threads (workers + the calling thread). Blocks until every
  /// iteration has completed. Rethrows the first worker exception.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Chunked variant: body(chunk_begin, chunk_end) once per chunk — lets
  /// hot loops avoid a std::function call per cell.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body);

 private:
  struct Region {
    // Current parallel region, guarded by mu_.
    std::size_t begin = 0;
    std::size_t end = 0;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::uint64_t epoch = 0;  // bumped per region; workers wait on it
  };

  void worker_loop(std::size_t worker_index);
  void run_chunk(std::size_t thread_index, std::size_t nthreads);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Region region_;
  std::size_t pending_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

/// Process-wide default pool sized to the hardware. Lazily constructed;
/// intended for examples and tests that don't care about explicit sizing.
ThreadPool& default_pool();

}  // namespace lddp::cpu
