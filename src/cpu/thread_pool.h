// Persistent worker pool replacing the paper's OpenMP 3.0 usage.
//
// The paper creates "a few heavy-weight threads where each thread is
// responsible for processing a group of cells" (Section IV-A). This pool
// provides exactly that model: workers are created once and reused across
// wavefront iterations (CP.41: minimize thread creation/destruction), and
// `parallel_for` hands each worker one static chunk per call, mirroring
// OpenMP's `schedule(static)`.
//
// Two dispatch mechanisms share the workers:
//  * fork/join — the default: each parallel region wakes the workers
//    through a condvar and joins them through another (OpenMP-style).
//  * strip sessions — while a StripSession is active, workers stay
//    resident in a generation-counted spin-then-park barrier and each
//    region is one barrier round. This removes the two condvar round
//    trips per wavefront that dominate small fronts, implementing the
//    paper's persistent-thread model for real.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "cpu/stealing_executor.h"
#include "util/check.h"
#include "util/fault_injection.h"

namespace lddp::cpu {

/// Fixed-size pool executing fork/join style parallel regions.
///
/// Usage:
///   ThreadPool pool(6);
///   pool.parallel_for(0, n, [&](std::size_t i) { ... });
///
/// Thread-safety: any number of threads may drive the pool; an internal
/// master arbitration serializes them, so concurrent parallel regions —
/// and concurrent StripSessions, which hold mastership for their whole
/// lifetime — execute one after another rather than racing (two solves
/// sharing default_pool() are safe, merely not parallel with each other;
/// the batch engine gives each in-flight solve its own pool when real
/// overlap is wanted). Within one master, regions still do not nest
/// (matching the paper's flat OpenMP usage). Worker exceptions are
/// captured and rethrown on the master.
class ThreadPool {
 public:
  /// `coop_strips` enables *cooperative strip sessions*: a strip session
  /// still owns the pool, but between fronts it checks for other threads
  /// blocked on mastership and, if any, bounces its session (end + begin)
  /// so a co-resident driver gets the workers for its own front. This lets
  /// N concurrent solves time-share ONE pool at front granularity instead
  /// of either serializing whole solves or oversubscribing the host with
  /// N private pools — the batch engine's packed CPU co-scheduling.
  explicit ThreadPool(std::size_t num_threads, bool coop_strips = false);

  /// Facade over a work-stealing executor (Schedule::kStealing): the pool
  /// owns no threads of its own — every parallel region routes to
  /// `exec`'s morsel-stealing runtime, strip sessions are no-ops (the
  /// executor needs no persistent barrier; regions from any number of
  /// concurrent masters interleave freely), and there is no master
  /// arbitration. Lets every existing call site — strategies, platform,
  /// batch engine — switch substrate without code changes. `exec` must
  /// outlive the pool.
  explicit ThreadPool(StealingExecutor* exec);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const {
    return exec_ != nullptr ? exec_->size() : workers_.size() + 1;
  }

  /// The stealing executor behind this pool, or null for a classic
  /// static-chunking pool.
  StealingExecutor* stealing() const { return exec_; }

  /// Runs body(i) for every i in [begin, end), statically chunked across
  /// all threads (workers + the calling thread). Blocks until every
  /// iteration has completed. Rethrows the first worker exception.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Chunked variant: body(chunk_begin, chunk_end) once per chunk — lets
  /// hot loops avoid a std::function call per cell. Inside an active strip
  /// session this dispatches through the persistent-strip barrier. On a
  /// stealing facade, `grain` is the adaptive morsel size in cells
  /// (0 = executor default, typically computed by the caller from the
  /// calibrated per-cell cost model); static pools chunk one block per
  /// thread regardless and ignore it.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body,
      std::size_t grain = 0);

  /// Persistent-strip execution: enters a strip session for the duration
  /// of the call and runs front_body(f) for f in [0, num_fronts) in order
  /// on the calling thread. parallel_for calls made by front_body are each
  /// one lightweight barrier round — workers never return to the condvar
  /// between fronts.
  void run_strips(std::size_t num_fronts,
                  const std::function<void(std::size_t)>& front_body);

 private:
  friend class StripSession;

  struct Region {
    // Current parallel region, guarded by mu_ (fork/join mode) or by the
    // strip barrier's generation protocol (strip mode).
    std::size_t begin = 0;
    std::size_t end = 0;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::uint64_t epoch = 0;  // bumped per region; workers wait on it
    // Master's fault context at dispatch (plan null when none): lets
    // workers — which have no thread-local scope of their own — draw
    // kStripWorker injection decisions for the solve the strips belong
    // to. Published/consumed under the same protocol as `body`; the plan
    // outlives the dispatch because the master joins every worker before
    // its FaultScope can unwind.
    fault::FaultContext fault;
  };

  void worker_loop(std::size_t worker_index);
  void run_chunk(const Region& region, std::size_t thread_index,
                 std::size_t nthreads);
  /// Throws fault::InjectedFault when the dispatching master's fault plan
  /// fails this worker's chunk of the current strip front (site
  /// kStripWorker). Exercises real worker-exception propagation through
  /// the barrier; workers only — the master's own chunk faults through
  /// the ordinary per-solve sites.
  void maybe_fail_strip_chunk(std::size_t thread_index) const;
  /// Condvar fork/join region (the non-strip path of parallel_for_chunked);
  /// caller holds mastership.
  void fork_join(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t, std::size_t)>& body);

  // --- master arbitration ------------------------------------------------
  // One thread owns the pool at a time; re-acquisition by the owner (a
  // parallel region inside its own strip session) just bumps the depth.
  void acquire_master();
  void release_master();
  struct MasterGuard {
    ThreadPool* pool;
    explicit MasterGuard(ThreadPool* p) : pool(p) { pool->acquire_master(); }
    ~MasterGuard() { pool->release_master(); }
    MasterGuard(const MasterGuard&) = delete;
    MasterGuard& operator=(const MasterGuard&) = delete;
  };

  // --- strip-session machinery -------------------------------------------
  void begin_strips();
  void end_strips();
  /// Between-front yield of a cooperative strip session: when another
  /// thread waits for mastership, close and reopen the session so the
  /// waiter's region (or whole session) runs first. Called by the session
  /// owner at master depth 1 (no region active).
  void maybe_yield_strips();
  void strip_dispatch(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t, std::size_t)>& body);
  void strip_worker_loop(std::size_t thread_index);

  std::vector<std::thread> workers_;
  StealingExecutor* exec_ = nullptr;  // non-null: stealing facade
  bool coop_strips_ = false;
  std::mutex master_mu_;
  std::condition_variable master_cv_;
  std::thread::id master_owner_{};
  int master_depth_ = 0;
  std::atomic<int> master_waiters_{0};  // threads blocked in acquire_master
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Region region_;
  std::size_t pending_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;

  // Strip-session state. strip_mode_/strip_enter_gen_ are written by the
  // master under mu_ and read by waking workers under mu_; the atomics
  // carry the per-front barrier (Dekker-style handshake with seq_cst).
  bool strip_mode_ = false;
  std::uint64_t strip_enter_gen_ = 0;
  Region strip_region_;
  std::atomic<std::uint64_t> strip_gen_{0};
  std::atomic<std::size_t> strip_done_{0};
  std::atomic<std::size_t> strip_parked_{0};
  std::atomic<std::size_t> strip_exited_{0};
  std::atomic<bool> strip_exit_{false};
  std::mutex strip_mu_;
  std::condition_variable strip_cv_;
};

/// RAII strip session: while alive, every parallel region on the pool
/// dispatches through the persistent-strip barrier instead of a full
/// condvar fork/join. Null and single-threaded pools are a no-op; sessions
/// do not nest on one thread. Construction takes pool mastership (blocking
/// while another thread holds a session or region on the same pool) and
/// destruction releases it, so concurrent sessions serialize safely.
class StripSession {
 public:
  explicit StripSession(ThreadPool* pool) : pool_(pool) {
    if (pool_) pool_->begin_strips();
  }
  ~StripSession() {
    if (pool_) pool_->end_strips();
  }
  StripSession(const StripSession&) = delete;
  StripSession& operator=(const StripSession&) = delete;

 private:
  ThreadPool* pool_;
};

/// Process-wide default pool sized to the hardware. Lazily constructed;
/// intended for examples and tests that don't care about explicit sizing.
ThreadPool& default_pool();

/// Process-wide stealing facade over cpu::shared_executor() — the pool
/// RunConfig{schedule = Schedule::kStealing} routes solo solves through.
/// Safe to share across concurrent solves: the executor has no master
/// arbitration, so their regions genuinely overlap. Lazily constructed.
ThreadPool& shared_stealing_pool();

}  // namespace lddp::cpu
