// Batch-front execution contract (the SIMD batch-kernel layer).
//
// The wavefront-major layouts (tables/layout.h) store each front as a
// dense 1-D array — exactly the shape vector code wants. A FrontSpan
// describes one contiguous affine run of a front's *interior* cells
// together with densely packed neighbour values, so a problem can compute
// the whole run in one branchless pass instead of one `compute` call per
// cell. The scalar path remains the fallback for every problem and the
// differential oracle: batch results must be bit-identical.
#pragma once

#include <concepts>
#include <cstddef>

namespace lddp {

/// One affine run of interior cells of a single front. Lane k (0 <= k <
/// len) is cell (i0 + k*di, j0 + k*dj). The caller guarantees:
///  * every lane is interior — i >= 1, j >= 1, and j + 1 < cols whenever
///    the contributing set includes NE — so f never needs its base-case
///    or edge branches;
///  * for each dependency in deps(), the matching pointer holds the
///    neighbour's value at index k, already final (neighbours of interior
///    lanes live in earlier fronts); pointers of unused deps are null;
///  * out[k] receives lane k's value; out does not alias the inputs.
///
/// Lane packing (inter-solve vectorization): `lanes` > 1 declares that
/// each front position carries the same cell of `lanes` interleaved
/// solves — position k's values for all solves occupy elements
/// [k * lane_stride, k * lane_stride + lanes) of every span, with
/// lane_stride >= lanes (padded to a vector-width multiple so aligned
/// vector access works at every position; padding elements replicate
/// solve 0). The per-solve hooks in the problem headers implement only
/// lanes == 1 (and return false otherwise); interleaved spans are
/// executed by the lane-generic kernels in core/lane_kernels.h, which
/// the lane-cohort driver dispatches by ISA at runtime.
template <typename V>
struct FrontSpan {
  std::size_t i0 = 0, j0 = 0;    ///< grid coordinates of lane 0
  std::ptrdiff_t di = 0, dj = 0; ///< per-lane step through the grid
  std::size_t len = 0;
  std::size_t lanes = 1;         ///< interleaved solves per position
  std::size_t lane_stride = 1;   ///< elements between positions (>= lanes)
  const V* w = nullptr;
  const V* nw = nullptr;
  const V* n = nullptr;
  const V* ne = nullptr;
  V* out = nullptr;
};

/// Detects the optional batch hook `bool compute_front(FrontSpan)`. The
/// hook returns false when it does not implement the span's shape (e.g. a
/// knight-move dj == +2 a kernel only tuned for anti-diagonals); the
/// caller then falls back to the scalar path for that run.
template <typename P>
concept BatchFrontProblem =
    requires(const P& p, const FrontSpan<typename P::Value>& s) {
      { p.compute_front(s) } -> std::convertible_to<bool>;
    };

template <typename P>
inline constexpr bool has_batch_front_v = BatchFrontProblem<P>;

}  // namespace lddp
