// The user-facing problem concept (Section V-C): to use the framework, a
// user supplies (1) the function f — here `compute` — and (2) the
// initialization — here `boundary` values plus whatever base-case logic f
// encodes for the table edges, exactly like the paper's Levenshtein
// formulation handles min(i,j)==0 inside f.
#pragma once

#include <concepts>
#include <cstddef>
#include <type_traits>

#include "core/contributing_set.h"
#include "cpu/cost_model.h"

namespace lddp {

/// Values of the four representative cells, as seen by f. Fields for
/// dependencies outside the problem's contributing set — or outside the
/// table — hold the problem's boundary() value.
template <typename T>
struct Neighbors {
  T w;   ///< cell(i,   j-1)
  T nw;  ///< cell(i-1, j-1)
  T n;   ///< cell(i-1, j  )
  T ne;  ///< cell(i-1, j+1)
};

/// An LDDP-Plus problem instance.
///
/// Requirements beyond the signature: `compute(i, j, nb)` must be a pure
/// function of its arguments and the problem's own immutable state (input
/// sequences, cost grids, ...), and must only read the `nb` fields named in
/// `deps()` — the framework schedules and transfers data based on `deps()`,
/// so reading an undeclared neighbour yields stale values on the simulated
/// device, just as it would on a real one.
template <typename P>
concept LddpProblem = requires(const P& p, std::size_t i, std::size_t j,
                               const Neighbors<typename P::Value>& nb) {
  typename P::Value;
  requires std::is_trivially_copyable_v<typename P::Value>;
  { p.rows() } -> std::convertible_to<std::size_t>;
  { p.cols() } -> std::convertible_to<std::size_t>;
  { p.deps() } -> std::convertible_to<ContributingSet>;
  { p.boundary() } -> std::convertible_to<typename P::Value>;
  { p.compute(i, j, nb) } -> std::convertible_to<typename P::Value>;
};

/// Optional hook: a problem may expose `work()` to describe the per-cell
/// cost of its f for the timing models; otherwise a generic profile is
/// assumed.
template <typename P>
cpu::WorkProfile work_profile_of(const P& p) {
  if constexpr (requires { { p.work() } -> std::convertible_to<cpu::WorkProfile>; }) {
    return p.work();
  } else {
    return cpu::WorkProfile{};
  }
}

/// Optional hook: bytes of problem input (sequences, cost grid, image) that
/// a GPU-side execution must upload once before the first kernel.
template <typename P>
std::size_t input_bytes_of(const P& p) {
  if constexpr (requires { { p.input_bytes() } -> std::convertible_to<std::size_t>; }) {
    return p.input_bytes();
  } else {
    return 0;
  }
}

/// Optional hook: bytes of the *result* a consumer downloads from the
/// device when the fill finishes — e.g. one row for a shortest-path cost,
/// the bitmap for dithering, the whole table when a traceback follows.
/// Defaults to the full table. (The framework always assembles the full
/// host-side table for verification; this hook only prices the final
/// transfer the production use case would issue.)
template <typename P>
std::size_t result_bytes_of(const P& p) {
  if constexpr (requires { { p.result_bytes() } -> std::convertible_to<std::size_t>; }) {
    return p.result_bytes();
  } else {
    return p.rows() * p.cols() * sizeof(typename P::Value);
  }
}

}  // namespace lddp
