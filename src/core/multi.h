// Multi-accelerator execution — the generalization the paper's conclusion
// invites: one CPU plus N accelerators, each owning a column strip of
// every wavefront.
//
// Scope: the horizontal pattern (constant parallelism makes the N+1-way
// split well-defined row by row). Unit 0 is the CPU with strip
// [0, b1); device k (1-based) owns [b_k, b_{k+1}). Boundary cells cross
// strips exactly as in the two-unit strategies: NW left-to-right, NE
// right-to-left. Device-to-device boundaries are staged through the host
// (d2h on the producer, h2d on the consumer), as CUDA 5.0-era systems
// without peer access would do.
#pragma once

#include <memory>
#include <numeric>
#include <vector>

#include "core/strategies/common.h"
#include "core/strategies/heuristics.h"

namespace lddp {

/// Column-strip widths for CPU + N devices; must sum to the table width.
struct MultiSplit {
  std::vector<std::size_t> widths;  ///< widths[0] = CPU, then one per device
};

/// Throughput-proportional default split.
template <LddpProblem P>
MultiSplit default_multi_split(const P& p, sim::Platform& platform) {
  const sim::KernelInfo info = detail::kernel_info_for(p, "multi");
  std::vector<double> rate;
  rate.push_back(cpu::cpu_peak_throughput(platform.spec().cpu, info.work));
  for (std::size_t k = 0; k < platform.num_gpus(); ++k)
    rate.push_back(sim::gpu_peak_throughput(platform.gpu(k).spec(), info));
  const double total = std::accumulate(rate.begin(), rate.end(), 0.0);
  MultiSplit split;
  std::size_t assigned = 0;
  for (std::size_t u = 0; u < rate.size(); ++u) {
    std::size_t w =
        u + 1 == rate.size()
            ? p.cols() - assigned
            : static_cast<std::size_t>(rate[u] / total *
                                       static_cast<double>(p.cols()));
    split.widths.push_back(w);
    assigned += w;
  }
  return split;
}

/// Solves a horizontal-pattern problem across CPU + all of the platform's
/// devices. `split` may be empty (throughput-proportional default).
template <LddpProblem P>
Grid<typename P::Value> solve_multi_horizontal(const P& p,
                                               sim::Platform& platform,
                                               MultiSplit split,
                                               SolveStats* stats) {
  using V = typename P::Value;
  Stopwatch wall;
  const std::size_t n = p.rows(), m = p.cols();
  const ContributingSet deps = p.deps();
  LDDP_CHECK_MSG(canonical(classify(deps)) == Pattern::kHorizontal,
                 "solve_multi_horizontal needs a horizontal-pattern problem "
                 "(got " << to_string(classify(deps)) << ")");
  const V bound = p.boundary();
  const cpu::WorkProfile work = work_profile_of(p);
  const RowMajorLayout layout(n, m);
  const std::size_t num_dev = platform.num_gpus();

  if (split.widths.empty()) split = default_multi_split(p, platform);
  LDDP_CHECK_MSG(split.widths.size() == num_dev + 1,
                 "split needs one width per unit (CPU + " << num_dev
                                                          << " devices)");
  LDDP_CHECK_MSG(std::accumulate(split.widths.begin(), split.widths.end(),
                                 std::size_t{0}) == m,
                 "split widths must sum to the table width");
  for (std::size_t k = 1; k < split.widths.size(); ++k)
    LDDP_CHECK_MSG(split.widths[k] > 0,
                   "device strips must be non-empty (drop the device "
                   "instead); device " << k - 1 << " got width 0");

  // Strip boundaries: unit u owns columns [begin[u], begin[u+1]).
  std::vector<std::size_t> begin(num_dev + 2, 0);
  for (std::size_t u = 0; u < split.widths.size(); ++u)
    begin[u + 1] = begin[u] + split.widths[u];

  const bool need_lr = deps.has_nw();  // crosses left -> right
  const bool need_rl = deps.has_ne();  // crosses right -> left

  Grid<V> table(n, m);
  detail::GridReader<V> hread{&table};
  std::vector<sim::DeviceBuffer<V>> dtables;
  // One stream per boundary direction so per-row copies never queue behind
  // each other (a single copy stream would serialize the two directions
  // and put the accumulated lag on the critical path).
  std::vector<sim::Device::StreamId> in_left(num_dev), in_right(num_dev),
      out_left(num_dev), out_right(num_dev), result_stream(num_dev);
  const sim::KernelInfo info = detail::kernel_info_for(p, "multi.h");
  for (std::size_t k = 0; k < num_dev; ++k) {
    dtables.push_back(platform.gpu(k).template alloc<V>(layout.size()));
    in_left[k] = platform.gpu(k).create_stream();
    in_right[k] = platform.gpu(k).create_stream();
    out_left[k] = platform.gpu(k).create_stream();
    out_right[k] = platform.gpu(k).create_stream();
    result_stream[k] = platform.gpu(k).create_stream();
    // Each device uploads its strip's share of the input.
    platform.gpu(k).record_h2d(
        platform.gpu(k).default_stream(),
        static_cast<std::size_t>(static_cast<double>(input_bytes_of(p)) *
                                 static_cast<double>(split.widths[k + 1]) /
                                 static_cast<double>(m)),
        sim::MemoryKind::kPageable);
  }

  // Per-unit op of the previous row, and the boundary-transfer ops that
  // unit u's next row must wait for.
  std::vector<sim::OpId> unit_op(num_dev + 1, sim::kNoOp);
  std::vector<sim::OpId> left_ready(num_dev + 1, sim::kNoOp);
  std::vector<sim::OpId> right_ready(num_dev + 1, sim::kNoOp);

  auto dev_read = [&](std::size_t k) {
    return detail::DeviceReader<V, RowMajorLayout>{dtables[k].device_ptr(),
                                                   &layout};
  };

  sim::OpId last_cpu = sim::kNoOp;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<sim::OpId> new_op(num_dev + 1, sim::kNoOp);

    // --- CPU strip -------------------------------------------------------
    if (split.widths[0] > 0) {
      if (need_rl && i > 0 && num_dev > 0 && begin[1] < m) {
        // NE read of the CPU's rightmost cell: device 0's column begin[1].
        table.at(i - 1, begin[1]) =
            dtables[0].device_ptr()[layout.flat(i - 1, begin[1])];
      }
      sim::Platform::CpuFrontOpts opts;
      opts.streamed = true;
      opts.parallel = cpu::parallel_beats_serial(
          platform.spec().cpu, work, split.widths[0], 1.0, true);
      opts.dep1 = right_ready[0];
      new_op[0] = platform.cpu_front(
          split.widths[0], work,
          [&, i](std::size_t j) {
            table.at(i, j) =
                detail::compute_cell(p, deps, bound, i, j, m, hread);
          },
          opts);
      last_cpu = new_op[0];
    }

    // --- device strips ---------------------------------------------------
    for (std::size_t k = 0; k < num_dev; ++k) {
      const std::size_t lo = begin[k + 1], hi = begin[k + 2];
      if (lo >= hi) continue;
      auto read = dev_read(k);
      V* out = dtables[k].device_ptr();
      sim::Device& dev = platform.gpu(k);
      dev.stream_wait(dev.default_stream(), right_ready[k + 1]);
      new_op[k + 1] = dev.launch(
          dev.default_stream(), info, hi - lo,
          [&, i, lo, out, read](std::size_t c) {
            out[layout.flat(i, lo + c)] = detail::compute_cell(
                p, deps, bound, i, lo + c, m, read);
          },
          left_ready[k + 1]);
    }

    // --- boundary traffic for the next row -------------------------------
    std::fill(left_ready.begin(), left_ready.end(), sim::kNoOp);
    std::fill(right_ready.begin(), right_ready.end(), sim::kNoOp);
    for (std::size_t u = 0; u + 1 <= num_dev; ++u) {
      // Boundary between unit u (left) and unit u+1 (right) at column
      // begin[u+1]-1 / begin[u+1].
      const std::size_t bcol = begin[u + 1];
      if (bcol == 0 || bcol >= m) continue;
      if (need_lr && new_op[u] != sim::kNoOp) {
        // Left unit's rightmost cell -> right unit (read as NW).
        const V value = u == 0
                            ? table.at(i, bcol - 1)
                            : dtables[u - 1].device_ptr()[layout.flat(
                                  i, bcol - 1)];
        dtables[u].device_ptr()[layout.flat(i, bcol - 1)] = value;
        sim::OpId op = new_op[u];
        if (u > 0) {  // stage device -> host -> device
          op = platform.gpu(u - 1).record_d2h(out_right[u - 1], sizeof(V),
                                              sim::MemoryKind::kPinned, op);
        }
        left_ready[u + 1] = platform.gpu(u).record_h2d(
            in_left[u], sizeof(V), sim::MemoryKind::kPinned, op);
      }
      if (need_rl && new_op[u + 1] != sim::kNoOp) {
        // Right unit's leftmost cell -> left unit (read as NE).
        const V value = dtables[u].device_ptr()[layout.flat(i, bcol)];
        sim::OpId op = platform.gpu(u).record_d2h(
            out_left[u], sizeof(V), sim::MemoryKind::kPinned,
            new_op[u + 1]);
        if (u == 0) {
          table.at(i, bcol) = value;  // host-visible for the CPU strip
        } else {
          dtables[u - 1].device_ptr()[layout.flat(i, bcol)] = value;
          op = platform.gpu(u - 1).record_h2d(in_right[u - 1], sizeof(V),
                                              sim::MemoryKind::kPinned, op);
        }
        right_ready[u] = op;
      }
    }
  }

  // Final downloads: each device returns its strip.
  sim::OpId fin = last_cpu;
  for (std::size_t k = 0; k < num_dev; ++k) {
    const std::size_t lo = begin[k + 1], hi = begin[k + 2];
    if (lo >= hi) continue;
    detail::unpack_table(dtables[k].device_ptr(), layout, table, lo, hi);
    const std::size_t bytes =
        std::min(n * (hi - lo) * sizeof(V), result_bytes_of(p));
    fin = platform.cpu_sync(
        platform.gpu(k).record_d2h(result_stream[k], bytes,
                                   sim::MemoryKind::kPageable,
                                   platform.gpu(k).last_op(
                                       platform.gpu(k).default_stream())),
        fin);
  }

  if (stats) {
    stats->mode_used = Mode::kHeterogeneous;
    stats->pattern = classify(deps);
    stats->transfer = transfer_need(deps);
    stats->fronts = n;
    stats->cells = n * m;
    stats->t_share = static_cast<long long>(split.widths[0]);
    detail::finish_stats(*stats, platform, wall.seconds());
    stats->gpu_busy_seconds = 0;
    stats->copy_busy_seconds = 0;
    for (std::size_t k = 0; k < num_dev; ++k) {
      stats->gpu_busy_seconds += platform.gpu(k).compute_busy();
      stats->copy_busy_seconds += platform.gpu(k).copy_busy();
    }
  }
  return table;
}

}  // namespace lddp
