// Execution of 3-D LDDP-Plus problems over anti-diagonal plane wavefronts:
// serial reference scan, multicore planes, simulated-GPU planes, and the
// heterogeneous slab split (the 3-D analogue of the anti-diagonal
// strategy: the CPU owns the slab i < t_share of every plane; boundary
// slab cells ship one way, CPU to GPU, pipelined on a copy stream; the
// first and last t_switch planes — the low-work corners — run entirely on
// the CPU).
#pragma once

#include <cmath>

#include "core/problem3.h"
#include "core/run_config.h"
#include "core/strategies/common.h"
#include "core/strategies/heuristics.h"
#include "sim/platform.h"
#include "tables/grid3.h"
#include "util/stopwatch.h"

namespace lddp {

namespace detail {

/// Reads the declared neighbours of (i, j, k) through `read(i, j, k)`.
template <LddpProblem3 P, typename ReadFn>
typename P::Value compute_cell3(const P& p, ContributingSet3 deps,
                                typename P::Value bound, std::size_t i,
                                std::size_t j, std::size_t k, ReadFn&& read) {
  using V = typename P::Value;
  Neighbors3<V> nb{bound, bound, bound, bound, bound, bound, bound};
  const bool bi = i > 0, bj = j > 0, bk = k > 0;
  if (deps.has(Dep3::kD100) && bi) nb.d100 = read(i - 1, j, k);
  if (deps.has(Dep3::kD010) && bj) nb.d010 = read(i, j - 1, k);
  if (deps.has(Dep3::kD001) && bk) nb.d001 = read(i, j, k - 1);
  if (deps.has(Dep3::kD110) && bi && bj) nb.d110 = read(i - 1, j - 1, k);
  if (deps.has(Dep3::kD101) && bi && bk) nb.d101 = read(i - 1, j, k - 1);
  if (deps.has(Dep3::kD011) && bj && bk) nb.d011 = read(i, j - 1, k - 1);
  if (deps.has(Dep3::kD111) && bi && bj && bk)
    nb.d111 = read(i - 1, j - 1, k - 1);
  return p.compute(i, j, k, nb);
}

}  // namespace detail

/// Serial lexicographic reference scan (valid for every contributing set:
/// all offsets are coordinate-wise predecessors).
template <LddpProblem3 P>
Grid3<typename P::Value> solve3_serial(const P& p, sim::Platform* platform,
                                       SolveStats* stats) {
  using V = typename P::Value;
  Stopwatch wall;
  const std::size_t ni = p.ni(), nj = p.nj(), nk = p.nk();
  const ContributingSet3 deps = p.deps();
  const V bound = p.boundary();
  Grid3<V> t(ni, nj, nk);
  auto read = [&](std::size_t a, std::size_t b, std::size_t c) {
    return t.at(a, b, c);
  };
  for (std::size_t i = 0; i < ni; ++i)
    for (std::size_t j = 0; j < nj; ++j)
      for (std::size_t k = 0; k < nk; ++k)
        t.at(i, j, k) = detail::compute_cell3(p, deps, bound, i, j, k, read);
  if (platform)
    platform->cpu_charge(ni * nj * nk, work_profile_of3(p), false);
  if (stats) {
    stats->mode_used = Mode::kCpuSerial;
    stats->cells = ni * nj * nk;
    stats->fronts = ni;
    if (platform) {
      stats->sim_seconds = platform->elapsed();
      stats->cpu_busy_seconds = platform->cpu_busy();
    }
    stats->real_seconds = wall.seconds();
  }
  return t;
}

/// Multicore plane wavefronts (fork/join per plane, OpenMP-style).
template <LddpProblem3 P>
Grid3<typename P::Value> solve3_cpu(const P& p, sim::Platform& platform,
                                    SolveStats* stats) {
  using V = typename P::Value;
  Stopwatch wall;
  const ContributingSet3 deps = p.deps();
  const V bound = p.boundary();
  const cpu::WorkProfile work = work_profile_of3(p);
  const AntiDiagonalLayout3 layout(p.ni(), p.nj(), p.nk());
  Grid3<V> t(p.ni(), p.nj(), p.nk());
  auto read = [&](std::size_t a, std::size_t b, std::size_t c) {
    return t.at(a, b, c);
  };
  for (std::size_t d = 0; d < layout.num_fronts(); ++d) {
    sim::Platform::CpuFrontOpts opts;
    opts.mem_amplification = detail::kDiagonalCpuAmplification;
    opts.parallel = cpu::parallel_beats_serial(
        platform.spec().cpu, work, layout.front_size(d),
        opts.mem_amplification);
    platform.cpu_front(
        layout.front_size(d), work,
        [&, d](std::size_t c) {
          const CellIndex3 cell = layout.cell(d, c);
          t.at(cell.i, cell.j, cell.k) = detail::compute_cell3(
              p, deps, bound, cell.i, cell.j, cell.k, read);
        },
        opts);
  }
  if (stats) {
    stats->mode_used = Mode::kCpuParallel;
    stats->cells = layout.size();
    stats->fronts = layout.num_fronts();
    stats->sim_seconds = platform.elapsed();
    stats->cpu_busy_seconds = platform.cpu_busy();
    stats->real_seconds = wall.seconds();
  }
  return t;
}

/// Pure simulated-GPU plane wavefronts, thread per cell, plane-contiguous
/// storage (coalesced).
template <LddpProblem3 P>
Grid3<typename P::Value> solve3_gpu(const P& p, sim::Platform& platform,
                                    SolveStats* stats) {
  using V = typename P::Value;
  Stopwatch wall;
  const ContributingSet3 deps = p.deps();
  const V bound = p.boundary();
  const AntiDiagonalLayout3 layout(p.ni(), p.nj(), p.nk());
  sim::Device& gpu = platform.gpu();
  sim::KernelInfo info;
  info.work = work_profile_of3(p);
  sim::DeviceBuffer<V> dt = gpu.template alloc<V>(layout.size());
  V* dp = dt.device_ptr();
  auto read = [&, dp](std::size_t a, std::size_t b, std::size_t c) {
    return dp[layout.flat(a, b, c)];
  };
  const auto stream = gpu.default_stream();
  gpu.record_h2d(stream, input_bytes_of3(p), sim::MemoryKind::kPageable);
  for (std::size_t d = 0; d < layout.num_fronts(); ++d) {
    const std::size_t base = layout.front_offset(d);
    gpu.launch(stream, info, layout.front_size(d),
               [&, d, base, dp](std::size_t c) {
                 const CellIndex3 cell = layout.cell(d, c);
                 dp[base + c] = detail::compute_cell3(
                     p, deps, bound, cell.i, cell.j, cell.k, read);
               });
  }
  Grid3<V> t(p.ni(), p.nj(), p.nk());
  for (std::size_t i = 0; i < p.ni(); ++i)
    for (std::size_t j = 0; j < p.nj(); ++j)
      for (std::size_t k = 0; k < p.nk(); ++k)
        t.at(i, j, k) = dp[layout.flat(i, j, k)];
  const sim::OpId done = gpu.record_d2h(stream, result_bytes_of3(p),
                                        sim::MemoryKind::kPageable);
  platform.cpu_sync(done);
  if (stats) {
    stats->mode_used = Mode::kGpu;
    stats->cells = layout.size();
    stats->fronts = layout.num_fronts();
    stats->sim_seconds = platform.elapsed();
    stats->gpu_busy_seconds = gpu.compute_busy();
    stats->copy_busy_seconds = gpu.copy_busy();
    stats->h2d_bytes = gpu.stats().h2d_bytes;
    stats->d2h_bytes = gpu.stats().d2h_bytes;
    stats->real_seconds = wall.seconds();
  }
  return t;
}

/// Heterogeneous slab split with t_switch low-work phases at both ends.
template <LddpProblem3 P>
Grid3<typename P::Value> solve3_hetero(const P& p, sim::Platform& platform,
                                       HeteroParams params_in,
                                       SolveStats* stats) {
  using V = typename P::Value;
  Stopwatch wall;
  const std::size_t ni = p.ni(), nj = p.nj(), nk = p.nk();
  const ContributingSet3 deps = p.deps();
  const V bound = p.boundary();
  const cpu::WorkProfile work = work_profile_of3(p);
  const AntiDiagonalLayout3 layout(ni, nj, nk);
  const std::size_t num_fronts = layout.num_fronts();
  sim::Device& gpu = platform.gpu();
  sim::KernelInfo info;
  info.work = work;

  // Defaults: crossover front for t_switch, balanced slab for t_share
  // (reusing the 2-D machinery — the models are dimension-agnostic).
  if (params_in.t_switch < 0) {
    std::size_t max_front = 0;
    for (std::size_t d = 0; d < num_fronts; ++d)
      max_front = std::max(max_front, layout.front_size(d));
    const std::size_t fc = detail::gpu_crossover_front_cells(
        platform.spec(), info, max_front, detail::kDiagonalCpuAmplification);
    // Plane d has ~d^2/2 cells while growing: invert for the plane index.
    params_in.t_switch = static_cast<long long>(
        std::min<std::size_t>(num_fronts / 2,
                              static_cast<std::size_t>(
                                  std::sqrt(2.0 * static_cast<double>(fc)))));
  }
  if (params_in.t_share < 0) {
    const long long balanced = detail::balanced_t_share(
        platform.spec(), info, nj * nk, detail::kDiagonalCpuAmplification,
        num_fronts > 0 ? static_cast<double>(input_bytes_of3(p)) /
                             static_cast<double>(num_fronts)
                       : 0.0);
    // Convert a cell share of the fattest plane (~nj*nk) into a slab count.
    params_in.t_share = std::min<long long>(
        static_cast<long long>(ni) / 2,
        balanced / static_cast<long long>(std::max<std::size_t>(
                       1, (nj + nk) / 2)));
  }
  const std::size_t ts = std::min<std::size_t>(
      static_cast<std::size_t>(std::max<long long>(0, params_in.t_switch)),
      num_fronts / 2);
  const std::size_t s = std::min<std::size_t>(
      static_cast<std::size_t>(std::max<long long>(0, params_in.t_share)),
      ni);
  const std::size_t p2_begin = ts, p2_end = num_fronts - ts;

  Grid3<V> table(ni, nj, nk);
  sim::DeviceBuffer<V> dt = gpu.template alloc<V>(layout.size());
  V* dp = dt.device_ptr();
  auto hread = [&](std::size_t a, std::size_t b, std::size_t c) {
    return table.at(a, b, c);
  };
  auto dread = [&, dp](std::size_t a, std::size_t b, std::size_t c) {
    return dp[layout.flat(a, b, c)];
  };

  const auto compute_stream = gpu.default_stream();
  const auto h2d_stream = gpu.create_stream();
  const auto d2h_stream = gpu.create_stream();
  gpu.record_h2d(compute_stream,
                 static_cast<std::size_t>(
                     static_cast<double>(input_bytes_of3(p)) *
                     static_cast<double>(ni - std::min(s, ni)) /
                     static_cast<double>(ni)),
                 sim::MemoryKind::kPageable);

  auto run_cpu = [&](std::size_t d, std::size_t count, sim::OpId dep) {
    sim::Platform::CpuFrontOpts opts;
    opts.streamed = true;
    opts.mem_amplification = detail::kDiagonalCpuAmplification;
    opts.parallel = cpu::parallel_beats_serial(
        platform.spec().cpu, work, count, opts.mem_amplification, true);
    opts.dep1 = dep;
    return platform.cpu_front(
        count, work,
        [&, d](std::size_t c) {
          const CellIndex3 cell = layout.cell(d, c);
          table.at(cell.i, cell.j, cell.k) = detail::compute_cell3(
              p, deps, bound, cell.i, cell.j, cell.k, hread);
        },
        opts);
  };

  sim::OpId last_cpu = sim::kNoOp, last_gpu = sim::kNoOp;

  // ---- phase 1 ----------------------------------------------------------
  for (std::size_t d = 0; d < p2_begin; ++d)
    last_cpu = run_cpu(d, layout.front_size(d), sim::kNoOp);

  // Phase-2 entry: GPU planes read slabs >= s-1 of the three preceding
  // planes (offsets with di = 1 reach back up to d - 3).
  sim::OpId h2d_win[3] = {sim::kNoOp, sim::kNoOp, sim::kNoOp};
  if (p2_begin < p2_end && p2_begin > 0) {
    const std::size_t lo_slab = s == 0 ? 0 : s - 1;
    std::size_t bytes = 0;
    for (std::size_t back = 1; back <= 3 && back <= p2_begin; ++back) {
      const std::size_t d = p2_begin - back;
      const std::size_t base = layout.front_offset(d);
      for (std::size_t c = layout.slab_prefix(d, lo_slab);
           c < layout.front_size(d); ++c) {
        dp[base + c] = [&] {
          const CellIndex3 cell = layout.cell(d, c);
          return table.at(cell.i, cell.j, cell.k);
        }();
        bytes += sizeof(V);
      }
    }
    h2d_win[0] = h2d_win[1] = h2d_win[2] =
        gpu.record_h2d(h2d_stream, bytes, sim::MemoryKind::kPageable,
                       last_cpu);
  }

  // ---- phase 2 ----------------------------------------------------------
  for (std::size_t d = p2_begin; d < p2_end; ++d) {
    const std::size_t fs = layout.front_size(d);
    const std::size_t c = layout.slab_prefix(d, s);

    sim::OpId cpu_op = sim::kNoOp;
    if (c > 0) {
      cpu_op = run_cpu(d, c, sim::kNoOp);
      last_cpu = cpu_op;
    }

    // Boundary slab i = s-1 of this plane: a contiguous range within the
    // front (it is the last CPU slab row).
    sim::OpId h2d_op = sim::kNoOp;
    if (c > 0 && s > 0 && s - 1 >= layout.i_min(d) &&
        s - 1 <= layout.i_max(d)) {
      const std::size_t lo = layout.slab_prefix(d, s - 1);
      const std::size_t base = layout.front_offset(d);
      for (std::size_t q = lo; q < c; ++q) {
        const CellIndex3 cell = layout.cell(d, q);
        dp[base + q] = table.at(cell.i, cell.j, cell.k);
      }
      h2d_op = gpu.record_h2d(h2d_stream, (c - lo) * sizeof(V),
                              sim::MemoryKind::kPinned, cpu_op);
    }

    if (c < fs) {
      gpu.stream_wait(compute_stream, h2d_win[1]);
      gpu.stream_wait(compute_stream, h2d_win[2]);
      const std::size_t base = layout.front_offset(d);
      last_gpu = gpu.launch(
          compute_stream, info, fs - c,
          [&, d, c, base, dp](std::size_t q) {
            const CellIndex3 cell = layout.cell(d, c + q);
            dp[base + c + q] = detail::compute_cell3(
                p, deps, bound, cell.i, cell.j, cell.k, dread);
          },
          h2d_win[0]);
    }
    h2d_win[2] = h2d_win[1];
    h2d_win[1] = h2d_win[0];
    h2d_win[0] = h2d_op;
  }

  // Phase-3 entry: CPU reads everything in the three preceding planes.
  sim::OpId entry_d2h = sim::kNoOp;
  if (p2_end < num_fronts) {
    std::size_t bytes = 0;
    for (std::size_t back = 1; back <= 3 && back <= p2_end; ++back) {
      const std::size_t d = p2_end - back;
      if (d < p2_begin) break;
      const std::size_t base = layout.front_offset(d);
      for (std::size_t c = layout.slab_prefix(d, s); c < layout.front_size(d);
           ++c) {
        const CellIndex3 cell = layout.cell(d, c);
        table.at(cell.i, cell.j, cell.k) = dp[base + c];
        bytes += sizeof(V);
      }
    }
    entry_d2h = gpu.record_d2h(d2h_stream, bytes, sim::MemoryKind::kPageable,
                               last_gpu);
  }

  // ---- phase 3 ----------------------------------------------------------
  for (std::size_t d = p2_end; d < num_fronts; ++d) {
    last_cpu = run_cpu(d, layout.front_size(d), entry_d2h);
    entry_d2h = sim::kNoOp;
  }

  // Final download of the GPU-owned region.
  {
    std::size_t bytes = 0;
    for (std::size_t d = p2_begin; d < p2_end; ++d) {
      const std::size_t base = layout.front_offset(d);
      for (std::size_t c = layout.slab_prefix(d, s); c < layout.front_size(d);
           ++c) {
        const CellIndex3 cell = layout.cell(d, c);
        table.at(cell.i, cell.j, cell.k) = dp[base + c];
        bytes += sizeof(V);
      }
    }
    const sim::OpId fin =
        gpu.record_d2h(d2h_stream, std::min(bytes, result_bytes_of3(p)),
                       sim::MemoryKind::kPageable, last_gpu);
    platform.cpu_sync(fin, last_cpu);
  }

  if (stats) {
    stats->mode_used = Mode::kHeterogeneous;
    stats->cells = layout.size();
    stats->fronts = num_fronts;
    stats->t_switch = static_cast<long long>(ts);
    stats->t_share = static_cast<long long>(s);
    stats->sim_seconds = platform.elapsed();
    stats->cpu_busy_seconds = platform.cpu_busy();
    stats->gpu_busy_seconds = gpu.compute_busy();
    stats->copy_busy_seconds = gpu.copy_busy();
    stats->h2d_bytes = gpu.stats().h2d_bytes;
    stats->d2h_bytes = gpu.stats().d2h_bytes;
    stats->real_seconds = wall.seconds();
  }
  return table;
}

/// Convenience dispatcher mirroring the 2-D solve().
template <LddpProblem3 P>
Grid3<typename P::Value> solve3(const P& p, const RunConfig& cfg,
                                SolveStats* stats = nullptr) {
  sim::Platform platform(cfg.platform, cfg.pool);
  const Mode mode = cfg.mode == Mode::kAuto
                        ? (p.ni() * p.nj() * p.nk() < (1u << 18)
                               ? Mode::kCpuParallel
                               : Mode::kHeterogeneous)
                        : cfg.mode;
  switch (mode) {
    case Mode::kCpuSerial:
      return solve3_serial(p, &platform, stats);
    case Mode::kCpuParallel:
    case Mode::kCpuTiled:  // no 3-D tiling yet; fall back to planes
      return solve3_cpu(p, platform, stats);
    case Mode::kGpu:
      return solve3_gpu(p, platform, stats);
    case Mode::kHeterogeneous:
      return solve3_hetero(p, platform, cfg.hetero, stats);
    case Mode::kAuto:
      break;
  }
  LDDP_CHECK_MSG(false, "unreachable 3-D mode dispatch");
  return Grid3<typename P::Value>(1, 1, 1);
}

}  // namespace lddp
