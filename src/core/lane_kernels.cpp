// Baseline lane-kernel table (I32x4: SSE2 on x86-64, scalar elsewhere)
// and the runtime ISA dispatcher. This TU is compiled with the project's
// default flags; the 8-wide table lives in lane_kernels_avx2.cpp, which
// is the only TU built with -mavx2 (see the ODR note in util/simd.h).

#include "core/lane_kernels.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "core/lane_kernels_impl.h"
#include "util/simd.h"

namespace lddp::lanes {

/// Defined in lane_kernels_avx2.cpp: the 8-wide kernel table, or nullptr
/// when that TU was compiled without AVX2 support (toolchain lacks
/// -mavx2).
const RowKernelFn* avx2_row_kernels();

/// Defined in lane_kernels_avx2.cpp: the 8x8-transpose scatter, or
/// nullptr without AVX2 support.
ScatterFn avx2_lane_scatter();

namespace {

std::atomic<bool> g_force_baseline{false};

bool env_forces_baseline() {
  static const bool forced = [] {
    const char* v = std::getenv("LDDP_FORCE_ISA");
    return v != nullptr && std::strcmp(v, "sse2") == 0;
  }();
  return forced;
}

const std::array<RowKernelFn, kNumRowOps>& baseline_table() {
  static const auto table = detail::make_table<simd::I32x4>();
  return table;
}

/// The 8-wide table when the binary carries one AND the running CPU
/// admits it AND nothing pins the baseline; nullptr otherwise. Under
/// `__AVX2__` (LDDP_NATIVE builds) the cpuid probe folds to a constant
/// and dispatch is effectively static.
const RowKernelFn* avx2_table_if_usable() {
  if (g_force_baseline.load(std::memory_order_relaxed) ||
      env_forces_baseline())
    return nullptr;
  if (!simd::cpu_supports_avx2()) return nullptr;
  return avx2_row_kernels();
}

/// Baseline scatter: 4x4 int32 transposes on SSE2 (row is 64-byte
/// aligned and width a multiple of 4, so every block load is aligned),
/// plain loops elsewhere. Lane groups past nlanes are transposed but not
/// stored — padding lanes carry real values (they alias lane 0) so the
/// loads are always in bounds.
void scatter_baseline(const std::int32_t* row, std::size_t width,
                      std::size_t j0, std::size_t j1,
                      std::int32_t* const* outs, std::size_t nlanes) {
#if LDDP_SIMD_SSE2
  std::size_t j = j0;
  for (; j + 4 <= j1; j += 4) {
    for (std::size_t s4 = 0; s4 < nlanes; s4 += 4) {
      const std::int32_t* const p = row + j * width + s4;
      const auto* const v = reinterpret_cast<const __m128i*>(p);
      const __m128i r0 = _mm_load_si128(v);
      const __m128i r1 = _mm_load_si128(
          reinterpret_cast<const __m128i*>(p + width));
      const __m128i r2 = _mm_load_si128(
          reinterpret_cast<const __m128i*>(p + 2 * width));
      const __m128i r3 = _mm_load_si128(
          reinterpret_cast<const __m128i*>(p + 3 * width));
      const __m128i t0 = _mm_unpacklo_epi32(r0, r1);
      const __m128i t1 = _mm_unpackhi_epi32(r0, r1);
      const __m128i t2 = _mm_unpacklo_epi32(r2, r3);
      const __m128i t3 = _mm_unpackhi_epi32(r2, r3);
      const __m128i o[4] = {
          _mm_unpacklo_epi64(t0, t2), _mm_unpackhi_epi64(t0, t2),
          _mm_unpacklo_epi64(t1, t3), _mm_unpackhi_epi64(t1, t3)};
      const std::size_t se = std::min<std::size_t>(nlanes - s4, 4);
      for (std::size_t t = 0; t < se; ++t)
        _mm_storeu_si128(reinterpret_cast<__m128i*>(outs[s4 + t] + j),
                         o[t]);
    }
  }
  for (; j < j1; ++j)
    for (std::size_t s = 0; s < nlanes; ++s)
      outs[s][j] = row[j * width + s];
#else
  for (std::size_t s = 0; s < nlanes; ++s)
    for (std::size_t j = j0; j < j1; ++j)
      outs[s][j] = row[j * width + s];
#endif
}

}  // namespace

ScatterFn lane_scatter(std::size_t width) {
  if (width % 8 == 0 && avx2_table_if_usable() != nullptr) {
    if (const ScatterFn f = avx2_lane_scatter()) return f;
  }
  return &scatter_baseline;
}

RowKernelFn row_kernel(RowOp op, std::size_t width) {
  const auto idx = static_cast<std::size_t>(op);
  if (width % 8 == 0) {
    if (const RowKernelFn* t8 = avx2_table_if_usable()) return t8[idx];
  }
  return baseline_table()[idx];
}

std::size_t preferred_lane_width() {
  return avx2_table_if_usable() != nullptr ? 8 : 4;
}

const char* active_isa() {
  if (avx2_table_if_usable() != nullptr) return "avx2";
#if LDDP_SIMD_SSE2
  return "sse2";
#else
  return "scalar";
#endif
}

void force_baseline_kernels(bool on) {
  g_force_baseline.store(on, std::memory_order_relaxed);
}

}  // namespace lddp::lanes
