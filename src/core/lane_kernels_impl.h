// Template bodies of the lane-generic row kernels. Included ONLY by the
// two instantiating TUs — lane_kernels.cpp (baseline, I32x4) and
// lane_kernels_avx2.cpp (-mavx2, I32x8) — never by headers, so each
// vector type's code is generated exactly once, in a TU whose ISA flags
// match it (see the ODR note atop util/simd.h).
//
// All kernels walk lane blocks in the outer loop and columns in the
// inner loop: with the interleave width fixed per cohort, each block of
// Vec::kLanes solves carries its row recurrence left-to-right with the
// W value (when the op uses it) held in a register — the serial
// row-major scan of cpu_strategy.h, run for kLanes solves at once. Ops
// are exact signed int32; results are bit-identical to the scalar path.
#pragma once

#include <array>

#include "core/lane_kernels.h"
#include "util/simd.h"

namespace lddp::lanes::detail {

// eq ? nw : min(w, nw, n) + 1 — levenshtein. lane_a holds each lane's
// a[i-1] widened to int32; col_b holds widened b[j-1] interleaved.
template <typename Vec>
void row_levenshtein(const RowCtx<std::int32_t>& c) {
  const Vec one = Vec::broadcast(1);
  for (std::size_t s = 0; s < c.width; s += Vec::kLanes) {
    const Vec ai = Vec::load_aligned(c.lane_a + s);
    Vec w = Vec::load_aligned(c.row + (c.j0 - 1) * c.width + s);
    for (std::size_t j = c.j0; j < c.j1; ++j) {
      const Vec nw = Vec::load_aligned(c.prev + (j - 1) * c.width + s);
      const Vec n = Vec::load_aligned(c.prev + j * c.width + s);
      const Vec bj = Vec::load_aligned(c.col_b + j * c.width + s);
      const Vec sub = simd::add(simd::min(simd::min(w, nw), n), one);
      const Vec out = simd::blend(simd::cmpeq(ai, bj), nw, sub);
      out.store_aligned(c.row + j * c.width + s);
      w = out;
    }
  }
}

// eq ? nw + 1 : max(w, n) — lcs. Same staging as levenshtein.
template <typename Vec>
void row_lcs(const RowCtx<std::int32_t>& c) {
  const Vec one = Vec::broadcast(1);
  for (std::size_t s = 0; s < c.width; s += Vec::kLanes) {
    const Vec ai = Vec::load_aligned(c.lane_a + s);
    Vec w = Vec::load_aligned(c.row + (c.j0 - 1) * c.width + s);
    for (std::size_t j = c.j0; j < c.j1; ++j) {
      const Vec nw = Vec::load_aligned(c.prev + (j - 1) * c.width + s);
      const Vec n = Vec::load_aligned(c.prev + j * c.width + s);
      const Vec bj = Vec::load_aligned(c.col_b + j * c.width + s);
      const Vec out = simd::blend(simd::cmpeq(ai, bj),
                                  simd::add(nw, one), simd::max(w, n));
      out.store_aligned(c.row + j * c.width + s);
      w = out;
    }
  }
}

// min(nw, n, ne) + cost — checkerboard / seam_carving. col_b holds the
// interleaved cost row; no W dependence, so no carry.
template <typename Vec>
void row_min_plus(const RowCtx<std::int32_t>& c) {
  for (std::size_t s = 0; s < c.width; s += Vec::kLanes) {
    for (std::size_t j = c.j0; j < c.j1; ++j) {
      const Vec nw = Vec::load_aligned(c.prev + (j - 1) * c.width + s);
      const Vec n = Vec::load_aligned(c.prev + j * c.width + s);
      const Vec ne = Vec::load_aligned(c.prev + (j + 1) * c.width + s);
      const Vec cost = Vec::load_aligned(c.col_b + j * c.width + s);
      const Vec out = simd::add(simd::min(simd::min(nw, n), ne), cost);
      out.store_aligned(c.row + j * c.width + s);
    }
  }
}

// bit ? min(w, nw, n) + 1 : 0 — max_square. col_b holds the interleaved
// occupancy bits widened to int32 (0 or 1).
template <typename Vec>
void row_max_square(const RowCtx<std::int32_t>& c) {
  const Vec one = Vec::broadcast(1);
  const Vec zero = Vec::broadcast(0);
  for (std::size_t s = 0; s < c.width; s += Vec::kLanes) {
    Vec w = Vec::load_aligned(c.row + (c.j0 - 1) * c.width + s);
    for (std::size_t j = c.j0; j < c.j1; ++j) {
      const Vec nw = Vec::load_aligned(c.prev + (j - 1) * c.width + s);
      const Vec n = Vec::load_aligned(c.prev + j * c.width + s);
      const Vec bit = Vec::load_aligned(c.col_b + j * c.width + s);
      const Vec grown = simd::add(simd::min(simd::min(w, nw), n), one);
      const Vec out = simd::blend(simd::cmpeq(bit, zero), zero, grown);
      out.store_aligned(c.row + j * c.width + s);
      w = out;
    }
  }
}

// min(nw, n) + c — synthetic MinNwN. lane_a holds each lane's additive
// constant.
template <typename Vec>
void row_min_nw_n(const RowCtx<std::int32_t>& c) {
  for (std::size_t s = 0; s < c.width; s += Vec::kLanes) {
    const Vec addc = Vec::load_aligned(c.lane_a + s);
    for (std::size_t j = c.j0; j < c.j1; ++j) {
      const Vec nw = Vec::load_aligned(c.prev + (j - 1) * c.width + s);
      const Vec n = Vec::load_aligned(c.prev + j * c.width + s);
      const Vec out = simd::add(simd::min(nw, n), addc);
      out.store_aligned(c.row + j * c.width + s);
    }
  }
}

template <typename Vec>
std::array<RowKernelFn, kNumRowOps> make_table() {
  return {&row_levenshtein<Vec>, &row_lcs<Vec>, &row_min_plus<Vec>,
          &row_max_square<Vec>, &row_min_nw_n<Vec>};
}

}  // namespace lddp::lanes::detail
