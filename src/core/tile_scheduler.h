// Pattern-aware tile partitioning — the unit of scheduling for the
// tile-granular execution layer (GPU block-per-tile kernels, tiled CPU
// fronts, and tile-level heterogeneous splits), in the spirit of the
// blocked/pipelined GPU DP of Matsumae & Miyazaki (arXiv:2008.01938) and
// the blocked work-efficient DP of Ding, Gu & Sun (arXiv:2404.16314).
//
// The table is cut into tile x tile blocks in *skewed coordinates*
// (u, v) = (i, j + skew * i) with skew = 1 when the contributing set
// contains NE and skew = 0 otherwise. Under that map the four
// representative dependencies become
//
//              skew = 0 (NE-free)        skew = 1 (NE present)
//   W          (u,   v-1)                (u,   v-1)
//   NW         (u-1, v-1)                (u-1, v-2)
//   N          (u-1, v  )                (u-1, v-1)
//   NE         —                         (u-1, v  )
//
// i.e. every one of the 15 contributing sets reduces to a cell dependency
// cone pointing up/left, so the *tile-level* dependency structure is
// always within {W, NW, N} and tiles can be scheduled by anti-diagonal
// tile wavefronts (front g = tu + tv) regardless of the cell-level
// pattern. NE-bearing problems get parallelogram ("skewed") tiles; NE-free
// problems keep rectangular ones. Inside a tile a plain (u asc, v asc)
// sweep respects every dependency.
//
// Consequences the strategies exploit:
//  * one tiled implementation covers all four canonical patterns;
//  * with a horizontal split (CPU owns tile rows tu < s) every cross-unit
//    dependency points CPU -> GPU — even the cell-level two-way patterns
//    (knight-move, horizontal case-2) become one-way at tile granularity,
//    so the whole phase fuses into a single LaunchGraph submission;
//  * cross-unit traffic shrinks to *tile halos*: the bottom cell row of a
//    boundary tile (north halo) and the eastmost 1 + skew cell columns
//    (west halo), instead of whole fronts.
#pragma once

#include <algorithm>
#include <cstddef>

#include "core/contributing_set.h"
#include "util/check.h"

namespace lddp {

class TileScheduler {
 public:
  /// Tile-grid coordinates (tile row, tile column in skewed space).
  struct TileCoord {
    std::size_t tu = 0;
    std::size_t tv = 0;
  };

  TileScheduler(std::size_t rows, std::size_t cols, std::size_t tile,
                ContributingSet deps)
      : n_(rows), m_(cols), tile_(tile), deps_(deps),
        skew_(deps.has_ne() ? 1 : 0) {
    LDDP_CHECK_MSG(rows > 0 && cols > 0, "table must be non-empty");
    LDDP_CHECK_MSG(tile >= 1, "tile size must be positive");
    vspan_ = m_ + skew_ * (n_ - 1);
    tr_ = (n_ + tile_ - 1) / tile_;
    tc_ = (vspan_ + tile_ - 1) / tile_;
  }

  std::size_t rows() const { return n_; }
  std::size_t cols() const { return m_; }
  std::size_t tile() const { return tile_; }
  ContributingSet deps() const { return deps_; }
  bool skewed() const { return skew_ != 0; }

  std::size_t tile_rows() const { return tr_; }
  std::size_t tile_cols() const { return tc_; }
  std::size_t num_tiles() const { return tr_ * tc_; }

  /// Anti-diagonal tile fronts: front g = {tiles with tu + tv == g}.
  std::size_t num_fronts() const { return tr_ + tc_ - 1; }
  std::size_t tu_min(std::size_t g) const {
    return g < tc_ ? 0 : g - tc_ + 1;
  }
  std::size_t tu_max(std::size_t g) const { return std::min(tr_ - 1, g); }
  /// Tiles on front g, enumerated by tu ascending (the CPU's strip of a
  /// heterogeneous split — top tile rows — is a prefix). Skewed partial
  /// tiles may be empty; cell_count() reports 0 for them.
  std::size_t front_tiles(std::size_t g) const {
    LDDP_DCHECK(g < num_fronts());
    return tu_max(g) - tu_min(g) + 1;
  }
  TileCoord front_tile(std::size_t g, std::size_t k) const {
    LDDP_DCHECK(k < front_tiles(g));
    const std::size_t tu = tu_min(g) + k;
    return {tu, g - tu};
  }

  /// Global row range [i_begin, i_end) of tile row tu.
  std::size_t row_begin(std::size_t tu) const { return tu * tile_; }
  std::size_t row_end(std::size_t tu) const {
    return std::min(n_, (tu + 1) * tile_);
  }

  /// Valid column range [j_begin, j_end) of global row i within tile
  /// (tu, tv) — empty (j_begin >= j_end) for rows a skewed parallelogram
  /// does not reach.
  struct RowSpan {
    std::size_t j_begin = 0;
    std::size_t j_end = 0;
    std::size_t size() const { return j_end > j_begin ? j_end - j_begin : 0; }
  };
  RowSpan row_span(std::size_t tv, std::size_t i) const {
    const std::size_t v_lo = tv * tile_;
    const std::size_t v_hi = std::min(vspan_, (tv + 1) * tile_);
    const std::size_t shift = skew_ * i;
    // j = v - skew * i, clipped to [0, m).
    const std::size_t j_lo = v_lo > shift ? v_lo - shift : 0;
    const std::size_t j_hi = v_hi > shift ? std::min(m_, v_hi - shift) : 0;
    return {j_lo, std::max(j_lo, j_hi)};
  }

  /// Valid cells of the tile (its simulated-work size).
  std::size_t cell_count(std::size_t tu, std::size_t tv) const {
    std::size_t c = 0;
    for (std::size_t i = row_begin(tu); i < row_end(tu); ++i)
      c += row_span(tv, i).size();
    return c;
  }

  /// Visits the tile's cells in dependency order: i ascending, j ascending
  /// within each row (valid for every contributing set, skewed or not).
  template <typename Fn>
  void for_each_cell(std::size_t tu, std::size_t tv, Fn&& fn) const {
    for (std::size_t i = row_begin(tu); i < row_end(tu); ++i) {
      const RowSpan s = row_span(tv, i);
      for (std::size_t j = s.j_begin; j < s.j_end; ++j) fn(i, j);
    }
  }

  /// North halo of the tile *below*: the valid cells of this tile's bottom
  /// row — what a consumer in tile row tu+1 reads via N/NW/NE (and the
  /// skewed NW reach v-2, which stays inside the full row).
  template <typename Fn>
  void for_each_bottom_row_cell(std::size_t tu, std::size_t tv,
                                Fn&& fn) const {
    const std::size_t i = row_end(tu) - 1;
    const RowSpan s = row_span(tv, i);
    for (std::size_t j = s.j_begin; j < s.j_end; ++j) fn(i, j);
  }

  /// West halo of the tile to the *east*: the eastmost 1 + skew valid
  /// cells of every row (the W read, plus the skewed NW reach v-2 from the
  /// row below's leftmost cell).
  template <typename Fn>
  void for_each_east_halo_cell(std::size_t tu, std::size_t tv,
                               Fn&& fn) const {
    const std::size_t width = 1 + skew_;
    for (std::size_t i = row_begin(tu); i < row_end(tu); ++i) {
      const RowSpan s = row_span(tv, i);
      const std::size_t w = std::min(width, s.size());
      for (std::size_t j = s.j_end - w; j < s.j_end; ++j) fn(i, j);
    }
  }

  /// Halo cells a block-per-tile kernel stages into shared memory besides
  /// the tile body: one north row (width + the diagonal overreach) when any
  /// northern dependency exists, one west column when W does.
  std::size_t halo_cells(std::size_t tu, std::size_t tv) const {
    const std::size_t h = row_end(tu) - row_begin(tu);
    std::size_t max_w = 0;
    for (std::size_t i = row_begin(tu); i < row_end(tu); ++i)
      max_w = std::max(max_w, row_span(tv, i).size());
    std::size_t halo = 0;
    if (deps_.has_n() || deps_.has_nw() || deps_.has_ne())
      halo += max_w + 1 + skew_;
    if (deps_.has_w()) halo += h;
    return halo;
  }

  /// Total valid cells across a whole tile front (for kernel pricing).
  std::size_t front_cells(std::size_t g) const {
    std::size_t c = 0;
    for (std::size_t k = 0; k < front_tiles(g); ++k) {
      const TileCoord t = front_tile(g, k);
      c += cell_count(t.tu, t.tv);
    }
    return c;
  }

 private:
  std::size_t n_, m_, tile_;
  ContributingSet deps_;
  std::size_t skew_;   ///< 1 when the contributing set has NE, else 0
  std::size_t vspan_;  ///< skewed column span: m + skew * (n - 1)
  std::size_t tr_, tc_;
};

}  // namespace lddp
