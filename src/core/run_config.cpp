#include "core/run_config.h"

namespace lddp {

std::string to_string(Mode m) {
  switch (m) {
    case Mode::kCpuSerial:
      return "cpu-serial";
    case Mode::kCpuParallel:
      return "cpu-parallel";
    case Mode::kCpuTiled:
      return "cpu-tiled";
    case Mode::kGpu:
      return "gpu";
    case Mode::kHeterogeneous:
      return "heterogeneous";
    case Mode::kAuto:
      return "auto";
  }
  return "?";
}

std::string to_string(Storage s) {
  switch (s) {
    case Storage::kAuto:
      return "auto";
    case Storage::kFull:
      return "full";
    case Storage::kFrontier:
      return "frontier";
  }
  return "?";
}

}  // namespace lddp
