// Batch-front runner: splits a front (or any sub-range of one) into affine
// interior runs, packs each run's neighbour values into dense spans, and
// hands them to the problem's `compute_front` hook — falling back to the
// per-cell scalar path for edges, short runs, and shapes the problem does
// not implement. Used by every execution layer (CPU strips, parallel_for
// chunks, tile interiors, simulated-GPU kernels); results are always
// bit-identical to the scalar path.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/front_span.h"
#include "core/strategies/common.h"
#include "tables/layout.h"
#include "util/aligned.h"
#include "util/check.h"

namespace lddp::detail {

/// Runs shorter than this go scalar: the span setup (interior trim, stride
/// probes, possible gather) costs more than it saves on a handful of lanes.
inline constexpr std::size_t kMinBatchRun = 8;

/// One affine segment of a front's enumeration: front positions
/// [pos, pos + len) are cells (i0 + k*di, j0 + k*dj) for k in [0, len).
struct FrontRun {
  std::size_t pos = 0;
  std::size_t len = 0;
  std::size_t i0 = 0, j0 = 0;
  std::ptrdiff_t di = 0, dj = 0;
};

// --- Per-layout enumeration geometry -----------------------------------
// Every layout's within-front order is piecewise affine with at most two
// segments (the inverted-L shell: column part, then row part).

inline std::size_t front_runs(const RowMajorLayout& L, std::size_t f,
                              FrontRun* r) {
  r[0] = {0, L.cols(), f, 0, 0, 1};
  return 1;
}

inline std::size_t front_runs(const ColumnMajorLayout& L, std::size_t f,
                              FrontRun* r) {
  r[0] = {0, L.rows(), 0, f, 1, 0};
  return 1;
}

inline std::size_t front_runs(const AntiDiagonalLayout& L, std::size_t d,
                              FrontRun* r) {
  const std::size_t i0 = L.i_min(d);
  r[0] = {0, L.front_size(d), i0, d - i0, 1, -1};
  return 1;
}

inline std::size_t front_runs(const KnightMoveLayout& L, std::size_t t,
                              FrontRun* r) {
  const std::size_t fs = L.front_size(t);
  if (fs == 0) return 0;
  const std::size_t i0 = L.i_max(t);  // enumerated by j ascending = i desc
  r[0] = {0, fs, i0, t - 2 * i0, -1, 2};
  return 1;
}

inline std::size_t front_runs(const ShellLayout& L, std::size_t k,
                              FrontRun* r) {
  std::size_t nr = 0;
  const std::size_t col_n = L.column_part_size(k);
  if (col_n > 0) r[nr++] = {0, col_n, L.rows() - 1, k, -1, 0};
  r[nr++] = {col_n, L.cols() - k, k, k, 0, 1};
  return nr;
}

inline std::size_t front_runs(const MirrorShellLayout& L, std::size_t k,
                              FrontRun* r) {
  std::size_t nr = 0;
  const std::size_t col_n = L.column_part_size(k);
  const std::size_t jm = L.cols() - 1 - k;
  if (col_n > 0) r[nr++] = {0, col_n, L.rows() - 1, jm, -1, 0};
  r[nr++] = {col_n, L.cols() - k, k, jm, 0, -1};
  return nr;
}

// --- Batch eligibility per layout --------------------------------------
// A run may only batch when every dependency of an interior cell lives in
// an *earlier* front of this layout, so the packed neighbour values are
// final before the front executes. The framework's pattern dispatch always
// satisfies this, but the strategies are templates a caller can
// instantiate with any layout; the guard keeps odd combinations correct
// (they simply stay scalar, which handles same-front deps by executing
// positions in order).

inline bool layout_batchable(const RowMajorLayout&, ContributingSet deps) {
  return !deps.has_w();  // W is the same row = the same front
}
inline bool layout_batchable(const ColumnMajorLayout&, ContributingSet deps) {
  return !deps.has_n() && !deps.has_ne();  // same column = same front
}
inline bool layout_batchable(const AntiDiagonalLayout&, ContributingSet deps) {
  return !deps.has_ne();  // (i-1, j+1) sits on the same anti-diagonal
}
inline bool layout_batchable(const KnightMoveLayout&, ContributingSet) {
  return true;  // all four representative cells precede front t
}
inline bool layout_batchable(const ShellLayout&, ContributingSet deps) {
  // W on the row part and N on the column part stay inside shell k.
  return !deps.has_w() && !deps.has_n() && !deps.has_ne();
}
inline bool layout_batchable(const MirrorShellLayout&, ContributingSet deps) {
  // Mirrored: NE is the only dependency guaranteed to leave the shell.
  return !deps.has_w() && !deps.has_nw() && !deps.has_n();
}

// --- Frontier window geometry ------------------------------------------
// Number of consecutive fronts a rolling frontier window must retain so
// that when front f executes, every dependency of every cell of f is
// still resident: max front distance of any representative cell, plus
// one for the front being written. 0 means the layout has no bounded
// backward window under these deps (a dependency can land on a *later*
// front) and the frontier tier must fall back to full storage — never
// the case for the canonical pattern->layout pairs the framework
// dispatches, which all look strictly backward.

inline std::size_t frontier_window_fronts(const RowMajorLayout&,
                                          ContributingSet deps) {
  // W is same-front; NW/N/NE live on front f-1.
  return deps.has_nw() || deps.has_n() || deps.has_ne() ? 2 : 1;
}
inline std::size_t frontier_window_fronts(const ColumnMajorLayout&,
                                          ContributingSet deps) {
  // NE lives on column j+1 = front f+1: a *forward* reference.
  return deps.has_ne() ? 0 : (deps.has_w() || deps.has_nw() ? 2 : 1);
}
inline std::size_t frontier_window_fronts(const AntiDiagonalLayout&,
                                          ContributingSet deps) {
  // W/N/NE at distance 1, NW at distance 2.
  return deps.has_nw() ? 3 : 2;
}
inline std::size_t frontier_window_fronts(const KnightMoveLayout&,
                                          ContributingSet deps) {
  // t = 2i + j: W and NE at distance 1, N at 2, NW at 3.
  return deps.has_nw() ? 4 : deps.has_n() ? 3 : 2;
}
inline std::size_t frontier_window_fronts(const ShellLayout&,
                                          ContributingSet deps) {
  // W and NW look at shell k-1 or stay same-shell in enumeration order;
  // NE on the column part reads shell k+1 (forward), and N on the column
  // part reads a same-shell cell the descending enumeration has not
  // produced yet — both already unsupported by the full-table shell
  // strategies, which only ever see the canonical {NW} set.
  return deps.has_ne() || deps.has_n() ? 0 : 2;
}
inline std::size_t frontier_window_fronts(const MirrorShellLayout&,
                                          ContributingSet deps) {
  // Mirrored image of the above: only the canonical {NE} set (plus the
  // harmless lone case) looks strictly backward in enumeration order.
  return deps.has_w() || deps.has_nw() || deps.has_n() ? 0 : 2;
}

// --- Interior trimming --------------------------------------------------

inline std::int64_t ceil_div_pos(std::int64_t x, std::int64_t y) {  // y > 0
  return x >= 0 ? (x + y - 1) / y : -((-x) / y);
}
inline std::int64_t floor_div_pos(std::int64_t x, std::int64_t y) {  // y > 0
  return x >= 0 ? x / y : -((-x + y - 1) / y);
}

/// Intersects [a, b) with { k : s + k*d >= lo_req }.
inline void clamp_lane_ge(std::int64_t s, std::int64_t d, std::int64_t lo_req,
                          std::int64_t& a, std::int64_t& b) {
  if (d == 0) {
    if (s < lo_req) b = a;
  } else if (d > 0) {
    a = std::max(a, ceil_div_pos(lo_req - s, d));
  } else {
    b = std::min(b, floor_div_pos(s - lo_req, -d) + 1);
  }
}

/// Intersects [a, b) with { k : s + k*d <= up_req }.
inline void clamp_lane_le(std::int64_t s, std::int64_t d, std::int64_t up_req,
                          std::int64_t& a, std::int64_t& b) {
  if (d == 0) {
    if (s > up_req) b = a;
  } else if (d > 0) {
    b = std::min(b, floor_div_pos(up_req - s, d) + 1);
  } else {
    a = std::max(a, ceil_div_pos(s - up_req, -d));
  }
}

/// Lane sub-range [a, b) of a run whose cells are interior: i >= 1,
/// j >= 1, and j + 1 < cols when the contributing set includes NE. The
/// constraints are monotone in the lane index, so the result is one
/// contiguous range.
inline void interior_lanes(const FrontRun& r, ContributingSet deps,
                           std::size_t cols, std::size_t& a_out,
                           std::size_t& b_out) {
  std::int64_t a = 0, b = static_cast<std::int64_t>(r.len);
  clamp_lane_ge(static_cast<std::int64_t>(r.i0), r.di, 1, a, b);
  clamp_lane_ge(static_cast<std::int64_t>(r.j0), r.dj, 1, a, b);
  if (deps.has_ne())
    clamp_lane_le(static_cast<std::int64_t>(r.j0), r.dj,
                  static_cast<std::int64_t>(cols) - 2, a, b);
  if (b < a) b = a;
  a_out = static_cast<std::size_t>(std::clamp<std::int64_t>(a, 0, r.len));
  b_out = static_cast<std::size_t>(std::clamp<std::int64_t>(b, 0, r.len));
}

// --- Span assembly ------------------------------------------------------

/// Per-thread gather/scatter scratch (workers of the pool batch
/// concurrently over disjoint chunks of one front). 64-byte aligned so
/// the problems' SIMD kernels — and the 32-byte AVX2 lane tier — can use
/// aligned vector loads/stores on spans packed through the scratch path
/// (span base = buffer base, so offset-0 vectors are always aligned).
template <typename V>
inline V* batch_scratch(std::size_t slot, std::size_t len) {
  thread_local AlignedBuf<V> bufs[5];
  return bufs[slot].ensure(len);
}

/// Executes cells [lo, hi) (positions within front f) over storage
/// addressed by `addr(i, j) -> V*`. When `batch` is set, the problem has
/// the hook, and the layout admits batching, interior runs go through
/// compute_front with packed spans; everything else — edges, short runs,
/// shapes the hook rejects — runs the scalar per-cell reference loop.
/// `addr` must be affine in (i, j) over each run and its neighbours
/// (true for the row-major host table and for every wavefront-major
/// device layout); strides are derived by probing and the run end is
/// checked in debug builds.
template <LddpProblem P, typename Layout, typename AddrFn>
void run_front_range(const P& p, ContributingSet deps,
                     typename P::Value bound, const Layout& layout,
                     std::size_t f, std::size_t lo, std::size_t hi,
                     AddrFn addr, bool batch) {
  using V = typename P::Value;
  const std::size_t cols = layout.cols();
  auto read = [&addr](std::size_t i, std::size_t j) { return *addr(i, j); };
  auto scalar = [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
      const CellIndex cell = layout.cell(f, c);
      *addr(cell.i, cell.j) =
          compute_cell(p, deps, bound, cell.i, cell.j, cols, read);
    }
  };
  if constexpr (BatchFrontProblem<P>) {
    if (batch && layout_batchable(layout, deps)) {
      FrontRun runs[2];
      const std::size_t nr = front_runs(layout, f, runs);
      std::size_t done = lo;
      for (std::size_t r = 0; r < nr && done < hi; ++r) {
        const FrontRun& run = runs[r];
        const std::size_t r_end = run.pos + run.len;
        if (r_end <= done) continue;
        std::size_t ia, ib;
        interior_lanes(run, deps, cols, ia, ib);
        // Clip the interior lanes to the requested [lo, hi) positions.
        const std::size_t ka =
            std::max(run.pos + ia, done) - run.pos;
        const std::size_t kb =
            (std::min(run.pos + ib, hi) > run.pos + ka)
                ? std::min(run.pos + ib, hi) - run.pos
                : ka;
        if (kb - ka < kMinBatchRun) {
          const std::size_t stop = std::min(r_end, hi);
          scalar(done, stop);
          done = stop;
          continue;
        }
        FrontSpan<V> s;
        s.i0 = static_cast<std::size_t>(
            static_cast<std::int64_t>(run.i0) +
            static_cast<std::int64_t>(ka) * run.di);
        s.j0 = static_cast<std::size_t>(
            static_cast<std::int64_t>(run.j0) +
            static_cast<std::int64_t>(ka) * run.dj);
        s.di = run.di;
        s.dj = run.dj;
        s.len = kb - ka;
        V* const out0 = addr(s.i0, s.j0);
        const std::ptrdiff_t sout =
            addr(static_cast<std::size_t>(
                     static_cast<std::int64_t>(s.i0) + s.di),
                 static_cast<std::size_t>(
                     static_cast<std::int64_t>(s.j0) + s.dj)) -
            out0;
        LDDP_DCHECK(addr(static_cast<std::size_t>(
                             static_cast<std::int64_t>(s.i0) +
                             static_cast<std::int64_t>(s.len - 1) * s.di),
                         static_cast<std::size_t>(
                             static_cast<std::int64_t>(s.j0) +
                             static_cast<std::int64_t>(s.len - 1) * s.dj)) ==
                    out0 + static_cast<std::ptrdiff_t>(s.len - 1) * sout);
        // Pack each needed neighbour: direct pointer when unit-stride,
        // strided gather into per-thread scratch otherwise.
        auto pack = [&](std::ptrdiff_t oi, std::ptrdiff_t oj,
                        std::size_t slot) -> const V* {
          const V* const base =
              addr(static_cast<std::size_t>(
                       static_cast<std::int64_t>(s.i0) + oi),
                   static_cast<std::size_t>(
                       static_cast<std::int64_t>(s.j0) + oj));
          if (s.len < 2) return base;
          const std::ptrdiff_t stride =
              addr(static_cast<std::size_t>(
                       static_cast<std::int64_t>(s.i0) + s.di + oi),
                   static_cast<std::size_t>(
                       static_cast<std::int64_t>(s.j0) + s.dj + oj)) -
              base;
          if (stride == 1) return base;
          V* const buf = batch_scratch<V>(slot, s.len);
          for (std::size_t k = 0; k < s.len; ++k)
            buf[k] = base[static_cast<std::ptrdiff_t>(k) * stride];
          return buf;
        };
        if (deps.has_w()) s.w = pack(0, -1, 0);
        if (deps.has_nw()) s.nw = pack(-1, -1, 1);
        if (deps.has_n()) s.n = pack(-1, 0, 2);
        if (deps.has_ne()) s.ne = pack(-1, 1, 3);
        V* scatter_buf = nullptr;
        if (sout == 1) {
          s.out = out0;
        } else {
          scatter_buf = batch_scratch<V>(4, s.len);
          s.out = scatter_buf;
        }
        if (p.compute_front(s)) {
          if (scatter_buf != nullptr)
            for (std::size_t k = 0; k < s.len; ++k)
              out0[static_cast<std::ptrdiff_t>(k) * sout] = scatter_buf[k];
          scalar(done, run.pos + ka);  // leading edge cells
          done = run.pos + kb;
        }
        const std::size_t stop = std::min(r_end, hi);
        scalar(done, stop);  // trailing edge (or the whole run on reject)
        done = stop;
      }
      scalar(done, hi);
      return;
    }
  }
  scalar(lo, hi);
}

// --- Row sweeps (serial scan, tile interiors, horizontal strips) --------

/// Scalar row sweep (i fixed, j in [j0, j1)) over row-major storage with
/// the strip-loop micro-optimizations: the previous row's pointer serves
/// NW/N/NE directly and the just-computed cell is carried forward as the
/// next cell's W neighbour instead of being re-read through the table.
/// `prev_row` is null on the top row. Bit-identical to the generic
/// compute_cell loop.
template <LddpProblem P>
void run_row_scalar(const P& p, ContributingSet deps,
                    typename P::Value bound, std::size_t i, std::size_t j0,
                    std::size_t j1, std::size_t cols,
                    const typename P::Value* prev_row,
                    typename P::Value* row) {
  using V = typename P::Value;
  const bool use_w = deps.has_w(), use_nw = deps.has_nw(),
             use_n = deps.has_n(), use_ne = deps.has_ne();
  V wcarry = use_w && j0 > 0 ? row[j0 - 1] : bound;
  for (std::size_t j = j0; j < j1; ++j) {
    Neighbors<V> nb{bound, bound, bound, bound};
    if (use_w && j > 0) nb.w = wcarry;
    if (prev_row != nullptr) {
      if (use_nw && j > 0) nb.nw = prev_row[j - 1];
      if (use_n) nb.n = prev_row[j];
      if (use_ne && j + 1 < cols) nb.ne = prev_row[j + 1];
    }
    const V v = p.compute(i, j, nb);
    row[j] = v;
    wcarry = v;
  }
}

/// Row sweep with the batch hook where it applies: interior cells of a
/// W-free problem go through compute_front with direct row pointers (no
/// gather — rows are unit-stride in row-major storage), edges and
/// W-dependent problems (sequential within the row) use run_row_scalar.
template <LddpProblem P>
void run_row(const P& p, ContributingSet deps, typename P::Value bound,
             std::size_t i, std::size_t j0, std::size_t j1, std::size_t cols,
             const typename P::Value* prev_row, typename P::Value* row,
             bool batch) {
  using V = typename P::Value;
  if constexpr (BatchFrontProblem<P>) {
    if (batch && !deps.has_w() && prev_row != nullptr && i >= 1) {
      const std::size_t a = std::max<std::size_t>(j0, 1);
      const std::size_t b =
          deps.has_ne() ? std::min(j1, cols > 0 ? cols - 1 : 0) : j1;
      if (b > a && b - a >= kMinBatchRun) {
        FrontSpan<V> s;
        s.i0 = i;
        s.j0 = a;
        s.di = 0;
        s.dj = 1;
        s.len = b - a;
        if (deps.has_nw()) s.nw = prev_row + a - 1;
        if (deps.has_n()) s.n = prev_row + a;
        if (deps.has_ne()) s.ne = prev_row + a + 1;
        s.out = row + a;
        if (p.compute_front(s)) {
          run_row_scalar(p, deps, bound, i, j0, a, cols, prev_row, row);
          run_row_scalar(p, deps, bound, i, b, j1, cols, prev_row, row);
          return;
        }
      }
    }
  }
  run_row_scalar(p, deps, bound, i, j0, j1, cols, prev_row, row);
}

/// True when this problem/layout pair takes the batch path under the given
/// RunConfig::batch_kernels setting.
template <LddpProblem P, typename Layout>
bool use_batch_front(const P&, const Layout& layout, ContributingSet deps,
                     bool batch) {
  if constexpr (BatchFrontProblem<P>) {
    return batch && layout_batchable(layout, deps);
  } else {
    (void)layout;
    (void)deps;
    return false;
  }
}

/// True when row sweeps (serial scan, tile interiors) take the batch path:
/// a W dependency is sequential within the row, so only W-free problems
/// with the hook vectorize rows.
template <LddpProblem P>
bool use_batch_rows(const P&, ContributingSet deps, bool batch) {
  if constexpr (BatchFrontProblem<P>) {
    return batch && !deps.has_w();
  } else {
    (void)deps;
    return false;
  }
}

}  // namespace lddp::detail
