// The representative set and contributing sets (Section II of the paper).
//
// For cell (i, j) the representative set is the four non-conflicting
// neighbours { W=(i,j-1), NW=(i-1,j-1), N=(i-1,j), NE=(i-1,j+1) } — the set
// marked 'a' in Figure 1(b). A problem's *contributing set* is the
// non-empty subset its update function f actually reads; it determines the
// wavefront pattern (Table I) and the CPU<->GPU transfer needs (Table II).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>

#include "util/check.h"

namespace lddp {

/// One representative cell, as a bit.
enum class Dep : std::uint8_t {
  kW = 1u << 0,   ///< cell(i,   j-1) — left
  kNW = 1u << 1,  ///< cell(i-1, j-1) — upper-left
  kN = 1u << 2,   ///< cell(i-1, j  ) — above
  kNE = 1u << 3,  ///< cell(i-1, j+1) — upper-right
};

/// A non-empty subset of {W, NW, N, NE}. By restricting to the
/// representative set, conflicting (cyclic) dependencies are excluded by
/// construction — cf. Figure 1(a).
class ContributingSet {
 public:
  /// Constructs from raw bits; mask must be in [1, 15].
  explicit constexpr ContributingSet(std::uint8_t mask) : mask_(mask) {
    // constexpr-friendly validation: throws at runtime, fails compile in
    // constant evaluation.
    if (mask_ == 0 || mask_ > 15)
      throw CheckError("ContributingSet mask must be in [1, 15]");
  }

  ContributingSet(std::initializer_list<Dep> deps) : mask_(0) {
    for (Dep d : deps) mask_ |= static_cast<std::uint8_t>(d);
    LDDP_CHECK_MSG(mask_ != 0, "contributing set must be non-empty");
  }

  constexpr bool has(Dep d) const {
    return (mask_ & static_cast<std::uint8_t>(d)) != 0;
  }
  constexpr bool has_w() const { return has(Dep::kW); }
  constexpr bool has_nw() const { return has(Dep::kNW); }
  constexpr bool has_n() const { return has(Dep::kN); }
  constexpr bool has_ne() const { return has(Dep::kNE); }

  constexpr std::uint8_t mask() const { return mask_; }

  constexpr int count() const {
    int c = 0;
    for (std::uint8_t m = mask_; m; m &= static_cast<std::uint8_t>(m - 1)) ++c;
    return c;
  }

  constexpr bool operator==(const ContributingSet&) const = default;

  /// "W+NW+N" style label for reports and test names.
  std::string to_string() const {
    std::string s;
    auto add = [&s](const char* name) {
      if (!s.empty()) s += '+';
      s += name;
    };
    if (has_w()) add("W");
    if (has_nw()) add("NW");
    if (has_n()) add("N");
    if (has_ne()) add("NE");
    return s;
  }

 private:
  std::uint8_t mask_;
};

/// All 15 non-empty contributing sets, by ascending mask — handy for
/// exhaustive tests and the Table I reproduction.
inline constexpr int kNumContributingSets = 15;
inline ContributingSet contributing_set_by_index(int idx) {
  LDDP_CHECK(idx >= 0 && idx < kNumContributingSets);
  return ContributingSet(static_cast<std::uint8_t>(idx + 1));
}

}  // namespace lddp
