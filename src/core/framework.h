// Public entry point of the LDDP-Plus framework (Section V-C).
//
// A user supplies a problem — the function f, its contributing set, the
// boundary/initialization values — and calls solve(). The framework
// classifies the contributing set into a pattern (Table I), reduces
// Vertical / mirrored-Inverted-L to their canonical siblings by symmetry,
// picks the wavefront-contiguous layout and the execution strategy for the
// requested mode, and returns the filled table plus timing statistics.
//
//   LevenshteinProblem p(a, b);
//   auto [table, stats] = lddp::solve(p);   // heterogeneous by default
//   int distance = table.at(p.rows() - 1, p.cols() - 1);
#pragma once

#include "core/adapters.h"
#include "core/pattern.h"
#include "core/problem.h"
#include "core/run_config.h"
#include "core/strategies/cpu_strategy.h"
#include "core/strategies/cpu_tiled.h"
#include "core/strategies/frontier_engine.h"
#include "core/strategies/gpu_strategy.h"
#include "core/strategies/gpu_tiled.h"
#include "core/strategies/hetero_antidiagonal.h"
#include "core/strategies/hetero_horizontal.h"
#include "core/strategies/hetero_invertedl.h"
#include "core/strategies/hetero_knightmove.h"
#include "core/strategies/hetero_tiled.h"
#include "sim/platform.h"

namespace lddp {

/// The filled DP table (row-major) and the run's measurements.
template <LddpProblem P>
struct SolveResult {
  Grid<typename P::Value> table;
  SolveStats stats;
};

/// Result of solve_frontier: the table is a FrontierTable — checkpoint
/// rows plus on-demand rematerialization on the frontier tier, a plain
/// grid facade on the full tier. Cell reads go through table.at(i, j)
/// (by value) in user orientation either way.
template <LddpProblem P>
struct FrontierSolveResult {
  FrontierTable<typename P::Value> table;
  SolveStats stats;
};

namespace detail {

/// Auto mode: small tables run on the multicore CPU (kernel-launch and
/// transfer overheads dominate them — the Section VI observation); large
/// tables use the heterogeneous split.
inline Mode resolve_auto(Mode mode, std::size_t cells) {
  if (mode != Mode::kAuto) return mode;
  constexpr std::size_t kHeteroThresholdCells = 512 * 512;
  return cells < kHeteroThresholdCells ? Mode::kCpuParallel
                                       : Mode::kHeterogeneous;
}

/// RunConfig::schedule resolution for solo solves: kStealing swaps in the
/// process-wide stealing facade; kStatic/kAuto keep cfg.pool verbatim
/// (null included), preserving the legacy inline behaviour bit-for-bit.
inline cpu::ThreadPool* resolve_pool(const RunConfig& cfg) {
  return cfg.schedule == cpu::Schedule::kStealing
             ? &cpu::shared_stealing_pool()
             : cfg.pool;
}

/// RunConfig::tile resolution: 0 keeps the legacy untiled strategies, a
/// positive value is used as-is, -1 asks the heuristics for a model-based
/// default for this problem/platform.
template <LddpProblem P>
std::size_t resolve_tile(const P& p, const RunConfig& cfg) {
  if (cfg.tile == 0) return 0;
  if (cfg.tile > 0) return static_cast<std::size_t>(cfg.tile);
  const sim::KernelInfo info = kernel_info_for(p, "auto.tile");
  return default_tile(cfg.platform, info, p.rows(), p.cols(),
                      sizeof(typename P::Value), p.deps(),
                      cfg.fused_launches);
}

template <LddpProblem P>
SolveResult<P> solve_canonical(const P& p, Pattern pattern,
                               const RunConfig& cfg) {
  sim::Platform platform(cfg.platform, detail::resolve_pool(cfg),
                         cfg.buffer_pool);
  // Lifecycle enforcement rides the Timeline: every strategy's recorded op
  // (CPU front, kernel, copy) passes through Timeline::record, so a single
  // install point gives cancellation/deadline checks at front granularity
  // across all execution layers without touching any strategy.
  platform.timeline().set_request_control(cfg.control);
  const Mode mode = resolve_auto(cfg.mode, p.rows() * p.cols());
  const bool fused = cfg.fused_launches;
  const bool batch = cfg.batch_kernels;
  SolveResult<P> result;
  switch (mode) {
    case Mode::kCpuSerial:
      result.table = solve_cpu_serial(p, &platform, &result.stats, batch);
      break;

    case Mode::kCpuTiled:
      result.table = solve_cpu_tiled(p, platform, cfg.cpu_tile,
                                     &result.stats, batch);
      break;

    case Mode::kCpuParallel:
      switch (pattern) {
        case Pattern::kAntiDiagonal:
          result.table = solve_cpu_parallel(
              p, AntiDiagonalLayout(p.rows(), p.cols()), platform,
              &result.stats, detail::kDiagonalCpuAmplification, batch);
          break;
        case Pattern::kHorizontal:
          result.table = solve_cpu_parallel(
              p, RowMajorLayout(p.rows(), p.cols()), platform,
              &result.stats, /*mem_amplification=*/1.0, batch);
          break;
        case Pattern::kKnightMove:
          result.table = solve_cpu_parallel(
              p, KnightMoveLayout(p.rows(), p.cols()), platform,
              &result.stats, detail::kDiagonalCpuAmplification, batch);
          break;
        case Pattern::kInvertedL:
          result.table = solve_cpu_invertedl(p, platform, &result.stats,
                                             batch);
          break;
        default:
          LDDP_CHECK_MSG(false, "non-canonical pattern reached dispatch");
      }
      break;

    case Mode::kGpu:
      if (const std::size_t tile = resolve_tile(p, cfg); tile > 0) {
        result.table =
            solve_gpu_tiled(p, platform, tile, &result.stats, fused, batch);
        break;
      }
      switch (pattern) {
        case Pattern::kAntiDiagonal:
          result.table =
              solve_gpu(p, AntiDiagonalLayout(p.rows(), p.cols()), platform,
                        &result.stats, fused, batch);
          break;
        case Pattern::kHorizontal:
          result.table = solve_gpu(p, RowMajorLayout(p.rows(), p.cols()),
                                   platform, &result.stats, fused, batch);
          break;
        case Pattern::kKnightMove:
          result.table = solve_gpu(p, KnightMoveLayout(p.rows(), p.cols()),
                                   platform, &result.stats, fused, batch);
          break;
        case Pattern::kInvertedL:
          result.table = solve_gpu_invertedl(p, platform, &result.stats,
                                             fused, batch);
          break;
        default:
          LDDP_CHECK_MSG(false, "non-canonical pattern reached dispatch");
      }
      break;

    case Mode::kHeterogeneous:
      if (const std::size_t tile = resolve_tile(p, cfg); tile > 0) {
        result.table = solve_hetero_tiled(p, platform, cfg.hetero, tile,
                                          &result.stats, fused, batch);
        break;
      }
      switch (pattern) {
        case Pattern::kAntiDiagonal:
          result.table =
              solve_hetero_antidiagonal(p, platform, cfg.hetero,
                                        &result.stats, fused, batch);
          break;
        case Pattern::kHorizontal:
          result.table =
              solve_hetero_horizontal(p, platform, cfg.hetero, &result.stats,
                                      fused, batch);
          break;
        case Pattern::kKnightMove:
          result.table =
              solve_hetero_knightmove(p, platform, cfg.hetero, &result.stats,
                                      fused, batch);
          break;
        case Pattern::kInvertedL:
          result.table =
              solve_hetero_invertedl(p, platform, cfg.hetero, &result.stats,
                                     fused, batch);
          break;
        default:
          LDDP_CHECK_MSG(false, "non-canonical pattern reached dispatch");
      }
      break;

    case Mode::kAuto:
      LDDP_CHECK_MSG(false, "unreachable: auto mode was resolved above");
  }
  // Table-storage high-water of a full-table solve: the host grid, plus
  // the wavefront-contiguous device copy for the modes that keep one.
  result.stats.peak_table_bytes =
      p.rows() * p.cols() * sizeof(typename P::Value) *
      ((mode == Mode::kGpu || mode == Mode::kHeterogeneous) ? 2 : 1);
  if (!cfg.trace_path.empty())
    platform.timeline().export_chrome_trace(cfg.trace_path);
  // Detach the per-attempt control before copying the timeline out: the
  // recorded schedule outlives this attempt (batch replay, retries).
  platform.timeline().set_request_control(nullptr);
  if (cfg.record_timeline != nullptr)
    *cfg.record_timeline = platform.timeline();
  return result;
}

/// Frontier-tier counterpart of solve_canonical: every mode x pattern
/// runs a frontier engine when the layout admits a bounded front window,
/// and falls back to the full-table strategy behind the FrontierTable
/// facade otherwise (Inverted-L with forward-looking dependencies, and
/// the heterogeneous Inverted-L split). kCpuTiled runs the parallel
/// frontier engine (there is no tiled frontier engine) and
/// RunConfig::tile is ignored — the window replaces tiling's locality
/// role. The returned table has no remat callback or transform yet; the
/// solve_frontier wrappers attach both.
template <LddpProblem P>
FrontierSolveResult<P> solve_frontier_canonical(const P& p, Pattern pattern,
                                                const RunConfig& cfg) {
  using V = typename P::Value;
  sim::Platform platform(cfg.platform, detail::resolve_pool(cfg),
                         cfg.buffer_pool);
  platform.timeline().set_request_control(cfg.control);
  Mode mode = resolve_auto(cfg.mode, p.rows() * p.cols());
  if (mode == Mode::kCpuTiled) mode = Mode::kCpuParallel;
  const std::size_t K =
      resolve_checkpoint_interval(cfg.checkpoint_interval, p.rows());
  const bool fused = cfg.fused_launches;
  const bool batch = cfg.batch_kernels;
  const ContributingSet deps = p.deps();
  const std::size_t n = p.rows(), m = p.cols();
  FrontierSolveResult<P> result;
  SolveStats& stats = result.stats;
  // Full-table fallback, wrapped in the facade so consumers are uniform.
  auto take_full = [&](Grid<V> g, bool device_copy) {
    stats.peak_table_bytes =
        n * m * sizeof(V) * (device_copy ? 2 : 1);
    result.table = FrontierTable<V>::full(std::move(g));
  };
  switch (mode) {
    case Mode::kCpuSerial:
      result.table = solve_frontier_serial(p, &platform, &stats, batch, K);
      break;

    case Mode::kCpuParallel:
      switch (pattern) {
        case Pattern::kAntiDiagonal:
          result.table = solve_frontier_parallel(
              p, AntiDiagonalLayout(n, m), platform, &stats,
              detail::kDiagonalCpuAmplification, batch, K);
          break;
        case Pattern::kHorizontal:
          result.table = solve_frontier_parallel(
              p, RowMajorLayout(n, m), platform, &stats,
              /*mem_amplification=*/1.0, batch, K);
          break;
        case Pattern::kKnightMove:
          result.table = solve_frontier_parallel(
              p, KnightMoveLayout(n, m), platform, &stats,
              detail::kDiagonalCpuAmplification, batch, K);
          break;
        case Pattern::kInvertedL: {
          const ShellLayout shell(n, m);
          if (frontier_window_fronts(shell, deps) > 0) {
            result.table = solve_frontier_parallel(
                p, shell, platform, &stats,
                detail::kDiagonalCpuAmplification, batch, K);
          } else {
            take_full(solve_cpu_invertedl(p, platform, &stats, batch),
                      false);
          }
          break;
        }
        default:
          LDDP_CHECK_MSG(false, "non-canonical pattern reached dispatch");
      }
      break;

    case Mode::kGpu:
      switch (pattern) {
        case Pattern::kAntiDiagonal:
          result.table = solve_frontier_gpu(p, AntiDiagonalLayout(n, m),
                                            platform, &stats, fused, batch,
                                            K);
          break;
        case Pattern::kHorizontal:
          result.table = solve_frontier_gpu(p, RowMajorLayout(n, m),
                                            platform, &stats, fused, batch,
                                            K);
          break;
        case Pattern::kKnightMove:
          result.table = solve_frontier_gpu(p, KnightMoveLayout(n, m),
                                            platform, &stats, fused, batch,
                                            K);
          break;
        case Pattern::kInvertedL: {
          const ShellLayout shell(n, m);
          if (frontier_window_fronts(shell, deps) > 0) {
            result.table = solve_frontier_gpu(p, shell, platform, &stats,
                                              fused, batch, K);
          } else {
            take_full(solve_gpu_invertedl(p, platform, &stats, fused,
                                          batch),
                      true);
          }
          break;
        }
        default:
          LDDP_CHECK_MSG(false, "non-canonical pattern reached dispatch");
      }
      break;

    case Mode::kHeterogeneous:
      switch (pattern) {
        case Pattern::kAntiDiagonal:
          result.table = solve_frontier_hetero(
              p, AntiDiagonalLayout(n, m), Pattern::kAntiDiagonal, platform,
              cfg.hetero, &stats, detail::kDiagonalCpuAmplification, fused,
              batch, K);
          break;
        case Pattern::kHorizontal:
          result.table = solve_frontier_hetero(
              p, RowMajorLayout(n, m), Pattern::kHorizontal, platform,
              cfg.hetero, &stats, /*mem_amplification=*/1.0, fused, batch,
              K);
          break;
        case Pattern::kKnightMove:
          result.table = solve_frontier_hetero(
              p, KnightMoveLayout(n, m), Pattern::kKnightMove, platform,
              cfg.hetero, &stats, detail::kDiagonalCpuAmplification, fused,
              batch, K);
          break;
        case Pattern::kInvertedL:
          // The L-shaped shell split has no strip decomposition over a
          // window; run the full-table heterogeneous strategy.
          take_full(solve_hetero_invertedl(p, platform, cfg.hetero, &stats,
                                           fused, batch),
                    true);
          break;
        default:
          LDDP_CHECK_MSG(false, "non-canonical pattern reached dispatch");
      }
      break;

    case Mode::kCpuTiled:
    case Mode::kAuto:
      LDDP_CHECK_MSG(false, "unreachable: mode was resolved above");
  }
  if (!cfg.trace_path.empty())
    platform.timeline().export_chrome_trace(cfg.trace_path);
  platform.timeline().set_request_control(nullptr);
  if (cfg.record_timeline != nullptr)
    *cfg.record_timeline = platform.timeline();
  return result;
}

/// Shared body of the solve_frontier overloads. `holder` is a copyable
/// callable yielding the (caller-owned) problem; it is baked into the
/// table's rematerialization callback, so whatever it references must
/// outlive the returned table.
template <LddpProblem P, typename Holder>
FrontierSolveResult<P> solve_frontier_impl(const P& p, Holder holder,
                                           const RunConfig& cfg) {
  using V = typename P::Value;
  using Transform = typename FrontierTable<V>::Transform;
  LDDP_CHECK_MSG(p.rows() > 0 && p.cols() > 0,
                 "problem table must be non-empty");
  if (cfg.storage == Storage::kFull) {
    auto inner = solve(p, cfg);
    FrontierSolveResult<P> out;
    out.stats = inner.stats;
    out.table = FrontierTable<V>::full(std::move(inner.table));
    return out;
  }
  const Pattern pattern = classify(p.deps());
  FrontierSolveResult<P> out;
  if (pattern == Pattern::kVertical) {
    // Horizontal on the transposed table; the undo is a coordinate view
    // on the facade (a frontier table cannot be transposed eagerly).
    TransposedProblem<P> t(p);
    auto inner = solve_frontier_canonical(t, Pattern::kHorizontal, cfg);
    out.table = std::move(inner.table);
    out.stats = inner.stats;
    out.stats.pattern = Pattern::kVertical;
    if (out.table.frontier())
      attach_row_remat(
          out.table,
          [holder]() { return TransposedProblem<P>(holder()); },
          cfg.batch_kernels);
    out.table.set_transform(Transform::kTransposed);
    return out;
  }
  if (pattern == Pattern::kMirroredInvertedL) {
    MirroredProblem<P> mp(p);
    auto inner = solve_frontier_canonical(mp, Pattern::kInvertedL, cfg);
    out.table = std::move(inner.table);
    out.stats = inner.stats;
    out.stats.pattern = Pattern::kMirroredInvertedL;
    if (out.table.frontier())
      attach_row_remat(out.table,
                       [holder]() { return MirroredProblem<P>(holder()); },
                       cfg.batch_kernels);
    out.table.set_transform(Transform::kMirrored);
    return out;
  }
  auto inner = solve_frontier_canonical(p, pattern, cfg);
  out.table = std::move(inner.table);
  out.stats = inner.stats;
  if (out.table.frontier())
    attach_row_remat(out.table, holder, cfg.batch_kernels);
  return out;
}

}  // namespace detail

/// Solves the problem with the configured platform and mode. Thread-safe
/// for distinct problem/config objects; one call uses one simulated
/// platform instance.
template <LddpProblem P>
SolveResult<P> solve(const P& p, const RunConfig& cfg = RunConfig{}) {
  LDDP_CHECK_MSG(p.rows() > 0 && p.cols() > 0,
                 "problem table must be non-empty");
  const Pattern pattern = classify(p.deps());

  if (pattern == Pattern::kVertical) {
    // Horizontal on the transposed table (Section III symmetry).
    TransposedProblem<P> t(p);
    auto inner = detail::solve_canonical(t, Pattern::kHorizontal, cfg);
    SolveResult<P> out;
    out.table = transpose_grid(inner.table);
    out.stats = inner.stats;
    out.stats.pattern = Pattern::kVertical;
    return out;
  }
  if (pattern == Pattern::kMirroredInvertedL) {
    // Inverted-L on the mirrored table.
    MirroredProblem<P> mp(p);
    auto inner = detail::solve_canonical(mp, Pattern::kInvertedL, cfg);
    SolveResult<P> out;
    out.table = mirror_grid(inner.table);
    out.stats = inner.stats;
    out.stats.pattern = Pattern::kMirroredInvertedL;
    return out;
  }
  return detail::solve_canonical(p, pattern, cfg);
}

/// Solves the problem on the storage tier selected by cfg.storage:
/// kFrontier (and kAuto) keeps only checkpoint rows plus the live front
/// window during the sweep — O(rows/K * cols) retained instead of
/// O(rows * cols) — and serves interior reads through checkpointed
/// rematerialization; kFull wraps the ordinary solve() in the same
/// facade. Final values and every traceback are bit-identical across
/// tiers. The problem must outlive the returned table (its
/// rematerialization callback re-runs p's recurrence); use the
/// shared_ptr overload to have the table share ownership instead.
template <LddpProblem P>
FrontierSolveResult<P> solve_frontier(const P& p,
                                      const RunConfig& cfg = RunConfig{}) {
  return detail::solve_frontier_impl(
      p, [pp = &p]() -> const P& { return *pp; }, cfg);
}

/// Ownership-sharing overload: the returned table keeps the problem
/// alive for as long as it may rematerialize (the batch engine uses this
/// so tables can outlive their jobs).
template <LddpProblem P>
FrontierSolveResult<P> solve_frontier(std::shared_ptr<const P> sp,
                                      const RunConfig& cfg = RunConfig{}) {
  LDDP_CHECK(sp != nullptr);
  const P& ref = *sp;
  auto out = detail::solve_frontier_impl(
      ref, [sp]() -> const P& { return *sp; }, cfg);
  out.table.keep_alive(std::move(sp));
  return out;
}

}  // namespace lddp
