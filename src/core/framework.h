// Public entry point of the LDDP-Plus framework (Section V-C).
//
// A user supplies a problem — the function f, its contributing set, the
// boundary/initialization values — and calls solve(). The framework
// classifies the contributing set into a pattern (Table I), reduces
// Vertical / mirrored-Inverted-L to their canonical siblings by symmetry,
// picks the wavefront-contiguous layout and the execution strategy for the
// requested mode, and returns the filled table plus timing statistics.
//
//   LevenshteinProblem p(a, b);
//   auto [table, stats] = lddp::solve(p);   // heterogeneous by default
//   int distance = table.at(p.rows() - 1, p.cols() - 1);
#pragma once

#include "core/adapters.h"
#include "core/pattern.h"
#include "core/problem.h"
#include "core/run_config.h"
#include "core/strategies/cpu_strategy.h"
#include "core/strategies/cpu_tiled.h"
#include "core/strategies/gpu_strategy.h"
#include "core/strategies/gpu_tiled.h"
#include "core/strategies/hetero_antidiagonal.h"
#include "core/strategies/hetero_horizontal.h"
#include "core/strategies/hetero_invertedl.h"
#include "core/strategies/hetero_knightmove.h"
#include "core/strategies/hetero_tiled.h"
#include "sim/platform.h"

namespace lddp {

/// The filled DP table (row-major) and the run's measurements.
template <LddpProblem P>
struct SolveResult {
  Grid<typename P::Value> table;
  SolveStats stats;
};

namespace detail {

/// Auto mode: small tables run on the multicore CPU (kernel-launch and
/// transfer overheads dominate them — the Section VI observation); large
/// tables use the heterogeneous split.
inline Mode resolve_auto(Mode mode, std::size_t cells) {
  if (mode != Mode::kAuto) return mode;
  constexpr std::size_t kHeteroThresholdCells = 512 * 512;
  return cells < kHeteroThresholdCells ? Mode::kCpuParallel
                                       : Mode::kHeterogeneous;
}

/// RunConfig::tile resolution: 0 keeps the legacy untiled strategies, a
/// positive value is used as-is, -1 asks the heuristics for a model-based
/// default for this problem/platform.
template <LddpProblem P>
std::size_t resolve_tile(const P& p, const RunConfig& cfg) {
  if (cfg.tile == 0) return 0;
  if (cfg.tile > 0) return static_cast<std::size_t>(cfg.tile);
  const sim::KernelInfo info = kernel_info_for(p, "auto.tile");
  return default_tile(cfg.platform, info, p.rows(), p.cols(),
                      sizeof(typename P::Value), p.deps(),
                      cfg.fused_launches);
}

template <LddpProblem P>
SolveResult<P> solve_canonical(const P& p, Pattern pattern,
                               const RunConfig& cfg) {
  sim::Platform platform(cfg.platform, cfg.pool, cfg.buffer_pool);
  // Lifecycle enforcement rides the Timeline: every strategy's recorded op
  // (CPU front, kernel, copy) passes through Timeline::record, so a single
  // install point gives cancellation/deadline checks at front granularity
  // across all execution layers without touching any strategy.
  platform.timeline().set_request_control(cfg.control);
  const Mode mode = resolve_auto(cfg.mode, p.rows() * p.cols());
  const bool fused = cfg.fused_launches;
  const bool batch = cfg.batch_kernels;
  SolveResult<P> result;
  switch (mode) {
    case Mode::kCpuSerial:
      result.table = solve_cpu_serial(p, &platform, &result.stats, batch);
      break;

    case Mode::kCpuTiled:
      result.table = solve_cpu_tiled(p, platform, cfg.cpu_tile,
                                     &result.stats, batch);
      break;

    case Mode::kCpuParallel:
      switch (pattern) {
        case Pattern::kAntiDiagonal:
          result.table = solve_cpu_parallel(
              p, AntiDiagonalLayout(p.rows(), p.cols()), platform,
              &result.stats, detail::kDiagonalCpuAmplification, batch);
          break;
        case Pattern::kHorizontal:
          result.table = solve_cpu_parallel(
              p, RowMajorLayout(p.rows(), p.cols()), platform,
              &result.stats, /*mem_amplification=*/1.0, batch);
          break;
        case Pattern::kKnightMove:
          result.table = solve_cpu_parallel(
              p, KnightMoveLayout(p.rows(), p.cols()), platform,
              &result.stats, detail::kDiagonalCpuAmplification, batch);
          break;
        case Pattern::kInvertedL:
          result.table = solve_cpu_invertedl(p, platform, &result.stats,
                                             batch);
          break;
        default:
          LDDP_CHECK_MSG(false, "non-canonical pattern reached dispatch");
      }
      break;

    case Mode::kGpu:
      if (const std::size_t tile = resolve_tile(p, cfg); tile > 0) {
        result.table =
            solve_gpu_tiled(p, platform, tile, &result.stats, fused, batch);
        break;
      }
      switch (pattern) {
        case Pattern::kAntiDiagonal:
          result.table =
              solve_gpu(p, AntiDiagonalLayout(p.rows(), p.cols()), platform,
                        &result.stats, fused, batch);
          break;
        case Pattern::kHorizontal:
          result.table = solve_gpu(p, RowMajorLayout(p.rows(), p.cols()),
                                   platform, &result.stats, fused, batch);
          break;
        case Pattern::kKnightMove:
          result.table = solve_gpu(p, KnightMoveLayout(p.rows(), p.cols()),
                                   platform, &result.stats, fused, batch);
          break;
        case Pattern::kInvertedL:
          result.table = solve_gpu_invertedl(p, platform, &result.stats,
                                             fused, batch);
          break;
        default:
          LDDP_CHECK_MSG(false, "non-canonical pattern reached dispatch");
      }
      break;

    case Mode::kHeterogeneous:
      if (const std::size_t tile = resolve_tile(p, cfg); tile > 0) {
        result.table = solve_hetero_tiled(p, platform, cfg.hetero, tile,
                                          &result.stats, fused, batch);
        break;
      }
      switch (pattern) {
        case Pattern::kAntiDiagonal:
          result.table =
              solve_hetero_antidiagonal(p, platform, cfg.hetero,
                                        &result.stats, fused, batch);
          break;
        case Pattern::kHorizontal:
          result.table =
              solve_hetero_horizontal(p, platform, cfg.hetero, &result.stats,
                                      fused, batch);
          break;
        case Pattern::kKnightMove:
          result.table =
              solve_hetero_knightmove(p, platform, cfg.hetero, &result.stats,
                                      fused, batch);
          break;
        case Pattern::kInvertedL:
          result.table =
              solve_hetero_invertedl(p, platform, cfg.hetero, &result.stats,
                                     fused, batch);
          break;
        default:
          LDDP_CHECK_MSG(false, "non-canonical pattern reached dispatch");
      }
      break;

    case Mode::kAuto:
      LDDP_CHECK_MSG(false, "unreachable: auto mode was resolved above");
  }
  if (!cfg.trace_path.empty())
    platform.timeline().export_chrome_trace(cfg.trace_path);
  // Detach the per-attempt control before copying the timeline out: the
  // recorded schedule outlives this attempt (batch replay, retries).
  platform.timeline().set_request_control(nullptr);
  if (cfg.record_timeline != nullptr)
    *cfg.record_timeline = platform.timeline();
  return result;
}

}  // namespace detail

/// Solves the problem with the configured platform and mode. Thread-safe
/// for distinct problem/config objects; one call uses one simulated
/// platform instance.
template <LddpProblem P>
SolveResult<P> solve(const P& p, const RunConfig& cfg = RunConfig{}) {
  LDDP_CHECK_MSG(p.rows() > 0 && p.cols() > 0,
                 "problem table must be non-empty");
  const Pattern pattern = classify(p.deps());

  if (pattern == Pattern::kVertical) {
    // Horizontal on the transposed table (Section III symmetry).
    TransposedProblem<P> t(p);
    auto inner = detail::solve_canonical(t, Pattern::kHorizontal, cfg);
    SolveResult<P> out;
    out.table = transpose_grid(inner.table);
    out.stats = inner.stats;
    out.stats.pattern = Pattern::kVertical;
    return out;
  }
  if (pattern == Pattern::kMirroredInvertedL) {
    // Inverted-L on the mirrored table.
    MirroredProblem<P> mp(p);
    auto inner = detail::solve_canonical(mp, Pattern::kInvertedL, cfg);
    SolveResult<P> out;
    out.table = mirror_grid(inner.table);
    out.stats = inner.stats;
    out.stats.pattern = Pattern::kMirroredInvertedL;
    return out;
  }
  return detail::solve_canonical(p, pattern, cfg);
}

}  // namespace lddp
