// Lane-generic row kernels for lane-packed multi-solve execution, with
// runtime ISA dispatch.
//
// The per-solve batch-front hooks (compute_front in the problem headers)
// vectorize WITHIN one solve's front, which only pays off once fronts are
// long; the serving path's small solves (L < 256) barely beat scalar
// there. The lane kernels vectorize ACROSS solves instead: one SIMD lane
// per solve, S same-shaped solves in lockstep over a lane-major
// interleaved row (tables/lane_grid.h), so every load/store is one
// unit-stride vector op regardless of front length — the classic
// inter-task vectorization of hybrid wavefront systems (Teodoro et al.).
//
// Each problem family reduces to one of a small set of row recurrences
// (RowOp); the kernel bodies are templates over the vector type
// (lane_kernels_impl.h) instantiated twice:
//   * lane_kernels.cpp       — baseline TU, I32x4 (SSE2 / scalar), and
//                              the runtime dispatcher;
//   * lane_kernels_avx2.cpp  — compiled with -mavx2 when the compiler
//                              supports it, I32x8.
// row_kernel() picks the widest table the RUNNING cpu admits (cpuid
// probe; static under `__AVX2__`, i.e. LDDP_NATIVE builds), so one
// binary serves both machines. The LDDP_FORCE_ISA=sse2 environment
// variable — or force_baseline_kernels(true) in tests — pins the 4-wide
// table to exercise the fallback path on AVX2 hardware.
//
// Every op is exact signed int32 arithmetic; packed results are
// bit-identical to the scalar recurrence by construction.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lddp::lanes {

/// One interleaved row step of a lane cohort: compute columns [j0, j1) of
/// row `i` for all `width` interleaved lanes. Element (j, s) of a row
/// pointer lives at ptr[j * width + s]; `width` is a multiple of the
/// kernel's vector width and all pointers are 64-byte aligned with
/// column offsets that preserve alignment.
template <typename V>
struct RowCtx {
  std::size_t width = 0;  ///< interleave stride (elements), lanes padded
  std::size_t i = 0;      ///< row being computed (>= 1)
  std::size_t j0 = 1;     ///< first column (>= 1; column 0 already final)
  std::size_t j1 = 0;     ///< one past the last column
  const V* prev = nullptr;  ///< interleaved row i-1, fully final
  V* row = nullptr;         ///< interleaved row i; [0, j0) already final
  /// Per-lane scalar input (width entries; e.g. the row's character of
  /// each lane's `a` string, or each lane's additive constant).
  const std::int32_t* lane_a = nullptr;
  /// Interleaved per-column input (same (j, s) addressing as the rows;
  /// e.g. cost rows, widened bits, widened `b` characters).
  const std::int32_t* col_b = nullptr;
};

/// The row recurrences the int32 problem families reduce to.
enum class RowOp : int {
  kLevenshtein = 0,  ///< eq ? nw : min(w, nw, n) + 1
  kLcs,              ///< eq ? nw + 1 : max(w, n)
  kMinPlus,          ///< min(nw, n, ne) + cost   (checkerboard, seam)
  kMaxSquare,        ///< bit ? min(w, nw, n) + 1 : 0
  kMinNwN,           ///< min(nw, n) + c          (synthetic case-1)
};
inline constexpr int kNumRowOps = 5;

using RowKernelFn = void (*)(const RowCtx<std::int32_t>&);

/// The kernel for `op` at interleave width `width` (a multiple of 4):
/// the 8-wide AVX2 table when it exists, the running CPU supports AVX2
/// and 8 divides `width`; the baseline 4-wide table otherwise. Never
/// null.
RowKernelFn row_kernel(RowOp op, std::size_t width);

/// De-interleaves columns [j0, j1) of an interleaved lane row into the
/// per-lane table rows: outs[s][j] = row[j * width + s] for every lane
/// s < nlanes (padding lanes are simply not scattered). The scalar form
/// of this scatter costs ~3x the row kernel itself — every element is a
/// strided load — so it dispatches like row_kernel: 8x8 in-register
/// transposes when the AVX2 tier is live and 8 divides `width`, 4x4
/// SSE2 transposes otherwise (plain loops off x86). `row` is 64-byte
/// aligned with width a multiple of 4; outs[s] + j0 is unaligned.
using ScatterFn = void (*)(const std::int32_t* row, std::size_t width,
                           std::size_t j0, std::size_t j1,
                           std::int32_t* const* outs, std::size_t nlanes);

/// The de-interleave scatter for interleave width `width`. Never null.
ScatterFn lane_scatter(std::size_t width);

/// Widest interleave the active dispatch will vectorize: 8 when the AVX2
/// table is live, else 4. The lane-cohort driver pads cohorts to a
/// multiple of 4 and this bounds how many lanes one kernel call covers.
std::size_t preferred_lane_width();

/// "avx2", "sse2" or "scalar" — which tier row_kernel() hands out at
/// preferred width (reports, tests).
const char* active_isa();

/// Test hook: pin dispatch to the baseline 4-wide table (true) or restore
/// runtime probing (false). The LDDP_FORCE_ISA=sse2 environment variable
/// applies the same pin at startup.
void force_baseline_kernels(bool on);

/// Lane-execution traits a problem opts into by specializing (done in the
/// problem headers, next to the per-solve compute_front hook they
/// generalize). The primary template marks a problem lane-UNAWARE: its
/// cohorts still execute through the lane driver (grouping, stats,
/// per-lane row path) but without interleaved vector lockstep.
///
/// An enabled specialization provides:
///   struct State;  // kernel fn + input staging buffers
///   static State make(const P* const* lanes, std::size_t width,
///                     std::size_t min_rows, std::size_t min_cols);
///   static void fill_row(State&, const P* const* lanes,
///                        std::size_t width, std::size_t i);
///   static void run(const State&, RowCtx<typename P::Value> ctx);
/// `lanes` has `width` entries; padding entries alias lane 0.
template <typename P>
struct LaneTraits {
  static constexpr bool enabled = false;
};

}  // namespace lddp::lanes
