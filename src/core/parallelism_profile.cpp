#include "core/parallelism_profile.h"

namespace lddp {

namespace {

template <typename Layout>
std::vector<std::size_t> profile_of(const Layout& lay) {
  std::vector<std::size_t> p(lay.num_fronts());
  for (std::size_t f = 0; f < lay.num_fronts(); ++f) p[f] = lay.front_size(f);
  return p;
}

}  // namespace

std::vector<std::size_t> parallelism_profile(Pattern pattern,
                                             std::size_t rows,
                                             std::size_t cols) {
  switch (pattern) {
    case Pattern::kAntiDiagonal:
      return profile_of(AntiDiagonalLayout(rows, cols));
    case Pattern::kHorizontal:
      return profile_of(RowMajorLayout(rows, cols));
    case Pattern::kVertical:
      return profile_of(ColumnMajorLayout(rows, cols));
    case Pattern::kInvertedL:
      return profile_of(ShellLayout(rows, cols));
    case Pattern::kMirroredInvertedL:
      return profile_of(MirrorShellLayout(rows, cols));
    case Pattern::kKnightMove:
      return profile_of(KnightMoveLayout(rows, cols));
  }
  LDDP_CHECK_MSG(false, "invalid pattern");
  return {};
}

ProfileShape profile_shape(Pattern pattern) {
  switch (canonical(pattern)) {
    case Pattern::kHorizontal:
      return ProfileShape::kConstant;
    case Pattern::kInvertedL:
      return ProfileShape::kMonotoneFalling;
    case Pattern::kAntiDiagonal:
    case Pattern::kKnightMove:
      return ProfileShape::kRiseAndFall;
    default:
      LDDP_CHECK_MSG(false, "unreachable: canonical() returned an alias");
      return ProfileShape::kConstant;
  }
}

ProfileShape classify_profile(const std::vector<std::size_t>& raw) {
  LDDP_CHECK_MSG(!raw.empty(), "empty parallelism profile");
  // Zero-size fronts (knight-move on single-column tables) are scheduling
  // gaps, not parallelism changes — ignore them.
  std::vector<std::size_t> profile;
  profile.reserve(raw.size());
  for (std::size_t v : raw)
    if (v > 0) profile.push_back(v);
  LDDP_CHECK_MSG(!profile.empty(), "profile has no non-empty fronts");
  bool rises = false, falls = false, falls_then_rises = false;
  for (std::size_t f = 1; f < profile.size(); ++f) {
    if (profile[f] > profile[f - 1]) {
      rises = true;
      if (falls) falls_then_rises = true;
    } else if (profile[f] < profile[f - 1]) {
      falls = true;
    }
  }
  LDDP_CHECK_MSG(!falls_then_rises,
                 "profile is not one of the LDDP-Plus shapes (it rises "
                 "after falling)");
  if (!rises && !falls) return ProfileShape::kConstant;
  if (!rises) return ProfileShape::kMonotoneFalling;
  return ProfileShape::kRiseAndFall;
}

std::string to_string(ProfileShape s) {
  switch (s) {
    case ProfileShape::kConstant:
      return "constant";
    case ProfileShape::kRiseAndFall:
      return "rise-and-fall";
    case ProfileShape::kMonotoneFalling:
      return "monotone-falling";
  }
  return "?";
}

}  // namespace lddp
