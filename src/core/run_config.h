// Execution configuration and result statistics for Framework::solve.
#pragma once

#include <cstddef>
#include <string>

#include "core/pattern.h"
#include "cpu/thread_pool.h"
#include "sim/device_spec.h"

namespace lddp::sim {
class BufferPool;
class Timeline;
}  // namespace lddp::sim

namespace lddp::fault {
struct RequestControl;
}  // namespace lddp::fault

namespace lddp {

/// Which implementation runs the table fill.
enum class Mode {
  kCpuSerial,      ///< single-threaded reference scan
  kCpuParallel,    ///< multicore wavefronts (fork/join per front)
  kCpuTiled,       ///< multicore tile wavefronts (block-per-thread; only
                   ///< for NE-free contributing sets)
  kGpu,            ///< pure simulated-GPU wavefronts (thread-per-cell)
  kHeterogeneous,  ///< the paper's CPU+GPU split
  kAuto,           ///< framework picks by problem size (Section VI findings)
};

std::string to_string(Mode m);

/// Table storage tier used by solve_frontier (core/framework.h).
enum class Storage {
  kAuto,      ///< framework picks (frontier wherever a window exists)
  kFull,      ///< materialize the whole O(rows x cols) table
  kFrontier,  ///< live front window + checkpoint rows every K fronts;
              ///< tracebacks rematerialize K-row bands on demand
};

std::string to_string(Storage s);

/// Workload-division parameters (Sections III and V-A).
/// Negative values mean "let the framework pick a model-based default";
/// the Tuner (core/tuner.h) refines them empirically.
struct HeteroParams {
  /// Iterations at each low-work end handled entirely by the CPU.
  long long t_switch = -1;
  /// Cells of each high-work front handled by the CPU (the CPU's strip
  /// width: rows for anti-diagonal, columns for the other patterns).
  long long t_share = -1;
};

/// Everything solve() needs besides the problem itself.
struct RunConfig {
  sim::PlatformSpec platform = sim::PlatformSpec::hetero_high();
  Mode mode = Mode::kAuto;
  HeteroParams hetero;
  /// Tile side for Mode::kCpuTiled.
  std::size_t cpu_tile = 64;
  /// Tile side for the tile-granular GPU / heterogeneous execution layer:
  /// 0 runs the legacy untiled strategies (thread-per-cell kernels,
  /// cell-granular splits), > 0 uses tile x tile blocks (skewed when the
  /// contributing set has NE) with block-per-tile shared-memory kernels
  /// and halo-only CPU<->GPU transfers, -1 picks a model-based default.
  /// Results are bit-identical across settings; only timing changes.
  long long tile = 0;
  /// Table storage tier, consumed by solve_frontier (solve() always
  /// materializes the full table and ignores this field). kAuto resolves
  /// to kFrontier for every canonical pattern; kFull forces the legacy
  /// full-table path behind the FrontierTable facade. Results — final
  /// values and tracebacks — are bit-identical across tiers.
  Storage storage = Storage::kAuto;
  /// Checkpoint interval K (fronts between retained checkpoint rows) for
  /// the frontier storage tier. 0 picks the model default
  /// (~sqrt(rows), clamped to [4, 512]); any positive value is used
  /// as-is (K = 1 keeps every row; K >= rows keeps only row 0 and the
  /// last row). Smaller K means cheaper rematerialization and more
  /// resident memory.
  std::size_t checkpoint_interval = 0;
  /// Optional host pool for real execution; null runs everything on the
  /// calling thread (simulated timings are identical either way).
  cpu::ThreadPool* pool = nullptr;
  /// CPU execution substrate for real (host) work. kStealing routes every
  /// parallel front through the process-wide work-stealing executor
  /// (cpu::shared_stealing_pool()), overriding `pool`; kStatic and kAuto
  /// keep `pool` exactly as given — a null pool stays inline, so existing
  /// configurations are byte-for-byte unchanged. The batch engine resolves
  /// kAuto to kStealing at the engine level and overrides this field with
  /// its own substrate decision for admitted requests. Results are
  /// bit-identical across schedules; only host wall-clock changes.
  cpu::Schedule schedule = cpu::Schedule::kAuto;
  /// Optional device/pinned-host buffer pool; repeated solve() calls then
  /// reuse arenas instead of re-allocating per run. Must outlive the call.
  sim::BufferPool* buffer_pool = nullptr;
  /// Batch each GPU phase's kernels and copies into one graph-style fused
  /// submission (one full launch overhead per phase + a small per-node
  /// issue cost) instead of paying full launch overhead per operation.
  /// Results are bit-identical; only the simulated timing changes.
  bool fused_launches = true;
  /// Execute fronts through the problems' batch-front (SIMD) hook where
  /// one exists: interior runs of each front are computed in one
  /// vectorized call over packed neighbour spans instead of one scalar
  /// `compute` per cell, and the CPU cost model gains the calibrated
  /// vector-throughput term. Results are bit-identical to the scalar
  /// path (which `false` restores exactly); only real wall-clock — and,
  /// via the cost model, the simulated CPU speed — changes.
  bool batch_kernels = true;
  /// Cross-solve packing eligibility when this request runs through the
  /// BatchEngine: the batch merger may fuse this solve's co-ready GPU
  /// fronts / DMA descriptors with those of co-resident solves into one
  /// multi-tenant packed launch (and co-schedule its CPU strips on the
  /// shared cooperative pool). -1 defers to BatchConfig::pack_solves
  /// (default on in batch mode), 0 opts this request out, 1 opts it in.
  /// Solo solve() ignores the flag — there is nothing to pack with.
  /// Results are bit-identical; only the merged simulated timing changes.
  int pack_solves = -1;
  /// If non-empty, the simulated schedule is written here as a
  /// chrome://tracing / Perfetto JSON file after the run.
  std::string trace_path;
  /// If non-null, receives a copy of the run's full recorded timeline
  /// (every simulated op with resource, duration and dependencies). The
  /// batch engine uses this to replay per-solve schedules against a shared
  /// platform. Must outlive the solve() call.
  sim::Timeline* record_timeline = nullptr;
  /// Optional per-request lifecycle control (cooperative cancellation flag
  /// + simulated-time deadline), installed on the run's Timeline and
  /// checked at every recorded operation — i.e. at front/tile granularity
  /// for every execution layer. Must outlive the solve() call. Null runs
  /// uncontrolled. Deadlines are in *simulated* seconds, so enforcement is
  /// deterministic and independent of host load.
  const fault::RequestControl* control = nullptr;
};

/// Measured outcome of one solve() call.
struct SolveStats {
  Mode mode_used = Mode::kCpuSerial;
  Pattern pattern = Pattern::kHorizontal;
  TransferNeed transfer = TransferNeed::kNone;

  double sim_seconds = 0.0;   ///< simulated platform makespan — the
                              ///< headline number in every figure
  double real_seconds = 0.0;  ///< actual host wall-clock, for reference

  std::size_t fronts = 0;
  std::size_t cells = 0;

  /// High-water table storage of this solve across host and device:
  /// full tier ~ rows*cols*sizeof(V) per residency; frontier tier ~ the
  /// front window plus checkpoint rows plus remat scratch.
  std::size_t peak_table_bytes = 0;
  /// Frontier tier only (0 on the full tier): the checkpoint interval
  /// actually used and the number of rows retained as checkpoints.
  std::size_t checkpoint_interval = 0;
  std::size_t checkpoint_rows = 0;

  // Heterogeneous split actually used (0/0 for non-hetero modes).
  long long t_switch = 0;
  long long t_share = 0;

  // Simulated resource accounting.
  double cpu_busy_seconds = 0.0;
  double gpu_busy_seconds = 0.0;
  double copy_busy_seconds = 0.0;
  std::size_t h2d_bytes = 0;
  std::size_t d2h_bytes = 0;
  std::size_t h2d_copies = 0;
  std::size_t d2h_copies = 0;
};

}  // namespace lddp
