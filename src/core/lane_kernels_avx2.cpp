// The 8-wide (I32x8) lane-kernel table. This is the ONLY translation
// unit in the baseline build compiled with -mavx2 (CMake attaches the
// flag per-source when the compiler supports it): the dispatcher in
// lane_kernels.cpp takes this table exclusively behind a runtime cpuid
// probe, so no VEX-256 instruction is reachable on a non-AVX2 machine.
// When the toolchain cannot target AVX2 at all, the table degrades to
// nullptr and dispatch stays on the baseline tier.

#include "core/lane_kernels.h"

#if defined(__AVX2__)

#include <algorithm>
#include <array>

#include "core/lane_kernels_impl.h"
#include "util/simd.h"

namespace lddp::lanes {

const RowKernelFn* avx2_row_kernels() {
  static const std::array<RowKernelFn, kNumRowOps> table =
      detail::make_table<simd::I32x8>();
  return table.data();
}

namespace {

/// 8x8 int32 in-register transpose scatter: eight aligned column loads
/// (row is 64-byte aligned, width a multiple of 8) become eight
/// unaligned per-lane stores of 8 consecutive columns each. Lane groups
/// past nlanes are transposed but not stored — padding lanes alias lane
/// 0, so the loads stay in bounds.
void scatter_avx2(const std::int32_t* row, std::size_t width,
                  std::size_t j0, std::size_t j1,
                  std::int32_t* const* outs, std::size_t nlanes) {
  std::size_t j = j0;
  for (; j + 8 <= j1; j += 8) {
    for (std::size_t s8 = 0; s8 < nlanes; s8 += 8) {
      const std::int32_t* const p = row + j * width + s8;
      __m256i r[8];
      for (int k = 0; k < 8; ++k)
        r[k] = _mm256_load_si256(reinterpret_cast<const __m256i*>(
            p + static_cast<std::size_t>(k) * width));
      const __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
      const __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
      const __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
      const __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
      const __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
      const __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
      const __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
      const __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);
      const __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
      const __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
      const __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
      const __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
      const __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
      const __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
      const __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
      const __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
      const __m256i o[8] = {_mm256_permute2x128_si256(u0, u4, 0x20),
                            _mm256_permute2x128_si256(u1, u5, 0x20),
                            _mm256_permute2x128_si256(u2, u6, 0x20),
                            _mm256_permute2x128_si256(u3, u7, 0x20),
                            _mm256_permute2x128_si256(u0, u4, 0x31),
                            _mm256_permute2x128_si256(u1, u5, 0x31),
                            _mm256_permute2x128_si256(u2, u6, 0x31),
                            _mm256_permute2x128_si256(u3, u7, 0x31)};
      const std::size_t se = std::min<std::size_t>(nlanes - s8, 8);
      for (std::size_t t = 0; t < se; ++t)
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(outs[s8 + t] + j),
                            o[t]);
    }
  }
  for (; j < j1; ++j)
    for (std::size_t s = 0; s < nlanes; ++s)
      outs[s][j] = row[j * width + s];
}

}  // namespace

ScatterFn avx2_lane_scatter() { return &scatter_avx2; }

}  // namespace lddp::lanes

#else  // !__AVX2__

namespace lddp::lanes {

const RowKernelFn* avx2_row_kernels() { return nullptr; }

ScatterFn avx2_lane_scatter() { return nullptr; }

}  // namespace lddp::lanes

#endif
