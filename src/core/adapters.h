// Symmetry adapters (Section III): the Vertical pattern is Horizontal on
// the transposed table, and the mirrored Inverted-L is Inverted-L on the
// left-right mirrored table. Wrapping the problem (rather than writing two
// more strategies) is exactly the paper's "addressed by appealing to
// symmetry".
#pragma once

#include "core/problem.h"
#include "tables/grid.h"

namespace lddp {

/// Transpose adapter: (i, j) <-> (j, i). Valid only when NE is not in the
/// contributing set (NE has no representative-set image under transpose);
/// the Vertical sets {W} and {W, NW} satisfy this. W maps to N and back.
template <LddpProblem P>
class TransposedProblem {
 public:
  using Value = typename P::Value;

  explicit TransposedProblem(const P& inner) : inner_(&inner) {
    LDDP_CHECK_MSG(!inner.deps().has_ne(),
                   "transpose adapter cannot represent an NE dependency");
  }

  std::size_t rows() const { return inner_->cols(); }
  std::size_t cols() const { return inner_->rows(); }

  ContributingSet deps() const {
    const ContributingSet d = inner_->deps();
    std::uint8_t mask = 0;
    if (d.has_w()) mask |= static_cast<std::uint8_t>(Dep::kN);
    if (d.has_n()) mask |= static_cast<std::uint8_t>(Dep::kW);
    if (d.has_nw()) mask |= static_cast<std::uint8_t>(Dep::kNW);
    return ContributingSet(mask);
  }

  Value boundary() const { return inner_->boundary(); }

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    return inner_->compute(j, i, Neighbors<Value>{nb.n, nb.nw, nb.w, nb.ne});
  }

  cpu::WorkProfile work() const { return work_profile_of(*inner_); }
  std::size_t input_bytes() const { return input_bytes_of(*inner_); }

 private:
  const P* inner_;
};

/// Mirror adapter: j <-> cols-1-j. Valid only when W is not in the
/// contributing set (W has no image); the mirrored-Inverted-L set {NE}
/// satisfies this. NW and NE swap, N is fixed.
template <LddpProblem P>
class MirroredProblem {
 public:
  using Value = typename P::Value;

  explicit MirroredProblem(const P& inner) : inner_(&inner) {
    LDDP_CHECK_MSG(!inner.deps().has_w(),
                   "mirror adapter cannot represent a W dependency");
  }

  std::size_t rows() const { return inner_->rows(); }
  std::size_t cols() const { return inner_->cols(); }

  ContributingSet deps() const {
    const ContributingSet d = inner_->deps();
    std::uint8_t mask = 0;
    if (d.has_nw()) mask |= static_cast<std::uint8_t>(Dep::kNE);
    if (d.has_ne()) mask |= static_cast<std::uint8_t>(Dep::kNW);
    if (d.has_n()) mask |= static_cast<std::uint8_t>(Dep::kN);
    return ContributingSet(mask);
  }

  Value boundary() const { return inner_->boundary(); }

  Value compute(std::size_t i, std::size_t j,
                const Neighbors<Value>& nb) const {
    return inner_->compute(i, inner_->cols() - 1 - j,
                           Neighbors<Value>{nb.w, nb.ne, nb.n, nb.nw});
  }

  cpu::WorkProfile work() const { return work_profile_of(*inner_); }
  std::size_t input_bytes() const { return input_bytes_of(*inner_); }

 private:
  const P* inner_;
};

/// Undoes a transpose adapter on the result table.
template <typename V>
Grid<V> transpose_grid(const Grid<V>& g) {
  Grid<V> out(g.cols(), g.rows());
  for (std::size_t i = 0; i < g.rows(); ++i)
    for (std::size_t j = 0; j < g.cols(); ++j) out.at(j, i) = g.at(i, j);
  return out;
}

/// Undoes a mirror adapter on the result table.
template <typename V>
Grid<V> mirror_grid(const Grid<V>& g) {
  Grid<V> out(g.rows(), g.cols());
  for (std::size_t i = 0; i < g.rows(); ++i)
    for (std::size_t j = 0; j < g.cols(); ++j)
      out.at(i, g.cols() - 1 - j) = g.at(i, j);
  return out;
}

}  // namespace lddp
