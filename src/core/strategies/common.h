// Shared machinery of all execution strategies: neighbour gathering on host
// and device tables, kernel descriptions, and stats assembly.
#pragma once

#include <algorithm>
#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/contributing_set.h"
#include "core/pattern.h"
#include "core/problem.h"
#include "core/run_config.h"
#include "cpu/calibrate.h"
#include "sim/platform.h"
#include "tables/grid.h"
#include "tables/layout.h"
#include "util/stopwatch.h"

namespace lddp::detail {

/// Cache-amplification of a diagonal-order CPU walk over the row-major
/// host table (anti-diagonal and knight-move fronts): consecutive cells of
/// a front live about one row apart, so cache lines are not reused within
/// the front; partial L2 reuse across adjacent fronts keeps the factor
/// well below the one-line-per-cell worst case.
inline constexpr double kDiagonalCpuAmplification = 4.0;

/// Computes one cell, reading neighbours through `read(i, j)`. `deps` and
/// `bound` are hoisted out of the per-cell loop by the caller (they are
/// loop-invariant, but the compiler cannot always prove that through the
/// problem object).
template <LddpProblem P, typename ReadFn>
inline typename P::Value compute_cell(const P& p, ContributingSet deps,
                                      typename P::Value bound, std::size_t i,
                                      std::size_t j, std::size_t cols,
                                      ReadFn&& read) {
  Neighbors<typename P::Value> nb{bound, bound, bound, bound};
  if (deps.has_w() && j > 0) nb.w = read(i, j - 1);
  if (i > 0) {
    if (deps.has_nw() && j > 0) nb.nw = read(i - 1, j - 1);
    if (deps.has_n()) nb.n = read(i - 1, j);
    if (deps.has_ne() && j + 1 < cols) nb.ne = read(i - 1, j + 1);
  }
  return p.compute(i, j, nb);
}

/// Reader over the host row-major table.
template <typename V>
struct GridReader {
  const Grid<V>* grid;
  V operator()(std::size_t i, std::size_t j) const { return grid->at(i, j); }
};

/// Reader over the device front-major table.
template <typename V, typename Layout>
struct DeviceReader {
  const V* data;
  const Layout* layout;
  V operator()(std::size_t i, std::size_t j) const {
    return data[layout->flat(i, j)];
  }
};

/// Assembles (part of) the row-major result grid from wavefront-major
/// device storage in cache-sized blocks. The naive row-major walk touches
/// one distant cache line of the device array per cell on diagonal-order
/// layouts (~16x memory amplification on large tables) and dominates the
/// wall-clock of large solves once the cell kernels themselves are
/// vectorized; blocking keeps both sides' working set cache-resident.
/// Pure element-wise copy — visit order cannot affect results.
template <typename V, typename Layout>
void unpack_table(const V* src, const Layout& layout, Grid<V>& table,
                  std::size_t j_begin, std::size_t j_end) {
  const std::size_t n = table.rows();
  if constexpr (std::is_same_v<Layout, RowMajorLayout>) {
    const std::size_t m = table.cols();
    for (std::size_t i = 0; i < n; ++i)
      std::copy(src + i * m + j_begin, src + i * m + j_end,
                &table.at(i, j_begin));
    return;
  }
  if constexpr (std::is_same_v<Layout, AntiDiagonalLayout>) {
    // flat(i, j) = front_offset(i+j) - i_min(i+j) + i. Hoisting the
    // per-diagonal part turns the inner loop into one lookup plus an add;
    // the generic blocked path recomputes it per cell, which at large
    // sizes costs more than the kernels themselves.
    const std::size_t nf = layout.num_fronts();
    std::vector<std::ptrdiff_t> base(nf);
    for (std::size_t d = 0; d < nf; ++d)
      base[d] = static_cast<std::ptrdiff_t>(layout.front_offset(d)) -
                static_cast<std::ptrdiff_t>(layout.i_min(d));
    // Blocked walk: a 64-wide j-block touches 64+64 diagonals whose active
    // cache lines stay resident across the block's rows (adjacent i reads
    // adjacent positions of the same diagonal).
    constexpr std::size_t kAdBlock = 64;
    for (std::size_t i0 = 0; i0 < n; i0 += kAdBlock) {
      const std::size_t i1 = std::min(n, i0 + kAdBlock);
      for (std::size_t j0 = j_begin; j0 < j_end; j0 += kAdBlock) {
        const std::size_t j1 = std::min(j_end, j0 + kAdBlock);
        for (std::size_t i = i0; i < i1; ++i) {
          V* dst = &table.at(i, j0);
          const std::ptrdiff_t* b = base.data() + i + j0;
          const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(i);
          for (std::size_t j = j0; j < j1; ++j)
            *dst++ = src[*b++ + off];
        }
      }
    }
    return;
  }
  constexpr std::size_t kBlock = 64;
  for (std::size_t i0 = 0; i0 < n; i0 += kBlock) {
    const std::size_t i1 = std::min(n, i0 + kBlock);
    for (std::size_t j0 = j_begin; j0 < j_end; j0 += kBlock) {
      const std::size_t j1 = std::min(j_end, j0 + kBlock);
      for (std::size_t i = i0; i < i1; ++i)
        for (std::size_t j = j0; j < j1; ++j)
          table.at(i, j) = src[layout.flat(i, j)];
    }
  }
}

/// Work profile for the CPU pricing of this solve: when the run takes the
/// batch-front path, the calibrated vector-throughput term is applied so
/// model-driven decisions (parallel-vs-serial gating, t_switch/t_share
/// defaults, tuner sweeps) see the real CPU speed.
template <LddpProblem P>
cpu::WorkProfile cpu_work_for(const P& p, bool use_batch) {
  cpu::WorkProfile w = work_profile_of(p);
  if (use_batch) w.vector_speedup = cpu::calibrated_vector_speedup();
  return w;
}

/// Kernel description for a problem's f on a wavefront-contiguous layout
/// (mem_amplification 1.0 — that is the point of the layout).
template <LddpProblem P>
sim::KernelInfo kernel_info_for(const P& p, const char* name) {
  sim::KernelInfo info;
  info.name = name;
  info.work = work_profile_of(p);
  info.mem_amplification = 1.0;
  return info;
}

/// Fills mode-independent stats fields after a run.
inline void finish_stats(SolveStats& stats, sim::Platform& platform,
                         double real_seconds) {
  stats.sim_seconds = platform.elapsed();
  stats.real_seconds = real_seconds;
  stats.cpu_busy_seconds = platform.cpu_busy();
  stats.gpu_busy_seconds = platform.gpu().compute_busy();
  stats.copy_busy_seconds = platform.gpu().copy_busy();
  const sim::MemoryStats& mem = platform.gpu().stats();
  stats.h2d_bytes = mem.h2d_bytes;
  stats.d2h_bytes = mem.d2h_bytes;
  stats.h2d_copies = mem.h2d_copies;
  stats.d2h_copies = mem.d2h_copies;
}

}  // namespace lddp::detail
