// Shared machinery of all execution strategies: neighbour gathering on host
// and device tables, kernel descriptions, and stats assembly.
#pragma once

#include <cstddef>
#include <utility>

#include "core/contributing_set.h"
#include "core/pattern.h"
#include "core/problem.h"
#include "core/run_config.h"
#include "sim/platform.h"
#include "tables/grid.h"
#include "tables/layout.h"
#include "util/stopwatch.h"

namespace lddp::detail {

/// Cache-amplification of a diagonal-order CPU walk over the row-major
/// host table (anti-diagonal and knight-move fronts): consecutive cells of
/// a front live about one row apart, so cache lines are not reused within
/// the front; partial L2 reuse across adjacent fronts keeps the factor
/// well below the one-line-per-cell worst case.
inline constexpr double kDiagonalCpuAmplification = 4.0;

/// Computes one cell, reading neighbours through `read(i, j)`. `deps` and
/// `bound` are hoisted out of the per-cell loop by the caller (they are
/// loop-invariant, but the compiler cannot always prove that through the
/// problem object).
template <LddpProblem P, typename ReadFn>
inline typename P::Value compute_cell(const P& p, ContributingSet deps,
                                      typename P::Value bound, std::size_t i,
                                      std::size_t j, std::size_t cols,
                                      ReadFn&& read) {
  Neighbors<typename P::Value> nb{bound, bound, bound, bound};
  if (deps.has_w() && j > 0) nb.w = read(i, j - 1);
  if (i > 0) {
    if (deps.has_nw() && j > 0) nb.nw = read(i - 1, j - 1);
    if (deps.has_n()) nb.n = read(i - 1, j);
    if (deps.has_ne() && j + 1 < cols) nb.ne = read(i - 1, j + 1);
  }
  return p.compute(i, j, nb);
}

/// Reader over the host row-major table.
template <typename V>
struct GridReader {
  const Grid<V>* grid;
  V operator()(std::size_t i, std::size_t j) const { return grid->at(i, j); }
};

/// Reader over the device front-major table.
template <typename V, typename Layout>
struct DeviceReader {
  const V* data;
  const Layout* layout;
  V operator()(std::size_t i, std::size_t j) const {
    return data[layout->flat(i, j)];
  }
};

/// Kernel description for a problem's f on a wavefront-contiguous layout
/// (mem_amplification 1.0 — that is the point of the layout).
template <LddpProblem P>
sim::KernelInfo kernel_info_for(const P& p, const char* name) {
  sim::KernelInfo info;
  info.name = name;
  info.work = work_profile_of(p);
  info.mem_amplification = 1.0;
  return info;
}

/// Fills mode-independent stats fields after a run.
inline void finish_stats(SolveStats& stats, sim::Platform& platform,
                         double real_seconds) {
  stats.sim_seconds = platform.elapsed();
  stats.real_seconds = real_seconds;
  stats.cpu_busy_seconds = platform.cpu_busy();
  stats.gpu_busy_seconds = platform.gpu().compute_busy();
  stats.copy_busy_seconds = platform.gpu().copy_busy();
  const sim::MemoryStats& mem = platform.gpu().stats();
  stats.h2d_bytes = mem.h2d_bytes;
  stats.d2h_bytes = mem.d2h_bytes;
  stats.h2d_copies = mem.h2d_copies;
  stats.d2h_copies = mem.d2h_copies;
}

}  // namespace lddp::detail
