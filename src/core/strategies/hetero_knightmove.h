// Heterogeneous execution of the knight-move pattern (Section III-D,
// Figure 6) — the scheme of Deshpande et al. for error-diffusion dithering.
//
// Three phases like the anti-diagonal, but the fronts are the 2i+j lines
// and the split is a column strip (CPU owns j < t_share). Both boundary
// columns cross the strip every front:
//   * the GPU's first column j = t_share reads W (front t-1) and NW
//     (front t-3) from the CPU's column t_share-1;
//   * the CPU's last column j = t_share-1 reads NE (front t-1) from the
//     GPU's column t_share.
// Two-way traffic every iteration -> zero-copy mapped pinned boundary
// cells (Section IV-C2): no copy-engine operations, direct cross-unit
// dependencies, and a small mapped-access surcharge on both units.
#pragma once

#include "core/front_runner.h"
#include "core/strategies/common.h"
#include "core/strategies/heuristics.h"
#include "sim/launch_graph.h"

namespace lddp {

template <LddpProblem P>
Grid<typename P::Value> solve_hetero_knightmove(const P& p,
                                                sim::Platform& platform,
                                                const HeteroParams& user,
                                                SolveStats* stats,
                                                bool fused = true,
                                                bool batch = true) {
  using V = typename P::Value;
  Stopwatch wall;
  const std::size_t n = p.rows(), m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  const KnightMoveLayout layout(n, m);
  const bool use_batch = detail::use_batch_front(p, layout, deps, batch);
  const cpu::WorkProfile work = detail::cpu_work_for(p, use_batch);
  const std::size_t num_fronts = layout.num_fronts();

  sim::Device& gpu = platform.gpu();
  sim::KernelInfo info = detail::kernel_info_for(p, "hetero.km");
  const HeteroParams params = detail::resolve_hetero_params(
      user, Pattern::kKnightMove, n, m, platform.spec(), info,
      detail::kDiagonalCpuAmplification,
      static_cast<double>(input_bytes_of(p)), /*two_way=*/true,
      // The graph only engages when the strip is unsplit (two-way mapped
      // traffic forces eager submission), and whether the default split is
      // trivial is not known until the params are resolved — price the
      // defaults for the common, eager case.
      /*fused=*/false);
  const std::size_t ts = static_cast<std::size_t>(params.t_switch);
  const std::size_t s = static_cast<std::size_t>(params.t_share);
  const std::size_t phase2_begin = ts;
  const std::size_t phase2_end = num_fronts - ts;
  const bool split = s > 0 && s < m;
  // Zero-copy mapped pinned boundary: only the GPU pays the PCIe reach;
  // the CPU touches the same pinned pages at ordinary memory cost.
  const double cpu_extra_seconds = 0.0;
  if (split) info.extra_us = platform.spec().gpu.mapped_access_overhead_us;

  Grid<V> table(n, m);
  sim::DeviceBuffer<V> dtable = gpu.template alloc<V>(layout.size());
  detail::GridReader<V> hread{&table};
  detail::DeviceReader<V, KnightMoveLayout> dread{dtable.device_ptr(),
                                                  &layout};

  const auto compute_stream = gpu.default_stream();
  const auto h2d_stream = gpu.create_stream();
  const auto d2h_stream = gpu.create_stream();
  // A split strip means two-way mapped traffic every front (the CPU reads
  // the GPU's previous front mid-phase) — a graph cannot span those host
  // syncs, so fusing only applies to the unsplit (single-unit) case.
  sim::LaunchGraph graph(gpu, fused && !split);
  cpu::StripSession strips(platform.pool());
  // Only the GPU strip's share of the problem input goes up (the CPU reads
  // its columns from host memory directly).
  graph.record_h2d(compute_stream,
                 static_cast<std::size_t>(
                     static_cast<double>(input_bytes_of(p)) *
                     static_cast<double>(m - std::min(s, m)) /
                     static_cast<double>(m)),
                 sim::MemoryKind::kPageable);

  // CPU-owned prefix of front t: cells with j < s. The enumeration is by
  // j ascending (i descending from i_max), so these are positions
  // [0, i_max - i_lo + 1) where i_lo is the first row with j < s.
  auto cpu_len = [&](std::size_t t) -> std::size_t {
    if (s == 0) return 0;
    const std::size_t i_min = layout.i_min(t), i_max = layout.i_max(t);
    if (t < s) return layout.front_size(t);  // whole front left of strip
    // j = t - 2i < s  <=>  i > (t - s) / 2  <=>  i >= floor((t-s)/2) + 1.
    const std::size_t i_lo = std::max(i_min, (t - s) / 2 + 1);
    return i_lo > i_max ? 0 : i_max - i_lo + 1;
  };

  auto run_cpu = [&](std::size_t t, std::size_t count, sim::OpId dep,
                     double extra) {
    sim::Platform::CpuFrontOpts opts;
    opts.streamed = true;
    opts.mem_amplification = detail::kDiagonalCpuAmplification;
    opts.parallel = cpu::parallel_beats_serial(
        platform.spec().cpu, work, count, opts.mem_amplification, true);
    opts.extra_seconds = extra;
    opts.dep1 = dep;
    if (use_batch) {
      return platform.cpu_front(
          count, work,
          [&, t](std::size_t lo, std::size_t hi) {
            detail::run_front_range(
                p, deps, bound, layout, t, lo, hi,
                [&table](std::size_t i, std::size_t j) {
                  return &table.at(i, j);
                },
                /*batch=*/true);
          },
          opts);
    }
    return platform.cpu_front(
        count, work,
        [&, t](std::size_t c) {
          const CellIndex cell = layout.cell(t, c);
          table.at(cell.i, cell.j) =
              detail::compute_cell(p, deps, bound, cell.i, cell.j, m, hread);
        },
        opts);
  };

  sim::OpId last_cpu = sim::kNoOp, last_gpu = sim::kNoOp;

  // ---- Phase 1 ----------------------------------------------------------
  for (std::size_t t = 0; t < phase2_begin; ++t)
    last_cpu = run_cpu(t, layout.front_size(t), sim::kNoOp, 0.0);

  // Phase-2 entry: the GPU reads columns >= s-1 of the three preceding
  // fronts (W and NE from t-1, N from t-2, NW from t-3), all CPU-computed.
  sim::OpId entry_h2d = sim::kNoOp;
  if (phase2_begin < phase2_end && phase2_begin > 0) {
    const std::size_t lo_col = s == 0 ? 0 : s - 1;
    std::size_t bytes = 0;
    for (std::size_t back = 1; back <= 3 && back <= phase2_begin; ++back) {
      const std::size_t t = phase2_begin - back;
      const std::size_t base = layout.front_offset(t);
      for (std::size_t c = 0; c < layout.front_size(t); ++c) {
        const CellIndex cell = layout.cell(t, c);
        if (cell.j < lo_col) continue;
        dtable.device_ptr()[base + c] = table.at(cell.i, cell.j);
        bytes += sizeof(V);
      }
    }
    entry_h2d = graph.record_h2d(h2d_stream, bytes,
                                 sim::MemoryKind::kPageable, last_cpu);
  }

  // ---- Phase 2 ----------------------------------------------------------
  // The GPU front t depends on the CPU fronts t-1 and t-3 (mapped reads of
  // column s-1) — the CPU resource is FIFO, so depending on the newest CPU
  // op from fronts < t covers both. The CPU front t depends on the GPU
  // front t-1 (mapped read of column s). The mapped boundary cells are
  // mirrored eagerly after each producer completes.
  sim::OpId gpu_m1 = sim::kNoOp;
  for (std::size_t t = phase2_begin; t < phase2_end; ++t) {
    const std::size_t fs = layout.front_size(t);
    const std::size_t c = std::min(cpu_len(t), fs);
    const sim::OpId cpu_prev = last_cpu;  // newest CPU op from fronts < t

    sim::OpId cpu_op = sim::kNoOp;
    if (c > 0) {
      if (split && t >= 1) {
        // Mirror the GPU's boundary cell (i, s) of front t-1 into the host
        // table before the CPU reads it as NE.
        const std::size_t tt = t - 1;
        if (tt >= s && (tt - s) % 2 == 0) {
          const std::size_t i = (tt - s) / 2;
          if (i < n) table.at(i, s) = dtable.device_ptr()[layout.flat(i, s)];
        }
      }
      cpu_op = run_cpu(t, c, gpu_m1, cpu_extra_seconds);
      last_cpu = cpu_op;
    }

    if (c < fs) {
      if (split) {
        // Mirror the CPU's boundary cells (i, s-1) of fronts t-1 and t-3
        // into the device table before the GPU reads them as W / NW.
        for (std::size_t back = 1; back <= 3; back += 2) {
          if (t < back) continue;
          const std::size_t tt = t - back;
          if (tt >= s - 1 && (tt - (s - 1)) % 2 == 0) {
            const std::size_t i = (tt - (s - 1)) / 2;
            if (i < n)
              dtable.device_ptr()[layout.flat(i, s - 1)] =
                  table.at(i, s - 1);
          }
        }
      }
      const std::size_t base = layout.front_offset(t);
      V* out = dtable.device_ptr();
      graph.stream_wait(compute_stream, entry_h2d);
      if (use_batch) {
        last_gpu = graph.launch(
            compute_stream, info, fs - c,
            [&, t, c, out](std::size_t lo, std::size_t hi) {
              detail::run_front_range(
                  p, deps, bound, layout, t, c + lo, c + hi,
                  [out, &layout](std::size_t i, std::size_t j) {
                    return out + layout.flat(i, j);
                  },
                  /*batch=*/true);
            },
            cpu_prev);
      } else {
        last_gpu = graph.launch(
            compute_stream, info, fs - c,
            [&, t, c, base, out](std::size_t k) {
              const CellIndex cell = layout.cell(t, c + k);
              out[base + c + k] = detail::compute_cell(p, deps, bound, cell.i,
                                                       cell.j, m, dread);
            },
            cpu_prev);
      }
      entry_h2d = sim::kNoOp;  // only the first kernel waits on the bulk
    }

    gpu_m1 = last_gpu;
  }

  // Phase 2 is over: submit the fused pipeline before the downloads below
  // need a real GPU op id.
  graph.replay();
  last_gpu = graph.resolve(last_gpu);

  // Phase-3 entry: the CPU reads columns >= s of the three preceding
  // fronts' GPU parts.
  sim::OpId entry_d2h = sim::kNoOp;
  if (phase2_end < num_fronts && phase2_end >= 1) {
    std::size_t bytes = 0;
    for (std::size_t back = 1; back <= 3 && back <= phase2_end; ++back) {
      const std::size_t t = phase2_end - back;
      if (t < phase2_begin) break;
      const std::size_t base = layout.front_offset(t);
      for (std::size_t c = std::min(cpu_len(t), layout.front_size(t));
           c < layout.front_size(t); ++c) {
        const CellIndex cell = layout.cell(t, c);
        table.at(cell.i, cell.j) = dtable.device_ptr()[base + c];
        bytes += sizeof(V);
      }
    }
    entry_d2h = gpu.record_d2h(d2h_stream, bytes, sim::MemoryKind::kPageable,
                               last_gpu);
  }

  // ---- Phase 3 ----------------------------------------------------------
  for (std::size_t t = phase2_end; t < num_fronts; ++t) {
    last_cpu = run_cpu(t, layout.front_size(t), entry_d2h, 0.0);
    entry_d2h = sim::kNoOp;
  }

  // Final download of the GPU-owned region.
  {
    std::size_t bytes = 0;
    for (std::size_t t = phase2_begin; t < phase2_end; ++t) {
      const std::size_t base = layout.front_offset(t);
      for (std::size_t c = std::min(cpu_len(t), layout.front_size(t));
           c < layout.front_size(t); ++c) {
        const CellIndex cell = layout.cell(t, c);
        table.at(cell.i, cell.j) = dtable.device_ptr()[base + c];
        bytes += sizeof(V);
      }
    }
    const sim::OpId fin =
        gpu.record_d2h(d2h_stream, std::min(bytes, result_bytes_of(p)),
                       sim::MemoryKind::kPageable, last_gpu);
    platform.cpu_sync(fin, last_cpu);
  }

  if (stats) {
    stats->mode_used = Mode::kHeterogeneous;
    stats->pattern = Pattern::kKnightMove;
    stats->transfer = transfer_need(deps);
    stats->fronts = num_fronts;
    stats->cells = n * m;
    stats->t_switch = params.t_switch;
    stats->t_share = params.t_share;
    detail::finish_stats(*stats, platform, wall.seconds());
  }
  return table;
}

}  // namespace lddp
