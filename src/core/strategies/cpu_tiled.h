// Tiled multicore execution — the paper's other CPU mapping ("each thread
// is responsible for processing a group of cells (one or more
// blocks/sub-blocks)", Section IV-A), in the cache-efficient tiling style
// of Chowdhury & Ramachandran that the related work surveys.
//
// The table is partitioned into tile x tile blocks. Because every cell
// dependency points up or left (this strategy requires NE-free
// contributing sets; NE-bearing problems would need skewed tiles), the
// *tile-level* dependency structure is always within {W, NW, N}, so tiles
// can be scheduled by anti-diagonal tile wavefronts regardless of the
// cell-level pattern. Each tile is swept serially in row-major order —
// cache-resident, amplification-free — and tiles of one tile-front run
// block-per-thread.
//
// Compared to the per-cell wavefront baseline this amortizes the per-front
// synchronization over tile-sized chunks and removes the diagonal-walk
// cache penalty; bench_ablation_tiling quantifies both effects.
#pragma once

#include "core/strategies/common.h"

namespace lddp {

/// True if the tiled CPU strategy supports this contributing set.
inline bool cpu_tiled_supports(ContributingSet deps) {
  return !deps.has_ne();
}

template <LddpProblem P>
Grid<typename P::Value> solve_cpu_tiled(const P& p, sim::Platform& platform,
                                        std::size_t tile, SolveStats* stats) {
  using V = typename P::Value;
  LDDP_CHECK_MSG(tile >= 1, "tile size must be positive");
  LDDP_CHECK_MSG(cpu_tiled_supports(p.deps()),
                 "tiled CPU execution requires an NE-free contributing set "
                 "(got " << p.deps().to_string() << ")");
  Stopwatch wall;
  const std::size_t n = p.rows(), m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  const cpu::WorkProfile work = work_profile_of(p);

  const std::size_t tn = (n + tile - 1) / tile;
  const std::size_t tm = (m + tile - 1) / tile;
  const AntiDiagonalLayout tiles(tn, tm);

  Grid<V> table(n, m);
  detail::GridReader<V> read{&table};
  for (std::size_t f = 0; f < tiles.num_fronts(); ++f) {
    platform.cpu_tiled_front(
        tiles.front_size(f), tile * tile, work, [&, f](std::size_t t) {
          const CellIndex tc = tiles.cell(f, t);
          const std::size_t i_end = std::min(n, (tc.i + 1) * tile);
          const std::size_t j_end = std::min(m, (tc.j + 1) * tile);
          for (std::size_t i = tc.i * tile; i < i_end; ++i)
            for (std::size_t j = tc.j * tile; j < j_end; ++j)
              table.at(i, j) =
                  detail::compute_cell(p, deps, bound, i, j, m, read);
        });
  }

  if (stats) {
    stats->mode_used = Mode::kCpuTiled;
    stats->pattern = classify(deps);
    stats->transfer = TransferNeed::kNone;
    stats->fronts = tiles.num_fronts();
    stats->cells = n * m;
    detail::finish_stats(*stats, platform, wall.seconds());
  }
  return table;
}

}  // namespace lddp
