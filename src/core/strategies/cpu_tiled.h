// Tiled multicore execution — the paper's other CPU mapping ("each thread
// is responsible for processing a group of cells (one or more
// blocks/sub-blocks)", Section IV-A), in the cache-efficient tiling style
// of Chowdhury & Ramachandran that the related work surveys.
//
// Partitioning is delegated to the TileScheduler: rectangular tile x tile
// blocks for NE-free contributing sets, skewed parallelogram tiles when NE
// is present. Either way the tile-level dependency structure reduces to
// {W, NW, N}, so tiles run in anti-diagonal tile wavefronts for *every*
// one of the 15 contributing sets — the historical NE restriction of this
// strategy is gone. Each tile is swept serially in row-major order —
// cache-resident, amplification-free — and tiles of one tile-front run
// block-per-thread.
//
// Compared to the per-cell wavefront baseline this amortizes the per-front
// synchronization over tile-sized chunks and removes the diagonal-walk
// cache penalty; bench_ablation_tiling quantifies both effects.
#pragma once

#include "core/front_runner.h"
#include "core/strategies/common.h"
#include "core/tile_scheduler.h"

namespace lddp {

/// True if the tiled CPU strategy supports this contributing set. Always
/// true since the skewed-tile scheduler landed; kept for API compatibility.
inline bool cpu_tiled_supports(ContributingSet) { return true; }

template <LddpProblem P>
Grid<typename P::Value> solve_cpu_tiled(const P& p, sim::Platform& platform,
                                        std::size_t tile, SolveStats* stats,
                                        bool batch = true) {
  using V = typename P::Value;
  LDDP_CHECK_MSG(tile >= 1, "tile size must be positive");
  Stopwatch wall;
  const std::size_t n = p.rows(), m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  const bool use_batch = detail::use_batch_rows(p, deps, batch);
  const cpu::WorkProfile work = detail::cpu_work_for(p, use_batch);
  const TileScheduler sched(n, m, tile, deps);

  Grid<V> table(n, m);
  V* const data = table.data();
  for (std::size_t g = 0; g < sched.num_fronts(); ++g) {
    platform.cpu_tiled_front(
        sched.front_tiles(g), tile * tile, work, [&, g](std::size_t k) {
          const TileScheduler::TileCoord t = sched.front_tile(g, k);
          for (std::size_t i = sched.row_begin(t.tu); i < sched.row_end(t.tu);
               ++i) {
            const TileScheduler::RowSpan sp = sched.row_span(t.tv, i);
            if (sp.size() == 0) continue;
            const V* prev = i > 0 ? data + (i - 1) * m : nullptr;
            detail::run_row(p, deps, bound, i, sp.j_begin, sp.j_end, m, prev,
                            data + i * m, batch);
          }
        });
  }

  if (stats) {
    stats->mode_used = Mode::kCpuTiled;
    stats->pattern = classify(deps);
    stats->transfer = TransferNeed::kNone;
    stats->fronts = sched.num_fronts();
    stats->cells = n * m;
    detail::finish_stats(*stats, platform, wall.seconds());
  }
  return table;
}

}  // namespace lddp
