// Model-based defaults for t_switch and t_share (Section V-A).
//
// The paper finds both parameters empirically (the concave sweeps of
// Fig 7); core/tuner.h reproduces that procedure. These heuristics provide
// the starting point the framework uses when the user does not supply
// values: t_switch from the CPU/GPU front-cost crossover, t_share from
// balancing the two units' per-front completion times.
#pragma once

#include <cstddef>

#include "core/contributing_set.h"
#include "core/pattern.h"
#include "core/run_config.h"
#include "core/tile_scheduler.h"
#include "sim/kernel.h"

namespace lddp::detail {

/// Smallest front size (cells) at which the simulated GPU front cost
/// (launch + execution + one pinned boundary transfer) drops below the best
/// CPU front cost (serial, or streamed-parallel with the pattern's cache
/// amplification). Fronts below this size belong to the "low work region".
/// With `fused` the per-front submission cost is graph_node_issue_us
/// instead of a full launch_overhead_us, which moves the crossover left.
std::size_t gpu_crossover_front_cells(const sim::PlatformSpec& platform,
                                      const sim::KernelInfo& kernel,
                                      std::size_t max_front,
                                      double cpu_mem_amplification = 1.0,
                                      bool fused = false);

/// Cells per front the CPU should own in the high-work region: minimizes
/// the per-front critical path max(cpu_strip, gpu_kernel) over candidate
/// splits, evaluated with the real cost models (so kernel latency floors
/// are respected). The objective also credits the CPU share with its
/// amortized input-upload saving (`input_bytes_per_front` of pageable
/// traffic scales with the GPU's share) and charges `mapped_us_when_split`
/// to the GPU side whenever the split is non-trivial (two-way patterns).
long long balanced_t_share(const sim::PlatformSpec& platform,
                           const sim::KernelInfo& kernel,
                           std::size_t front_cells,
                           double cpu_mem_amplification = 1.0,
                           double input_bytes_per_front = 0.0,
                           double mapped_us_when_split = 0.0,
                           bool fused = false);

/// Valid parameter ranges for a canonical pattern on an rows x cols table:
/// t_switch in [0, switch_max], t_share in [0, share_max].
void hetero_param_ranges(Pattern canon, std::size_t rows, std::size_t cols,
                         long long* switch_max, long long* share_max);

/// Fills any negative HeteroParams fields with model-based defaults for the
/// given canonical pattern and table shape, and clamps both parameters to
/// their valid ranges.
HeteroParams resolve_hetero_params(HeteroParams user, Pattern canon,
                                   std::size_t rows, std::size_t cols,
                                   const sim::PlatformSpec& platform,
                                   const sim::KernelInfo& kernel,
                                   double cpu_mem_amplification = 1.0,
                                   double input_bytes = 0.0,
                                   bool two_way = false,
                                   bool fused = false);

/// Tile-granular heterogeneous split, in *tile* units (the public
/// HeteroParams stay in cell units; the tiled solver converts).
struct TiledSplit {
  std::size_t t_switch_fronts = 0;  ///< tile fronts at each end run CPU-only
  std::size_t t_share_tiles = 0;    ///< CPU-owned tile rows in phase 2
};

/// Tiled counterpart of resolve_hetero_params: negative user fields get
/// model-based defaults (tile-front cost crossover for t_switch, per-front
/// balance of cpu_tiled_front_seconds vs the tiled kernel for t_share);
/// non-negative fields are cell values converted to tile units. Both are
/// clamped to the scheduler's geometry.
TiledSplit resolve_tiled_split(const HeteroParams& user,
                               const TileScheduler& sched,
                               const sim::PlatformSpec& platform,
                               const sim::KernelInfo& kernel,
                               std::size_t value_bytes, double input_bytes,
                               bool fused);

/// Model-chosen tile side for `RunConfig::tile = -1` (auto): argmin of the
/// modeled tiled-GPU makespan (per-front submission + tiled kernel model)
/// over power-of-two candidates.
std::size_t default_tile(const sim::PlatformSpec& platform,
                         const sim::KernelInfo& kernel, std::size_t rows,
                         std::size_t cols, std::size_t value_bytes,
                         ContributingSet deps, bool fused);

/// Model default for the frontier checkpoint interval K
/// (RunConfig::checkpoint_interval = 0). Resident checkpoint memory is
/// ~rows/K rows and a traceback's band scratch is ~K rows, so the
/// balanced high-water footprint rows^2/K + K*cols is minimized near
/// K = sqrt(rows) for square tables; remat compute is K-independent
/// (every band level is rematerialized at most once). Clamped to
/// [4, 512]: below 4 the checkpoint store traffic approaches the full
/// table again, above 512 a band no longer fits in L2-sized scratch.
std::size_t default_checkpoint_interval(std::size_t rows);

}  // namespace lddp::detail
