// Pure simulated-GPU execution: one kernel per wavefront, thread per cell
// (Section IV-A), table stored in the pattern's wavefront-contiguous layout
// so accesses coalesce (Section IV-B).
//
// Cost structure mirrors a real CUDA implementation: one upload of the
// problem inputs, one kernel launch per front (launch overhead dominates
// low-work fronts — the effect the heterogeneous strategies exploit), and
// one download of the finished table.
#pragma once

#include "core/front_runner.h"
#include "core/strategies/common.h"
#include "sim/launch_graph.h"
#include "sim/memory.h"

namespace lddp {

template <LddpProblem P, typename Layout>
Grid<typename P::Value> solve_gpu(const P& p, const Layout& layout,
                                  sim::Platform& platform, SolveStats* stats,
                                  bool fused = true, bool batch = true) {
  using V = typename P::Value;
  Stopwatch wall;
  const std::size_t n = p.rows(), m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  sim::Device& gpu = platform.gpu();
  const auto stream = gpu.default_stream();

  // Every cell of every front is computed before any neighbour read, so
  // the device table can skip its zero-fill.
  sim::DeviceBuffer<V> dtable =
      gpu.template alloc<V>(layout.size(), /*zeroed=*/false);
  detail::DeviceReader<V, Layout> read{dtable.device_ptr(), &layout};
  const sim::KernelInfo info = detail::kernel_info_for(p, "gpu.front");

  // The whole compute phase — input upload plus every per-front kernel —
  // is one graph submission; nothing on the host consumes GPU data before
  // the final download, so the entire loop can fuse.
  sim::LaunchGraph graph(gpu, fused);

  // Inputs (sequences / cost grid / image) go up once, pageable.
  graph.record_h2d(stream, input_bytes_of(p), sim::MemoryKind::kPageable);

  const bool use_batch = detail::use_batch_front(p, layout, deps, batch);
  for (std::size_t f = 0; f < layout.num_fronts(); ++f) {
    const std::size_t base = layout.front_offset(f);
    V* out = dtable.device_ptr();
    if (use_batch) {
      // Ranged body: the batch runner packs each chunk's interior into
      // dense spans for compute_front. Same cells, same kernel pricing.
      graph.launch(stream, info, layout.front_size(f),
                   [&, out](std::size_t lo, std::size_t hi) {
                     detail::run_front_range(
                         p, deps, bound, layout, f, lo, hi,
                         [out, &layout](std::size_t i, std::size_t j) {
                           return out + layout.flat(i, j);
                         },
                         /*batch=*/true);
                   });
    } else {
      graph.launch(stream, info, layout.front_size(f),
                   [&, base, out](std::size_t c) {
        const CellIndex cell = layout.cell(f, c);
        out[base + c] =
            detail::compute_cell(p, deps, bound, cell.i, cell.j, m, read);
      });
    }
  }
  graph.replay();

  // Assemble the full host-side table for the caller; the priced download
  // is what a production consumer would fetch (result_bytes_of). The unpack
  // writes every cell, so the grid can skip its zero-fill.
  Grid<V> table = Grid<V>::uninitialized(n, m);
  detail::unpack_table(dtable.device_ptr(), layout, table, 0, m);
  const sim::OpId done = gpu.record_d2h(stream, result_bytes_of(p),
                                        sim::MemoryKind::kPageable);
  platform.cpu_sync(done);

  if (stats) {
    stats->mode_used = Mode::kGpu;
    stats->pattern = classify(deps);
    stats->transfer = TransferNeed::kNone;
    stats->fronts = layout.num_fronts();
    stats->cells = n * m;
    detail::finish_stats(*stats, platform, wall.seconds());
  }
  return table;
}

}  // namespace lddp
