// Inverted-L pattern executions (Section III-C, Figure 5).
//
// The paper's framework stores the inverted-L table in row-major order (it
// is Section V-B's observation that no coalescing-friendly layout is used
// for this pattern that makes horizontal case-1 the better alternative).
// We reproduce that: shells are *enumerated* via ShellLayout, but the
// device table is stored row-major, so each shell's column part is strided
// — amplified memory traffic on the GPU (one 128 B transaction per lane)
// and one cache line per element on the CPU. The shell-major storage that
// removes the GPU penalty is available through the generic solve_gpu and
// is measured by the coalescing ablation bench.
//
// Heterogeneous scheme (two phases): the CPU owns the left column-strip
// j < t_share; transfers are one-way CPU->GPU (the single NW dependency
// crosses the strip only leftward). The last t_switch shells — the
// low-work tail — run entirely on the CPU.
#pragma once

#include "core/front_runner.h"
#include "core/strategies/common.h"
#include "core/strategies/heuristics.h"
#include "sim/coalescing.h"
#include "sim/launch_graph.h"

namespace lddp {

namespace detail {

/// Memory amplification of a strided column walk on the GPU (one warp
/// transaction per lane instead of one per warp).
template <typename V>
double invl_gpu_column_amplification(const sim::GpuSpec& gpu,
                                     std::size_t cols) {
  return sim::coalescing_amplification(sizeof(V), cols, gpu.warp_size,
                                       static_cast<std::size_t>(
                                           gpu.transaction_bytes));
}

/// Memory amplification of a strided column walk on the CPU (one 64 B
/// cache line per element).
template <typename V>
double invl_cpu_column_amplification() {
  return std::max(1.0, 64.0 / static_cast<double>(sizeof(V)));
}

/// Weighted amplification for a segment of `col_cells` strided and
/// `row_cells` contiguous accesses.
inline double mixed_amplification(std::size_t col_cells,
                                  std::size_t row_cells, double col_amp) {
  const std::size_t total = col_cells + row_cells;
  if (total == 0) return 1.0;
  return (static_cast<double>(col_cells) * col_amp +
          static_cast<double>(row_cells)) /
         static_cast<double>(total);
}

}  // namespace detail

/// Pure multicore execution of the inverted-L pattern with the per-shell
/// cache-amplification the row-major walk incurs (used by Fig 8).
template <LddpProblem P>
Grid<typename P::Value> solve_cpu_invertedl(const P& p,
                                            sim::Platform& platform,
                                            SolveStats* stats,
                                            bool batch = true) {
  using V = typename P::Value;
  Stopwatch wall;
  const std::size_t n = p.rows(), m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  const ShellLayout layout(n, m);
  const bool use_batch = detail::use_batch_front(p, layout, deps, batch);
  const cpu::WorkProfile work = detail::cpu_work_for(p, use_batch);
  const double col_amp = detail::invl_cpu_column_amplification<V>();

  Grid<V> table(n, m);
  detail::GridReader<V> read{&table};
  auto haddr = [&table](std::size_t i, std::size_t j) {
    return &table.at(i, j);
  };
  cpu::StripSession strips(platform.pool());
  for (std::size_t k = 0; k < layout.num_fronts(); ++k) {
    const std::size_t fs = layout.front_size(k);
    const std::size_t col_n = layout.column_part_size(k);
    sim::Platform::CpuFrontOpts opts;
    opts.mem_amplification =
        detail::mixed_amplification(col_n, fs - col_n, col_amp);
    opts.parallel = cpu::parallel_beats_serial(platform.spec().cpu, work, fs,
                                               opts.mem_amplification);
    if (use_batch) {
      platform.cpu_front(
          fs, work,
          [&, k](std::size_t lo, std::size_t hi) {
            detail::run_front_range(p, deps, bound, layout, k, lo, hi, haddr,
                                    /*batch=*/true);
          },
          opts);
    } else {
      platform.cpu_front(
          fs, work,
          [&, k](std::size_t c) {
            const CellIndex cell = layout.cell(k, c);
            table.at(cell.i, cell.j) =
                detail::compute_cell(p, deps, bound, cell.i, cell.j, m, read);
          },
          opts);
    }
  }
  if (stats) {
    stats->mode_used = Mode::kCpuParallel;
    stats->pattern = Pattern::kInvertedL;
    stats->transfer = TransferNeed::kNone;
    stats->fronts = layout.num_fronts();
    stats->cells = n * m;
    detail::finish_stats(*stats, platform, wall.seconds());
  }
  return table;
}

/// Pure GPU execution of the inverted-L pattern on row-major storage (the
/// paper's framework behaviour): the shell's column part is uncoalesced.
template <LddpProblem P>
Grid<typename P::Value> solve_gpu_invertedl(const P& p,
                                            sim::Platform& platform,
                                            SolveStats* stats,
                                            bool fused = true,
                                            bool batch = true) {
  using V = typename P::Value;
  Stopwatch wall;
  const std::size_t n = p.rows(), m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  const ShellLayout layout(n, m);
  const RowMajorLayout storage(n, m);
  const bool use_batch = detail::use_batch_front(p, layout, deps, batch);
  sim::Device& gpu = platform.gpu();
  const double col_amp =
      detail::invl_gpu_column_amplification<V>(gpu.spec(), m);

  sim::DeviceBuffer<V> dtable = gpu.template alloc<V>(storage.size());
  detail::DeviceReader<V, RowMajorLayout> dread{dtable.device_ptr(),
                                                &storage};
  const auto stream = gpu.default_stream();
  // Upload + all shell kernels form one host-independent chain: fuse them.
  sim::LaunchGraph graph(gpu, fused);
  graph.record_h2d(stream, input_bytes_of(p), sim::MemoryKind::kPageable);

  for (std::size_t k = 0; k < layout.num_fronts(); ++k) {
    const std::size_t fs = layout.front_size(k);
    const std::size_t col_n = layout.column_part_size(k);
    sim::KernelInfo info = detail::kernel_info_for(p, "gpu.invl");
    info.mem_amplification =
        detail::mixed_amplification(col_n, fs - col_n, col_amp);
    V* out = dtable.device_ptr();
    if (use_batch) {
      graph.launch(stream, info, fs,
                   [&, k, out](std::size_t lo, std::size_t hi) {
                     detail::run_front_range(
                         p, deps, bound, layout, k, lo, hi,
                         [out, &storage](std::size_t i, std::size_t j) {
                           return out + storage.flat(i, j);
                         },
                         /*batch=*/true);
                   });
    } else {
      graph.launch(stream, info, fs, [&, k, out](std::size_t c) {
        const CellIndex cell = layout.cell(k, c);
        out[storage.flat(cell.i, cell.j)] =
            detail::compute_cell(p, deps, bound, cell.i, cell.j, m, dread);
      });
    }
  }
  graph.replay();

  Grid<V> table(n, m);
  detail::unpack_table(dtable.device_ptr(), storage, table, 0, m);
  const sim::OpId done = gpu.record_d2h(stream, result_bytes_of(p),
                                        sim::MemoryKind::kPageable);
  platform.cpu_sync(done);

  if (stats) {
    stats->mode_used = Mode::kGpu;
    stats->pattern = Pattern::kInvertedL;
    stats->transfer = TransferNeed::kNone;
    stats->fronts = layout.num_fronts();
    stats->cells = n * m;
    detail::finish_stats(*stats, platform, wall.seconds());
  }
  return table;
}

/// Heterogeneous inverted-L (two phases, one-way transfers).
template <LddpProblem P>
Grid<typename P::Value> solve_hetero_invertedl(const P& p,
                                               sim::Platform& platform,
                                               const HeteroParams& user,
                                               SolveStats* stats,
                                               bool fused = true,
                                               bool batch = true) {
  using V = typename P::Value;
  Stopwatch wall;
  const std::size_t n = p.rows(), m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  const ShellLayout layout(n, m);
  const bool use_batch = detail::use_batch_front(p, layout, deps, batch);
  const cpu::WorkProfile work = detail::cpu_work_for(p, use_batch);
  const RowMajorLayout storage(n, m);
  const std::size_t num_shells = layout.num_fronts();

  sim::Device& gpu = platform.gpu();
  const sim::KernelInfo base_info = detail::kernel_info_for(p, "hetero.il");
  const HeteroParams params = detail::resolve_hetero_params(
      user, Pattern::kInvertedL, n, m, platform.spec(), base_info,
      detail::mixed_amplification(
          n - 1, m, detail::invl_cpu_column_amplification<V>()),
      static_cast<double>(input_bytes_of(p)), /*two_way=*/false, fused);
  const std::size_t ts = static_cast<std::size_t>(params.t_switch);
  const std::size_t s = static_cast<std::size_t>(params.t_share);
  const std::size_t phase_b_begin = num_shells - std::min(ts, num_shells);

  const double gpu_col_amp =
      detail::invl_gpu_column_amplification<V>(gpu.spec(), m);
  const double cpu_col_amp = detail::invl_cpu_column_amplification<V>();

  Grid<V> table(n, m);
  sim::DeviceBuffer<V> dtable = gpu.template alloc<V>(storage.size());
  detail::GridReader<V> hread{&table};
  detail::DeviceReader<V, RowMajorLayout> dread{dtable.device_ptr(),
                                                &storage};

  const auto compute_stream = gpu.default_stream();
  const auto h2d_stream = gpu.create_stream();
  const auto d2h_stream = gpu.create_stream();
  // Transfers are one-way CPU→GPU throughout phase A: the whole pipeline
  // fuses, and workers stay resident in the strip barrier across shells.
  sim::LaunchGraph graph(gpu, fused);
  cpu::StripSession strips(platform.pool());
  // Only the GPU strip's share of the problem input goes up (the CPU reads
  // its columns from host memory directly).
  graph.record_h2d(compute_stream,
                 static_cast<std::size_t>(
                     static_cast<double>(input_bytes_of(p)) *
                     static_cast<double>(m - std::min(s, m)) /
                     static_cast<double>(m)),
                 sim::MemoryKind::kPageable);

  // CPU-owned prefix of shell k: full column part plus row cells j < s.
  auto cpu_len = [&](std::size_t k) -> std::size_t {
    if (k >= s) return 0;
    return layout.column_part_size(k) + (std::min(s, m) - k);
  };

  sim::OpId last_cpu = sim::kNoOp, last_gpu = sim::kNoOp;
  sim::OpId h2d_m1 = sim::kNoOp;

  for (std::size_t k = 0; k < phase_b_begin; ++k) {
    const std::size_t fs = layout.front_size(k);
    const std::size_t col_n = layout.column_part_size(k);
    const std::size_t c = std::min(cpu_len(k), fs);

    sim::OpId cpu_op = sim::kNoOp;
    if (c > 0) {
      const std::size_t cpu_rows = c - col_n;  // row-part cells j in [k, s)
      sim::Platform::CpuFrontOpts opts;
      opts.streamed = true;
      opts.mem_amplification =
          detail::mixed_amplification(col_n, cpu_rows, cpu_col_amp);
      opts.parallel = cpu::parallel_beats_serial(
          platform.spec().cpu, work, c, opts.mem_amplification, true);
      if (use_batch) {
        cpu_op = platform.cpu_front(
            c, work,
            [&, k](std::size_t lo, std::size_t hi) {
              detail::run_front_range(
                  p, deps, bound, layout, k, lo, hi,
                  [&table](std::size_t i, std::size_t j) {
                    return &table.at(i, j);
                  },
                  /*batch=*/true);
            },
            opts);
      } else {
        cpu_op = platform.cpu_front(
            c, work,
            [&, k](std::size_t q) {
              const CellIndex cell = layout.cell(k, q);
              table.at(cell.i, cell.j) = detail::compute_cell(
                  p, deps, bound, cell.i, cell.j, m, hread);
            },
            opts);
      }
      last_cpu = cpu_op;
    }

    // One-way boundary transfer: the GPU's next-shell row cell (k+1, s)
    // reads NW = (k, s-1), a CPU row-part cell of this shell.
    sim::OpId h2d_op = sim::kNoOp;
    if (c > 0 && s > 0 && s <= m && k <= s - 1 && s - 1 < m) {
      dtable.device_ptr()[storage.flat(k, s - 1)] = table.at(k, s - 1);
      std::size_t bytes = sizeof(V);
      if (k + 1 == s) {
        // Shell-s column part reads the whole CPU strip column (i, s-1):
        // ship it in bulk together with this shell's boundary cell.
        for (std::size_t i = s; i + 1 < n; ++i) {
          dtable.device_ptr()[storage.flat(i, s - 1)] = table.at(i, s - 1);
          bytes += sizeof(V);
        }
      }
      h2d_op = graph.record_h2d(h2d_stream, bytes, sim::MemoryKind::kPinned,
                                cpu_op);
    }

    if (c < fs) {
      const std::size_t gpu_col = col_n > c ? col_n - c : 0;
      sim::KernelInfo info = base_info;
      info.mem_amplification = detail::mixed_amplification(
          gpu_col, fs - c - gpu_col, gpu_col_amp);
      V* out = dtable.device_ptr();
      if (use_batch) {
        last_gpu = graph.launch(
            compute_stream, info, fs - c,
            [&, k, c, out](std::size_t lo, std::size_t hi) {
              detail::run_front_range(
                  p, deps, bound, layout, k, c + lo, c + hi,
                  [out, &storage](std::size_t i, std::size_t j) {
                    return out + storage.flat(i, j);
                  },
                  /*batch=*/true);
            },
            h2d_m1);
      } else {
        last_gpu = graph.launch(
            compute_stream, info, fs - c,
            [&, k, c, out](std::size_t q) {
              const CellIndex cell = layout.cell(k, c + q);
              out[storage.flat(cell.i, cell.j)] = detail::compute_cell(
                  p, deps, bound, cell.i, cell.j, m, dread);
            },
            h2d_m1);
      }
    }
    h2d_m1 = h2d_op;
  }

  // Phase A is over: submit the fused pipeline before the downloads below
  // need a real GPU op id.
  graph.replay();
  last_gpu = graph.resolve(last_gpu);

  // Phase-B entry: the CPU's first low-work shell reads NW values from the
  // previous shell's GPU part — download it in bulk.
  sim::OpId entry_d2h = sim::kNoOp;
  if (phase_b_begin < num_shells && phase_b_begin > 0) {
    const std::size_t k = phase_b_begin - 1;
    std::size_t bytes = 0;
    for (std::size_t q = std::min(cpu_len(k), layout.front_size(k));
         q < layout.front_size(k); ++q) {
      const CellIndex cell = layout.cell(k, q);
      table.at(cell.i, cell.j) =
          dtable.device_ptr()[storage.flat(cell.i, cell.j)];
      bytes += sizeof(V);
    }
    entry_d2h = gpu.record_d2h(d2h_stream, bytes, sim::MemoryKind::kPageable,
                               last_gpu);
  }

  for (std::size_t k = phase_b_begin; k < num_shells; ++k) {
    const std::size_t fs = layout.front_size(k);
    const std::size_t col_n = layout.column_part_size(k);
    sim::Platform::CpuFrontOpts opts;
    opts.streamed = true;
    opts.mem_amplification =
        detail::mixed_amplification(col_n, fs - col_n, cpu_col_amp);
    opts.parallel = cpu::parallel_beats_serial(
        platform.spec().cpu, work, fs, opts.mem_amplification, true);
    opts.dep1 = entry_d2h;
    if (use_batch) {
      last_cpu = platform.cpu_front(
          fs, work,
          [&, k](std::size_t lo, std::size_t hi) {
            detail::run_front_range(
                p, deps, bound, layout, k, lo, hi,
                [&table](std::size_t i, std::size_t j) {
                  return &table.at(i, j);
                },
                /*batch=*/true);
          },
          opts);
    } else {
      last_cpu = platform.cpu_front(
          fs, work,
          [&, k](std::size_t q) {
            const CellIndex cell = layout.cell(k, q);
            table.at(cell.i, cell.j) =
                detail::compute_cell(p, deps, bound, cell.i, cell.j, m, hread);
          },
          opts);
    }
    entry_d2h = sim::kNoOp;
  }

  // Final download of all GPU-owned cells.
  {
    std::size_t bytes = 0;
    for (std::size_t k = 0; k < phase_b_begin; ++k) {
      for (std::size_t q = std::min(cpu_len(k), layout.front_size(k));
           q < layout.front_size(k); ++q) {
        const CellIndex cell = layout.cell(k, q);
        table.at(cell.i, cell.j) =
            dtable.device_ptr()[storage.flat(cell.i, cell.j)];
        bytes += sizeof(V);
      }
    }
    const sim::OpId fin =
        gpu.record_d2h(d2h_stream, std::min(bytes, result_bytes_of(p)),
                       sim::MemoryKind::kPageable, last_gpu);
    platform.cpu_sync(fin, last_cpu);
  }

  if (stats) {
    stats->mode_used = Mode::kHeterogeneous;
    stats->pattern = Pattern::kInvertedL;
    stats->transfer = transfer_need(deps);
    stats->fronts = num_shells;
    stats->cells = n * m;
    stats->t_switch = params.t_switch;
    stats->t_share = params.t_share;
    detail::finish_stats(*stats, platform, wall.seconds());
  }
  return table;
}

}  // namespace lddp
