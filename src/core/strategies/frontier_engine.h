// Frontier (linear-space) execution engines.
//
// Every strategy here fills a FrontierTable instead of a Grid: the live
// state during the sweep is a rolling window of the last few wavefronts
// (front_runner.h frontier_window_fronts gives the per-layout width), and
// the only rows that survive the solve are the checkpoint rows i % K == 0
// plus the last row. Consumers that need interior cells — tracebacks,
// best-score scans — go through the table's rematerialization callback
// (attach_row_remat), which re-runs the problem's own row recurrence over
// one K-row band; results are bit-identical to the full-table strategies
// because every cell value is a pure function of its neighbours.
//
// Engines:
//   * solve_frontier_serial   — row-streaming scan; works for every
//     pattern (a row-major sweep respects all LDDP-Plus dependencies).
//   * solve_frontier_parallel — multicore wavefronts over the window
//     (the cpu_strategy.h baseline minus the O(n*m) table).
//   * solve_frontier_gpu      — per-front kernels into a device-resident
//     window; only checkpoint halos are downloaded, never the table.
//   * solve_frontier_hetero   — the paper's CPU+GPU split over the
//     window; the CPU owns its strip of each front directly in the
//     (host-visible) device window, boundary cells are priced as pinned
//     transfers exactly like the full-table heterogeneous strategies.
//
// Simulated pricing matches the full-table strategies front for front
// (same kernels, same CPU charges); what changes is storage: O(window +
// rows/K checkpoints) instead of O(rows * cols), which is also why the
// real wall-clock of large value-only solves improves — the window stays
// cache-resident and the full table's zero-fill, write-allocate traffic
// and final unpack disappear.
#pragma once

#include <algorithm>
#include <cstring>

#include "core/front_runner.h"
#include "core/strategies/common.h"
#include "core/strategies/heuristics.h"
#include "sim/launch_graph.h"
#include "tables/frontier.h"

namespace lddp::detail {

/// RunConfig::checkpoint_interval resolution: 0 asks the model.
inline std::size_t resolve_checkpoint_interval(std::size_t user,
                                               std::size_t rows) {
  return user > 0 ? user : default_checkpoint_interval(rows);
}

// --- Front index of a cell (inverse of the layout's front geometry) ----

inline std::size_t front_of(const RowMajorLayout&, std::size_t i,
                            std::size_t) {
  return i;
}
inline std::size_t front_of(const ColumnMajorLayout&, std::size_t,
                            std::size_t j) {
  return j;
}
inline std::size_t front_of(const AntiDiagonalLayout&, std::size_t i,
                            std::size_t j) {
  return i + j;
}
inline std::size_t front_of(const KnightMoveLayout&, std::size_t i,
                            std::size_t j) {
  return 2 * i + j;
}
inline std::size_t front_of(const ShellLayout&, std::size_t i,
                            std::size_t j) {
  return std::min(i, j);
}
inline std::size_t front_of(const MirrorShellLayout& L, std::size_t i,
                            std::size_t j) {
  return std::min(i, L.cols() - 1 - j);
}

/// Rolling window over the last `w` fronts of a layout, 64-byte-aligned
/// base, fronts padded to a common stride. addr(i, j) is affine along any
/// FrontRun (the layout's flat() is affine and the front index is
/// constant), so the SIMD batch-front machinery works on it unchanged.
template <typename V, typename Layout>
struct FrontWindow {
  const Layout* layout;
  V* base;
  std::size_t w;       ///< fronts retained
  std::size_t stride;  ///< elements per front slot

  static std::size_t max_front_size(const Layout& L) {
    std::size_t fs = 0;
    for (std::size_t f = 0; f < L.num_fronts(); ++f)
      fs = std::max(fs, L.front_size(f));
    return fs;
  }
  static std::size_t slot_stride(const Layout& L) {
    return (max_front_size(L) + 15) & ~std::size_t{15};
  }

  V* addr(std::size_t i, std::size_t j) const {
    const std::size_t f = front_of(*layout, i, j);
    return base + (f % w) * stride +
           (layout->flat(i, j) - layout->front_offset(f));
  }
};

/// Copies front f's checkpoint-row and last-row cells out of the window
/// into the table's retained storage. Cost is O(front_size / K) via mod-K
/// lane stepping over the front's affine runs — not a per-cell scan.
/// Returns the number of cells harvested (for transfer pricing).
template <typename V, typename Layout, typename WindowAddr>
std::size_t harvest_front(FrontierTable<V>& t, const Layout& layout,
                          std::size_t f, std::size_t rows, std::size_t K,
                          const WindowAddr& addr) {
  FrontRun runs[2];
  const std::size_t nr = front_runs(layout, f, runs);
  std::size_t harvested = 0;
  auto store = [&](std::size_t i, std::size_t j) {
    const V v = *addr(i, j);
    if (i % K == 0) t.checkpoint_row(i)[j] = v;
    if (i == rows - 1) t.last_row()[j] = v;
    ++harvested;
  };
  for (std::size_t r = 0; r < nr; ++r) {
    const FrontRun& run = runs[r];
    if (run.len == 0) continue;
    if (run.di == 0) {
      const std::size_t i = run.i0;
      const bool ck = i % K == 0, last = i == rows - 1;
      if (!ck && !last) continue;
      if (run.dj == 1 && (ck || last)) {
        // Contiguous row segment: bulk copies into the retained rows.
        const V* src = addr(i, run.j0);
        if (ck) std::copy(src, src + run.len, t.checkpoint_row(i) + run.j0);
        if (last) std::copy(src, src + run.len, t.last_row() + run.j0);
        harvested += run.len;
      } else {
        for (std::size_t k = 0; k < run.len; ++k)
          store(i, run.j0 + static_cast<std::size_t>(
                                static_cast<std::ptrdiff_t>(k) * run.dj));
      }
      continue;
    }
    // di = +/-1: rows hitting the checkpoint grid are every K-th lane.
    const std::size_t k0 =
        run.di > 0 ? (K - run.i0 % K) % K : run.i0 % K;
    for (std::size_t k = k0; k < run.len; k += K) {
      const std::size_t i =
          run.i0 + static_cast<std::size_t>(
                       static_cast<std::ptrdiff_t>(k) * run.di);
      const std::size_t j =
          run.j0 + static_cast<std::size_t>(
                       static_cast<std::ptrdiff_t>(k) * run.dj);
      store(i, j);
    }
    // The last row rides along whatever lane reaches it.
    const std::ptrdiff_t kl =
        run.di > 0 ? static_cast<std::ptrdiff_t>(rows - 1) -
                         static_cast<std::ptrdiff_t>(run.i0)
                   : static_cast<std::ptrdiff_t>(run.i0) -
                         static_cast<std::ptrdiff_t>(rows - 1);
    if (kl >= 0 && kl < static_cast<std::ptrdiff_t>(run.len) &&
        (rows - 1) % K != 0) {  // % K == 0 lanes stored it already
      const std::size_t k = static_cast<std::size_t>(kl);
      store(run.i0 + static_cast<std::size_t>(
                         static_cast<std::ptrdiff_t>(k) * run.di),
            run.j0 + static_cast<std::size_t>(
                         static_cast<std::ptrdiff_t>(k) * run.dj));
    }
  }
  return harvested;
}

/// Installs the row-recurrence rematerialization callback on a frontier
/// table. `holder` is copied into the callback and must yield the problem
/// (in the table's canonical orientation) on call — a lambda returning
/// `*p` for a caller-owned problem, or owning a cheap symmetry adapter /
/// shared_ptr by value. Rows chain from the band's upper checkpoint with
/// the same run_row used by the serial strategy, so rematerialized cells
/// are bit-identical to the original sweep.
template <typename V, typename Holder>
void attach_row_remat(FrontierTable<V>& t, Holder holder, bool batch) {
  const ContributingSet deps = holder().deps();
  const V bound = holder().boundary();
  t.set_remat(
      [holder = std::move(holder), deps, bound, batch](
          std::size_t row_lo, std::size_t row_hi, std::size_t width,
          const V* prev, V* out, std::size_t stride) {
        const auto& p = holder();
        for (std::size_t i = row_lo; i < row_hi; ++i) {
          V* row = out + (i - row_lo) * stride;
          // cols = width clamps NE reads at the pruning edge to `bound`;
          // the table's erosion accounting never serves those cells.
          run_row(p, deps, bound, i, 0, width, width, prev, row, batch);
          prev = row;
        }
      },
      deps.has_ne());
}

/// Fills the frontier-specific stats fields.
template <typename V>
void finish_frontier_stats(SolveStats* stats, const FrontierTable<V>& t,
                           std::size_t transient_bytes) {
  if (stats == nullptr) return;
  stats->peak_table_bytes = t.resident_bytes() + transient_bytes;
  stats->checkpoint_interval = t.checkpoint_interval();
  stats->checkpoint_rows = t.checkpoint_row_count();
}

// --- Serial engine ------------------------------------------------------

/// Row-streaming serial scan: two rolling rows of live state, rows on the
/// checkpoint grid computed directly into their retained storage. Same
/// cells, same single serial CPU charge as solve_cpu_serial.
template <LddpProblem P>
FrontierTable<typename P::Value> solve_frontier_serial(
    const P& p, sim::Platform* platform, SolveStats* stats,
    bool batch, std::size_t K) {
  using V = typename P::Value;
  Stopwatch wall;
  const std::size_t n = p.rows(), m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  FrontierTable<V> table = FrontierTable<V>::checkpointed(n, m, K);
  AlignedBuf<V> roll;
  V* const rbase = roll.ensure(2 * m);
  const V* prev = nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    V* row;
    if (i % K == 0) row = table.checkpoint_row(i);
    else if (i == n - 1) row = table.last_row();
    else row = rbase + (i & 1) * m;
    run_row(p, deps, bound, i, 0, m, m, prev, row, batch);
    if (i == n - 1 && i % K == 0)
      std::copy(row, row + m, table.last_row());
    prev = row;
  }
  if (platform) {
    const bool use_batch = batch && has_batch_front_v<P> && !deps.has_w();
    platform->cpu_charge(n * m, cpu_work_for(p, use_batch),
                         /*parallel=*/false);
  }
  if (stats) {
    stats->mode_used = Mode::kCpuSerial;
    stats->pattern = classify(deps);
    stats->transfer = TransferNeed::kNone;
    stats->fronts = n;
    stats->cells = n * m;
    if (platform) finish_stats(*stats, *platform, wall.seconds());
    else stats->real_seconds = wall.seconds();
    finish_frontier_stats(stats, table, 2 * m * sizeof(V));
  }
  return table;
}

// --- Multicore wavefront engine ----------------------------------------

/// solve_cpu_parallel over a rolling front window. Requires
/// frontier_window_fronts(layout, deps) > 0 (the caller checks and falls
/// back to the full-table strategy otherwise).
template <LddpProblem P, typename Layout>
FrontierTable<typename P::Value> solve_frontier_parallel(
    const P& p, const Layout& layout, sim::Platform& platform,
    SolveStats* stats, double mem_amplification, bool batch,
    std::size_t K) {
  using V = typename P::Value;
  Stopwatch wall;
  const std::size_t n = p.rows(), m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  const std::size_t w = frontier_window_fronts(layout, deps);
  LDDP_CHECK_MSG(w > 0, "layout/deps pair has no bounded frontier window");
  const bool use_batch = use_batch_front(p, layout, deps, batch);
  const cpu::WorkProfile work = cpu_work_for(p, use_batch);
  FrontierTable<V> table = FrontierTable<V>::checkpointed(n, m, K);

  AlignedBuf<V> win;
  FrontWindow<V, Layout> fw{&layout, nullptr, w,
                            FrontWindow<V, Layout>::slot_stride(layout)};
  fw.base = win.ensure(fw.w * fw.stride);
  auto addr = [&fw](std::size_t i, std::size_t j) { return fw.addr(i, j); };
  auto read = [&fw](std::size_t i, std::size_t j) { return *fw.addr(i, j); };

  cpu::StripSession strips(platform.pool());
  sim::Platform::CpuFrontOpts opts;
  opts.mem_amplification = mem_amplification;
  for (std::size_t f = 0; f < layout.num_fronts(); ++f) {
    opts.parallel = cpu::parallel_beats_serial(
        platform.spec().cpu, work, layout.front_size(f), mem_amplification);
    if (use_batch) {
      platform.cpu_front(
          layout.front_size(f), work,
          [&](std::size_t lo, std::size_t hi) {
            run_front_range(p, deps, bound, layout, f, lo, hi, addr,
                            /*batch=*/true);
          },
          opts);
    } else {
      platform.cpu_front(
          layout.front_size(f), work,
          [&](std::size_t c) {
            const CellIndex cell = layout.cell(f, c);
            *fw.addr(cell.i, cell.j) =
                compute_cell(p, deps, bound, cell.i, cell.j, m, read);
          },
          opts);
    }
    harvest_front(table, layout, f, n, K, addr);
  }
  if (stats) {
    stats->mode_used = Mode::kCpuParallel;
    stats->pattern = classify(deps);
    stats->transfer = TransferNeed::kNone;
    stats->fronts = layout.num_fronts();
    stats->cells = n * m;
    finish_stats(*stats, platform, wall.seconds());
    finish_frontier_stats(stats, table, fw.w * fw.stride * sizeof(V));
  }
  return table;
}

// --- GPU engine ---------------------------------------------------------

/// solve_gpu over a device-resident front window. The full-table version
/// downloads result_bytes and host-unpacks the whole device array; here
/// only the checkpoint halo of each front comes down (pinned), plus the
/// same final result download.
template <LddpProblem P, typename Layout>
FrontierTable<typename P::Value> solve_frontier_gpu(
    const P& p, const Layout& layout, sim::Platform& platform,
    SolveStats* stats, bool fused, bool batch, std::size_t K) {
  using V = typename P::Value;
  Stopwatch wall;
  const std::size_t n = p.rows(), m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  const std::size_t w = frontier_window_fronts(layout, deps);
  LDDP_CHECK_MSG(w > 0, "layout/deps pair has no bounded frontier window");
  sim::Device& gpu = platform.gpu();
  const auto stream = gpu.default_stream();
  const sim::KernelInfo info = kernel_info_for(p, "gpu.front");
  FrontierTable<V> table = FrontierTable<V>::checkpointed(n, m, K);

  const std::size_t stride = FrontWindow<V, Layout>::slot_stride(layout);
  sim::DeviceBuffer<V> dwin =
      gpu.template alloc<V>(w * stride, /*zeroed=*/false);
  FrontWindow<V, Layout> fw{&layout, dwin.device_ptr(), w, stride};
  auto addr = [&fw](std::size_t i, std::size_t j) { return fw.addr(i, j); };
  auto read = [&fw](std::size_t i, std::size_t j) { return *fw.addr(i, j); };

  const bool use_batch = use_batch_front(p, layout, deps, batch);
  sim::LaunchGraph graph(gpu, fused);
  graph.record_h2d(stream, input_bytes_of(p), sim::MemoryKind::kPageable);
  for (std::size_t f = 0; f < layout.num_fronts(); ++f) {
    if (use_batch) {
      graph.launch(stream, info, layout.front_size(f),
                   [&, f](std::size_t lo, std::size_t hi) {
                     run_front_range(p, deps, bound, layout, f, lo, hi,
                                     addr, /*batch=*/true);
                   });
    } else {
      graph.launch(stream, info, layout.front_size(f),
                   [&, f](std::size_t c) {
                     const CellIndex cell = layout.cell(f, c);
                     *fw.addr(cell.i, cell.j) = compute_cell(
                         p, deps, bound, cell.i, cell.j, m, read);
                   });
    }
    // Kernels execute eagerly at record time (sim semantics), so the
    // freshly computed front can be harvested here; the retained rows'
    // trip to the host is priced as a pinned halo copy.
    const std::size_t cells = harvest_front(table, layout, f, n, K, addr);
    if (cells > 0)
      graph.record_d2h(stream, cells * sizeof(V), sim::MemoryKind::kPinned);
  }
  graph.replay();
  const sim::OpId done = gpu.record_d2h(stream, result_bytes_of(p),
                                        sim::MemoryKind::kPageable);
  platform.cpu_sync(done);

  if (stats) {
    stats->mode_used = Mode::kGpu;
    stats->pattern = classify(deps);
    stats->transfer = TransferNeed::kNone;
    stats->fronts = layout.num_fronts();
    stats->cells = n * m;
    finish_stats(*stats, platform, wall.seconds());
    finish_frontier_stats(stats, table, w * stride * sizeof(V));
  }
  return table;
}

// --- Heterogeneous engine ----------------------------------------------

/// CPU-owned position range of front f under a t_share strip of `s`:
/// columns j < s for row fronts, rows i < s for diagonal-order fronts
/// (the same strip semantics as the full-table heterogeneous strategies).
inline void hetero_cpu_range(const RowMajorLayout& L, std::size_t f,
                             std::size_t s, std::size_t& lo,
                             std::size_t& hi) {
  (void)f;
  lo = 0;
  hi = std::min(s, L.cols());
}
inline void hetero_cpu_range(const AntiDiagonalLayout& L, std::size_t f,
                             std::size_t s, std::size_t& lo,
                             std::size_t& hi) {
  const std::size_t i0 = L.i_min(f);
  lo = 0;
  hi = i0 >= s ? 0 : std::min(s - i0, L.front_size(f));
}
inline void hetero_cpu_range(const KnightMoveLayout& L, std::size_t f,
                             std::size_t s, std::size_t& lo,
                             std::size_t& hi) {
  // Enumeration runs i descending from i_max, so the i < s strip is the
  // suffix of the front.
  const std::size_t fs = L.front_size(f);
  hi = fs;
  if (fs == 0) {
    lo = 0;
    return;
  }
  const std::size_t imax = L.i_max(f);
  lo = imax + 1 > s ? std::min(imax + 1 - s, fs) : 0;
}

/// The paper's heterogeneous split over a rolling front window shared by
/// both units: the (host-visible) device window takes the CPU strip's
/// writes directly — mapped-memory style — while boundary cells crossing
/// the strip are priced as the same pinned transfers the full-table
/// heterogeneous strategies record. Supported for the row and
/// diagonal-order layouts (hetero_cpu_range above); Inverted-L falls back
/// to the full-table strategy at the dispatch layer.
template <LddpProblem P, typename Layout>
FrontierTable<typename P::Value> solve_frontier_hetero(
    const P& p, const Layout& layout, Pattern canon, sim::Platform& platform,
    const HeteroParams& user, SolveStats* stats, double mem_amplification,
    bool fused, bool batch, std::size_t K) {
  using V = typename P::Value;
  Stopwatch wall;
  const std::size_t n = p.rows(), m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  const std::size_t w = frontier_window_fronts(layout, deps);
  LDDP_CHECK_MSG(w > 0, "layout/deps pair has no bounded frontier window");
  const std::size_t num_fronts = layout.num_fronts();
  const bool use_batch = use_batch_front(p, layout, deps, batch);
  const cpu::WorkProfile work = cpu_work_for(p, use_batch);

  sim::Device& gpu = platform.gpu();
  const sim::KernelInfo info = kernel_info_for(p, "hetero.frontier");
  // NE on row fronts is the one strip crossing that flows GPU -> CPU
  // (column j = t_share reads j + 1); diagonal-order strips only ever
  // cross CPU -> GPU. A two-way phase cannot fuse: the CPU consumes
  // device results mid-graph.
  const bool gpu_to_cpu =
      deps.has_ne() && std::is_same_v<Layout, RowMajorLayout>;
  const bool fuse = fused && !gpu_to_cpu;
  const HeteroParams params = resolve_hetero_params(
      user, canon, n, m, platform.spec(), info, mem_amplification,
      static_cast<double>(input_bytes_of(p)), gpu_to_cpu, fuse);
  const std::size_t ts = static_cast<std::size_t>(params.t_switch);
  const std::size_t s = static_cast<std::size_t>(params.t_share);
  const std::size_t phase2_begin = std::min(ts, num_fronts);
  const std::size_t phase2_end = num_fronts - std::min(ts, num_fronts);

  FrontierTable<V> table = FrontierTable<V>::checkpointed(n, m, K);
  const std::size_t stride = FrontWindow<V, Layout>::slot_stride(layout);
  sim::DeviceBuffer<V> dwin =
      gpu.template alloc<V>(w * stride, /*zeroed=*/false);
  FrontWindow<V, Layout> fw{&layout, dwin.device_ptr(), w, stride};
  auto addr = [&fw](std::size_t i, std::size_t j) { return fw.addr(i, j); };
  auto read = [&fw](std::size_t i, std::size_t j) { return *fw.addr(i, j); };

  const auto compute_stream = gpu.default_stream();
  const auto h2d_stream = gpu.create_stream();
  const auto d2h_stream = gpu.create_stream();
  sim::LaunchGraph graph(gpu, fuse);
  cpu::StripSession strips(platform.pool());
  // Only the GPU share of the inputs goes up; the CPU strip reads host
  // memory directly. The strip fraction is measured in front cells.
  {
    double cpu_cells = 0.0, all_cells = 0.0;
    for (std::size_t f = 0; f < num_fronts; ++f) {
      const std::size_t fs = layout.front_size(f);
      all_cells += static_cast<double>(fs);
      if (f < phase2_begin || f >= phase2_end) {
        cpu_cells += static_cast<double>(fs);
      } else {
        std::size_t lo, hi;
        hetero_cpu_range(layout, f, s, lo, hi);
        cpu_cells += static_cast<double>(hi - lo);
      }
    }
    const double frac = all_cells > 0.0 ? 1.0 - cpu_cells / all_cells : 0.0;
    graph.record_h2d(compute_stream,
                     static_cast<std::size_t>(
                         static_cast<double>(input_bytes_of(p)) * frac),
                     sim::MemoryKind::kPageable);
  }

  auto run_cpu = [&](std::size_t f, std::size_t lo, std::size_t hi,
                     sim::OpId dep) {
    sim::Platform::CpuFrontOpts opts;
    opts.streamed = true;
    opts.mem_amplification = mem_amplification;
    opts.parallel = cpu::parallel_beats_serial(
        platform.spec().cpu, work, hi - lo, mem_amplification, true);
    opts.dep1 = dep;
    if (use_batch) {
      return platform.cpu_front(
          hi - lo, work,
          [&, f, lo](std::size_t a, std::size_t b) {
            run_front_range(p, deps, bound, layout, f, lo + a, lo + b, addr,
                            /*batch=*/true);
          },
          opts);
    }
    return platform.cpu_front(
        hi - lo, work,
        [&, f, lo](std::size_t c) {
          const CellIndex cell = layout.cell(f, lo + c);
          *fw.addr(cell.i, cell.j) =
              compute_cell(p, deps, bound, cell.i, cell.j, m, read);
        },
        opts);
  };

  sim::OpId last_cpu = sim::kNoOp;
  sim::OpId last_gpu = sim::kNoOp;
  sim::OpId cpu_dep = sim::kNoOp;   // pinned D2H the next CPU strip awaits
  sim::OpId h2d_ring[4] = {sim::kNoOp, sim::kNoOp, sim::kNoOp, sim::kNoOp};

  for (std::size_t f = 0; f < num_fronts; ++f) {
    const std::size_t fs = layout.front_size(f);
    std::size_t lo = 0, hi = fs;  // CPU-owned positions
    const bool split_phase = f >= phase2_begin && f < phase2_end;
    if (split_phase) hetero_cpu_range(layout, f, s, lo, hi);

    sim::OpId cpu_op = sim::kNoOp;
    if (hi > lo) {
      cpu_op = run_cpu(f, lo, hi, cpu_dep);
      last_cpu = cpu_op;
      cpu_dep = sim::kNoOp;
    }

    const bool has_gpu = split_phase ? (hi - lo) < fs : false;
    sim::OpId h2d_op = sim::kNoOp;
    if (has_gpu && hi > lo) {
      // The CPU's strip-boundary cell of this front, pinned, pipelined on
      // the copy stream (mapped window: the data is already visible, the
      // record prices the crossing).
      h2d_op = graph.record_h2d(h2d_stream, sizeof(V),
                                sim::MemoryKind::kPinned, cpu_op);
    }

    h2d_ring[f % 4] = h2d_op;
    if (has_gpu) {
      // The kernel waits on the boundary uploads of every front still in
      // the window (W/N/NW/NE reads reach up to w - 1 fronts back; the
      // same-front W crossing of row fronts needs this front's upload).
      sim::OpId extra =
          std::is_same_v<Layout, RowMajorLayout> ? h2d_op : sim::kNoOp;
      for (std::size_t back = 1; back < w && back <= f; ++back) {
        const sim::OpId op = h2d_ring[(f - back) % 4];
        if (op == sim::kNoOp) continue;
        if (extra == sim::kNoOp) extra = op;
        else graph.stream_wait(compute_stream, op);
      }
      const std::size_t glo = lo == 0 ? hi : 0;
      const std::size_t ghi = lo == 0 ? fs : lo;
      if (use_batch) {
        last_gpu = graph.launch(
            compute_stream, info, ghi - glo,
            [&, f, glo](std::size_t a, std::size_t b) {
              run_front_range(p, deps, bound, layout, f, glo + a, glo + b,
                              addr, /*batch=*/true);
            },
            extra);
      } else {
        last_gpu = graph.launch(
            compute_stream, info, ghi - glo,
            [&, f, glo](std::size_t c) {
              const CellIndex cell = layout.cell(f, glo + c);
              *fw.addr(cell.i, cell.j) =
                  compute_cell(p, deps, bound, cell.i, cell.j, m, read);
            },
            extra);
      }
      if (gpu_to_cpu)
        // NE pulls the GPU's boundary column back across the strip for
        // the next front's CPU segment.
        cpu_dep = graph.record_d2h(d2h_stream, sizeof(V),
                                   sim::MemoryKind::kPinned, last_gpu);
    }

    const std::size_t cells = harvest_front(table, layout, f, n, K, addr);
    if (cells > 0 && has_gpu)
      graph.record_d2h(d2h_stream, cells * sizeof(V),
                       sim::MemoryKind::kPinned);
  }

  graph.replay();
  last_gpu = graph.resolve(last_gpu);
  const sim::OpId fin = gpu.record_d2h(
      d2h_stream, result_bytes_of(p), sim::MemoryKind::kPageable, last_gpu);
  platform.cpu_sync(fin, last_cpu);

  if (stats) {
    stats->mode_used = Mode::kHeterogeneous;
    stats->pattern = canon;
    stats->transfer = transfer_need(deps);
    stats->fronts = num_fronts;
    stats->cells = n * m;
    stats->t_switch = params.t_switch;
    stats->t_share = params.t_share;
    finish_stats(*stats, platform, wall.seconds());
    finish_frontier_stats(stats, table, w * stride * sizeof(V));
  }
  return table;
}

}  // namespace lddp::detail
