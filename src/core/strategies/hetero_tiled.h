// Tile-granular heterogeneous execution — one implementation for all four
// canonical patterns.
//
// The TileScheduler reduces every contributing set to anti-diagonal tile
// fronts with tile-level dependencies in {W, NW, N} (skewed parallelogram
// tiles absorb NE). The same three-phase split as the untiled strategies
// then applies *in tile units*:
//
//   Phase 1: the first t_switch tile fronts run entirely on the CPU
//            (tiled: one cache-resident tile per worker).
//   Phase 2: each tile front is split — the CPU owns the top tile rows
//            tu < t_share, the GPU the rest. Because the CPU strip is the
//            *top* of an up/left dependency cone, every cross-unit
//            dependency points CPU -> GPU for every one of the 15
//            contributing sets (the cell-level two-way patterns become
//            one-way at tile granularity), so the whole phase — kernels
//            plus halo uploads — fuses into a single LaunchGraph
//            submission. Transfers shrink from whole fronts to tile
//            halos: after the CPU finishes its strip of front g it ships
//            the bottom cell row of its boundary tile on a copy stream;
//            the GPU kernel for front g waits on the halos of fronts g-1
//            and g-2.
//   Phase 3: the last t_switch tile fronts run on the CPU again, after a
//            bulk download of the GPU-owned halos of the two preceding
//            fronts.
#pragma once

#include "core/front_runner.h"
#include "core/strategies/common.h"
#include "core/strategies/gpu_tiled.h"
#include "core/strategies/heuristics.h"
#include "core/tile_scheduler.h"
#include "sim/launch_graph.h"
#include "sim/tile_kernel.h"

namespace lddp {

template <LddpProblem P>
Grid<typename P::Value> solve_hetero_tiled(const P& p, sim::Platform& platform,
                                           const HeteroParams& user,
                                           std::size_t tile, SolveStats* stats,
                                           bool fused = true,
                                           bool batch = true) {
  using V = typename P::Value;
  Stopwatch wall;
  const std::size_t n = p.rows(), m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  const bool use_batch = detail::use_batch_rows(p, deps, batch);
  const cpu::WorkProfile work = detail::cpu_work_for(p, use_batch);
  const TileScheduler sched(n, m, tile, deps);
  const std::size_t num_fronts = sched.num_fronts();

  sim::Device& gpu = platform.gpu();
  const sim::KernelInfo info = detail::kernel_info_for(p, "hetero.tile");
  const detail::TiledSplit split = detail::resolve_tiled_split(
      user, sched, platform.spec(), info, sizeof(V),
      static_cast<double>(input_bytes_of(p)), fused);
  const std::size_t ts = split.t_switch_fronts;
  const std::size_t s = split.t_share_tiles;
  const std::size_t phase2_begin = ts;
  const std::size_t phase2_end = num_fronts - ts;

  Grid<V> table(n, m);
  const RowMajorLayout layout(n, m);
  sim::DeviceBuffer<V> dtable = gpu.template alloc<V>(layout.size());

  const auto compute_stream = gpu.default_stream();
  const auto h2d_stream = gpu.create_stream();
  const auto d2h_stream = gpu.create_stream();
  sim::LaunchGraph graph(gpu, fused);
  // Only the GPU strip's share of the problem input goes up.
  const std::size_t cpu_rows = std::min(n, s * sched.tile());
  graph.record_h2d(compute_stream,
                   static_cast<std::size_t>(
                       static_cast<double>(input_bytes_of(p)) *
                       static_cast<double>(n - cpu_rows) /
                       static_cast<double>(n)),
                   sim::MemoryKind::kPageable);

  const bool north_deps = deps.has_n() || deps.has_nw() || deps.has_ne();
  // The east halo matters when a dependency reaches laterally into the
  // west neighbour tile: W always, NW from a consumer's interior rows, and
  // the skewed images of N/NW.
  const bool west_deps = deps.has_w() || deps.has_nw() ||
                         (sched.skewed() && deps.has_n());

  // CPU-owned tiles (tile rows tu < s) at the head of front g.
  auto cpu_tiles = [&](std::size_t g) -> std::size_t {
    const std::size_t lo = sched.tu_min(g);
    if (lo >= s) return 0;
    return std::min(s - lo, sched.front_tiles(g));
  };

  // Runs tiles [0, count) of front g on the CPU (block-per-worker, priced
  // as a tiled front with the front's average tile population).
  auto run_cpu = [&](std::size_t g, std::size_t count,
                     sim::OpId dep) -> sim::OpId {
    if (count == 0) return sim::kNoOp;
    std::size_t cells = 0;
    for (std::size_t k = 0; k < count; ++k) {
      const TileScheduler::TileCoord t = sched.front_tile(g, k);
      cells += sched.cell_count(t.tu, t.tv);
    }
    return platform.cpu_tiled_front(
        count, cells / count, work,
        [&, g](std::size_t k) {
          const TileScheduler::TileCoord t = sched.front_tile(g, k);
          V* const data = table.data();
          for (std::size_t i = sched.row_begin(t.tu); i < sched.row_end(t.tu);
               ++i) {
            const TileScheduler::RowSpan sp = sched.row_span(t.tv, i);
            if (sp.size() == 0) continue;
            const V* prev = i > 0 ? data + (i - 1) * m : nullptr;
            detail::run_row(p, deps, bound, i, sp.j_begin, sp.j_end, m, prev,
                            data + i * m, batch);
          }
        },
        dep);
  };

  // Scatters one CPU tile's outgoing halo into the device table and
  // returns the byte count (the real copy is done here; the caller records
  // the priced transfer).
  auto stage_tile_halo = [&](std::size_t tu, std::size_t tv, bool north,
                             bool west) -> std::size_t {
    std::size_t bytes = 0;
    V* out = dtable.device_ptr();
    if (north)
      sched.for_each_bottom_row_cell(tu, tv, [&](std::size_t i,
                                                 std::size_t j) {
        out[layout.flat(i, j)] = table.at(i, j);
        bytes += sizeof(V);
      });
    if (west)
      sched.for_each_east_halo_cell(tu, tv, [&](std::size_t i,
                                                std::size_t j) {
        out[layout.flat(i, j)] = table.at(i, j);
        bytes += sizeof(V);
      });
    return bytes;
  };

  sim::OpId last_cpu = sim::kNoOp;
  sim::OpId last_gpu = sim::kNoOp;

  // ---- Phase 1 ----------------------------------------------------------
  for (std::size_t g = 0; g < phase2_begin; ++g) {
    const sim::OpId op = run_cpu(g, sched.front_tiles(g), sim::kNoOp);
    if (op != sim::kNoOp) last_cpu = op;
  }

  // Phase-2 entry: GPU tiles read halos of the two preceding fronts, which
  // the CPU computed in phase 1 (and, for the west halo, CPU tiles in the
  // same tile row computed before the split began). Ship them in bulk.
  sim::OpId h2d_m1 = sim::kNoOp;  // halo transfer of front g-1
  sim::OpId h2d_m2 = sim::kNoOp;  // halo transfer of front g-2
  if (phase2_begin < phase2_end && phase2_begin > 0) {
    std::size_t bytes = 0;
    for (std::size_t back = 1; back <= 2 && back <= phase2_begin; ++back) {
      const std::size_t g = phase2_begin - back;
      for (std::size_t k = 0; k < sched.front_tiles(g); ++k) {
        const TileScheduler::TileCoord t = sched.front_tile(g, k);
        // North halo feeds the tile below (a GPU tile when tu + 1 >= s);
        // the east halo feeds the tile to the east (GPU when tu >= s).
        bytes += stage_tile_halo(t.tu, t.tv,
                                 north_deps && t.tu + 1 >= s,
                                 west_deps && t.tu >= s);
      }
    }
    h2d_m1 = h2d_m2 = graph.record_h2d(h2d_stream, bytes,
                                       sim::MemoryKind::kPageable, last_cpu);
  }

  // ---- Phase 2 ----------------------------------------------------------
  for (std::size_t g = phase2_begin; g < phase2_end; ++g) {
    const std::size_t nt = sched.front_tiles(g);
    const std::size_t c = cpu_tiles(g);

    sim::OpId cpu_op = sim::kNoOp;
    if (c > 0) {
      // CPU tiles read only tiles with tu < s of earlier fronts — all
      // CPU-produced, so the CPU resource's FIFO order already covers it.
      cpu_op = run_cpu(g, c, sim::kNoOp);
      if (cpu_op != sim::kNoOp) last_cpu = cpu_op;
    }

    // Pipelined one-way halo: the boundary tile (tile row s-1) of this
    // front, read by GPU fronts g+1 (as N) and g+2 (as NW).
    sim::OpId h2d_op = sim::kNoOp;
    if (c > 0 && north_deps && s >= 1 && s < sched.tile_rows() &&
        sched.tu_min(g) + c == s) {
      const std::size_t bytes = stage_tile_halo(s - 1, g - (s - 1),
                                                /*north=*/true,
                                                /*west=*/false);
      if (bytes > 0)
        h2d_op = graph.record_h2d(h2d_stream, bytes, sim::MemoryKind::kPinned,
                                  cpu_op);
    }

    if (c < nt) {
      const detail::TileFrontWork fw =
          detail::tile_front_work<V>(sched, info, g, c, nt);
      if (fw.cells > 0) {
        const double exec = sim::tiled_kernel_exec_seconds(
            gpu.spec(), info, fw.tiles, sched.tile(), sched.tile(), fw.cells,
            fw.staged_bytes);
        const double packed = sim::tiled_kernel_packed_exec_seconds(
            gpu.spec(), info, fw.tiles, sched.tile(), sched.tile(), fw.cells,
            fw.staged_bytes);
        // The kernel additionally waits for the halos of the last two
        // fronts (the N/NW reads that cross the strip boundary).
        graph.stream_wait(compute_stream, h2d_m2);
        V* out = dtable.device_ptr();
        last_gpu = graph.launch_tiled(
            compute_stream, exec, nt - c,
            [&, g, c, out](std::size_t k) {
              const TileScheduler::TileCoord t = sched.front_tile(g, c + k);
              for (std::size_t i = sched.row_begin(t.tu);
                   i < sched.row_end(t.tu); ++i) {
                const TileScheduler::RowSpan sp = sched.row_span(t.tv, i);
                if (sp.size() == 0) continue;
                const V* prev = i > 0 ? out + (i - 1) * m : nullptr;
                detail::run_row(p, deps, bound, i, sp.j_begin, sp.j_end, m,
                                prev, out + i * m, batch);
              }
            },
            h2d_m1, packed);
      }
    }
    h2d_m2 = h2d_m1;
    h2d_m1 = h2d_op;
  }

  // Phase 2 is over: submit the fused pipeline before anything host-side
  // needs a GPU op id.
  graph.replay();
  last_gpu = graph.resolve(last_gpu);

  // Phase-3 entry: the CPU reads the halos of the two fronts preceding
  // phase2_end; download the GPU-owned parts in bulk. (Later phase-3
  // fronts only read phase-3 fronts, which are CPU-computed.)
  sim::OpId entry_d2h = sim::kNoOp;
  if (phase2_end < num_fronts && phase2_end >= 1) {
    std::size_t bytes = 0;
    for (std::size_t back = 1; back <= 2 && back <= phase2_end; ++back) {
      const std::size_t g = phase2_end - back;
      if (g < phase2_begin) break;  // phase-1 front: already on the host
      for (std::size_t k = cpu_tiles(g); k < sched.front_tiles(g); ++k) {
        const TileScheduler::TileCoord t = sched.front_tile(g, k);
        auto fetch = [&](std::size_t i, std::size_t j) {
          table.at(i, j) = dtable.device_ptr()[layout.flat(i, j)];
          bytes += sizeof(V);
        };
        if (north_deps) sched.for_each_bottom_row_cell(t.tu, t.tv, fetch);
        if (west_deps) sched.for_each_east_halo_cell(t.tu, t.tv, fetch);
      }
    }
    entry_d2h = gpu.record_d2h(d2h_stream, bytes, sim::MemoryKind::kPageable,
                               last_gpu);
  }

  // ---- Phase 3 ----------------------------------------------------------
  for (std::size_t g = phase2_end; g < num_fronts; ++g) {
    const sim::OpId op = run_cpu(g, sched.front_tiles(g), entry_d2h);
    if (op != sim::kNoOp) {
      last_cpu = op;
      entry_d2h = sim::kNoOp;  // only the first phase-3 front waits on it
    }
  }

  // Final download of the GPU-owned region (phase-2 tile rows tu >= s).
  {
    std::size_t bytes = 0;
    for (std::size_t g = phase2_begin; g < phase2_end; ++g) {
      for (std::size_t k = cpu_tiles(g); k < sched.front_tiles(g); ++k) {
        const TileScheduler::TileCoord t = sched.front_tile(g, k);
        sched.for_each_cell(t.tu, t.tv, [&](std::size_t i, std::size_t j) {
          table.at(i, j) = dtable.device_ptr()[layout.flat(i, j)];
          bytes += sizeof(V);
        });
      }
    }
    const sim::OpId fin =
        gpu.record_d2h(d2h_stream, std::min(bytes, result_bytes_of(p)),
                       sim::MemoryKind::kPageable, last_gpu);
    platform.cpu_sync(fin, last_cpu);
  }

  if (stats) {
    stats->mode_used = Mode::kHeterogeneous;
    stats->pattern = classify(deps);
    stats->transfer = transfer_need(deps);
    stats->fronts = num_fronts;
    stats->cells = n * m;
    stats->t_switch = static_cast<long long>(ts * sched.tile());
    stats->t_share = static_cast<long long>(s * sched.tile());
    detail::finish_stats(*stats, platform, wall.seconds());
  }
  return table;
}

}  // namespace lddp
