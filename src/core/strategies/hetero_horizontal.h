// Heterogeneous execution of the horizontal pattern (Section III-B,
// Figure 4). A single phase over all rows; the CPU owns the left
// column-strip j < t_share of every row, the GPU the rest.
//
// Data movement (Section IV-C):
//   * contributing set {N}: no boundary crossings — both units stream
//     through their strips fully decoupled.
//   * case-1 (NW without NE, or NE without NW): one-way transfers, hidden
//     by pipelining on a copy stream — the producer unit runs one row
//     ahead of the consumer and never blocks.
//   * case-2 (NW and NE): two-way traffic every row. Implemented with
//     zero-copy mapped pinned memory (the paper's "pinned memory ...
//     fast memory access if data size is small"): no copy-engine ops, but
//     each unit pays a small mapped-access cost per row and the two units
//     serialize against each other's previous row.
#pragma once

#include "core/front_runner.h"
#include "core/strategies/common.h"
#include "core/strategies/heuristics.h"
#include "sim/launch_graph.h"

namespace lddp {

template <LddpProblem P>
Grid<typename P::Value> solve_hetero_horizontal(const P& p,
                                                sim::Platform& platform,
                                                const HeteroParams& user,
                                                SolveStats* stats,
                                                bool fused = true,
                                                bool batch = true) {
  using V = typename P::Value;
  Stopwatch wall;
  const std::size_t n = p.rows(), m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  const RowMajorLayout layout(n, m);
  const bool use_batch = detail::use_batch_front(p, layout, deps, batch);
  const cpu::WorkProfile work = detail::cpu_work_for(p, use_batch);

  sim::Device& gpu = platform.gpu();
  sim::KernelInfo info = detail::kernel_info_for(p, "hetero.h");
  const HeteroParams params = detail::resolve_hetero_params(
      user, Pattern::kHorizontal, n, m, platform.spec(), info,
      /*cpu_mem_amplification=*/1.0, static_cast<double>(input_bytes_of(p)),
      is_horizontal_case2(deps),
      // An NE dependency forces eager submission (gpu->cpu boundary every
      // row), so only NE-free shapes see the fused per-front pricing.
      fused && !deps.has_ne());
  const std::size_t s = static_cast<std::size_t>(params.t_share);

  const bool cpu_to_gpu = deps.has_nw() && s > 0 && s < m;
  const bool gpu_to_cpu = deps.has_ne() && s > 0 && s < m;
  const bool two_way = cpu_to_gpu && gpu_to_cpu;
  const double cpu_extra_seconds = 0.0;
  if (two_way) {
    // Zero-copy mapped pinned boundary: the GPU's kernels reach across
    // PCIe for the mapped cells (latency amortized by warp switching);
    // the CPU touches the same pinned pages at ordinary memory cost.
    info.extra_us = platform.spec().gpu.mapped_access_overhead_us;
  }

  Grid<V> table(n, m);
  sim::DeviceBuffer<V> dtable = gpu.template alloc<V>(layout.size());
  detail::GridReader<V> hread{&table};
  detail::DeviceReader<V, RowMajorLayout> dread{dtable.device_ptr(), &layout};

  const auto compute_stream = gpu.default_stream();
  const auto h2d_stream = gpu.create_stream();
  const auto d2h_stream = gpu.create_stream();
  // Fusing requires strictly one-way traffic: with an NE dependency the
  // CPU consumes a GPU boundary every row (mid-phase host sync), which a
  // graph cannot span — exactly like a real CUDA graph.
  sim::LaunchGraph graph(gpu, fused && !gpu_to_cpu);
  cpu::StripSession strips(platform.pool());
  // Only the GPU strip's share of the problem input goes up (the CPU reads
  // its columns from host memory directly).
  graph.record_h2d(compute_stream,
                 static_cast<std::size_t>(
                     static_cast<double>(input_bytes_of(p)) *
                     static_cast<double>(m - std::min(s, m)) /
                     static_cast<double>(m)),
                 sim::MemoryKind::kPageable);

  sim::OpId last_cpu = sim::kNoOp, last_gpu = sim::kNoOp;
  sim::OpId h2d_m1 = sim::kNoOp;  // CPU->GPU boundary of the previous row
  sim::OpId d2h_m1 = sim::kNoOp;  // GPU->CPU boundary of the previous row
  sim::OpId gpu_m1 = sim::kNoOp;  // previous row's kernel (two-way dep)
  sim::OpId cpu_m1 = sim::kNoOp;  // previous row's CPU segment (two-way dep)

  const bool cpu_parallel =
      s > 0 && cpu::parallel_beats_serial(platform.spec().cpu, work, s, 1.0,
                                          /*streamed=*/true);

  for (std::size_t i = 0; i < n; ++i) {
    // --- CPU segment: cells (i, 0..s) -----------------------------------
    sim::OpId cpu_op = sim::kNoOp;
    if (s > 0) {
      // In two-way mode the CPU's rightmost cell reads NE from the GPU's
      // previous row (mapped); in one-way GPU->CPU mode it waits for the
      // pipelined boundary copy of the previous row.
      const sim::OpId dep = two_way ? gpu_m1 : (gpu_to_cpu ? d2h_m1 : sim::kNoOp);
      if (gpu_to_cpu && i > 0) {
        // Real data movement for the NE read: GPU boundary cell (i-1, s).
        table.at(i - 1, s) = dtable.device_ptr()[layout.flat(i - 1, s)];
      }
      sim::Platform::CpuFrontOpts opts;
      opts.parallel = cpu_parallel;
      opts.streamed = true;
      opts.extra_seconds = cpu_extra_seconds;
      opts.dep1 = dep;
      if (use_batch) {
        cpu_op = platform.cpu_front(
            std::min(s, m), work,
            [&, i](std::size_t lo, std::size_t hi) {
              detail::run_front_range(
                  p, deps, bound, layout, i, lo, hi,
                  [&table](std::size_t ii, std::size_t jj) {
                    return &table.at(ii, jj);
                  },
                  /*batch=*/true);
            },
            opts);
      } else {
        cpu_op = platform.cpu_front(
            std::min(s, m), work,
            [&, i](std::size_t j) {
              table.at(i, j) =
                  detail::compute_cell(p, deps, bound, i, j, m, hread);
            },
            opts);
      }
      last_cpu = cpu_op;
    }

    // --- boundary CPU->GPU ----------------------------------------------
    sim::OpId h2d_op = sim::kNoOp;
    if (cpu_to_gpu) {
      dtable.device_ptr()[layout.flat(i, s - 1)] = table.at(i, s - 1);
      if (!two_way) {
        h2d_op = graph.record_h2d(h2d_stream, sizeof(V),
                                  sim::MemoryKind::kPinned, cpu_op);
      }
    }

    // --- GPU segment: cells (i, s..m) ------------------------------------
    sim::OpId gpu_op = sim::kNoOp;
    if (s < m) {
      const sim::OpId dep = two_way ? cpu_m1 : (cpu_to_gpu ? h2d_m1 : sim::kNoOp);
      const std::size_t base = layout.front_offset(i) + s;
      V* out = dtable.device_ptr();
      if (use_batch) {
        gpu_op = graph.launch(
            compute_stream, info, m - s,
            [&, i, out](std::size_t lo, std::size_t hi) {
              detail::run_front_range(
                  p, deps, bound, layout, i, s + lo, s + hi,
                  [out, &layout](std::size_t ii, std::size_t jj) {
                    return out + layout.flat(ii, jj);
                  },
                  /*batch=*/true);
            },
            dep);
      } else {
        gpu_op = graph.launch(
            compute_stream, info, m - s,
            [&, i, base, out](std::size_t k) {
              out[base + k] =
                  detail::compute_cell(p, deps, bound, i, s + k, m, dread);
            },
            dep);
      }
      last_gpu = gpu_op;
    }

    // --- boundary GPU->CPU (one-way pipelined variant) -------------------
    sim::OpId d2h_op = sim::kNoOp;
    if (gpu_to_cpu && !two_way) {
      // The actual copy happens lazily at the top of the next iteration;
      // here we schedule its simulated cost behind the kernel.
      d2h_op = graph.record_d2h(d2h_stream, sizeof(V),
                                sim::MemoryKind::kPinned, gpu_op);
    }

    h2d_m1 = h2d_op;
    d2h_m1 = d2h_op;
    gpu_m1 = gpu_op;
    cpu_m1 = cpu_op;
  }

  // Submit the fused pipeline before the host-side download needs real ids.
  graph.replay();
  last_gpu = graph.resolve(last_gpu);

  // Final download of the GPU strip.
  {
    detail::unpack_table(dtable.device_ptr(), layout, table, s, m);
    const std::size_t bytes = n * (m - s) * sizeof(V);
    const sim::OpId fin =
        gpu.record_d2h(d2h_stream, std::min(bytes, result_bytes_of(p)),
                       sim::MemoryKind::kPageable, last_gpu);
    platform.cpu_sync(fin, last_cpu);
  }

  if (stats) {
    stats->mode_used = Mode::kHeterogeneous;
    stats->pattern = Pattern::kHorizontal;
    stats->transfer = transfer_need(deps);
    stats->fronts = n;
    stats->cells = n * m;
    stats->t_switch = 0;
    stats->t_share = params.t_share;
    detail::finish_stats(*stats, platform, wall.seconds());
  }
  return table;
}

}  // namespace lddp
