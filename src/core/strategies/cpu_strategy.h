// Pure-CPU executions.
//
// * solve_cpu_serial — single-threaded row-major scan. A row-major sweep
//   (i ascending, j ascending) respects every LDDP-Plus dependency (all
//   four representative cells lie up or left), so this is the universal
//   correctness reference for all patterns.
// * solve_cpu_parallel — the paper's multicore baseline: wavefronts of the
//   problem's pattern, block-per-thread within each front (Section IV-A).
#pragma once

#include "core/front_runner.h"
#include "core/strategies/common.h"

namespace lddp {

/// Serial reference. Records a single serial-priced op on the platform's
/// CPU timeline if `platform` is given; execution always happens. Rows
/// sweep with the W-carry scalar loop; W-free problems with the batch
/// hook vectorize each row's interior (a W dependency is sequential
/// within the row, so those problems stay scalar here).
template <LddpProblem P>
Grid<typename P::Value> solve_cpu_serial(const P& p, sim::Platform* platform,
                                         SolveStats* stats,
                                         bool batch = true) {
  using V = typename P::Value;
  Stopwatch wall;
  const std::size_t n = p.rows(), m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  Grid<V> table(n, m);
  V* const data = table.data();
  for (std::size_t i = 0; i < n; ++i) {
    const V* prev = i > 0 ? data + (i - 1) * m : nullptr;
    detail::run_row(p, deps, bound, i, 0, m, m, prev, data + i * m, batch);
  }
  if (platform) {
    const bool use_batch =
        batch && has_batch_front_v<P> && !deps.has_w();
    platform->cpu_charge(n * m, detail::cpu_work_for(p, use_batch),
                         /*parallel=*/false);
  }
  if (stats) {
    stats->mode_used = Mode::kCpuSerial;
    stats->pattern = classify(deps);
    stats->transfer = TransferNeed::kNone;
    stats->fronts = n;  // scan rows
    stats->cells = n * m;
    if (platform) detail::finish_stats(*stats, *platform, wall.seconds());
    else stats->real_seconds = wall.seconds();
  }
  return table;
}

/// Multicore wavefront execution over the pattern's layout — the paper's
/// OpenMP-style baseline: one fork/join parallel region per front.
/// `mem_amplification` prices cache-hostile walk orders (diagonal fronts).
template <LddpProblem P, typename Layout>
Grid<typename P::Value> solve_cpu_parallel(const P& p, const Layout& layout,
                                           sim::Platform& platform,
                                           SolveStats* stats,
                                           double mem_amplification = 1.0,
                                           bool batch = true) {
  using V = typename P::Value;
  Stopwatch wall;
  const std::size_t n = p.rows(), m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  const bool use_batch = detail::use_batch_front(p, layout, deps, batch);
  const cpu::WorkProfile work = detail::cpu_work_for(p, use_batch);
  Grid<V> table(n, m);
  detail::GridReader<V> read{&table};
  auto addr = [&table](std::size_t i, std::size_t j) {
    return &table.at(i, j);
  };
  // Workers stay resident in the strip barrier across fronts (real
  // execution only); the simulated pricing below remains the paper's
  // fork/join-per-front OpenMP baseline.
  cpu::StripSession strips(platform.pool());
  sim::Platform::CpuFrontOpts opts;
  opts.mem_amplification = mem_amplification;
  for (std::size_t f = 0; f < layout.num_fronts(); ++f) {
    // OpenMP-style "if" clause: fronts too small to amortize the fork/join
    // run on the issuing thread.
    opts.parallel = cpu::parallel_beats_serial(
        platform.spec().cpu, work, layout.front_size(f), mem_amplification);
    if (use_batch) {
      platform.cpu_front(
          layout.front_size(f), work,
          [&](std::size_t lo, std::size_t hi) {
            detail::run_front_range(p, deps, bound, layout, f, lo, hi, addr,
                                    /*batch=*/true);
          },
          opts);
    } else {
      platform.cpu_front(
          layout.front_size(f), work,
          [&](std::size_t c) {
            const CellIndex cell = layout.cell(f, c);
            table.at(cell.i, cell.j) =
                detail::compute_cell(p, deps, bound, cell.i, cell.j, m, read);
          },
          opts);
    }
  }
  if (stats) {
    stats->mode_used = Mode::kCpuParallel;
    stats->pattern = classify(deps);
    stats->transfer = TransferNeed::kNone;
    stats->fronts = layout.num_fronts();
    stats->cells = n * m;
    detail::finish_stats(*stats, platform, wall.seconds());
  }
  return table;
}

}  // namespace lddp
