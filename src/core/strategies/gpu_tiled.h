// Tile-granular simulated-GPU execution: one thread block per tile, the
// tile plus its halo staged in shared memory (tile_kernel.h prices the
// staging), one kernel launch per *tile front* instead of per cell front.
//
// The TileScheduler normalizes every contributing set — skewed
// parallelogram tiles when NE is present — to anti-diagonal tile fronts,
// so a single implementation covers all four canonical patterns. Versus
// the thread-per-cell baseline this divides the number of launches by the
// tile side and shrinks global-memory traffic to the staged tile loads
// and stores; results stay bit-identical (compute_cell is pure and every
// dependency is computed before its consumer).
#pragma once

#include "core/front_runner.h"
#include "core/strategies/common.h"
#include "core/tile_scheduler.h"
#include "sim/launch_graph.h"
#include "sim/memory.h"
#include "sim/tile_kernel.h"

namespace lddp {

namespace detail {

/// Pricing inputs of one tile-front launch: tiles k in [k_begin, k_end) of
/// front g.
struct TileFrontWork {
  std::size_t tiles = 0;
  std::size_t cells = 0;
  std::size_t staged_bytes = 0;
};

template <typename V>
TileFrontWork tile_front_work(const TileScheduler& sched,
                              const sim::KernelInfo& info, std::size_t g,
                              std::size_t k_begin, std::size_t k_end) {
  TileFrontWork w;
  std::size_t halo = 0;
  for (std::size_t k = k_begin; k < k_end; ++k) {
    const TileScheduler::TileCoord t = sched.front_tile(g, k);
    const std::size_t c = sched.cell_count(t.tu, t.tv);
    if (c == 0) continue;
    ++w.tiles;
    w.cells += c;
    halo += sched.halo_cells(t.tu, t.tv);
  }
  w.staged_bytes = sim::tiled_staged_bytes(info, sched.deps().count(),
                                           sizeof(V), w.cells, halo);
  return w;
}

}  // namespace detail

template <LddpProblem P>
Grid<typename P::Value> solve_gpu_tiled(const P& p, sim::Platform& platform,
                                        std::size_t tile, SolveStats* stats,
                                        bool fused = true, bool batch = true) {
  using V = typename P::Value;
  Stopwatch wall;
  const std::size_t n = p.rows(), m = p.cols();
  const ContributingSet deps = p.deps();
  const V bound = p.boundary();
  const TileScheduler sched(n, m, tile, deps);
  sim::Device& gpu = platform.gpu();
  const auto stream = gpu.default_stream();
  const sim::KernelInfo info = detail::kernel_info_for(p, "gpu.tile");

  // The device table stays row-major: a tile row is a contiguous segment,
  // so the staged tile loads/stores coalesce without a bespoke layout.
  const RowMajorLayout layout(n, m);
  // The tile fronts compute every cell before any neighbour read, so the
  // device table can skip its zero-fill.
  sim::DeviceBuffer<V> dtable =
      gpu.template alloc<V>(layout.size(), /*zeroed=*/false);

  sim::LaunchGraph graph(gpu, fused);
  graph.record_h2d(stream, input_bytes_of(p), sim::MemoryKind::kPageable);

  for (std::size_t g = 0; g < sched.num_fronts(); ++g) {
    const std::size_t nt = sched.front_tiles(g);
    const detail::TileFrontWork fw =
        detail::tile_front_work<V>(sched, info, g, 0, nt);
    if (fw.cells == 0) continue;
    const double exec = sim::tiled_kernel_exec_seconds(
        gpu.spec(), info, fw.tiles, tile, tile, fw.cells, fw.staged_bytes);
    const double packed = sim::tiled_kernel_packed_exec_seconds(
        gpu.spec(), info, fw.tiles, tile, tile, fw.cells, fw.staged_bytes);
    V* out = dtable.device_ptr();
    graph.launch_tiled(
        stream, exec, nt,
        [&, g, out](std::size_t k) {
          const TileScheduler::TileCoord t = sched.front_tile(g, k);
          for (std::size_t i = sched.row_begin(t.tu); i < sched.row_end(t.tu);
               ++i) {
            const TileScheduler::RowSpan sp = sched.row_span(t.tv, i);
            if (sp.size() == 0) continue;
            const V* prev = i > 0 ? out + (i - 1) * m : nullptr;
            detail::run_row(p, deps, bound, i, sp.j_begin, sp.j_end, m, prev,
                            out + i * m, batch);
          }
        },
        sim::kNoOp, packed);
  }
  graph.replay();

  Grid<V> table = Grid<V>::uninitialized(n, m);  // unpack writes every cell
  detail::unpack_table(dtable.device_ptr(), layout, table, 0, m);
  const sim::OpId done = gpu.record_d2h(stream, result_bytes_of(p),
                                        sim::MemoryKind::kPageable);
  platform.cpu_sync(done);

  if (stats) {
    stats->mode_used = Mode::kGpu;
    stats->pattern = classify(deps);
    stats->transfer = TransferNeed::kNone;
    stats->fronts = sched.num_fronts();
    stats->cells = n * m;
    detail::finish_stats(*stats, platform, wall.seconds());
  }
  return table;
}

}  // namespace lddp
